#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/closed_form.hpp"
#include "numeric/quadrature.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"
#include "stats/special.hpp"

namespace obd::core {
namespace {

TEST(GClosedForm, EqualsNumericalGaussianIntegral) {
  // eq. (17): the closed form must equal
  // int phi((x-u)/sqrt(v)) (t/alpha)^(b x) dx.
  const double t = 3e8;
  const double alpha = 1e17;
  const double b = 0.64;
  const double u = 2.2;
  const double v = 3.0e-4;
  const double sd = std::sqrt(v);
  const double gamma = std::log(t / alpha);
  const double numeric = num::gauss_legendre_1d(
      [&](double x) {
        return stats::normal_pdf((x - u) / sd) / sd *
               std::exp(gamma * b * x);
      },
      u - 10.0 * sd, u + 10.0 * sd, 8, 64);
  EXPECT_NEAR(g_closed_form(t, alpha, b, u, v) / numeric, 1.0, 1e-10);
}

TEST(GClosedForm, MonteCarloAgreement) {
  // g(u, v) = E[(t/alpha)^(b X)] for X ~ N(u, v).
  const double t = 1e9;
  const double alpha = 1e16;
  const double b = 0.6;
  const double u = 2.2;
  const double v = 2.0e-4;
  stats::Rng rng(5);
  const double gamma = std::log(t / alpha);
  stats::RunningStats s;
  for (int i = 0; i < 400000; ++i) {
    const double x = rng.normal(u, std::sqrt(v));
    s.add(std::exp(gamma * b * x));
  }
  EXPECT_NEAR(s.mean() / g_closed_form(t, alpha, b, u, v), 1.0, 0.01);
}

TEST(GClosedForm, MonotoneProperties) {
  const double alpha = 1e17;
  // Thinner mean oxide -> larger g (worse) for t < alpha.
  EXPECT_GT(g_closed_form(1e8, alpha, 0.64, 2.1, 2e-4),
            g_closed_form(1e8, alpha, 0.64, 2.3, 2e-4));
  // More within-block spread -> larger g (the Jensen term).
  EXPECT_GT(g_closed_form(1e8, alpha, 0.64, 2.2, 4e-4),
            g_closed_form(1e8, alpha, 0.64, 2.2, 1e-4));
  // Later time -> larger g.
  EXPECT_GT(g_closed_form(1e9, alpha, 0.64, 2.2, 2e-4),
            g_closed_form(1e8, alpha, 0.64, 2.2, 2e-4));
}

TEST(GClosedForm, ZeroVarianceReducesToPointMass) {
  const double t = 1e8;
  const double alpha = 1e17;
  const double b = 0.7;
  const double u = 2.2;
  const double gamma = std::log(t / alpha);
  EXPECT_NEAR(g_closed_form(t, alpha, b, u, 0.0), std::exp(gamma * b * u),
              1e-25);
}

TEST(GClosedForm, RejectsBadArguments) {
  EXPECT_THROW(g_closed_form(0.0, 1.0, 1.0, 2.2, 1e-4), obd::Error);
  EXPECT_THROW(g_closed_form(1.0, -1.0, 1.0, 2.2, 1e-4), obd::Error);
  EXPECT_THROW(g_closed_form(1.0, 1.0, 1.0, 2.2, -1e-4), obd::Error);
}

TEST(DeviceReliability, MatchesWeibullDefinition) {
  // eq. (9): R = exp(-a (t/alpha)^(b x)).
  const double t = 2e8;
  const double alpha = 5e16;
  const double b = 0.65;
  const double x = 2.18;
  const double a = 2.0;
  const double expected =
      std::exp(-a * std::pow(t / alpha, b * x));
  EXPECT_NEAR(device_reliability(t, alpha, b, x, a), expected, 1e-15);
  EXPECT_DOUBLE_EQ(device_reliability(0.0, alpha, b, x), 1.0);
}

}  // namespace
}  // namespace obd::core
