// AVX-512F/DQ kernels. This translation unit is compiled with
// -mavx512f -mavx512dq -ffp-contract=off (see src/simd/CMakeLists.txt);
// the rest of the build stays at the baseline ISA and reaches these only
// through the runtime-dispatched kernel table.
//
// The porting rule from kernels_avx2.cpp: kernels whose contract is
// bit-identity (dot_counts, matmul, gram_aat — see kernels.hpp) keep the
// scalar reference's four-lane accumulator structure by folding the high
// 256-bit half of each 512-bit product into the same four lanes, low
// half first — lane l still sums elements 4j + l in ascending j with
// every product rounded before the add. Tolerance-bounded kernels
// (fill_bin_factors, normal_cdf_batch, matvec) run genuinely 8-wide with
// the identical per-element operation sequence as the AVX2 variant.
//
// -ffp-contract=off matters for the same reason as the AVX2 unit: the
// bit-identical kernels round every product before adding it (separate
// mul/add intrinsics); explicit _mm512_fmadd_pd is still used where
// fusion is wanted (the erfc polynomials).

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "simd/kernels.hpp"

namespace obd::simd {
namespace {

// ---------------------------------------------------------------------
// fill_bin_factors: same exact-exp anchors as the scalar kernel every
// kReanchorInterval (64) bins; between anchors one 8-lane chain advances
// by ratio^8, so each value's dependency chain carries at most ~9
// roundings per block instead of up to 63 — drift from the scalar
// recurrence stays bounded near 1e-13 relative, the same contract the
// AVX2 variant pins in tests/simd_test.
void fill_bin_factors_avx512(double gb, double x_lo, double step,
                             std::size_t bins, double* out) {
  const double ratio = std::exp(gb * step);
  const double r2 = ratio * ratio;
  const double r3 = r2 * ratio;
  const double r4 = r2 * r2;
  const double r8 = r4 * r4;
  const __m512d vr8 = _mm512_set1_pd(r8);
  const __m512d ladder =
      _mm512_setr_pd(1.0, ratio, r2, r3, r4, r4 * ratio, r4 * r2, r4 * r3);
  static_assert(kReanchorInterval % 8 == 0);
  std::size_t k0 = 0;
  for (; k0 + kReanchorInterval <= bins; k0 += kReanchorInterval) {
    const double anchor =
        std::exp(gb * (x_lo + (static_cast<double>(k0) + 0.5) * step));
    __m512d p = _mm512_mul_pd(_mm512_set1_pd(anchor), ladder);
    for (std::size_t j = 0; j < kReanchorInterval; j += 8) {
      _mm512_storeu_pd(out + k0 + j, p);
      p = _mm512_mul_pd(p, vr8);
    }
  }
  if (k0 < bins) {
    // Partial final block: the scalar recurrence, anchored identically.
    double p = std::exp(gb * (x_lo + (static_cast<double>(k0) + 0.5) * step));
    for (std::size_t k = k0; k < bins; ++k) {
      out[k] = p;
      p *= ratio;
    }
  }
}

// ---------------------------------------------------------------------
// dot_counts: bit-identical to the scalar kernel. Each 512-bit product
// covers two consecutive 4-groups; folding its low 256-bit half into the
// four accumulator lanes before the high half preserves the scalar
// reference's ascending-j order per lane. The uint32 -> double conversion
// is the direct AVX-512 unsigned conversion (exact). Any remaining full
// 4-group and the final tail accumulate in scalar arithmetic on the lane
// array — identical operations to the scalar kernel's own epilogue.
double dot_counts_avx512(const std::uint32_t* c, const double* e,
                         std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m512d cd = _mm512_cvtepu32_pd(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + k)));
    const __m512d prod = _mm512_mul_pd(cd, _mm512_loadu_pd(e + k));
    acc = _mm256_add_pd(acc, _mm512_extractf64x4_pd(prod, 0));
    acc = _mm256_add_pd(acc, _mm512_extractf64x4_pd(prod, 1));
  }
  alignas(32) double a[4];
  _mm256_store_pd(a, acc);
  for (; k + 4 <= n; k += 4)
    for (std::size_t l = 0; l < 4; ++l)
      a[l] += static_cast<double>(c[k + l]) * e[k + l];
  for (; k < n; ++k) a[0] += static_cast<double>(c[k]) * e[k];
  return (a[0] + a[2]) + (a[1] + a[3]);
}

// ---------------------------------------------------------------------
// Vectorized standard-normal CDF via polynomial erfc — the identical
// coefficient sets and per-element operation sequence as the AVX2
// variant (see kernels_avx2.cpp for the derivation and error analysis);
// only the lane width and the mask/blend encoding differ. Caller-facing
// bound: 1e-12 relative wherever |result| > 1e-300.

// Highest-degree coefficient first (Horner order).
constexpr double kErfPolySmall[] = {
    0x1.c60ae6747e9bcp-27,  -0x1.5d7686c510032p-23, 0x1.b9d19f664b4c1p-20,
    -0x1.f4d1cff2cac2fp-17, 0x1.f9a324a327ab3p-14,  -0x1.c02db3f9d6c71p-11,
    0x1.565bcd0e5f5a0p-8,   -0x1.b82ce312889f2p-6,  0x1.ce2f21a042be0p-4,
    -0x1.812746b0379e7p-2,  0x1.20dd750429b6dp+0,
};
constexpr double kErfcPolyMid[] = {
    0x1.cf581f9d26c9dp-29,  -0x1.b4554743d4dc7p-27, 0x1.44e1e2f2bf565p-25,
    -0x1.21d0889216364p-23, 0x1.01b52b69d7f28p-21,  -0x1.b6293e5f0fbebp-20,
    0x1.6a162bffa5122p-18,  -0x1.22f9bdb594505p-16, 0x1.c57047d56f26bp-15,
    -0x1.55c08eff1111cp-13, 0x1.f0fe6f69fb247p-12,  -0x1.5b8bc901e8916p-10,
    0x1.d1b695ab6763ep-9,   -0x1.299636d76d836p-7,  0x1.68a25a664142cp-6,
    -0x1.9b635ac623553p-5,  0x1.b56f45eef7e5ep-4,   -0x1.abaacdbfa8b13p-3,
    0x1.78a692138767ap-2,
};
constexpr double kErfcPolyTail[] = {
    0x1.0377f2b16baa9p+34,  -0x1.831d8926d0698p+35, 0x1.0f906acf4c062p+36,
    -0x1.dca6141b880e6p+35, 0x1.25b9ff9d8fe49p+35,  -0x1.0e9fef2f52cd2p+34,
    0x1.83c9bf300b0a6p+32,  -0x1.bc4196aef612ap+30, 0x1.9fe201b1f38a4p+28,
    -0x1.4482ea3be4d6cp+26, 0x1.af3e19f858958p+23,  -0x1.f53eabbd457c2p+20,
    0x1.0845561d3a5eep+18,  -0x1.0999cb36b7e60p+15, 0x1.0e350b4f39b8ep+12,
    -0x1.27bf00d349082p+9,  0x1.6e2e0f2047472p+6,   -0x1.0a8e3c819677cp+4,
    0x1.d9eac4331e9edp+1,   -0x1.0ecf9b8dadd24p+0,  0x1.b14c2f7c8e35cp-2,
    -0x1.20dd750424486p-2,  0x1.20dd750429b64p-1,
};
// 1/13!, 1/12!, ..., 1/1!, 1/0! — Taylor core of exp on |r| <= ln2/2.
constexpr double kExpPoly[] = {
    1.6059043836821613e-10, 2.08767569878681e-9, 2.505210838544172e-8,
    2.7557319223985893e-7,  2.755731922398589e-6, 2.48015873015873e-5,
    1.984126984126984e-4,   1.3888888888888889e-3, 8.333333333333333e-3,
    4.1666666666666664e-2,  1.6666666666666666e-1, 5e-1, 1.0, 1.0,
};

template <std::size_t N>
inline __m512d horner(const double (&cs)[N], __m512d x) {
  __m512d acc = _mm512_set1_pd(cs[0]);
  for (std::size_t i = 1; i < N; ++i)
    acc = _mm512_fmadd_pd(acc, x, _mm512_set1_pd(cs[i]));
  return acc;
}

// exp(t) for t <= 0, graceful underflow to 0 below ~-745 (the 2^n scaling
// is split into two factors so subnormal results stay exact to rounding).
inline __m512d exp_nonpos(__m512d t) {
  const __m512d kLog2e = _mm512_set1_pd(0x1.71547652b82fep+0);
  const __m512d kLn2Hi = _mm512_set1_pd(0x1.62e42fee00000p-1);
  const __m512d kLn2Lo = _mm512_set1_pd(0x1.a39ef35793c76p-33);
  // Clamp far below the underflow threshold: keeps the exponent arithmetic
  // in range for arbitrarily negative inputs without changing any result
  // that is representable (everything below -800 is exactly 0).
  t = _mm512_max_pd(t, _mm512_set1_pd(-800.0));
  const __m512d nf =
      _mm512_roundscale_pd(_mm512_mul_pd(t, kLog2e),
                           _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m512d r = _mm512_fnmadd_pd(nf, kLn2Hi, t);
  r = _mm512_fnmadd_pd(nf, kLn2Lo, r);
  const __m512d p = horner(kExpPoly, r);
  const __m256i ni = _mm512_cvtpd_epi32(nf);
  const __m256i n1 = _mm256_srai_epi32(ni, 1);
  const __m256i n2 = _mm256_sub_epi32(ni, n1);
  const auto pow2 = [](__m256i m) {
    const __m512i wide = _mm512_add_epi64(_mm512_cvtepi32_epi64(m),
                                          _mm512_set1_epi64(1023));
    return _mm512_castsi512_pd(_mm512_slli_epi64(wide, 52));
  };
  return _mm512_mul_pd(_mm512_mul_pd(p, pow2(n1)), pow2(n2));
}

inline __m512d erfc8(__m512d x) {
  const __m512d kOne = _mm512_set1_pd(1.0);
  const __m512d kTwo = _mm512_set1_pd(2.0);
  const __m512d w = _mm512_abs_pd(x);
  const __m512d u = _mm512_mul_pd(w, w);
  // |x| < 0.5 (sign handled by the odd polynomial directly).
  const __m512d r_small =
      _mm512_fnmadd_pd(x, horner(kErfPolySmall, u), kOne);
  // w >= 0.5: erfc(w) = exp(-w^2) * (mid or tail polynomial).
  const __m512d e = exp_nonpos(_mm512_sub_pd(_mm512_setzero_pd(), u));
  const __m512d p_mid =
      horner(kErfcPolyMid, _mm512_sub_pd(w, _mm512_set1_pd(1.25)));
  const __m512d s = _mm512_div_pd(kOne, u);
  const __m512d p_tail =
      _mm512_mul_pd(horner(kErfcPolyTail, s), _mm512_sqrt_pd(s));
  __m512d r = _mm512_mul_pd(
      e, _mm512_mask_blend_pd(_mm512_cmp_pd_mask(w, kTwo, _CMP_GT_OQ),
                              p_mid, p_tail));
  // w > 28: exactly 0 (and discards any garbage from the s = 1/u lanes).
  r = _mm512_mask_blend_pd(
      _mm512_cmp_pd_mask(w, _mm512_set1_pd(28.0), _CMP_GT_OQ), r,
      _mm512_setzero_pd());
  // Negative arguments: erfc(x) = 2 - erfc(w).
  r = _mm512_mask_blend_pd(
      _mm512_cmp_pd_mask(x, _mm512_setzero_pd(), _CMP_LT_OQ), r,
      _mm512_sub_pd(kTwo, r));
  return _mm512_mask_blend_pd(
      _mm512_cmp_pd_mask(w, _mm512_set1_pd(0.5), _CMP_LT_OQ), r, r_small);
}

void normal_cdf_batch_avx512(const double* z, std::size_t n, double* out) {
  const __m512d kNegInvSqrt2 = _mm512_set1_pd(-0x1.6a09e667f3bcdp-1);
  const __m512d kHalf = _mm512_set1_pd(0.5);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d x = _mm512_mul_pd(_mm512_loadu_pd(z + i), kNegInvSqrt2);
    _mm512_storeu_pd(out + i, _mm512_mul_pd(kHalf, erfc8(x)));
  }
  if (i < n) {
    alignas(64) double buf[8] = {};
    for (std::size_t j = i; j < n; ++j) buf[j - i] = z[j];
    const __m512d x = _mm512_mul_pd(_mm512_load_pd(buf), kNegInvSqrt2);
    _mm512_store_pd(buf, _mm512_mul_pd(kHalf, erfc8(x)));
    for (std::size_t j = i; j < n; ++j) out[j] = buf[j - i];
  }
}

// ---------------------------------------------------------------------
// orow[c] += av * brow[c]: the shared GEMM/SYRK inner step. mul + add
// (not FMA) reproduces the scalar kernels' per-element rounding exactly;
// the wide loop touches independent elements, so vectorization does not
// reorder any accumulation chain.
inline void axpy_row(double* orow, const double* brow, double av,
                     std::size_t n) {
  const __m512d va8 = _mm512_set1_pd(av);
  std::size_t c = 0;
  for (; c + 16 <= n; c += 16) {
    _mm512_storeu_pd(
        orow + c,
        _mm512_add_pd(_mm512_loadu_pd(orow + c),
                      _mm512_mul_pd(va8, _mm512_loadu_pd(brow + c))));
    _mm512_storeu_pd(
        orow + c + 8,
        _mm512_add_pd(_mm512_loadu_pd(orow + c + 8),
                      _mm512_mul_pd(va8, _mm512_loadu_pd(brow + c + 8))));
  }
  for (; c + 8 <= n; c += 8)
    _mm512_storeu_pd(
        orow + c,
        _mm512_add_pd(_mm512_loadu_pd(orow + c),
                      _mm512_mul_pd(va8, _mm512_loadu_pd(brow + c))));
  for (; c < n; ++c) orow[c] += av * brow[c];
}

constexpr std::size_t kMatmulTileK = 256;

void matmul_avx512(const double* a, const double* b, double* out,
                   std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t k0 = 0; k0 < k; k0 += kMatmulTileK) {
    const std::size_t k1 = std::min(k, k0 + kMatmulTileK);
    for (std::size_t r = 0; r < m; ++r) {
      const double* arow = a + r * k;
      double* orow = out + r * n;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const double av = arow[kk];
        if (av == 0.0) continue;
        axpy_row(orow, b + kk * n, av, n);
      }
    }
  }
}

// Four accumulator lanes per row (each 512-bit product folds low half
// then high half into the same lanes), combined like dot_counts —
// bit-identical to the AVX2 matvec, which carries the documented
// ~1e-15-relative difference from the scalar single chain.
void matvec_avx512(const double* a, const double* x, double* y,
                   std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* arow = a + r * cols;
    __m256d acc = _mm256_setzero_pd();
    std::size_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const __m512d prod = _mm512_mul_pd(_mm512_loadu_pd(arow + c),
                                         _mm512_loadu_pd(x + c));
      acc = _mm256_add_pd(acc, _mm512_extractf64x4_pd(prod, 0));
      acc = _mm256_add_pd(acc, _mm512_extractf64x4_pd(prod, 1));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    for (; c + 4 <= cols; c += 4)
      for (std::size_t l = 0; l < 4; ++l) lanes[l] += arow[c + l] * x[c + l];
    for (; c < cols; ++c) lanes[0] += arow[c] * x[c];
    y[r] = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
  }
}

// SYRK as a row-axpy sweep over the materialized transpose — the same
// structure as the AVX2 variant; axpy_row keeps the round-then-add
// sequence, so every entry stays bit-identical to the scalar triangle
// loop.
void gram_aat_avx512(const double* a, double* g, std::size_t n,
                     std::size_t k) {
  std::vector<double> at(k * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < k; ++c) at[c * n + i] = a[i * k + c];
  for (std::size_t i = 0; i < n; ++i) {
    double* gi = g + i * n;
    std::fill(gi + i, gi + n, 0.0);
    const double* ai = a + i * k;
    for (std::size_t c = 0; c < k; ++c)
      axpy_row(gi + i, at.data() + c * n + i, ai[c], n - i);
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) g[j * n + i] = g[i * n + j];
}

// Clenshaw over interleaved pencils, eight per register. Lanes are
// independent pencils executing the scalar kernel's exact operation
// sequence (separate mul/sub/add, never FMA — bit-identity contract in
// kernels.hpp); the tail repeats the sequence in scalar arithmetic.
void clenshaw_batch_avx512(const double* coeffs, std::size_t n,
                           std::size_t m, double u, double* out) {
  if (n == 0) {
    for (std::size_t p = 0; p < m; ++p) out[p] = 0.0;
    return;
  }
  const double tu = 2.0 * u;
  const __m512d vtu = _mm512_set1_pd(tu);
  const __m512d vu = _mm512_set1_pd(u);
  std::size_t p = 0;
  for (; p + 8 <= m; p += 8) {
    __m512d b1 = _mm512_setzero_pd();
    __m512d b2 = _mm512_setzero_pd();
    for (std::size_t k = n - 1; k >= 1; --k) {
      const __m512d s = _mm512_mul_pd(vtu, b1);
      const __m512d q = _mm512_sub_pd(s, b2);
      const __m512d b = _mm512_add_pd(_mm512_loadu_pd(coeffs + k * m + p), q);
      b2 = b1;
      b1 = b;
    }
    const __m512d s = _mm512_mul_pd(vu, b1);
    _mm512_storeu_pd(out + p, _mm512_add_pd(_mm512_loadu_pd(coeffs + p),
                                            _mm512_sub_pd(s, b2)));
  }
  for (; p < m; ++p) {
    double b1 = 0.0;
    double b2 = 0.0;
    for (std::size_t k = n - 1; k >= 1; --k) {
      const double s = tu * b1;
      const double q = s - b2;
      const double b = coeffs[k * m + p] + q;
      b2 = b1;
      b1 = b;
    }
    const double s = u * b1;
    out[p] = coeffs[p] + (s - b2);
  }
}

}  // namespace

namespace detail {

const KernelTable kAvx512Kernels = {
    fill_bin_factors_avx512, dot_counts_avx512, normal_cdf_batch_avx512,
    matmul_avx512,           matvec_avx512,     gram_aat_avx512,
    clenshaw_batch_avx512,
};

}  // namespace detail
}  // namespace obd::simd

#else  // !(__AVX512F__ && __AVX512DQ__)

#include "simd/kernels.hpp"

namespace obd::simd::detail {

// Built without AVX-512 support: keep the symbol defined (the test suite
// references all tables unconditionally) but alias the scalar reference.
// kScalarKernels is constant-initialized (function addresses only), so
// copying it during dynamic initialization is order-safe.
const KernelTable kAvx512Kernels = kScalarKernels;

}  // namespace obd::simd::detail

#endif  // __AVX512F__ && __AVX512DQ__
