// Reliability sensitivity analysis: which block buys the most lifetime?
//
// The paper motivates temperature awareness by showing that a hot spot
// dominates the chip's OBD risk. This module quantifies it for design
// action: the elasticity of the ppm lifetime with respect to each block's
// temperature (and the supply voltage), evaluated through the full
// statistical model. A floorplanner or DTM policy can rank cooling /
// throttling targets directly from these numbers.
#pragma once

#include <vector>

#include "core/analytic.hpp"
#include "core/problem.hpp"

namespace obd::core {

/// Per-block sensitivity record.
struct BlockSensitivity {
  std::string name;
  double temp_c = 0.0;
  /// d t_req / d T_j in relative-per-degree: the fractional lifetime gained
  /// by cooling block j by one degree (positive = cooling helps).
  double lifetime_per_degree = 0.0;
  /// Block's share of the chip failure probability at t_req.
  double failure_share = 0.0;
};

/// Computes per-block temperature sensitivities of the lifetime at
/// `target` by central finite differences (rebuilding only the perturbed
/// block's parameters; the BLOD moments are temperature-independent and
/// reused). `model` must be the device model used to build `problem`.
std::vector<BlockSensitivity> temperature_sensitivity(
    const ReliabilityProblem& problem, const DeviceReliabilityModel& model,
    double target, double delta_c = 1.0,
    const AnalyticOptions& options = {});

/// Elasticity of the lifetime w.r.t. supply voltage: relative lifetime
/// change per +10 mV, via central differences through the device model.
double vdd_sensitivity(const ReliabilityProblem& problem,
                       const DeviceReliabilityModel& model, double target,
                       double delta_v = 0.01,
                       const AnalyticOptions& options = {});

}  // namespace obd::core
