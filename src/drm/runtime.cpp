#include "drm/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "common/diagnostics.hpp"
#include "common/error.hpp"

namespace obd::drm {
namespace {

namespace fs = std::filesystem;

/// Snapshot / journal payload schema version. Bump on any layout change;
/// recovery refuses snapshots from a different schema (version skew falls
/// through the recovery ladder instead of being misparsed).
constexpr std::uint32_t kSchemaVersion = 1;

/// Exact round-trip formatting for doubles: %a prints the full binary
/// significand, strtod() parses it back bit-for-bit, so persisted damage
/// trajectories are reproduced exactly across process lifetimes.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

bool parse_double(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parse_hex_u64(const std::string& token, std::uint64_t* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(token.c_str(), &end, 16);
  return end == token.c_str() + token.size();
}

std::uint64_t compute_fingerprint(const std::vector<OperatingPoint>& ladder,
                                  const DrmOptions& options,
                                  std::size_t n_blocks,
                                  const std::string& mechanisms) {
  std::ostringstream canon;
  canon << "blocks " << n_blocks << '\n';
  for (const auto& op : ladder)
    canon << "op " << op.name << ' ' << fmt_double(op.vdd) << ' '
          << fmt_double(op.frequency) << '\n';
  canon << "lifetime " << fmt_double(options.lifetime_target_s) << '\n'
        << "budget " << fmt_double(options.failure_budget) << '\n'
        << "interval " << fmt_double(options.control_interval_s) << '\n'
        << "max_activity " << fmt_double(options.max_activity) << '\n'
        << "fallback_temp " << fmt_double(options.fallback_temp_c) << '\n';
  // Appended only for non-default specs so seed-era checkpoints keep
  // their fingerprints (a mechanism change must refuse foreign state —
  // the damage-state layout differs).
  if (mechanisms != "oxide") canon << "mechanisms " << mechanisms << '\n';
  return fnv1a(canon.str());
}

}  // namespace

DrmRuntime::DrmRuntime(const core::ReliabilityProblem& problem,
                       const core::DeviceReliabilityModel& model,
                       std::vector<OperatingPoint> ladder,
                       const DrmOptions& options,
                       RuntimeOptions runtime_options)
    : mgr_(problem, model, std::move(ladder), options),
      opts_(std::move(runtime_options)) {
  require(opts_.checkpoint_dir.empty() || opts_.checkpoint_every > 0,
          "DrmRuntime: checkpoint_every must be positive");
  fingerprint_ =
      compute_fingerprint(mgr_.ladder(), options, problem.blocks().size(),
                          problem.mechanism_canonical());
  if (!durable()) return;

  std::error_code ec;
  fs::create_directories(opts_.checkpoint_dir, ec);
  require(!ec && fs::is_directory(opts_.checkpoint_dir), ErrorCode::kIo,
          "DrmRuntime: cannot create checkpoint directory '" +
              opts_.checkpoint_dir + "'");
  // A crash mid-snapshot leaves `ckpt-N.snap.tmp` behind; no reader ever
  // opens temp files, so sweep them before any writer goes live.
  ckpt::sweep_stale_tmp(opts_.checkpoint_dir, "", "drm");

  if (opts_.resume) {
    recover();
  } else {
    // A fresh durable run deliberately starts over: stale snapshots and
    // journals from a previous run must not leak into this trajectory
    // (resuming is an explicit request, never an accident).
    for (const auto& stale :
         {slot_path(0), slot_path(1), slot_path(0) + ".tmp",
          slot_path(1) + ".tmp", journal_path(), journal_prev_path()})
      fs::remove(stale, ec);
    open_journal(/*truncate=*/true);
  }
}

std::string DrmRuntime::slot_path(int slot) const {
  return opts_.checkpoint_dir + "/ckpt-" + std::to_string(slot) + ".snap";
}

std::string DrmRuntime::journal_path() const {
  return opts_.checkpoint_dir + "/journal.log";
}

std::string DrmRuntime::journal_prev_path() const {
  return opts_.checkpoint_dir + "/journal-prev.log";
}

std::string DrmRuntime::encode_snapshot() const {
  std::ostringstream out;
  out << "fp " << hex_u64(fingerprint_) << '\n'
      << "step " << step_count_ << '\n'
      << "elapsed " << fmt_double(mgr_.elapsed_s()) << '\n'
      << "rung " << mgr_.last_op_index() << '\n'
      << "nd " << mgr_.state_size() << '\n';
  const std::vector<double> state = mgr_.damage_state();
  for (std::size_t j = 0; j < state.size(); ++j)
    out << (j > 0 ? " " : "") << fmt_double(state[j]);
  out << '\n';
  return out.str();
}

std::string DrmRuntime::encode_record(const JournalRecord& rec) const {
  std::ostringstream out;
  out << "fp " << hex_u64(rec.fingerprint) << " step " << rec.step
      << " rung " << rec.outcome.op_index << " deg "
      << (rec.outcome.degraded ? 1 : 0) << " act "
      << fmt_double(rec.activity) << " elapsed " << fmt_double(rec.elapsed_s)
      << " perf " << fmt_double(rec.outcome.performance) << " budget "
      << fmt_double(rec.outcome.budget_line) << " tmax "
      << fmt_double(rec.outcome.max_temp_c) << " nd "
      << rec.block_damage.size();
  for (double d : rec.block_damage) out << ' ' << fmt_double(d);
  return out.str();
}

bool DrmRuntime::decode_record(const std::string& payload,
                               std::size_t n_state, JournalRecord* out) {
  std::istringstream in(payload);
  std::string key, value;
  auto next = [&](const char* want) {
    return static_cast<bool>(in >> key >> value) && key == want;
  };
  std::uint64_t fp = 0;
  if (!next("fp") || !parse_hex_u64(value, &fp)) return false;
  out->fingerprint = fp;
  if (!next("step")) return false;
  out->step = std::strtoull(value.c_str(), nullptr, 10);
  if (!next("rung")) return false;
  out->outcome.op_index = std::strtoull(value.c_str(), nullptr, 10);
  if (!next("deg")) return false;
  out->outcome.degraded = value == "1";
  if (!next("act") || !parse_double(value, &out->activity)) return false;
  if (!next("elapsed") || !parse_double(value, &out->elapsed_s))
    return false;
  if (!next("perf") || !parse_double(value, &out->outcome.performance))
    return false;
  if (!next("budget") || !parse_double(value, &out->outcome.budget_line))
    return false;
  if (!next("tmax") || !parse_double(value, &out->outcome.max_temp_c))
    return false;
  if (!next("nd")) return false;
  const std::size_t nd = std::strtoull(value.c_str(), nullptr, 10);
  if (nd != n_state) return false;
  out->block_damage.resize(nd);
  for (std::size_t j = 0; j < nd; ++j) {
    if (!(in >> value) || !parse_double(value, &out->block_damage[j]))
      return false;
  }
  double total = 0.0;
  for (double d : out->block_damage) {
    if (!std::isfinite(d) || d < 0.0 || d > 1.0) return false;
    total += d;
  }
  out->outcome.damage = total;
  return std::isfinite(out->elapsed_s) && out->elapsed_s >= 0.0;
}

void DrmRuntime::open_journal(bool truncate) {
  journal_ = std::make_unique<ckpt::JournalWriter>(journal_path(), truncate);
}

bool DrmRuntime::checkpoint_now() {
  if (!durable()) return false;
  try {
    ckpt::write_snapshot_atomic(slot_path(next_slot_), kSchemaVersion,
                                encode_snapshot());
  } catch (const Error& e) {
    if (e.code() == ErrorCode::kDegraded) throw;
    diagnostics().warn("drm.checkpoint",
                       std::string("snapshot failed (") + e.what() +
                           "); continuing on the journal alone");
    return false;
  }
  next_slot_ = 1 - next_slot_;

  // Rotate the journal: records up to this snapshot move to the -prev file
  // (still needed if this snapshot later proves unreadable) and a fresh
  // epoch starts. A failed rotation keeps appending to the old file —
  // replay filters by step, so a journal spanning epochs stays correct.
  journal_.reset();
  std::error_code ec;
  fs::rename(journal_path(), journal_prev_path(), ec);
  const bool rotated = !ec || !fs::exists(journal_path());
  if (!rotated)
    diagnostics().warn("drm.journal",
                       "journal rotation failed; continuing with the "
                       "unrotated journal");
  try {
    open_journal(/*truncate=*/rotated);
  } catch (const Error& e) {
    if (e.code() == ErrorCode::kDegraded) throw;
    journal_.reset();
    diagnostics().warn("drm.journal",
                       std::string("cannot reopen journal (") + e.what() +
                           "); journaling suspended until it recovers");
  }
  return true;
}

void DrmRuntime::recover() {
  // 1. Decode the snapshot slots. Unreadable, corrupt, version-skewed, or
  //    foreign-fingerprint snapshots are recovery-ladder rungs, not fatal.
  struct Base {
    int slot = -1;  // -1: implicit cold base (zero damage at step 0)
    std::size_t step = 0;
    double elapsed_s = 0.0;
    std::size_t rung = 0;
    std::vector<double> damage;
  };
  const std::size_t n_state = mgr_.state_size();
  std::vector<Base> bases;
  bool snapshot_lost = false;  // a snapshot existed but was unusable
  for (int slot = 0; slot < 2; ++slot) {
    const std::string path = slot_path(slot);
    if (!fs::exists(path)) continue;
    std::string problem_with_slot;
    try {
      const ckpt::Snapshot snap = ckpt::read_snapshot(path);
      if (snap.version != kSchemaVersion) {
        problem_with_slot = "schema version " +
                            std::to_string(snap.version) + " (expected " +
                            std::to_string(kSchemaVersion) + ")";
      } else {
        std::istringstream in(snap.payload);
        std::string key, value;
        Base b;
        b.slot = slot;
        std::uint64_t fp = 0;
        bool ok = (in >> key >> value) && key == "fp" &&
                  parse_hex_u64(value, &fp);
        ok = ok && (in >> key >> b.step) && key == "step";
        ok = ok && (in >> key >> value) && key == "elapsed" &&
             parse_double(value, &b.elapsed_s);
        ok = ok && (in >> key >> b.rung) && key == "rung";
        std::size_t nd = 0;
        ok = ok && (in >> key >> nd) && key == "nd" && nd == n_state;
        if (ok) {
          b.damage.resize(nd);
          for (std::size_t j = 0; ok && j < nd; ++j)
            ok = (in >> value) && parse_double(value, &b.damage[j]) &&
                 std::isfinite(b.damage[j]) && b.damage[j] >= 0.0 &&
                 b.damage[j] <= 1.0;
        }
        ok = ok && std::isfinite(b.elapsed_s) && b.elapsed_s >= 0.0 &&
             b.rung < mgr_.ladder().size();
        if (!ok) {
          problem_with_slot = "undecodable payload";
        } else if (fp != fingerprint_) {
          problem_with_slot = "configuration fingerprint mismatch";
        } else {
          bases.push_back(std::move(b));
          continue;
        }
      }
    } catch (const Error& e) {
      if (e.code() == ErrorCode::kDegraded) throw;
      problem_with_slot = e.what();
    }
    snapshot_lost = true;
    diagnostics().warn("drm.recover", "snapshot '" + path +
                                          "' is unusable (" +
                                          problem_with_slot +
                                          "); falling back");
  }
  // Newest first; the implicit cold base backstops the ladder (it lets a
  // journal that covers the run from step 1 recover a crash that happened
  // before the first checkpoint was ever written).
  std::sort(bases.begin(), bases.end(),
            [](const Base& a, const Base& b) { return a.step > b.step; });
  bases.push_back(Base{-1, 0, 0.0, 0, std::vector<double>(n_state, 0.0)});

  // 2. Read both journal epochs. Torn tails are tolerated by design — the
  //    step whose append was interrupted is recomputed from telemetry.
  std::vector<JournalRecord> records;
  bool journal_lost = false;
  for (const std::string& path : {journal_prev_path(), journal_path()}) {
    const ckpt::JournalReadResult raw = ckpt::read_journal(path);
    if (!raw.clean_tail)
      diagnostics().warn("drm.journal", "journal '" + path +
                                            "' has a damaged tail (" +
                                            raw.tail_error + "); dropped");
    for (const std::string& payload : raw.records) {
      JournalRecord rec;
      if (!decode_record(payload, n_state, &rec)) {
        // An intact frame with an undecodable payload breaks the chain at
        // this point — later records can no longer be trusted to extend
        // this trajectory.
        journal_lost = true;
        diagnostics().warn("drm.recover",
                           "journal '" + path +
                               "' contains an undecodable record; later "
                               "records ignored");
        break;
      }
      records.push_back(std::move(rec));
    }
  }

  // 3. Pick the base whose journal continuation reaches the furthest step.
  const Base* best_base = nullptr;
  std::size_t best_final = 0;
  std::size_t best_applied = 0;
  const JournalRecord* best_last = nullptr;
  for (const Base& base : bases) {
    std::size_t expected = base.step + 1;
    std::size_t applied = 0;
    const JournalRecord* last = nullptr;
    for (const JournalRecord& rec : records) {
      if (rec.fingerprint != fingerprint_) break;
      if (rec.step < expected) continue;  // older epoch / duplicate
      if (rec.step != expected ||
          rec.outcome.op_index >= mgr_.ladder().size())
        break;  // gap or corrupt decision — the chain ends here
      last = &rec;
      ++applied;
      ++expected;
    }
    const std::size_t final_step = base.step + applied;
    if (best_base == nullptr || final_step > best_final) {
      best_base = &base;
      best_final = final_step;
      best_applied = applied;
      best_last = last;
    }
  }

  // 4. Apply. The chain (base + contiguous fingerprint-checked records)
  //    restores the exact post-step state the dead process had committed.
  if (best_last != nullptr) {
    mgr_.restore_state(best_last->block_damage, best_last->elapsed_s,
                       best_last->outcome.op_index);
  } else if (best_base->slot >= 0) {
    mgr_.restore_state(best_base->damage, best_base->elapsed_s,
                       best_base->rung);
  }
  step_count_ = best_final;
  next_slot_ = best_base->slot >= 0 ? 1 - best_base->slot : 0;

  recovery_.resumed_step = best_final;
  recovery_.replayed_records = best_applied;
  const bool used_snapshot = best_base->slot >= 0;
  // Degraded when expected state was lost: an unusable snapshot that the
  // chosen chain could not fully compensate for, a broken journal chain,
  // or a resume that found nothing at all.
  const Base* newest_snapshot =
      bases.front().slot >= 0 ? &bases.front() : nullptr;
  const bool fell_short =
      (snapshot_lost && (newest_snapshot == nullptr ||
                         best_final < newest_snapshot->step)) ||
      journal_lost;
  if (best_final == 0) {
    recovery_.source = RecoveryInfo::Source::kColdStart;
    recovery_.degraded = true;
    recovery_.detail =
        "no durable state recovered from '" + opts_.checkpoint_dir +
        "'; cold-starting with zero accumulated damage";
    diagnostics().warn("drm.recover", recovery_.detail);
  } else {
    recovery_.source = used_snapshot ? RecoveryInfo::Source::kCheckpoint
                                     : RecoveryInfo::Source::kJournal;
    recovery_.degraded = fell_short;
    std::ostringstream detail;
    detail << "resumed at step " << best_final << " (snapshot step "
           << (used_snapshot ? best_base->step : 0) << " + " << best_applied
           << " replayed journal record(s))";
    if (fell_short) {
      detail << "; some durable state was unrecoverable";
      diagnostics().warn("drm.recover", detail.str());
    }
    recovery_.detail = detail.str();
  }

  try {
    open_journal(/*truncate=*/false);
  } catch (const Error& e) {
    if (e.code() == ErrorCode::kDegraded) throw;
    journal_.reset();
    diagnostics().warn("drm.journal",
                       std::string("cannot reopen journal (") + e.what() +
                           "); journaling suspended until it recovers");
  }
  // Re-anchor a degraded recovery: snapshotting the recovered state makes
  // the fallback decision durable instead of repeating it on every
  // restart.
  if (recovery_.degraded) checkpoint_now();
}

DrmStep DrmRuntime::step(double workload_activity) {
  const auto t0 = std::chrono::steady_clock::now();
  const DrmStep out = mgr_.step(workload_activity);
  step_ms_.push_back(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count());
  ++step_count_;
  if (!durable()) return out;

  JournalRecord rec;
  rec.fingerprint = fingerprint_;
  rec.step = step_count_;
  rec.outcome = out;
  rec.activity = workload_activity;
  rec.elapsed_s = mgr_.elapsed_s();
  rec.block_damage = mgr_.damage_state();
  try {
    if (journal_ == nullptr) open_journal(/*truncate=*/false);
    journal_->append(encode_record(rec));
    if (opts_.sync_journal) journal_->sync();
  } catch (const Error& e) {
    if (e.code() == ErrorCode::kDegraded) throw;
    journal_.reset();  // retried on the next step
    diagnostics().warn("drm.journal",
                       std::string("append failed (") + e.what() +
                           "); this step is not durable until the next "
                           "checkpoint");
  }
  if (step_count_ % opts_.checkpoint_every == 0) checkpoint_now();
  return out;
}

void DrmRuntime::publish_step_stats() const {
  if (step_ms_.empty()) return;
  std::vector<double> sorted = step_ms_;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const double p50 = sorted[(n - 1) / 2];
  const double p99 = sorted[(99 * (n - 1)) / 100];
  std::ostringstream os;
  os << n << " step(s): p50 " << p50 << " ms, p99 " << p99 << " ms";
  if (mgr_.options().step_deadline_ms > 0.0)
    os << " (deadline " << mgr_.options().step_deadline_ms << " ms)";
  diagnostics().stat("drm.step_ms", os.str());

  // Incremental-recomputation observability: how much per-block state
  // each step actually moved, and how often the per-rung thermal memo
  // answered instead of the solver.
  const std::size_t n_blocks = mgr_.block_damage().size();
  std::ostringstream dirty;
  dirty << mgr_.dirty_blocks_total() << " dirty block update(s) over " << n
        << " step(s) of " << n_blocks << " block(s); conditions memo "
        << mgr_.conditions_cache_hits() << " hit(s), "
        << mgr_.conditions_cache_misses() << " miss(es)";
  diagnostics().stat("step.dirty_blocks", dirty.str());
  // arena.bytes is published once by the CLI's finish() path, next to
  // parallel.pool and simd.level — publishing here too would print the
  // stat twice per `drm run`.
}

}  // namespace obd::drm
