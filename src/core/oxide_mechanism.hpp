// The paper's gate-oxide breakdown model wrapped behind the
// mech::FailureMechanism interface.
//
// The direct evaluators (analytic/hybrid/MC) keep their existing hot
// paths — this adapter exists for interface-level consumers (mechanism
// stacks, the future surrogate tier) and is pinned by a test to be
// bit-for-bit identical to AnalyticAnalyzer::block_failure: it evaluates
// the same per-block quadrature node list through the same
// block_failure_from_nodes kernel.
//
// Conditions semantics: the wrapped problem already bakes each block's
// (alpha_j, b_j) at its operating temperature, so block_cdf ignores the
// conditions argument unless a DeviceReliabilityModel is supplied, in
// which case alpha/b are re-derived at the requested temperature and
// supply (the DRM rung path).
#pragma once

#include <memory>
#include <vector>

#include "core/analytic.hpp"
#include "core/problem.hpp"
#include "core/uv_nodes.hpp"
#include "mech/mechanism.hpp"

namespace obd::core {

class OxideMechanism final : public mech::FailureMechanism {
 public:
  /// Wraps `problem`'s blocks and an AnalyticAnalyzer's node lists.
  /// When `model` is non-null, block_cdf re-derives (alpha, b) from it at
  /// the conditions' temperature/supply instead of the baked-in values.
  explicit OxideMechanism(const ReliabilityProblem& problem,
                          const AnalyticOptions& options = {},
                          const DeviceReliabilityModel* model = nullptr);

  [[nodiscard]] const std::string& name() const override { return name_; }

  [[nodiscard]] double block_cdf(std::size_t j, double t,
                                 const mech::OperatingConditions& c)
      const override;
  [[nodiscard]] double block_time_at(std::size_t j, double f,
                                     const mech::OperatingConditions& c)
      const override;

 private:
  std::string name_ = "oxide";
  const ReliabilityProblem* problem_;
  const DeviceReliabilityModel* model_;
  AnalyticAnalyzer analyzer_;
};

}  // namespace obd::core
