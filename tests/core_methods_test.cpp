#include <gtest/gtest.h>

#include <cmath>

#include "chip/design.hpp"
#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "core/analytic.hpp"
#include "core/guardband.hpp"
#include "core/hybrid.hpp"
#include "core/lifetime.hpp"
#include "core/montecarlo.hpp"

namespace obd::core {
namespace {

// A small but non-trivial shared fixture: synthetic design, EV6-like
// temperature spread, built once for the whole suite (problem construction
// includes a PCA).
class MethodsFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_synthetic_design(
        "T1", {.devices = 30000, .block_count = 6, .die_width = 6.0,
               .die_height = 6.0, .seed = 77}));
    model_ = new AnalyticReliabilityModel();
    // Temperature spread similar to Fig. 1: hot spots ~30 C above idle.
    temps_ = new std::vector<double>{95.0, 70.0, 58.0, 82.0, 64.0, 75.0};
    ProblemOptions opts;
    opts.grid_cells_per_side = 10;
    problem_ = new ReliabilityProblem(ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_, *temps_, 1.2, opts));
  }
  static void TearDownTestSuite() {
    delete problem_;
    delete temps_;
    delete model_;
    delete design_;
    problem_ = nullptr;
    temps_ = nullptr;
    model_ = nullptr;
    design_ = nullptr;
  }

  static chip::Design* design_;
  static AnalyticReliabilityModel* model_;
  static std::vector<double>* temps_;
  static ReliabilityProblem* problem_;
};

chip::Design* MethodsFixture::design_ = nullptr;
AnalyticReliabilityModel* MethodsFixture::model_ = nullptr;
std::vector<double>* MethodsFixture::temps_ = nullptr;
ReliabilityProblem* MethodsFixture::problem_ = nullptr;

TEST_F(MethodsFixture, ProblemAssemblyIsConsistent) {
  EXPECT_EQ(problem_->blocks().size(), 6u);
  for (std::size_t j = 0; j < 6; ++j) {
    const auto& b = problem_->blocks()[j];
    EXPECT_GT(b.alpha, 0.0);
    EXPECT_GT(b.b, 0.0);
    EXPECT_DOUBLE_EQ(b.temp_c, (*temps_)[j]);
    EXPECT_DOUBLE_EQ(b.area, design_->blocks[j].obd_area());
  }
  EXPECT_DOUBLE_EQ(problem_->worst_temp_c(), 95.0);
  EXPECT_NEAR(problem_->min_thickness(), 2.2 * (1.0 - 0.04), 1e-12);
}

TEST_F(MethodsFixture, FailureIsMonotoneAndBounded) {
  const AnalyticAnalyzer fast(*problem_);
  double prev = 0.0;
  for (double t = 1e6; t < 1e11; t *= 3.0) {
    const double f = fast.failure_probability(t);
    EXPECT_GE(f, prev - 1e-15);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST_F(MethodsFixture, LifetimeRoundTrip) {
  const AnalyticAnalyzer fast(*problem_);
  for (double target : {kOneFaultPerMillion, kTenFaultsPerMillion, 1e-3}) {
    const double t = fast.lifetime_at(target);
    EXPECT_NEAR(fast.failure_probability(t) / target, 1.0, 1e-6);
  }
  // 10/million happens later than 1/million.
  EXPECT_GT(fast.lifetime_at(kTenFaultsPerMillion),
            fast.lifetime_at(kOneFaultPerMillion));
}

TEST_F(MethodsFixture, QuadratureSchemesAgree) {
  AnalyticOptions paper;
  paper.quadrature = Quadrature::kPaperMidpoint;
  paper.cells = 10;  // the paper's l0
  AnalyticOptions quantile;
  quantile.quadrature = Quadrature::kEqualProbability;
  quantile.cells = 32;
  const AnalyticAnalyzer a(*problem_, paper);
  const AnalyticAnalyzer b(*problem_, quantile);
  const double t1a = a.lifetime_at(kOneFaultPerMillion);
  const double t1b = b.lifetime_at(kOneFaultPerMillion);
  EXPECT_NEAR(t1a / t1b, 1.0, 0.05);
}

TEST_F(MethodsFixture, StFastTracksMonteCarloAtPpmLevels) {
  // The paper's headline claim (Table III): ~1-2% lifetime error vs MC.
  const AnalyticAnalyzer fast(*problem_);
  MonteCarloOptions mco;
  mco.chip_samples = 400;
  const MonteCarloAnalyzer mc(*problem_, mco);
  for (double target : {kOneFaultPerMillion, kTenFaultsPerMillion}) {
    const double t_fast = fast.lifetime_at(target);
    const double t_mc = mc.lifetime_at(target);
    EXPECT_NEAR(t_fast / t_mc, 1.0, 0.10) << "target " << target;
  }
}

TEST_F(MethodsFixture, StMcTracksStFast) {
  const AnalyticAnalyzer fast(*problem_);
  StMcOptions opt;
  opt.samples = 8000;
  const StMcAnalyzer st_mc(*problem_, opt);
  const double t_fast = fast.lifetime_at(kTenFaultsPerMillion);
  const double t_stmc = st_mc.lifetime_at(kTenFaultsPerMillion);
  EXPECT_NEAR(t_stmc / t_fast, 1.0, 0.08);
}

TEST_F(MethodsFixture, StMcSampleAverageMatchesHistogram) {
  StMcOptions hist;
  hist.samples = 6000;
  hist.use_histogram = true;
  StMcOptions raw = hist;
  raw.use_histogram = false;
  const StMcAnalyzer a(*problem_, hist);
  const StMcAnalyzer b(*problem_, raw);
  const double t = 2e8;
  EXPECT_NEAR(a.failure_probability(t) / b.failure_probability(t), 1.0, 0.05);
}

TEST_F(MethodsFixture, HybridMatchesStFast) {
  const AnalyticAnalyzer fast(*problem_);
  const HybridEvaluator hybrid(*problem_);
  for (double t : {5e7, 2e8, 1e9}) {
    const double ff = fast.failure_probability(t);
    const double fh = hybrid.failure_probability(t);
    EXPECT_NEAR(fh / ff, 1.0, 0.03) << "t=" << t;
  }
  EXPECT_NEAR(hybrid.lifetime_at(kOneFaultPerMillion) /
                  fast.lifetime_at(kOneFaultPerMillion),
              1.0, 0.03);
}

TEST_F(MethodsFixture, HybridMatchesAnalyticAtHighFailureLevels) {
  // Regression for the block-composition bug: summing per-block failures
  // and clamping to [0, 1] (the first-order expansion) overestimates F(t)
  // once blocks stop being individually reliable, saturating at 1 long
  // before the true weakest-link curve does. Both analyzers now compose
  // through the survival product, so they must agree deep into the
  // high-failure regime, not just at ppm levels.
  const AnalyticAnalyzer fast(*problem_);
  const HybridEvaluator hybrid(*problem_);
  for (double target : {0.5, 0.9, 0.99}) {
    const double t = fast.lifetime_at(target);
    const double ff = fast.failure_probability(t);
    const double fh = hybrid.failure_probability(t);
    ASSERT_NEAR(ff, target, 1e-6 * target);  // lifetime_at round trip
    EXPECT_LT(fh, 1.0) << "hybrid saturated at target " << target;
    EXPECT_NEAR(fh / ff, 1.0, 0.03) << "target " << target;
  }
  // The survival product can never exceed the first-order block-failure
  // sum; at F ~ 0.9 the two must differ measurably (the sum would have
  // been driven toward saturation).
  const double t90 = fast.lifetime_at(0.9);
  double block_sum = 0.0;
  for (std::size_t j = 0; j < problem_->blocks().size(); ++j)
    block_sum += fast.block_failure(j, t90);
  EXPECT_GT(block_sum, fast.failure_probability(t90) + 1e-3);
}

TEST_F(MethodsFixture, MonteCarloAccountsOutOfRangeThickness) {
  diagnostics().clear();
  // A deliberately narrow histogram (+-1 sigma of total variation) forces
  // a macroscopic fraction of device draws outside the axis. They must be
  // counted (not folded into edge bins) and flagged once via "mc.binning".
  MonteCarloOptions narrow;
  narrow.chip_samples = 50;
  narrow.thickness_range_sigmas = 1.0;
  const MonteCarloAnalyzer mc_narrow(*problem_, narrow);
  EXPECT_GT(mc_narrow.out_of_range_fraction(), 1e-6);
  EXPECT_EQ(diagnostics().count("mc.binning"), 1u);
  diagnostics().clear();

  // The default range must not clip and must not warn.
  MonteCarloOptions wide;
  wide.chip_samples = 50;
  const MonteCarloAnalyzer mc_wide(*problem_, wide);
  EXPECT_EQ(mc_wide.out_of_range_fraction(), 0.0);
  EXPECT_EQ(diagnostics().count("mc.binning"), 0u);

  // Boundary accounting keeps the clipped analyzer a sane estimator: the
  // out-of-range mass contributes at the clamp value instead of being
  // dropped, so F(t) stays bounded and in the neighborhood of the
  // unclipped estimate.
  for (double t : {1e8, 1e9}) {
    const double f_narrow = mc_narrow.failure_probability(t);
    const double f_wide = mc_wide.failure_probability(t);
    EXPECT_GE(f_narrow, 0.0);
    EXPECT_LE(f_narrow, 1.0);
    EXPECT_NEAR(f_narrow, f_wide, 0.25) << "t=" << t;
  }
  diagnostics().clear();
}

TEST_F(MethodsFixture, HybridPaperBilinearStillClose) {
  HybridOptions opt;
  opt.log_space = false;  // the paper-literal interpolation
  const HybridEvaluator hybrid(*problem_, opt);
  const AnalyticAnalyzer fast(*problem_);
  EXPECT_NEAR(hybrid.lifetime_at(kTenFaultsPerMillion) /
                  fast.lifetime_at(kTenFaultsPerMillion),
              1.0, 0.10);
}

TEST_F(MethodsFixture, HybridReparameterizationMatchesRebuiltProblem) {
  // The hybrid method's purpose: answer for a *different* temperature
  // profile without re-integration. Compare against st_fast on a problem
  // rebuilt at the new temperatures.
  const HybridEvaluator hybrid(*problem_);
  std::vector<double> hot_temps;
  for (double t : *temps_) hot_temps.push_back(t + 12.0);
  ProblemOptions opts;
  opts.grid_cells_per_side = 10;
  const auto hot_problem = ReliabilityProblem::build(
      *design_, var::VariationBudget{}, *model_, hot_temps, 1.2, opts);
  const AnalyticAnalyzer hot_fast(hot_problem);

  std::vector<double> alphas;
  std::vector<double> bs;
  for (double t : hot_temps) {
    alphas.push_back(model_->alpha(t, 1.2));
    bs.push_back(model_->b(t, 1.2));
  }
  const double t_query = 2e8;
  EXPECT_NEAR(hybrid.failure_probability_with(t_query, alphas, bs) /
                  hot_fast.failure_probability(t_query),
              1.0, 0.03);
}

TEST_F(MethodsFixture, GuardBandIsPessimisticByTensOfPercent) {
  // Table III: guard-band underestimates lifetime by ~40-60%.
  const AnalyticAnalyzer fast(*problem_);
  const GuardBandAnalyzer guard(*problem_);
  for (double target : {kOneFaultPerMillion, kTenFaultsPerMillion}) {
    const double t_fast = fast.lifetime_at(target);
    const double t_guard = guard.lifetime_at(target);
    EXPECT_LT(t_guard, t_fast);
    const double underestimate = 1.0 - t_guard / t_fast;
    EXPECT_GT(underestimate, 0.25) << "target " << target;
    EXPECT_LT(underestimate, 0.85) << "target " << target;
  }
}

TEST_F(MethodsFixture, GuardBandClosedFormRoundTrip) {
  const GuardBandAnalyzer guard(*problem_);
  const double t = guard.lifetime_at(1e-6);
  EXPECT_NEAR(guard.failure_probability(t), 1e-6, 1e-9);
}

TEST_F(MethodsFixture, TemperatureUnawareIsPessimistic) {
  // Using the worst temperature for every block (Fig. 10's
  // temperature-unaware curve) must under-predict lifetime vs the
  // temperature-aware analysis, but less than the guard band.
  ProblemOptions opts;
  opts.grid_cells_per_side = 10;
  const std::vector<double> worst(temps_->size(), problem_->worst_temp_c());
  const auto unaware_problem = ReliabilityProblem::build(
      *design_, var::VariationBudget{}, *model_, worst, 1.2, opts);
  const AnalyticAnalyzer aware(*problem_);
  const AnalyticAnalyzer unaware(unaware_problem);
  const GuardBandAnalyzer guard(*problem_);
  const double t_aware = aware.lifetime_at(kTenFaultsPerMillion);
  const double t_unaware = unaware.lifetime_at(kTenFaultsPerMillion);
  const double t_guard = guard.lifetime_at(kTenFaultsPerMillion);
  EXPECT_LT(t_unaware, t_aware);
  EXPECT_LT(t_guard, t_unaware);
}

TEST_F(MethodsFixture, MonteCarloFailureTimesMatchFailureCurve) {
  // The empirical CDF of sampled chip failure times must agree with the
  // analyzer's own failure probability at bulk quantiles.
  MonteCarloOptions mco;
  mco.chip_samples = 200;
  const MonteCarloAnalyzer mc(*problem_, mco);
  stats::Rng rng(8);
  auto times = mc.sample_failure_times(2000, rng);
  std::sort(times.begin(), times.end());
  const double median = times[times.size() / 2];
  const double f_at_median = mc.failure_probability(median);
  EXPECT_NEAR(f_at_median, 0.5, 0.06);
}

TEST_F(MethodsFixture, FailureCurveIsLogSpacedAndMonotone) {
  const AnalyticAnalyzer fast(*problem_);
  const auto curve = failure_curve(
      [&](double t) { return fast.failure_probability(t); }, 1e7, 1e10, 30);
  ASSERT_EQ(curve.size(), 30u);
  EXPECT_NEAR(curve.front().time_s, 1e7, 1.0);
  EXPECT_NEAR(curve.back().time_s, 1e10, 1e4);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].time_s, curve[i - 1].time_s);
    EXPECT_GE(curve[i].failure, curve[i - 1].failure - 1e-15);
  }
}

TEST(MethodsErrors, RejectBadArguments) {
  EXPECT_THROW(GuardBandAnalyzer(0.0, 1.0, 1.0, 1.0), obd::Error);
  EXPECT_THROW(GuardBandAnalyzer(1.0, 1.0, 1.0, 1.0).lifetime_at(0.0),
               obd::Error);
  EXPECT_THROW(
      lifetime_at_failure([](double) { return 0.5; }, 1.5), obd::Error);
}

}  // namespace
}  // namespace obd::core
