// Scalar vs AVX2 vs AVX-512 timings and exactness gates for the
// dispatched SIMD kernel layer (src/simd). Each section times the scalar
// reference table against the vector tables on the same inputs and checks
// the contract from simd/kernels.hpp (the same contract for both vector
// tiers):
//
//   fill_bin_factors  bounded relative drift (<= 1e-12 vs scalar)
//   dot_counts        bit-identical (FNV checksum equality)
//   normal_cdf_batch  bounded relative error (<= 1e-12 where > 1e-300)
//   matmul (GEMM)     bit-identical
//   gram_aat (SYRK)   bit-identical
//   clenshaw_batch    bit-identical (FNV checksum equality)
//
// On top of the exactness gates, each lap gates the per-kernel tier that
// "auto" dispatch composes (simd::kernel_level): the picked tier's
// measured time must stay within kAutoSlack of the fastest available
// tier. That is what keeps the kAutoCap table in dispatch.cpp honest — a
// widest-tier regression (or a ratio flip on new hardware, e.g. the
// dot_counts AVX-512 fold overtaking AVX2) fails the bench instead of
// silently serving a slower kernel.
//
// Results go to BENCH_simd.json (in $OBDREL_CSV_DIR when set). The exit
// code reflects the exactness and auto-tier gates only; raw speedups are
// reported for the acceptance tables but depend on the host. When a
// vector tier is unavailable its laps are skipped and the gates pass
// vacuously (recorded as "avx2_available" / "avx512_available": false).
// Per-lap JSON keeps the original scalar/AVX2 keys and adds
// seconds_avx512 / speedup_avx512 / auto_tier / auto_margin / auto_pass.
//
// Scaling knob: OBDREL_SIMD_BENCH_SCALE multiplies every rep count
// (default 1; CI smoke uses the default).
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stopwatch.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels.hpp"
#include "stats/rng.hpp"

namespace {

// Order-sensitive checksum over the exact bit patterns of a double stream
// (same scheme as hot_path_scaling): equal checksums iff every value is
// bit-identical and in the same order.
struct BitChecksum {
  std::uint64_t value = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  void add(double d) {
    std::uint64_t bits = std::bit_cast<std::uint64_t>(d);
    for (int i = 0; i < 8; ++i) {
      value ^= (bits >> (8 * i)) & 0xffu;
      value *= 0x100000001b3ull;  // FNV-1a prime
    }
  }
};

struct Lap {
  double seconds_scalar = 0.0;
  double seconds_avx2 = 0.0;
  double seconds_avx512 = 0.0;
  double speedup = 0.0;         // scalar / avx2
  double speedup_avx512 = 0.0;  // scalar / avx512
  bool pass = true;             // every available tier met its gate
  obd::simd::Level auto_tier = obd::simd::Level::kScalar;  // what auto picks
  double auto_margin = 0.0;  // picked tier seconds / fastest tier seconds
  bool auto_pass = true;     // auto_margin <= kAutoSlack
};

// Timing slack for the auto-tier gate: the picked tier may trail the
// fastest measured tier by this factor before the gate fails (run-to-run
// jitter on a shared box is real; the dot_counts AVX-512/AVX2 gap this
// gate exists to catch is ~1.6x).
constexpr double kAutoSlack = 1.25;

double tier_seconds(const Lap& lap, obd::simd::Level level) {
  switch (level) {
    case obd::simd::Level::kAvx512:
      return lap.seconds_avx512;
    case obd::simd::Level::kAvx2:
      return lap.seconds_avx2;
    default:
      return lap.seconds_scalar;
  }
}

// Gates that the tier "auto" composes for `id` is (within slack) the
// fastest one this run measured. Requires simd::configure("auto") to have
// run so kernel_level reflects the composed table.
void gate_auto(const char* name, Lap& lap, obd::simd::KernelId id,
               bool avx2, bool avx512) {
  lap.auto_tier = obd::simd::kernel_level(id);
  double best = lap.seconds_scalar;
  if (avx2) best = std::min(best, lap.seconds_avx2);
  if (avx512) best = std::min(best, lap.seconds_avx512);
  const double picked = tier_seconds(lap, lap.auto_tier);
  lap.auto_margin = best > 0.0 ? picked / best : 1.0;
  lap.auto_pass = lap.auto_margin <= kAutoSlack;
  std::printf("[%s] auto picks %s (%.2fx of fastest) %s\n", name,
              obd::simd::to_string(lap.auto_tier), lap.auto_margin,
              lap.auto_pass ? "PASS" : "FAIL");
}

volatile double g_sink = 0.0;  // keeps the optimizer honest across reps

}  // namespace

int main() {
  using namespace obd;
  const std::size_t scale = bench::env_size("OBDREL_SIMD_BENCH_SCALE", 1);
  const bool avx2 = simd::can_use_avx2();
  const bool avx512 = simd::can_use_avx512();
  const auto& s = simd::detail::kScalarKernels;
  const auto& v = simd::detail::kAvx2Kernels;
  const auto& w = simd::detail::kAvx512Kernels;

  std::printf(
      "SIMD kernel layer: scalar vs AVX2 vs AVX-512 (avx2+fma %s, "
      "avx512f+dq %s), scale %zu\n\n",
      avx2 ? "available" : "UNAVAILABLE - laps skipped",
      avx512 ? "available" : "UNAVAILABLE - laps skipped", scale);

  stats::Rng rng(2026);

  // ------------------------------------------------- fill_bin_factors ----
  Lap fill;
  {
    const std::size_t bins = 512;
    const std::size_t reps = 20000 * scale;
    const double gb = -7.25, x_lo = 1.8, step = 0.8 / 512.0;
    std::vector<double> a(bins), b(bins), c(bins);
    Stopwatch sw;
    for (std::size_t r = 0; r < reps; ++r) {
      s.fill_bin_factors(gb, x_lo, step, bins, a.data());
      g_sink = a[0];
    }
    fill.seconds_scalar = sw.seconds();
    if (avx2) {
      sw.reset();
      for (std::size_t r = 0; r < reps; ++r) {
        v.fill_bin_factors(gb, x_lo, step, bins, b.data());
        g_sink = b[0];
      }
      fill.seconds_avx2 = sw.seconds();
      fill.speedup = fill.seconds_scalar / fill.seconds_avx2;
      for (std::size_t i = 0; i < bins; ++i)
        if (std::abs(b[i] - a[i]) / a[i] > 1e-12) fill.pass = false;
    }
    if (avx512) {
      sw.reset();
      for (std::size_t r = 0; r < reps; ++r) {
        w.fill_bin_factors(gb, x_lo, step, bins, c.data());
        g_sink = c[0];
      }
      fill.seconds_avx512 = sw.seconds();
      fill.speedup_avx512 = fill.seconds_scalar / fill.seconds_avx512;
      for (std::size_t i = 0; i < bins; ++i)
        if (std::abs(c[i] - a[i]) / a[i] > 1e-12) fill.pass = false;
    }
    std::printf("[fill_bin_factors] %zu bins x %zu: scalar %.3f s, avx2 "
                "%.3f s (%.1fx), avx512 %.3f s (%.1fx), drift gate %s\n",
                bins, reps, fill.seconds_scalar, fill.seconds_avx2,
                fill.speedup, fill.seconds_avx512, fill.speedup_avx512,
                fill.pass ? "PASS" : "FAIL");
  }

  // ------------------------------------------------------- dot_counts ----
  Lap dot;
  {
    const std::size_t n = 4096;
    const std::size_t reps = 50000 * scale;
    std::vector<std::uint32_t> c(n);
    std::vector<double> e(n);
    for (std::size_t i = 0; i < n; ++i) {
      c[i] = static_cast<std::uint32_t>(rng.uniform() * 1e6);
      e[i] = std::exp(-6.0 * rng.uniform());
    }
    BitChecksum cs_s, cs_v, cs_w;
    Stopwatch sw;
    for (std::size_t r = 0; r < reps; ++r)
      g_sink = s.dot_counts(c.data(), e.data(), n);
    dot.seconds_scalar = sw.seconds();
    cs_s.add(s.dot_counts(c.data(), e.data(), n));
    if (avx2) {
      sw.reset();
      for (std::size_t r = 0; r < reps; ++r)
        g_sink = v.dot_counts(c.data(), e.data(), n);
      dot.seconds_avx2 = sw.seconds();
      dot.speedup = dot.seconds_scalar / dot.seconds_avx2;
      cs_v.add(v.dot_counts(c.data(), e.data(), n));
      if (cs_s.value != cs_v.value) dot.pass = false;
    }
    if (avx512) {
      sw.reset();
      for (std::size_t r = 0; r < reps; ++r)
        g_sink = w.dot_counts(c.data(), e.data(), n);
      dot.seconds_avx512 = sw.seconds();
      dot.speedup_avx512 = dot.seconds_scalar / dot.seconds_avx512;
      cs_w.add(w.dot_counts(c.data(), e.data(), n));
      if (cs_s.value != cs_w.value) dot.pass = false;
    }
    std::printf("[dot_counts] n=%zu x %zu: scalar %.3f s, avx2 %.3f s "
                "(%.1fx), avx512 %.3f s (%.1fx), bitwise %s\n",
                n, reps, dot.seconds_scalar, dot.seconds_avx2, dot.speedup,
                dot.seconds_avx512, dot.speedup_avx512,
                dot.pass ? "IDENTICAL" : "DIFFER");
  }

  // -------------------------------------------------- normal_cdf_batch ----
  Lap cdf;
  {
    const std::size_t n = 4096;
    const std::size_t reps = 2000 * scale;
    std::vector<double> z(n), a(n), b(n), c(n);
    for (std::size_t i = 0; i < n; ++i) z[i] = -20.0 + 40.0 * rng.uniform();
    Stopwatch sw;
    for (std::size_t r = 0; r < reps; ++r) {
      s.normal_cdf_batch(z.data(), n, a.data());
      g_sink = a[0];
    }
    cdf.seconds_scalar = sw.seconds();
    if (avx2) {
      sw.reset();
      for (std::size_t r = 0; r < reps; ++r) {
        v.normal_cdf_batch(z.data(), n, b.data());
        g_sink = b[0];
      }
      cdf.seconds_avx2 = sw.seconds();
      cdf.speedup = cdf.seconds_scalar / cdf.seconds_avx2;
      for (std::size_t i = 0; i < n; ++i)
        if (a[i] > 1e-300 && std::abs(b[i] - a[i]) / a[i] > 1e-12)
          cdf.pass = false;
    }
    if (avx512) {
      sw.reset();
      for (std::size_t r = 0; r < reps; ++r) {
        w.normal_cdf_batch(z.data(), n, c.data());
        g_sink = c[0];
      }
      cdf.seconds_avx512 = sw.seconds();
      cdf.speedup_avx512 = cdf.seconds_scalar / cdf.seconds_avx512;
      for (std::size_t i = 0; i < n; ++i)
        if (a[i] > 1e-300 && std::abs(c[i] - a[i]) / a[i] > 1e-12)
          cdf.pass = false;
    }
    std::printf("[normal_cdf_batch] n=%zu x %zu: scalar %.3f s, avx2 %.3f "
                "s (%.1fx), avx512 %.3f s (%.1fx), error gate %s\n",
                n, reps, cdf.seconds_scalar, cdf.seconds_avx2, cdf.speedup,
                cdf.seconds_avx512, cdf.speedup_avx512,
                cdf.pass ? "PASS" : "FAIL");
  }

  // ------------------------------------------------------ matmul (GEMM) ----
  Lap gemm;
  {
    const std::size_t m = 96, k = 96, n = 96;
    const std::size_t reps = 200 * scale;
    std::vector<double> a(m * k), bm(k * n), os(m * n), ov(m * n), ow(m * n);
    for (double& x : a) x = rng.normal();
    for (double& x : bm) x = rng.normal();
    Stopwatch sw;
    for (std::size_t r = 0; r < reps; ++r) {
      std::fill(os.begin(), os.end(), 0.0);
      s.matmul(a.data(), bm.data(), os.data(), m, k, n);
      g_sink = os[0];
    }
    gemm.seconds_scalar = sw.seconds();
    BitChecksum cs_s;
    for (std::size_t i = 0; i < m * n; ++i) cs_s.add(os[i]);
    if (avx2) {
      sw.reset();
      for (std::size_t r = 0; r < reps; ++r) {
        std::fill(ov.begin(), ov.end(), 0.0);
        v.matmul(a.data(), bm.data(), ov.data(), m, k, n);
        g_sink = ov[0];
      }
      gemm.seconds_avx2 = sw.seconds();
      gemm.speedup = gemm.seconds_scalar / gemm.seconds_avx2;
      BitChecksum cs_v;
      for (std::size_t i = 0; i < m * n; ++i) cs_v.add(ov[i]);
      if (cs_s.value != cs_v.value) gemm.pass = false;
    }
    if (avx512) {
      sw.reset();
      for (std::size_t r = 0; r < reps; ++r) {
        std::fill(ow.begin(), ow.end(), 0.0);
        w.matmul(a.data(), bm.data(), ow.data(), m, k, n);
        g_sink = ow[0];
      }
      gemm.seconds_avx512 = sw.seconds();
      gemm.speedup_avx512 = gemm.seconds_scalar / gemm.seconds_avx512;
      BitChecksum cs_w;
      for (std::size_t i = 0; i < m * n; ++i) cs_w.add(ow[i]);
      if (cs_s.value != cs_w.value) gemm.pass = false;
    }
    std::printf("[matmul] %zux%zux%zu x %zu: scalar %.3f s, avx2 %.3f s "
                "(%.1fx), avx512 %.3f s (%.1fx), bitwise %s\n",
                m, k, n, reps, gemm.seconds_scalar, gemm.seconds_avx2,
                gemm.speedup, gemm.seconds_avx512, gemm.speedup_avx512,
                gemm.pass ? "IDENTICAL" : "DIFFER");
  }

  // ---------------------------------------------------- gram_aat (SYRK) ----
  Lap gram;
  {
    const std::size_t n = 144, k = 512;
    const std::size_t reps = 100 * scale;
    std::vector<double> a(n * k), gs(n * n), gv(n * n), gw(n * n);
    for (double& x : a) x = rng.normal();
    Stopwatch sw;
    for (std::size_t r = 0; r < reps; ++r) {
      s.gram_aat(a.data(), gs.data(), n, k);
      g_sink = gs[0];
    }
    gram.seconds_scalar = sw.seconds();
    BitChecksum cs_s;
    for (std::size_t i = 0; i < n * n; ++i) cs_s.add(gs[i]);
    if (avx2) {
      sw.reset();
      for (std::size_t r = 0; r < reps; ++r) {
        v.gram_aat(a.data(), gv.data(), n, k);
        g_sink = gv[0];
      }
      gram.seconds_avx2 = sw.seconds();
      gram.speedup = gram.seconds_scalar / gram.seconds_avx2;
      BitChecksum cs_v;
      for (std::size_t i = 0; i < n * n; ++i) cs_v.add(gv[i]);
      if (cs_s.value != cs_v.value) gram.pass = false;
    }
    if (avx512) {
      sw.reset();
      for (std::size_t r = 0; r < reps; ++r) {
        w.gram_aat(a.data(), gw.data(), n, k);
        g_sink = gw[0];
      }
      gram.seconds_avx512 = sw.seconds();
      gram.speedup_avx512 = gram.seconds_scalar / gram.seconds_avx512;
      BitChecksum cs_w;
      for (std::size_t i = 0; i < n * n; ++i) cs_w.add(gw[i]);
      if (cs_s.value != cs_w.value) gram.pass = false;
    }
    std::printf("[gram_aat] %zux%zu x %zu: scalar %.3f s, avx2 %.3f s "
                "(%.1fx), avx512 %.3f s (%.1fx), bitwise %s\n",
                n, k, reps, gram.seconds_scalar, gram.seconds_avx2,
                gram.speedup, gram.seconds_avx512, gram.speedup_avx512,
                gram.pass ? "IDENTICAL" : "DIFFER");
  }

  // --------------------------------------------------- clenshaw_batch ----
  Lap clen;
  {
    const std::size_t n = 25, m = 64;
    const std::size_t reps = 100000 * scale;
    std::vector<double> coeffs(n * m), os(m), ov(m), ow(m);
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t p = 0; p < m; ++p)
        coeffs[k * m + p] =
            rng.normal() / (1.0 + static_cast<double>(k * k));
    const double u = -0.37;
    Stopwatch sw;
    for (std::size_t r = 0; r < reps; ++r) {
      s.clenshaw_batch(coeffs.data(), n, m, u, os.data());
      g_sink = os[0];
    }
    clen.seconds_scalar = sw.seconds();
    BitChecksum cs_s;
    for (std::size_t p = 0; p < m; ++p) cs_s.add(os[p]);
    if (avx2) {
      sw.reset();
      for (std::size_t r = 0; r < reps; ++r) {
        v.clenshaw_batch(coeffs.data(), n, m, u, ov.data());
        g_sink = ov[0];
      }
      clen.seconds_avx2 = sw.seconds();
      clen.speedup = clen.seconds_scalar / clen.seconds_avx2;
      BitChecksum cs_v;
      for (std::size_t p = 0; p < m; ++p) cs_v.add(ov[p]);
      if (cs_s.value != cs_v.value) clen.pass = false;
    }
    if (avx512) {
      sw.reset();
      for (std::size_t r = 0; r < reps; ++r) {
        w.clenshaw_batch(coeffs.data(), n, m, u, ow.data());
        g_sink = ow[0];
      }
      clen.seconds_avx512 = sw.seconds();
      clen.speedup_avx512 = clen.seconds_scalar / clen.seconds_avx512;
      BitChecksum cs_w;
      for (std::size_t p = 0; p < m; ++p) cs_w.add(ow[p]);
      if (cs_s.value != cs_w.value) clen.pass = false;
    }
    std::printf("[clenshaw_batch] n=%zu m=%zu x %zu: scalar %.3f s, avx2 "
                "%.3f s (%.1fx), avx512 %.3f s (%.1fx), bitwise %s\n",
                n, m, reps, clen.seconds_scalar, clen.seconds_avx2,
                clen.speedup, clen.seconds_avx512, clen.speedup_avx512,
                clen.pass ? "IDENTICAL" : "DIFFER");
  }

  // Per-kernel auto-tier gates against this run's own timings.
  std::printf("\n");
  simd::configure("auto");
  gate_auto("fill_bin_factors", fill, simd::KernelId::kFillBinFactors, avx2,
            avx512);
  gate_auto("dot_counts", dot, simd::KernelId::kDotCounts, avx2, avx512);
  gate_auto("normal_cdf_batch", cdf, simd::KernelId::kNormalCdfBatch, avx2,
            avx512);
  gate_auto("matmul", gemm, simd::KernelId::kMatmul, avx2, avx512);
  gate_auto("gram_aat", gram, simd::KernelId::kGramAat, avx2, avx512);
  gate_auto("clenshaw_batch", clen, simd::KernelId::kClenshawBatch, avx2,
            avx512);

  const bool pass = fill.pass && dot.pass && cdf.pass && gemm.pass &&
                    gram.pass && clen.pass && fill.auto_pass &&
                    dot.auto_pass && cdf.auto_pass && gemm.auto_pass &&
                    gram.auto_pass && clen.auto_pass;
  std::printf("\nexactness + auto-tier gates %s\n", pass ? "PASS" : "FAIL");

  std::string dir = csv_output_dir();
  const std::string path =
      (dir.empty() ? std::string{} : dir + "/") + "BENCH_simd.json";
  std::ofstream out(path);
  auto emit = [&](const char* name, const Lap& lap, bool last = false) {
    out << "  \"" << name << "\": {\n"
        << "    \"seconds_scalar\": " << lap.seconds_scalar << ",\n"
        << "    \"seconds_avx2\": " << lap.seconds_avx2 << ",\n"
        << "    \"seconds_avx512\": " << lap.seconds_avx512 << ",\n"
        << "    \"speedup\": " << lap.speedup << ",\n"
        << "    \"speedup_avx512\": " << lap.speedup_avx512 << ",\n"
        << "    \"auto_tier\": \"" << simd::to_string(lap.auto_tier)
        << "\",\n"
        << "    \"auto_margin\": " << lap.auto_margin << ",\n"
        << "    \"auto_pass\": " << (lap.auto_pass ? "true" : "false")
        << ",\n"
        << "    \"pass\": " << (lap.pass ? "true" : "false") << "\n"
        << "  }" << (last ? "\n" : ",\n");
  };
  out << "{\n"
      << "  \"avx2_available\": " << (avx2 ? "true" : "false") << ",\n"
      << "  \"avx512_available\": " << (avx512 ? "true" : "false") << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << ",\n";
  emit("fill_bin_factors", fill);
  emit("dot_counts", dot);
  emit("normal_cdf_batch", cdf);
  emit("matmul", gemm);
  emit("gram_aat", gram);
  emit("clenshaw_batch", clen, true);
  out << "}\n";
  std::printf("(wrote %s)\n", path.c_str());
  return pass ? 0 : 1;
}
