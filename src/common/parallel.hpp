// Shared deterministic parallel execution layer.
//
// Every population-sized hot loop in the library (Monte Carlo chip
// sampling, per-chip evaluation sweeps, hybrid table fills, bench drivers)
// runs through this one lazily-started thread pool instead of spawning
// ad-hoc std::thread stripes per call. The pool size is chosen once from,
// in priority order: set_threads() (the --threads CLI flag / `threads`
// config key), the OBDREL_THREADS environment variable, and
// std::thread::hardware_concurrency(). The environment/hardware probe is
// resolved once and cached — per-region calls (every evaluator passes its
// own max_threads) never re-read the environment, so a trace-playback
// step costs no env lookups. Changing OBDREL_THREADS after the first
// region has no effect; use set_threads().
//
// Determinism contract: work is split into *fixed* chunks whose boundaries
// depend only on (begin, end, chunk) — never on the thread count — and
// parallel_reduce combines the per-chunk partials in ascending chunk order
// on the calling thread. Results are therefore bit-identical for any pool
// size, including fully serial execution; docs/PERFORMANCE.md states the
// contract callers rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace obd::par {

/// Cumulative pool counters since start / reset_stats(). Surfaced through
/// the Diagnostics collector by publish_stats() and the CLI.
struct PoolStats {
  std::uint64_t regions = 0;        ///< parallel_for/reduce invocations
  std::uint64_t inline_regions = 0; ///< regions that ran serially inline
  std::uint64_t chunks = 0;         ///< chunk bodies executed
  double busy_seconds = 0.0;        ///< aggregate chunk execution time
  double wait_seconds = 0.0;        ///< callers blocked on region completion
};

/// Effective worker count the next parallel region will use (>= 1).
[[nodiscard]] std::size_t thread_count();

/// Overrides the pool size; 0 restores the automatic choice
/// (OBDREL_THREADS, else hardware_concurrency). If workers are already
/// running at a different width they are joined and the pool restarts
/// lazily at the new width. Safe to call between regions, not from inside
/// a region body.
void set_threads(std::size_t n);

/// Joins all workers now (idempotent). The pool restarts lazily on the
/// next parallel region; the configured width is kept.
void shutdown();

/// Runs body(chunk_begin, chunk_end) over [begin, end) split into chunks of
/// `chunk` indices (the final chunk may be short). Bodies must write only
/// disjoint state; chunks execute concurrently on the shared pool. With
/// `max_threads` 1 (or a 1-thread pool, or a range smaller than one chunk)
/// everything runs inline on the caller. `max_threads` 0 means the pool
/// default; it never *grows* the pool.
void parallel_for(std::size_t begin, std::size_t end, std::size_t chunk,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t max_threads = 0);

namespace detail {
/// Executes chunk_body(i) for i in [0, n_chunks) on the pool;
/// max_threads as in parallel_for.
void run_chunks(std::size_t n_chunks,
                const std::function<void(std::size_t)>& chunk_body,
                std::size_t max_threads);
}  // namespace detail

/// Deterministic map/reduce over [begin, end): `map(chunk_begin,
/// chunk_end) -> T` produces one partial per fixed chunk; the partials are
/// folded as combine(acc, partial) in ascending chunk order starting from
/// `identity`. The fold order is a function of (begin, end, chunk) only,
/// so the result is bit-identical for any thread count.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t chunk,
                  T identity, Map&& map, Combine&& combine,
                  std::size_t max_threads = 0) {
  if (begin >= end) return identity;
  if (chunk == 0) chunk = 1;
  const std::size_t n_chunks = (end - begin + chunk - 1) / chunk;
  std::vector<T> partials(n_chunks, identity);
  detail::run_chunks(
      n_chunks,
      [&](std::size_t i) {
        const std::size_t b = begin + i * chunk;
        const std::size_t e = std::min(end, b + chunk);
        partials[i] = map(b, e);
      },
      max_threads);
  T acc = identity;
  for (const T& p : partials) acc = combine(acc, p);
  return acc;
}

/// Snapshot of the cumulative pool counters.
[[nodiscard]] PoolStats stats();

/// Zeroes the cumulative pool counters (start of a fresh run).
void reset_stats();

/// Records a one-line pool summary into obd::diagnostics() as a
/// non-degrading stat entry ("parallel.pool") — a no-op when no region has
/// run since the last reset_stats().
void publish_stats();

}  // namespace obd::par
