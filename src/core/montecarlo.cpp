#include "core/montecarlo.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/lifetime.hpp"
#include "numeric/roots.hpp"
#include "simd/kernels.hpp"
#include "stats/sampling.hpp"
#include "stats/special.hpp"

namespace obd::core {
namespace {

// Fixed chunk sizes for the shared pool. Chunk boundaries (not the thread
// count) define the reduction order, so these are part of the numerical
// contract: changing them reorders floating-point sums.
constexpr std::size_t kSampleChunk = 8;    ///< chips per sampling task
constexpr std::size_t kEvalChunk = 64;     ///< chips per evaluation task
constexpr std::size_t kSimulateChunk = 4;  ///< chips per failure-time task

// Chips per cache tile inside one evaluation chunk of a batched sweep:
// each sweep point's factor rows are applied to this many chip histograms
// before moving to the next point, keeping the histograms L2-resident and
// the factor-table traffic per chunk proportional to chunk/kEvalTile
// instead of the chip count. Purely a blocking factor — the per-point
// accumulation order over chips is unchanged, so results do not depend on
// it.
constexpr std::size_t kEvalTile = 16;

// |z| beyond which normal_cdf is exactly 0 or 1 in double (erfc underflows
// near |z| ~ 38.5); bins whose edges lie past this window carry exactly
// zero probability and can be skipped without consuming randomness.
constexpr double kTailZ = 39.0;

// Core half-width of the binned sampler in residual sigmas: bins within
// kCoreZ sigma of the cell mean are drawn individually; the tails outside
// (still inside the representable kTailZ window) are grouped into a single
// binomial each and subdivided only when their count is nonzero. 5 sigma
// keeps the grouped-tail trigger probability per cell at ~n * 3e-7 while
// bounding the per-cell work to ~10 sigma worth of bins.
constexpr double kCoreZ = 5.0;

// Dot product of a count vector against a factor table with four fixed
// accumulator lanes, combined as (a0 + a2) + (a1 + a3). The structure is
// part of the determinism contract: the scalar and batched evaluation
// paths both call exactly this kernel, so their results are bit-identical
// — and the SIMD layer guarantees the same lane mapping at every dispatch
// level (see simd/kernels.hpp), so dispatch changes neither the sums nor
// the validity of the lane-aligned nonzero-range trimming below.
static_assert(simd::kDotLanes == 4,
              "nz_lo alignment in sample_chip assumes 4 accumulator lanes");
double dot_counts(const std::uint32_t* c, const double* e, std::size_t n) {
  return simd::kernels().dot_counts(c, e, n);
}

// Per-thread factor scratch for the scalar chip_exponent path, so Brent
// iterations inside sample_failure_times do not allocate per evaluation.
thread_local std::vector<double> scalar_factor_scratch;

}  // namespace

namespace detail {

void fill_bin_factors(double gb, double x_lo, double step, std::size_t bins,
                      std::vector<double>& out) {
  static_assert(kReanchorInterval == simd::kReanchorInterval,
                "re-anchor contract must match the SIMD kernel layer");
  out.resize(bins);
  simd::kernels().fill_bin_factors(gb, x_lo, step, bins, out.data());
}

}  // namespace detail

MonteCarloAnalyzer::MonteCarloAnalyzer(const ReliabilityProblem& problem,
                                       const MonteCarloOptions& options)
    : problem_(&problem), options_(options) {
  require(!problem.mechanisms().has_redundancy(), ErrorCode::kInvalidInput,
          "MonteCarloAnalyzer: redundancy spare groups are not supported on "
          "the Monte Carlo path (use the analytic or hybrid evaluators)");
  require(options.chip_samples >= 10,
          "MonteCarloAnalyzer: need at least 10 sample chips");
  require(options.thickness_bins >= 16,
          "MonteCarloAnalyzer: need at least 16 thickness bins");
  init_axis();

  // One independent stream per chip, derived by splitmix64-mixing
  // (seed, chip index) — see Rng::stream. Results are reproducible and
  // independent of the thread count.
  chips_.resize(options.chip_samples);
  par::parallel_for(
      0, options.chip_samples, kSampleChunk,
      [this](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          stats::Rng rng = stats::Rng::stream(options_.seed, s);
          chips_[s] = sample_chip(rng);
        }
      },
      options.threads);

  // Out-of-range accounting is aggregated serially after the parallel
  // sampling so the diagnostic (and any strict-mode throw) fires exactly
  // once, on the calling thread.
  std::uint64_t out_of_range = 0;
  for (const ChipSample& chip : chips_) {
    for (std::size_t j = 0; j < chip.underflow.size(); ++j)
      out_of_range += chip.underflow[j] + chip.overflow[j];
  }
  const double total = static_cast<double>(options.chip_samples) *
                       static_cast<double>(problem.design().total_devices());
  out_of_range_fraction_ =
      (total > 0.0) ? static_cast<double>(out_of_range) / total : 0.0;
  if (out_of_range_fraction_ > 1e-6) {
    std::ostringstream msg;
    msg << "thickness histogram range [" << x_lo_ << ", " << x_hi_
        << "] nm misses a fraction " << out_of_range_fraction_
        << " of device samples (accounted at the range boundary); widen "
           "thickness_range_sigmas";
    diagnostics().warn("mc.binning", msg.str());
  }
}

MonteCarloAnalyzer::MonteCarloAnalyzer(StreamingTag,
                                       const ReliabilityProblem& problem,
                                       const MonteCarloOptions& options)
    : problem_(&problem), options_(options) {
  require(!problem.mechanisms().has_redundancy(), ErrorCode::kInvalidInput,
          "MonteCarloAnalyzer: redundancy spare groups are not supported on "
          "the Monte Carlo path (use the analytic or hybrid evaluators)");
  require(options.thickness_bins >= 16,
          "MonteCarloAnalyzer: need at least 16 thickness bins");
  init_axis();
}

MonteCarloAnalyzer MonteCarloAnalyzer::streaming(
    const ReliabilityProblem& problem, const MonteCarloOptions& options) {
  return MonteCarloAnalyzer(StreamingTag{}, problem, options);
}

void MonteCarloAnalyzer::init_axis() {
  // Common thickness axis covering nominal spread plus range_sigmas of
  // total variation (wafer patterns can shift the per-grid nominal).
  const var::CanonicalForm& canonical = problem_->canonical();
  double nom_lo = canonical.nominal(0);
  double nom_hi = canonical.nominal(0);
  for (std::size_t g = 1; g < canonical.grid_count(); ++g) {
    nom_lo = std::min(nom_lo, canonical.nominal(g));
    nom_hi = std::max(nom_hi, canonical.nominal(g));
  }
  const double half =
      options_.thickness_range_sigmas * problem_->budget().sigma_total();
  x_lo_ = nom_lo - half;
  x_step_ =
      (nom_hi + half - x_lo_) / static_cast<double>(options_.thickness_bins);
  x_hi_ = x_lo_ + x_step_ * static_cast<double>(options_.thickness_bins);
}

MonteCarloAnalyzer::RangePartial MonteCarloAnalyzer::accumulate_chip_range(
    std::span<const double> ts, std::uint64_t chip_begin,
    std::uint64_t chip_end) const {
  for (const double t : ts)
    require(t > 0.0, "MonteCarloAnalyzer: t must be positive");
  RangePartial out;
  out.chips = (chip_end > chip_begin) ? chip_end - chip_begin : 0;
  out.sum_f.assign(ts.size(), 0.0);
  out.sum_f2.assign(ts.size(), 0.0);
  if (ts.empty() || out.chips == 0) return out;
  const EvalContext ctx = build_eval_context(ts);
  const std::size_t nt = ts.size();
  // Sequential chip-outer / ti-inner accumulation: each chip is sampled
  // from its global-index stream, evaluated at every sweep point, and
  // discarded. No tiling, no threading — the caller owns parallelism at
  // range granularity, which is what keeps fleet results independent of
  // shard and thread counts.
  // With aging mechanisms enabled (and no redundancy — the constructor
  // rejects it here), the deterministic aging survival S(t) separates
  // from the sampled oxide term: per chip F' = 1 - (1 - F_oxide) S(t).
  const mech::MechanismStack& stack = problem_->mechanisms();
  std::vector<double> extra_s;
  if (stack.extra_count() > 0) {
    extra_s.resize(nt);
    for (std::size_t ti = 0; ti < nt; ++ti)
      extra_s[ti] = stack.extra_survival(ts[ti]);
  }
  for (std::uint64_t i = chip_begin; i < chip_end; ++i) {
    stats::Rng rng = stats::Rng::stream(options_.seed, i);
    const ChipSample chip = sample_chip(rng);
    if (extra_s.empty()) {
      for (std::size_t ti = 0; ti < nt; ++ti) {
        const double f = -std::expm1(-chip_exponent_ctx(chip, ctx, ti));
        out.sum_f[ti] += f;
        out.sum_f2[ti] += f * f;
      }
    } else {
      for (std::size_t ti = 0; ti < nt; ++ti) {
        const double f_ox = -std::expm1(-chip_exponent_ctx(chip, ctx, ti));
        const double f = 1.0 - (1.0 - f_ox) * extra_s[ti];
        out.sum_f[ti] += f;
        out.sum_f2[ti] += f * f;
      }
    }
  }
  return out;
}

void MonteCarloAnalyzer::sample_cell_binned(std::size_t count, double mu,
                                            double sr,
                                            std::vector<std::uint32_t>& counts,
                                            std::uint32_t& underflow,
                                            std::uint32_t& overflow,
                                            stats::Rng& rng) const {
  if (count == 0) return;
  const std::size_t bins = options_.thickness_bins;
  const double inv_step = 1.0 / x_step_;
  if (sr <= 0.0) {
    // Degenerate residual: every device sits exactly at mu.
    const double f = (mu - x_lo_) * inv_step;
    if (f < 0.0) {
      underflow += static_cast<std::uint32_t>(count);
    } else if (f >= static_cast<double>(bins)) {
      overflow += static_cast<std::uint32_t>(count);
    } else {
      counts[static_cast<std::size_t>(f)] +=
          static_cast<std::uint32_t>(count);
    }
    return;
  }

  // Window of bins whose Gaussian mass is representable in double; bins
  // outside have exactly-zero probability (both edge cdfs are exactly 0,
  // or exactly 1), so skipping them draws nothing and loses no mass. The
  // window is widened by one bin on each side, which swamps any rounding
  // in the index arithmetic.
  const double nbins = static_cast<double>(bins);
  const double c_lo =
      std::min((mu - kTailZ * sr - x_lo_) * inv_step, nbins);
  const double c_hi =
      std::min((mu + kTailZ * sr - x_lo_) * inv_step, nbins);
  const std::size_t ka =
      (c_lo <= 1.0) ? 0 : static_cast<std::size_t>(c_lo - 1.0);
  const std::size_t kb =
      (c_hi <= 0.0) ? 0
                    : std::min(bins, static_cast<std::size_t>(c_hi + 2.0));

  // Conditional-binomial multinomial sampling in fixed category order:
  // underflow, bins ascending, overflow as the remainder. Each category
  // draws Binomial(remaining, p_cat / p_remaining); the chain is exactly
  // the multinomial over all categories.
  std::uint64_t remaining = count;
  double prem = 1.0;
  const double inv_sr = 1.0 / sr;
  const auto edge_z = [&](std::size_t k) {
    return (x_lo_ + static_cast<double>(k) * x_step_ - mu) * inv_sr;
  };
  const auto take = [&](double pcat) -> std::uint64_t {
    if (remaining == 0 || pcat <= 0.0) return 0;
    std::uint64_t n;
    if (pcat >= prem) {
      n = remaining;  // conditional probability 1: no randomness to spend
    } else {
      n = stats::binomial_sample(remaining, pcat / prem, rng);
    }
    remaining -= n;
    prem -= pcat;
    return n;
  };

  // Distributes a grouped tail's total among its bins by the same
  // conditional-binomial chain, restricted to the group (multinomial
  // grouping: drawing the group total first and splitting it conditionally
  // is distribution-identical to drawing every bin in the flat chain).
  // Only runs in the rare event a tail group receives a nonzero count, so
  // its per-bin cdf evaluations do not affect the typical-case cost.
  const auto split_group = [&](std::size_t k_begin, std::size_t k_end,
                               std::uint64_t n_group, double cdf_begin,
                               double cdf_end) {
    std::uint64_t rem = n_group;
    double prem_local = cdf_end - cdf_begin;
    double local_prev = cdf_begin;
    for (std::size_t k = k_begin; k < k_end && rem > 0; ++k) {
      const double cdf_next = stats::normal_cdf(edge_z(k + 1));
      const double pcat = cdf_next - local_prev;
      local_prev = cdf_next;
      if (pcat <= 0.0) continue;
      std::uint64_t nk;
      if (pcat >= prem_local) {
        nk = rem;
      } else {
        nk = stats::binomial_sample(rem, pcat / prem_local, rng);
      }
      rem -= nk;
      prem_local -= pcat;
      counts[k] += static_cast<std::uint32_t>(nk);
    }
    // Roundoff residue (possible only when prem_local underflows before
    // the mass is spent): accounted in the group's last bin.
    if (rem > 0) counts[k_end - 1] += static_cast<std::uint32_t>(rem);
  };

  // Core window: bins within kCoreZ sigma of mu. The representable window
  // [ka, kb) spans hundreds of near-empty bins when sr covers many bins;
  // the prefix and suffix tails outside the core are drawn as one grouped
  // binomial each (exact, see split_group) so the per-cell cost is O(core
  // bins) rather than O(window bins). Index margins as for ka/kb.
  std::size_t k_core_lo = ka;
  std::size_t k_core_hi = kb;
  {
    const double w_lo =
        std::min((mu - kCoreZ * sr - x_lo_) * inv_step, nbins);
    const double w_hi =
        std::min((mu + kCoreZ * sr - x_lo_) * inv_step, nbins);
    if (w_lo > static_cast<double>(ka) + 1.0)
      k_core_lo = std::min(kb, static_cast<std::size_t>(w_lo - 1.0));
    if (w_hi >= 0.0) {
      const std::size_t cap =
          std::min(kb, static_cast<std::size_t>(w_hi + 2.0));
      k_core_hi = std::max(k_core_lo, cap);
    }
  }

  // Underflow mass below edge 0 — exactly 0 whenever any leading bin was
  // skipped (the skipped bins' edges already sit in the exact-zero tail).
  double cdf_prev =
      (ka == 0) ? stats::normal_cdf(edge_z(0)) : 0.0;
  underflow += static_cast<std::uint32_t>(take(cdf_prev));
  // Prefix tail [ka, k_core_lo) as one group.
  if (k_core_lo > ka && remaining > 0) {
    const double cdf_core = stats::normal_cdf(edge_z(k_core_lo));
    const std::uint64_t n_pre = take(cdf_core - cdf_prev);
    if (n_pre > 0) split_group(ka, k_core_lo, n_pre, cdf_prev, cdf_core);
    cdf_prev = cdf_core;
  }
  // Core bins, one conditional binomial each. The edge CDFs are computed
  // in small batches through the SIMD layer: at scalar dispatch every
  // batch element is bit-identical to the lazy per-edge normal_cdf call
  // this replaces, and the RNG consumption order is unchanged, so scalar
  // results match the pre-batch sampler exactly. The tile bounds the
  // wasted lookahead when `remaining` is exhausted before the core ends
  // (cells often hold only a handful of devices).
  constexpr std::size_t kCdfTile = 8;
  double z_tile[kCdfTile];
  double cdf_tile[kCdfTile];
  std::size_t k = k_core_lo;
  while (k < k_core_hi && remaining > 0) {
    const std::size_t tile = std::min(kCdfTile, k_core_hi - k);
    for (std::size_t j = 0; j < tile; ++j) z_tile[j] = edge_z(k + 1 + j);
    stats::normal_cdf_batch(z_tile, tile, cdf_tile);
    for (std::size_t j = 0; j < tile && remaining > 0; ++j) {
      const double cdf_next = cdf_tile[j];
      counts[k + j] += static_cast<std::uint32_t>(take(cdf_next - cdf_prev));
      cdf_prev = cdf_next;
    }
    k += tile;
  }
  // Suffix tail [k_core_hi, kb) as one group.
  if (k_core_hi < kb && remaining > 0) {
    const double cdf_end = stats::normal_cdf(edge_z(kb));
    const std::uint64_t n_suf = take(cdf_end - cdf_prev);
    if (n_suf > 0) split_group(k_core_hi, kb, n_suf, cdf_prev, cdf_end);
  }
  // Remainder: mass at or above x_hi (bins beyond the window hold exactly
  // zero probability, so nothing is misattributed).
  overflow += static_cast<std::uint32_t>(remaining);
}

MonteCarloAnalyzer::ChipSample MonteCarloAnalyzer::sample_chip(
    stats::Rng& rng) const {
  const var::CanonicalForm& canonical = problem_->canonical();
  const auto& blocks = problem_->blocks();
  const auto& layout = problem_->layout();

  const la::Vector z = canonical.sample_z(rng);
  la::Vector t_grid = canonical.sensitivities().multiply(z);
  for (std::size_t g = 0; g < t_grid.size(); ++g)
    t_grid[g] += canonical.nominal(g);

  const double sr = canonical.residual_sigma();
  const std::size_t bins = options_.thickness_bins;
  const double inv_step = 1.0 / x_step_;

  ChipSample chip;
  chip.block_bins.resize(blocks.size());
  chip.underflow.assign(blocks.size(), 0);
  chip.overflow.assign(blocks.size(), 0);
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    auto& counts = chip.block_bins[j];
    counts.assign(bins, 0);
    const std::size_t m = problem_->design().blocks[j].device_count;
    const auto& weights = layout.weights[j];

    // Apportion the block's devices to its grid cells; the rounding
    // remainder lands on the final cell so totals are exact.
    std::size_t placed = 0;
    for (std::size_t e = 0; e < weights.size(); ++e) {
      const auto& [g, w] = weights[e];
      std::size_t count;
      if (e + 1 == weights.size()) {
        count = m - placed;
      } else {
        count = static_cast<std::size_t>(
            std::llround(w * static_cast<double>(m)));
        count = std::min(count, m - placed);
      }
      placed += count;
      const double mu = t_grid[g];
      if (options_.sampling == DeviceSampling::kBinned) {
        sample_cell_binned(count, mu, sr, counts, chip.underflow[j],
                           chip.overflow[j], rng);
        continue;
      }
      for (std::size_t i = 0; i < count; ++i) {
        const double x = mu + sr * rng.normal();
        const double f = (x - x_lo_) * inv_step;
        // Out-of-range samples are counted separately and later evaluated
        // at the true clamp boundary — folding them into the edge bins
        // would bias their contribution toward the bin centers.
        if (f < 0.0) {
          ++chip.underflow[j];
        } else if (f >= static_cast<double>(bins)) {
          ++chip.overflow[j];
        } else {
          ++counts[static_cast<std::size_t>(f)];
        }
      }
    }
  }

  // Nonzero bin range per block, with the lower edge aligned down to the
  // dot_counts lane width. The evaluation kernels dot only this range:
  // every skipped bin has count zero and would contribute exactly +0.0 to
  // its accumulator lane, so the trimmed dot is bit-identical to the full
  // one while skipping the (often long) empty tails.
  chip.nz_lo.assign(blocks.size(), 0);
  chip.nz_hi.assign(blocks.size(), 0);
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    const auto& counts = chip.block_bins[j];
    std::size_t lo = 0;
    while (lo < counts.size() && counts[lo] == 0) ++lo;
    std::size_t hi = counts.size();
    while (hi > lo && counts[hi - 1] == 0) --hi;
    chip.nz_lo[j] = static_cast<std::uint32_t>(lo & ~std::size_t{3});
    chip.nz_hi[j] = static_cast<std::uint32_t>(hi);
  }
  return chip;
}

MonteCarloAnalyzer::EvalContext MonteCarloAnalyzer::build_eval_context(
    std::span<const double> ts) const {
  const auto& blocks = problem_->blocks();
  EvalContext ctx;
  ctx.nt = ts.size();
  ctx.nblocks = blocks.size();
  ctx.bins = options_.thickness_bins;
  ctx.factors.resize(ctx.nt * ctx.nblocks * ctx.bins);
  ctx.lo.resize(ctx.nt * ctx.nblocks);
  ctx.hi.resize(ctx.nt * ctx.nblocks);
  ctx.area.resize(ctx.nblocks);
  for (std::size_t j = 0; j < ctx.nblocks; ++j)
    ctx.area[j] =
        blocks[j].area /
        static_cast<double>(problem_->design().blocks[j].device_count);

  std::vector<double> column;
  for (std::size_t ti = 0; ti < ctx.nt; ++ti) {
    for (std::size_t j = 0; j < ctx.nblocks; ++j) {
      const double gb = std::log(ts[ti] / blocks[j].alpha) * blocks[j].b;
      detail::fill_bin_factors(gb, x_lo_, x_step_, ctx.bins, column);
      std::copy(column.begin(), column.end(),
                ctx.factors.begin() +
                    static_cast<std::ptrdiff_t>((ti * ctx.nblocks + j) *
                                                ctx.bins));
      ctx.lo[ti * ctx.nblocks + j] = std::exp(gb * x_lo_);
      ctx.hi[ti * ctx.nblocks + j] = std::exp(gb * x_hi_);
    }
  }
  return ctx;
}

double MonteCarloAnalyzer::chip_exponent_ctx(const ChipSample& chip,
                                             const EvalContext& ctx,
                                             std::size_t ti) const {
  double h = 0.0;
  for (std::size_t j = 0; j < ctx.nblocks; ++j) {
    const double* factors =
        ctx.factors.data() + (ti * ctx.nblocks + j) * ctx.bins;
    const std::size_t lo = chip.nz_lo[j];
    const std::size_t hi = chip.nz_hi[j];
    double s = dot_counts(chip.block_bins[j].data() + lo, factors + lo,
                          hi - lo);
    // Out-of-range populations contribute at the axis boundaries (their
    // clamp values), not at the edge-bin centers.
    if (chip.underflow[j] != 0)
      s += static_cast<double>(chip.underflow[j]) *
           ctx.lo[ti * ctx.nblocks + j];
    if (chip.overflow[j] != 0)
      s += static_cast<double>(chip.overflow[j]) *
           ctx.hi[ti * ctx.nblocks + j];
    h += ctx.area[j] * s;
  }
  return h;
}

double MonteCarloAnalyzer::chip_exponent(const ChipSample& chip,
                                         double t) const {
  // Scalar one-point evaluation through the same factor-table kernel as
  // the batched path (dot_counts over fill_bin_factors output), so the two
  // are bit-identical by construction. The table lives in a per-thread
  // scratch: Brent iterations in sample_failure_times evaluate this in a
  // tight loop and must not allocate.
  const auto& blocks = problem_->blocks();
  const std::size_t bins = options_.thickness_bins;
  std::vector<double>& factors = scalar_factor_scratch;
  double h = 0.0;
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    const double gb = std::log(t / blocks[j].alpha) * blocks[j].b;
    detail::fill_bin_factors(gb, x_lo_, x_step_, bins, factors);
    const std::size_t lo = chip.nz_lo[j];
    const std::size_t hi = chip.nz_hi[j];
    double s = dot_counts(chip.block_bins[j].data() + lo,
                          factors.data() + lo, hi - lo);
    if (chip.underflow[j] != 0)
      s += static_cast<double>(chip.underflow[j]) * std::exp(gb * x_lo_);
    if (chip.overflow[j] != 0)
      s += static_cast<double>(chip.overflow[j]) * std::exp(gb * x_hi_);
    const double per_device_area =
        blocks[j].area /
        static_cast<double>(problem_->design().blocks[j].device_count);
    h += per_device_area * s;
  }
  return h;
}

double MonteCarloAnalyzer::chip_exponent_reference(const ChipSample& chip,
                                                   double t) const {
  const auto& blocks = problem_->blocks();
  double h = 0.0;
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    const double gamma = std::log(t / blocks[j].alpha);
    // The pre-fast-path recurrence: p_{k+1} = p_k * exp(gamma b dx) with
    // no re-anchoring — one exp per block, but the running product drifts
    // by O(bins) ulps across the axis.
    const double base =
        std::exp(gamma * blocks[j].b * (x_lo_ + 0.5 * x_step_));
    const double ratio = std::exp(gamma * blocks[j].b * x_step_);
    double p = base;
    double s = 0.0;
    for (const std::uint32_t c : chip.block_bins[j]) {
      if (c != 0) s += static_cast<double>(c) * p;
      p *= ratio;
    }
    if (chip.underflow[j] != 0)
      s += static_cast<double>(chip.underflow[j]) *
           std::exp(gamma * blocks[j].b * x_lo_);
    if (chip.overflow[j] != 0)
      s += static_cast<double>(chip.overflow[j]) *
           std::exp(gamma * blocks[j].b * x_hi_);
    const double per_device_area =
        blocks[j].area /
        static_cast<double>(problem_->design().blocks[j].device_count);
    h += per_device_area * s;
  }
  return h;
}

std::vector<double> MonteCarloAnalyzer::failure_probabilities(
    std::span<const double> ts) const {
  require(!chips_.empty(), ErrorCode::kInvalidInput,
          "MonteCarloAnalyzer: stored-sample query on a streaming analyzer");
  for (const double t : ts)
    require(t > 0.0, "MonteCarloAnalyzer: t must be positive");
  if (ts.empty()) return {};
  const EvalContext ctx = build_eval_context(ts);
  return sweep_over_context(ctx, ts);
}

std::vector<double> MonteCarloAnalyzer::sweep_over_context(
    const EvalContext& ctx, std::span<const double> ts) const {
  const std::size_t nt = ts.size();
  std::vector<double> sums = par::parallel_reduce(
      0, chips_.size(), kEvalChunk, std::vector<double>(nt, 0.0),
      [&](std::size_t begin, std::size_t end) {
        std::vector<double> s(nt, 0.0);
        // Chips are tiled so one sweep point's factor rows are reused
        // across a cache-resident group of chip histograms instead of
        // streaming the whole factor table once per chip. Each s[ti] still
        // accumulates chips in ascending order, so the sums are
        // bit-identical to the untiled chip-outer loop.
        for (std::size_t tile = begin; tile < end; tile += kEvalTile) {
          const std::size_t tile_end = std::min(end, tile + kEvalTile);
          for (std::size_t ti = 0; ti < nt; ++ti)
            for (std::size_t i = tile; i < tile_end; ++i)
              s[ti] += -std::expm1(-chip_exponent_ctx(chips_[i], ctx, ti));
        }
        return s;
      },
      [](std::vector<double> a, const std::vector<double>& b) {
        for (std::size_t ti = 0; ti < a.size(); ++ti) a[ti] += b[ti];
        return a;
      },
      options_.threads);
  for (double& s : sums) s /= static_cast<double>(chips_.size());
  // Aging mechanisms are deterministic at the blocks' default operating
  // points, so they fold in after the oxide ensemble mean:
  // E[1 - (1 - F_ox) S(t)] = 1 - (1 - E[F_ox]) S(t).
  const mech::MechanismStack& stack = problem_->mechanisms();
  if (stack.extra_count() > 0) {
    for (std::size_t ti = 0; ti < nt; ++ti) {
      sums[ti] = std::clamp(
          1.0 - (1.0 - sums[ti]) * stack.extra_survival(ts[ti]), 0.0, 1.0);
    }
  }
  return sums;
}

void MonteCarloAnalyzer::refresh_with_context(
    std::span<const double> ts, const std::vector<double>& alphas,
    const std::vector<double>& bs) const {
  const auto& blocks = problem_->blocks();
  const std::size_t n = blocks.size();
  // The sweep points are the row axis of the context: a changed `ts` (bit
  // compare) invalidates every row, so rebuild from scratch.
  const bool full = !with_valid_ || with_ts_.size() != ts.size() ||
                    std::memcmp(with_ts_.data(), ts.data(),
                                ts.size() * sizeof(double)) != 0;
  EvalContext& ctx = with_ctx_;
  if (full) {
    ctx.nt = ts.size();
    ctx.nblocks = n;
    ctx.bins = options_.thickness_bins;
    ctx.factors.assign(ctx.nt * n * ctx.bins, 0.0);
    ctx.lo.assign(ctx.nt * n, 0.0);
    ctx.hi.assign(ctx.nt * n, 0.0);
    ctx.area.resize(n);
    for (std::size_t j = 0; j < n; ++j)
      ctx.area[j] =
          blocks[j].area /
          static_cast<double>(problem_->design().blocks[j].device_count);
    with_ts_.assign(ts.begin(), ts.end());
    // Zero never bit-matches a valid (positive) alpha or b, so the row
    // loop below refills every block.
    with_alphas_.assign(n, 0.0);
    with_bs_.assign(n, 0.0);
  }
  std::vector<double> column;
  std::size_t refreshed = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (std::bit_cast<std::uint64_t>(with_alphas_[j]) ==
            std::bit_cast<std::uint64_t>(alphas[j]) &&
        std::bit_cast<std::uint64_t>(with_bs_[j]) ==
            std::bit_cast<std::uint64_t>(bs[j]))
      continue;
    // Same per-row ops as build_eval_context, so a refreshed row is
    // byte-identical to its cold-built counterpart.
    for (std::size_t ti = 0; ti < ctx.nt; ++ti) {
      const double gb = std::log(ts[ti] / alphas[j]) * bs[j];
      detail::fill_bin_factors(gb, x_lo_, x_step_, ctx.bins, column);
      std::copy(column.begin(), column.end(),
                ctx.factors.begin() +
                    static_cast<std::ptrdiff_t>((ti * n + j) * ctx.bins));
      ctx.lo[ti * n + j] = std::exp(gb * x_lo_);
      ctx.hi[ti * n + j] = std::exp(gb * x_hi_);
    }
    with_alphas_[j] = alphas[j];
    with_bs_[j] = bs[j];
    ++refreshed;
  }
  with_rows_refreshed_ = refreshed;
  with_valid_ = true;
}

std::vector<double> MonteCarloAnalyzer::failure_probabilities_with(
    std::span<const double> ts, const std::vector<double>& alphas,
    const std::vector<double>& bs) const {
  require(!chips_.empty(), ErrorCode::kInvalidInput,
          "MonteCarloAnalyzer: stored-sample query on a streaming analyzer");
  const auto& blocks = problem_->blocks();
  require(alphas.size() == blocks.size() && bs.size() == blocks.size(),
          "MonteCarloAnalyzer: one (alpha, b) pair per block required");
  for (const double t : ts)
    require(t > 0.0, "MonteCarloAnalyzer: t must be positive");
  if (ts.empty()) return {};
  for (std::size_t j = 0; j < blocks.size(); ++j)
    require(alphas[j] > 0.0 && bs[j] > 0.0,
            "MonteCarloAnalyzer: alpha and b must be positive");
  refresh_with_context(ts, alphas, bs);
  return sweep_over_context(with_ctx_, ts);
}

double MonteCarloAnalyzer::failure_probability(double t) const {
  return failure_probabilities(std::span<const double>(&t, 1)).front();
}

std::vector<double> MonteCarloAnalyzer::failure_std_errors(
    std::span<const double> ts) const {
  require(!chips_.empty(), ErrorCode::kInvalidInput,
          "MonteCarloAnalyzer: stored-sample query on a streaming analyzer");
  for (const double t : ts)
    require(t > 0.0, "MonteCarloAnalyzer: t must be positive");
  if (ts.empty()) return {};
  const EvalContext ctx = build_eval_context(ts);
  const std::size_t nt = ts.size();
  // Partial layout: [0, nt) holds sums, [nt, 2 nt) sums of squares.
  std::vector<double> m = par::parallel_reduce(
      0, chips_.size(), kEvalChunk, std::vector<double>(2 * nt, 0.0),
      [&](std::size_t begin, std::size_t end) {
        std::vector<double> acc(2 * nt, 0.0);
        // Tiled like failure_probabilities; see the note there.
        for (std::size_t tile = begin; tile < end; tile += kEvalTile) {
          const std::size_t tile_end = std::min(end, tile + kEvalTile);
          for (std::size_t ti = 0; ti < nt; ++ti) {
            for (std::size_t i = tile; i < tile_end; ++i) {
              const double f =
                  -std::expm1(-chip_exponent_ctx(chips_[i], ctx, ti));
              acc[ti] += f;
              acc[nt + ti] += f * f;
            }
          }
        }
        return acc;
      },
      [](std::vector<double> a, const std::vector<double>& b) {
        for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
        return a;
      },
      options_.threads);
  const double n = static_cast<double>(chips_.size());
  std::vector<double> out(nt);
  for (std::size_t ti = 0; ti < nt; ++ti) {
    const double var = std::max(
        0.0, (m[nt + ti] - m[ti] * m[ti] / n) / (n - 1.0));
    out[ti] = std::sqrt(var / n);
  }
  // The per-chip transform f' = 1 - (1 - f) S(t) is affine in f, so the
  // standard error scales by the deterministic aging survival S(t).
  const mech::MechanismStack& stack = problem_->mechanisms();
  if (stack.extra_count() > 0) {
    for (std::size_t ti = 0; ti < nt; ++ti)
      out[ti] *= stack.extra_survival(ts[ti]);
  }
  return out;
}

double MonteCarloAnalyzer::failure_std_error(double t) const {
  return failure_std_errors(std::span<const double>(&t, 1)).front();
}

double MonteCarloAnalyzer::failure_probability_reference(double t) const {
  require(!chips_.empty(), ErrorCode::kInvalidInput,
          "MonteCarloAnalyzer: stored-sample query on a streaming analyzer");
  require(t > 0.0, "MonteCarloAnalyzer: t must be positive");
  const double sum = par::parallel_reduce(
      0, chips_.size(), kEvalChunk, 0.0,
      [&](std::size_t begin, std::size_t end) {
        double s = 0.0;
        for (std::size_t i = begin; i < end; ++i)
          s += -std::expm1(-chip_exponent_reference(chips_[i], t));
        return s;
      },
      [](double a, double b) { return a + b; }, options_.threads);
  const double mean = sum / static_cast<double>(chips_.size());
  const mech::MechanismStack& stack = problem_->mechanisms();
  if (stack.extra_count() > 0) {
    return std::clamp(1.0 - (1.0 - mean) * stack.extra_survival(t), 0.0,
                      1.0);
  }
  return mean;
}

double MonteCarloAnalyzer::lifetime_at(double target) const {
  return lifetime_at_failure(
      [this](double t) { return failure_probability(t); }, target);
}

std::vector<double> MonteCarloAnalyzer::kth_failure_probabilities(
    std::span<const double> ts, std::size_t k) const {
  require(!chips_.empty(), ErrorCode::kInvalidInput,
          "MonteCarloAnalyzer: stored-sample query on a streaming analyzer");
  for (const double t : ts)
    require(t > 0.0, "MonteCarloAnalyzer: t must be positive");
  require(k >= 1, "MonteCarloAnalyzer: k must be >= 1");
  if (k == 1) return failure_probabilities(ts);
  require(problem_->mechanisms().trivial(), ErrorCode::kInvalidInput,
          "MonteCarloAnalyzer: k-th breakdown order statistics count oxide "
          "breakdown events only; disable aging mechanisms for k > 1");
  if (ts.empty()) return {};
  const EvalContext ctx = build_eval_context(ts);
  const std::size_t nt = ts.size();
  std::vector<double> sums = par::parallel_reduce(
      0, chips_.size(), kEvalChunk, std::vector<double>(nt, 0.0),
      [&](std::size_t begin, std::size_t end) {
        std::vector<double> s(nt, 0.0);
        // Tiled like failure_probabilities; see the note there.
        for (std::size_t tile = begin; tile < end; tile += kEvalTile) {
          const std::size_t tile_end = std::min(end, tile + kEvalTile);
          for (std::size_t ti = 0; ti < nt; ++ti) {
            for (std::size_t i = tile; i < tile_end; ++i) {
              const double h = chip_exponent_ctx(chips_[i], ctx, ti);
              // Conditional on the thicknesses, breakdowns are a Poisson
              // process with mean h; P(N >= k) = P(k, h).
              s[ti] += (h > 0.0)
                           ? stats::gamma_p(static_cast<double>(k), h)
                           : 0.0;
            }
          }
        }
        return s;
      },
      [](std::vector<double> a, const std::vector<double>& b) {
        for (std::size_t ti = 0; ti < a.size(); ++ti) a[ti] += b[ti];
        return a;
      },
      options_.threads);
  for (double& s : sums) s /= static_cast<double>(chips_.size());
  return sums;
}

double MonteCarloAnalyzer::kth_failure_probability(double t,
                                                   std::size_t k) const {
  return kth_failure_probabilities(std::span<const double>(&t, 1), k)
      .front();
}

double MonteCarloAnalyzer::kth_lifetime_at(double target,
                                           std::size_t k) const {
  return lifetime_at_failure(
      [this, k](double t) { return kth_failure_probability(t, k); }, target);
}

std::vector<double> MonteCarloAnalyzer::sample_failure_times(
    std::size_t count, stats::Rng& rng) const {
  // One draw from the caller's generator seeds the family of per-chip
  // streams, so the simulation is reproducible and thread-count invariant
  // while still depending on the caller's generator state.
  const std::uint64_t base = rng();
  const mech::MechanismStack& stack = problem_->mechanisms();
  std::vector<double> times(count);
  par::parallel_for(
      0, count, kSimulateChunk,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          stats::Rng chip_rng = stats::Rng::stream(base, i);
          const ChipSample chip = sample_chip(chip_rng);
          const double e = chip_rng.exponential();
          // Failure time: H(t) = e, inverted in log-time. H is monotone
          // increasing in t, spanning many decades — Brent with automatic
          // bracket expansion from a broad seed interval.
          const double s = num::brent_auto_bracket(
              [&](double log_t) {
                return chip_exponent(chip, std::exp(log_t)) - e;
              },
              std::log(1e6), std::log(1e12), 1e-9);
          double t_chip = std::exp(s);
          // Competing risks: draw each aging mechanism's per-block TTF by
          // inverse-CDF sampling and keep the earliest failure. The draws
          // happen after every oxide use of the chip stream, so the
          // default (no extras) consumes exactly the seed RNG sequence.
          for (const auto& mech : stack.extras()) {
            for (std::size_t j = 0; j < stack.block_count(); ++j) {
              const double t_m = mech->block_time_at(
                  j, chip_rng.uniform_positive(),
                  stack.default_conditions(j));
              if (t_m > 0.0) t_chip = std::min(t_chip, t_m);
            }
          }
          times[i] = t_chip;
        }
      },
      options_.threads);
  return times;
}

MonteCarloAnalyzer::PooledHistogram
MonteCarloAnalyzer::pooled_thickness_histogram(std::size_t block) const {
  require(block < problem_->blocks().size(),
          "MonteCarloAnalyzer: block index out of range");
  PooledHistogram h;
  h.counts.assign(options_.thickness_bins, 0);
  h.x_lo = x_lo_;
  h.x_step = x_step_;
  for (const ChipSample& chip : chips_) {
    const auto& counts = chip.block_bins[block];
    for (std::size_t k = 0; k < counts.size(); ++k) h.counts[k] += counts[k];
    h.underflow += chip.underflow[block];
    h.overflow += chip.overflow[block];
  }
  return h;
}

}  // namespace obd::core
