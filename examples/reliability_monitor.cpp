// Online reliability monitoring with the hybrid look-up method.
//
// Section IV-E: the per-design lookup tables are computed once and can be
// "embedded into a dynamic system for reliability monitoring that usually
// requires very fast response". This example plays a day of synthetic
// workload phases on the EV6-like design; at each phase change the thermal
// profile shifts, the monitor maps the new block temperatures to (alpha, b)
// pairs, and the precomputed tables answer the end-of-life projection in
// microseconds — no re-integration.
#include <cstdio>
#include <string>
#include <vector>

#include "chip/design.hpp"
#include "common/stopwatch.hpp"
#include "core/hybrid.hpp"
#include "core/lifetime.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"

int main() {
  using namespace obd;
  const double year = 365.25 * 24 * 3600;

  chip::Design design = chip::make_ev6_design();
  const core::AnalyticReliabilityModel model;

  // Build the problem (and the LUTs) once, at the nominal profile.
  const auto nominal_profile = thermal::power_thermal_fixed_point(
      design, power::PowerParams{}, {.resolution = 32}, 2);
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, nominal_profile.block_temps_c,
      1.2);
  Stopwatch build_sw;
  const core::HybridEvaluator monitor(problem);
  std::printf("LUT construction (one-time): %.2f s (%zu blocks x %zux%zu)\n\n",
              build_sw.seconds(), problem.blocks().size(),
              monitor.options().n_gamma, monitor.options().n_b);

  // Workload phases: (name, activity scale, Vdd).
  struct Phase {
    std::string name;
    double activity_scale;
    double vdd;
  };
  const std::vector<Phase> phases = {
      {"idle", 0.15, 1.05},    {"web browsing", 0.45, 1.10},
      {"compile", 0.80, 1.20}, {"fp-heavy HPC", 1.00, 1.25},
      {"thermal throttle", 0.60, 1.15},
  };

  std::printf("%-18s %8s %8s %16s %12s\n", "phase", "Tmax[C]", "Vdd",
              "proj. 10ppm [y]", "query [us]");
  for (const auto& phase : phases) {
    // Re-scale activities and re-solve thermals for this phase.
    chip::Design phased = design;
    for (auto& b : phased.blocks)
      b.activity = std::min(1.0, b.activity * phase.activity_scale);
    power::PowerParams pp;
    pp.vdd = phase.vdd;
    const auto profile =
        thermal::power_thermal_fixed_point(phased, pp, {.resolution = 32}, 2);

    // The monitor's fast path: temperatures -> (alpha, b) -> table lookup.
    std::vector<double> alphas;
    std::vector<double> bs;
    for (double t : profile.block_temps_c) {
      alphas.push_back(model.alpha(t, phase.vdd));
      bs.push_back(model.b(t, phase.vdd));
    }
    Stopwatch q;
    const double projected = core::lifetime_at_failure(
        [&](double t) {
          return monitor.failure_probability_with(t, alphas, bs);
        },
        core::kTenFaultsPerMillion);
    const double micros = q.seconds() * 1e6;

    std::printf("%-18s %8.1f %8.2f %16.2f %12.0f\n", phase.name.c_str(),
                profile.max_c(), phase.vdd, projected / year, micros);
  }

  std::printf(
      "\nEach projection above solved a full chip-level reliability query\n"
      "through the precomputed tables (root finding over table lookups).\n");
  return 0;
}
