// Transient full-chip thermal simulation.
//
// Extends the steady-state solver with time integration of the same grid RC
// network: each cell gets a heat capacity C = c_v * cell_volume and the
// field evolves as C dT/dt = sum_nb g (T_nb - T) + g_vert (T_amb - T) + P.
// Explicit Euler with automatic stability-limited substepping — simple,
// robust, and exact enough for the millisecond-to-seconds workload phases
// the reliability monitor cares about. The steady state of this integrator
// is the solution of solve_thermal() by construction.
#pragma once

#include "thermal/solver.hpp"

namespace obd::thermal {

struct TransientParams {
  ThermalParams thermal{};
  /// Volumetric heat capacity [J/(mm^3 K)] (silicon ~1.75e-3).
  double heat_capacity = 1.75e-3;
  /// Safety factor (< 1) on the explicit-Euler stability step.
  double step_safety = 0.5;
};

/// Time-stepping thermal state for a fixed design.
class TransientSimulator {
 public:
  TransientSimulator(const chip::Design& design,
                     const TransientParams& params = {});

  /// Resets the whole field to a uniform temperature [C].
  void reset(double temp_c);

  /// Advances the field by `duration` seconds under the given power map
  /// (auto-substepped for stability).
  void advance(const power::PowerMap& power, double duration);

  /// Current field + per-block aggregates.
  [[nodiscard]] ThermalProfile profile() const;

  /// Characteristic thermal time constant of one cell [s] (C / G_total) —
  /// sets the explicit-integration step size.
  [[nodiscard]] double cell_time_constant() const;

  /// Die-level time constant [s]: total heat capacity times the package
  /// resistance. This is the slow mode — settle times are a few of these,
  /// not a few cell constants.
  [[nodiscard]] double die_time_constant() const;

  [[nodiscard]] double time_s() const { return time_s_; }

 private:
  chip::Design design_;
  TransientParams params_;
  std::size_t n_;
  double g_lat_x_;
  double g_lat_y_;
  double g_vert_;
  double cell_capacity_;
  double time_s_ = 0.0;
  std::vector<double> rise_;  // temperature rise over ambient per cell
  std::vector<double> scratch_;

  [[nodiscard]] std::vector<double> cell_power(
      const power::PowerMap& power) const;
};

}  // namespace obd::thermal
