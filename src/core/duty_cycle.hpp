// Duty-cycle-aware reliability: statistical OBD analysis under a schedule
// of workload phases with different temperature/voltage profiles.
//
// The paper analyzes one worst-case profile per block ("the block-level
// worst-case operating temperature and supply voltage ... to ensure a
// correct operation throughout the entire life time for any application
// profile", Section IV-A). Real parts alternate between phases (idle,
// compute, throttled); assuming the worst phase for the whole lifetime
// wastes exactly the margin the paper set out to recover. This module
// extends the closed-form framework to a proportional phase schedule:
//
// If a fraction f_p of lifetime is spent in phase p with block parameters
// (alpha_{j,p}, b_{j,p}), the cumulative-exposure (JEDEC effective-age)
// model converts every phase's wall-clock share into equivalent stress
// time at a per-block reference phase r via the acceleration factor
// AF_p = alpha_{j,r} / alpha_{j,p}:
//
//   t_eq,j = t * sum_p f_p AF_p,
//   H_j(t | x) = a (t_eq,j / alpha_{j,r})^(b_{j,r} x).
//
// This is exact for phases sharing the Weibull slope (a split into
// identical phases collapses to the single-phase answer — a property the
// test suite enforces); slope differences across phases enter only through
// the reference phase's b_{j,r} (chosen as the largest-fraction phase),
// the standard industrial approximation. The BLOD machinery then applies
// at t_eq: the expected block exponent is A_j g(t_eq; alpha_r, b_r, u, v)
// over the same (u, v) nodes as st_fast.
#pragma once

#include <vector>

#include "core/analytic.hpp"
#include "core/problem.hpp"

namespace obd::core {

/// One workload phase: lifetime share + per-block Weibull parameters.
struct WorkloadPhase {
  std::string name;
  double fraction = 0.0;       ///< share of lifetime, phases sum to 1
  std::vector<double> alphas;  ///< alpha_j per block [s]
  std::vector<double> bs;      ///< b_j per block [1/nm]
};

/// Builds a phase from block temperatures via a device model (convenience).
WorkloadPhase make_phase(const std::string& name, double fraction,
                         const DeviceReliabilityModel& model,
                         const std::vector<double>& block_temps_c,
                         double vdd);

/// Statistical analyzer for a proportional phase schedule.
class DutyCycleAnalyzer {
 public:
  /// `phases` must be non-empty, cover every block of `problem`, and have
  /// fractions summing to 1.
  DutyCycleAnalyzer(const ReliabilityProblem& problem,
                    std::vector<WorkloadPhase> phases,
                    const AnalyticOptions& options = {});

  [[nodiscard]] double failure_probability(double t) const;
  [[nodiscard]] double reliability(double t) const {
    return 1.0 - failure_probability(t);
  }
  [[nodiscard]] double lifetime_at(double target) const;

  [[nodiscard]] const std::vector<WorkloadPhase>& phases() const {
    return phases_;
  }

 private:
  const ReliabilityProblem* problem_;  // non-owning; must outlive this
  std::vector<WorkloadPhase> phases_;
  std::vector<std::vector<UvNode>> nodes_;  // shared with st_fast's scheme
  std::vector<std::size_t> ref_phase_;      // per-block reference phase
  std::vector<double> age_scale_;           // per-block sum_p f_p AF_p
};

}  // namespace obd::core
