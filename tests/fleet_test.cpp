// Fleet layer unit tests: chunk partition math, record encoding, heartbeat
// round-trip, the deterministic backoff policy (fake clock — zero wall-time
// dependence), the supervisor's retry/budget/watchdog behavior against
// stand-in workers, and in-process worker/merge bit-identity across shard
// counts.
#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "chip/design.hpp"
#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "core/device_model.hpp"
#include "core/problem.hpp"
#include "fleet/shard.hpp"
#include "fleet/supervisor.hpp"
#include "variation/model.hpp"

namespace obd {
namespace {

class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::disarm();
    diagnostics().clear();
    set_strict_mode(false);
    dir_ = ::testing::TempDir() + "obdrel-fleet-" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::disarm();
    diagnostics().clear();
    set_strict_mode(false);
    std::filesystem::remove_all(dir_);
  }

  static fleet::FleetSpec small_spec(std::uint64_t chips) {
    fleet::FleetSpec spec;
    spec.chips = chips;
    spec.ts = {1.0e8, 3.0e8, 6.0e8};
    spec.seed = 42;
    spec.thickness_bins = 32;
    spec.problem_key = "fleet-test-problem";
    return spec;
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// Partition math
// ---------------------------------------------------------------------------

TEST_F(FleetTest, ChunkCountIsCeilDivision) {
  EXPECT_EQ(fleet::chunk_count(small_spec(1)), 1u);
  EXPECT_EQ(fleet::chunk_count(small_spec(256)), 1u);
  EXPECT_EQ(fleet::chunk_count(small_spec(257)), 2u);
  EXPECT_EQ(fleet::chunk_count(small_spec(1000000)), 3907u);
}

TEST_F(FleetTest, ChunkRangesTileTheFleetExactly) {
  const fleet::FleetSpec spec = small_spec(600);  // 3 chunks: 256+256+88
  ASSERT_EQ(fleet::chunk_count(spec), 3u);
  EXPECT_EQ(fleet::chunk_chip_begin(spec, 0), 0u);
  EXPECT_EQ(fleet::chunk_chip_end(spec, 0), 256u);
  EXPECT_EQ(fleet::chunk_chip_begin(spec, 2), 512u);
  EXPECT_EQ(fleet::chunk_chip_end(spec, 2), 600u);  // last chunk is short
}

TEST_F(FleetTest, PartitionIsBalancedContiguousAndComplete) {
  const auto ranges = fleet::partition_chunks(10, 3);
  ASSERT_EQ(ranges.size(), 3u);
  // 10 = 4 + 3 + 3, contiguous with no gaps.
  EXPECT_EQ(ranges[0].begin, 0u);
  EXPECT_EQ(ranges[0].end, 4u);
  EXPECT_EQ(ranges[1].begin, 4u);
  EXPECT_EQ(ranges[1].end, 7u);
  EXPECT_EQ(ranges[2].begin, 7u);
  EXPECT_EQ(ranges[2].end, 10u);
}

TEST_F(FleetTest, PartitionGivesEmptyRangesToExcessShards) {
  const auto ranges = fleet::partition_chunks(2, 5);
  ASSERT_EQ(ranges.size(), 5u);
  EXPECT_EQ(ranges[0].size(), 1u);
  EXPECT_EQ(ranges[1].size(), 1u);
  for (std::size_t k = 2; k < 5; ++k) EXPECT_TRUE(ranges[k].empty());
}

// ---------------------------------------------------------------------------
// Chunk record encoding: exact round-trip, corruption rejected
// ---------------------------------------------------------------------------

fleet::ChunkResult sample_result() {
  fleet::ChunkResult r;
  r.chunk = 7;
  r.chips = 256;
  r.sum_f = {0.1234567890123456789, 1e-300, 255.999999999};
  r.sum_f2 = {0.01, 1e-305, 250.0};
  return r;
}

TEST_F(FleetTest, ChunkRecordRoundTripsBitForBit) {
  const fleet::FleetSpec spec = small_spec(600);
  const std::uint64_t fp = fleet::fleet_fingerprint(spec);
  const fleet::ChunkResult r = sample_result();
  fleet::ChunkResult back;
  ASSERT_TRUE(fleet::decode_chunk_record(fleet::encode_chunk_record(fp, r),
                                         fp, r.sum_f.size(), &back));
  EXPECT_EQ(back.chunk, r.chunk);
  EXPECT_EQ(back.chips, r.chips);
  // %a hex-floats: equality must be exact, not approximate.
  for (std::size_t i = 0; i < r.sum_f.size(); ++i) {
    EXPECT_EQ(back.sum_f[i], r.sum_f[i]);
    EXPECT_EQ(back.sum_f2[i], r.sum_f2[i]);
  }
}

TEST_F(FleetTest, ChunkRecordRejectsForeignFingerprint) {
  const std::uint64_t fp = fleet::fleet_fingerprint(small_spec(600));
  const std::string line = fleet::encode_chunk_record(fp, sample_result());
  fleet::ChunkResult out;
  EXPECT_FALSE(fleet::decode_chunk_record(line, fp ^ 1, 3, &out));
}

TEST_F(FleetTest, ChunkRecordRejectsSweepSizeMismatch) {
  const std::uint64_t fp = fleet::fleet_fingerprint(small_spec(600));
  const std::string line = fleet::encode_chunk_record(fp, sample_result());
  fleet::ChunkResult out;
  EXPECT_FALSE(fleet::decode_chunk_record(line, fp, 2, &out));
}

TEST_F(FleetTest, ChunkRecordRejectsMangledFields) {
  const std::uint64_t fp = fleet::fleet_fingerprint(small_spec(600));
  std::string line = fleet::encode_chunk_record(fp, sample_result());
  fleet::ChunkResult out;
  EXPECT_FALSE(fleet::decode_chunk_record("", fp, 3, &out));
  EXPECT_FALSE(fleet::decode_chunk_record("chunk x", fp, 3, &out));
  EXPECT_FALSE(
      fleet::decode_chunk_record(line.substr(0, line.size() / 2), fp, 3,
                                 &out));
  line.back() = 'z';
  EXPECT_FALSE(fleet::decode_chunk_record(line + " trailing", fp, 3, &out));
}

TEST_F(FleetTest, FingerprintSeparatesEveryResultShapingKnob) {
  const fleet::FleetSpec base = small_spec(600);
  const std::uint64_t fp = fleet::fleet_fingerprint(base);
  fleet::FleetSpec v = base;
  v.chips = 601;
  EXPECT_NE(fleet::fleet_fingerprint(v), fp);
  v = base;
  v.seed = 43;
  EXPECT_NE(fleet::fleet_fingerprint(v), fp);
  v = base;
  v.ts.push_back(9.0e8);
  EXPECT_NE(fleet::fleet_fingerprint(v), fp);
  v = base;
  v.thickness_bins = 64;
  EXPECT_NE(fleet::fleet_fingerprint(v), fp);
  v = base;
  v.problem_key = "other-problem";
  EXPECT_NE(fleet::fleet_fingerprint(v), fp);
}

// ---------------------------------------------------------------------------
// Heartbeat round-trip
// ---------------------------------------------------------------------------

TEST_F(FleetTest, HeartbeatRoundTrips) {
  const std::string path = fleet::heartbeat_path(dir_, 2);
  ASSERT_TRUE(fleet::write_heartbeat(path, {1234, 56, 7}));
  const auto hb = fleet::read_heartbeat(path);
  ASSERT_TRUE(hb.has_value());
  EXPECT_EQ(hb->pid, 1234u);
  EXPECT_EQ(hb->counter, 56u);
  EXPECT_EQ(hb->chunks_done, 7u);
}

TEST_F(FleetTest, MissingOrMangledHeartbeatReadsAsAbsent) {
  EXPECT_FALSE(fleet::read_heartbeat(dir_ + "/no-such-file").has_value());
  const std::string path = fleet::heartbeat_path(dir_, 0);
  std::ofstream(path) << "not a heartbeat\n";
  EXPECT_FALSE(fleet::read_heartbeat(path).has_value());
}

// ---------------------------------------------------------------------------
// Deterministic backoff (satellite: fake clock, zero wall-time dependence)
// ---------------------------------------------------------------------------

TEST_F(FleetTest, BackoffDoublesFromBaseUpToCap) {
  fleet::BackoffPolicy p(100, 2000, 10);
  EXPECT_EQ(p.next_delay_ms(), 100u);
  EXPECT_EQ(p.next_delay_ms(), 200u);
  EXPECT_EQ(p.next_delay_ms(), 400u);
  EXPECT_EQ(p.next_delay_ms(), 800u);
  EXPECT_EQ(p.next_delay_ms(), 1600u);
  EXPECT_EQ(p.next_delay_ms(), 2000u);  // capped
  EXPECT_EQ(p.next_delay_ms(), 2000u);  // stays capped
}

TEST_F(FleetTest, BackoffCapNeedNotBeAPowerOfTwoMultiple) {
  fleet::BackoffPolicy p(100, 250, 5);
  EXPECT_EQ(p.next_delay_ms(), 100u);
  EXPECT_EQ(p.next_delay_ms(), 200u);
  EXPECT_EQ(p.next_delay_ms(), 250u);
}

TEST_F(FleetTest, BackoffResetsOnSuccessAndTracksBudget) {
  fleet::BackoffPolicy p(50, 1000, 2);
  EXPECT_FALSE(p.exhausted());
  EXPECT_EQ(p.next_delay_ms(), 50u);
  EXPECT_EQ(p.next_delay_ms(), 100u);
  EXPECT_TRUE(p.exhausted());  // budget of 2 spent
  p.on_success();              // progress observed: full reset
  EXPECT_FALSE(p.exhausted());
  EXPECT_EQ(p.attempts(), 0u);
  EXPECT_EQ(p.next_delay_ms(), 50u);  // schedule restarts from base
}

TEST_F(FleetTest, BackoffSurvivesHugeAttemptCountsWithoutOverflow) {
  fleet::BackoffPolicy p(1u << 20, 5000, 200);
  for (int i = 0; i < 100; ++i) (void)p.next_delay_ms();
  EXPECT_EQ(p.next_delay_ms(), 5000u);  // no wraparound below the cap
}

TEST_F(FleetTest, FakeClockAdvancesOnlyVirtually) {
  fleet::FakeClock clock(1000);
  EXPECT_EQ(clock.now_ms(), 1000u);
  clock.sleep_ms(250);
  EXPECT_EQ(clock.now_ms(), 1250u);
  clock.advance_ms(50);
  EXPECT_EQ(clock.now_ms(), 1300u);
}

// ---------------------------------------------------------------------------
// Supervisor against stand-in workers (fake clock: the retry schedule is
// pinned exactly, and the test never sleeps on the wall clock)
// ---------------------------------------------------------------------------

fleet::SupervisorOptions standin_options(const std::string& dir,
                                         fleet::Clock* clock,
                                         std::vector<std::string> argv) {
  fleet::SupervisorOptions so;
  so.dir = dir;
  so.shards = 1;
  so.worker_argv = std::move(argv);
  so.max_restarts = 3;
  so.backoff_base_ms = 200;
  so.backoff_cap_ms = 500;
  so.heartbeat_stale_ms = 1u << 30;  // watchdog off unless a test wants it
  so.poll_ms = 5;
  so.clock = clock;
  return so;
}

TEST_F(FleetTest, SupervisorPinsTheRetryScheduleWithAFakeClock) {
  // /bin/true exits 0 without producing durable state: every attempt is a
  // failure, so the shard burns its whole budget on the exact deterministic
  // schedule min(cap, base * 2^(n-1)) = 200, 400, 500.
  fleet::FakeClock clock;
  const fleet::FleetSpec spec = small_spec(600);
  fleet::Supervisor sup(spec,
                        standin_options(dir_, &clock, {"/bin/true"}));
  const fleet::FleetOutcome out = sup.run();
  ASSERT_EQ(out.shards.size(), 1u);
  EXPECT_EQ(out.shards[0].state, fleet::ShardOutcome::State::kFailed);
  EXPECT_EQ(out.shards[0].restarts, 3u);
  EXPECT_EQ(out.total_restarts, 3u);
  EXPECT_EQ(out.failed_shards, 1u);
  const std::vector<std::uint64_t> want{200, 400, 500};
  EXPECT_EQ(out.shards[0].restart_delays_ms, want);
  // Graceful degradation: the merged report covers nothing but exists.
  EXPECT_EQ(out.report.total_chips, 600u);
  EXPECT_EQ(out.report.covered_chips, 0u);
  EXPECT_EQ(out.report.missing_chunks, 3u);
}

TEST_F(FleetTest, SupervisorWatchdogRestartsAWedgedWorker) {
  // A worker that never heartbeats ("/bin/sh -c 'sleep 30'" ignores the
  // appended --worker args) is declared wedged once virtual time passes
  // heartbeat_stale_ms, SIGKILLed, and restarted until the budget is spent.
  // With a fake clock the 30 s sleeps cost no wall time: the watchdog fires
  // after a handful of 5 ms virtual polls.
  fleet::FakeClock clock;
  fleet::SupervisorOptions so = standin_options(
      dir_, &clock, {"/bin/sh", "-c", "sleep 30"});
  so.max_restarts = 1;
  so.heartbeat_stale_ms = 40;
  fleet::Supervisor sup(small_spec(600), so);
  const fleet::FleetOutcome out = sup.run();
  ASSERT_EQ(out.shards.size(), 1u);
  EXPECT_EQ(out.shards[0].state, fleet::ShardOutcome::State::kFailed);
  EXPECT_GE(out.heartbeat_timeouts, 2u);  // initial attempt + 1 restart
  EXPECT_EQ(out.shards[0].restarts, 1u);
}

TEST_F(FleetTest, SupervisorHonorsTheStopFlagImmediately) {
  fleet::FakeClock clock;
  static volatile std::sig_atomic_t stop = 1;  // raised before run()
  fleet::SupervisorOptions so =
      standin_options(dir_, &clock, {"/bin/true"});
  so.stop_flag = &stop;
  fleet::Supervisor sup(small_spec(600), so);
  const fleet::FleetOutcome out = sup.run();
  EXPECT_TRUE(out.interrupted);
  ASSERT_EQ(out.shards.size(), 1u);
  EXPECT_EQ(out.shards[0].state, fleet::ShardOutcome::State::kStopped);
  EXPECT_EQ(out.total_restarts, 0u);
}

TEST_F(FleetTest, SpawnFailureConsumesTheRetryBudget) {
  // Every spawn attempt fails (injected): the supervisor degrades the
  // shard instead of crashing, and counts the failures.
  fault::arm("fleet.spawn:100");
  fleet::FakeClock clock;
  fleet::Supervisor sup(small_spec(600),
                        standin_options(dir_, &clock, {"/bin/true"}));
  const fleet::FleetOutcome out = sup.run();
  EXPECT_EQ(out.shards[0].state, fleet::ShardOutcome::State::kFailed);
  EXPECT_GE(out.spawn_failures, 1u);
  EXPECT_EQ(out.failed_shards, 1u);
}

TEST_F(FleetTest, PublishDiagnosticsWarnsPerFailedShardAndEscalatesStrict) {
  fleet::FleetOutcome out;
  out.shards.resize(2);
  out.shards[1].state = fleet::ShardOutcome::State::kFailed;
  out.failed_shards = 1;
  out.report.total_chips = 600;
  out.report.covered_chips = 512;
  out.report.missing_chunks = 1;
  fleet::publish_diagnostics(out);
  EXPECT_GE(diagnostics().count("fleet.shard_failed"), 1u);
  const std::string stats = diagnostics().render_stats();
  EXPECT_NE(stats.find("stat [fleet.shards]"), std::string::npos) << stats;
  EXPECT_NE(stats.find("stat [fleet.restarts]"), std::string::npos);

  diagnostics().clear();
  set_strict_mode(true);
  bool threw = false;
  try {
    fleet::publish_diagnostics(out);
  } catch (const Error& e) {
    threw = true;
    EXPECT_EQ(e.code(), ErrorCode::kDegraded);
  }
  EXPECT_TRUE(threw);
}

// ---------------------------------------------------------------------------
// In-process worker + merge: the report depends only on (spec, N), never
// on the shard count or on which run produced the durable state
// ---------------------------------------------------------------------------

class FleetWorkerTest : public FleetTest {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_synthetic_design(
        "fleet", {.devices = 20000, .block_count = 4, .die_width = 4.0,
                  .die_height = 4.0, .seed = 5}));
    model_ = new core::AnalyticReliabilityModel();
    core::ProblemOptions opts;
    opts.grid_cells_per_side = 8;
    problem_ = new core::ReliabilityProblem(core::ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_,
        std::vector<double>(design_->blocks.size(), 80.0), 1.2, opts));
  }
  static void TearDownTestSuite() {
    delete problem_;
    delete model_;
    delete design_;
    problem_ = nullptr;
    model_ = nullptr;
    design_ = nullptr;
  }

  // Runs a K-shard fleet in-process and renders the merged report.
  std::string run_fleet(const fleet::FleetSpec& spec, std::uint64_t shards,
                        const std::string& dir) {
    std::filesystem::create_directories(dir);
    for (std::uint64_t k = 0; k < shards; ++k) {
      fleet::WorkerOptions w;
      w.dir = dir;
      w.shard = k;
      w.shards = shards;
      w.heartbeat_ms = 50;
      fleet::run_worker(*problem_, spec, w);
    }
    std::map<std::uint64_t, fleet::ChunkResult> chunks;
    for (std::uint64_t k = 0; k < shards; ++k)
      chunks.merge(fleet::load_shard_chunks(dir, k, spec));
    return fleet::render_report(fleet::merge_chunks(spec, chunks));
  }

  static chip::Design* design_;
  static core::AnalyticReliabilityModel* model_;
  static core::ReliabilityProblem* problem_;
};

chip::Design* FleetWorkerTest::design_ = nullptr;
core::AnalyticReliabilityModel* FleetWorkerTest::model_ = nullptr;
core::ReliabilityProblem* FleetWorkerTest::problem_ = nullptr;

TEST_F(FleetWorkerTest, ReportIsByteIdenticalAcrossShardCounts) {
  const fleet::FleetSpec spec = small_spec(600);
  const std::string r1 = run_fleet(spec, 1, dir_ + "/k1");
  const std::string r3 = run_fleet(spec, 3, dir_ + "/k3");
  const std::string r5 = run_fleet(spec, 5, dir_ + "/k5");
  EXPECT_EQ(r1, r3);
  EXPECT_EQ(r1, r5);
  // Sanity: the report is not vacuous.
  EXPECT_NE(r1.find("covered 600"), std::string::npos) << r1;
  EXPECT_NE(r1.find("missing_chunks 0"), std::string::npos);
}

TEST_F(FleetWorkerTest, WorkerResumesFromJournalAfterLosingItsSnapshot) {
  const fleet::FleetSpec spec = small_spec(600);
  const std::string fresh = run_fleet(spec, 1, dir_ + "/a");
  // Simulate a crash after the journal was written but before (or while)
  // the done snapshot landed: the journal alone must reconstruct the shard.
  std::filesystem::remove(fleet::done_path(dir_ + "/a", 0));
  const auto chunks = fleet::load_shard_chunks(dir_ + "/a", 0, spec);
  EXPECT_EQ(chunks.size(), 3u);
  EXPECT_EQ(fleet::render_report(fleet::merge_chunks(spec, chunks)), fresh);
  // Re-running the worker over the journal republishes the snapshot and
  // changes nothing.
  const std::string again = run_fleet(spec, 1, dir_ + "/a");
  EXPECT_EQ(again, fresh);
  EXPECT_TRUE(std::filesystem::exists(fleet::done_path(dir_ + "/a", 0)));
}

TEST_F(FleetWorkerTest, ReshardingExistingStateStillMergesCompletely) {
  // Chunk records are keyed globally, so durable state produced under K=3
  // satisfies a K=2 merge: load under the new partition and nothing is
  // missing.
  const fleet::FleetSpec spec = small_spec(600);
  const std::string r3 = run_fleet(spec, 3, dir_ + "/k3");
  std::map<std::uint64_t, fleet::ChunkResult> chunks;
  for (std::uint64_t k = 0; k < 3; ++k)
    chunks.merge(fleet::load_shard_chunks(dir_ + "/k3", k, spec));
  const fleet::FleetReport rep = fleet::merge_chunks(spec, chunks);
  EXPECT_EQ(rep.covered_chips, 600u);
  EXPECT_EQ(fleet::render_report(rep), r3);
}

TEST_F(FleetWorkerTest, ForeignFingerprintStateIsRecomputedNotMerged) {
  const fleet::FleetSpec spec = small_spec(600);
  (void)run_fleet(spec, 1, dir_ + "/x");
  // The same directory read under a different seed must see no usable
  // chunks — stale state is never silently folded into a new sweep.
  fleet::FleetSpec other = spec;
  other.seed = 1234;
  EXPECT_TRUE(fleet::load_shard_chunks(dir_ + "/x", 0, other).empty());
}

TEST_F(FleetWorkerTest, MergeOfPartialCoverageMarksTheGap) {
  const fleet::FleetSpec spec = small_spec(600);
  (void)run_fleet(spec, 3, dir_ + "/p");
  std::map<std::uint64_t, fleet::ChunkResult> chunks;
  for (std::uint64_t k = 0; k < 3; ++k)
    chunks.merge(fleet::load_shard_chunks(dir_ + "/p", k, spec));
  chunks.erase(1);  // middle shard's work lost for good
  const fleet::FleetReport rep = fleet::merge_chunks(spec, chunks);
  EXPECT_EQ(rep.total_chips, 600u);
  EXPECT_EQ(rep.covered_chips, 344u);  // 256 + 88
  EXPECT_EQ(rep.missing_chunks, 1u);
  for (double f : rep.failure) EXPECT_TRUE(std::isfinite(f));
}

}  // namespace
}  // namespace obd
