// Statistical full-chip gate-leakage analysis on the BLOD substrate.
//
// Gate direct-tunneling leakage is exponential in oxide thickness — the
// very sensitivity that motivates the paper's statistical treatment of
// breakdown (Section I: thin-oxide leakage creates the defects that kill
// the device; Fig. 3 shows the measured current). The same machinery that
// evaluates E[(t/alpha)^(b x)] therefore evaluates expected leakage: for a
// block with BLOD (u, v),
//
//   E[I] per unit area = i_ref * exp(-k (u - x_ref) + k^2 v / 2)
//
// (the Gaussian MGF again, with k the exponential thickness sensitivity),
// modulated by block temperature and supply. Chip mean leakage is the
// A_j-weighted sum over the same (u, v) quadrature nodes as st_fast; the
// across-chip leakage *distribution* (dominated by the shared die-to-die
// thickness component) is obtained by sampling the full canonical model,
// preserving cross-block correlation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/analytic.hpp"
#include "core/problem.hpp"

namespace obd::core {

/// Device-level leakage model parameters.
struct LeakageParams {
  /// Leakage per unit (normalized) device area at x_ref / temp_ref / vdd_ref
  /// [A].
  double i_ref = 1.0e-9;
  /// Exponential thickness sensitivity k [1/nm]: a 0.1 nm thinner oxide
  /// leaks ~e^0.9 = 2.5x more at the default.
  double thickness_slope = 9.0;
  double x_ref = 2.2;        ///< [nm]
  double temp_coeff = 0.008; ///< [1/K] exponential temperature acceleration
  double temp_ref_c = 25.0;
  double vdd_slope = 3.0;    ///< [1/V] exponential supply acceleration
  double vdd_ref = 1.2;
};

/// Per-design statistical leakage evaluator.
class LeakageAnalyzer {
 public:
  LeakageAnalyzer(const ReliabilityProblem& problem,
                  const LeakageParams& params = {},
                  const AnalyticOptions& integration = {});

  /// Expected total chip leakage across the ensemble [A].
  [[nodiscard]] double mean() const;

  /// Expected leakage of block j [A].
  [[nodiscard]] double block_mean(std::size_t j) const;

  /// Leakage of a chip whose thickness realization is the nominal (all
  /// principal components at zero) — the "typical die" designers quote.
  [[nodiscard]] double nominal_chip() const;

  /// Samples the across-chip total-leakage distribution by drawing full
  /// principal-component vectors (cross-block correlation preserved).
  /// Returns `count` unsorted totals [A].
  [[nodiscard]] std::vector<double> sample_chip_leakage(
      std::size_t count, std::uint64_t seed = 7) const;

  [[nodiscard]] const LeakageParams& params() const { return params_; }

 private:
  /// Per-unit-area conditional leakage for block j at BLOD (u, v).
  [[nodiscard]] double unit_leakage(std::size_t j, double u, double v) const;

  const ReliabilityProblem* problem_;  // non-owning; must outlive this
  LeakageParams params_;
  std::vector<double> block_coeff_;  // i_ref * temp/vdd acceleration per block
  std::vector<std::vector<UvNode>> nodes_;
};

}  // namespace obd::core
