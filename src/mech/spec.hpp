// Configuration surface of the multi-mechanism competing-risks framework.
//
// A MechanismSpec is plain data: which failure mechanisms participate
// (gate-oxide breakdown is the paper's base model and is always required),
// the per-mechanism lognormal time-to-failure parameters for the aging
// mechanisms (NBTI, EM, HCI), and the optional unit-level redundancy
// (spare groups in the style of oldspot: a group of interchangeable
// blocks with `s` spares fails only once more than `s` members failed).
//
// The spec travels inside core::ProblemOptions, so every evaluator,
// the DRM loop, the serve daemon, and the fleet sweeps see one source of
// truth. `canonical()` renders a deterministic string used by cache keys
// and crash-recovery fingerprints; the default spec canonicalizes to
// "oxide" so seed-era fingerprints and problem keys are byte-identical.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace obd {
class Config;
}

namespace obd::mech {

/// Lognormal TTF parameters of one aging mechanism. The median
/// time-to-failure at the (tref_c, vref, activity = 1) reference point is
/// t50_years; operating conditions scale it by Arrhenius temperature
/// acceleration, exponential voltage acceleration, and an activity power
/// law (EM uses the activity exponent as Black's current-density exponent).
struct MechanismParams {
  double t50_years = 30.0;    ///< median TTF at reference conditions [years]
  double sigma = 0.4;         ///< lognormal shape (ln-space std dev)
  double ea_ev = 0.5;         ///< Arrhenius activation energy [eV]
  double gamma_v = 8.0;       ///< voltage acceleration [1/V]
  double activity_exp = 1.0;  ///< t50 ~ activity^-n (Black's n for EM)
};

/// A spare group: `members` are interchangeable units, the group (and with
/// it the chip) fails only when more than `spares` members have failed.
/// spares = 0 degenerates to the plain weakest-link series composition.
struct SpareGroup {
  std::string name;
  std::vector<std::string> members;  ///< block names from the design
  std::size_t spares = 0;            ///< tolerated member failures
};

/// Complete mechanism/redundancy configuration. Default-constructed ==
/// the seed behavior: oxide breakdown only, no redundancy.
struct MechanismSpec {
  bool oxide = true;  ///< always required; parse rejects specs without it
  bool nbti = false;
  bool em = false;
  bool hci = false;

  MechanismParams nbti_params{.t50_years = 28.0, .sigma = 0.35,
                              .ea_ev = 0.18, .gamma_v = 10.0,
                              .activity_exp = 0.5};
  MechanismParams em_params{.t50_years = 45.0, .sigma = 0.45,
                            .ea_ev = 0.9, .gamma_v = 2.0,
                            .activity_exp = 2.0};
  MechanismParams hci_params{.t50_years = 55.0, .sigma = 0.4,
                             .ea_ev = -0.05, .gamma_v = 15.0,
                             .activity_exp = 1.0};

  double tref_c = 100.0;  ///< reference temperature for all aging t50s [C]
  double vref = 1.2;      ///< reference supply for all aging t50s [V]

  std::vector<SpareGroup> redundancy;

  /// True when the spec is exactly the seed behavior (oxide only, no
  /// redundancy) regardless of unused aging parameter values.
  [[nodiscard]] bool seed_equivalent() const {
    return oxide && !nbti && !em && !hci && redundancy.empty();
  }

  /// Number of enabled aging mechanisms (everything except oxide).
  [[nodiscard]] std::size_t extra_count() const {
    return static_cast<std::size_t>(nbti) + static_cast<std::size_t>(em) +
           static_cast<std::size_t>(hci);
  }

  /// Deterministic canonical rendering. The seed-equivalent spec renders
  /// as exactly "oxide"; anything else appends enabled mechanisms, their
  /// parameters, and redundancy groups. Used by serve/fleet problem keys
  /// and the DRM crash-recovery fingerprint.
  [[nodiscard]] std::string canonical() const;
};

/// Parses the mechanism-related keys out of a Config:
///   mechanisms  oxide,nbti,em,hci     (default "oxide"; must list oxide)
///   redundancy  grp:blk1+blk2:1,...   (group:members-joined-by-+:spares)
///   mech_tref_c / mech_vref           (shared reference conditions)
///   {nbti,em,hci}_{t50_years,sigma,ea_ev,gamma_v,activity_exp}
/// Throws obd::Error with ErrorCode::kConfig on malformed values.
[[nodiscard]] MechanismSpec parse_spec(const Config& cfg);

}  // namespace obd::mech
