// Parallel scaling of the Monte Carlo hot path on the shared pool.
//
// Runs the same end-to-end MC workload (analyzer construction + an F(t)
// sweep + a failure-time simulation) serially and at every thread count in
// {1, 2, 4, ..., hardware_concurrency}, verifying the determinism contract
// (bit-identical result checksums across thread counts) and reporting the
// measured speedups. Results are written to BENCH_parallel.json in the
// working directory (or $OBDREL_CSV_DIR when set) for CI consumption.
//
// Scaling knobs: OBDREL_MC_CHIPS (default 2000), OBDREL_BENCH_MAX_THREADS
// (default hardware_concurrency).
#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "chip/design.hpp"
#include "common/csv.hpp"
#include "common/parallel.hpp"
#include "common/stopwatch.hpp"
#include "core/montecarlo.hpp"
#include "power/power.hpp"
#include "stats/rng.hpp"
#include "thermal/solver.hpp"

namespace {

// Order-sensitive checksum over the exact bit patterns of a double stream:
// two runs produce the same checksum iff every value is bit-identical and
// in the same order.
struct BitChecksum {
  std::uint64_t value = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  void add(double d) {
    std::uint64_t bits = std::bit_cast<std::uint64_t>(d);
    for (int i = 0; i < 8; ++i) {
      value ^= (bits >> (8 * i)) & 0xffu;
      value *= 0x100000001b3ull;  // FNV-1a prime
    }
  }
};

struct RunResult {
  std::size_t threads = 0;
  double seconds = 0.0;
  std::uint64_t checksum = 0;
};

}  // namespace

int main() {
  using namespace obd;
  const std::size_t mc_chips = bench::env_size("OBDREL_MC_CHIPS", 2000);
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t max_threads =
      bench::env_size("OBDREL_BENCH_MAX_THREADS", hw);

  const chip::Design design = chip::make_benchmark(3);
  const auto profile = thermal::power_thermal_fixed_point(
      design, power::PowerParams{}, {.resolution = 32}, 2);
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, core::AnalyticReliabilityModel{},
      profile.block_temps_c, 1.2);

  // The F(t) sweep: one decade around the interesting failure region.
  std::vector<double> times;
  for (double t = 1e8; t <= 1.001e9; t *= 1.2589254117941673)  // 10^(1/10)
    times.push_back(t);

  auto run_once = [&](std::size_t threads) {
    par::set_threads(threads);
    par::shutdown();  // ensure construction cost is measured, not reused
    Stopwatch sw;
    BitChecksum sum;
    const core::MonteCarloAnalyzer mc(problem, {.chip_samples = mc_chips});
    for (double t : times) {
      sum.add(mc.failure_probability(t));
      sum.add(mc.failure_std_error(t));
      sum.add(mc.kth_failure_probability(t, 3));
    }
    stats::Rng rng(2026);
    for (double t : mc.sample_failure_times(64, rng)) sum.add(t);
    RunResult r;
    r.threads = threads;
    r.seconds = sw.seconds();
    r.checksum = sum.value;
    return r;
  };

  std::printf("Parallel scaling: MC end-to-end (construction + %zu-point "
              "F(t) sweep + 64 simulated failures), %zu chips, "
              "hardware_concurrency = %zu.\n\n",
              times.size(), mc_chips, hw);
  std::printf("%8s %12s %9s %18s\n", "threads", "runtime [s]", "speedup",
              "checksum");

  std::vector<RunResult> runs;
  runs.push_back(run_once(1));
  for (std::size_t n = 2; n <= max_threads; n *= 2) runs.push_back(run_once(n));
  if (max_threads > 1 &&
      (runs.back().threads != max_threads))
    runs.push_back(run_once(max_threads));
  par::set_threads(0);  // restore automatic width

  bool identical = true;
  for (const RunResult& r : runs) {
    if (r.checksum != runs.front().checksum) identical = false;
    std::printf("%8zu %12.3f %9.2f %18llx\n", r.threads, r.seconds,
                runs.front().seconds / r.seconds,
                static_cast<unsigned long long>(r.checksum));
  }
  std::printf("\nchecksums %s across thread counts\n",
              identical ? "IDENTICAL" : "DIFFER (determinism violation!)");

  std::string dir = csv_output_dir();
  const std::string path =
      (dir.empty() ? std::string{} : dir + "/") + "BENCH_parallel.json";
  std::ofstream out(path);
  out << "{\n  \"design\": \"" << design.name << "\",\n"
      << "  \"mc_chips\": " << mc_chips << ",\n"
      << "  \"hardware_concurrency\": " << hw << ",\n"
      << "  \"checksums_identical\": " << (identical ? "true" : "false")
      << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    out << "    {\"threads\": " << runs[i].threads << ", \"seconds\": "
        << runs[i].seconds << ", \"speedup\": "
        << runs.front().seconds / runs[i].seconds << ", \"checksum\": \""
        << std::hex << runs[i].checksum << std::dec << "\"}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("(wrote %s)\n", path.c_str());
  return identical ? 0 : 1;
}
