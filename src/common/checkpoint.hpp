// Durable-state primitives: crash-safe snapshots and an append-only
// journal.
//
// A long-running reliability monitor must survive its own process dying —
// kill -9, power loss, OOM — without losing the damage state it has
// accumulated, because a restarted controller that believes the chip is
// fresh will overspend the end-of-life failure budget. Two primitives
// square that circle:
//
//   - Snapshots: a versioned, CRC32-checked record written atomically via
//     the classic temp-file + fsync + rename protocol. A reader sees either
//     the previous snapshot or the new one, never a torn mixture.
//   - Journal: an append-only record stream with a per-record CRC32 frame.
//     A crash mid-append leaves a torn tail; the reader returns every
//     record up to the first corrupt/truncated frame and flags the tail
//     instead of failing the whole file.
//
// Both are generic over their payload (opaque bytes); drm::DrmRuntime
// layers its own schema on top. Fault-injection sites `checkpoint.write`,
// `checkpoint.crc`, `journal.append`, and `journal.replay` simulate torn
// writes, bit rot, full disks, and mid-record corruption deterministically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace obd::ckpt {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `data`.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size);
[[nodiscard]] std::uint32_t crc32(const std::string& data);

/// A decoded snapshot: schema version (caller-defined) plus payload bytes.
struct Snapshot {
  std::uint32_t version = 0;
  std::string payload;
};

/// Atomically replaces `path` with a snapshot record: the bytes are written
/// to `path + ".tmp"`, fsync'd, then rename()d over `path` (and the parent
/// directory fsync'd, best-effort). On any failure — including the injected
/// `checkpoint.write` torn write, which leaves a partial temp file behind
/// exactly like a crash mid-write would — the previous contents of `path`
/// are untouched and Error(kIo) is thrown.
void write_snapshot_atomic(const std::string& path, std::uint32_t version,
                           const std::string& payload);

/// Reads and verifies a snapshot written by write_snapshot_atomic().
/// Throws Error(kIo) when the file cannot be opened and
/// Error(kInvalidInput) when the header is malformed, the payload is
/// truncated, or the CRC does not match (also injectable via the
/// `checkpoint.crc` site). Version skew is *not* an error here — the
/// caller owns the schema and decides what versions it can decode.
[[nodiscard]] Snapshot read_snapshot(const std::string& path);

/// Append-only journal writer. Each record is framed as
/// `rec <size> <crc32-hex>\n<payload>\n`; the frame is what makes torn
/// tails detectable on replay.
class JournalWriter {
 public:
  /// Opens `path` for appending (`truncate` starts a fresh journal).
  /// Throws Error(kIo) on failure.
  JournalWriter(const std::string& path, bool truncate);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends one record and flushes it to the OS. Throws Error(kIo) when
  /// the write fails (also injectable via the `journal.append` site); the
  /// journal is then in an unknown-but-detectable state — the next replay
  /// simply stops at the torn record.
  void append(const std::string& payload);

  /// fsync()s the journal file — the record is durable once this returns.
  void sync();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t records_written() const { return records_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::size_t records_ = 0;
};

/// Result of scanning a journal file.
struct JournalReadResult {
  std::vector<std::string> records;  ///< every intact record, in order
  /// False when scanning stopped early at a truncated or corrupt frame
  /// (the expected signature of a crash mid-append or of bit rot).
  bool clean_tail = true;
  std::string tail_error;  ///< why scanning stopped, when !clean_tail
};

/// Reads every intact record of `path`. A missing file is an empty, clean
/// journal (the common cold-start case). Corruption never throws: the
/// damaged tail is dropped and reported via `clean_tail`/`tail_error`
/// (injectable via the `journal.replay` site).
[[nodiscard]] JournalReadResult read_journal(const std::string& path);

/// Removes every stale `*.tmp` file a killed process's in-flight atomic
/// writes left in `dir` (restricted to file names starting with `prefix`
/// when non-empty — concurrent writers owning other prefixes are then
/// untouched). Temp files are write-side artifacts only: no reader ever
/// opens one, so sweeping is always safe at startup before any writer is
/// live, and letting them accumulate forever is pure leakage. Emits one
/// `<site>.stale_tmp` diagnostic stat naming the swept count when anything
/// was removed. A missing directory sweeps nothing. Returns the number of
/// files removed.
std::size_t sweep_stale_tmp(const std::string& dir, const std::string& prefix,
                            const std::string& site);

}  // namespace obd::ckpt
