#include "core/closed_form.hpp"

#include <cmath>

#include "common/error.hpp"

namespace obd::core {

double g_closed_form(double t, double alpha, double b, double u, double v) {
  require(t > 0.0 && alpha > 0.0 && b > 0.0,
          "g_closed_form: t, alpha, b must be positive");
  require(v >= 0.0, "g_closed_form: variance must be non-negative");
  const double gamma = std::log(t / alpha);
  return std::exp(gamma * b * u + 0.5 * gamma * gamma * b * b * v);
}

double device_reliability(double t, double alpha, double b, double thickness,
                          double area) {
  require(t >= 0.0, "device_reliability: t must be non-negative");
  if (t == 0.0) return 1.0;
  const double gamma = std::log(t / alpha);
  return std::exp(-area * std::exp(gamma * b * thickness));
}

double block_conditional_failure(const BlockParams& block, double t, double u,
                                 double v) {
  return -std::expm1(-block.area * g_closed_form(t, block.alpha, block.b, u, v));
}

double conditional_chip_failure(const std::vector<BlockParams>& blocks,
                                double t, const std::vector<double>& u,
                                const std::vector<double>& v) {
  require(u.size() == blocks.size() && v.size() == blocks.size(),
          "conditional_chip_failure: one (u, v) pair per block required");
  double exponent = 0.0;
  for (std::size_t j = 0; j < blocks.size(); ++j)
    exponent +=
        blocks[j].area * g_closed_form(t, blocks[j].alpha, blocks[j].b, u[j], v[j]);
  return -std::expm1(-exponent);
}

}  // namespace obd::core
