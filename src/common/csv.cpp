#include "common/csv.hpp"

#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "common/error.hpp"

namespace obd {
namespace {

bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quoted(const std::string& s) {
  if (!needs_quoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::ostream& out) : out_(&out) {}

void CsvWriter::row(const std::vector<std::string>& cells) {
  require(!cells.empty(), "CsvWriter: empty row");
  if (columns_ == 0) columns_ = cells.size();
  require(cells.size() == columns_,
          "CsvWriter: row width differs from the first row");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    *out_ << quoted(cells[i]);
    if (i + 1 < cells.size()) *out_ << ',';
  }
  *out_ << '\n';
  ++rows_;
  require(out_->good(), "CsvWriter: write failed");
}

void CsvWriter::header(const std::vector<std::string>& names) { row(names); }

void CsvWriter::numeric_row(const std::vector<double>& values,
                            int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    cells.emplace_back(buf);
  }
  row(cells);
}

std::string csv_output_dir() {
  const char* dir = std::getenv("OBDREL_CSV_DIR");
  return (dir != nullptr) ? dir : "";
}

}  // namespace obd
