// AVX2 + FMA kernels. This translation unit is compiled with
// -mavx2 -mfma -ffp-contract=off (see src/simd/CMakeLists.txt); the rest
// of the build stays at the baseline ISA and reaches these only through
// the runtime-dispatched kernel table.
//
// -ffp-contract=off matters: several kernels (dot_counts, matmul,
// gram_aat) promise bit-identity with the scalar reference, which rounds
// every product before adding it. Explicit _mm256_fmadd_pd is still used
// where fusion is wanted (the erfc polynomials); the flag only stops the
// compiler from fusing the separate mul/add intrinsics behind our back.

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "simd/kernels.hpp"

namespace obd::simd {
namespace {

// ---------------------------------------------------------------------
// fill_bin_factors: the scalar kernel re-anchors p with an exact exp at
// every block of kReanchorInterval (64) bins and multiplies by
// ratio = exp(gb*step) in between. The vector variant keeps the same
// anchors (same scalar std::exp calls) and advances two 4-lane chains by
// ratio^8, so each block needs at most ~17 roundings on any value's
// dependency chain instead of up to 63 — the drift from the scalar
// values stays bounded near 1e-13 relative (pinned in tests/simd_test).
void fill_bin_factors_avx2(double gb, double x_lo, double step,
                           std::size_t bins, double* out) {
  const double ratio = std::exp(gb * step);
  const double r2 = ratio * ratio;
  const double r3 = r2 * ratio;
  const double r4 = r2 * r2;
  const __m256d vr8 = _mm256_set1_pd(r4 * r4);
  const __m256d ladder = _mm256_setr_pd(1.0, ratio, r2, r3);
  static_assert(kReanchorInterval % 8 == 0);
  std::size_t k0 = 0;
  for (; k0 + kReanchorInterval <= bins; k0 += kReanchorInterval) {
    const double anchor =
        std::exp(gb * (x_lo + (static_cast<double>(k0) + 0.5) * step));
    __m256d p = _mm256_mul_pd(_mm256_set1_pd(anchor), ladder);
    __m256d q = _mm256_mul_pd(p, _mm256_set1_pd(r4));
    for (std::size_t j = 0; j < kReanchorInterval; j += 8) {
      _mm256_storeu_pd(out + k0 + j, p);
      _mm256_storeu_pd(out + k0 + j + 4, q);
      p = _mm256_mul_pd(p, vr8);
      q = _mm256_mul_pd(q, vr8);
    }
  }
  if (k0 < bins) {
    // Partial final block: the scalar recurrence, anchored identically.
    double p = std::exp(gb * (x_lo + (static_cast<double>(k0) + 0.5) * step));
    for (std::size_t k = k0; k < bins; ++k) {
      out[k] = p;
      p *= ratio;
    }
  }
}

// ---------------------------------------------------------------------
// dot_counts: bit-identical to the scalar kernel. Vector lane l holds
// scalar accumulator a_l (both sum elements 4j + l in ascending j), the
// uint32 -> double conversion is exact (2^52 bias trick; AVX2 has no
// unsigned conversion), products are rounded before the add (mul + add,
// no FMA), the tail accumulates into lane 0, and the final combine is
// (a0 + a2) + (a1 + a3).
double dot_counts_avx2(const std::uint32_t* c, const double* e,
                       std::size_t n) {
  const __m256i kExpBits = _mm256_set1_epi64x(0x4330000000000000LL);
  const __m256d kTwo52 = _mm256_set1_pd(4503599627370496.0);  // 2^52
  __m256d acc = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m128i ci =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + k));
    const __m256d cd = _mm256_sub_pd(
        _mm256_castsi256_pd(
            _mm256_or_si256(_mm256_cvtepu32_epi64(ci), kExpBits)),
        kTwo52);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(cd, _mm256_loadu_pd(e + k)));
  }
  alignas(32) double a[4];
  _mm256_store_pd(a, acc);
  for (; k < n; ++k) a[0] += static_cast<double>(c[k]) * e[k];
  return (a[0] + a[2]) + (a[1] + a[3]);
}

// ---------------------------------------------------------------------
// Vectorized standard-normal CDF via polynomial erfc.
//
// cdf(z) = 0.5 * erfc(x), x = -z/sqrt(2), w = |x|:
//   w in [0, 0.5)  : erfc(x) = 1 - x * P_small(x^2)
//   w in [0.5, 2]  : erfc(w) = exp(-w^2) * P_mid(w - 5/4)
//   w in (2, 28]   : erfc(w) = exp(-w^2) * P_tail(1/w^2) * sqrt(1/w^2)
//   w > 28         : erfc(w) = 0 exactly (true value < 1e-341)
//   x < 0, w >= 0.5: erfc(x) = 2 - erfc(w)
//
// The coefficients are Chebyshev least-max fits (computed with 40-digit
// mpmath against its erfc) of erf(sqrt(u))/sqrt(u), erfc(w)*exp(w^2) and
// w*erfc(w)*exp(w^2) respectively, validated in float64 Horner
// arithmetic. End-to-end max relative error of the cdf, measured on a
// dense |z| <= 37 grid against 40-digit references, is 2.4e-13 (the
// floor is the half-ulp rounding of w^2 feeding exp, not the fits);
// results with |cdf| < 1e-300 carry absolute error only. Documented
// caller-facing bound: 1e-12 relative.

// Highest-degree coefficient first (Horner order).
constexpr double kErfPolySmall[] = {
    0x1.c60ae6747e9bcp-27,  -0x1.5d7686c510032p-23, 0x1.b9d19f664b4c1p-20,
    -0x1.f4d1cff2cac2fp-17, 0x1.f9a324a327ab3p-14,  -0x1.c02db3f9d6c71p-11,
    0x1.565bcd0e5f5a0p-8,   -0x1.b82ce312889f2p-6,  0x1.ce2f21a042be0p-4,
    -0x1.812746b0379e7p-2,  0x1.20dd750429b6dp+0,
};
constexpr double kErfcPolyMid[] = {
    0x1.cf581f9d26c9dp-29,  -0x1.b4554743d4dc7p-27, 0x1.44e1e2f2bf565p-25,
    -0x1.21d0889216364p-23, 0x1.01b52b69d7f28p-21,  -0x1.b6293e5f0fbebp-20,
    0x1.6a162bffa5122p-18,  -0x1.22f9bdb594505p-16, 0x1.c57047d56f26bp-15,
    -0x1.55c08eff1111cp-13, 0x1.f0fe6f69fb247p-12,  -0x1.5b8bc901e8916p-10,
    0x1.d1b695ab6763ep-9,   -0x1.299636d76d836p-7,  0x1.68a25a664142cp-6,
    -0x1.9b635ac623553p-5,  0x1.b56f45eef7e5ep-4,   -0x1.abaacdbfa8b13p-3,
    0x1.78a692138767ap-2,
};
constexpr double kErfcPolyTail[] = {
    0x1.0377f2b16baa9p+34,  -0x1.831d8926d0698p+35, 0x1.0f906acf4c062p+36,
    -0x1.dca6141b880e6p+35, 0x1.25b9ff9d8fe49p+35,  -0x1.0e9fef2f52cd2p+34,
    0x1.83c9bf300b0a6p+32,  -0x1.bc4196aef612ap+30, 0x1.9fe201b1f38a4p+28,
    -0x1.4482ea3be4d6cp+26, 0x1.af3e19f858958p+23,  -0x1.f53eabbd457c2p+20,
    0x1.0845561d3a5eep+18,  -0x1.0999cb36b7e60p+15, 0x1.0e350b4f39b8ep+12,
    -0x1.27bf00d349082p+9,  0x1.6e2e0f2047472p+6,   -0x1.0a8e3c819677cp+4,
    0x1.d9eac4331e9edp+1,   -0x1.0ecf9b8dadd24p+0,  0x1.b14c2f7c8e35cp-2,
    -0x1.20dd750424486p-2,  0x1.20dd750429b64p-1,
};
// 1/13!, 1/12!, ..., 1/1!, 1/0! — Taylor core of exp on |r| <= ln2/2.
constexpr double kExpPoly[] = {
    1.6059043836821613e-10, 2.08767569878681e-9, 2.505210838544172e-8,
    2.7557319223985893e-7,  2.755731922398589e-6, 2.48015873015873e-5,
    1.984126984126984e-4,   1.3888888888888889e-3, 8.333333333333333e-3,
    4.1666666666666664e-2,  1.6666666666666666e-1, 5e-1, 1.0, 1.0,
};

template <std::size_t N>
inline __m256d horner(const double (&cs)[N], __m256d x) {
  __m256d acc = _mm256_set1_pd(cs[0]);
  for (std::size_t i = 1; i < N; ++i)
    acc = _mm256_fmadd_pd(acc, x, _mm256_set1_pd(cs[i]));
  return acc;
}

// exp(t) for t <= 0, graceful underflow to 0 below ~-745 (the 2^n scaling
// is split into two factors so subnormal results stay exact to rounding).
inline __m256d exp_nonpos(__m256d t) {
  const __m256d kLog2e = _mm256_set1_pd(0x1.71547652b82fep+0);
  const __m256d kLn2Hi = _mm256_set1_pd(0x1.62e42fee00000p-1);
  const __m256d kLn2Lo = _mm256_set1_pd(0x1.a39ef35793c76p-33);
  // Clamp far below the underflow threshold: keeps the exponent arithmetic
  // in range for arbitrarily negative inputs without changing any result
  // that is representable (everything below -800 is exactly 0).
  t = _mm256_max_pd(t, _mm256_set1_pd(-800.0));
  const __m256d nf = _mm256_round_pd(
      _mm256_mul_pd(t, kLog2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(nf, kLn2Hi, t);
  r = _mm256_fnmadd_pd(nf, kLn2Lo, r);
  const __m256d p = horner(kExpPoly, r);
  const __m128i ni = _mm256_cvtpd_epi32(nf);
  const __m128i n1 = _mm_srai_epi32(ni, 1);
  const __m128i n2 = _mm_sub_epi32(ni, n1);
  const auto pow2 = [](__m128i m) {
    const __m256i wide = _mm256_add_epi64(_mm256_cvtepi32_epi64(m),
                                          _mm256_set1_epi64x(1023));
    return _mm256_castsi256_pd(_mm256_slli_epi64(wide, 52));
  };
  return _mm256_mul_pd(_mm256_mul_pd(p, pow2(n1)), pow2(n2));
}

inline __m256d erfc4(__m256d x) {
  const __m256d kAbsMask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d kOne = _mm256_set1_pd(1.0);
  const __m256d kTwo = _mm256_set1_pd(2.0);
  const __m256d w = _mm256_and_pd(x, kAbsMask);
  const __m256d u = _mm256_mul_pd(w, w);
  // |x| < 0.5 (sign handled by the odd polynomial directly).
  const __m256d r_small =
      _mm256_fnmadd_pd(x, horner(kErfPolySmall, u), kOne);
  // w >= 0.5: erfc(w) = exp(-w^2) * (mid or tail polynomial).
  const __m256d e = exp_nonpos(_mm256_sub_pd(_mm256_setzero_pd(), u));
  const __m256d p_mid =
      horner(kErfcPolyMid, _mm256_sub_pd(w, _mm256_set1_pd(1.25)));
  const __m256d s = _mm256_div_pd(kOne, u);
  const __m256d p_tail =
      _mm256_mul_pd(horner(kErfcPolyTail, s), _mm256_sqrt_pd(s));
  __m256d r = _mm256_mul_pd(
      e, _mm256_blendv_pd(p_mid, p_tail,
                          _mm256_cmp_pd(w, kTwo, _CMP_GT_OQ)));
  // w > 28: exactly 0 (and discards any garbage from the s = 1/u lanes).
  r = _mm256_andnot_pd(
      _mm256_cmp_pd(w, _mm256_set1_pd(28.0), _CMP_GT_OQ), r);
  // Negative arguments: erfc(x) = 2 - erfc(w).
  r = _mm256_blendv_pd(
      r, _mm256_sub_pd(kTwo, r),
      _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_LT_OQ));
  return _mm256_blendv_pd(
      r, r_small, _mm256_cmp_pd(w, _mm256_set1_pd(0.5), _CMP_LT_OQ));
}

void normal_cdf_batch_avx2(const double* z, std::size_t n, double* out) {
  const __m256d kNegInvSqrt2 = _mm256_set1_pd(-0x1.6a09e667f3bcdp-1);
  const __m256d kHalf = _mm256_set1_pd(0.5);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_mul_pd(_mm256_loadu_pd(z + i), kNegInvSqrt2);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(kHalf, erfc4(x)));
  }
  if (i < n) {
    alignas(32) double buf[4] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t j = i; j < n; ++j) buf[j - i] = z[j];
    const __m256d x = _mm256_mul_pd(_mm256_load_pd(buf), kNegInvSqrt2);
    _mm256_store_pd(buf, _mm256_mul_pd(kHalf, erfc4(x)));
    for (std::size_t j = i; j < n; ++j) out[j] = buf[j - i];
  }
}

// ---------------------------------------------------------------------
// orow[c] += av * brow[c]: the shared GEMM/SYRK inner step. mul + add
// (not FMA) reproduces the scalar kernels' per-element rounding exactly;
// the 4-wide unrolled pairs touch independent elements, so vectorization
// does not reorder any accumulation chain.
inline void axpy_row(double* orow, const double* brow, double av,
                     std::size_t n) {
  const __m256d va = _mm256_set1_pd(av);
  std::size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    _mm256_storeu_pd(
        orow + c,
        _mm256_add_pd(_mm256_loadu_pd(orow + c),
                      _mm256_mul_pd(va, _mm256_loadu_pd(brow + c))));
    _mm256_storeu_pd(
        orow + c + 4,
        _mm256_add_pd(_mm256_loadu_pd(orow + c + 4),
                      _mm256_mul_pd(va, _mm256_loadu_pd(brow + c + 4))));
  }
  for (; c + 4 <= n; c += 4)
    _mm256_storeu_pd(
        orow + c,
        _mm256_add_pd(_mm256_loadu_pd(orow + c),
                      _mm256_mul_pd(va, _mm256_loadu_pd(brow + c))));
  for (; c < n; ++c) orow[c] += av * brow[c];
}

constexpr std::size_t kMatmulTileK = 256;

void matmul_avx2(const double* a, const double* b, double* out,
                 std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t k0 = 0; k0 < k; k0 += kMatmulTileK) {
    const std::size_t k1 = std::min(k, k0 + kMatmulTileK);
    for (std::size_t r = 0; r < m; ++r) {
      const double* arow = a + r * k;
      double* orow = out + r * n;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const double av = arow[kk];
        if (av == 0.0) continue;
        axpy_row(orow, b + kk * n, av, n);
      }
    }
  }
}

// Four accumulator lanes per row, combined like dot_counts. Differs from
// the scalar single-chain matvec by dot-product rounding only (no caller
// pins matvec bits — see kernels.hpp).
void matvec_avx2(const double* a, const double* x, double* y,
                 std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* arow = a + r * cols;
    __m256d acc = _mm256_setzero_pd();
    std::size_t c = 0;
    for (; c + 4 <= cols; c += 4)
      acc = _mm256_add_pd(
          acc, _mm256_mul_pd(_mm256_loadu_pd(arow + c),
                             _mm256_loadu_pd(x + c)));
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    for (; c < cols; ++c) lanes[0] += arow[c] * x[c];
    y[r] = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
  }
}

// SYRK as a row-axpy sweep over the materialized transpose. For every
// upper-triangle entry g(i, j) the contributions a(i,c)*a(j,c) accumulate
// from 0.0 in ascending c with round-then-add — the identical operation
// sequence to the scalar triangle loop, hence bit-identical; only the
// interleaving across independent entries changes.
void gram_aat_avx2(const double* a, double* g, std::size_t n,
                   std::size_t k) {
  std::vector<double> at(k * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < k; ++c) at[c * n + i] = a[i * k + c];
  for (std::size_t i = 0; i < n; ++i) {
    double* gi = g + i * n;
    std::fill(gi + i, gi + n, 0.0);
    const double* ai = a + i * k;
    for (std::size_t c = 0; c < k; ++c)
      axpy_row(gi + i, at.data() + c * n + i, ai[c], n - i);
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) g[j * n + i] = g[i * n + j];
}

// Clenshaw over interleaved pencils, four per register. Each lane is one
// independent pencil running exactly the scalar kernel's operation
// sequence — mul, then sub, then add, each rounded separately (this TU is
// built with -ffp-contract=off, and no FMA intrinsic is used here), so
// the result is bit-identical to the scalar reference. The tail pencils
// repeat the same sequence in scalar arithmetic.
void clenshaw_batch_avx2(const double* coeffs, std::size_t n, std::size_t m,
                         double u, double* out) {
  if (n == 0) {
    for (std::size_t p = 0; p < m; ++p) out[p] = 0.0;
    return;
  }
  const double tu = 2.0 * u;
  const __m256d vtu = _mm256_set1_pd(tu);
  const __m256d vu = _mm256_set1_pd(u);
  std::size_t p = 0;
  for (; p + 4 <= m; p += 4) {
    __m256d b1 = _mm256_setzero_pd();
    __m256d b2 = _mm256_setzero_pd();
    for (std::size_t k = n - 1; k >= 1; --k) {
      const __m256d s = _mm256_mul_pd(vtu, b1);
      const __m256d q = _mm256_sub_pd(s, b2);
      const __m256d b = _mm256_add_pd(_mm256_loadu_pd(coeffs + k * m + p), q);
      b2 = b1;
      b1 = b;
    }
    const __m256d s = _mm256_mul_pd(vu, b1);
    _mm256_storeu_pd(out + p, _mm256_add_pd(_mm256_loadu_pd(coeffs + p),
                                            _mm256_sub_pd(s, b2)));
  }
  for (; p < m; ++p) {
    double b1 = 0.0;
    double b2 = 0.0;
    for (std::size_t k = n - 1; k >= 1; --k) {
      const double s = tu * b1;
      const double q = s - b2;
      const double b = coeffs[k * m + p] + q;
      b2 = b1;
      b1 = b;
    }
    const double s = u * b1;
    out[p] = coeffs[p] + (s - b2);
  }
}

}  // namespace

namespace detail {

const KernelTable kAvx2Kernels = {
    fill_bin_factors_avx2, dot_counts_avx2, normal_cdf_batch_avx2,
    matmul_avx2,           matvec_avx2,     gram_aat_avx2,
    clenshaw_batch_avx2,
};

}  // namespace detail
}  // namespace obd::simd

#else  // !(__AVX2__ && __FMA__)

#include "simd/kernels.hpp"

namespace obd::simd::detail {

// Built without AVX2 support: keep the symbol defined (the test suite
// references both tables unconditionally) but alias the scalar reference.
// kScalarKernels is constant-initialized (function addresses only), so
// copying it during dynamic initialization is order-safe.
const KernelTable kAvx2Kernels = kScalarKernels;

}  // namespace obd::simd::detail

#endif  // __AVX2__ && __FMA__
