// Pipeline-wide warning collector for graceful degradation.
//
// Recoverable conditions (a ridge-stabilized factorization, a damped
// thermal retry, a clamped workload sample) should not kill a long
// reliability run — but they must not pass silently either. Code that
// degrades calls obd::diagnostics().warn(site, message); the collector
// records the event and the frontend reports it after the command.
//
// Strict mode inverts the policy: set_strict_mode(true) turns every warn()
// into a thrown obd::Error with ErrorCode::kDegraded, so sign-off flows can
// insist on pristine numerics. The event is recorded before the throw, so
// the collector always holds a full account of what degraded.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace obd {

/// One recorded degradation event.
struct Diagnostic {
  std::string site;     ///< stable seam name, e.g. "thermal.fixed_point"
  std::string message;  ///< human-readable description of the recovery
};

/// Append-only, thread-safe collector of degradation warnings.
class Diagnostics {
 public:
  /// Records a degradation event. Throws Error(kDegraded) in strict mode
  /// (after recording, so the event is never lost).
  void warn(const std::string& site, const std::string& message);

  /// Records an informational statistic (e.g. thread-pool counters).
  /// Stats never mark the run degraded and never escalate under strict
  /// mode; they are reported separately via stats()/render_stats().
  void stat(const std::string& site, const std::string& message);

  /// Snapshot of all recorded events, in order.
  [[nodiscard]] std::vector<Diagnostic> entries() const;

  /// Snapshot of all recorded stats, in order.
  [[nodiscard]] std::vector<Diagnostic> stats() const;

  /// True when at least one degradation was recorded.
  [[nodiscard]] bool degraded() const;

  /// Total number of recorded events.
  [[nodiscard]] std::size_t size() const;

  /// Number of events recorded against `site`.
  [[nodiscard]] std::size_t count(const std::string& site) const;

  /// Drops all recorded events and stats (start of a fresh run).
  void clear();

  /// One "warning [site]: message" line per event.
  [[nodiscard]] std::string render() const;

  /// One "stat [site]: message" line per recorded stat.
  [[nodiscard]] std::string render_stats() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Diagnostic> entries_;
  std::vector<Diagnostic> stats_;
};

/// Process-global collector threaded through the pipeline.
Diagnostics& diagnostics();

/// Strict-mode switch (default off). In strict mode every degradation
/// becomes a typed error instead of a warning.
void set_strict_mode(bool strict);
[[nodiscard]] bool strict_mode();

}  // namespace obd
