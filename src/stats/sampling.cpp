#include "stats/sampling.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "stats/special.hpp"

namespace obd::stats {
namespace {

// Fisher-Yates shuffle of an index permutation.
void shuffle(std::vector<std::size_t>& perm, Rng& rng) {
  for (std::size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1], perm[rng.below(i)]);
}

// Binomial(n, p) by CDF inversion over the probability recurrence
// P(k+1) = P(k) * (n - k)/(k + 1) * p/(1-p). Expected O(n p) iterations;
// used below the BTRS mean threshold where that is a small constant.
std::uint64_t binomial_inversion(std::uint64_t n, double p, Rng& rng) {
  const double q = 1.0 - p;
  const double s = p / q;
  // P(0) = q^n can underflow for huge n, but this branch only runs when
  // n p < 10, where q^n >= exp(-n p / q) is comfortably normal.
  double f = std::pow(q, static_cast<double>(n));
  double u = rng.uniform();
  std::uint64_t k = 0;
  while (u > f) {
    u -= f;
    if (k >= n) return n;  // guard against roundoff in the tail
    f *= s * static_cast<double>(n - k) / static_cast<double>(k + 1);
    ++k;
  }
  return k;
}

// Stirling tail of log(k!): the correction term fc(k) in
// log(k!) = (k + 1/2) log(k+1) - (k+1) + 1/2 log(2 pi) + fc(k)
// (Hormann 1993, eq. 9). Tabulated for k < 10, series beyond.
double stirling_tail(double k) {
  static const double table[] = {0.08106146679532726, 0.04134069595540929,
                                 0.02767792568499834, 0.02079067210376509,
                                 0.01664469118982119, 0.01387612882307075,
                                 0.01189670994589177, 0.01041126526197209,
                                 0.009255462182712733, 0.008330563433362871};
  if (k < 10.0) return table[static_cast<int>(k)];
  const double kp1 = k + 1.0;
  const double kp1sq = kp1 * kp1;
  return (1.0 / 12.0 - (1.0 / 360.0 - (1.0 / 1260.0) / kp1sq) / kp1sq) / kp1;
}

// BTRS: binomial via transformed rejection with squeeze (Hormann 1993,
// "The generation of binomial random variates", algorithm BTRS). Assumes
// p <= 0.5 and n p >= 10; acceptance probability stays above ~0.85, so the
// expected cost is O(1) uniforms and logs for any n.
std::uint64_t binomial_btrs(std::uint64_t n, double p, Rng& rng) {
  const double nd = static_cast<double>(n);
  const double q = 1.0 - p;
  const double spq = std::sqrt(nd * p * q);
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double vr = 0.92 - 4.2 / b;
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double odds = p / q;
  const double m = std::floor((nd + 1.0) * p);

  for (;;) {
    const double u = rng.uniform() - 0.5;
    double v = rng.uniform();
    const double us = 0.5 - std::fabs(u);
    const double kd = std::floor((2.0 * a / us + b) * u + c);
    // Squeeze: inside the box the hat is tight enough to accept outright.
    if (us >= 0.07 && v <= vr) return static_cast<std::uint64_t>(kd);
    if (kd < 0.0 || kd > nd) continue;
    // Exact test: log of the scaled hat density against the pmf ratio
    // f(k)/f(m), both via the Stirling decomposition of log C(n, k).
    v = std::log(v * alpha / (a / (us * us) + b));
    const double bound =
        (m + 0.5) * std::log((m + 1.0) / (odds * (nd - m + 1.0))) +
        (nd + 1.0) * std::log((nd - m + 1.0) / (nd - kd + 1.0)) +
        (kd + 0.5) * std::log(odds * (nd - kd + 1.0) / (kd + 1.0)) +
        stirling_tail(m) + stirling_tail(nd - m) - stirling_tail(kd) -
        stirling_tail(nd - kd);
    if (v <= bound) return static_cast<std::uint64_t>(kd);
  }
}

}  // namespace

std::vector<double> latin_hypercube_normal(std::size_t count,
                                           std::size_t dimensions,
                                           Rng& rng) {
  require(count > 0, "latin_hypercube_normal: count must be positive");
  require(dimensions > 0,
          "latin_hypercube_normal: dimensions must be positive");
  std::vector<double> out(count * dimensions);
  std::vector<std::size_t> perm(count);
  for (std::size_t k = 0; k < dimensions; ++k) {
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    shuffle(perm, rng);
    for (std::size_t i = 0; i < count; ++i) {
      // Uniform jitter within the assigned stratum, then probit transform.
      const double u = (static_cast<double>(perm[i]) + rng.uniform()) /
                       static_cast<double>(count);
      const double clamped =
          std::min(std::max(u, 1e-15), 1.0 - 1e-15);
      out[i * dimensions + k] = normal_quantile(clamped);
    }
  }
  return out;
}

std::vector<double> stratified_normal(std::size_t count, Rng& rng) {
  return latin_hypercube_normal(count, 1, rng);
}

std::uint64_t binomial_sample(std::uint64_t n, double p, Rng& rng) {
  require(p >= 0.0 && p <= 1.0, "binomial_sample: p must be in [0, 1]");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  // Reduce to p <= 0.5 through the complement so both samplers see the
  // numerically friendly side.
  if (p > 0.5) return n - binomial_sample(n, 1.0 - p, rng);
  if (static_cast<double>(n) * p < 10.0) return binomial_inversion(n, p, rng);
  return std::min(n, binomial_btrs(n, p, rng));
}

}  // namespace obd::stats
