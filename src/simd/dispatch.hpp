// Runtime ISA dispatch for the SIMD kernel layer.
//
// The dispatch level is a single process-wide decision, resolved in
// priority order from: configure() (the `simd` config key), the
// OBDREL_SIMD environment variable, and CPU auto-detection. "auto" picks
// AVX2+FMA when both the binary was built with the AVX2 translation unit
// (OBDREL_ENABLE_AVX2, default on) and the CPU reports the features;
// anything else falls back to the scalar reference kernels, which are
// bit-identical to the loops they replaced.
//
// Requesting "avx2" explicitly on a host (or build) that cannot run it is
// a configuration error (ErrorCode::kConfig), mirroring how the CLI
// rejects bad `device_sampling` values; "scalar" always works.
#pragma once

#include <string>

namespace obd::simd {

enum class Level {
  kScalar,  ///< portable reference kernels, baseline ISA
  kAvx2,    ///< AVX2 + FMA kernels (per-file -mavx2 -mfma)
};

/// "scalar" or "avx2".
const char* to_string(Level level);

/// True when the AVX2 kernels are compiled in AND the CPU supports
/// AVX2 + FMA. False on non-x86 builds or with OBDREL_ENABLE_AVX2=OFF.
bool can_use_avx2();

/// The active dispatch level. Lazily initialized from OBDREL_SIMD
/// ("auto" when unset) on first use; a bad OBDREL_SIMD value throws
/// Error(kConfig) from whichever call initializes first — call
/// init_from_env() early to surface that at startup.
Level active_level();

/// Parses and applies a level spec: "auto" | "avx2" | "scalar".
/// Throws Error(kConfig) for unknown specs and for "avx2" when
/// can_use_avx2() is false.
void configure(const std::string& spec);

/// Applies $OBDREL_SIMD (no-op when unset/empty). Same validation as
/// configure(). The CLI calls this before dispatching any command so a
/// bad value fails with the config exit code everywhere.
void init_from_env();

/// Forces a level directly (tests). Throws Error(kConfig) for kAvx2 when
/// can_use_avx2() is false.
void set_level(Level level);

/// Records the active level as a non-degrading "simd.level" stat in
/// obd::diagnostics(), next to the parallel.pool entry.
void publish_level();

}  // namespace obd::simd
