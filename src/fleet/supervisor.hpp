// Fleet supervisor: process-level fault tolerance for sharded sweeps.
//
// The supervisor fork/execs one worker process per shard (re-invoking the
// CLI in its hidden --worker mode), watches per-shard heartbeat files for
// liveness, and restarts crashed or wedged workers under a bounded
// deterministic exponential-backoff policy. Durability lives entirely in
// the shard journals (see fleet/shard.hpp): a restarted worker resumes
// mid-shard bit-for-bit, so the supervision layer influences *when* work
// happens, never *what* it computes — wall time shapes scheduling only,
// and the merged report is byte-identical for any crash schedule.
//
// The clock is injectable (FakeClock) so the retry schedule itself is unit
// testable without sleeping, and a built-in chaos mode SIGKILL/SIGSTOPs
// random live workers to exercise every recovery path on demand.
//
// When a shard exhausts its retry budget the fleet degrades gracefully:
// whatever chunks that shard journaled are merged, the report marks the
// missing coverage, and a `fleet.shard_failed` diagnostic is emitted
// (escalating to Error(kDegraded) under --strict).
#pragma once

#include <sys/types.h>

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include "fleet/shard.hpp"

namespace obd::fleet {

/// Injectable time source. The supervisor never reads wall time directly,
/// so tests pin the retry schedule with a FakeClock and zero real sleeping.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual std::uint64_t now_ms() = 0;
  virtual void sleep_ms(std::uint64_t ms) = 0;
};

/// Monotonic wall clock (std::chrono::steady_clock).
class SteadyClock final : public Clock {
 public:
  [[nodiscard]] std::uint64_t now_ms() override;
  void sleep_ms(std::uint64_t ms) override;
};

/// Test clock: sleeping advances virtual time instantly.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::uint64_t start_ms = 0) : now_(start_ms) {}
  [[nodiscard]] std::uint64_t now_ms() override { return now_; }
  void sleep_ms(std::uint64_t ms) override { now_ += ms; }
  void advance_ms(std::uint64_t ms) { now_ += ms; }

 private:
  std::uint64_t now_;
};

/// Deterministic bounded exponential backoff: restart n (1-based) waits
/// min(cap_ms, base_ms * 2^(n-1)); real progress (a worker advancing its
/// chunks-done counter) resets the schedule; the budget bounds restarts
/// *between* progress, so a shard that keeps moving is never abandoned.
class BackoffPolicy {
 public:
  BackoffPolicy(std::uint64_t base_ms, std::uint64_t cap_ms,
                std::size_t budget)
      : base_ms_(base_ms), cap_ms_(cap_ms), budget_(budget) {}

  /// Delay before the next restart; consumes one attempt.
  [[nodiscard]] std::uint64_t next_delay_ms();

  /// Progress observed: reset the attempt counter and delays.
  void on_success();

  /// True once the restart budget is spent (check before next_delay_ms).
  [[nodiscard]] bool exhausted() const { return attempts_ >= budget_; }
  [[nodiscard]] std::size_t attempts() const { return attempts_; }

 private:
  std::uint64_t base_ms_;
  std::uint64_t cap_ms_;
  std::size_t budget_;
  std::size_t attempts_ = 0;
};

/// Spawns a worker process running `argv` with stdout/stderr appended to
/// `log_file`. Throws Error(kIo) on fork/exec setup failure (injectable
/// via `fleet.spawn`); an exec failure inside the child surfaces as exit
/// status 127 through the normal reaping path.
[[nodiscard]] pid_t spawn_worker(const std::vector<std::string>& argv,
                                 const std::string& log_file);

/// Chaos harness knobs: per poll tick, with the given probabilities, a
/// random live worker is SIGKILLed or SIGSTOPped (resumed stop_ms later —
/// unless the heartbeat watchdog declares it dead first, which is also a
/// legitimate recovery path). Rates of zero disable chaos entirely.
struct ChaosOptions {
  double kill_rate = 0.0;
  double stop_rate = 0.0;
  std::uint64_t stop_ms = 300;
  std::uint64_t seed = 1;
};

struct SupervisorOptions {
  std::string dir;  ///< fleet state directory (must exist)
  std::uint64_t shards = 1;  ///< shard count K (partition shape only)
  /// Worker command line; the supervisor appends "--worker <k>".
  std::vector<std::string> worker_argv;
  std::uint64_t max_parallel = 0;  ///< concurrent workers; 0 = all shards
  std::size_t max_restarts = 5;    ///< restart budget per shard (between progress)
  std::uint64_t backoff_base_ms = 200;
  std::uint64_t backoff_cap_ms = 5000;
  std::uint64_t heartbeat_stale_ms = 5000;  ///< no beat for this long = wedged
  std::uint64_t poll_ms = 25;
  ChaosOptions chaos;
  Clock* clock = nullptr;  ///< nullptr = SteadyClock
  /// Graceful-shutdown flag (signal handler writes it): when set, running
  /// workers are killed and the merge happens over whatever is durable.
  const volatile std::sig_atomic_t* stop_flag = nullptr;
};

struct ShardOutcome {
  enum class State { kDone, kFailed, kStopped };
  State state = State::kDone;
  std::size_t restarts = 0;
  std::uint64_t heartbeat_timeouts = 0;
  bool resumed = false;  ///< satisfied by pre-existing durable state
  /// The realized backoff schedule, for pinning in tests.
  std::vector<std::uint64_t> restart_delays_ms;
};

struct FleetOutcome {
  FleetReport report;
  std::vector<ShardOutcome> shards;
  std::size_t total_restarts = 0;
  std::size_t failed_shards = 0;
  std::size_t spawn_failures = 0;
  std::uint64_t heartbeat_timeouts = 0;
  bool interrupted = false;
};

class Supervisor {
 public:
  Supervisor(FleetSpec spec, SupervisorOptions opts);

  /// Runs the fleet to completion (or budget exhaustion / stop signal) and
  /// merges every durable chunk into the report. Emits no diagnostics —
  /// call publish_diagnostics() after consuming the report so strict-mode
  /// escalation cannot outrun the output.
  [[nodiscard]] FleetOutcome run();

 private:
  FleetSpec spec_;
  SupervisorOptions opts_;
};

/// Publishes fleet.shards / fleet.restarts stats and a fleet.shard_failed
/// warning per permanently-failed shard (throwing kDegraded under strict
/// mode — call after the report has been written out).
void publish_diagnostics(const FleetOutcome& outcome);

}  // namespace obd::fleet
