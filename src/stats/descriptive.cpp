#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace obd::stats {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return (n_ >= 2) ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double quantile(std::vector<double> xs, double p) {
  require(!xs.empty(), "quantile: empty input");
  require(p >= 0.0 && p <= 1.0, "quantile: p must be in [0, 1]");
  std::sort(xs.begin(), xs.end());
  const double pos = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double empirical_cdf(const std::vector<double>& sorted_xs, double x) {
  if (sorted_xs.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_xs.begin(), sorted_xs.end(), x);
  return static_cast<double>(it - sorted_xs.begin()) /
         static_cast<double>(sorted_xs.size());
}

}  // namespace obd::stats
