// Unit tests for the serving layer: fingerprinting, the durable table
// cache (LRU + byte budget + CRC disk tier + quarantine), the request
// grammar, deadline policy, and the coalescing query engine — including
// the contract the crash tests lean on: a memory hit, a disk reload, and
// a cold compute produce byte-identical replies.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "chip/design.hpp"
#include "common/checkpoint.hpp"
#include "common/config.hpp"
#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "core/device_model.hpp"
#include "core/hybrid.hpp"
#include "core/problem.hpp"
#include "serve/cache.hpp"
#include "serve/engine.hpp"
#include "variation/model.hpp"

namespace obd {
namespace {

namespace fs = std::filesystem;

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::disarm();
    diagnostics().clear();
    set_strict_mode(false);
    dir_ = ::testing::TempDir() + "obdrel-serve-" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::disarm();
    diagnostics().clear();
    set_strict_mode(false);
    fs::remove_all(dir_);
  }
  std::string dir_;
};

// Shared small problem for the table-cache round-trip tests (building one
// is the expensive part).
class ServeCacheTest : public ServeTest {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_synthetic_design(
        "serve", {.devices = 20000, .block_count = 4, .die_width = 4.0,
                  .die_height = 4.0, .seed = 5}));
    model_ = new core::AnalyticReliabilityModel();
    core::ProblemOptions opts;
    opts.grid_cells_per_side = 8;
    problem_ = new core::ReliabilityProblem(core::ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_,
        std::vector<double>(design_->blocks.size(), 80.0), 1.2, opts));
  }
  static void TearDownTestSuite() {
    delete problem_;
    delete model_;
    delete design_;
    problem_ = nullptr;
    model_ = nullptr;
    design_ = nullptr;
  }
  static core::HybridOptions small_tables() {
    core::HybridOptions h;
    h.n_gamma = 16;
    h.n_b = 12;
    return h;
  }
  static chip::Design* design_;
  static core::AnalyticReliabilityModel* model_;
  static core::ReliabilityProblem* problem_;
};

chip::Design* ServeCacheTest::design_ = nullptr;
core::AnalyticReliabilityModel* ServeCacheTest::model_ = nullptr;
core::ReliabilityProblem* ServeCacheTest::problem_ = nullptr;

// ---------------------------------------------------------------------------
// Fingerprinting and file naming
// ---------------------------------------------------------------------------

TEST_F(ServeTest, FingerprintIsDeterministicAndKeySensitive) {
  EXPECT_EQ(serve::fingerprint("design=c1"), serve::fingerprint("design=c1"));
  EXPECT_NE(serve::fingerprint("design=c1"), serve::fingerprint("design=c2"));
  EXPECT_NE(serve::fingerprint(""), serve::fingerprint("x"));
}

TEST_F(ServeTest, CacheFilePathIsHexUnderTheDirectory) {
  const std::string p = serve::cache_file_path("/tmp/cache", 0xabcdull);
  EXPECT_EQ(p, "/tmp/cache/abcd.lut");
}

// ---------------------------------------------------------------------------
// Disk-tier files: CRC framing, foreign keys, corruption quarantine
// ---------------------------------------------------------------------------

TEST_F(ServeTest, CacheFileRoundTripsItsPayload) {
  const std::string path = dir_ + "/e.lut";
  ASSERT_TRUE(serve::write_cache_file(path, "the-key", "line1\nline2\n"));
  bool quarantined = true;
  const auto text = serve::read_cache_file(path, "the-key", &quarantined);
  ASSERT_TRUE(text.has_value());
  EXPECT_FALSE(quarantined);
  EXPECT_EQ(*text, "line1\nline2\n");
}

TEST_F(ServeTest, MissingCacheFileIsAPlainMiss) {
  bool quarantined = true;
  EXPECT_FALSE(serve::read_cache_file(dir_ + "/absent.lut", "k",
                                      &quarantined));
  EXPECT_FALSE(quarantined);
  EXPECT_EQ(diagnostics().count("serve.cache_corrupt"), 0u);
}

TEST_F(ServeTest, ForeignKeyIsQuarantinedNotBelieved) {
  const std::string path = dir_ + "/e.lut";
  ASSERT_TRUE(serve::write_cache_file(path, "their-key", "tables"));
  bool quarantined = false;
  EXPECT_FALSE(serve::read_cache_file(path, "my-key", &quarantined));
  EXPECT_TRUE(quarantined);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path + ".quarantined"));
  EXPECT_GE(diagnostics().count("serve.cache_corrupt"), 1u);
}

TEST_F(ServeTest, BitRotIsQuarantinedNotBelieved) {
  const std::string path = dir_ + "/e.lut";
  ASSERT_TRUE(serve::write_cache_file(path, "the-key", "tables"));
  // Flip one payload byte under the CRC.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-2, std::ios::end);
    f.put('X');
  }
  bool quarantined = false;
  EXPECT_FALSE(serve::read_cache_file(path, "the-key", &quarantined));
  EXPECT_TRUE(quarantined);
  EXPECT_TRUE(fs::exists(path + ".quarantined"));
}

// ---------------------------------------------------------------------------
// LRU cache mechanics
// ---------------------------------------------------------------------------

serve::CacheEntry stub_entry(const std::string& key, std::size_t bytes) {
  serve::CacheEntry e;
  e.key = key;
  e.fp = serve::fingerprint(key);
  e.bytes = bytes;
  return e;
}

TEST_F(ServeTest, LruEvictsTheLeastRecentlyUsedFirst) {
  serve::CacheOptions opts;
  opts.byte_budget = 250;  // room for two 100-byte entries
  serve::TableCache cache(opts);
  cache.insert(stub_entry("a", 100));
  cache.insert(stub_entry("b", 100));
  // Touch "a" so "b" becomes the eviction victim.
  ASSERT_NE(cache.find(serve::fingerprint("a")), nullptr);
  cache.insert(stub_entry("c", 100));
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_NE(cache.find(serve::fingerprint("a")), nullptr);
  EXPECT_EQ(cache.find(serve::fingerprint("b")), nullptr);
  EXPECT_NE(cache.find(serve::fingerprint("c")), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.bytes(), opts.byte_budget);
}

TEST_F(ServeTest, MostRecentEntryStaysResidentEvenOverBudget) {
  serve::CacheOptions opts;
  opts.byte_budget = 10;
  serve::TableCache cache(opts);
  cache.insert(stub_entry("big", 1000));
  EXPECT_EQ(cache.entries(), 1u);  // never evict the entry being served
  cache.insert(stub_entry("bigger", 2000));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.find(serve::fingerprint("big")), nullptr);
}

TEST_F(ServeTest, ReinsertReplacesWithoutLeakingBytes) {
  serve::CacheOptions opts;
  opts.byte_budget = 1000;
  serve::TableCache cache(opts);
  cache.insert(stub_entry("a", 100));
  cache.insert(stub_entry("a", 300));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), 300u);
}

TEST_F(ServeTest, CacheConstructionSweepsStaleTmpFiles) {
  std::ofstream(dir_ + "/dead.lut.tmp") << "torn";
  std::ofstream(dir_ + "/live.lut") << "not a tmp";
  serve::CacheOptions opts;
  opts.dir = dir_;
  serve::TableCache cache(opts);
  EXPECT_FALSE(fs::exists(dir_ + "/dead.lut.tmp"));
  EXPECT_TRUE(fs::exists(dir_ + "/live.lut"));
  bool noted = false;
  for (const auto& s : diagnostics().stats())
    noted = noted || s.site == "serve.stale_tmp";
  EXPECT_TRUE(noted);
}

// ---------------------------------------------------------------------------
// Stale-tmp sweeping (the shared ckpt helper)
// ---------------------------------------------------------------------------

TEST_F(ServeTest, StaleTmpSweepHonorsThePrefix) {
  std::ofstream(dir_ + "/shard-0.hb.tmp") << "x";
  std::ofstream(dir_ + "/shard-1.hb.tmp") << "x";
  std::ofstream(dir_ + "/shard-10.hb.tmp") << "x";
  std::ofstream(dir_ + "/keep.dat") << "x";
  EXPECT_EQ(ckpt::sweep_stale_tmp(dir_, "shard-1.", "fleet"), 1u);
  EXPECT_TRUE(fs::exists(dir_ + "/shard-0.hb.tmp"));
  EXPECT_FALSE(fs::exists(dir_ + "/shard-1.hb.tmp"));
  EXPECT_TRUE(fs::exists(dir_ + "/shard-10.hb.tmp"));
  EXPECT_EQ(ckpt::sweep_stale_tmp(dir_, "", "fleet"), 2u);
  EXPECT_TRUE(fs::exists(dir_ + "/keep.dat"));
  EXPECT_EQ(ckpt::sweep_stale_tmp(dir_ + "/no-such-dir", "", "x"), 0u);
}

// ---------------------------------------------------------------------------
// Hybrid batched sweeps are bit-identical to per-point calls
// ---------------------------------------------------------------------------

TEST_F(ServeCacheTest, BatchedSweepMatchesPerPointBitForBit) {
  const core::HybridEvaluator ev(*problem_, small_tables());
  const std::vector<double> ts = {1.0e7, 5.0e7, 3.15e8, 1.0e9};
  const std::vector<double> batch = ev.failure_probabilities(ts);
  ASSERT_EQ(batch.size(), ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i)
    EXPECT_EQ(batch[i], ev.failure_probability(ts[i])) << i;

  std::vector<double> alphas, bs;
  for (const auto& blk : problem_->blocks()) {
    alphas.push_back(blk.alpha * 1.1);
    bs.push_back(blk.b);
  }
  const std::vector<double> with =
      ev.failure_probabilities_with(ts, alphas, bs);
  for (std::size_t i = 0; i < ts.size(); ++i)
    EXPECT_EQ(with[i], ev.failure_probability_with(ts[i], alphas, bs)) << i;
}

// ---------------------------------------------------------------------------
// Disk tier round-trips real tables bit-identically
// ---------------------------------------------------------------------------

TEST_F(ServeCacheTest, DiskTierRoundTripIsBitIdentical) {
  serve::CacheOptions opts;
  opts.dir = dir_;
  serve::TableCache cache(opts);

  const std::string key = "serve-roundtrip";
  const std::uint64_t fp = serve::fingerprint(key);
  const core::HybridEvaluator built(*problem_, small_tables());
  ASSERT_TRUE(serve::write_cache_file(serve::cache_file_path(dir_, fp), key,
                                      serve::TableCache::serialize(built)));

  const auto loaded = cache.load_disk(fp, key, *problem_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  for (const double t : {1.0e7, 3.15e8, 2.0e9})
    EXPECT_EQ(loaded->failure_probability(t), built.failure_probability(t))
        << t;
}

TEST_F(ServeCacheTest, EvictionWritesBackAndLoadDiskRecovers) {
  serve::CacheOptions opts;
  opts.dir = dir_;
  opts.byte_budget = 1;  // evict on every second insert
  serve::TableCache cache(opts);

  const std::string key = "serve-evicted";
  const std::uint64_t fp = serve::fingerprint(key);
  serve::CacheEntry e;
  e.key = key;
  e.fp = fp;
  e.bytes = 1000;
  e.problem = std::make_unique<core::ReliabilityProblem>(*problem_);
  e.hybrid =
      std::make_unique<core::HybridEvaluator>(*e.problem, small_tables());
  const double want = e.hybrid->failure_probability(3.15e8);
  cache.insert(std::move(e));
  cache.insert(stub_entry("displacer", 1000));  // pushes the entry out

  EXPECT_EQ(cache.find(fp), nullptr);
  EXPECT_TRUE(fs::exists(serve::cache_file_path(dir_, fp)));
  const auto loaded = cache.load_disk(fp, key, *problem_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->failure_probability(3.15e8), want);
}

TEST_F(ServeCacheTest, UndecodableTablesAreQuarantined) {
  serve::CacheOptions opts;
  opts.dir = dir_;
  serve::TableCache cache(opts);
  const std::string key = "serve-bad-tables";
  const std::uint64_t fp = serve::fingerprint(key);
  const std::string path = serve::cache_file_path(dir_, fp);
  // CRC-valid frame, right key, garbage tables: load must quarantine.
  ASSERT_TRUE(serve::write_cache_file(path, key, "not a lut stream\n"));
  EXPECT_FALSE(cache.load_disk(fp, key, *problem_).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
  EXPECT_TRUE(fs::exists(path + ".quarantined"));
  EXPECT_GE(diagnostics().count("serve.cache_corrupt"), 1u);
}

TEST_F(ServeCacheTest, FlushMakesEveryResidentEntryDurable) {
  serve::CacheOptions opts;
  opts.dir = dir_;
  serve::TableCache cache(opts);
  serve::CacheEntry e;
  e.key = "serve-flush";
  e.fp = serve::fingerprint(e.key);
  e.bytes = 10;
  e.problem = std::make_unique<core::ReliabilityProblem>(*problem_);
  e.hybrid =
      std::make_unique<core::HybridEvaluator>(*e.problem, small_tables());
  cache.insert(std::move(e));
  EXPECT_FALSE(fs::exists(serve::cache_file_path(dir_, serve::fingerprint(
                                                           "serve-flush"))));
  EXPECT_TRUE(cache.flush());
  EXPECT_TRUE(fs::exists(serve::cache_file_path(dir_, serve::fingerprint(
                                                          "serve-flush"))));
  EXPECT_TRUE(cache.flush());  // idempotent: already on disk
  EXPECT_EQ(cache.stats().write_failures, 0u);
}

// ---------------------------------------------------------------------------
// Request grammar
// ---------------------------------------------------------------------------

template <typename Fn>
ErrorCode thrown_code(Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected obd::Error, nothing was thrown";
  return ErrorCode::kInternal;
}

TEST_F(ServeTest, ParsesAFullQueryLine) {
  const serve::Request r = serve::parse_request(
      "id=q7 t=3.15e8 set.ambient_c=60 set.vdd=1.1 deadline_ms=25");
  EXPECT_EQ(r.op, serve::Request::Op::kQuery);
  EXPECT_EQ(r.id, "q7");
  EXPECT_DOUBLE_EQ(r.t, 3.15e8);
  EXPECT_DOUBLE_EQ(r.deadline_ms, 25.0);
  ASSERT_EQ(r.overrides.size(), 2u);
  EXPECT_EQ(r.overrides.at("ambient_c"), "60");
  EXPECT_EQ(r.overrides.at("vdd"), "1.1");
}

TEST_F(ServeTest, ParsesAHealthProbe) {
  const serve::Request r = serve::parse_request("op=health id=hb");
  EXPECT_EQ(r.op, serve::Request::Op::kHealth);
  EXPECT_EQ(r.id, "hb");
  EXPECT_EQ(serve::parse_request("op=health").id, "");  // id optional
}

TEST_F(ServeTest, RejectsMalformedRequests) {
  const auto code = [](const std::string& line) {
    return thrown_code([&] { (void)serve::parse_request(line); });
  };
  EXPECT_EQ(code("id=a"), ErrorCode::kInvalidInput);        // no t
  EXPECT_EQ(code("t=1e8"), ErrorCode::kInvalidInput);       // no id
  EXPECT_EQ(code("id=a t=banana"), ErrorCode::kInvalidInput);
  EXPECT_EQ(code("id=a t=-5"), ErrorCode::kInvalidInput);
  EXPECT_EQ(code("id=a t=1e8 deadline_ms=-1"), ErrorCode::kInvalidInput);
  EXPECT_EQ(code("id=a t=1e8 bogus"), ErrorCode::kInvalidInput);
  EXPECT_EQ(code("id=a t=1e8 frob=1"), ErrorCode::kInvalidInput);
  // Daemon policy keys are not per-request overridable.
  EXPECT_EQ(code("id=a t=1e8 set.threads=1"), ErrorCode::kInvalidInput);
  EXPECT_EQ(code("id=a t=1e8 set.faults=x"), ErrorCode::kInvalidInput);
  EXPECT_EQ(code("id=a t=1e8 op=frob"), ErrorCode::kInvalidInput);
}

// ---------------------------------------------------------------------------
// Deadlines and the problem key
// ---------------------------------------------------------------------------

TEST_F(ServeTest, DeadlinePolicyIsExactAndDefaultOff) {
  EXPECT_FALSE(serve::deadline_expired(1.0e12, 0.0));  // disabled
  EXPECT_FALSE(serve::deadline_expired(49.9, 50.0));
  EXPECT_TRUE(serve::deadline_expired(50.0, 50.0));
}

TEST_F(ServeTest, ProblemKeyReflectsOverrides) {
  Config base;
  base.set("design", "c1");
  const std::string k1 = serve::problem_key(base);
  EXPECT_EQ(k1, serve::problem_key(base));  // deterministic
  Config hot = base;
  hot.set("ambient_c", "60");
  EXPECT_NE(k1, serve::problem_key(hot));
  Config tables = base;
  tables.set("serve_n_gamma", "32");
  EXPECT_NE(k1, serve::problem_key(tables));  // table shape is identity too
}

// ---------------------------------------------------------------------------
// Query engine: coalescing, tier byte-identity, deadline degradation
// ---------------------------------------------------------------------------

class ServeEngineTest : public ServeTest {
 protected:
  Config base_config() {
    Config cfg;
    cfg.set("design", "c1");
    cfg.set("grid", "8");
    cfg.set("serve_n_gamma", "16");
    cfg.set("serve_n_b", "12");
    return cfg;
  }
  serve::EngineOptions engine_options() {
    serve::EngineOptions eo;
    eo.cache.dir = dir_ + "/cache";
    eo.n_gamma = 16;
    eo.n_b = 12;
    return eo;
  }
  static serve::PendingQuery query(const std::string& id, double t,
                                   const std::string& extra = "") {
    serve::PendingQuery q;
    q.request = serve::parse_request("id=" + id + " t=" +
                                    std::to_string(t) + extra);
    q.arrival = std::chrono::steady_clock::now();
    return q;
  }
};

TEST_F(ServeEngineTest, CoalescesSameFingerprintQueriesIntoOneBuild) {
  serve::QueryEngine engine(base_config(), engine_options());
  const std::vector<serve::PendingQuery> batch = {
      query("a", 3.15e8), query("b", 6.3e8), query("c", 3.15e8)};
  const std::vector<std::string> replies = engine.evaluate(batch);
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(engine.cache().stats().misses, 1u);  // one build for all three
  EXPECT_EQ(engine.stats().answered, 3u);
  // Same t, same fingerprint: identical payloads behind different ids.
  ASSERT_EQ(replies[0].substr(0, 5), "id=a ");
  ASSERT_EQ(replies[2].substr(0, 5), "id=c ");
  EXPECT_EQ(replies[0].substr(5), replies[2].substr(5));
  EXPECT_NE(replies[0].find(" ok=1 "), std::string::npos);
  EXPECT_NE(replies[0].find(" degraded=0"), std::string::npos);
}

TEST_F(ServeEngineTest, MemoryHitDiskHitAndColdComputeAreByteIdentical) {
  const auto opts = engine_options();
  std::string cold, warm, disk;
  {
    serve::QueryEngine engine(base_config(), opts);
    cold = engine.evaluate({query("x", 3.15e8)})[0];
    warm = engine.evaluate({query("x", 3.15e8)})[0];
    EXPECT_EQ(engine.cache().stats().hits, 1u);
    EXPECT_TRUE(engine.cache().flush());
  }
  {
    serve::QueryEngine engine(base_config(), opts);  // fresh memory tier
    disk = engine.evaluate({query("x", 3.15e8)})[0];
    EXPECT_EQ(engine.cache().stats().disk_hits, 1u);
    EXPECT_EQ(engine.cache().stats().misses, 0u);
  }
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(cold, disk);
}

TEST_F(ServeEngineTest, CorruptDiskEntryIsQuarantinedAndRecomputed) {
  const auto opts = engine_options();
  std::string cold;
  {
    serve::QueryEngine engine(base_config(), opts);
    cold = engine.evaluate({query("x", 3.15e8)})[0];
    EXPECT_TRUE(engine.cache().flush());
  }
  // Vandalize the cached entry on disk.
  const std::string key = serve::problem_key(base_config());
  const std::string path =
      serve::cache_file_path(opts.cache.dir, serve::fingerprint(key));
  ASSERT_TRUE(fs::exists(path));
  std::ofstream(path, std::ios::trunc) << "garbage";
  {
    serve::QueryEngine engine(base_config(), opts);
    const std::string recomputed = engine.evaluate({query("x", 3.15e8)})[0];
    EXPECT_EQ(recomputed, cold);  // recomputed answer, identical bytes
    EXPECT_EQ(engine.cache().stats().corrupt, 1u);
    EXPECT_EQ(engine.cache().stats().misses, 1u);
    EXPECT_TRUE(fs::exists(path + ".quarantined"));
  }
}

TEST_F(ServeEngineTest, InjectedDeadlineExpiryDegradesToAnalytic) {
  serve::QueryEngine engine(base_config(), engine_options());
  fault::arm("serve.deadline");
  const std::string reply =
      engine.evaluate({query("slow", 3.15e8, " deadline_ms=1000")})[0];
  EXPECT_NE(reply.find(" ok=1 "), std::string::npos) << reply;
  EXPECT_NE(reply.find(" degraded=1"), std::string::npos) << reply;
  EXPECT_EQ(engine.stats().degraded, 1u);
  // The degraded path never pays the table fill or caches an entry.
  EXPECT_EQ(engine.cache().entries(), 0u);
  // The same query afterwards gets the exact answer.
  const std::string exact = engine.evaluate({query("slow", 3.15e8)})[0];
  EXPECT_NE(exact.find(" degraded=0"), std::string::npos);
}

TEST_F(ServeEngineTest, PerRequestErrorsNeverPoisonTheBatch) {
  serve::QueryEngine engine(base_config(), engine_options());
  std::vector<serve::PendingQuery> batch = {
      query("good", 3.15e8), query("bad", 3.15e8, " set.design=/nope")};
  const std::vector<std::string> replies = engine.evaluate(batch);
  EXPECT_NE(replies[0].find(" ok=1 "), std::string::npos) << replies[0];
  EXPECT_NE(replies[1].find(" error="), std::string::npos) << replies[1];
  EXPECT_EQ(engine.stats().answered, 1u);
  EXPECT_EQ(engine.stats().errors, 1u);
}

// ---------------------------------------------------------------------------
// Per-session incremental corner evaluation (cond.* requests)
// ---------------------------------------------------------------------------

TEST_F(ServeEngineTest, CondQueriesReuseIncrementalRowsWithinASession) {
  serve::QueryEngine engine(base_config(), engine_options());
  // First corner: the session evaluator is built and every row refreshed —
  // no reuse to count.
  const std::string first =
      engine.evaluate({query("a", 3.15e8, " cond.dt=3")})[0];
  EXPECT_NE(first.find(" ok=1 "), std::string::npos) << first;
  EXPECT_EQ(engine.stats().incremental_hits, 0u);
  // Same corner and t with one block nudged: only that row refreshes, so
  // the evaluation counts as an incremental reuse.
  const std::string reused =
      engine.evaluate({query("b", 3.15e8, " cond.dt=3 cond.dt.0=8")})[0];
  EXPECT_NE(reused.find(" ok=1 "), std::string::npos) << reused;
  EXPECT_EQ(engine.stats().incremental_hits, 1u);
  // The reused answer is bit-identical to a fresh engine computing the
  // same corner from scratch (the incremental contract, end to end).
  serve::EngineOptions fresh_opts = engine_options();
  fresh_opts.cache.dir = dir_ + "/cache-fresh";
  serve::QueryEngine fresh(base_config(), fresh_opts);
  EXPECT_EQ(fresh.evaluate({query("b", 3.15e8, " cond.dt=3 cond.dt.0=8")})[0],
            reused);
  // A different session never shares evaluator state: same bytes, but a
  // full rebuild rather than a reuse.
  serve::PendingQuery other = query("b", 3.15e8, " cond.dt=3 cond.dt.0=8");
  other.session = 7;
  EXPECT_EQ(engine.evaluate({other})[0], reused);
  EXPECT_EQ(engine.stats().incremental_hits, 1u);
  // Ending the session drops its evaluator; the next corner rebuilds.
  engine.end_session(1);
  EXPECT_EQ(engine.evaluate({query("b", 3.15e8, " cond.dt=3 cond.dt.0=8")})[0],
            reused);
  EXPECT_EQ(engine.stats().incremental_hits, 1u);
}

TEST_F(ServeEngineTest, CondBlockIndexOutOfRangeIsARequestError) {
  serve::QueryEngine engine(base_config(), engine_options());
  const std::string reply =
      engine.evaluate({query("a", 3.15e8, " cond.dt.9999=5")})[0];
  EXPECT_NE(reply.find(" error=invalid-input"), std::string::npos) << reply;
  EXPECT_EQ(engine.stats().errors, 1u);
}

// ---------------------------------------------------------------------------
// Surrogate tier: flag byte-identity, certified hits, domain refusal,
// quarantine + refit
// ---------------------------------------------------------------------------

class ServeSurrogateTest : public ServeEngineTest {
 protected:
  // Reduced fit resolution so a fit costs a fraction of a second; the
  // c1 default stack is oxide-only, which these counts certify easily.
  serve::EngineOptions surrogate_options() {
    serve::EngineOptions eo = engine_options();
    eo.surrogate = true;
    eo.surrogate_opts.n_t = 11;
    eo.surrogate_opts.n_dt = 7;
    eo.surrogate_opts.n_vdd = 5;
    eo.surrogate_opts.n_act = 4;
    eo.surrogate_opts.fit_n_gamma = 160;
    eo.surrogate_opts.fit_n_b = 64;
    eo.surrogate_opts.probe_points = 128;
    eo.surrogate_opts.tol = 1e-3;
    return eo;
  }
  static double reply_f(const std::string& reply) {
    const std::size_t pos = reply.find(" f=");
    EXPECT_NE(pos, std::string::npos) << reply;
    return std::stod(reply.substr(pos + 3));
  }
};

TEST_F(ServeSurrogateTest, TierOffRepliesCarryNoSurrogateField) {
  serve::QueryEngine off(base_config(), engine_options());
  const std::string plain = off.evaluate({query("a", 3.15e8)})[0];
  const std::string cond =
      off.evaluate({query("b", 3.15e8, " cond.dt=4")})[0];
  // The tier-off reply grammar is frozen: no surrogate field, ever.
  EXPECT_EQ(plain.find("surrogate"), std::string::npos) << plain;
  EXPECT_EQ(cond.find("surrogate"), std::string::npos) << cond;

  // The tier on only appends the flag field; stripping it recovers the
  // tier-off bytes exactly.
  serve::EngineOptions eo = surrogate_options();
  eo.cache.dir = dir_ + "/cache-on";
  serve::QueryEngine on(base_config(), eo);
  const std::string flagged = on.evaluate({query("a", 3.15e8)})[0];
  const std::size_t pos = flagged.find(" surrogate=");
  ASSERT_NE(pos, std::string::npos) << flagged;
  EXPECT_EQ(flagged.substr(0, pos), plain);
}

TEST_F(ServeSurrogateTest, CertifiedInDomainQueriesSkipTheTablesEntirely) {
  const serve::EngineOptions eo = surrogate_options();
  const std::uint64_t fp =
      serve::fingerprint(serve::problem_key(base_config()));
  std::string exact_cond;
  {
    serve::QueryEngine engine(base_config(), eo);
    // Cold batch: exact answer, then fit + certify + persist.
    const std::string cold = engine.evaluate({query("a", 3.15e8)})[0];
    EXPECT_NE(cold.find(" surrogate=0"), std::string::npos) << cold;
    ASSERT_TRUE(
        fs::exists(serve::surrogate_file_path(eo.cache.dir, fp)));
    // Memory tier holds the tables: exact wins even for covered queries.
    exact_cond = engine.evaluate(
        {query("b", 3.15e8, " cond.dt=4 cond.act=1.2")})[0];
    EXPECT_NE(exact_cond.find(" surrogate=0"), std::string::npos)
        << exact_cond;
    EXPECT_EQ(engine.stats().surrogate_hits, 0u);
  }
  // Fresh engine, same cache dir: the surrogate loads from disk and
  // answers without building a problem or touching either table tier.
  serve::QueryEngine engine(base_config(), eo);
  const std::string sur =
      engine.evaluate({query("b", 3.15e8, " cond.dt=4 cond.act=1.2")})[0];
  EXPECT_NE(sur.find(" surrogate=1"), std::string::npos) << sur;
  EXPECT_EQ(engine.stats().surrogate_hits, 1u);
  EXPECT_EQ(engine.cache().stats().misses, 0u);
  EXPECT_EQ(engine.cache().stats().disk_hits, 0u);
  EXPECT_EQ(engine.cache().entries(), 0u);
  // And the answer honors the certified envelope against the exact reply.
  const double fe = reply_f(exact_cond);
  EXPECT_LE(std::abs(reply_f(sur) - fe) / std::max(fe, 1e-12),
            eo.surrogate_opts.tol);
}

TEST_F(ServeSurrogateTest, OutOfDomainQueriesFallThroughToExact) {
  const serve::EngineOptions eo = surrogate_options();
  {
    serve::QueryEngine warm(base_config(), eo);  // fit + persist
    (void)warm.evaluate({query("w", 3.15e8)});
  }
  serve::QueryEngine engine(base_config(), eo);
  // dt outside the certified +-dt_c box.
  const std::string far =
      engine.evaluate({query("a", 3.15e8, " cond.dt=50")})[0];
  EXPECT_NE(far.find(" ok=1 "), std::string::npos) << far;
  EXPECT_NE(far.find(" surrogate=0"), std::string::npos) << far;
  // Per-block overrides are never covered.
  const std::string blk =
      engine.evaluate({query("b", 3.15e8, " cond.dt.0=2")})[0];
  EXPECT_NE(blk.find(" surrogate=0"), std::string::npos) << blk;
  // t outside the query-time box.
  const std::string early = engine.evaluate({query("c", 1.0e5)})[0];
  EXPECT_NE(early.find(" surrogate=0"), std::string::npos) << early;
  EXPECT_EQ(engine.stats().surrogate_hits, 0u);
  EXPECT_EQ(engine.stats().surrogate_fallthrough, 3u);
  // The exact engine really answered: a problem build happened after all.
  EXPECT_EQ(engine.cache().entries(), 1u);
}

TEST_F(ServeSurrogateTest, DeadlineExpiryPrefersCertifiedSurrogate) {
  const serve::EngineOptions eo = surrogate_options();
  {
    serve::QueryEngine warm(base_config(), eo);
    (void)warm.evaluate({query("w", 3.15e8)});
  }
  serve::QueryEngine engine(base_config(), eo);
  fault::arm("serve.deadline");
  // Covered query: the surrogate answers before the deadline partition is
  // ever reached — a certified approximation beats the cruder analytic
  // closed form, and the reply is not degraded.
  const std::string in =
      engine.evaluate({query("a", 3.15e8, " deadline_ms=1000")})[0];
  EXPECT_NE(in.find(" surrogate=1"), std::string::npos) << in;
  EXPECT_NE(in.find(" degraded=0"), std::string::npos) << in;
  // Uncovered query: the analytic degradation path still applies.
  const std::string out = engine.evaluate(
      {query("b", 3.15e8, " cond.dt=50 deadline_ms=1000")})[0];
  fault::disarm();
  EXPECT_NE(out.find(" degraded=1"), std::string::npos) << out;
  EXPECT_NE(out.find(" surrogate=0"), std::string::npos) << out;
  EXPECT_EQ(engine.stats().surrogate_hits, 1u);
  EXPECT_EQ(engine.stats().degraded, 1u);
}

TEST_F(ServeSurrogateTest, VandalizedSurrogateFileIsQuarantinedAndRefit) {
  const serve::EngineOptions eo = surrogate_options();
  const std::uint64_t fp =
      serve::fingerprint(serve::problem_key(base_config()));
  const std::string path = serve::surrogate_file_path(eo.cache.dir, fp);
  std::string sur_reply;
  {
    serve::QueryEngine warm(base_config(), eo);
    (void)warm.evaluate({query("w", 3.15e8)});
    ASSERT_TRUE(fs::exists(path));
  }
  {
    serve::QueryEngine reader(base_config(), eo);
    sur_reply = reader.evaluate({query("q", 3.15e8, " cond.dt=4")})[0];
    ASSERT_NE(sur_reply.find(" surrogate=1"), std::string::npos)
        << sur_reply;
  }
  std::ofstream(path, std::ios::trunc) << "garbage";
  {
    // The vandalized file is quarantined (never believed), the query is
    // answered exactly, and the post-build refit re-persists a certified
    // model.
    serve::QueryEngine engine(base_config(), eo);
    const std::string exact =
        engine.evaluate({query("q", 3.15e8, " cond.dt=4")})[0];
    EXPECT_NE(exact.find(" surrogate=0"), std::string::npos) << exact;
    EXPECT_TRUE(fs::exists(path + ".quarantined"));
    EXPECT_TRUE(fs::exists(path));
    EXPECT_GE(diagnostics().count("serve.cache_corrupt"), 1u);
  }
  // The refit is deterministic: the reloaded model serves byte-identical
  // surrogate replies.
  serve::QueryEngine again(base_config(), eo);
  EXPECT_EQ(again.evaluate({query("q", 3.15e8, " cond.dt=4")})[0],
            sur_reply);
}

}  // namespace
}  // namespace obd
