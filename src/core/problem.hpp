// Assembly of a full-chip OBD reliability problem.
//
// A ReliabilityProblem bundles everything every analysis method consumes:
// the design, the PCA canonical thickness model (built once — the paper
// treats PCA as a shared preprocessing step excluded from per-method
// runtime), the device-to-grid layout, and per-block reliability parameters
// (A_j, alpha_j, b_j at the block's temperature, plus the BLOD moments).
// The statistical methods (st_fast, st_MC, hybrid), the Monte Carlo
// reference, and the guard-band baseline all operate on the same problem
// instance, so comparisons are apples-to-apples.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chip/design.hpp"
#include "core/blod.hpp"
#include "core/device_model.hpp"
#include "mech/spec.hpp"
#include "mech/stack.hpp"
#include "variation/model.hpp"
#include "variation/quadtree.hpp"

namespace obd::core {

/// Spatial-correlation structure used to build the canonical form.
enum class CorrelationStructure {
  kGridExponential,  ///< the paper's grid model with exponential decay
  kQuadTree,         ///< the ref-[24] quad-tree alternative
};

/// Per-block reliability inputs (Table I / eq. 11 notation).
struct BlockParams {
  std::string name;
  double area = 0.0;     ///< A_j: total normalized OBD area of the block
  double alpha = 0.0;    ///< alpha_j [s] at the block temperature
  double b = 0.0;        ///< b_j [1/nm] at the block temperature
  double temp_c = 0.0;   ///< block temperature [C]
  BlodMoments blod;      ///< (u_j, v_j) random-vector description
};

/// Knobs of the problem construction.
struct ProblemOptions {
  /// Spatial-correlation grid resolution (the paper sweeps 10/20/25 per
  /// side in Table V; 25 is the reference).
  std::size_t grid_cells_per_side = 25;
  /// Correlation distance normalized w.r.t. the chip dimension
  /// (Table III/IV use 0.5; Table IV sweeps 0.25/0.5/0.75).
  double rho_dist = 0.5;
  /// PCA truncation: keep leading components capturing this variance share.
  double variance_capture = 0.999;
  /// Optional wafer-level systematic nominal pattern (Section II extension).
  var::WaferPattern pattern{};
  /// Correlation structure (grid/exponential by default; rho_dist and
  /// variance_capture are ignored for the quad-tree, quadtree options
  /// apply instead).
  CorrelationStructure structure = CorrelationStructure::kGridExponential;
  var::QuadTreeOptions quadtree{};
  /// Correlation function family for the grid structure (ref [38] offers
  /// several valid choices; the paper's Section V uses the exponential).
  var::CorrelationKernel kernel = var::CorrelationKernel::kExponential;
  /// PCA eigensolver: dense reference decomposition (default) or the
  /// truncated subspace iteration that converges only the kept leading
  /// components (worthwhile for large grids with variance_capture < 1).
  var::EigenSolver eigen_solver = var::EigenSolver::kDense;
  /// Failure mechanisms and unit-level redundancy. The default (oxide
  /// only, no spare groups) reproduces the seed behavior bit-for-bit.
  mech::MechanismSpec mechanisms{};
};

/// Immutable assembled problem. Create via build().
class ReliabilityProblem {
 public:
  /// Builds the problem: grid + covariance + PCA, device layout, and
  /// per-block (alpha, b, A, BLOD). `block_temps_c` must align with
  /// design.blocks (take it from thermal::solve_thermal, or supply a
  /// constant worst-case vector for the temperature-unaware variant).
  static ReliabilityProblem build(const chip::Design& design,
                                  const var::VariationBudget& budget,
                                  const DeviceReliabilityModel& model,
                                  const std::vector<double>& block_temps_c,
                                  double vdd,
                                  const ProblemOptions& options = {});

  [[nodiscard]] const chip::Design& design() const { return design_; }
  [[nodiscard]] const var::VariationBudget& budget() const { return budget_; }
  [[nodiscard]] const var::GridModel& grid() const { return *grid_; }
  [[nodiscard]] const var::CanonicalForm& canonical() const {
    return *canonical_;
  }
  [[nodiscard]] const var::BlockGridLayout& layout() const { return layout_; }
  [[nodiscard]] const std::vector<BlockParams>& blocks() const {
    return blocks_;
  }
  [[nodiscard]] double vdd() const { return vdd_; }
  [[nodiscard]] const ProblemOptions& options() const { return options_; }

  /// Competing-risks composition engine (aging mechanisms + redundancy),
  /// resolved once at build time. Trivial for the default spec.
  [[nodiscard]] const mech::MechanismStack& mechanisms() const {
    return *mech_;
  }

  /// Canonical mechanism-spec rendering, cached on the stack at build
  /// time (serve keys and checkpoint frames used to re-render it).
  [[nodiscard]] const std::string& mechanism_canonical() const {
    return mech_->canonical_spec();
  }

  /// Canonical identity text of the assembled problem: design, per-block
  /// reliability parameters, construction options, and the mechanism
  /// spec, rendered once at build time with fmt17-style exact doubles.
  [[nodiscard]] const std::string& fingerprint_text() const {
    return fingerprint_text_;
  }

  /// FNV-1a 64-bit hash of fingerprint_text(), computed once at build
  /// time. Two problems with equal fingerprints were built from
  /// byte-identical inputs (up to hash collision — compare the text when
  /// exactness matters).
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

  /// Worst (hottest) block temperature — the guard-band corner.
  [[nodiscard]] double worst_temp_c() const;

  /// Worst-case minimum thickness used by the guard-band method:
  /// nominal - 3 sigma_total.
  [[nodiscard]] double min_thickness() const;

 private:
  ReliabilityProblem() = default;

  chip::Design design_;
  var::VariationBudget budget_;
  ProblemOptions options_;
  double vdd_ = 0.0;
  // Heap-held so BlodMoments' back-pointers survive moves of the problem.
  std::shared_ptr<const var::GridModel> grid_;
  std::shared_ptr<const var::CanonicalForm> canonical_;
  var::BlockGridLayout layout_;
  std::vector<BlockParams> blocks_;
  std::shared_ptr<const mech::MechanismStack> mech_ =
      std::make_shared<mech::MechanismStack>();
  std::string fingerprint_text_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace obd::core
