// Table III reproduction: lifetime-estimation accuracy (vs Monte Carlo) and
// runtime/speedup of st_fast, st_MC, hybrid, and the guard-band method on
// the six benchmark designs C1-C6 at the 1-per-million and 10-per-million
// criteria.
//
// Scaling knobs: OBDREL_MC_CHIPS (default 1000, the paper's count),
// OBDREL_STMC_SAMPLES (default 20000).
#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "chip/design.hpp"
#include "common/stopwatch.hpp"
#include "common/csv.hpp"
#include "common/parallel.hpp"
#include "simd/dispatch.hpp"
#include "common/table.hpp"
#include "core/analytic.hpp"
#include "core/guardband.hpp"
#include "core/hybrid.hpp"
#include "core/lifetime.hpp"
#include "core/montecarlo.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"

int main() {
  using namespace obd;
  const std::size_t mc_chips = bench::env_size("OBDREL_MC_CHIPS", 1000);
  const std::size_t stmc_samples =
      bench::env_size("OBDREL_STMC_SAMPLES", 20000);

  std::printf(
      "Table III: lifetime error (%%) w.r.t. MC and runtime/speedup.\n"
      "rho_dist = 0.5, 25x25 correlation grid, MC chips = %zu, pool "
      "threads = %zu, simd %s.\n\n",
      mc_chips, par::thread_count(),
      simd::to_string(simd::active_level()));

  TextTable acc({"ckt.", "#Device", "st_fast 1/m", "st_MC 1/m", "hybrid 1/m",
                 "guard 1/m", "st_fast 10/m", "st_MC 10/m", "hybrid 10/m",
                 "guard 10/m"});
  TextTable run({"ckt.", "st_fast [s]", "speedup", "st_MC [s]", "speedup",
                 "hybrid [s]", "speedup", "MC [s]"});

  const core::AnalyticReliabilityModel model;
  double sum_err[4][2] = {{0, 0}, {0, 0}, {0, 0}, {0, 0}};
  double sum_speed[3] = {0, 0, 0};
  std::vector<std::vector<double>> csv_rows;

  for (int ci = 1; ci <= 6; ++ci) {
    const chip::Design design = chip::make_benchmark(ci);
    const auto profile = thermal::power_thermal_fixed_point(
        design, power::PowerParams{}, {.resolution = 32}, 2);
    // Problem assembly (incl. PCA) is shared preprocessing, as in the
    // paper's complexity discussion.
    const auto problem = core::ReliabilityProblem::build(
        design, var::VariationBudget{}, model, profile.block_temps_c, 1.2);

    // Each method's runtime covers its own construction + both lifetime
    // queries (what a user pays per analysis).
    Stopwatch sw;
    const core::AnalyticAnalyzer fast(problem);
    const double fast_1 = fast.lifetime_at(core::kOneFaultPerMillion);
    const double fast_10 = fast.lifetime_at(core::kTenFaultsPerMillion);
    const double t_fast = sw.seconds();

    sw.reset();
    const core::StMcAnalyzer st_mc(problem, {.samples = stmc_samples});
    const double stmc_1 = st_mc.lifetime_at(core::kOneFaultPerMillion);
    const double stmc_10 = st_mc.lifetime_at(core::kTenFaultsPerMillion);
    const double t_stmc = sw.seconds();

    sw.reset();
    const core::HybridEvaluator hybrid(problem);
    (void)hybrid;  // construction is the reusable part...
    const double t_hybrid_build = sw.seconds();
    sw.reset();
    const double hyb_1 = hybrid.lifetime_at(core::kOneFaultPerMillion);
    const double hyb_10 = hybrid.lifetime_at(core::kTenFaultsPerMillion);
    const double t_hybrid_query = sw.seconds();

    const core::GuardBandAnalyzer guard(problem);
    const double grd_1 = guard.lifetime_at(core::kOneFaultPerMillion);
    const double grd_10 = guard.lifetime_at(core::kTenFaultsPerMillion);

    sw.reset();
    const core::MonteCarloAnalyzer mc(problem, {.chip_samples = mc_chips});
    const double mc_1 = mc.lifetime_at(core::kOneFaultPerMillion);
    const double mc_10 = mc.lifetime_at(core::kTenFaultsPerMillion);
    const double t_mc = sw.seconds();

    const double e[4][2] = {
        {bench::pct_error(fast_1, mc_1), bench::pct_error(fast_10, mc_10)},
        {bench::pct_error(stmc_1, mc_1), bench::pct_error(stmc_10, mc_10)},
        {bench::pct_error(hyb_1, mc_1), bench::pct_error(hyb_10, mc_10)},
        {bench::pct_error(grd_1, mc_1), bench::pct_error(grd_10, mc_10)}};
    for (int m = 0; m < 4; ++m)
      for (int q = 0; q < 2; ++q) sum_err[m][q] += e[m][q];

    acc.add_row({design.name, fmt_count(design.total_devices()),
                 fmt(e[0][0], 1), fmt(e[1][0], 1), fmt(e[2][0], 1),
                 fmt(e[3][0], 0), fmt(e[0][1], 1), fmt(e[1][1], 1),
                 fmt(e[2][1], 1), fmt(e[3][1], 0)});

    const double sp_fast = t_mc / t_fast;
    const double sp_stmc = t_mc / t_stmc;
    // Hybrid speedup reported on the recurring-query cost, the quantity the
    // method optimizes (the build is amortized; it is printed alongside).
    const double sp_hyb = t_mc / t_hybrid_query;
    sum_speed[0] += sp_fast;
    sum_speed[1] += sp_stmc;
    sum_speed[2] += sp_hyb;
    run.add_row({design.name, fmt(t_fast, 2), fmt(sp_fast, 0),
                 fmt(t_stmc, 2), fmt(sp_stmc, 0),
                 fmt(t_hybrid_query, 4) + " (+" + fmt(t_hybrid_build, 2) +
                     " build)",
                 fmt(sp_hyb, 0), fmt(t_mc, 1)});
    csv_rows.push_back({static_cast<double>(ci),
                        static_cast<double>(design.total_devices()),
                        e[0][0], e[1][0], e[2][0], e[3][0], e[0][1],
                        e[1][1], e[2][1], e[3][1], t_fast, t_stmc,
                        t_hybrid_query, t_hybrid_build, t_mc});
  }

  if (const std::string dir = csv_output_dir(); !dir.empty()) {
    std::ofstream out(dir + "/table3.csv");
    CsvWriter csv(out);
    csv.header({"ckt", "devices", "err_fast_1m", "err_stmc_1m",
                "err_hybrid_1m", "err_guard_1m", "err_fast_10m",
                "err_stmc_10m", "err_hybrid_10m", "err_guard_10m",
                "t_fast_s", "t_stmc_s", "t_hybrid_query_s",
                "t_hybrid_build_s", "t_mc_s"});
    for (const auto& row : csv_rows) csv.numeric_row(row);
    std::printf("(wrote %s/table3.csv)\n\n", dir.c_str());
  }

  acc.add_row({"Avg", "", fmt(sum_err[0][0] / 6, 2), fmt(sum_err[1][0] / 6, 2),
               fmt(sum_err[2][0] / 6, 2), fmt(sum_err[3][0] / 6, 1),
               fmt(sum_err[0][1] / 6, 2), fmt(sum_err[1][1] / 6, 2),
               fmt(sum_err[2][1] / 6, 2), fmt(sum_err[3][1] / 6, 1)});
  run.add_row({"Avg", "", fmt(sum_speed[0] / 6, 0), "", fmt(sum_speed[1] / 6, 0),
               "", fmt(sum_speed[2] / 6, 0), ""});

  std::printf("Lifetime estimation error (%%) w.r.t. MC:\n");
  acc.print(std::cout);
  std::printf("\nRuntime (s) / speedup w.r.t. MC:\n");
  run.print(std::cout);
  std::printf(
      "\nPaper reference: proposed methods ~1%% avg error, guard ~50%%;\n"
      "st_fast 2-3 orders of magnitude faster than MC, hybrid 3-5 orders.\n");
  return 0;
}
