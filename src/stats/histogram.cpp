#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace obd::stats {
namespace {

std::size_t bin_index(double x, double lo, double width, std::size_t bins) {
  if (x <= lo) return 0;
  const auto i = static_cast<std::size_t>((x - lo) / width);
  return std::min(i, bins - 1);
}

}  // namespace

Histogram1D::Histogram1D(double lo, double hi, std::size_t bins)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  require(hi > lo, "Histogram1D: hi must exceed lo");
  require(bins > 0, "Histogram1D: need at least one bin");
}

void Histogram1D::add(double x, double weight) {
  counts_[bin_index(x, lo_, width_, counts_.size())] += weight;
  total_ += weight;
}

double Histogram1D::probability(std::size_t i) const {
  return (total_ > 0.0) ? counts_[i] / total_ : 0.0;
}

double Histogram1D::density(std::size_t i) const {
  return probability(i) / width_;
}

Histogram2D::Histogram2D(double xlo, double xhi, std::size_t xbins,
                         double ylo, double yhi, std::size_t ybins)
    : xlo_(xlo),
      xhi_(xhi),
      xwidth_((xhi - xlo) / static_cast<double>(xbins)),
      ylo_(ylo),
      yhi_(yhi),
      ywidth_((yhi - ylo) / static_cast<double>(ybins)),
      xbins_(xbins),
      ybins_(ybins),
      counts_(xbins * ybins, 0.0) {
  require(xhi > xlo && yhi > ylo, "Histogram2D: invalid range");
  require(xbins > 0 && ybins > 0, "Histogram2D: need at least one bin");
}

void Histogram2D::add(double x, double y, double weight) {
  const std::size_t i = bin_index(x, xlo_, xwidth_, xbins_);
  const std::size_t j = bin_index(y, ylo_, ywidth_, ybins_);
  counts_[i * ybins_ + j] += weight;
  total_ += weight;
}

double Histogram2D::probability(std::size_t i, std::size_t j) const {
  return (total_ > 0.0) ? count(i, j) / total_ : 0.0;
}

double Histogram2D::density(std::size_t i, std::size_t j) const {
  return probability(i, j) / (xwidth_ * ywidth_);
}

double Histogram2D::marginal_x(std::size_t i) const {
  double s = 0.0;
  for (std::size_t j = 0; j < ybins_; ++j) s += probability(i, j);
  return s;
}

double Histogram2D::marginal_y(std::size_t j) const {
  double s = 0.0;
  for (std::size_t i = 0; i < xbins_; ++i) s += probability(i, j);
  return s;
}

double mutual_information(const Histogram2D& h) {
  std::vector<double> px(h.xbins());
  std::vector<double> py(h.ybins());
  for (std::size_t i = 0; i < h.xbins(); ++i) px[i] = h.marginal_x(i);
  for (std::size_t j = 0; j < h.ybins(); ++j) py[j] = h.marginal_y(j);
  double mi = 0.0;
  for (std::size_t i = 0; i < h.xbins(); ++i) {
    for (std::size_t j = 0; j < h.ybins(); ++j) {
      const double pij = h.probability(i, j);
      if (pij <= 0.0 || px[i] <= 0.0 || py[j] <= 0.0) continue;
      mi += pij * std::log(pij / (px[i] * py[j]));
    }
  }
  return std::max(0.0, mi);
}

}  // namespace obd::stats
