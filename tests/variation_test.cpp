#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"
#include "variation/model.hpp"

namespace obd::var {
namespace {

TEST(VariationBudget, Table2Defaults) {
  const VariationBudget b;  // Table II of the paper
  EXPECT_NO_THROW(b.validate());
  EXPECT_NEAR(b.sigma_total(), 2.2 * 0.04 / 3.0, 1e-12);
  // Variance shares: 50 / 25 / 25.
  const double vt = b.sigma_total() * b.sigma_total();
  EXPECT_NEAR(b.sigma_global() * b.sigma_global(), 0.5 * vt, 1e-12);
  EXPECT_NEAR(b.sigma_spatial() * b.sigma_spatial(), 0.25 * vt, 1e-12);
  EXPECT_NEAR(b.sigma_independent() * b.sigma_independent(), 0.25 * vt, 1e-12);
}

TEST(VariationBudget, RejectsBadShares) {
  VariationBudget b;
  b.global_share = 0.8;  // sums to 1.3
  EXPECT_THROW(b.validate(), obd::Error);
  b.global_share = -0.5;
  EXPECT_THROW(b.validate(), obd::Error);
}

TEST(GridModel, IndexingRoundTrip) {
  const GridModel g(10.0, 10.0, 5);
  EXPECT_EQ(g.cell_count(), 25u);
  EXPECT_EQ(g.index_at(0.1, 0.1), 0u);
  EXPECT_EQ(g.index_at(9.9, 0.1), 4u);
  EXPECT_EQ(g.index_at(0.1, 9.9), 20u);
  EXPECT_EQ(g.index_at(9.9, 9.9), 24u);
  // Out-of-range clamps.
  EXPECT_EQ(g.index_at(-1.0, -1.0), 0u);
  EXPECT_EQ(g.index_at(99.0, 99.0), 24u);
  // Cell rect of the center cell.
  const chip::Rect r = g.cell_rect(12);
  EXPECT_DOUBLE_EQ(r.x, 4.0);
  EXPECT_DOUBLE_EQ(r.y, 4.0);
  EXPECT_TRUE(r.contains(5.0, 5.0));
}

TEST(GridModel, DistanceIsEuclideanBetweenCenters) {
  const GridModel g(10.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(g.distance(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g.distance(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.distance(0, 5), 2.0);
  EXPECT_NEAR(g.distance(0, 6), 2.0 * std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(g.distance(3, 8), g.distance(8, 3));
}

TEST(Covariance, StructureMatchesModel) {
  const VariationBudget budget;
  const GridModel grid(10.0, 10.0, 4);
  const la::Matrix c = build_covariance(grid, budget, 0.5);
  const double vg = budget.sigma_global() * budget.sigma_global();
  const double vs = budget.sigma_spatial() * budget.sigma_spatial();
  // Diagonal: global + spatial variance.
  for (std::size_t i = 0; i < grid.cell_count(); ++i)
    EXPECT_NEAR(c(i, i), vg + vs, 1e-15);
  // Off-diagonal: vg + vs * exp(-d/L), strictly above vg.
  EXPECT_NEAR(c(0, 1), vg + vs * std::exp(-2.5 / 5.0), 1e-15);
  EXPECT_GT(c(0, 15), vg);
  // Correlation decays with distance.
  EXPECT_GT(c(0, 1), c(0, 2));
  EXPECT_GT(c(0, 2), c(0, 3));
  // Symmetric.
  EXPECT_LE(c.max_asymmetry(), 0.0);
}

TEST(CorrelationKernels, UnitAtZeroDecreasingAndBounded) {
  using obd::var::CorrelationKernel;
  for (auto k : {CorrelationKernel::kExponential, CorrelationKernel::kGaussian,
                 CorrelationKernel::kMatern32,
                 CorrelationKernel::kSpherical}) {
    EXPECT_DOUBLE_EQ(kernel_correlation(k, 0.0, 2.0), 1.0);
    double prev = 1.0;
    for (double d = 0.1; d < 6.0; d += 0.3) {
      const double rho = kernel_correlation(k, d, 2.0);
      EXPECT_LE(rho, prev + 1e-12);
      EXPECT_GE(rho, 0.0);
      EXPECT_LE(rho, 1.0);
      prev = rho;
    }
  }
  // Characteristic shapes: Gaussian is flatter near zero, spherical has
  // compact support.
  EXPECT_GT(kernel_correlation(var::CorrelationKernel::kGaussian, 0.2, 2.0),
            kernel_correlation(var::CorrelationKernel::kExponential, 0.2, 2.0));
  EXPECT_DOUBLE_EQ(
      kernel_correlation(var::CorrelationKernel::kSpherical, 2.5, 2.0), 0.0);
  EXPECT_THROW(kernel_correlation(var::CorrelationKernel::kGaussian, -1.0, 2.0),
               obd::Error);
}

TEST(CorrelationKernels, AllProduceValidCanonicalForms) {
  // Every kernel family must yield a PSD covariance (eigendecomposition
  // succeeds) preserving the marginal variance.
  const VariationBudget budget;
  const GridModel grid(8.0, 8.0, 6);
  const double expected = budget.sigma_global() * budget.sigma_global() +
                          budget.sigma_spatial() * budget.sigma_spatial();
  for (auto k : {CorrelationKernel::kExponential, CorrelationKernel::kGaussian,
                 CorrelationKernel::kMatern32,
                 CorrelationKernel::kSpherical}) {
    const CanonicalForm cf =
        make_canonical_form(grid, budget, 0.5, 0.9999, {}, k);
    for (std::size_t g = 0; g < grid.cell_count(); ++g) {
      const double s = cf.correlated_sigma(g);
      EXPECT_NEAR(s * s, expected, 0.001 * expected)
          << "kernel " << static_cast<int>(k) << " grid " << g;
    }
  }
}

TEST(CorrelationKernels, SmootherKernelsTruncateHarder) {
  // The Gaussian kernel's spectrum decays much faster than the
  // exponential's: the same variance capture needs far fewer components.
  const VariationBudget budget;
  const GridModel grid(10.0, 10.0, 10);
  const CanonicalForm exp_form = make_canonical_form(
      grid, budget, 0.5, 0.999, {}, CorrelationKernel::kExponential);
  const CanonicalForm gauss_form = make_canonical_form(
      grid, budget, 0.5, 0.999, {}, CorrelationKernel::kGaussian);
  EXPECT_LT(gauss_form.pc_count(), exp_form.pc_count() / 3);
}

TEST(Covariance, LargerRhoDistMeansStrongerCorrelation) {
  const VariationBudget budget;
  const GridModel grid(10.0, 10.0, 4);
  const la::Matrix c25 = build_covariance(grid, budget, 0.25);
  const la::Matrix c75 = build_covariance(grid, budget, 0.75);
  EXPECT_GT(c75(0, 3), c25(0, 3));
}

TEST(CanonicalForm, PreservesMarginalVariance) {
  const VariationBudget budget;
  const GridModel grid(8.0, 8.0, 6);
  const CanonicalForm cf = make_canonical_form(grid, budget, 0.5, 1.0);
  // With no truncation, each grid's correlated variance equals
  // sigma_g^2 + sigma_sp^2.
  const double expected = budget.sigma_global() * budget.sigma_global() +
                          budget.sigma_spatial() * budget.sigma_spatial();
  for (std::size_t g = 0; g < grid.cell_count(); ++g) {
    const double s = cf.correlated_sigma(g);
    EXPECT_NEAR(s * s, expected, 1e-12) << "grid " << g;
  }
  EXPECT_DOUBLE_EQ(cf.residual_sigma(), budget.sigma_independent());
  EXPECT_DOUBLE_EQ(cf.nominal(0), budget.nominal);
}

TEST(CanonicalForm, TruncationKeepsMostVarianceWithFewComponents) {
  const VariationBudget budget;
  const GridModel grid(10.0, 10.0, 10);
  const CanonicalForm full = make_canonical_form(grid, budget, 0.5, 1.0);
  // The exponential kernel is non-smooth at zero lag, so its spectrum
  // decays slowly — but half of the variance sits in the rank-one global
  // component, so a 95% capture still needs only a modest PC count.
  const CanonicalForm cut = make_canonical_form(grid, budget, 0.5, 0.95);
  EXPECT_LT(cut.pc_count(), full.pc_count());
  EXPECT_LT(cut.pc_count(), 60u);
  // Truncated marginal variance within the capture budget of the target.
  const double expected = budget.sigma_global() * budget.sigma_global() +
                          budget.sigma_spatial() * budget.sigma_spatial();
  for (std::size_t g = 0; g < grid.cell_count(); ++g) {
    const double s = cut.correlated_sigma(g);
    EXPECT_NEAR(s * s, expected, 0.08 * expected);
  }
}

TEST(CanonicalForm, SampledCovarianceMatchesModel) {
  const VariationBudget budget;
  const GridModel grid(10.0, 10.0, 3);
  const CanonicalForm cf = make_canonical_form(grid, budget, 0.5, 1.0);
  const la::Matrix cov = build_covariance(grid, budget, 0.5);
  stats::Rng rng(42);
  const int n = 100000;
  // Empirical covariance between grid 0 and grid 8 (far corners).
  stats::RunningStats s0;
  stats::RunningStats s8;
  double cross = 0.0;
  for (int i = 0; i < n; ++i) {
    const la::Vector z = cf.sample_z(rng);
    const double x0 = cf.correlated_thickness(0, z);
    const double x8 = cf.correlated_thickness(8, z);
    s0.add(x0);
    s8.add(x8);
    cross += (x0 - budget.nominal) * (x8 - budget.nominal);
  }
  EXPECT_NEAR(s0.mean(), budget.nominal, 1e-3);
  EXPECT_NEAR(s0.variance(), cov(0, 0), 0.05 * cov(0, 0));
  EXPECT_NEAR(cross / n, cov(0, 8), 0.05 * cov(0, 0));
}

TEST(CanonicalForm, ThicknessAddsResidual) {
  const VariationBudget budget;
  const GridModel grid(4.0, 4.0, 2);
  const CanonicalForm cf = make_canonical_form(grid, budget, 0.5);
  const la::Vector z(cf.pc_count(), 0.0);
  EXPECT_DOUBLE_EQ(cf.thickness(0, z, 0.0), cf.correlated_thickness(0, z));
  EXPECT_NEAR(cf.thickness(0, z, 1.0) - cf.thickness(0, z, 0.0),
              budget.sigma_independent(), 1e-15);
}

TEST(WaferPattern, ShiftsNominalQuadratically) {
  const VariationBudget budget;
  const GridModel grid(10.0, 10.0, 5);
  WaferPattern p;
  p.bow_x = 0.02;
  p.tilt_y = 0.01;
  const CanonicalForm cf = make_canonical_form(grid, budget, 0.5, 0.999, p);
  // Center cell (12): xn ~ 0, yn ~ 0 -> near-nominal.
  EXPECT_NEAR(cf.nominal(12), budget.nominal, 1e-12);
  // Left edge cell 10: xn = -0.8 -> bow adds 0.02 * 0.64.
  EXPECT_NEAR(cf.nominal(10), budget.nominal + 0.02 * 0.64, 1e-12);
  // Top row gains the tilt, bottom row loses it.
  EXPECT_GT(cf.nominal(22), cf.nominal(2));
}

TEST(AssignDevices, WeightsAreOverlapFractions) {
  chip::Design d;
  d.name = "t";
  d.width = 4.0;
  d.height = 4.0;
  // Block spanning exactly the left half of a 2x2 grid.
  d.blocks.push_back(
      {"half", {0, 0, 2, 4}, 100, 1.0, chip::UnitKind::kLogic, 0.5});
  const GridModel grid(4.0, 4.0, 2);
  const BlockGridLayout layout = assign_devices(d, grid);
  ASSERT_EQ(layout.weights.size(), 1u);
  ASSERT_EQ(layout.weights[0].size(), 2u);  // cells 0 and 2
  double sum = 0.0;
  for (const auto& [g, w] : layout.weights[0]) {
    EXPECT_TRUE(g == 0 || g == 2);
    EXPECT_NEAR(w, 0.5, 1e-12);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(AssignDevices, WeightsSumToOnePerBlock) {
  const chip::Design d = chip::make_benchmark(2);
  const GridModel grid(d.width, d.height, 25);
  const BlockGridLayout layout = assign_devices(d, grid);
  ASSERT_EQ(layout.weights.size(), d.blocks.size());
  for (const auto& entries : layout.weights) {
    double sum = 0.0;
    for (const auto& [g, w] : entries) sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace obd::var
