// Special functions needed by the statistical machinery: regularized
// incomplete gamma (chi-square/gamma CDFs), its inverse, and the inverse
// standard-normal CDF (quantiles for integration-domain selection).
#pragma once

namespace obd::stats {

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a).
/// Domain: a > 0, x >= 0. P is the CDF of a Gamma(shape=a, scale=1) variate.
double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

/// Inverse of gamma_p in x: returns x with P(a, x) = p. Domain: a > 0,
/// p in [0, 1). Newton iteration with bisection safeguarding.
double gamma_p_inverse(double a, double p);

/// Standard normal CDF Phi(x).
double normal_cdf(double x);

/// Standard normal PDF phi(x).
double normal_pdf(double x);

/// Inverse standard normal CDF (probit). Domain: p in (0, 1).
/// Acklam's rational approximation refined by one Halley step — accurate to
/// ~1e-15 over the full domain.
double normal_quantile(double p);

}  // namespace obd::stats
