// Crash-safety tests for the durable DRM runtime: checkpoint/journal
// corruption (truncation mid-record, single-byte bit flips, version-skew
// headers, empty checkpoint dirs) must each map onto the documented
// recovery ladder, and a kill-and-restart must reproduce the uninterrupted
// run's damage trajectory bit-for-bit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iterator>
#include <fstream>
#include <string>
#include <vector>

#include "chip/design.hpp"
#include "common/checkpoint.hpp"
#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "core/device_model.hpp"
#include "core/problem.hpp"
#include "drm/manager.hpp"
#include "drm/runtime.hpp"

namespace obd::drm {
namespace {

namespace fs = std::filesystem;

class DrmRuntimeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_synthetic_design(
        "runtime", {.devices = 20000, .block_count = 4, .die_width = 4.0,
                    .die_height = 4.0, .seed = 11}));
    model_ = new core::AnalyticReliabilityModel();
    core::ProblemOptions opts;
    opts.grid_cells_per_side = 8;
    problem_ = new core::ReliabilityProblem(core::ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_,
        std::vector<double>(design_->blocks.size(), 80.0), 1.2, opts));
  }
  static void TearDownTestSuite() {
    delete problem_;
    delete model_;
    delete design_;
    problem_ = nullptr;
    model_ = nullptr;
    design_ = nullptr;
  }
  void SetUp() override {
    fault::disarm();
    diagnostics().clear();
    set_strict_mode(false);
    char tmpl[] = "/tmp/obdrel-runtime-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    fault::disarm();
    diagnostics().clear();
    set_strict_mode(false);
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  static std::vector<OperatingPoint> ladder() {
    return {{"eco", 1.00, 1.2e9}, {"turbo", 1.25, 2.3e9}};
  }
  static DrmOptions drm_options() {
    DrmOptions o;
    o.control_interval_s = 7.0 * 86400.0;
    return o;
  }
  RuntimeOptions runtime_options(bool resume) const {
    RuntimeOptions r;
    r.checkpoint_dir = dir_;
    r.checkpoint_every = 4;
    r.resume = resume;
    return r;
  }
  static double workload(std::size_t i) {
    return 0.3 + 0.05 * static_cast<double>(i % 7);
  }

  std::string newest_snapshot_path() const {
    // With checkpoint_every=4, slot 0 gets steps 4, 12, 20, ... and slot 1
    // gets 8, 16, ...; pick the slot holding the higher step by mtime.
    const std::string a = dir_ + "/ckpt-0.snap";
    const std::string b = dir_ + "/ckpt-1.snap";
    if (!fs::exists(b)) return a;
    if (!fs::exists(a)) return b;
    return fs::last_write_time(a) > fs::last_write_time(b) ? a : b;
  }

  static void flip_byte(const std::string& path, std::size_t offset_from_end) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good()) << path;
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::size_t>(f.tellg());
    ASSERT_GT(size, offset_from_end);
    const auto pos =
        static_cast<std::streamoff>(size - 1 - offset_from_end);
    f.seekg(pos);
    const char c = static_cast<char>(f.get() ^ 0x01);
    f.seekp(pos);
    f.put(c);
  }

  static chip::Design* design_;
  static core::AnalyticReliabilityModel* model_;
  static core::ReliabilityProblem* problem_;
  std::string dir_;
};

chip::Design* DrmRuntimeTest::design_ = nullptr;
core::AnalyticReliabilityModel* DrmRuntimeTest::model_ = nullptr;
core::ReliabilityProblem* DrmRuntimeTest::problem_ = nullptr;

// ---------------------------------------------------------------------------
// Checkpoint / journal primitives
// ---------------------------------------------------------------------------

TEST_F(DrmRuntimeTest, SnapshotRoundTrip) {
  const std::string path = dir_ + "/s.snap";
  ckpt::write_snapshot_atomic(path, 7, "hello durable world");
  const ckpt::Snapshot s = ckpt::read_snapshot(path);
  EXPECT_EQ(s.version, 7u);
  EXPECT_EQ(s.payload, "hello durable world");
}

TEST_F(DrmRuntimeTest, TornSnapshotWritePreservesPreviousContents) {
  const std::string path = dir_ + "/s.snap";
  ckpt::write_snapshot_atomic(path, 1, "generation one");
  fault::arm("checkpoint.write");
  EXPECT_THROW(ckpt::write_snapshot_atomic(path, 1, "generation two"),
               Error);
  // The torn temp file is debris; the published snapshot is untouched.
  EXPECT_EQ(ckpt::read_snapshot(path).payload, "generation one");
}

TEST_F(DrmRuntimeTest, SnapshotBitFlipFailsCrc) {
  const std::string path = dir_ + "/s.snap";
  ckpt::write_snapshot_atomic(path, 1, "payload under test");
  flip_byte(path, 2);  // inside the payload
  try {
    (void)ckpt::read_snapshot(path);
    FAIL() << "corrupt snapshot must not be believed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  }
}

TEST_F(DrmRuntimeTest, JournalToleratesTruncatedTail) {
  const std::string path = dir_ + "/j.log";
  {
    ckpt::JournalWriter w(path, /*truncate=*/true);
    for (int i = 0; i < 5; ++i)
      w.append("record number " + std::to_string(i));
  }
  EXPECT_EQ(ckpt::read_journal(path).records.size(), 5u);

  // Chop the file mid-way through the last record: replay keeps everything
  // before the tear and flags the tail.
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 5);
  const ckpt::JournalReadResult r = ckpt::read_journal(path);
  EXPECT_EQ(r.records.size(), 4u);
  EXPECT_FALSE(r.clean_tail);
  EXPECT_NE(r.tail_error.find("truncated"), std::string::npos);
}

TEST_F(DrmRuntimeTest, JournalBitFlipStopsAtTheCorruptRecord) {
  const std::string path = dir_ + "/j.log";
  {
    ckpt::JournalWriter w(path, /*truncate=*/true);
    for (int i = 0; i < 5; ++i)
      w.append("record number " + std::to_string(i));
  }
  // Flip a payload byte inside the 4th record (locate it by content —
  // frame sizes vary with the CRC's hex width).
  std::string blob;
  {
    std::ifstream f(path, std::ios::binary);
    blob.assign(std::istreambuf_iterator<char>(f),
                std::istreambuf_iterator<char>());
  }
  const auto pos = blob.find("record number 3");
  ASSERT_NE(pos, std::string::npos);
  flip_byte(path, blob.size() - 1 - pos);
  const ckpt::JournalReadResult r = ckpt::read_journal(path);
  EXPECT_EQ(r.records.size(), 3u);
  EXPECT_FALSE(r.clean_tail);
  EXPECT_NE(r.tail_error.find("CRC"), std::string::npos);
}

TEST_F(DrmRuntimeTest, MissingJournalIsEmptyAndClean) {
  const ckpt::JournalReadResult r = ckpt::read_journal(dir_ + "/absent");
  EXPECT_TRUE(r.records.empty());
  EXPECT_TRUE(r.clean_tail);
}

// ---------------------------------------------------------------------------
// Kill-and-restart equivalence: K steps in process one, M more after
// resume in process two, versus K+M in a single uninterrupted process —
// the damage trajectory must be identical bit for bit.
// ---------------------------------------------------------------------------

TEST_F(DrmRuntimeTest, KillAndRestartReproducesTheTrajectoryBitForBit) {
  constexpr std::size_t kK = 10;
  constexpr std::size_t kM = 6;

  // Uninterrupted reference: a bare manager stepping K+M times.
  ReliabilityManager reference(*problem_, *model_, ladder(), drm_options());
  std::vector<double> ref_damage;
  for (std::size_t i = 0; i < kK + kM; ++i)
    ref_damage.push_back(reference.step(workload(i)).damage);

  // Process one: K steps, then the process "dies" (the runtime is
  // destroyed without an orderly final checkpoint — the journal holds the
  // steps since the last snapshot).
  {
    DrmRuntime first(*problem_, *model_, ladder(), drm_options(),
                     runtime_options(/*resume=*/false));
    for (std::size_t i = 0; i < kK; ++i) first.step(workload(i));
    EXPECT_EQ(first.step_count(), kK);
  }

  // Process two: resume and finish the schedule.
  DrmRuntime second(*problem_, *model_, ladder(), drm_options(),
                    runtime_options(/*resume=*/true));
  EXPECT_EQ(second.recovery().source, RecoveryInfo::Source::kCheckpoint);
  EXPECT_FALSE(second.recovery().degraded);
  ASSERT_EQ(second.step_count(), kK);
  // The recovered state matches the reference mid-run state exactly.
  const std::vector<double> mid_damage = [&] {
    ReliabilityManager mid(*problem_, *model_, ladder(), drm_options());
    for (std::size_t i = 0; i < kK; ++i) mid.step(workload(i));
    return mid.block_damage();
  }();
  EXPECT_EQ(second.manager().block_damage(), mid_damage);
  for (std::size_t i = kK; i < kK + kM; ++i) {
    const DrmStep s = second.step(workload(i));
    EXPECT_EQ(s.damage, ref_damage[i]) << "step " << i << " diverged";
  }
  EXPECT_EQ(second.manager().elapsed_s(), reference.elapsed_s());
}

TEST_F(DrmRuntimeTest, TornCheckpointMidRunStillResumesExactly) {
  constexpr std::size_t kK = 9;
  ReliabilityManager reference(*problem_, *model_, ladder(), drm_options());
  for (std::size_t i = 0; i < kK; ++i) reference.step(workload(i));

  {
    DrmRuntime first(*problem_, *model_, ladder(), drm_options(),
                     runtime_options(/*resume=*/false));
    // The first snapshot (step 4) tears mid-write, exactly like a SIGKILL
    // inside write(): the runtime warns and survives on the journal; the
    // step-8 snapshot then succeeds normally.
    fault::arm("checkpoint.write:1");
    bool saw_torn_checkpoint = false;
    for (std::size_t i = 0; i < kK; ++i) {
      first.step(workload(i));
      saw_torn_checkpoint =
          saw_torn_checkpoint || diagnostics().count("drm.checkpoint") > 0;
    }
    EXPECT_TRUE(saw_torn_checkpoint);
  }

  DrmRuntime second(*problem_, *model_, ladder(), drm_options(),
                    runtime_options(/*resume=*/true));
  EXPECT_EQ(second.step_count(), kK);
  EXPECT_EQ(second.manager().block_damage(), reference.block_damage());
  EXPECT_EQ(second.manager().elapsed_s(), reference.elapsed_s());
}

// ---------------------------------------------------------------------------
// Recovery ladder: corrupt newest snapshot, version skew, foreign
// fingerprint, empty dir
// ---------------------------------------------------------------------------

TEST_F(DrmRuntimeTest, CorruptNewestSnapshotFallsBackWithoutStateLoss) {
  constexpr std::size_t kK = 10;  // snapshots at steps 4 and 8
  ReliabilityManager reference(*problem_, *model_, ladder(), drm_options());
  for (std::size_t i = 0; i < kK; ++i) reference.step(workload(i));
  {
    DrmRuntime first(*problem_, *model_, ladder(), drm_options(),
                     runtime_options(/*resume=*/false));
    for (std::size_t i = 0; i < kK; ++i) first.step(workload(i));
  }
  // Bit-rot the newest snapshot: recovery must ladder down to the
  // previous snapshot and re-replay both journal epochs — same state.
  flip_byte(newest_snapshot_path(), 2);
  DrmRuntime second(*problem_, *model_, ladder(), drm_options(),
                    runtime_options(/*resume=*/true));
  EXPECT_EQ(second.step_count(), kK);
  EXPECT_EQ(second.manager().block_damage(), reference.block_damage());
  EXPECT_GE(diagnostics().count("drm.recover"), 1u);
}

TEST_F(DrmRuntimeTest, VersionSkewSnapshotIsRejectedNotMisparsed) {
  constexpr std::size_t kK = 6;
  {
    DrmRuntime first(*problem_, *model_, ladder(), drm_options(),
                     runtime_options(/*resume=*/false));
    for (std::size_t i = 0; i < kK; ++i) first.step(workload(i));
  }
  // Replace the newest snapshot with a future-schema one: the CRC is
  // valid, but the version gate must refuse to decode it.
  ckpt::write_snapshot_atomic(newest_snapshot_path(), 99,
                              "layout from the future");
  DrmRuntime second(*problem_, *model_, ladder(), drm_options(),
                    runtime_options(/*resume=*/true));
  // State still fully recovered via the other slot + journal replay.
  EXPECT_EQ(second.step_count(), kK);
  EXPECT_GE(diagnostics().count("drm.recover"), 1u);
}

TEST_F(DrmRuntimeTest, ForeignConfigurationStateIsNotResumed) {
  {
    DrmRuntime first(*problem_, *model_, ladder(), drm_options(),
                     runtime_options(/*resume=*/false));
    for (std::size_t i = 0; i < 6; ++i) first.step(workload(i));
  }
  // Same directory, different ladder: the fingerprint gate must refuse
  // the persisted damage rather than graft it onto the wrong trajectory.
  std::vector<OperatingPoint> other{{"solo", 1.1, 1.5e9}};
  DrmRuntime second(*problem_, *model_, other, drm_options(),
                    runtime_options(/*resume=*/true));
  EXPECT_EQ(second.recovery().source, RecoveryInfo::Source::kColdStart);
  EXPECT_TRUE(second.recovery().degraded);
  EXPECT_EQ(second.step_count(), 0u);
  EXPECT_GE(diagnostics().count("drm.recover"), 1u);
}

TEST_F(DrmRuntimeTest, EmptyCheckpointDirColdStartsWithDiagnostic) {
  DrmRuntime runtime(*problem_, *model_, ladder(), drm_options(),
                     runtime_options(/*resume=*/true));
  EXPECT_EQ(runtime.recovery().source, RecoveryInfo::Source::kColdStart);
  EXPECT_TRUE(runtime.recovery().degraded);
  EXPECT_EQ(runtime.manager().damage(), 0.0);
  // Never *silently* fresh: the cold start leaves a recorded warning.
  EXPECT_GE(diagnostics().count("drm.recover"), 1u);
}

TEST_F(DrmRuntimeTest, StrictModeEscalatesAnEmptyResume) {
  set_strict_mode(true);
  try {
    DrmRuntime runtime(*problem_, *model_, ladder(), drm_options(),
                       runtime_options(/*resume=*/true));
    FAIL() << "strict mode must refuse a silent cold start";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDegraded);
  }
}

TEST_F(DrmRuntimeTest, CrashBeforeFirstCheckpointRecoversFromJournalAlone) {
  constexpr std::size_t kK = 3;  // below checkpoint_every: no snapshot yet
  ReliabilityManager reference(*problem_, *model_, ladder(), drm_options());
  for (std::size_t i = 0; i < kK; ++i) reference.step(workload(i));
  {
    DrmRuntime first(*problem_, *model_, ladder(), drm_options(),
                     runtime_options(/*resume=*/false));
    for (std::size_t i = 0; i < kK; ++i) first.step(workload(i));
  }
  DrmRuntime second(*problem_, *model_, ladder(), drm_options(),
                    runtime_options(/*resume=*/true));
  EXPECT_EQ(second.recovery().source, RecoveryInfo::Source::kJournal);
  EXPECT_FALSE(second.recovery().degraded);
  EXPECT_EQ(second.step_count(), kK);
  EXPECT_EQ(second.manager().block_damage(), reference.block_damage());
}

// ---------------------------------------------------------------------------
// Runtime degradations: journal append failure, watchdog deadline
// ---------------------------------------------------------------------------

TEST_F(DrmRuntimeTest, JournalAppendFailureDegradesButTheLoopSurvives) {
  DrmRuntime runtime(*problem_, *model_, ladder(), drm_options(),
                     runtime_options(/*resume=*/false));
  fault::arm("journal.append:1");
  DrmStep s{};
  ASSERT_NO_THROW(s = runtime.step(workload(0)));
  EXPECT_TRUE(std::isfinite(s.damage));
  EXPECT_GE(diagnostics().count("drm.journal"), 1u);
  // The next step journals again (the writer reopens transparently).
  ASSERT_NO_THROW(runtime.step(workload(1)));
}

TEST_F(DrmRuntimeTest, WatchdogDeadlineCommitsThePreviousRung) {
  DrmOptions opts = drm_options();
  ReliabilityManager mgr(*problem_, *model_, ladder(), opts);
  const DrmStep healthy = mgr.step(0.5);
  // Force the watchdog on the next step: the rung search must stop
  // immediately and commit the cached previous decision at guard-band
  // conditions instead of stalling on more thermal solves.
  fault::arm("drm.deadline:1");
  const DrmStep overrun = mgr.step(0.5);
  EXPECT_TRUE(overrun.degraded);
  EXPECT_EQ(overrun.op_index, healthy.op_index);
  EXPECT_GE(overrun.max_temp_c, opts.fallback_temp_c);
  EXPECT_GE(diagnostics().count("drm.deadline"), 1u);
  EXPECT_GT(overrun.damage, healthy.damage);
  // Watchdog cleared: the search runs normally again.
  const DrmStep after = mgr.step(0.5);
  EXPECT_LT(after.max_temp_c, opts.fallback_temp_c);
}

TEST_F(DrmRuntimeTest, StepLatencyStatPublishesPercentiles) {
  DrmRuntime rt(*problem_, *model_, ladder(), drm_options(),
                runtime_options(false));
  // No-op before the first step: nothing to report, nothing published.
  rt.publish_step_stats();
  EXPECT_EQ(diagnostics().render_stats().find("drm.step_ms"),
            std::string::npos);
  for (int i = 0; i < 5; ++i) (void)rt.step(workload(i));
  rt.publish_step_stats();
  const std::string stats = diagnostics().render_stats();
  EXPECT_NE(stats.find("stat [drm.step_ms]"), std::string::npos) << stats;
  EXPECT_NE(stats.find("p50"), std::string::npos);
  EXPECT_NE(stats.find("p99"), std::string::npos);
}

TEST_F(DrmRuntimeTest, StepLatencyStatNamesTheDeadlineWhenArmed) {
  DrmOptions opts = drm_options();
  opts.step_deadline_ms = 500.0;  // generous: must not actually trip
  DrmRuntime rt(*problem_, *model_, ladder(), opts,
                runtime_options(false));
  (void)rt.step(0.5);
  rt.publish_step_stats();
  EXPECT_NE(diagnostics().render_stats().find("deadline 500"),
            std::string::npos);
}

TEST_F(DrmRuntimeTest, WallClockDeadlineAlsoTrips) {
  DrmOptions opts = drm_options();
  opts.step_deadline_ms = 1e-7;  // overruns before the first rung solve
  ReliabilityManager mgr(*problem_, *model_, ladder(), opts);
  const DrmStep s = mgr.step(0.5);
  EXPECT_TRUE(s.degraded);
  EXPECT_EQ(s.op_index, 0u);  // no previous decision: slowest rung
  EXPECT_GE(diagnostics().count("drm.deadline"), 1u);
}

}  // namespace
}  // namespace obd::drm
