#include "chip/design.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace obd::chip {

double Rect::overlap(const Rect& o) const {
  const double ox = std::max(0.0, std::min(x + width, o.x + o.width) -
                                      std::max(x, o.x));
  const double oy = std::max(0.0, std::min(y + height, o.y + o.height) -
                                      std::max(y, o.y));
  return ox * oy;
}

std::size_t Design::total_devices() const {
  std::size_t total = 0;
  for (const auto& b : blocks) total += b.device_count;
  return total;
}

double Design::total_obd_area() const {
  double total = 0.0;
  for (const auto& b : blocks) total += b.obd_area();
  return total;
}

void Design::validate() const {
  require(width > 0.0 && height > 0.0, "Design: die must have positive size");
  require(!blocks.empty(), "Design: at least one block required");
  for (const auto& b : blocks) {
    require(b.rect.width > 0.0 && b.rect.height > 0.0,
            "Design: block '" + b.name + "' has non-positive size");
    require(b.rect.x >= -1e-9 && b.rect.y >= -1e-9 &&
                b.rect.x + b.rect.width <= width + 1e-9 &&
                b.rect.y + b.rect.height <= height + 1e-9,
            "Design: block '" + b.name + "' exceeds the die");
    require(b.device_count > 0,
            "Design: block '" + b.name + "' has no devices");
    require(b.avg_device_area > 0.0,
            "Design: block '" + b.name + "' has non-positive device area");
    require(b.activity >= 0.0 && b.activity <= 1.0,
            "Design: block '" + b.name + "' activity out of [0,1]");
  }
}

namespace {

// Recursively bisects `rect` into `count` rectangles with randomized split
// positions, appending them to `out`.
void bisect(const Rect& rect, std::size_t count, stats::Rng& rng,
            std::vector<Rect>& out) {
  if (count == 1) {
    out.push_back(rect);
    return;
  }
  const std::size_t left = count / 2;
  const std::size_t right = count - left;
  const double frac = rng.uniform(0.35, 0.65) *
                      (static_cast<double>(left) / (0.5 * static_cast<double>(count))) ;
  const double f = std::clamp(frac, 0.2, 0.8);
  // Split along the longer dimension to keep blocks near-square.
  if (rect.width >= rect.height) {
    const double w1 = rect.width * f;
    bisect({rect.x, rect.y, w1, rect.height}, left, rng, out);
    bisect({rect.x + w1, rect.y, rect.width - w1, rect.height}, right, rng,
           out);
  } else {
    const double h1 = rect.height * f;
    bisect({rect.x, rect.y, rect.width, h1}, left, rng, out);
    bisect({rect.x, rect.y + h1, rect.width, rect.height - h1}, right, rng,
           out);
  }
}

UnitKind random_kind(stats::Rng& rng) {
  static constexpr UnitKind kinds[] = {
      UnitKind::kCache,        UnitKind::kLogic,  UnitKind::kRegisterFile,
      UnitKind::kQueue,        UnitKind::kPredictor, UnitKind::kTlb,
      UnitKind::kFloatingPoint};
  return kinds[rng.below(sizeof(kinds) / sizeof(kinds[0]))];
}

}  // namespace

Design make_synthetic_design(const std::string& name,
                             const SyntheticOptions& options) {
  require(options.devices >= options.block_count,
          "make_synthetic_design: fewer devices than blocks");
  require(options.block_count > 0, "make_synthetic_design: need blocks");
  stats::Rng rng(options.seed);

  Design d;
  d.name = name;
  d.width = options.die_width;
  d.height = options.die_height;

  std::vector<Rect> rects;
  bisect({0.0, 0.0, d.width, d.height}, options.block_count, rng, rects);

  // Apportion devices by area with multiplicative noise, then fix rounding.
  std::vector<double> weights(rects.size());
  double wsum = 0.0;
  for (std::size_t i = 0; i < rects.size(); ++i) {
    weights[i] = rects[i].area() * std::exp(rng.normal(0.0, 0.3));
    wsum += weights[i];
  }
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < rects.size(); ++i) {
    Block b;
    b.name = "blk" + std::to_string(i);
    b.rect = rects[i];
    const double share =
        static_cast<double>(options.devices) * weights[i] / wsum;
    b.device_count = std::max<std::size_t>(1, static_cast<std::size_t>(share));
    b.kind = random_kind(rng);
    b.activity = rng.uniform(0.05, 0.9);
    assigned += b.device_count;
    d.blocks.push_back(std::move(b));
  }
  // Distribute the rounding remainder onto the largest block.
  auto largest = std::max_element(
      d.blocks.begin(), d.blocks.end(), [](const Block& a, const Block& b) {
        return a.device_count < b.device_count;
      });
  if (assigned < options.devices)
    largest->device_count += options.devices - assigned;
  else if (assigned > options.devices) {
    const std::size_t excess = assigned - options.devices;
    require(largest->device_count > excess,
            "make_synthetic_design: rounding overflow");
    largest->device_count -= excess;
  }

  d.validate();
  return d;
}

Design make_benchmark(int index) {
  switch (index) {
    case 1:
      return make_synthetic_design(
          "C1", {.devices = 50000, .block_count = 8, .die_width = 6.0,
                 .die_height = 6.0, .seed = 11});
    case 2:
      return make_synthetic_design(
          "C2", {.devices = 80000, .block_count = 10, .die_width = 7.0,
                 .die_height = 7.0, .seed = 12});
    case 3:
      return make_synthetic_design(
          "C3", {.devices = 100000, .block_count = 10, .die_width = 8.0,
                 .die_height = 8.0, .seed = 13});
    case 4:
      return make_synthetic_design(
          "C4", {.devices = 200000, .block_count = 12, .die_width = 10.0,
                 .die_height = 10.0, .seed = 14});
    case 5:
      return make_synthetic_design(
          "C5", {.devices = 500000, .block_count = 14, .die_width = 12.0,
                 .die_height = 12.0, .seed = 15});
    case 6:
      return make_ev6_design();
    default:
      throw Error("make_benchmark: index must be 1..6");
  }
}

Design make_ev6_design() {
  // EV6-like floorplan: a 16mm x 16mm die whose lower half is L2 cache and
  // whose upper half holds the core units, loosely following the HotSpot
  // ev6 floorplan proportions. 15 functional modules, 0.84M devices.
  Design d;
  d.name = "C6";
  d.width = 16.0;
  d.height = 16.0;

  auto add = [&](const std::string& name, double x, double y, double w,
                 double h, std::size_t devices, UnitKind kind,
                 double activity) {
    Block b;
    b.name = name;
    b.rect = {x, y, w, h};
    b.device_count = devices;
    b.kind = kind;
    b.activity = activity;
    d.blocks.push_back(std::move(b));
  };

  // Lower half: unified L2 (cool, huge).
  add("L2", 0.0, 0.0, 16.0, 8.0, 300000, UnitKind::kCache, 0.10);

  // Row above L2: first-level caches flanking the load/store machinery.
  add("Icache", 0.0, 8.0, 5.0, 4.0, 110000, UnitKind::kCache, 0.25);
  add("Dcache", 11.0, 8.0, 5.0, 4.0, 110000, UnitKind::kCache, 0.30);
  add("LdStQ", 5.0, 8.0, 3.0, 4.0, 30000, UnitKind::kQueue, 0.55);
  add("ITB", 8.0, 8.0, 1.5, 4.0, 10000, UnitKind::kTlb, 0.35);
  add("DTB", 9.5, 8.0, 1.5, 4.0, 10000, UnitKind::kTlb, 0.40);

  // Middle row: integer cluster (the classic EV6 hot spot).
  add("IntReg", 0.0, 12.0, 3.0, 2.0, 40000, UnitKind::kRegisterFile, 0.80);
  add("IntExec", 3.0, 12.0, 4.0, 2.0, 70000, UnitKind::kLogic, 0.90);
  add("IntQ", 7.0, 12.0, 2.5, 2.0, 25000, UnitKind::kQueue, 0.70);
  add("IntMap", 9.5, 12.0, 2.5, 2.0, 25000, UnitKind::kLogic, 0.65);
  add("Bpred", 12.0, 12.0, 4.0, 2.0, 30000, UnitKind::kPredictor, 0.45);

  // Top row: floating-point cluster.
  add("FPReg", 0.0, 14.0, 3.5, 2.0, 25000, UnitKind::kRegisterFile, 0.28);
  add("FPAdd", 3.5, 14.0, 4.5, 2.0, 25000, UnitKind::kFloatingPoint, 0.35);
  add("FPMul", 8.0, 14.0, 4.5, 2.0, 20000, UnitKind::kFloatingPoint, 0.35);
  add("FPMap", 12.5, 14.0, 3.5, 2.0, 10000, UnitKind::kLogic, 0.35);

  d.validate();
  require(d.total_devices() == 840000, "make_ev6_design: device budget");
  return d;
}

Design make_manycore_design(std::size_t cores_per_side,
                            double active_fraction, std::uint64_t seed) {
  require(cores_per_side >= 2, "make_manycore_design: need >= 2x2 cores");
  require(active_fraction >= 0.0 && active_fraction <= 1.0,
          "make_manycore_design: active fraction out of [0,1]");
  stats::Rng rng(seed);

  Design d;
  d.name = "manycore";
  d.width = 18.0;
  d.height = 18.0;
  const double margin = 1.0;  // interconnect/L2 ring
  const double tile = (d.width - 2.0 * margin) /
                      static_cast<double>(cores_per_side);

  const std::size_t n_cores = cores_per_side * cores_per_side;
  const auto n_active = static_cast<std::size_t>(
      std::round(active_fraction * static_cast<double>(n_cores)));
  // Pick a deterministic-but-scattered set of active cores.
  std::vector<bool> active(n_cores, false);
  std::size_t chosen = 0;
  while (chosen < n_active) {
    const std::size_t k = rng.below(n_cores);
    if (!active[k]) {
      active[k] = true;
      ++chosen;
    }
  }

  for (std::size_t r = 0; r < cores_per_side; ++r) {
    for (std::size_t c = 0; c < cores_per_side; ++c) {
      Block b;
      const std::size_t k = r * cores_per_side + c;
      b.name = "core" + std::to_string(k);
      b.rect = {margin + static_cast<double>(c) * tile,
                margin + static_cast<double>(r) * tile, tile, tile};
      b.device_count = 12000;
      b.kind = UnitKind::kCore;
      b.activity = active[k] ? rng.uniform(0.75, 0.95) : rng.uniform(0.02, 0.1);
      d.blocks.push_back(std::move(b));
    }
  }

  // Interconnect / shared-cache ring as four edge blocks.
  auto add_ring = [&](const std::string& name, Rect r) {
    Block b;
    b.name = name;
    b.rect = r;
    b.device_count = 40000;
    b.kind = UnitKind::kInterconnect;
    b.activity = 0.2;
    d.blocks.push_back(std::move(b));
  };
  add_ring("ring_bottom", {0.0, 0.0, d.width, margin});
  add_ring("ring_top", {0.0, d.height - margin, d.width, margin});
  add_ring("ring_left", {0.0, margin, margin, d.height - 2.0 * margin});
  add_ring("ring_right",
           {d.width - margin, margin, margin, d.height - 2.0 * margin});

  d.validate();
  return d;
}

}  // namespace obd::chip
