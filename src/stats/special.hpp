// Special functions needed by the statistical machinery: regularized
// incomplete gamma (chi-square/gamma CDFs), its inverse, and the inverse
// standard-normal CDF (quantiles for integration-domain selection).
#pragma once

#include <cstddef>

namespace obd::stats {

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a).
/// Domain: a > 0, x >= 0. P is the CDF of a Gamma(shape=a, scale=1) variate.
double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

/// Inverse of gamma_p in x: returns x with P(a, x) = p. Domain: a > 0,
/// p in [0, 1). Newton iteration with bisection safeguarding.
double gamma_p_inverse(double a, double p);

/// Standard normal CDF Phi(x).
double normal_cdf(double x);

/// Standard normal PDF phi(x).
double normal_pdf(double x);

/// Batched standard normal CDF: out[i] = Phi(z[i]) for i in [0, n);
/// in-place operation (out == z) is allowed. Dispatches to the active
/// SIMD kernel: at scalar dispatch every element is bit-identical to
/// normal_cdf(); the AVX2 path agrees to <= 1e-12 relative wherever
/// |result| > 1e-300 and returns exactly 0/1 where the scalar path
/// underflows (see docs/PERFORMANCE.md, "SIMD kernels").
void normal_cdf_batch(const double* z, std::size_t n, double* out);

/// Inverse standard normal CDF (probit). Domain: p in (0, 1).
/// Acklam's rational approximation refined by one Halley step — accurate to
/// ~1e-15 over the full domain.
double normal_quantile(double p);

}  // namespace obd::stats
