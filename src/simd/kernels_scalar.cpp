// Scalar reference kernels — the dispatch fallback, compiled at the
// baseline ISA. These are the authoritative definitions of the numerical
// contracts in kernels.hpp: each loop is bit-identical to the historical
// inner loop it replaced (montecarlo.cpp's dot_counts/fill_bin_factors,
// matrix.cpp's matmul/multiply/gram_aat, stats::normal_cdf), so forcing
// OBDREL_SIMD=scalar reproduces pre-SIMD results exactly.

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "simd/kernels.hpp"

namespace obd::simd {
namespace {

void fill_bin_factors_scalar(double gb, double x_lo, double step,
                             std::size_t bins, double* out) {
  const double ratio = std::exp(gb * step);
  double p = 0.0;
  for (std::size_t k = 0; k < bins; ++k) {
    if (k % kReanchorInterval == 0)
      p = std::exp(gb * (x_lo + (static_cast<double>(k) + 0.5) * step));
    out[k] = p;
    p *= ratio;
  }
}

// Four explicit independent accumulators combined as (a0 + a2) +
// (a1 + a3); the fixed structure is part of the determinism contract (the
// AVX2 variant reproduces exactly this lane mapping).
double dot_counts_scalar(const std::uint32_t* c, const double* e,
                         std::size_t n) {
  double a0 = 0.0;
  double a1 = 0.0;
  double a2 = 0.0;
  double a3 = 0.0;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    a0 += static_cast<double>(c[k]) * e[k];
    a1 += static_cast<double>(c[k + 1]) * e[k + 1];
    a2 += static_cast<double>(c[k + 2]) * e[k + 2];
    a3 += static_cast<double>(c[k + 3]) * e[k + 3];
  }
  for (; k < n; ++k) a0 += static_cast<double>(c[k]) * e[k];
  return (a0 + a2) + (a1 + a3);
}

// Exactly stats::normal_cdf per element (same expression, same libm).
void normal_cdf_batch_scalar(const double* z, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = 0.5 * std::erfc(-z[i] / std::sqrt(2.0));
}

// k-tiled ikj product. Per output element the accumulation still visits
// k in ascending order with round(a*b)-then-add and the a == 0.0 skip, so
// the result is bit-identical to the untiled historical loop; the tiling
// only keeps the active B panel cache-resident instead of streaming all
// of B once per output row.
constexpr std::size_t kMatmulTileK = 256;

void matmul_scalar(const double* a, const double* b, double* out,
                   std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t k0 = 0; k0 < k; k0 += kMatmulTileK) {
    const std::size_t k1 = std::min(k, k0 + kMatmulTileK);
    for (std::size_t r = 0; r < m; ++r) {
      const double* arow = a + r * k;
      double* orow = out + r * n;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const double av = arow[kk];
        if (av == 0.0) continue;
        const double* brow = b + kk * n;
        for (std::size_t c = 0; c < n; ++c) orow[c] += av * brow[c];
      }
    }
  }
}

void matvec_scalar(const double* a, const double* x, double* y,
                   std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* arow = a + r * cols;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols; ++c) acc += arow[c] * x[c];
    y[r] = acc;
  }
}

// Ascending-index single-accumulator dot per upper-triangle entry,
// mirrored — the layout tests pin these exact bits.
void gram_aat_scalar(const double* a, double* g, std::size_t n,
                     std::size_t k) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* ri = a + i * k;
    for (std::size_t j = i; j < n; ++j) {
      const double* rj = a + j * k;
      double s = 0.0;
      for (std::size_t c = 0; c < k; ++c) s += ri[c] * rj[c];
      g[i * n + j] = s;
      g[j * n + i] = s;
    }
  }
}

// Clenshaw recurrence, one pencil at a time. The per-pencil operation
// sequence (s = (2u)*b1; q = s - b2; b = c_k + q — each rounded
// separately, no FMA: this TU is compiled at the baseline ISA, which has
// no fused multiply-add) is the authoritative definition the vector
// variants reproduce lane-for-lane, so all dispatch levels are
// bit-identical by construction.
void clenshaw_batch_scalar(const double* coeffs, std::size_t n,
                           std::size_t m, double u, double* out) {
  if (n == 0) {
    for (std::size_t p = 0; p < m; ++p) out[p] = 0.0;
    return;
  }
  const double tu = 2.0 * u;
  for (std::size_t p = 0; p < m; ++p) {
    double b1 = 0.0;
    double b2 = 0.0;
    for (std::size_t k = n - 1; k >= 1; --k) {
      const double s = tu * b1;
      const double q = s - b2;
      const double b = coeffs[k * m + p] + q;
      b2 = b1;
      b1 = b;
    }
    const double s = u * b1;
    out[p] = coeffs[p] + (s - b2);
  }
}

}  // namespace

namespace detail {

const KernelTable kScalarKernels = {
    fill_bin_factors_scalar, dot_counts_scalar, normal_cdf_batch_scalar,
    matmul_scalar,           matvec_scalar,     gram_aat_scalar,
    clenshaw_batch_scalar,
};

}  // namespace detail
}  // namespace obd::simd
