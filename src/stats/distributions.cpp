#include "stats/distributions.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/special.hpp"

namespace obd::stats {

Normal::Normal(double mean, double stddev) : mean_(mean), stddev_(stddev) {
  require(stddev > 0.0, "Normal: stddev must be positive");
}

double Normal::pdf(double x) const {
  return normal_pdf((x - mean_) / stddev_) / stddev_;
}

double Normal::cdf(double x) const {
  return normal_cdf((x - mean_) / stddev_);
}

double Normal::quantile(double p) const {
  return mean_ + stddev_ * normal_quantile(p);
}

double Normal::sample(Rng& rng) const { return rng.normal(mean_, stddev_); }

Gamma::Gamma(double shape, double scale) : shape_(shape), scale_(scale) {
  require(shape > 0.0, "Gamma: shape must be positive");
  require(scale > 0.0, "Gamma: scale must be positive");
}

double Gamma::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) return (shape_ < 1.0) ? 0.0 : (shape_ == 1.0 ? 1.0 / scale_ : 0.0);
  const double z = x / scale_;
  const double logp = (shape_ - 1.0) * std::log(z) - z - std::lgamma(shape_) -
                      std::log(scale_);
  return std::exp(logp);
}

double Gamma::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return gamma_p(shape_, x / scale_);
}

double Gamma::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "Gamma::quantile: p must be in [0, 1)");
  return scale_ * gamma_p_inverse(shape_, p);
}

double Gamma::sample(Rng& rng) const {
  // Marsaglia & Tsang (2000). For shape < 1, sample shape+1 and apply the
  // boosting transform.
  double k = shape_;
  double boost = 1.0;
  if (k < 1.0) {
    boost = std::pow(rng.uniform_positive(), 1.0 / k);
    k += 1.0;
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform_positive();
    if (u < 1.0 - 0.0331 * x * x * x * x)
      return boost * d * v * scale_;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return boost * d * v * scale_;
  }
}

ChiSquare::ChiSquare(double dof) : gamma_(dof / 2.0, 2.0) {
  require(dof > 0.0, "ChiSquare: dof must be positive");
}

Lognormal::Lognormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  require(sigma > 0.0, "Lognormal: sigma must be positive");
}

Lognormal Lognormal::from_moments(double mean, double variance) {
  require(mean > 0.0, "Lognormal::from_moments: mean must be positive");
  require(variance > 0.0,
          "Lognormal::from_moments: variance must be positive");
  const double s2 = std::log1p(variance / (mean * mean));
  return {std::log(mean) - 0.5 * s2, std::sqrt(s2)};
}

double Lognormal::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double Lognormal::variance() const {
  const double m = mean();
  return m * m * std::expm1(sigma_ * sigma_);
}

double Lognormal::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return normal_pdf(z) / (x * sigma_);
}

double Lognormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return normal_cdf((std::log(x) - mu_) / sigma_);
}

double Lognormal::quantile(double p) const {
  require(p > 0.0 && p < 1.0, "Lognormal::quantile: p must be in (0, 1)");
  return std::exp(mu_ + sigma_ * normal_quantile(p));
}

double Lognormal::sample(Rng& rng) const {
  return std::exp(rng.normal(mu_, sigma_));
}

Weibull::Weibull(double alpha, double beta, double area)
    : alpha_(alpha), beta_(beta), area_(area) {
  require(alpha > 0.0, "Weibull: alpha must be positive");
  require(beta > 0.0, "Weibull: beta must be positive");
  require(area > 0.0, "Weibull: area must be positive");
}

double Weibull::pdf(double t) const {
  if (t <= 0.0) return 0.0;
  const double z = t / alpha_;
  const double zb = std::pow(z, beta_);
  return area_ * beta_ / t * zb * std::exp(-area_ * zb);
}

double Weibull::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return -std::expm1(-area_ * std::pow(t / alpha_, beta_));
}

double Weibull::reliability(double t) const {
  if (t <= 0.0) return 1.0;
  return std::exp(-area_ * std::pow(t / alpha_, beta_));
}

double Weibull::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "Weibull::quantile: p must be in [0, 1)");
  if (p == 0.0) return 0.0;
  return alpha_ * std::pow(-std::log1p(-p) / area_, 1.0 / beta_);
}

double Weibull::sample(Rng& rng) const {
  return alpha_ * std::pow(rng.exponential() / area_, 1.0 / beta_);
}

}  // namespace obd::stats
