#include "core/montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/lifetime.hpp"
#include "numeric/roots.hpp"
#include "stats/special.hpp"

namespace obd::core {
namespace {

// Fixed chunk sizes for the shared pool. Chunk boundaries (not the thread
// count) define the reduction order, so these are part of the numerical
// contract: changing them reorders floating-point sums.
constexpr std::size_t kSampleChunk = 8;    ///< chips per sampling task
constexpr std::size_t kEvalChunk = 64;     ///< chips per evaluation task
constexpr std::size_t kSimulateChunk = 4;  ///< chips per failure-time task

}  // namespace

MonteCarloAnalyzer::MonteCarloAnalyzer(const ReliabilityProblem& problem,
                                       const MonteCarloOptions& options)
    : problem_(&problem), options_(options) {
  require(options.chip_samples >= 10,
          "MonteCarloAnalyzer: need at least 10 sample chips");
  require(options.thickness_bins >= 16,
          "MonteCarloAnalyzer: need at least 16 thickness bins");

  // Common thickness axis covering nominal spread plus range_sigmas of
  // total variation (wafer patterns can shift the per-grid nominal).
  const var::CanonicalForm& canonical = problem.canonical();
  double nom_lo = canonical.nominal(0);
  double nom_hi = canonical.nominal(0);
  for (std::size_t g = 1; g < canonical.grid_count(); ++g) {
    nom_lo = std::min(nom_lo, canonical.nominal(g));
    nom_hi = std::max(nom_hi, canonical.nominal(g));
  }
  const double half =
      options.thickness_range_sigmas * problem.budget().sigma_total();
  x_lo_ = nom_lo - half;
  x_step_ = (nom_hi + half - x_lo_) / static_cast<double>(options.thickness_bins);
  x_hi_ = x_lo_ + x_step_ * static_cast<double>(options.thickness_bins);

  // One independent stream per chip, derived by splitmix64-mixing
  // (seed, chip index) — see Rng::stream. Results are reproducible and
  // independent of the thread count.
  chips_.resize(options.chip_samples);
  par::parallel_for(
      0, options.chip_samples, kSampleChunk,
      [this](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          stats::Rng rng = stats::Rng::stream(options_.seed, s);
          chips_[s] = sample_chip(rng);
        }
      },
      options.threads);

  // Out-of-range accounting is aggregated serially after the parallel
  // sampling so the diagnostic (and any strict-mode throw) fires exactly
  // once, on the calling thread.
  std::uint64_t out_of_range = 0;
  for (const ChipSample& chip : chips_) {
    for (std::size_t j = 0; j < chip.underflow.size(); ++j)
      out_of_range += chip.underflow[j] + chip.overflow[j];
  }
  const double total = static_cast<double>(options.chip_samples) *
                       static_cast<double>(problem.design().total_devices());
  out_of_range_fraction_ =
      (total > 0.0) ? static_cast<double>(out_of_range) / total : 0.0;
  if (out_of_range_fraction_ > 1e-6) {
    std::ostringstream msg;
    msg << "thickness histogram range [" << x_lo_ << ", " << x_hi_
        << "] nm misses a fraction " << out_of_range_fraction_
        << " of device samples (accounted at the range boundary); widen "
           "thickness_range_sigmas";
    diagnostics().warn("mc.binning", msg.str());
  }
}

MonteCarloAnalyzer::ChipSample MonteCarloAnalyzer::sample_chip(
    stats::Rng& rng) const {
  const var::CanonicalForm& canonical = problem_->canonical();
  const auto& blocks = problem_->blocks();
  const auto& layout = problem_->layout();

  const la::Vector z = canonical.sample_z(rng);
  la::Vector t_grid = canonical.sensitivities().multiply(z);
  for (std::size_t g = 0; g < t_grid.size(); ++g)
    t_grid[g] += canonical.nominal(g);

  const double sr = canonical.residual_sigma();
  const std::size_t bins = options_.thickness_bins;
  const double inv_step = 1.0 / x_step_;

  ChipSample chip;
  chip.block_bins.resize(blocks.size());
  chip.underflow.assign(blocks.size(), 0);
  chip.overflow.assign(blocks.size(), 0);
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    auto& counts = chip.block_bins[j];
    counts.assign(bins, 0);
    const std::size_t m = problem_->design().blocks[j].device_count;
    const auto& weights = layout.weights[j];

    // Apportion the block's devices to its grid cells; the rounding
    // remainder lands on the final cell so totals are exact.
    std::size_t placed = 0;
    for (std::size_t e = 0; e < weights.size(); ++e) {
      const auto& [g, w] = weights[e];
      std::size_t count;
      if (e + 1 == weights.size()) {
        count = m - placed;
      } else {
        count = static_cast<std::size_t>(
            std::llround(w * static_cast<double>(m)));
        count = std::min(count, m - placed);
      }
      placed += count;
      const double mu = t_grid[g];
      for (std::size_t i = 0; i < count; ++i) {
        const double x = mu + sr * rng.normal();
        const double f = (x - x_lo_) * inv_step;
        // Out-of-range samples are counted separately and later evaluated
        // at the true clamp boundary — folding them into the edge bins
        // would bias their contribution toward the bin centers.
        if (f < 0.0) {
          ++chip.underflow[j];
        } else if (f >= static_cast<double>(bins)) {
          ++chip.overflow[j];
        } else {
          ++counts[static_cast<std::size_t>(f)];
        }
      }
    }
  }
  return chip;
}

double MonteCarloAnalyzer::chip_exponent(const ChipSample& chip,
                                         double t) const {
  const auto& blocks = problem_->blocks();
  double h = 0.0;
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    const double gamma = std::log(t / blocks[j].alpha);
    // sum_bins count * exp(gamma b x_bin) evaluated incrementally:
    // p_{k+1} = p_k * exp(gamma b dx) — one exp per block, not per bin.
    const double base =
        std::exp(gamma * blocks[j].b * (x_lo_ + 0.5 * x_step_));
    const double ratio = std::exp(gamma * blocks[j].b * x_step_);
    double p = base;
    double s = 0.0;
    for (const std::uint32_t c : chip.block_bins[j]) {
      if (c != 0) s += static_cast<double>(c) * p;
      p *= ratio;
    }
    // Out-of-range populations contribute at the axis boundaries (their
    // clamp values), not at the edge-bin centers.
    if (chip.underflow[j] != 0)
      s += static_cast<double>(chip.underflow[j]) *
           std::exp(gamma * blocks[j].b * x_lo_);
    if (chip.overflow[j] != 0)
      s += static_cast<double>(chip.overflow[j]) *
           std::exp(gamma * blocks[j].b * x_hi_);
    const double per_device_area =
        blocks[j].area /
        static_cast<double>(problem_->design().blocks[j].device_count);
    h += per_device_area * s;
  }
  return h;
}

double MonteCarloAnalyzer::failure_probability(double t) const {
  require(t > 0.0, "MonteCarloAnalyzer: t must be positive");
  const double sum = par::parallel_reduce(
      0, chips_.size(), kEvalChunk, 0.0,
      [&](std::size_t begin, std::size_t end) {
        double s = 0.0;
        for (std::size_t i = begin; i < end; ++i)
          s += -std::expm1(-chip_exponent(chips_[i], t));
        return s;
      },
      [](double a, double b) { return a + b; }, options_.threads);
  return sum / static_cast<double>(chips_.size());
}

double MonteCarloAnalyzer::failure_std_error(double t) const {
  require(t > 0.0, "MonteCarloAnalyzer: t must be positive");
  using Moments = std::pair<double, double>;  // (sum, sum of squares)
  const Moments m = par::parallel_reduce(
      0, chips_.size(), kEvalChunk, Moments{0.0, 0.0},
      [&](std::size_t begin, std::size_t end) {
        Moments acc{0.0, 0.0};
        for (std::size_t i = begin; i < end; ++i) {
          const double f = -std::expm1(-chip_exponent(chips_[i], t));
          acc.first += f;
          acc.second += f * f;
        }
        return acc;
      },
      [](const Moments& a, const Moments& b) {
        return Moments{a.first + b.first, a.second + b.second};
      },
      options_.threads);
  const double n = static_cast<double>(chips_.size());
  const double var =
      std::max(0.0, (m.second - m.first * m.first / n) / (n - 1.0));
  return std::sqrt(var / n);
}

double MonteCarloAnalyzer::lifetime_at(double target) const {
  return lifetime_at_failure(
      [this](double t) { return failure_probability(t); }, target);
}

double MonteCarloAnalyzer::kth_failure_probability(double t,
                                                   std::size_t k) const {
  require(t > 0.0, "MonteCarloAnalyzer: t must be positive");
  require(k >= 1, "MonteCarloAnalyzer: k must be >= 1");
  if (k == 1) return failure_probability(t);
  const double sum = par::parallel_reduce(
      0, chips_.size(), kEvalChunk, 0.0,
      [&](std::size_t begin, std::size_t end) {
        double s = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
          const double h = chip_exponent(chips_[i], t);
          // Conditional on the thicknesses, breakdowns are a Poisson
          // process with mean h; P(N >= k) = P(k, h).
          s += (h > 0.0) ? stats::gamma_p(static_cast<double>(k), h) : 0.0;
        }
        return s;
      },
      [](double a, double b) { return a + b; }, options_.threads);
  return sum / static_cast<double>(chips_.size());
}

double MonteCarloAnalyzer::kth_lifetime_at(double target,
                                           std::size_t k) const {
  return lifetime_at_failure(
      [this, k](double t) { return kth_failure_probability(t, k); }, target);
}

std::vector<double> MonteCarloAnalyzer::sample_failure_times(
    std::size_t count, stats::Rng& rng) const {
  // One draw from the caller's generator seeds the family of per-chip
  // streams, so the simulation is reproducible and thread-count invariant
  // while still depending on the caller's generator state.
  const std::uint64_t base = rng();
  std::vector<double> times(count);
  par::parallel_for(
      0, count, kSimulateChunk,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          stats::Rng chip_rng = stats::Rng::stream(base, i);
          const ChipSample chip = sample_chip(chip_rng);
          const double e = chip_rng.exponential();
          // Failure time: H(t) = e, inverted in log-time. H is monotone
          // increasing in t, spanning many decades — Brent with automatic
          // bracket expansion from a broad seed interval.
          const double s = num::brent_auto_bracket(
              [&](double log_t) {
                return chip_exponent(chip, std::exp(log_t)) - e;
              },
              std::log(1e6), std::log(1e12), 1e-9);
          times[i] = std::exp(s);
        }
      },
      options_.threads);
  return times;
}

}  // namespace obd::core
