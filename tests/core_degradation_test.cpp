#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/degradation.hpp"

namespace obd::core {
namespace {

TEST(Degradation, PreSbdBaselineIsNearInitialLeakage) {
  const DegradationParams p;
  const double i1 = leakage_at(p, 1.0, 1e4);
  EXPECT_NEAR(i1, p.initial_leakage, 0.2 * p.initial_leakage);
  // Slow SILC drift: later but still pre-SBD leakage is mildly higher.
  const double i2 = leakage_at(p, 1e3, 1e4);
  EXPECT_GT(i2, i1);
  EXPECT_LT(i2, 2.0 * i1);
}

TEST(Degradation, SbdJumpIsTenToTwentyTimes) {
  // Section III: SBD "may change the gate leakage by 10-20 times".
  const DegradationParams p;
  const double t_sbd = 5e3;
  const double before = leakage_at(p, t_sbd * 0.999, t_sbd);
  const double after = leakage_at(p, t_sbd, t_sbd);
  EXPECT_NEAR(after / before, p.sbd_jump, 0.01 * p.sbd_jump);
  EXPECT_GE(after / before, 10.0);
  EXPECT_LE(after / before, 20.0);
}

TEST(Degradation, PostSbdLeakageGrowsMonotonically) {
  // Fig. 3: "the gate leakage continuously increases after SBD until HBD".
  const DegradationParams p;
  const double t_sbd = 3e3;
  double prev = leakage_at(p, t_sbd, t_sbd);
  for (double t = t_sbd * 1.05; t < hbd_time(p, t_sbd); t *= 1.05) {
    const double i = leakage_at(p, t, t_sbd);
    EXPECT_GE(i, prev);
    prev = i;
  }
}

TEST(Degradation, HbdTimeConsistentWithThreshold) {
  const DegradationParams p;
  const double t_sbd = 4e3;
  const double t_hbd = hbd_time(p, t_sbd);
  EXPECT_GT(t_hbd, t_sbd);
  // Just before HBD the growth law is below the criterion; at/after HBD the
  // trace sits at compliance.
  EXPECT_LT(leakage_at(p, t_hbd * 0.999, t_sbd), p.hbd_current);
  EXPECT_DOUBLE_EQ(leakage_at(p, t_hbd * 1.001, t_sbd),
                   p.compliance_current);
}

TEST(Degradation, SimulatedTraceHasSbdThenHbd) {
  DegradationParams p;
  stats::Rng rng(17);
  const LeakageTrace trace = simulate_degradation(p, rng, 1.0, 1e6, 300);
  ASSERT_EQ(trace.time_s.size(), 300u);
  ASSERT_EQ(trace.leakage_a.size(), 300u);
  EXPECT_GT(trace.t_sbd, 0.0);
  EXPECT_GT(trace.t_hbd, trace.t_sbd);
  // The trace is non-decreasing (irreversible degradation).
  for (std::size_t i = 1; i < trace.leakage_a.size(); ++i)
    EXPECT_GE(trace.leakage_a[i], trace.leakage_a[i - 1] - 1e-18);
  // It spans several decades of current overall.
  EXPECT_GT(trace.leakage_a.back() / trace.leakage_a.front(), 1e3);
}

TEST(Degradation, SbdTimesFollowTheStressWeibull) {
  DegradationParams p;
  stats::Rng rng(18);
  std::vector<double> t_sbd;
  for (int i = 0; i < 4000; ++i)
    t_sbd.push_back(simulate_degradation(p, rng, 1.0, 1e6, 2).t_sbd);
  std::sort(t_sbd.begin(), t_sbd.end());
  // At t = alpha_stress, F should be 63.2%.
  const auto it =
      std::upper_bound(t_sbd.begin(), t_sbd.end(), p.alpha_stress);
  const double frac =
      static_cast<double>(it - t_sbd.begin()) / static_cast<double>(t_sbd.size());
  EXPECT_NEAR(frac, 1.0 - std::exp(-1.0), 0.03);
}

TEST(Degradation, RejectsBadArguments) {
  DegradationParams p;
  stats::Rng rng(19);
  EXPECT_THROW(simulate_degradation(p, rng, 0.0, 1e5), obd::Error);
  EXPECT_THROW(simulate_degradation(p, rng, 10.0, 5.0), obd::Error);
  EXPECT_THROW(simulate_degradation(p, rng, 1.0, 1e5, 1), obd::Error);
  EXPECT_THROW(leakage_at(p, -1.0, 10.0), obd::Error);
  EXPECT_THROW(leakage_at(p, 1.0, 0.0), obd::Error);
}

}  // namespace
}  // namespace obd::core
