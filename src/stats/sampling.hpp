// Variance-reduction sampling plans.
//
// The st_MC analyzer and the measurement simulators draw from standard
// normals; stratifying those draws (Latin hypercube) or pairing them
// antithetically cuts the variance of the resulting (u_j, v_j) clouds for
// the same sample budget. Exposed as reusable primitives.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/rng.hpp"

namespace obd::stats {

/// Latin-hypercube sample of `count` points in `dimensions` dimensions,
/// mapped through the standard-normal quantile: each returned row is an
/// N(0, I) point, and each marginal is perfectly stratified into `count`
/// equiprobable bins. Rows are stored contiguously:
/// result[i * dimensions + k].
std::vector<double> latin_hypercube_normal(std::size_t count,
                                           std::size_t dimensions, Rng& rng);

/// Stratified 1-D standard-normal sample: one draw per equiprobable bin,
/// shuffled. Equivalent to latin_hypercube_normal with 1 dimension.
std::vector<double> stratified_normal(std::size_t count, Rng& rng);

}  // namespace obd::stats
