// HotSpot-compatible floorplan and power-trace file I/O.
//
// The paper's flow takes floorplans and power numbers in HotSpot's [10]
// formats; supporting them directly makes the library a drop-in analysis
// backend for existing HotSpot users:
//
//  *.flp    one block per line: <name> <width_m> <height_m> <left_m>
//           <bottom_m>; '#' starts a comment. Units are meters.
//
// (.ptrace power traces are handled by power/trace_io.hpp.)
//
// Device counts are not part of .flp; loads assign them from a devices/mm^2
// density (overridable per call), and unit kinds/activities are inferred
// from conventional block-name patterns (L2, icache, FPAdd, ...).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "chip/design.hpp"

namespace obd::chip {

struct FloorplanLoadOptions {
  /// Devices per mm^2 used to populate Block::device_count.
  double device_density = 3000.0;
  /// Design name recorded in the result.
  std::string name = "flp";
};

/// Parses a HotSpot .flp stream. Throws obd::Error on malformed input.
Design load_floorplan(std::istream& in, const FloorplanLoadOptions& options = {});

/// Parses a HotSpot .flp file by path.
Design load_floorplan_file(const std::string& path,
                           const FloorplanLoadOptions& options = {});

/// Writes a design's geometry as a HotSpot .flp (meters).
void save_floorplan(std::ostream& out, const Design& design);

/// Infers a unit kind from a conventional block name ("L2", "Icache",
/// "FPMul", "IntReg", ...); defaults to kLogic.
UnitKind kind_from_name(const std::string& name);

}  // namespace obd::chip
