// Durable table cache for the reliability query daemon.
//
// `obdrel serve` answers F(t)/lifetime queries keyed by a (thermal
// profile, process corner, config) fingerprint; the paper's Section IV-E
// hybrid lookup tables are exactly the per-fingerprint artifact that makes
// each answer cheap, so the cache stores one fully built evaluation
// context (ReliabilityProblem + HybridEvaluator) per fingerprint:
//
//   - Memory tier: LRU with a byte budget. Inserting over budget evicts
//     the least-recently-used entries; an evicted entry's tables are first
//     written back to the disk tier (when enabled) so the work is demoted,
//     not destroyed.
//   - Disk tier: one CRC-framed snapshot per fingerprint written through
//     the common/checkpoint atomic writer (temp + fsync + rename), so a
//     SIGKILL mid-write leaves either the previous file or a stale `.tmp`
//     — never a torn readable entry. A corrupt or foreign file is
//     detected, quarantined (renamed `*.quarantined`), reported via a
//     `serve.cache_corrupt` diagnostic, and recomputed — never trusted,
//     never a crash.
//
// Fault sites: `serve.cache_read` simulates disk-tier corruption,
// `serve.cache_evict` simulates a failed write-back during eviction (the
// entry is dropped with a diagnostic; the next miss recomputes it).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/hybrid.hpp"
#include "core/problem.hpp"

namespace obd::serve {

/// FNV-1a 64-bit fingerprint of a canonical problem-key string.
[[nodiscard]] std::uint64_t fingerprint(const std::string& key);

/// Disk-tier file for fingerprint `fp` under `dir`
/// (`<dir>/<fp-hex>.lut`).
[[nodiscard]] std::string cache_file_path(const std::string& dir,
                                          std::uint64_t fp);

/// Persisted surrogate model for fingerprint `fp` under `dir`
/// (`<dir>/<fp-hex>.cheb`); written and read through the same CRC frame
/// as the table tier, so corruption quarantines and refits.
[[nodiscard]] std::string surrogate_file_path(const std::string& dir,
                                              std::uint64_t fp);

/// Writes one disk-tier entry: a CRC-framed snapshot whose payload is the
/// canonical key line followed by the serialized hybrid tables. Returns
/// false (after a `serve.cache_evict` diagnostic) instead of throwing when
/// the write fails — table loss is recomputable, a crashed daemon is not.
/// Injectable via the `serve.cache_evict` site.
bool write_cache_file(const std::string& path, const std::string& key,
                      const std::string& table_text);

/// Reads and CRC-verifies a disk-tier entry, returning the serialized
/// table text. A missing file returns nullopt silently (a plain miss). A
/// corrupt file or one whose embedded key differs from `expected_key`
/// (foreign state) is quarantined to `path + ".quarantined"`, reported via
/// a `serve.cache_corrupt` diagnostic, and returns nullopt so the caller
/// recomputes. Injectable via the `serve.cache_read` site. When
/// `quarantined` is non-null it is set to whether this call quarantined
/// the file (distinguishes corruption from a plain miss).
[[nodiscard]] std::optional<std::string> read_cache_file(
    const std::string& path, const std::string& expected_key,
    bool* quarantined = nullptr);

/// One cached evaluation context. The problem is heap-held so the
/// evaluator's non-owning pointer survives moves of the entry.
struct CacheEntry {
  std::string key;              ///< canonical problem key
  std::uint64_t fp = 0;         ///< fingerprint(key)
  std::unique_ptr<core::ReliabilityProblem> problem;
  std::unique_ptr<core::HybridEvaluator> hybrid;
  std::size_t bytes = 0;        ///< budget charge (table-dominated estimate)
  bool on_disk = false;         ///< disk tier already holds this entry
};

/// Estimated resident bytes of an entry with the given table shape —
/// tables dominate; the fixed overhead covers the problem skeleton.
[[nodiscard]] std::size_t entry_bytes(std::size_t blocks, std::size_t n_gamma,
                                      std::size_t n_b);

struct CacheOptions {
  std::size_t byte_budget = std::size_t{256} << 20;  ///< memory tier budget
  std::string dir;  ///< disk tier directory; empty disables the tier
};

struct CacheStats {
  std::uint64_t hits = 0;        ///< memory-tier hits
  std::uint64_t disk_hits = 0;   ///< disk-tier loads
  std::uint64_t misses = 0;      ///< cold computes
  std::uint64_t evictions = 0;   ///< entries demoted out of memory
  std::uint64_t corrupt = 0;     ///< quarantined disk files
  std::uint64_t write_failures = 0;  ///< failed disk write-backs
};

/// LRU table cache with byte-budget eviction and the durable disk tier.
/// Single-threaded by design: the serving worker owns it exclusively.
class TableCache {
 public:
  /// Creates the cache; when the disk tier is enabled the directory is
  /// created if missing and stale `*.tmp` files from a killed writer are
  /// swept (logged via the `serve.stale_tmp` diagnostic stat).
  explicit TableCache(CacheOptions options);

  /// Memory-tier lookup; a hit is promoted to most-recently-used.
  [[nodiscard]] CacheEntry* find(std::uint64_t fp);

  /// Disk-tier lookup: loads and validates the tables against the freshly
  /// built `problem` (block names/areas must match — a foreign file is
  /// quarantined exactly like a corrupt one). Returns nullopt on miss or
  /// quarantine.
  [[nodiscard]] std::optional<core::HybridEvaluator> load_disk(
      std::uint64_t fp, const std::string& key,
      const core::ReliabilityProblem& problem);

  /// Inserts (or replaces) an entry and evicts least-recently-used entries
  /// until the budget holds again. Eviction writes the victim back to the
  /// disk tier first (unless it is already there); a failed write-back
  /// drops the entry with a diagnostic. Returns the resident entry.
  CacheEntry* insert(CacheEntry entry);

  /// Writes every memory-tier entry not yet on disk to the disk tier (the
  /// graceful-drain flush). Returns false when any write failed.
  bool flush();

  /// Counts a cold compute (neither tier had the fingerprint).
  void record_miss() { ++stats_.misses; }

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t entries() const { return lru_.size(); }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] const CacheOptions& options() const { return options_; }

  /// Serializes an evaluator's tables (the disk-tier payload body).
  [[nodiscard]] static std::string serialize(
      const core::HybridEvaluator& hybrid);

 private:
  void evict_to_budget();
  bool demote(CacheEntry& entry);  ///< write-back if needed; updates stats

  CacheOptions options_;
  std::list<CacheEntry> lru_;  ///< front = most recently used
  std::map<std::uint64_t, std::list<CacheEntry>::iterator> index_;
  std::size_t bytes_ = 0;
  CacheStats stats_;
};

}  // namespace obd::serve
