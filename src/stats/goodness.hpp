// Goodness-of-fit statistics for validating distribution approximations.
//
// Used by the test suite and the figure benches to score how well the
// chi-square approximations (eq. 29-30 and the three-moment refinement)
// track sampled quadratic forms, and how Gaussian the BLODs really are —
// quantitative versions of the paper's Fig. 4 / Fig. 8 eyeball checks.
#pragma once

#include <functional>
#include <vector>

namespace obd::stats {

/// One-sample Kolmogorov-Smirnov statistic: sup_x |F_n(x) - F(x)| for
/// samples against a reference CDF. `samples` need not be sorted.
double ks_statistic(std::vector<double> samples,
                    const std::function<double(double)>& cdf);

/// Asymptotic KS p-value for statistic d at sample size n (Kolmogorov
/// distribution, Marsaglia-style series). Small p => reject equality.
double ks_p_value(double d, std::size_t n);

/// One-sample Anderson-Darling statistic A^2 — tail-weighted alternative
/// to KS (more sensitive to exactly the tail errors that matter at ppm
/// failure levels). `samples` need not be sorted.
double anderson_darling_statistic(std::vector<double> samples,
                                  const std::function<double(double)>& cdf);

}  // namespace obd::stats
