// Tests for the variation-model extensions: quad-tree correlation and
// measurement-driven covariance extraction.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/blod.hpp"
#include "linalg/eigen.hpp"
#include "stats/descriptive.hpp"
#include "variation/extraction.hpp"
#include "variation/quadtree.hpp"

namespace obd::var {
namespace {

TEST(QuadTree, RegionCountsAndIndexing) {
  EXPECT_EQ(quadtree_regions_at(0), 1u);
  EXPECT_EQ(quadtree_regions_at(1), 4u);
  EXPECT_EQ(quadtree_regions_at(3), 64u);
  // Level-1 quadrants of a 10x10 die.
  EXPECT_EQ(quadtree_region_index(1.0, 1.0, 10.0, 10.0, 1), 0u);
  EXPECT_EQ(quadtree_region_index(9.0, 1.0, 10.0, 10.0, 1), 1u);
  EXPECT_EQ(quadtree_region_index(1.0, 9.0, 10.0, 10.0, 1), 2u);
  EXPECT_EQ(quadtree_region_index(9.0, 9.0, 10.0, 10.0, 1), 3u);
  // Clamping.
  EXPECT_EQ(quadtree_region_index(-5.0, -5.0, 10.0, 10.0, 2), 0u);
  EXPECT_EQ(quadtree_region_index(50.0, 50.0, 10.0, 10.0, 1), 3u);
}

TEST(QuadTree, CanonicalPreservesMarginalVariance) {
  const VariationBudget budget;
  const GridModel grid(10.0, 10.0, 8);
  const CanonicalForm cf = make_quadtree_canonical(grid, budget);
  const double expected = budget.sigma_global() * budget.sigma_global() +
                          budget.sigma_spatial() * budget.sigma_spatial();
  for (std::size_t g = 0; g < grid.cell_count(); ++g) {
    const double s = cf.correlated_sigma(g);
    EXPECT_NEAR(s * s, expected, 1e-12) << "grid " << g;
  }
  EXPECT_DOUBLE_EQ(cf.residual_sigma(), budget.sigma_independent());
  // Component count: 1 + 4 + 16 + 64 + 256.
  EXPECT_EQ(cf.pc_count(), 341u);
}

TEST(QuadTree, SampledCorrelationMatchesModel) {
  const VariationBudget budget;
  const GridModel grid(8.0, 8.0, 8);
  const CanonicalForm cf = make_quadtree_canonical(grid, budget, {.levels = 3});
  stats::Rng rng(5);
  // Two cells in the same level-3 region correlate fully; opposite corners
  // correlate only through the global component.
  const std::size_t near_a = grid.index_at(0.2, 0.2);
  const std::size_t near_b = grid.index_at(0.8, 0.8);
  const std::size_t far = grid.index_at(7.8, 7.8);
  double caa = 0.0, cab = 0.0, caf = 0.0, va = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const la::Vector z = cf.sample_z(rng);
    const double xa = cf.correlated_thickness(near_a, z) - budget.nominal;
    const double xb = cf.correlated_thickness(near_b, z) - budget.nominal;
    const double xf = cf.correlated_thickness(far, z) - budget.nominal;
    va += xa * xa;
    caa += xa * xa;
    cab += xa * xb;
    caf += xa * xf;
  }
  const double rho_ab = cab / caa;
  const double rho_af = caf / caa;
  EXPECT_NEAR(rho_ab,
              quadtree_correlation(0.2, 0.2, 0.8, 0.8, 8.0, 8.0, budget,
                                   {.levels = 3}),
              0.02);
  EXPECT_NEAR(rho_af,
              quadtree_correlation(0.2, 0.2, 7.8, 7.8, 8.0, 8.0, budget,
                                   {.levels = 3}),
              0.02);
  EXPECT_GT(rho_ab, rho_af);
  // Opposite corners share only the global 50% of variance.
  EXPECT_NEAR(rho_af, 0.5 / 0.75, 0.02);
}

TEST(QuadTree, CorrelationIsMonotoneInSharedLevels) {
  const VariationBudget budget;
  double prev = 1.1;
  // Walk away from the origin: correlation must be non-increasing.
  for (double x : {0.3, 1.2, 2.6, 5.1, 9.9}) {
    const double rho =
        quadtree_correlation(0.1, 0.1, x, 0.1, 10.0, 10.0, budget);
    EXPECT_LE(rho, prev + 1e-12);
    prev = rho;
  }
}

TEST(QuadTree, CustomLevelWeightsAndErrors) {
  const VariationBudget budget;
  const GridModel grid(10.0, 10.0, 4);
  QuadTreeOptions opt;
  opt.levels = 2;
  opt.level_weights = {1.0, 3.0};
  const CanonicalForm cf = make_quadtree_canonical(grid, budget, opt);
  EXPECT_EQ(cf.pc_count(), 1u + 4u + 16u);

  opt.level_weights = {1.0};  // wrong size
  EXPECT_THROW(make_quadtree_canonical(grid, budget, opt), obd::Error);
  opt.level_weights = {0.0, 0.0};
  EXPECT_THROW(make_quadtree_canonical(grid, budget, opt), obd::Error);
}

TEST(Extraction, RoundTripRecoversModel) {
  // Simulate a campaign from a known model and re-extract it.
  const VariationBudget budget;  // Table II: 50/25/25 split
  const GridModel grid(10.0, 10.0, 20);
  const double rho_true = 0.5;
  const CanonicalForm cf = make_canonical_form(grid, budget, rho_true, 1.0);
  stats::Rng rng(11);
  const MeasurementSet data = simulate_measurements(cf, grid, 400, 80, rng);

  const ExtractionResult r = extract_correlation(data);
  EXPECT_NEAR(r.nominal, budget.nominal, 0.01);
  EXPECT_NEAR(r.sigma_global, budget.sigma_global(),
              0.2 * budget.sigma_global());
  EXPECT_NEAR(r.sigma_spatial, budget.sigma_spatial(),
              0.3 * budget.sigma_spatial());
  EXPECT_NEAR(r.sigma_independent, budget.sigma_independent(),
              0.2 * budget.sigma_independent());
  // Correlation length within a factor band (distance binning is coarse).
  EXPECT_GT(r.rho_dist, 0.2);
  EXPECT_LT(r.rho_dist, 1.1);

  // The reconstructed budget is valid and close in total variance.
  const VariationBudget back = r.to_budget();
  EXPECT_NO_THROW(back.validate());
  EXPECT_NEAR(back.sigma_total(), budget.sigma_total(),
              0.15 * budget.sigma_total());
}

TEST(Extraction, CorrelationCurveDecreases) {
  const VariationBudget budget;
  const GridModel grid(10.0, 10.0, 20);
  const CanonicalForm cf = make_canonical_form(grid, budget, 0.4, 1.0);
  stats::Rng rng(12);
  const MeasurementSet data = simulate_measurements(cf, grid, 300, 60, rng);
  const ExtractionResult r = extract_correlation(data);
  ASSERT_GE(r.correlation_curve.size(), 3u);
  // First bin near 1, last bin well below.
  EXPECT_GT(r.correlation_curve.front().second, 0.5);
  EXPECT_LT(r.correlation_curve.back().second,
            r.correlation_curve.front().second);
}

TEST(Extraction, RejectsDegenerateInput) {
  MeasurementSet tiny;
  tiny.die_width = 10.0;
  tiny.die_height = 10.0;
  tiny.sites = {{1.0, 1.0}, {2.0, 2.0}};
  tiny.thickness = la::Matrix(5, 2, 2.2);
  EXPECT_THROW(extract_correlation(tiny), obd::Error);  // too few chips

  MeasurementSet colocated;
  colocated.die_width = 10.0;
  colocated.die_height = 10.0;
  colocated.sites.assign(5, {1.0, 1.0});
  colocated.thickness = la::Matrix(20, 5, 2.2);
  EXPECT_THROW(extract_correlation(colocated), obd::Error);
}

TEST(ProjectToPsd, ClipsNegativeEigenvalues) {
  la::Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0; a(1, 0) = 2.0; a(1, 1) = 1.0;  // eigs 3, -1
  const la::Matrix p = project_to_psd(a);
  const auto eig = la::eigen_symmetric(p);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 0.0, 1e-10);
  // PSD matrices pass through unchanged.
  la::Matrix spd(2, 2);
  spd(0, 0) = 2.0; spd(0, 1) = 1.0; spd(1, 0) = 1.0; spd(1, 1) = 2.0;
  const la::Matrix q = project_to_psd(spd);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      EXPECT_NEAR(q(i, j), spd(i, j), 1e-10);
}

TEST(ProjectToPsd, FloorLiftsSpectrum) {
  la::Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0; a(1, 0) = 2.0; a(1, 1) = 1.0;
  const la::Matrix p = project_to_psd(a, 0.5);
  const auto eig = la::eigen_symmetric(p);
  EXPECT_GE(eig.values[1], 0.5 - 1e-12);
}

TEST(QuadTreeEndToEnd, BlodWorksOnQuadtreeCanonical) {
  // The BLOD machinery must compose with the alternative correlation
  // structure unchanged.
  const VariationBudget budget;
  const GridModel grid(10.0, 10.0, 8);
  const CanonicalForm cf = make_quadtree_canonical(grid, budget);

  chip::Design d;
  d.name = "qt";
  d.width = 10.0;
  d.height = 10.0;
  d.blocks.push_back(
      {"b", {0, 0, 5, 5}, 20000, 1.0, chip::UnitKind::kLogic, 0.5});
  const BlockGridLayout layout = assign_devices(d, grid);

  core::BlodMoments blod(cf, layout.weights[0], 20000);
  stats::Rng rng(13);
  stats::RunningStats su;
  stats::RunningStats sv;
  for (int i = 0; i < 50000; ++i) {
    const la::Vector z = cf.sample_z(rng);
    su.add(blod.u_value(z));
    sv.add(blod.v_value(z));
  }
  EXPECT_NEAR(su.mean(), blod.u_nominal(), 1e-3);
  EXPECT_NEAR(sv.mean(), blod.v_mean(), 0.02 * blod.v_mean());
}

}  // namespace
}  // namespace obd::var
