// Block-Level Oxide thickness Distribution (BLOD) characterization
// (Section IV of the paper).
//
// For block j with m_j devices, the within-block thickness population is
// Gaussian (the BLOD Property) and is summarized by its sample mean u_j and
// sample variance v_j. At design time these are random variables over the
// chip ensemble. In the PCA canonical form (eq. 2):
//
//   u_j = u_{j,0} + sum_k u_{j,k} z_k + (lambda_r / sqrt(m_j)) eps    (eq. 22)
//   v_j ~ lambda_r^2 + q0 + l^T z + z^T Q z                           (eq. 24,
//         generalised to a per-grid nominal; the paper's form is the
//         uniform-nominal special case with q0 = 0, l = 0)
//
// so u_j is normal, and v_j is a (shifted) quadratic form in normals that
// the paper approximates by a scaled chi-square (eq. 29-30).
#pragma once

#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "stats/distributions.hpp"
#include "stats/quadform.hpp"
#include "variation/model.hpp"

namespace obd::core {

/// Design-time random-vector description of one block's (u_j, v_j).
class BlodMoments {
 public:
  /// `grid_weights`: (grid index, device share) entries for the block
  /// (the layout of var::assign_devices); `device_count` = m_j.
  BlodMoments(const var::CanonicalForm& canonical,
              std::vector<std::pair<std::size_t, double>> grid_weights,
              std::size_t device_count);

  // --- u_j (BLOD sample mean, eq. 22) -------------------------------------

  /// u_{j,0}: nominal value of the sample mean.
  [[nodiscard]] double u_nominal() const { return u_nominal_; }

  /// sigma of u_j: sqrt(sum_k u_{j,k}^2 + u_{j,n+1}^2).
  [[nodiscard]] double u_sigma() const { return u_sigma_; }

  /// Principal-component sensitivities u_{j,k} of the sample mean — the
  /// gradient of u_j in z. Used by the importance-sampling tilt.
  [[nodiscard]] const la::Vector& u_sensitivities() const { return u_sens_; }

  /// Marginal distribution of u_j (normal).
  [[nodiscard]] stats::Normal u_marginal() const;

  /// Realizes u_j for a concrete principal-component sample z (the
  /// independent-residual term is O(1/sqrt(m_j)) and included as its mean 0;
  /// the paper neglects it, "safely ... for a typical industrial chip").
  [[nodiscard]] double u_value(const la::Vector& z) const;

  // --- v_j (BLOD sample variance, eq. 24) ----------------------------------

  /// Constant part of v_j: lambda_r^2 (+ q0 for a non-uniform nominal).
  [[nodiscard]] double v_constant() const { return v_constant_; }

  /// E[v_j] = v_constant + tr(Q).
  [[nodiscard]] double v_mean() const { return v_constant_ + v_trace_; }

  /// Var[v_j] = 2 tr(Q^2) + |l|^2.
  [[nodiscard]] double v_variance() const { return v_variance_; }

  /// True when the block lies (almost) entirely within one correlation grid
  /// cell: Q ~ 0 and v_j degenerates to the constant lambda_r^2.
  [[nodiscard]] bool v_degenerate() const;

  /// Scaled-chi-square marginal of v_j (eq. 29-30, Yuan-Bentler two-moment
  /// match). Throws obd::Error when v_degenerate() — callers must handle the
  /// deterministic-v case explicitly.
  [[nodiscard]] stats::ShiftedChiSquare v_marginal() const;

  /// Third central moment of v_j (8 tr(Q^3) + 6 l^T Q l), computed from
  /// grid-pair dot products without materializing Q.
  [[nodiscard]] double v_third_central_moment() const { return v_mu3_; }

  /// Three-moment marginal of v_j (skewness-matched scaled chi-square —
  /// the "more moments" refinement of the paper's footnote 4). Throws when
  /// v_degenerate().
  [[nodiscard]] stats::ShiftedChiSquare v_marginal_three_moment() const;

  /// Realizes v_j for a concrete z: lambda_r^2 plus the across-grid spread
  /// of the correlated thickness within the block (exact given z, up to the
  /// O(1/sqrt(m_j)) sampling noise of the residual component).
  [[nodiscard]] double v_value(const la::Vector& z) const;

  /// Materializes the full quadratic form of v_j (constant + linear +
  /// Q matrix over the principal components). O(pc^2 * grids) — intended for
  /// validation (Imhof reference, Fig. 8), not the fast path.
  [[nodiscard]] stats::QuadraticForm v_quadratic_form(
      const var::CanonicalForm& canonical) const;

  /// Number of devices m_j used for the sample-moment corrections.
  [[nodiscard]] std::size_t device_count() const { return device_count_; }

 private:
  std::vector<std::pair<std::size_t, double>> grid_weights_;
  std::size_t device_count_;
  const var::CanonicalForm* canonical_;  // non-owning; outlives this object

  double u_nominal_ = 0.0;
  double u_sigma_ = 0.0;
  la::Vector u_sens_;        // u_{j,k}
  double u_indep_sens_ = 0.0;

  double v_constant_ = 0.0;  // lambda_r^2 + q0
  double v_trace_ = 0.0;     // tr(Q)
  double v_variance_ = 0.0;  // 2 tr(Q^2) + |l|^2
  double v_mu3_ = 0.0;       // 8 tr(Q^3) + 6 l^T Q l
};

}  // namespace obd::core
