// Sharded fleet sweeps: the worker-side data model.
//
// A fleet sweep answers F(t) / std-error queries over an N-chip population
// (ROADMAP item 1: millions of instances) by partitioning the chip-index
// space into fixed 256-chip *chunks* — the determinism AND recovery quantum
// — and assigning contiguous chunk ranges to K worker shards. Each worker
// streams its chunks through MonteCarloAnalyzer::accumulate_chip_range
// (per-chip Rng::stream(seed, global_index) draws, sequential in-chunk
// accumulation) and appends one CRC-framed record per completed chunk to a
// shard journal (common/checkpoint.hpp). Because every record is keyed by
// global chunk index and doubles travel as %a hex-floats, a SIGKILLed
// worker — or a rerun with a different shard count — resumes from the
// journal bit-for-bit, and the merged report depends only on (spec, N):
// never on K, the crash schedule, or thread counts.
//
// File layout under the fleet state directory, per shard k:
//   shard-k.journal   one record per completed chunk (append-only, CRC)
//   shard-k.done      atomic snapshot of the shard's full record set
//   shard-k.hb        heartbeat (pid, counter, chunks done), rename-swapped
//   shard-k.log       worker stdout/stderr (captured by the supervisor)
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/montecarlo.hpp"
#include "core/problem.hpp"

namespace obd::fleet {

/// Chips per chunk. Part of the numerical contract: chunk boundaries fix
/// both the accumulation grouping and the checkpoint granularity, so
/// changing this changes low-order bits of every fleet report.
inline constexpr std::uint64_t kChunkChips = 256;

/// Snapshot schema version for shard done-files.
inline constexpr std::uint32_t kShardSchemaVersion = 1;

/// Everything that determines the numerical result of a fleet sweep.
/// Shard count is deliberately absent: it only shapes the partition.
struct FleetSpec {
  std::uint64_t chips = 0;         ///< fleet population size N
  std::vector<double> ts;          ///< sweep times [s]
  std::uint64_t seed = 99;         ///< per-chip stream base seed
  std::size_t thickness_bins = 512;
  core::DeviceSampling sampling = core::DeviceSampling::kBinned;
  /// Canonical identity of the problem build (design, vdd, grid, ...);
  /// folded into the fingerprint so stale state from a different model
  /// configuration is rejected, not merged.
  std::string problem_key;
};

/// FNV-1a fingerprint over the canonical spec encoding. Workers stamp it
/// on every chunk record and done snapshot; readers reject mismatches.
[[nodiscard]] std::uint64_t fleet_fingerprint(const FleetSpec& spec);

/// ceil(chips / kChunkChips).
[[nodiscard]] std::uint64_t chunk_count(const FleetSpec& spec);

/// Global chip-index range of chunk `c`: [begin, end).
[[nodiscard]] std::uint64_t chunk_chip_begin(const FleetSpec& spec,
                                             std::uint64_t c);
[[nodiscard]] std::uint64_t chunk_chip_end(const FleetSpec& spec,
                                           std::uint64_t c);

/// Contiguous chunk range [begin, end) owned by one shard.
struct ChunkRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  [[nodiscard]] std::uint64_t size() const { return end - begin; }
  [[nodiscard]] bool empty() const { return begin >= end; }
};

/// Balanced contiguous partition of [0, total_chunks) into `shards` ranges
/// (the first total_chunks % shards ranges get one extra chunk). Shards
/// past the chunk count get empty ranges — a supervisor marks those done
/// without spawning a worker.
[[nodiscard]] std::vector<ChunkRange> partition_chunks(
    std::uint64_t total_chunks, std::uint64_t shards);

/// One completed chunk's partial sums.
struct ChunkResult {
  std::uint64_t chunk = 0;  ///< global chunk index
  std::uint64_t chips = 0;  ///< chips accumulated (== chunk range size)
  std::vector<double> sum_f;
  std::vector<double> sum_f2;
};

/// Encodes a chunk record as a single line of space-separated fields with
/// %a hex-float doubles (exact round-trip; same convention as the DRM
/// checkpoint schema). The CRC frame is the journal's job.
[[nodiscard]] std::string encode_chunk_record(std::uint64_t fingerprint,
                                              const ChunkResult& r);

/// Decodes a chunk record; returns false (never throws) on malformed
/// fields, fingerprint mismatch, or sweep-size mismatch, so readers treat
/// foreign or corrupt records as absent work rather than fatal state. The
/// `fleet.shard_crc` fault site injects a decode failure here.
[[nodiscard]] bool decode_chunk_record(const std::string& payload,
                                       std::uint64_t fingerprint,
                                       std::size_t nt, ChunkResult* out);

// Per-shard file paths under the fleet state directory.
[[nodiscard]] std::string journal_path(const std::string& dir,
                                       std::uint64_t shard);
[[nodiscard]] std::string done_path(const std::string& dir,
                                    std::uint64_t shard);
[[nodiscard]] std::string heartbeat_path(const std::string& dir,
                                         std::uint64_t shard);
[[nodiscard]] std::string log_path(const std::string& dir,
                                   std::uint64_t shard);

/// Worker liveness beacon. `counter` increases monotonically while the
/// worker is scheduled; `chunks_done` increases with real progress (the
/// supervisor resets a shard's backoff when it advances).
struct Heartbeat {
  std::uint64_t pid = 0;
  std::uint64_t counter = 0;
  std::uint64_t chunks_done = 0;
};

/// Writes the heartbeat via temp-file + rename (atomic for readers, no
/// fsync — losing a beat is harmless). Returns false instead of throwing
/// when the write fails (injectable via `fleet.heartbeat`): a worker that
/// cannot beat keeps computing; the supervisor will eventually SIGKILL and
/// restart it, and the journal makes that restart cheap.
bool write_heartbeat(const std::string& path, const Heartbeat& hb);

/// Reads a heartbeat; nullopt when missing or (transiently) malformed.
[[nodiscard]] std::optional<Heartbeat> read_heartbeat(const std::string& path);

/// Loads every usable chunk record for shard `shard` from its done
/// snapshot (preferred) or journal, keyed by global chunk index. Records
/// with foreign fingerprints or malformed fields are skipped. Never
/// throws; missing files mean no completed work.
[[nodiscard]] std::map<std::uint64_t, ChunkResult> load_shard_chunks(
    const std::string& dir, std::uint64_t shard, const FleetSpec& spec);

struct WorkerOptions {
  std::string dir;            ///< fleet state directory
  std::uint64_t shard = 0;    ///< this worker's shard index
  std::uint64_t shards = 1;   ///< total shard count (partition shape only)
  std::uint64_t heartbeat_ms = 100;
  bool sync_journal = true;   ///< fsync after each chunk record
};

/// Worker entry point: resumes completed chunks from the shard journal,
/// computes the pending ones (parallel over chunks on the shared pool;
/// in-chunk accumulation stays sequential), appends one journal record per
/// completed chunk, and finally publishes the shard's complete record set
/// as an atomic done snapshot. Runs a background heartbeat thread for the
/// supervisor's liveness watchdog.
void run_worker(const core::ReliabilityProblem& problem, const FleetSpec& spec,
                const WorkerOptions& opts);

/// Merged fleet sweep. `covered_chips` < `total_chips` when shards failed
/// permanently — the report is then a partial (graceful degradation).
struct FleetReport {
  std::uint64_t total_chips = 0;
  std::uint64_t covered_chips = 0;
  std::uint64_t missing_chunks = 0;
  std::vector<double> ts;
  std::vector<double> failure;    ///< F(t) over covered chips
  std::vector<double> std_error;  ///< std error over covered chips
};

/// Folds chunk results into a report, accumulating strictly in ascending
/// global chunk order — the merged sums are bit-identical for every
/// partition of the same chunk set.
[[nodiscard]] FleetReport merge_chunks(
    const FleetSpec& spec, const std::map<std::uint64_t, ChunkResult>& chunks);

/// Renders the report in its canonical text form (%.17g doubles). The
/// byte-identity contract of the chaos tests is over this string.
[[nodiscard]] std::string render_report(const FleetReport& report);

}  // namespace obd::fleet
