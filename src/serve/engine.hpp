// Query engine of the reliability daemon: request grammar, fingerprinting,
// and the coalescing evaluator over the durable table cache.
//
// A request is one newline-framed line of space-separated key=value
// fields:
//
//   id=<token> t=<seconds> [set.<key>=<value> ...] [cond.<key>=<value> ...]
//       [deadline_ms=<ms>]
//   op=health [id=<token>]
//
// `set.<key>` overrides a whitelisted problem-shaping config key (design,
// vdd, ambient_c, ...) on top of the daemon's base config — that tuple of
// (thermal profile, process corner, config) is canonicalized into a key
// string and fingerprinted; all queries sharing a fingerprint share one
// cached evaluation context and are answered as a single batched
// table-lookup sweep.
//
// `cond.<key>` applies an operating-condition delta on top of the built
// problem without changing its fingerprint: `cond.dt` (uniform block
// temperature offset [C]), `cond.dt.<block>` (per-block offset),
// `cond.vdd` (supply override), `cond.act` (activity scale). Condition
// queries are answered exactly through a per-session
// core::ConditionEvaluator whose incremental rows persist across the
// session's requests — repeated overrides refresh only what changed
// (`incremental_hits` in the engine stats counts the reuses) — or, when
// the surrogate tier is enabled and certifies the corner, from the
// Chebyshev surrogate without touching the tables at all.
//
// Replies are one line per request, same grammar:
//
//   id=<token> ok=1 t=<t> f=<F(t)> degraded=<0|1>
//   id=<token> error=<code> msg=<text>
//   id=<token> overloaded=1          (emitted by the server when shedding)
//
// A reply never reveals which cache tier answered it: a memory hit, a disk
// reload, and a cold compute are byte-identical by construction (the LUT
// serialization round-trips doubles exactly), which is what makes the
// crash-restart tests meaningful.
//
// Deadlines degrade instead of failing: a query whose deadline has already
// expired when its cold table build would start is answered from the
// analytic closed form (paper Section IV-C) with degraded=1 — an
// approximation delivered on time instead of an exact answer too late.
// Memory-tier hits always serve the exact table answer; they are cheaper
// than the analytic path. The `serve.deadline` fault site forces expiry
// deterministically.
#pragma once

#include <chrono>
#include <cstddef>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "core/condition_eval.hpp"
#include "serve/cache.hpp"
#include "surrogate/surrogate.hpp"

namespace obd::serve {

/// One parsed request line.
struct Request {
  enum class Op { kQuery, kHealth };
  Op op = Op::kQuery;
  std::string id;      ///< echoed verbatim in the reply
  double t = 0.0;      ///< query time [s] (op == kQuery)
  double deadline_ms = -1.0;  ///< per-request deadline; < 0 = server default
  std::map<std::string, std::string> overrides;  ///< whitelisted set.* keys

  // Operating-condition delta (cond.* fields). NaN cond_vdd means "the
  // group's configured vdd" — resolved against the overridden config at
  // evaluation time, after set.vdd has been applied.
  bool has_cond = false;
  double cond_dt = 0.0;
  double cond_vdd = std::numeric_limits<double>::quiet_NaN();
  double cond_act = 1.0;
  std::vector<std::pair<std::size_t, double>> cond_block_dt;
};

/// Parses one request line. Throws Error(kInvalidInput) on malformed
/// fields, a non-positive t, or a non-whitelisted set.* key; the server
/// turns the throw into an error reply for that line only.
[[nodiscard]] Request parse_request(const std::string& line);

/// Canonical identity of everything that shapes the evaluation context:
/// the problem-shaping config keys (with request overrides applied) plus
/// the serve-table dimensions. Equal strings <=> interchangeable cached
/// tables.
[[nodiscard]] std::string problem_key(const Config& cfg);

/// Same, with the canonical mechanism rendering supplied by the caller
/// (the engine memoizes it per raw spec instead of re-parsing the
/// mechanism/redundancy grammar on every request).
[[nodiscard]] std::string problem_key(const Config& cfg,
                                      const std::string& mechanisms);

/// True when a request that waited `elapsed_ms` against `deadline_ms` must
/// degrade (deadline_ms <= 0 disables deadlines). Injectable via the
/// `serve.deadline` site, which expires any armed deadline irrespective of
/// the clock.
[[nodiscard]] bool deadline_expired(double elapsed_ms, double deadline_ms);

/// A request plus its arrival time (the deadline anchor) and the session
/// it arrived on (the server uses the client fd; stdin is session 1).
/// Sessions scope the incremental-evaluator reuse of cond.* queries.
struct PendingQuery {
  Request request;
  std::chrono::steady_clock::time_point arrival;
  int session = 1;
};

struct EngineOptions {
  CacheOptions cache;
  std::size_t n_gamma = 100;   ///< serve-table indices along ln(t/alpha)
  std::size_t n_b = 100;       ///< serve-table indices along b
  double deadline_ms = 0.0;    ///< default per-request deadline; 0 = off
  /// Surrogate tier. Off by default: every reply stays byte-identical to
  /// an engine without the tier. On, ok replies carry ` surrogate=<0|1>`
  /// and queries the certificate covers are answered from the Chebyshev
  /// model (memory-tier table hits still win — exact beats approximate
  /// when both are free).
  bool surrogate = false;
  surrogate::SurrogateOptions surrogate_opts;
};

struct EngineStats {
  std::uint64_t answered = 0;  ///< ok replies (exact or degraded)
  std::uint64_t degraded = 0;  ///< deadline-degraded analytic answers
  std::uint64_t errors = 0;    ///< per-request error replies
  std::uint64_t surrogate_hits = 0;  ///< replies answered by the surrogate
  /// Queries a present surrogate refused (out of domain, uncertified, or
  /// per-block cond overrides) and the exact engine answered instead.
  std::uint64_t surrogate_fallthrough = 0;
  /// cond.* evaluations that reused incremental rows instead of a full
  /// rebuild (the per-session ChipState paying off).
  std::uint64_t incremental_hits = 0;
};

/// Evaluates batches of queries against the table cache. Owns the base
/// config and the cache; single-threaded (the server's event loop is the
/// only caller).
class QueryEngine {
 public:
  QueryEngine(Config base, EngineOptions options);

  /// Answers every query of `batch` (one reply line per query, aligned by
  /// index, no trailing newline). Queries are grouped by fingerprint and
  /// each group is served as one batched sweep; a per-request failure
  /// becomes that request's error reply, never an exception.
  [[nodiscard]] std::vector<std::string> evaluate(
      const std::vector<PendingQuery>& batch);

  [[nodiscard]] TableCache& cache() { return cache_; }
  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  [[nodiscard]] const EngineOptions& options() const { return options_; }

  /// Drops the per-session incremental evaluators of `session` (the
  /// server calls this when a client fd closes).
  void end_session(int session);

 private:
  /// Per-fingerprint surrogate tier state. `model` is present once a fit
  /// or a disk load succeeded (it may still be uncertified — then every
  /// query falls through); the flags make each expensive step one-shot.
  struct SurrogateState {
    std::string key;  ///< canonical problem key (collision guard)
    std::unique_ptr<surrogate::SurrogateModel> model;
    bool load_attempted = false;  ///< disk probe done
    bool fit_attempted = false;   ///< fit tried after a problem build
  };

  /// One session's exact-corner evaluator for one fingerprint. The hybrid
  /// pointer the evaluator was built on is remembered so an evicted-and-
  /// rebuilt cache entry invalidates it instead of dangling.
  struct SessionEval {
    const core::HybridEvaluator* hybrid = nullptr;
    std::unique_ptr<core::ConditionEvaluator> eval;
  };

  /// Canonical mechanism rendering for `cfg`, memoized on the raw
  /// ("mechanisms", "redundancy") strings. Exact within one engine: the
  /// base config is fixed and request overrides touch whitelisted keys
  /// only, so that pair identifies the parse completely.
  [[nodiscard]] std::string canonical_mechanisms(const Config& cfg);

  /// The surrogate model for `fp` if one is available (loading the disk
  /// tier on first touch); nullptr when the tier is off or nothing is
  /// fitted yet. The returned model may be uncertified.
  [[nodiscard]] surrogate::SurrogateModel* surrogate_for(
      std::uint64_t fp, const std::string& key);

  /// Fits + certifies + persists the surrogate for `fp` (one attempt per
  /// fingerprint; a failed certification is kept so the refusal is
  /// remembered rather than refit per batch).
  void fit_surrogate(std::uint64_t fp, const std::string& key,
                     const core::ReliabilityProblem& problem);

  /// The session's ConditionEvaluator over `entry`'s tables, (re)built on
  /// first use or after the entry was evicted and rebuilt.
  [[nodiscard]] core::ConditionEvaluator& session_evaluator(
      int session, std::uint64_t fp, const CacheEntry& entry);

  Config base_;
  EngineOptions options_;
  TableCache cache_;
  EngineStats stats_;
  std::map<std::pair<std::string, std::string>, std::string> mech_memo_;
  std::map<std::uint64_t, SurrogateState> surrogates_;
  std::map<int, std::map<std::uint64_t, SessionEval>> sessions_;
};

}  // namespace obd::serve
