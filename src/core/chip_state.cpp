#include "core/chip_state.hpp"

#include "common/error.hpp"

namespace obd::core {
namespace {

// Bit-pattern equality: the dirty predicate must be exact (a ULP-sized
// write is still a write), and must not treat -0.0 == +0.0 as a no-op.
bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

ChipState::ChipState(const ReliabilityProblem& problem)
    : problem_(&problem), vdd_(problem.vdd()) {
  const auto& blocks = problem.blocks();
  const auto& design_blocks = problem.design().blocks;
  alphas_.reserve(blocks.size());
  bs_.reserve(blocks.size());
  temps_c_.reserve(blocks.size());
  activities_.reserve(blocks.size());
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    alphas_.push_back(blocks[j].alpha);
    bs_.push_back(blocks[j].b);
    temps_c_.push_back(blocks[j].temp_c);
    activities_.push_back(design_blocks[j].activity);
  }
  dirty_.assign((blocks.size() + 63) / 64, 0);
  mark_all_dirty();
}

void ChipState::set_alpha_b(std::size_t j, double alpha, double b) {
  require(j < alphas_.size(), "ChipState: block index out of range");
  require(alpha > 0.0 && b > 0.0,
          "ChipState: alpha and b must be positive");
  if (same_bits(alphas_[j], alpha) && same_bits(bs_[j], b)) return;
  alphas_[j] = alpha;
  bs_[j] = b;
  mark_dirty(j);
}

void ChipState::set_temp_c(std::size_t j, double temp_c) {
  require(j < temps_c_.size(), "ChipState: block index out of range");
  if (same_bits(temps_c_[j], temp_c)) return;
  temps_c_[j] = temp_c;
  mark_dirty(j);
}

void ChipState::set_activity(std::size_t j, double activity) {
  require(j < activities_.size(), "ChipState: block index out of range");
  if (same_bits(activities_[j], activity)) return;
  activities_[j] = activity;
  mark_dirty(j);
}

void ChipState::set_vdd(double vdd) {
  require(vdd > 0.0, "ChipState: vdd must be positive");
  if (same_bits(vdd_, vdd)) return;
  vdd_ = vdd;
  mark_all_dirty();
}

std::size_t ChipState::dirty_count() const {
  std::size_t n = 0;
  for (const std::uint64_t word : dirty_)
    n += static_cast<std::size_t>(std::popcount(word));
  return n;
}

void ChipState::mark_all_dirty() {
  const std::size_t n = alphas_.size();
  for (std::size_t w = 0; w < dirty_.size(); ++w) dirty_[w] = ~std::uint64_t{0};
  // Keep bits past block_count() clear so popcount/for_each stay exact.
  if (n % 64 != 0 && !dirty_.empty())
    dirty_.back() = (std::uint64_t{1} << (n % 64)) - 1;
  ++generation_;
}

void ChipState::clear_dirty() {
  for (auto& word : dirty_) word = 0;
}

}  // namespace obd::core
