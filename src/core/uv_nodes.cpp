#include "core/uv_nodes.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace obd::core {

double block_failure_from_nodes(const BlockParams& block,
                                const std::vector<UvNode>& nodes, double t) {
  double f = 0.0;
  for (const auto& n : nodes)
    f += n.weight * block_conditional_failure(block, t, n.u, n.v);
  return f;
}

double failure_from_nodes(const std::vector<BlockParams>& blocks,
                          const std::vector<std::vector<UvNode>>& nodes,
                          double t) {
  require(nodes.size() == blocks.size(),
          "failure_from_nodes: one node list per block required");
  // Weakest-link composition (eq. 7-8): block failures combine through
  // the survival product 1 - prod_j (1 - F_j), accumulated in log space.
  // Summing the F_j is only the first-order expansion and overestimates
  // F(t) once individual block failures stop being small.
  double log_survival = 0.0;
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    const double fj = std::clamp(
        block_failure_from_nodes(blocks[j], nodes[j], t), 0.0, 1.0);
    log_survival += std::log1p(-fj);
  }
  return std::clamp(-std::expm1(log_survival), 0.0, 1.0);
}

double failure_from_nodes(const std::vector<BlockParams>& blocks,
                          const std::vector<std::vector<UvNode>>& nodes,
                          double t, const mech::MechanismStack& stack) {
  if (stack.trivial()) return failure_from_nodes(blocks, nodes, t);
  require(nodes.size() == blocks.size(),
          "failure_from_nodes: one node list per block required");
  thread_local std::vector<double> oxide_f;
  oxide_f.resize(blocks.size());
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    oxide_f[j] = std::clamp(
        block_failure_from_nodes(blocks[j], nodes[j], t), 0.0, 1.0);
  }
  return stack.compose(oxide_f.data(), t);
}

}  // namespace obd::core
