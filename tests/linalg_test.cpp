#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"
#include "stats/rng.hpp"

namespace obd::la {
namespace {

TEST(Matrix, IdentityAndIndexing) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_EQ(i3.rows(), 3u);
  EXPECT_EQ(i3.cols(), 3u);
  EXPECT_DOUBLE_EQ(i3(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(i3.trace(), 3.0);
}

TEST(Matrix, MatrixVectorMultiply) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const Vector y = a.multiply({1.0, 1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  EXPECT_THROW(a.multiply({1.0}), obd::Error);
}

TEST(Matrix, MatrixMatrixMultiplyAndTranspose) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const Matrix ata = a.transposed().matmul(a);
  EXPECT_EQ(ata.rows(), 3u);
  EXPECT_EQ(ata.cols(), 3u);
  EXPECT_DOUBLE_EQ(ata(0, 0), 17.0);
  EXPECT_DOUBLE_EQ(ata(1, 2), 36.0);
  EXPECT_LE(ata.max_asymmetry(), 0.0);
}

TEST(Matrix, FrobeniusEqualsTraceOfSquareForSymmetric) {
  Matrix s(2, 2);
  s(0, 0) = 2; s(0, 1) = 1; s(1, 0) = 1; s(1, 1) = 3;
  const Matrix s2 = s.matmul(s);
  EXPECT_NEAR(s.frobenius_squared(), s2.trace(), 1e-12);
}

TEST(Dot, BasicsAndErrors) {
  EXPECT_DOUBLE_EQ(dot({1, 2}, {3, 4}), 11.0);
  EXPECT_DOUBLE_EQ(norm({3, 4}), 5.0);
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), obd::Error);
}

TEST(EigenSymmetric, DiagonalMatrix) {
  Matrix d(3, 3);
  d(0, 0) = 1.0; d(1, 1) = 5.0; d(2, 2) = 3.0;
  const auto eig = eigen_symmetric(d);
  EXPECT_NEAR(eig.values[0], 5.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-12);
}

TEST(EigenSymmetric, Known2x2) {
  // [[2, 1], [1, 2]]: eigenvalues 3 and 1.
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 2;
  const auto eig = eigen_symmetric(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(eig.vectors(0, 0)), std::sqrt(0.5), 1e-12);
}

TEST(EigenSymmetric, ReconstructsRandomSymmetricMatrix) {
  stats::Rng rng(42);
  const std::size_t n = 20;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  const auto eig = eigen_symmetric(a);
  // A = V diag(w) V^T reconstruction.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k)
        s += eig.vectors(i, k) * eig.values[k] * eig.vectors(j, k);
      EXPECT_NEAR(s, a(i, j), 1e-9) << "entry " << i << "," << j;
    }
  }
}

TEST(EigenSymmetric, EigenvectorsAreOrthonormal) {
  stats::Rng rng(7);
  const std::size_t n = 15;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  const auto eig = eigen_symmetric(a);
  for (std::size_t k1 = 0; k1 < n; ++k1) {
    for (std::size_t k2 = k1; k2 < n; ++k2) {
      double s = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        s += eig.vectors(i, k1) * eig.vectors(i, k2);
      EXPECT_NEAR(s, (k1 == k2) ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(EigenSymmetric, EigenvalueSumEqualsTrace) {
  stats::Rng rng(3);
  const std::size_t n = 30;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  const auto eig = eigen_symmetric(a);
  double sum = 0.0;
  for (double w : eig.values) sum += w;
  EXPECT_NEAR(sum, a.trace(), 1e-9);
}

TEST(EigenSymmetric, RejectsAsymmetric) {
  Matrix a(2, 2);
  a(0, 1) = 1.0;
  a(1, 0) = -1.0;
  EXPECT_THROW(eigen_symmetric(a), obd::Error);
}

TEST(EigenSymmetric, HandlesSizeOne) {
  Matrix a(1, 1);
  a(0, 0) = 4.2;
  const auto eig = eigen_symmetric(a);
  EXPECT_DOUBLE_EQ(eig.values[0], 4.2);
  EXPECT_DOUBLE_EQ(eig.vectors(0, 0), 1.0);
}

TEST(Cholesky, FactorsAndSolves) {
  // SPD matrix A = L0 L0^T for a known L0.
  Matrix a(3, 3);
  a(0, 0) = 4;  a(0, 1) = 2;  a(0, 2) = 2;
  a(1, 0) = 2;  a(1, 1) = 5;  a(1, 2) = 3;
  a(2, 0) = 2;  a(2, 1) = 3;  a(2, 2) = 6;
  const Matrix l = cholesky_lower(a);
  // L L^T == A.
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < 3; ++k) s += l(i, k) * l(j, k);
      EXPECT_NEAR(s, a(i, j), 1e-12);
    }
  // Solve A x = b.
  const Vector x = cholesky_solve(l, {8.0, 10.0, 11.0});
  const Vector b = a.multiply(x);
  EXPECT_NEAR(b[0], 8.0, 1e-10);
  EXPECT_NEAR(b[1], 10.0, 1e-10);
  EXPECT_NEAR(b[2], 11.0, 1e-10);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0; a(1, 0) = 2.0; a(1, 1) = 1.0;
  EXPECT_THROW(cholesky_lower(a), obd::Error);
  // Jitter can rescue near-PSD matrices.
  EXPECT_NO_THROW(cholesky_lower(a, 1.5));
}

}  // namespace
}  // namespace obd::la
