// HotSpot-compatible power-trace (.ptrace) file I/O.
//
// Format: first line lists block names; each further line carries one power
// sample [W] per block. Loaded traces are reordered to match the design's
// block order, so they feed directly into the thermal solver or the
// transient simulator.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "chip/design.hpp"
#include "power/power.hpp"

namespace obd::power {

/// Parses a HotSpot .ptrace stream against `design` (names must match its
/// blocks, any order). Returns one PowerMap per trace line.
std::vector<PowerMap> load_power_trace(std::istream& in,
                                       const chip::Design& design);

/// Parses a .ptrace file by path.
std::vector<PowerMap> load_power_trace_file(const std::string& path,
                                            const chip::Design& design);

/// Writes maps as a .ptrace (header of block names + one line per map).
void save_power_trace(std::ostream& out, const chip::Design& design,
                      const std::vector<PowerMap>& maps);

}  // namespace obd::power
