// Tests for the file-format layer: HotSpot .flp floorplans, .ptrace power
// traces, key/value configs, and hybrid-LUT serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "chip/design.hpp"
#include "chip/floorplan_io.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "core/analytic.hpp"
#include "core/hybrid.hpp"
#include "power/trace_io.hpp"

namespace obd {
namespace {

constexpr const char* kFlp =
    "# toy EV6-ish floorplan (meters)\n"
    "L2      0.016 0.008 0.000 0.000\n"
    "Icache  0.005 0.004 0.000 0.008   # flanks the core\n"
    "IntExec 0.004 0.002 0.005 0.008\n"
    "\n"
    "FPMul   0.004 0.002 0.009 0.008\n";

TEST(FloorplanIo, ParsesHotspotFormat) {
  std::istringstream in(kFlp);
  const chip::Design d = chip::load_floorplan(in, {.name = "toy"});
  ASSERT_EQ(d.blocks.size(), 4u);
  EXPECT_EQ(d.name, "toy");
  // Meters converted to millimeters; die extent = bounding box.
  EXPECT_DOUBLE_EQ(d.width, 16.0);
  EXPECT_DOUBLE_EQ(d.height, 12.0);
  EXPECT_DOUBLE_EQ(d.blocks[0].rect.width, 16.0);
  EXPECT_DOUBLE_EQ(d.blocks[1].rect.y, 8.0);
  // Kinds inferred from names.
  EXPECT_EQ(d.blocks[0].kind, chip::UnitKind::kCache);
  EXPECT_EQ(d.blocks[1].kind, chip::UnitKind::kCache);
  EXPECT_EQ(d.blocks[3].kind, chip::UnitKind::kFloatingPoint);
  // Devices assigned by density.
  EXPECT_EQ(d.blocks[0].device_count,
            static_cast<std::size_t>(16.0 * 8.0 * 3000.0));
}

TEST(FloorplanIo, RoundTripsThroughSave) {
  const chip::Design original = chip::make_ev6_design();
  std::ostringstream out;
  chip::save_floorplan(out, original);
  std::istringstream in(out.str());
  const chip::Design loaded = chip::load_floorplan(in, {.name = "C6"});
  ASSERT_EQ(loaded.blocks.size(), original.blocks.size());
  for (std::size_t j = 0; j < original.blocks.size(); ++j) {
    EXPECT_EQ(loaded.blocks[j].name, original.blocks[j].name);
    EXPECT_NEAR(loaded.blocks[j].rect.x, original.blocks[j].rect.x, 1e-9);
    EXPECT_NEAR(loaded.blocks[j].rect.area(),
                original.blocks[j].rect.area(), 1e-9);
  }
  EXPECT_NEAR(loaded.width, original.width, 1e-9);
}

TEST(FloorplanIo, KindInference) {
  using chip::UnitKind;
  EXPECT_EQ(chip::kind_from_name("L2_left"), UnitKind::kCache);
  EXPECT_EQ(chip::kind_from_name("dcache"), UnitKind::kCache);
  EXPECT_EQ(chip::kind_from_name("IntReg"), UnitKind::kRegisterFile);
  EXPECT_EQ(chip::kind_from_name("FPAdd"), UnitKind::kFloatingPoint);
  EXPECT_EQ(chip::kind_from_name("Bpred_0"), UnitKind::kPredictor);
  EXPECT_EQ(chip::kind_from_name("DTB"), UnitKind::kTlb);
  EXPECT_EQ(chip::kind_from_name("core7"), UnitKind::kCore);
  EXPECT_EQ(chip::kind_from_name("noc_router"), UnitKind::kInterconnect);
  EXPECT_EQ(chip::kind_from_name("decode"), UnitKind::kLogic);
}

TEST(FloorplanIo, RejectsMalformedInput) {
  std::istringstream missing_field("blk 0.001 0.001 0.0\n");
  EXPECT_THROW(chip::load_floorplan(missing_field), Error);
  std::istringstream bad_number("blk 0.001 abc 0.0 0.0\n");
  EXPECT_THROW(chip::load_floorplan(bad_number), Error);
  std::istringstream empty("# nothing\n");
  EXPECT_THROW(chip::load_floorplan(empty), Error);
}

TEST(PowerTraceIo, ParsesAndReorders) {
  chip::Design d;
  d.name = "t";
  d.width = 2.0;
  d.height = 1.0;
  d.blocks.push_back({"a", {0, 0, 1, 1}, 10, 1.0, chip::UnitKind::kLogic, 0.5});
  d.blocks.push_back({"b", {1, 0, 1, 1}, 10, 1.0, chip::UnitKind::kCache, 0.1});
  // Header in reversed order relative to the design.
  std::istringstream in("b a\n1.5 2.5\n0.5 3.5\n");
  const auto maps = power::load_power_trace(in, d);
  ASSERT_EQ(maps.size(), 2u);
  EXPECT_DOUBLE_EQ(maps[0].block_watts[0], 2.5);  // column 'a'
  EXPECT_DOUBLE_EQ(maps[0].block_watts[1], 1.5);  // column 'b'
  EXPECT_DOUBLE_EQ(maps[1].block_watts[0], 3.5);
}

TEST(PowerTraceIo, RoundTripsThroughSave) {
  chip::Design d;
  d.name = "t";
  d.width = 2.0;
  d.height = 1.0;
  d.blocks.push_back({"x", {0, 0, 1, 1}, 10, 1.0, chip::UnitKind::kLogic, 0.5});
  d.blocks.push_back({"y", {1, 0, 1, 1}, 10, 1.0, chip::UnitKind::kCache, 0.1});
  std::vector<power::PowerMap> maps(3);
  for (std::size_t i = 0; i < 3; ++i)
    maps[i].block_watts = {1.0 + static_cast<double>(i), 0.25};
  std::ostringstream out;
  power::save_power_trace(out, d, maps);
  std::istringstream in(out.str());
  const auto loaded = power::load_power_trace(in, d);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded[2].block_watts[0], 3.0);
}

TEST(PowerTraceIo, RejectsBadTraces) {
  chip::Design d;
  d.name = "t";
  d.width = 1.0;
  d.height = 1.0;
  d.blocks.push_back({"a", {0, 0, 1, 1}, 10, 1.0, chip::UnitKind::kLogic, 0.5});
  std::istringstream unknown("zz\n1.0\n");
  EXPECT_THROW(power::load_power_trace(unknown, d), Error);
  std::istringstream negative("a\n-1.0\n");
  EXPECT_THROW(power::load_power_trace(negative, d), Error);
  std::istringstream no_samples("a\n");
  EXPECT_THROW(power::load_power_trace(no_samples, d), Error);
}

TEST(ConfigFile, ParsesKeysCommentsOverrides) {
  std::istringstream in(
      "# comment\n"
      "design = ev6\n"
      "vdd 1.25\n"
      "mc_chips = 200   # inline comment\n"
      "targets = 1e-6 1e-5\n"
      "verbose = yes\n"
      "design = c3\n");  // later assignment wins
  const Config cfg = Config::parse(in);
  EXPECT_EQ(cfg.get_string("design"), "c3");
  EXPECT_DOUBLE_EQ(cfg.get_double("vdd"), 1.25);
  EXPECT_EQ(cfg.get_int("mc_chips"), 200);
  EXPECT_TRUE(cfg.get_bool("verbose", false));
  const auto targets = cfg.get_doubles("targets", {});
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_DOUBLE_EQ(targets[0], 1e-6);
  EXPECT_FALSE(cfg.has("nope"));
  EXPECT_DOUBLE_EQ(cfg.get_double("nope", 7.0), 7.0);
  EXPECT_EQ(cfg.keys().size(), 5u);
}

TEST(ConfigFile, ErrorsOnBadValues) {
  Config cfg;
  cfg.set("x", "abc");
  EXPECT_THROW(cfg.get_double("x"), Error);
  EXPECT_THROW(cfg.get_int("x"), Error);
  EXPECT_THROW(cfg.get_bool("x", true), Error);
  EXPECT_THROW(cfg.get_string("missing"), Error);
  std::istringstream bad("keyonly\n");
  EXPECT_THROW(Config::parse(bad), Error);
}

TEST(ConfigFile, RejectsTrailingCharactersInDoubleLists) {
  // Regression: get_doubles used bare std::stod, which parses "1.5abc" as
  // 1.5 and silently drops the garbage. Every token must consume fully.
  Config cfg;
  cfg.set("targets", "1e-6 1.5abc");
  try {
    (void)cfg.get_doubles("targets", {});
    FAIL() << "expected a config error for '1.5abc'";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
    EXPECT_NE(std::string(e.what()).find("1.5abc"), std::string::npos);
  }
  // The scalar getter already rejected trailing garbage; keep it pinned.
  cfg.set("vdd", "1.2volts");
  EXPECT_THROW((void)cfg.get_double("vdd"), Error);
}

TEST(ConfigFile, RejectsNonFiniteDoubles) {
  // std::stod happily parses "nan" and "inf"; a reliability target or
  // supply voltage must be finite, and the error must name the key.
  for (const char* raw : {"nan", "inf", "-inf", "NaN", "Infinity"}) {
    Config cfg;
    cfg.set("vdd", raw);
    try {
      (void)cfg.get_double("vdd");
      FAIL() << "expected a config error for '" << raw << "'";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kConfig) << raw;
      EXPECT_NE(std::string(e.what()).find("vdd"), std::string::npos) << raw;
    }
  }
  Config cfg;
  cfg.set("targets", "1e-6 inf 1e-4");
  try {
    (void)cfg.get_doubles("targets", {});
    FAIL() << "expected a config error for a non-finite list entry";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
    EXPECT_NE(std::string(e.what()).find("targets"), std::string::npos);
  }
}

TEST(HybridSerialization, SaveLoadRoundTrip) {
  const chip::Design design = chip::make_synthetic_design(
      "S", {.devices = 20000, .block_count = 5, .die_width = 5.0,
            .die_height = 5.0, .seed = 21});
  const core::AnalyticReliabilityModel model;
  const std::vector<double> temps{90.0, 75.0, 60.0, 82.0, 70.0};
  core::ProblemOptions opts;
  opts.grid_cells_per_side = 10;
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, temps, 1.2, opts);

  const core::HybridEvaluator original(problem);
  std::ostringstream out;
  original.save(out);
  std::istringstream in(out.str());
  const auto loaded = core::HybridEvaluator::load(in, problem);
  for (double t : {1e7, 1e8, 1e9}) {
    EXPECT_NEAR(loaded.failure_probability(t),
                original.failure_probability(t),
                1e-12 * std::max(1e-30, original.failure_probability(t)))
        << "t=" << t;
  }
}

TEST(HybridSerialization, LoadValidatesProblem) {
  const chip::Design design = chip::make_synthetic_design(
      "S", {.devices = 20000, .block_count = 5, .die_width = 5.0,
            .die_height = 5.0, .seed = 21});
  const core::AnalyticReliabilityModel model;
  const std::vector<double> temps{90.0, 75.0, 60.0, 82.0, 70.0};
  core::ProblemOptions opts;
  opts.grid_cells_per_side = 10;
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, temps, 1.2, opts);
  const core::HybridEvaluator original(problem);
  std::ostringstream out;
  original.save(out);

  // A different design must be rejected.
  const chip::Design other = chip::make_benchmark(1);
  const auto other_problem = core::ReliabilityProblem::build(
      other, var::VariationBudget{}, model,
      std::vector<double>(other.blocks.size(), 80.0), 1.2, opts);
  std::istringstream in(out.str());
  EXPECT_THROW(core::HybridEvaluator::load(in, other_problem), Error);

  // Garbage input must be rejected.
  std::istringstream garbage("not-a-lut 1\n");
  EXPECT_THROW(core::HybridEvaluator::load(garbage, problem), Error);
}

}  // namespace
}  // namespace obd
