#include "core/sensitivity.hpp"

#include "common/error.hpp"
#include "core/duty_cycle.hpp"
#include "core/lifetime.hpp"

namespace obd::core {
namespace {

// Lifetime under replacement per-block Weibull parameters: a single
// "phase" covering the whole lifetime reuses the duty-cycle machinery.
double lifetime_with(const ReliabilityProblem& problem,
                     const std::vector<double>& alphas,
                     const std::vector<double>& bs, double target,
                     const AnalyticOptions& options) {
  WorkloadPhase phase;
  phase.name = "point";
  phase.fraction = 1.0;
  phase.alphas = alphas;
  phase.bs = bs;
  return DutyCycleAnalyzer(problem, {phase}, options).lifetime_at(target);
}

}  // namespace

std::vector<BlockSensitivity> temperature_sensitivity(
    const ReliabilityProblem& problem, const DeviceReliabilityModel& model,
    double target, double delta_c, const AnalyticOptions& options) {
  require(delta_c > 0.0, "temperature_sensitivity: delta must be positive");
  const auto& blocks = problem.blocks();
  const double vdd = problem.vdd();

  std::vector<double> alphas;
  std::vector<double> bs;
  for (const auto& b : blocks) {
    alphas.push_back(b.alpha);
    bs.push_back(b.b);
  }
  const AnalyticAnalyzer base(problem, options);
  const double t0 = base.lifetime_at(target);
  const double f0 = base.failure_probability(t0);

  std::vector<BlockSensitivity> out;
  out.reserve(blocks.size());
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    auto a_lo = alphas;
    auto b_lo = bs;
    a_lo[j] = model.alpha(blocks[j].temp_c - delta_c, vdd);
    b_lo[j] = model.b(blocks[j].temp_c - delta_c, vdd);
    auto a_hi = alphas;
    auto b_hi = bs;
    a_hi[j] = model.alpha(blocks[j].temp_c + delta_c, vdd);
    b_hi[j] = model.b(blocks[j].temp_c + delta_c, vdd);

    const double t_cool = lifetime_with(problem, a_lo, b_lo, target, options);
    const double t_hot = lifetime_with(problem, a_hi, b_hi, target, options);

    BlockSensitivity s;
    s.name = blocks[j].name;
    s.temp_c = blocks[j].temp_c;
    s.lifetime_per_degree = (t_cool - t_hot) / (2.0 * delta_c * t0);
    s.failure_share = base.block_failure(j, t0) / f0;
    out.push_back(std::move(s));
  }
  return out;
}

double vdd_sensitivity(const ReliabilityProblem& problem,
                       const DeviceReliabilityModel& model, double target,
                       double delta_v, const AnalyticOptions& options) {
  require(delta_v > 0.0, "vdd_sensitivity: delta must be positive");
  const auto& blocks = problem.blocks();
  const AnalyticAnalyzer base(problem, options);
  const double t0 = base.lifetime_at(target);

  auto params_at = [&](double vdd) {
    std::pair<std::vector<double>, std::vector<double>> p;
    for (const auto& b : blocks) {
      p.first.push_back(model.alpha(b.temp_c, vdd));
      p.second.push_back(model.b(b.temp_c, vdd));
    }
    return p;
  };
  const auto [a_hi, b_hi] = params_at(problem.vdd() + delta_v);
  const auto [a_lo, b_lo] = params_at(problem.vdd() - delta_v);
  const double t_hi = lifetime_with(problem, a_hi, b_hi, target, options);
  const double t_lo = lifetime_with(problem, a_lo, b_lo, target, options);
  // Relative lifetime change per +10 mV.
  return (t_hi - t_lo) / (2.0 * delta_v) * 0.01 / t0;
}

}  // namespace obd::core
