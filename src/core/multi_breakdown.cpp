#include "core/multi_breakdown.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/special.hpp"

namespace obd::core {

double breakdown_intensity(double t, double alpha, double b, double thickness,
                           double area) {
  require(t >= 0.0, "breakdown_intensity: t must be non-negative");
  require(alpha > 0.0 && b > 0.0 && thickness > 0.0 && area > 0.0,
          "breakdown_intensity: parameters must be positive");
  if (t == 0.0) return 0.0;
  return area * std::pow(t / alpha, b * thickness);
}

double kth_breakdown_cdf(double t, double alpha, double b, double thickness,
                         double area, std::size_t k) {
  require(k >= 1, "kth_breakdown_cdf: k must be >= 1");
  const double h = breakdown_intensity(t, alpha, b, thickness, area);
  if (h == 0.0) return 0.0;
  if (k == 1) return -std::expm1(-h);  // exact Weibull special case
  return stats::gamma_p(static_cast<double>(k), h);
}

double kth_breakdown_quantile(double p, double alpha, double b,
                              double thickness, double area, std::size_t k) {
  require(p > 0.0 && p < 1.0, "kth_breakdown_quantile: p must be in (0, 1)");
  require(k >= 1, "kth_breakdown_quantile: k must be >= 1");
  require(alpha > 0.0 && b > 0.0 && thickness > 0.0 && area > 0.0,
          "kth_breakdown_quantile: parameters must be positive");
  const double h_req =
      (k == 1) ? -std::log1p(-p)
               : stats::gamma_p_inverse(static_cast<double>(k), p);
  return alpha * std::pow(h_req / area, 1.0 / (b * thickness));
}

double expected_breakdowns(double t, double alpha, double b, double thickness,
                           double area) {
  return breakdown_intensity(t, alpha, b, thickness, area);
}

}  // namespace obd::core
