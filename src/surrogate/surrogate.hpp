// Certified Chebyshev surrogate for F(t) under operating-condition
// deltas (ROADMAP item 4; the SMART-paper surrogate layer).
//
// One SurrogateModel is fit per (problem fingerprint, domain box): a
// set of 4-D Chebyshev tensor interpolants over
//     (ln t, dT, vdd, ln activity scale)
// where dT is a uniform block-temperature offset and the activity axis
// scales every block's base activity (log-space, because t50 activity
// acceleration is a power law — queries still pass plain act). Each fit target is y = ln(H_c) for
// a *channel* hazard H_c = -(channel log-survival), taken from the engine
// before its -expm1 conversion so it stays smooth across the many decades
// F spans and keeps resolving after F rounds to 1.0 (where any F-derived
// target plateaus and its kink destroys spectral convergence).
//
// Why one tensor per channel: for redundancy-free stacks the chip
// log-survival is an exact sum of an oxide term and one term per aging
// mechanism. Each term is smooth in its own log space, but ln of their
// SUM has a moving log-sum-exp elbow wherever a fast-rising lognormal
// aging hazard (slope ~ z/sigma in ln t) overtakes the gentle oxide
// hazard (slope ~ b) — a feature of width ~ 1/|slope difference| that a
// global polynomial cannot resolve at any practical degree. Fitting the
// channels separately and summing the hazards at evaluation time
// sidesteps the elbow entirely. The oxide channel's activity axis
// collapses to one node (activity reaches oxide alpha/b only through the
// problem build, not the corner path); redundancy stacks are not
// channel-separable, so they fit one joint tensor and lean on
// certification to refuse when the elbow bites.
//
// The fit reference is the engine's own exact corner path
// (core::ConditionEvaluator) over a *fit-resolution* hybrid
// table: the (gamma, b) box is narrowed to exactly what the domain needs
// and refilled densely (fit_n_gamma x fit_n_b), so the piecewise-bilinear
// kinks of the serve-resolution tables never cap the fit accuracy.
// A relative error of e in the hazard H bounds the relative error in
// F = 1 - exp(-H) by the same e, so certifying F directly is the
// stricter check and the one performed.
//
// Certification is non-negotiable: after fitting, the model is probed on
// a deterministic held-out grid (inter-node midpoints per axis, the
// worst case for a Chebyshev fit) plus a low-discrepancy Weyl sequence of
// interior points (no RNG — refits are reproducible), against the same
// exact reference. The resulting SurrogateCertificate records the
// max/mean relative error; consumers must refuse to answer (fall through
// to the exact engine) whenever a query leaves the domain box or the
// certificate exceeds its tolerance. certify() is re-runnable: given the
// same problem and options it reproduces the stored certificate exactly,
// which the surrogate bench uses to re-verify a fitted model in its exit
// code.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/condition_eval.hpp"
#include "core/device_model.hpp"
#include "core/problem.hpp"
#include "surrogate/chebyshev.hpp"

namespace obd::surrogate {

/// The certified query box. Queries outside it must fall through to the
/// exact engine.
struct SurrogateDomain {
  double dt_lo = 0.0, dt_hi = 0.0;    ///< uniform temperature offset [C]
  double vdd_lo = 0.0, vdd_hi = 0.0;  ///< supply [V]
  double act_lo = 0.0, act_hi = 0.0;  ///< activity scale
  double t_lo = 0.0, t_hi = 0.0;      ///< query time [s]

  [[nodiscard]] bool contains(double dt, double vdd, double act,
                              double t) const {
    return dt >= dt_lo && dt <= dt_hi && vdd >= vdd_lo && vdd <= vdd_hi &&
           act >= act_lo && act <= act_hi && t >= t_lo && t <= t_hi;
  }
};

/// Post-fit error audit against the exact engine.
struct SurrogateCertificate {
  double max_rel_error = 0.0;   ///< max |S-F|/max(|F|, 1e-12) over probes
  double mean_rel_error = 0.0;  ///< mean of the same
  std::size_t probes = 0;       ///< held-out grid + low-discrepancy points
  double tol = 0.0;             ///< configured surrogate_tol
  bool certified = false;       ///< max_rel_error <= tol
};

struct SurrogateOptions {
  double dt_c = 12.0;      ///< temperature-offset half-width [C]
  double dvdd = 0.08;      ///< supply half-width [V] around the problem vdd
  double act_lo = 0.5;     ///< activity-scale box
  double act_hi = 1.5;
  double t_lo_years = 0.5;  ///< query-time box [years]
  double t_hi_years = 40.0;
  std::size_t n_t = 15;        ///< CGL nodes along ln t (oxide channel)
  std::size_t n_t_aging = 25;  ///< ln-t nodes for aging-mechanism channels
  std::size_t n_dt = 13;       ///< nodes along dT
  std::size_t n_vdd = 11;      ///< nodes along vdd
  std::size_t n_act = 9;  ///< activity nodes (aging channels; oxide uses 1)
  double tol = 1e-4;       ///< certification bound on max relative error
  /// Fit-reference hybrid-table resolution over the narrowed (gamma, b)
  /// box. Denser than the serve tables on a far smaller box, so the
  /// reference is effectively kink-free at the certificate's scale.
  std::size_t fit_n_gamma = 256;
  std::size_t fit_n_b = 128;
  std::size_t probe_points = 512;  ///< low-discrepancy interior probes
  core::AnalyticModelParams model{};  ///< (T, vdd) -> (alpha, b) mapping
};

class SurrogateModel {
 public:
  SurrogateModel() = default;

  /// Fits and certifies a surrogate for `problem`. The vdd axis is
  /// centered on problem.vdd(). Fit cost is dominated by the
  /// fit-resolution table build (fit_n_gamma * fit_n_b analytic
  /// integrations per block — a few serve-resolution cold builds).
  static SurrogateModel fit(const core::ReliabilityProblem& problem,
                            const SurrogateOptions& options);

  [[nodiscard]] bool in_domain(double dt, double vdd, double act,
                               double t) const {
    return domain_.contains(dt, vdd, act, t);
  }

  /// F(t) at (dT, vdd, activity scale). The caller must have checked
  /// in_domain() and certificate().certified — evaluate never refuses on
  /// its own (the refusal policy lives with the tier logic).
  [[nodiscard]] double evaluate(double dt, double vdd, double act,
                                double t) const;

  /// Corner-sweep fast path: contract the (dT, vdd, act) axes of every
  /// channel once, then evaluate many time stamps at O(sum of n_t) each.
  /// The plan is the channel pencils back to back (channel c starts at
  /// the sum of the preceding channels' axis-0 node counts).
  [[nodiscard]] std::vector<double> plan_corner(double dt, double vdd,
                                                double act) const;
  [[nodiscard]] double evaluate_at(const std::vector<double>& pencil,
                                   double t) const;

  [[nodiscard]] const SurrogateCertificate& certificate() const {
    return cert_;
  }
  [[nodiscard]] const SurrogateDomain& domain() const { return domain_; }
  /// The fitted channel tensors: [oxide, one per aging mechanism] for
  /// redundancy-free stacks, a single joint tensor otherwise.
  [[nodiscard]] const std::vector<ChebTensor>& channels() const {
    return channels_;
  }
  [[nodiscard]] double tol() const { return cert_.tol; }

  /// Versioned text serialization (exact %.17g round trip). The identity
  /// binding — which problem this model certifies — is the caller's: the
  /// serve tier stores the canonical problem key inside its CRC frame.
  [[nodiscard]] std::string save_text() const;
  /// Parses save_text() output; nullopt on any structural mismatch (a
  /// CRC-valid file from an older version is a refit, not a crash).
  static std::optional<SurrogateModel> load_text(const std::string& text);

 private:
  std::vector<ChebTensor> channels_;
  SurrogateDomain domain_;
  SurrogateCertificate cert_;
};

/// Re-runs the deterministic certification probes of `model` against the
/// exact corner evaluator `ref`. With the same reference the result is
/// bit-identical to the certificate stored at fit time — the bench's
/// re-verification gate.
[[nodiscard]] SurrogateCertificate certify(const SurrogateModel& model,
                                           core::ConditionEvaluator& ref,
                                           std::size_t probe_points,
                                           double tol);

/// The narrowed fit-reference table options fit() uses for `problem` over
/// the domain implied by `options` (exposed so the bench can rebuild the
/// identical reference for re-verification).
[[nodiscard]] core::HybridOptions fit_reference_options(
    const core::ReliabilityProblem& problem, const SurrogateOptions& options);

}  // namespace obd::surrogate
