// Incremental recomputation engine: ChipState dirty tracking, the
// IncrementalEvaluator's bit-identity contract, the Monte Carlo
// failure_probabilities_with cache, the step arena, and the cached
// canonical/fingerprint renderings.
//
// The load-bearing property here is bit-identity: any random sequence of
// partial updates followed by an evaluation must produce exactly the bits
// a from-scratch rebuild produces, at every SIMD dispatch level and
// thread count. Tolerances would hide ordering bugs (a reduction that
// folds dirty rows first, say), so every comparison below is on bit
// patterns.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "chip/design.hpp"
#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/chip_state.hpp"
#include "core/device_model.hpp"
#include "core/hybrid.hpp"
#include "core/incremental.hpp"
#include "core/montecarlo.hpp"
#include "core/problem.hpp"
#include "mech/spec.hpp"
#include "simd/dispatch.hpp"
#include "stats/rng.hpp"
#include "variation/model.hpp"

namespace obd {
namespace {

constexpr double kYear = 365.25 * 24.0 * 3600.0;

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// Restores the process-wide dispatch level and pool width on scope exit so
// the sweep over (level, threads) pairs cannot leak into other tests.
struct GlobalsGuard {
  simd::Level saved = simd::active_level();
  ~GlobalsGuard() {
    simd::set_level(saved);
    par::set_threads(0);
  }
};

// One synthetic design built twice: the seed-equivalent oxide-only spec
// (trivial stack — the hot path) and all four mechanisms (non-trivial
// stack — rows carry aging terms that depend on the operating
// conditions). 70 blocks so the dirty bitmask spans two words and has a
// ragged tail.
class IncrementalFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_synthetic_design(
        "INC", {.devices = 30000, .block_count = 70, .die_width = 8.0,
                .die_height = 8.0, .seed = 41}));
    model_ = new core::AnalyticReliabilityModel();
    temps_ = new std::vector<double>(design_->blocks.size());
    for (std::size_t j = 0; j < temps_->size(); ++j)
      (*temps_)[j] = 55.0 + 40.0 * design_->blocks[j].activity;
    core::ProblemOptions opts;
    opts.grid_cells_per_side = 10;
    oxide_ = new core::ReliabilityProblem(core::ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_, *temps_, 1.2, opts));
    core::ProblemOptions all_opts = opts;
    all_opts.mechanisms.nbti = true;
    all_opts.mechanisms.em = true;
    all_opts.mechanisms.hci = true;
    all_ = new core::ReliabilityProblem(core::ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_, *temps_, 1.2, all_opts));
    core::HybridOptions hopts;
    hopts.n_gamma = 40;
    hopts.n_b = 40;
    lut_oxide_ = new core::HybridEvaluator(*oxide_, hopts);
    lut_all_ = new core::HybridEvaluator(*all_, hopts);
  }
  static void TearDownTestSuite() {
    delete lut_all_;
    delete lut_oxide_;
    delete all_;
    delete oxide_;
    delete temps_;
    delete model_;
    delete design_;
  }

  static chip::Design* design_;
  static core::AnalyticReliabilityModel* model_;
  static std::vector<double>* temps_;
  static core::ReliabilityProblem* oxide_;
  static core::ReliabilityProblem* all_;
  static core::HybridEvaluator* lut_oxide_;
  static core::HybridEvaluator* lut_all_;
};

chip::Design* IncrementalFixture::design_ = nullptr;
core::AnalyticReliabilityModel* IncrementalFixture::model_ = nullptr;
std::vector<double>* IncrementalFixture::temps_ = nullptr;
core::ReliabilityProblem* IncrementalFixture::oxide_ = nullptr;
core::ReliabilityProblem* IncrementalFixture::all_ = nullptr;
core::HybridEvaluator* IncrementalFixture::lut_oxide_ = nullptr;
core::HybridEvaluator* IncrementalFixture::lut_all_ = nullptr;

// ------------------------------------------------------------------------
// ChipState dirty tracking

TEST_F(IncrementalFixture, StateSnapshotsProblemAndStartsAllDirty) {
  core::ChipState state(*oxide_);
  const auto& blocks = oxide_->blocks();
  ASSERT_EQ(state.block_count(), blocks.size());
  EXPECT_EQ(state.dirty_count(), blocks.size());
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    EXPECT_TRUE(same_bits(state.alphas()[j], blocks[j].alpha));
    EXPECT_TRUE(same_bits(state.bs()[j], blocks[j].b));
    EXPECT_TRUE(state.dirty(j));
  }
  EXPECT_EQ(state.vdd(), 1.2);
}

TEST_F(IncrementalFixture, SettersAreBitComparingNoOps) {
  core::ChipState state(*oxide_);
  state.clear_dirty();
  const std::uint64_t gen = state.generation();

  // Writing back the stored bits: no dirty bit, no generation bump.
  state.set_alpha_b(3, state.alphas()[3], state.bs()[3]);
  state.set_temp_c(3, state.temps_c()[3]);
  state.set_activity(3, state.activities()[3]);
  state.set_vdd(state.vdd());
  EXPECT_EQ(state.dirty_count(), 0u);
  EXPECT_EQ(state.generation(), gen);

  // A real change dirties exactly that block and bumps the generation.
  state.set_alpha_b(3, state.alphas()[3] * 1.5, state.bs()[3]);
  EXPECT_EQ(state.dirty_count(), 1u);
  EXPECT_TRUE(state.dirty(3));
  EXPECT_GT(state.generation(), gen);
}

TEST_F(IncrementalFixture, VddChangeDirtiesEveryBlock) {
  core::ChipState state(*all_);
  state.clear_dirty();
  state.set_vdd(1.15);
  EXPECT_EQ(state.dirty_count(), state.block_count());
}

TEST_F(IncrementalFixture, TailWordMaskingKeepsDirtyCountExact) {
  // 70 blocks = one full word + a 6-bit tail; mark_all_dirty must not set
  // the 58 padding bits.
  core::ChipState state(*oxide_);
  state.clear_dirty();
  state.mark_all_dirty();
  EXPECT_EQ(state.dirty_count(), 70u);
}

TEST_F(IncrementalFixture, ForEachDirtyVisitsAscendingAcrossWords) {
  core::ChipState state(*oxide_);
  state.clear_dirty();
  for (std::size_t j : {std::size_t{69}, std::size_t{3}, std::size_t{64}})
    state.set_alpha_b(j, state.alphas()[j] * 1.01, state.bs()[j]);
  std::vector<std::size_t> visited;
  state.for_each_dirty([&](std::size_t j) { visited.push_back(j); });
  EXPECT_EQ(visited, (std::vector<std::size_t>{3, 64, 69}));
}

TEST_F(IncrementalFixture, SettersValidate) {
  core::ChipState state(*oxide_);
  EXPECT_THROW(state.set_alpha_b(0, -1.0, 0.5), Error);
  EXPECT_THROW(state.set_alpha_b(0, 1.0e14, 0.0), Error);
  EXPECT_THROW(state.set_alpha_b(state.block_count(), 1.0e14, 0.5), Error);
  EXPECT_THROW(state.set_vdd(0.0), Error);
}

// ------------------------------------------------------------------------
// IncrementalEvaluator bit-identity

TEST_F(IncrementalFixture, ColdEvaluationMatchesFromScratch) {
  core::ChipState state(*oxide_);
  core::IncrementalEvaluator inc(*lut_oxide_);
  const double t = 8.0 * kYear;
  const double f = inc.evaluate(state, t);
  EXPECT_TRUE(same_bits(f, lut_oxide_->failure_probability(t)));
  EXPECT_EQ(inc.stats().full_rebuilds, 1u);
  EXPECT_EQ(state.dirty_count(), 0u);
}

TEST_F(IncrementalFixture, RejectsStateFromAnotherProblem) {
  core::ChipState state(*all_);
  core::IncrementalEvaluator inc(*lut_oxide_);
  EXPECT_THROW((void)inc.evaluate(state, kYear), Error);
}

TEST_F(IncrementalFixture, PartialUpdateRefreshesOnlyDirtyRows) {
  core::ChipState state(*oxide_);
  core::IncrementalEvaluator inc(*lut_oxide_);
  const double t = 8.0 * kYear;
  (void)inc.evaluate(state, t);
  state.set_alpha_b(5, state.alphas()[5] * 0.9, state.bs()[5]);
  state.set_alpha_b(66, state.alphas()[66] * 1.1, state.bs()[66]);
  (void)inc.evaluate(state, t);
  EXPECT_EQ(inc.stats().evaluations, 2u);
  EXPECT_EQ(inc.stats().full_rebuilds, 1u);
  EXPECT_EQ(inc.stats().last_dirty, 2u);
}

TEST_F(IncrementalFixture, ChangedTimeForcesFullRebuild) {
  core::ChipState state(*oxide_);
  core::IncrementalEvaluator inc(*lut_oxide_);
  (void)inc.evaluate(state, 8.0 * kYear);
  (void)inc.evaluate(state, 9.0 * kYear);
  EXPECT_EQ(inc.stats().full_rebuilds, 2u);
}

TEST_F(IncrementalFixture, SwitchingStatesForcesFullRebuild) {
  core::ChipState a(*oxide_), b(*oxide_);
  core::IncrementalEvaluator inc(*lut_oxide_);
  const double t = 8.0 * kYear;
  const double fa = inc.evaluate(a, t);
  b.set_alpha_b(0, b.alphas()[0] * 2.0, b.bs()[0]);
  (void)inc.evaluate(b, t);
  EXPECT_EQ(inc.stats().full_rebuilds, 2u);
  // Back to a (unchanged): another object switch, another full rebuild,
  // and the result is reproduced exactly.
  EXPECT_TRUE(same_bits(inc.evaluate(a, t), fa));
}

// The tentpole property: any random sequence of partial updates followed
// by an evaluation is bit-identical to a from-scratch rebuild — on the
// trivial and non-trivial stacks, at every available SIMD level, with a
// 1-wide and a 7-wide pool.
TEST_F(IncrementalFixture, RandomUpdateSequencesBitIdenticalToRebuild) {
  GlobalsGuard guard;
  std::vector<simd::Level> levels{simd::Level::kScalar};
  if (simd::can_use_avx2()) levels.push_back(simd::Level::kAvx2);
  if (simd::can_use_avx512()) levels.push_back(simd::Level::kAvx512);

  for (const simd::Level level : levels) {
    simd::set_level(level);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{7}}) {
      par::set_threads(threads);
      for (const bool trivial : {true, false}) {
        const core::ReliabilityProblem& problem = trivial ? *oxide_ : *all_;
        const core::HybridEvaluator& lut = trivial ? *lut_oxide_ : *lut_all_;
        const std::size_t n = problem.blocks().size();

        core::ChipState state(problem);
        core::IncrementalEvaluator inc(lut);
        stats::Rng rng(7000 + 17 * static_cast<std::uint64_t>(level) +
                       threads + (trivial ? 0 : 1));
        double t = 8.0 * kYear;
        for (int step = 0; step < 40; ++step) {
          const std::size_t k = rng.below(6);
          for (std::size_t u = 0; u < k; ++u) {
            const std::size_t j = rng.below(n);
            switch (rng.below(4)) {
              case 0:
                state.set_alpha_b(j,
                                  state.alphas()[j] * rng.uniform(0.7, 1.4),
                                  state.bs()[j]);
                break;
              case 1:
                state.set_alpha_b(
                    j, state.alphas()[j],
                    std::clamp(state.bs()[j] * rng.uniform(0.9, 1.1), 0.31,
                               0.99));
                break;
              case 2:
                state.set_temp_c(j, rng.uniform(50.0, 110.0));
                break;
              default:
                state.set_activity(j, rng.uniform(0.05, 0.95));
                break;
            }
          }
          if (step % 11 == 10) state.set_vdd(rng.uniform(1.1, 1.3));
          if (step % 7 == 6) t = rng.uniform(2.0, 12.0) * kYear;

          const double f_inc = inc.evaluate(state, t);

          // Reference 1: the from-scratch hybrid sweep on the same
          // parameters.
          if (trivial) {
            const std::vector<double> alphas(state.alphas().begin(),
                                             state.alphas().end());
            const std::vector<double> bs(state.bs().begin(),
                                         state.bs().end());
            ASSERT_TRUE(
                same_bits(f_inc, lut.failure_probability_with(t, alphas, bs)))
                << "trivial step " << step << " level " << static_cast<int>(level)
                << " threads " << threads;
          } else {
            std::vector<double> oxide_f(n);
            std::vector<mech::OperatingConditions> conditions(n);
            for (std::size_t j = 0; j < n; ++j) {
              oxide_f[j] = std::min(
                  1.0, lut.block_failure(
                           j, std::log(t / state.alphas()[j]), state.bs()[j]));
              conditions[j] = state.conditions(j);
            }
            ASSERT_TRUE(same_bits(
                f_inc, problem.mechanisms().compose_under(oxide_f.data(), t,
                                                          conditions)))
                << "non-trivial step " << step << " level "
                << static_cast<int>(level) << " threads " << threads;
          }

          // Reference 2: a fresh evaluator over the same state (all rows
          // rebuilt) agrees bit for bit.
          core::ChipState rebuilt(problem);
          for (std::size_t j = 0; j < n; ++j) {
            rebuilt.set_alpha_b(j, state.alphas()[j], state.bs()[j]);
            rebuilt.set_temp_c(j, state.temps_c()[j]);
            rebuilt.set_activity(j, state.activities()[j]);
          }
          rebuilt.set_vdd(state.vdd());
          core::IncrementalEvaluator fresh(lut);
          ASSERT_TRUE(same_bits(f_inc, fresh.evaluate(rebuilt, t)))
              << "rebuild step " << step;
        }
        EXPECT_GT(inc.stats().evaluations, 0u);
        EXPECT_GT(inc.stats().full_rebuilds, 0u);  // t changes force some
      }
    }
  }
}

// ------------------------------------------------------------------------
// Monte Carlo failure_probabilities_with

class MonteCarloWithFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_synthetic_design(
        "MCW", {.devices = 20000, .block_count = 6, .die_width = 5.0,
                .die_height = 5.0, .seed = 13}));
    model_ = new core::AnalyticReliabilityModel();
    temps_ = new std::vector<double>{90.0, 72.0, 60.0, 84.0, 66.0, 78.0};
    core::ProblemOptions opts;
    opts.grid_cells_per_side = 10;
    problem_ = new core::ReliabilityProblem(core::ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_, *temps_, 1.2, opts));
  }
  static void TearDownTestSuite() {
    delete problem_;
    delete temps_;
    delete model_;
    delete design_;
  }
  static core::MonteCarloOptions mc_options() {
    core::MonteCarloOptions mopts;
    mopts.chip_samples = 24;
    mopts.sampling = core::DeviceSampling::kBinned;
    mopts.seed = 5;
    return mopts;
  }

  static chip::Design* design_;
  static core::AnalyticReliabilityModel* model_;
  static std::vector<double>* temps_;
  static core::ReliabilityProblem* problem_;
};

chip::Design* MonteCarloWithFixture::design_ = nullptr;
core::AnalyticReliabilityModel* MonteCarloWithFixture::model_ = nullptr;
std::vector<double>* MonteCarloWithFixture::temps_ = nullptr;
core::ReliabilityProblem* MonteCarloWithFixture::problem_ = nullptr;

TEST_F(MonteCarloWithFixture, AtBlockParamsMatchesPlainSweep) {
  const core::MonteCarloAnalyzer mc(*problem_, mc_options());
  const std::size_t n = problem_->blocks().size();
  std::vector<double> alphas(n), bs(n);
  for (std::size_t j = 0; j < n; ++j) {
    alphas[j] = problem_->blocks()[j].alpha;
    bs[j] = problem_->blocks()[j].b;
  }
  const std::vector<double> ts{4.0 * kYear, 8.0 * kYear, 12.0 * kYear};
  const std::vector<double> plain = mc.failure_probabilities(ts);
  const std::vector<double> with = mc.failure_probabilities_with(ts, alphas, bs);
  ASSERT_EQ(with.size(), plain.size());
  for (std::size_t i = 0; i < with.size(); ++i)
    EXPECT_TRUE(same_bits(with[i], plain[i])) << "i=" << i;
  EXPECT_EQ(mc.with_rows_refreshed(), n);  // cold call fills every row
}

TEST_F(MonteCarloWithFixture, PartialUpdateRefreshesOnlyChangedRows) {
  const core::MonteCarloAnalyzer mc(*problem_, mc_options());
  const std::size_t n = problem_->blocks().size();
  std::vector<double> alphas(n), bs(n);
  for (std::size_t j = 0; j < n; ++j) {
    alphas[j] = problem_->blocks()[j].alpha;
    bs[j] = problem_->blocks()[j].b;
  }
  const std::vector<double> ts{4.0 * kYear, 8.0 * kYear};
  (void)mc.failure_probabilities_with(ts, alphas, bs);
  alphas[2] *= 0.8;
  bs[4] *= 1.05;
  const std::vector<double> evolved =
      mc.failure_probabilities_with(ts, alphas, bs);
  EXPECT_EQ(mc.with_rows_refreshed(), 2u);

  // A cold analyzer (identical options -> identical chips) building its
  // context from scratch at the evolved parameters agrees bit for bit.
  const core::MonteCarloAnalyzer cold(*problem_, mc_options());
  const std::vector<double> scratch =
      cold.failure_probabilities_with(ts, alphas, bs);
  for (std::size_t i = 0; i < evolved.size(); ++i)
    EXPECT_TRUE(same_bits(evolved[i], scratch[i])) << "i=" << i;
}

TEST_F(MonteCarloWithFixture, RandomUpdateWalkStaysBitIdenticalToCold) {
  GlobalsGuard guard;
  const std::size_t n = problem_->blocks().size();
  const std::vector<double> ts{6.0 * kYear, 10.0 * kYear};
  for (const std::size_t threads : {std::size_t{1}, std::size_t{7}}) {
    par::set_threads(threads);
    const core::MonteCarloAnalyzer mc(*problem_, mc_options());
    std::vector<double> alphas(n), bs(n);
    for (std::size_t j = 0; j < n; ++j) {
      alphas[j] = problem_->blocks()[j].alpha;
      bs[j] = problem_->blocks()[j].b;
    }
    stats::Rng rng(100 + threads);
    for (int step = 0; step < 6; ++step) {
      const std::size_t j = rng.below(n);
      alphas[j] *= rng.uniform(0.7, 1.4);
      bs[j] = std::clamp(bs[j] * rng.uniform(0.95, 1.05), 0.31, 0.99);
      const std::vector<double> evolved =
          mc.failure_probabilities_with(ts, alphas, bs);
      const core::MonteCarloAnalyzer cold(*problem_, mc_options());
      const std::vector<double> scratch =
          cold.failure_probabilities_with(ts, alphas, bs);
      for (std::size_t i = 0; i < evolved.size(); ++i)
        ASSERT_TRUE(same_bits(evolved[i], scratch[i]))
            << "step " << step << " threads " << threads << " i " << i;
    }
  }
}

TEST_F(MonteCarloWithFixture, ValidatesInputs) {
  const core::MonteCarloAnalyzer mc(*problem_, mc_options());
  const std::size_t n = problem_->blocks().size();
  std::vector<double> alphas(n, 1.0e14), bs(n, 0.5);
  const std::vector<double> ts{kYear};
  const std::vector<double> ts_bad{-kYear};
  const std::vector<double> short_alphas(n - 1, 1.0e14);
  EXPECT_THROW((void)mc.failure_probabilities_with(ts, short_alphas, bs),
               Error);
  alphas[1] = 0.0;
  EXPECT_THROW((void)mc.failure_probabilities_with(ts, alphas, bs), Error);
  alphas[1] = 1.0e14;
  EXPECT_THROW((void)mc.failure_probabilities_with(ts_bad, alphas, bs),
               Error);
}

// ------------------------------------------------------------------------
// Step arena

TEST(Arena, MakeSpanIsZeroInitializedAndAligned) {
  Arena arena(256);
  const std::span<double> s = arena.make_span<double>(17);
  ASSERT_EQ(s.size(), 17u);
  for (const double x : s) EXPECT_EQ(x, 0.0);
  void* p = arena.allocate(64, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
}

TEST(Arena, FrameReleaseRestoresUsage) {
  Arena arena(1024);
  const std::size_t before = arena.used();
  {
    ArenaFrame frame(arena);
    (void)frame.arena().make_span<double>(32);
    EXPECT_GT(arena.used(), before);
    {
      ArenaFrame nested(arena);  // frames nest LIFO
      (void)nested.arena().make_span<int>(100);
    }
  }
  EXPECT_EQ(arena.used(), before);
}

TEST(Arena, GrowsBeyondInitialChunkAndKeepsSpansValid) {
  Arena arena(128);  // force chunk growth immediately
  std::vector<std::span<double>> spans;
  for (int i = 0; i < 8; ++i) {
    spans.push_back(arena.make_span<double>(64));
    for (std::size_t k = 0; k < spans.back().size(); ++k)
      spans.back()[k] = i * 1000.0 + static_cast<double>(k);
  }
  for (int i = 0; i < 8; ++i)
    for (std::size_t k = 0; k < spans[i].size(); ++k)
      ASSERT_EQ(spans[i][k], i * 1000.0 + static_cast<double>(k));
  EXPECT_GE(arena.high_water(), 8u * 64u * sizeof(double));
}

TEST(Arena, StatsAreCumulative) {
  const ArenaStats before = arena_stats();
  {
    ArenaFrame frame;  // thread-local step arena
    (void)frame.arena().make_span<double>(256);
  }
  const ArenaStats after = arena_stats();
  EXPECT_GT(after.allocations, before.allocations);
  EXPECT_GE(after.bytes, before.bytes + 256 * sizeof(double));
}

// ------------------------------------------------------------------------
// Cached canonical rendering and fingerprint (satellite pin: the cached
// values equal a fresh recomputation)

TEST_F(IncrementalFixture, CachedCanonicalEqualsRecomputed) {
  EXPECT_EQ(oxide_->mechanism_canonical(),
            oxide_->mechanisms().spec().canonical());
  EXPECT_EQ(all_->mechanism_canonical(),
            all_->mechanisms().spec().canonical());
  EXPECT_NE(oxide_->mechanism_canonical(), all_->mechanism_canonical());
}

TEST_F(IncrementalFixture, FingerprintMatchesHashOfTextAndIsStable) {
  // Recompute FNV-1a 64 over the cached text; the stored hash must match.
  auto fnv1a64 = [](const std::string& s) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ull;
    }
    return h;
  };
  EXPECT_EQ(oxide_->fingerprint(), fnv1a64(oxide_->fingerprint_text()));
  EXPECT_EQ(all_->fingerprint(), fnv1a64(all_->fingerprint_text()));
  // Same inputs -> same fingerprint; a different spec -> different one.
  core::ProblemOptions opts;
  opts.grid_cells_per_side = 10;
  const auto again = core::ReliabilityProblem::build(
      *design_, var::VariationBudget{}, *model_, *temps_, 1.2, opts);
  EXPECT_EQ(again.fingerprint(), oxide_->fingerprint());
  EXPECT_EQ(again.fingerprint_text(), oxide_->fingerprint_text());
  EXPECT_NE(all_->fingerprint(), oxide_->fingerprint());
}

}  // namespace
}  // namespace obd
