// Probability distributions used across the reliability framework.
//
// Each distribution is a small value type exposing pdf / cdf / quantile /
// sample. Weibull is the device-level OBD time model (eq. 3-4 of the paper);
// Normal models oxide thickness and BLOD means; Gamma / chi-square model the
// BLOD sample variance via the quadratic-form approximation (eq. 29).
#pragma once

#include "stats/rng.hpp"

namespace obd::stats {

/// Normal distribution N(mean, stddev^2).
class Normal {
 public:
  Normal(double mean, double stddev);

  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double stddev() const { return stddev_; }
  [[nodiscard]] double variance() const { return stddev_ * stddev_; }

  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double quantile(double p) const;
  double sample(Rng& rng) const;

 private:
  double mean_;
  double stddev_;
};

/// Gamma distribution with shape k and scale theta.
class Gamma {
 public:
  Gamma(double shape, double scale);

  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale() const { return scale_; }
  [[nodiscard]] double mean() const { return shape_ * scale_; }
  [[nodiscard]] double variance() const { return shape_ * scale_ * scale_; }

  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double quantile(double p) const;
  /// Marsaglia–Tsang squeeze method (handles shape < 1 by boosting).
  double sample(Rng& rng) const;

 private:
  double shape_;
  double scale_;
};

/// Chi-square with (possibly fractional) degrees of freedom: the
/// Yuan–Bentler match in eq. (29-30) generally yields non-integer dof.
/// Implemented as Gamma(dof/2, 2).
class ChiSquare {
 public:
  explicit ChiSquare(double dof);

  [[nodiscard]] double dof() const { return gamma_.shape() * 2.0; }
  [[nodiscard]] double mean() const { return gamma_.mean(); }
  [[nodiscard]] double variance() const { return gamma_.variance(); }

  [[nodiscard]] double pdf(double x) const { return gamma_.pdf(x); }
  [[nodiscard]] double cdf(double x) const { return gamma_.cdf(x); }
  [[nodiscard]] double quantile(double p) const { return gamma_.quantile(p); }
  double sample(Rng& rng) const { return gamma_.sample(rng); }

 private:
  Gamma gamma_;
};

/// Lognormal distribution: ln X ~ N(mu, sigma^2). Offered as the
/// alternative BLOD-variance model hinted at by the paper's footnote 4
/// ("pick up an appropriate distribution"), and for leakage modeling —
/// leakage is exponential in thickness, so Gaussian thickness makes block
/// leakage lognormal.
class Lognormal {
 public:
  Lognormal(double mu, double sigma);

  /// Fits (mu, sigma) so the lognormal has the given mean and variance.
  static Lognormal from_moments(double mean, double variance);

  [[nodiscard]] double mu() const { return mu_; }
  [[nodiscard]] double sigma() const { return sigma_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;

  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double quantile(double p) const;
  double sample(Rng& rng) const;

 private:
  double mu_;
  double sigma_;
};

/// Weibull distribution in the paper's area-scaled parameterization
/// (eq. 4): F(t) = 1 - exp(-a (t/alpha)^beta), where `a` is the device area
/// normalized to the minimum device area, `alpha` the characteristic life,
/// and `beta = b * x` the shape (slope) for oxide thickness x.
class Weibull {
 public:
  Weibull(double alpha, double beta, double area = 1.0);

  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double beta() const { return beta_; }
  [[nodiscard]] double area() const { return area_; }

  [[nodiscard]] double pdf(double t) const;
  [[nodiscard]] double cdf(double t) const;
  /// Survivor / reliability function R(t) = 1 - F(t) (eq. 5).
  [[nodiscard]] double reliability(double t) const;
  [[nodiscard]] double quantile(double p) const;
  double sample(Rng& rng) const;

 private:
  double alpha_;
  double beta_;
  double area_;
};

}  // namespace obd::stats
