// End-to-end process tests for `obdrel serve` against the real CLI binary
// (path baked in as OBDREL_CLI_PATH). The contracts under test are the
// daemon's survival guarantees: every request gets exactly one reply (ok,
// error, or overloaded); SIGTERM drains admitted work and exits 0; SIGKILL
// plus restart over the same cache directory serves byte-identical replies;
// and a vandalized cache file is quarantined and recomputed, never believed
// and never fatal.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct CmdResult {
  int status = -1;  ///< exit code (or 128+signal)
  std::string out;  ///< captured stdout
};

// Runs `cmd` under /bin/sh with stdout captured; stderr goes to `err_file`
// (the byte-identity contract is over stdout only).
CmdResult run_cmd(const std::string& cmd, const std::string& err_file) {
  const std::string full = cmd + " 2>" + err_file;
  CmdResult r;
  FILE* p = ::popen(full.c_str(), "r");
  if (p == nullptr) return r;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, p)) > 0) r.out.append(buf, n);
  const int rc = ::pclose(p);
  if (WIFEXITED(rc)) r.status = WEXITSTATUS(rc);
  else if (WIFSIGNALED(rc)) r.status = 128 + WTERMSIG(rc);
  return r;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

std::size_t count_lines_with(const std::string& text,
                             const std::string& needle) {
  std::size_t n = 0;
  for (const auto& l : lines_of(text))
    if (l.find(needle) != std::string::npos) ++n;
  return n;
}

// Spawns `cmd` under /bin/sh; callers prefix with `exec` so the returned
// pid is the daemon itself, not the shell.
pid_t spawn_shell(const std::string& cmd) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execl("/bin/sh", "sh", "-c", cmd.c_str(), static_cast<char*>(nullptr));
    ::_exit(127);
  }
  return pid;
}

// Polls `pred` every 20 ms for up to ~30 s (cold table builds on a loaded
// CI box take a while).
template <typename Pred>
bool wait_for(Pred&& pred) {
  for (int i = 0; i < 1500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool write_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Blocking read until `n` newline-terminated replies have arrived.
std::string read_replies(int fd, std::size_t n) {
  std::string got;
  char buf[4096];
  while (static_cast<std::size_t>(
             std::count(got.begin(), got.end(), '\n')) < n) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r <= 0) break;
    got.append(buf, static_cast<std::size_t>(r));
  }
  return got;
}

class ServeProcessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cli_ = OBDREL_CLI_PATH;
    ASSERT_TRUE(fs::exists(cli_)) << cli_;
    dir_ = ::testing::TempDir() + "obdrel-serveproc-" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    cfg_ = dir_ + "/serve.cfg";
    // Small problem and small tables: one cold build per fingerprint is
    // the dominant cost, so the query set below uses only two.
    std::ofstream(cfg_) << "design c1\n"
                           "grid 8\n"
                           "serve_n_gamma 16\n"
                           "serve_n_b 12\n"
                           "threads 2\n";
  }
  void TearDown() override { fs::remove_all(dir_); }

  // The canonical query set: two fingerprints (base config and a hotter
  // ambient), plus ids chosen so every reply is greppable.
  std::string write_queries(const std::string& name) {
    const std::string path = dir_ + "/" + name;
    std::ofstream(path) << "id=a t=1e8\n"
                           "id=b t=3.15e8\n"
                           "id=c t=3.15e8 set.ambient_c=60\n"
                           "id=d t=1e9 set.ambient_c=60\n";
    return path;
  }

  // Runs the daemon in --stdin mode over `qfile` with the given cache dir.
  CmdResult serve_stdin(const std::string& tag, const std::string& qfile,
                        const std::string& cache_dir,
                        const std::string& extra = "") {
    return serve_stdin_cfg(cfg_, tag, qfile, cache_dir, extra);
  }

  CmdResult serve_stdin_cfg(const std::string& cfg, const std::string& tag,
                            const std::string& qfile,
                            const std::string& cache_dir,
                            const std::string& extra = "") {
    return run_cmd(cli_ + " serve " + cfg + " --stdin --cache-dir " +
                       cache_dir + " " + extra + " <" + qfile,
                   dir_ + "/err-" + tag + ".txt");
  }

  // Same problem as cfg_ with the surrogate tier on at a reduced fit
  // resolution (the c1 default stack is oxide-only; these counts certify
  // comfortably under the loosened tolerance).
  std::string write_surrogate_cfg() {
    const std::string path = dir_ + "/serve-sur.cfg";
    std::ofstream(path) << "design c1\n"
                           "grid 8\n"
                           "serve_n_gamma 16\n"
                           "serve_n_b 12\n"
                           "threads 2\n"
                           "surrogate on\n"
                           "surrogate_tol 1e-3\n"
                           "surrogate_n_t 11\n"
                           "surrogate_n_dt 7\n"
                           "surrogate_n_vdd 5\n"
                           "surrogate_n_act 4\n"
                           "surrogate_fit_n_gamma 160\n"
                           "surrogate_fit_n_b 64\n"
                           "surrogate_probes 128\n";
    return path;
  }

  std::string err(const std::string& tag) {
    return slurp(dir_ + "/err-" + tag + ".txt");
  }

  std::string cli_;
  std::string dir_;
  std::string cfg_;
};

// ---------------------------------------------------------------------------
// stdin mode: exactly one reply per request, malformed lines included
// ---------------------------------------------------------------------------

TEST_F(ServeProcessTest, StdinModeAnswersEveryRequestExactlyOnce) {
  const std::string qfile = dir_ + "/q.txt";
  std::ofstream(qfile) << "id=a t=1e8\n"
                          "op=health id=hb\n"
                          "this is not a request\n"
                          "id=b t=3.15e8\n";
  const CmdResult r = serve_stdin("once", qfile, dir_ + "/cache");
  ASSERT_EQ(r.status, 0) << err("once");
  const auto replies = lines_of(r.out);
  ASSERT_EQ(replies.size(), 4u) << r.out;
  EXPECT_EQ(count_lines_with(r.out, "id=a ok=1 "), 1u) << r.out;
  EXPECT_EQ(count_lines_with(r.out, "id=b ok=1 "), 1u) << r.out;
  EXPECT_EQ(count_lines_with(r.out, "id=hb ok=1 health=1 "), 1u) << r.out;
  EXPECT_EQ(count_lines_with(r.out, "id=? error=invalid-input"), 1u) << r.out;
  // Drain flushed the lone fingerprint to the disk tier.
  std::size_t luts = 0;
  for (const auto& e : fs::directory_iterator(dir_ + "/cache"))
    if (e.path().extension() == ".lut") ++luts;
  EXPECT_EQ(luts, 1u);
}

// ---------------------------------------------------------------------------
// Overload: a tiny admission queue sheds deterministically, and shed
// requests still get their one reply
// ---------------------------------------------------------------------------

TEST_F(ServeProcessTest, OverloadShedsButStillAnswersEveryRequestOnce) {
  const std::string qfile = dir_ + "/q.txt";
  {
    std::ofstream q(qfile);
    for (int i = 0; i < 8; ++i) q << "id=q" << i << " t=3.15e8\n";
    q << "op=health id=hb\n";  // health must bypass the full queue
  }
  // stdin is a regular file: all nine lines arrive in one read, so with
  // queue_limit=2 exactly two are admitted and six shed, deterministically.
  const CmdResult r =
      serve_stdin("shed", qfile, dir_ + "/cache", "--queue 2");
  ASSERT_EQ(r.status, 0) << err("shed");
  ASSERT_EQ(lines_of(r.out).size(), 9u) << r.out;
  EXPECT_EQ(count_lines_with(r.out, " ok=1"), 3u) << r.out;  // 2 queries + hb
  EXPECT_EQ(count_lines_with(r.out, " overloaded=1"), 6u) << r.out;
  EXPECT_EQ(count_lines_with(r.out, "id=hb ok=1 health=1 "), 1u) << r.out;
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(count_lines_with(r.out, "id=q" + std::to_string(i) + " "), 1u)
        << r.out;
  // The summary stat records the shed count for post-hoc forensics.
  EXPECT_NE(err("shed").find("serve.shed"), std::string::npos) << err("shed");
}

// ---------------------------------------------------------------------------
// Socket mode: health probe, SIGTERM drain, exit 0, socket unlinked
// ---------------------------------------------------------------------------

TEST_F(ServeProcessTest, SigtermDrainsAdmittedWorkAndExitsZero) {
  const std::string sock = dir_ + "/d.sock";
  const std::string out = dir_ + "/daemon.out";
  const std::string cache = dir_ + "/cache";
  const pid_t pid = spawn_shell("exec " + cli_ + " serve " + cfg_ +
                                " --socket " + sock + " --cache-dir " +
                                cache + " >" + out + " 2>" + dir_ +
                                "/daemon.err");
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(wait_for([&] { return fs::exists(sock); }))
      << slurp(dir_ + "/daemon.err");

  const int fd = connect_unix(sock);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(write_all(fd, "op=health id=hb\nid=a t=3.15e8\n"));
  const std::string replies = read_replies(fd, 2);
  EXPECT_EQ(count_lines_with(replies, "id=hb ok=1 health=1 "), 1u) << replies;
  EXPECT_EQ(count_lines_with(replies, "id=a ok=1 "), 1u) << replies;
  ::close(fd);

  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int status = -1;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << status;
  EXPECT_EQ(WEXITSTATUS(status), 0) << slurp(dir_ + "/daemon.err");
  EXPECT_FALSE(fs::exists(sock));  // drain unlinks its socket
  // Drain flushed the answered fingerprint.
  std::size_t luts = 0;
  for (const auto& e : fs::directory_iterator(cache))
    if (e.path().extension() == ".lut") ++luts;
  EXPECT_EQ(luts, 1u);
}

// ---------------------------------------------------------------------------
// SIGKILL + restart over the same cache directory: byte-identical replies
// ---------------------------------------------------------------------------

TEST_F(ServeProcessTest, KillAndRestartServesByteIdenticalReplies) {
  const std::string qfile = write_queries("q.txt");
  // Reference: one uninterrupted cold run in its own cache directory.
  const CmdResult ref = serve_stdin("ref", qfile, dir_ + "/cache-ref");
  ASSERT_EQ(ref.status, 0) << err("ref");
  ASSERT_EQ(lines_of(ref.out).size(), 4u) << ref.out;

  // Chaos run: seed the shared cache dir with the first fingerprint (clean
  // drain writes it out), then SIGKILL a daemon mid-conversation — nothing
  // it computed gets flushed, and a torn temp file is left behind to prove
  // the startup sweep runs.
  const std::string cache = dir_ + "/cache-chaos";
  const std::string seed_q = dir_ + "/seed.txt";
  std::ofstream(seed_q) << "id=a t=1e8\nid=b t=3.15e8\n";
  ASSERT_EQ(serve_stdin("seed", seed_q, cache).status, 0) << err("seed");

  const std::string pipe = dir_ + "/q.pipe";
  ASSERT_EQ(::mkfifo(pipe.c_str(), 0600), 0);
  const std::string out = dir_ + "/chaos.out";
  const pid_t pid = spawn_shell("exec " + cli_ + " serve " + cfg_ +
                                " --stdin --cache-dir " + cache + " <" +
                                pipe + " >" + out + " 2>" + dir_ +
                                "/chaos.err");
  ASSERT_GT(pid, 0);
  const int wfd = ::open(pipe.c_str(), O_WRONLY);  // blocks until daemon opens
  ASSERT_GE(wfd, 0);
  ASSERT_TRUE(write_all(wfd, "id=c t=3.15e8 set.ambient_c=60\n"));
  ASSERT_TRUE(wait_for([&] { return !slurp(out).empty(); }))
      << slurp(dir_ + "/chaos.err");
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = -1;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ::close(wfd);
  std::ofstream(cache + "/torn.lut.tmp") << "half-written";

  // Restart over the survivor cache and replay the full set: fingerprint 1
  // comes off disk, fingerprint 2 is recomputed, and the bytes must match
  // the uninterrupted run exactly.
  const CmdResult again = serve_stdin("again", qfile, cache);
  ASSERT_EQ(again.status, 0) << err("again");
  EXPECT_EQ(again.out, ref.out);
  EXPECT_FALSE(fs::exists(cache + "/torn.lut.tmp"));  // startup sweep
}

// ---------------------------------------------------------------------------
// Corrupt cache entries are quarantined and recomputed, byte-identically
// ---------------------------------------------------------------------------

TEST_F(ServeProcessTest, CorruptCacheFileIsQuarantinedAndRecomputed) {
  const std::string qfile = write_queries("q.txt");
  const std::string cache = dir_ + "/cache";
  const CmdResult cold = serve_stdin("cold", qfile, cache);
  ASSERT_EQ(cold.status, 0) << err("cold");

  // Vandalize every cached table file.
  std::size_t vandalized = 0;
  for (const auto& e : fs::directory_iterator(cache))
    if (e.path().extension() == ".lut") {
      std::ofstream(e.path(), std::ios::trunc) << "garbage";
      ++vandalized;
    }
  ASSERT_EQ(vandalized, 2u);

  const CmdResult again = serve_stdin("again", qfile, cache);
  ASSERT_EQ(again.status, 0) << err("again");
  EXPECT_EQ(again.out, cold.out);  // recomputed, byte-identical, no crash
  std::size_t quarantined = 0;
  for (const auto& e : fs::directory_iterator(cache))
    if (e.path().extension() == ".quarantined") ++quarantined;
  EXPECT_EQ(quarantined, 2u);
}

// ---------------------------------------------------------------------------
// Surrogate tier off (the default): the reply grammar is frozen
// ---------------------------------------------------------------------------

TEST_F(ServeProcessTest, SurrogateOffRepliesNeverMentionTheTier) {
  const std::string qfile = dir_ + "/q.txt";
  std::ofstream(qfile) << "id=a t=1e8\n"
                          "id=b t=3.15e8 cond.dt=3\n"
                          "id=c t=3.15e8 cond.dt=3 cond.dt.0=8\n"
                          "op=health id=hb\n";
  const CmdResult r = serve_stdin("off", qfile, dir_ + "/cache");
  ASSERT_EQ(r.status, 0) << err("off");
  ASSERT_EQ(lines_of(r.out).size(), 4u) << r.out;
  // With the tier off every reply — and the health line — is
  // byte-identical to a daemon predating the surrogate layer.
  EXPECT_EQ(r.out.find("surrogate"), std::string::npos) << r.out;
  // The repeated same-corner cond queries reused incremental rows; the
  // drain stat records it.
  EXPECT_NE(err("off").find("serve.incremental"), std::string::npos)
      << err("off");
}

// ---------------------------------------------------------------------------
// Surrogate tier on: certified corners served from coefficients, anything
// outside the certificate verifiably falls through to exact
// ---------------------------------------------------------------------------

TEST_F(ServeProcessTest, SurrogateServesInDomainAndFallsThroughOutside) {
  const std::string sur_cfg = write_surrogate_cfg();
  const std::string cache = dir_ + "/cache";
  const std::string qfile = dir_ + "/q.txt";
  std::ofstream(qfile) << "id=in t=3.15e8 cond.dt=4\n"
                          "id=out t=3.15e8 cond.dt=50\n";

  // Cold run: exact answers (flagged surrogate=0), fit + persist .cheb.
  const std::string warm_q = dir_ + "/warm.txt";
  std::ofstream(warm_q) << "id=w t=3.15e8\n";
  const CmdResult warm = serve_stdin_cfg(sur_cfg, "warm", warm_q, cache);
  ASSERT_EQ(warm.status, 0) << err("warm");
  EXPECT_EQ(count_lines_with(warm.out, "id=w ok=1 "), 1u) << warm.out;
  EXPECT_EQ(count_lines_with(warm.out, " surrogate=0"), 1u) << warm.out;
  std::size_t chebs = 0;
  for (const auto& e : fs::directory_iterator(cache))
    if (e.path().extension() == ".cheb") ++chebs;
  ASSERT_EQ(chebs, 1u);

  // Restarted daemon: the in-domain corner is answered from the loaded
  // coefficients, the out-of-domain one falls through to the exact engine.
  const CmdResult r = serve_stdin_cfg(sur_cfg, "sur", qfile, cache);
  ASSERT_EQ(r.status, 0) << err("sur");
  ASSERT_EQ(lines_of(r.out).size(), 2u) << r.out;
  EXPECT_EQ(count_lines_with(r.out, "id=in ok=1 "), 1u) << r.out;
  EXPECT_EQ(count_lines_with(r.out, " surrogate=1"), 1u) << r.out;
  EXPECT_EQ(count_lines_with(r.out, "id=out ok=1 "), 1u) << r.out;
  EXPECT_EQ(count_lines_with(r.out, " surrogate=0"), 1u) << r.out;
  EXPECT_NE(err("sur").find("serve.surrogate"), std::string::npos)
      << err("sur");

  // The fallen-through reply is byte-identical to a tier-off daemon's
  // answer for the same query, modulo the appended flag field.
  const std::string ref_q = dir_ + "/ref.txt";
  std::ofstream(ref_q) << "id=out t=3.15e8 cond.dt=50\n";
  const CmdResult ref = serve_stdin("ref", ref_q, dir_ + "/cache-ref");
  ASSERT_EQ(ref.status, 0) << err("ref");
  std::string out_line;
  for (const auto& l : lines_of(r.out))
    if (l.rfind("id=out ", 0) == 0) out_line = l;
  const std::size_t flag = out_line.find(" surrogate=");
  ASSERT_NE(flag, std::string::npos) << out_line;
  EXPECT_EQ(out_line.substr(0, flag) + "\n", ref.out);
}

// ---------------------------------------------------------------------------
// Vandalized coefficient file: quarantine + refit, byte-identical replies
// ---------------------------------------------------------------------------

TEST_F(ServeProcessTest, VandalizedSurrogateFileIsQuarantinedAndRefit) {
  const std::string sur_cfg = write_surrogate_cfg();
  const std::string cache = dir_ + "/cache";
  const std::string qfile = dir_ + "/q.txt";
  std::ofstream(qfile) << "id=q t=3.15e8 cond.dt=4\n";

  // Fit once (cold plain query), then capture the surrogate-served reply.
  const std::string warm_q = dir_ + "/warm.txt";
  std::ofstream(warm_q) << "id=w t=3.15e8\n";
  ASSERT_EQ(serve_stdin_cfg(sur_cfg, "warm", warm_q, cache).status, 0)
      << err("warm");
  const CmdResult before = serve_stdin_cfg(sur_cfg, "before", qfile, cache);
  ASSERT_EQ(before.status, 0) << err("before");
  ASSERT_EQ(count_lines_with(before.out, " surrogate=1"), 1u) << before.out;

  // Vandalize the coefficient file.
  std::string cheb;
  for (const auto& e : fs::directory_iterator(cache))
    if (e.path().extension() == ".cheb") cheb = e.path().string();
  ASSERT_FALSE(cheb.empty());
  std::ofstream(cheb, std::ios::trunc) << "garbage";

  // Restart: the file is quarantined (never believed), the query answered
  // exactly, and the post-build refit re-persists a certified model.
  const CmdResult refit = serve_stdin_cfg(sur_cfg, "refit", qfile, cache);
  ASSERT_EQ(refit.status, 0) << err("refit");
  EXPECT_EQ(count_lines_with(refit.out, "id=q ok=1 "), 1u) << refit.out;
  EXPECT_EQ(count_lines_with(refit.out, " surrogate=0"), 1u) << refit.out;
  EXPECT_TRUE(fs::exists(cheb + ".quarantined"));
  EXPECT_TRUE(fs::exists(cheb));

  // The refit is deterministic: a further restart serves byte-identical
  // surrogate replies to the pre-vandalism run.
  const CmdResult after = serve_stdin_cfg(sur_cfg, "after", qfile, cache);
  ASSERT_EQ(after.status, 0) << err("after");
  EXPECT_EQ(after.out, before.out);
}

}  // namespace
