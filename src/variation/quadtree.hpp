// Quad-tree spatial-correlation model (the alternative correlation
// structure the paper cites in Section II, ref. [24], Agarwal et al.).
//
// The die is covered by L levels of regions: level 0 is the whole die,
// level l partitions it into 4^l quadrants. Each region carries an
// independent zero-mean Gaussian variable; a device's spatially correlated
// variation is the sum of the variables of the regions containing it, so
// two devices correlate through the levels whose regions they share —
// correlation decreases with distance in a staircase fashion.
//
// A welcome property: the region variables are already mutually
// independent, so the canonical form of eq. (2) is obtained *without* an
// eigendecomposition — each region variable is a principal component whose
// sensitivity is its level sigma for the cells it covers. Everything
// downstream (BLOD characterization, all analyzers, Monte Carlo) consumes
// the resulting CanonicalForm unchanged, which is exactly how an adoptable
// library should compose.
#pragma once

#include <cstddef>
#include <vector>

#include "variation/model.hpp"

namespace obd::var {

struct QuadTreeOptions {
  /// Number of levels below the die-level variable. Level l has 4^l
  /// regions; the total component count is sum_{l=0..levels} 4^l.
  std::size_t levels = 4;
  /// Relative variance weight per level 1..levels (level 0 always carries
  /// the global die-to-die variance). Empty -> geometric decay 2^-l,
  /// normalized; otherwise must have `levels` entries.
  std::vector<double> level_weights;
};

/// Number of regions at `level` (4^level).
std::size_t quadtree_regions_at(std::size_t level);

/// Index (within its level) of the region containing die point (x, y).
std::size_t quadtree_region_index(double x, double y, double die_width,
                                  double die_height, std::size_t level);

/// Builds the canonical thickness model for a quad-tree correlation
/// structure: the global component sits at level 0; the spatial variance
/// budget is distributed over levels 1..L by the level weights; the
/// independent residual is untouched. Sensitivities are expressed per grid
/// cell of `grid` (cells are assigned to regions by their centers), so the
/// result plugs into the same BlockGridLayout machinery as the grid model.
CanonicalForm make_quadtree_canonical(const GridModel& grid,
                                      const VariationBudget& budget,
                                      const QuadTreeOptions& options = {},
                                      const WaferPattern& pattern = {});

/// Model correlation between two die points under the quad-tree structure:
/// sum of level variances for levels whose regions contain both points,
/// normalized by the total correlated variance. Exposed for tests and the
/// correlation-model ablation bench.
double quadtree_correlation(double x1, double y1, double x2, double y2,
                            double die_width, double die_height,
                            const VariationBudget& budget,
                            const QuadTreeOptions& options = {});

}  // namespace obd::var
