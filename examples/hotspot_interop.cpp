// HotSpot interoperability: drive the whole flow from the shipped HotSpot
// format files (data/ev6.flp + data/ev6.ptrace):
//
//   1. load the floorplan and the measured-style power trace,
//   2. play the trace through the transient thermal simulator,
//   3. convert the trace phases into a duty-cycle schedule and compute the
//      reliability under it vs the worst-phase assumption,
//   4. derive DRM workload scales from the same trace.
//
// Run from the repository root (paths are relative).
#include <algorithm>
#include <cstdio>

#include "chip/floorplan_io.hpp"
#include "core/duty_cycle.hpp"
#include "core/lifetime.hpp"
#include "drm/workload.hpp"
#include "power/trace_io.hpp"
#include "thermal/solver.hpp"
#include "thermal/transient.hpp"

int main(int argc, char** argv) {
  using namespace obd;
  const double year = 365.25 * 24 * 3600;
  const std::string flp = argc > 1 ? argv[1] : "data/ev6.flp";
  const std::string ptrace = argc > 2 ? argv[2] : "data/ev6.ptrace";

  // 1. Load.
  const chip::Design design =
      chip::load_floorplan_file(flp, {.device_density = 3300.0,
                                      .name = "ev6.flp"});
  const auto trace = power::load_power_trace_file(ptrace, design);
  std::printf("Loaded %s: %zu blocks, %zu devices; %zu power samples\n\n",
              flp.c_str(), design.blocks.size(), design.total_devices(),
              trace.size());

  // 2. Transient playback: hold each sample for five die time constants.
  thermal::TransientParams tparams;
  tparams.thermal.resolution = 32;
  thermal::TransientSimulator sim(design, tparams);
  sim.reset(tparams.thermal.ambient_c);
  const double hold = 5.0 * sim.die_time_constant();
  std::printf("Transient playback (hold %.2f s per sample):\n", hold);
  std::vector<std::vector<double>> phase_temps;
  for (std::size_t s = 0; s < trace.size(); ++s) {
    sim.advance(trace[s], hold);
    const auto profile = sim.profile();
    phase_temps.push_back(profile.block_temps_c);
    std::printf("  sample %zu: %.1f W -> %.1f .. %.1f C\n", s,
                trace[s].total(), profile.min_c(), profile.max_c());
  }

  // 3. Duty-cycle reliability from the trace phases (equal time shares)
  //    vs assuming the hottest phase for the whole lifetime.
  const core::AnalyticReliabilityModel model;
  std::size_t hottest = 0;
  for (std::size_t s = 1; s < phase_temps.size(); ++s) {
    if (*std::max_element(phase_temps[s].begin(), phase_temps[s].end()) >
        *std::max_element(phase_temps[hottest].begin(),
                          phase_temps[hottest].end()))
      hottest = s;
  }
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, phase_temps[hottest], 1.2);

  std::vector<core::WorkloadPhase> phases;
  for (std::size_t s = 0; s < phase_temps.size(); ++s) {
    phases.push_back(core::make_phase(
        "sample" + std::to_string(s), 1.0 / static_cast<double>(trace.size()),
        model, phase_temps[s], 1.2));
  }
  const core::DutyCycleAnalyzer duty(problem, phases);
  auto worst_phase = core::make_phase("worst", 1.0, model,
                                      phase_temps[hottest], 1.2);
  const core::DutyCycleAnalyzer worst(problem, {worst_phase});

  const double t_duty = duty.lifetime_at(core::kTenFaultsPerMillion);
  const double t_worst = worst.lifetime_at(core::kTenFaultsPerMillion);
  std::printf("\n10-per-million lifetime:\n");
  std::printf("  trace-weighted phases : %8.2f years\n", t_duty / year);
  std::printf("  worst phase always    : %8.2f years (%.0f%% pessimistic)\n",
              t_worst / year, 100.0 * (1.0 - t_worst / t_duty));

  // 4. DRM workload scales from the same trace.
  const auto scales = drm::workload_from_power_trace(design, trace);
  std::printf("\nDRM workload scales from the trace:");
  for (double s : scales) std::printf(" %.2f", s);
  std::printf("\n");
  return 0;
}
