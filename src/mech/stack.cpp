#include "mech/stack.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/error.hpp"

namespace obd::mech {

MechanismStack::MechanismStack(
    const MechanismSpec& spec, const std::vector<std::string>& block_names,
    std::vector<OperatingConditions> default_conditions)
    : spec_(spec), defaults_(std::move(default_conditions)) {
  require(defaults_.size() == block_names.size(), ErrorCode::kInternal,
          "MechanismStack: conditions/block count mismatch");
  require(spec_.oxide, ErrorCode::kConfig,
          "mechanisms: the oxide base model cannot be disabled");
  extras_ = make_aging_mechanisms(spec_);
  trivial_ = extras_.empty() && spec_.redundancy.empty();
  if (trivial_) return;

  std::unordered_map<std::string, std::size_t> index;
  for (std::size_t j = 0; j < block_names.size(); ++j) {
    index.emplace(block_names[j], j);
  }
  group_of_.assign(block_names.size(), -1);
  for (const SpareGroup& g : spec_.redundancy) {
    require(!g.members.empty(), ErrorCode::kConfig,
            "redundancy group '" + g.name + "': no members");
    require(g.spares < g.members.size(), ErrorCode::kConfig,
            "redundancy group '" + g.name +
                "': spares must be < member count");
    Group resolved;
    resolved.name = g.name;
    resolved.spares = g.spares;
    for (const std::string& m : g.members) {
      auto it = index.find(m);
      require(it != index.end(), ErrorCode::kConfig,
              "redundancy group '" + g.name + "': unknown block '" + m + "'");
      require(group_of_[it->second] < 0, ErrorCode::kConfig,
              "redundancy: block '" + m + "' appears in more than one group");
      group_of_[it->second] = static_cast<int>(groups_.size());
      resolved.members.push_back(it->second);
    }
    groups_.push_back(std::move(resolved));
  }
}

double MechanismStack::extra_log_survival(std::size_t j, double t,
                                          const OperatingConditions& c) const {
  double ls = 0.0;
  for (const auto& mech : extras_) {
    const double f = std::clamp(mech->block_cdf(j, t, c), 0.0, 1.0);
    ls += std::log1p(-f);
  }
  return ls;
}

double MechanismStack::extra_survival(double t) const {
  double ls = 0.0;
  for (std::size_t j = 0; j < defaults_.size(); ++j) {
    ls += extra_log_survival(j, t, defaults_[j]);
  }
  return std::exp(ls);
}

double MechanismStack::compose(const double* oxide_f, double t) const {
  return compose_impl(oxide_f, t, nullptr);
}

double MechanismStack::compose_under(
    const double* oxide_f, double t,
    const std::vector<OperatingConditions>& conditions) const {
  require(conditions.size() == defaults_.size(), ErrorCode::kInvalidInput,
          "compose_under: conditions size mismatch");
  return compose_impl(oxide_f, t, &conditions);
}

double MechanismStack::block_log_survival(
    std::size_t j, double oxide_f_j, double t,
    const OperatingConditions& c) const {
  return std::log1p(-oxide_f_j) + extra_log_survival(j, t, c);
}

double MechanismStack::chip_log_survival(const double* block_ls) const {
  const std::size_t n = defaults_.size();
  double log_survival = 0.0;
  if (groups_.empty()) {
    for (std::size_t j = 0; j < n; ++j) log_survival += block_ls[j];
    return log_survival;
  }

  for (std::size_t j = 0; j < n; ++j) {
    if (group_of_[j] < 0) log_survival += block_ls[j];
  }
  // Poisson-binomial over member failure probabilities: dp[k] holds the
  // probability that exactly k members have failed, with counts above
  // `spares` dropped (they all mean "group dead").
  thread_local std::vector<double> dp;
  for (const Group& g : groups_) {
    dp.assign(g.spares + 1, 0.0);
    dp[0] = 1.0;
    for (std::size_t m : g.members) {
      const double p = std::clamp(-std::expm1(block_ls[m]), 0.0, 1.0);
      const std::size_t hi = g.spares;
      for (std::size_t k = hi; k > 0; --k) {
        dp[k] = dp[k] * (1.0 - p) + dp[k - 1] * p;
      }
      dp[0] *= 1.0 - p;
    }
    double group_survival = 0.0;
    for (double v : dp) group_survival += v;
    if (!(group_survival > 0.0))
      return -std::numeric_limits<double>::infinity();
    log_survival += std::log(std::min(1.0, group_survival));
  }
  return log_survival;
}

double MechanismStack::reduce_log_survival(const double* block_ls) const {
  // -expm1(-inf) == 1.0 exactly, so the dead-group escape returns the
  // same bits the pre-chip_log_survival implementation produced.
  return std::clamp(-std::expm1(chip_log_survival(block_ls)), 0.0, 1.0);
}

double MechanismStack::compose_impl(
    const double* oxide_f, double t,
    const std::vector<OperatingConditions>* conditions) const {
  const std::size_t n = defaults_.size();
  if (trivial_) {
    // Exact seed loop: same op order as the direct evaluators.
    double log_survival = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      log_survival += std::log1p(-oxide_f[j]);
    }
    return std::clamp(-std::expm1(log_survival), 0.0, 1.0);
  }

  thread_local std::vector<double> block_ls;
  block_ls.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const OperatingConditions& c =
        conditions != nullptr ? (*conditions)[j] : defaults_[j];
    block_ls[j] = block_log_survival(j, oxide_f[j], t, c);
  }
  return reduce_log_survival(block_ls.data());
}

}  // namespace obd::mech
