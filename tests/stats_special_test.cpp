#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "stats/special.hpp"

namespace obd::stats {
namespace {

TEST(GammaP, KnownValues) {
  // P(1, x) = 1 - e^{-x}.
  EXPECT_NEAR(gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(gamma_p(1.0, 2.5), 1.0 - std::exp(-2.5), 1e-12);
  // P(1/2, x) = erf(sqrt(x)).
  EXPECT_NEAR(gamma_p(0.5, 1.0), std::erf(1.0), 1e-12);
  EXPECT_NEAR(gamma_p(0.5, 4.0), std::erf(2.0), 1e-12);
}

TEST(GammaP, BoundaryAndComplement) {
  EXPECT_DOUBLE_EQ(gamma_p(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(gamma_q(2.0, 0.0), 1.0);
  for (double a : {0.3, 1.0, 2.5, 10.0, 50.0}) {
    for (double x : {0.1, 1.0, 5.0, 30.0, 100.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(GammaP, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.1; x < 20.0; x += 0.37) {
    const double p = gamma_p(3.0, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(GammaP, RejectsBadArguments) {
  EXPECT_THROW(gamma_p(0.0, 1.0), obd::Error);
  EXPECT_THROW(gamma_p(-1.0, 1.0), obd::Error);
  EXPECT_THROW(gamma_p(1.0, -1.0), obd::Error);
}

TEST(GammaPInverse, RoundTrips) {
  for (double a : {0.4, 1.0, 2.0, 7.5, 40.0}) {
    for (double p : {1e-6, 0.01, 0.3, 0.5, 0.9, 0.999}) {
      const double x = gamma_p_inverse(a, p);
      EXPECT_NEAR(gamma_p(a, x), p, 1e-9) << "a=" << a << " p=" << p;
    }
  }
}

TEST(GammaPInverse, ZeroAtZero) {
  EXPECT_DOUBLE_EQ(gamma_p_inverse(3.0, 0.0), 0.0);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.96), 0.024997895148220435, 1e-12);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalPdf, KnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 1.0 / std::sqrt(2.0 * M_PI), 1e-15);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-14);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-16);
}

TEST(NormalQuantile, RoundTripsCdf) {
  for (double p : {1e-9, 1e-6, 0.001, 0.025, 0.5, 0.8, 0.999, 1 - 1e-7}) {
    const double x = normal_quantile(p);
    EXPECT_NEAR(normal_cdf(x), p, 1e-12) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-14);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-10);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-10);
}

TEST(NormalQuantile, RejectsEndpoints) {
  EXPECT_THROW(normal_quantile(0.0), obd::Error);
  EXPECT_THROW(normal_quantile(1.0), obd::Error);
  EXPECT_THROW(normal_quantile(-0.1), obd::Error);
}

}  // namespace
}  // namespace obd::stats
