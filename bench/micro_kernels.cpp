// google-benchmark microbenchmarks for the library's hot kernels: the PCA
// eigensolve, the closed-form g(u, v), per-query costs of each analysis
// method, and the Monte Carlo per-chip sampling that dominates the
// reference flow.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "chip/design.hpp"
#include "common/checkpoint.hpp"
#include "common/fault_injection.hpp"
#include "core/analytic.hpp"
#include "core/hybrid.hpp"
#include "core/montecarlo.hpp"
#include "linalg/eigen.hpp"
#include "stats/special.hpp"
#include "variation/model.hpp"

namespace {

using namespace obd;

const core::ReliabilityProblem& shared_problem() {
  static const core::ReliabilityProblem problem = [] {
    const chip::Design design = chip::make_benchmark(2);  // C2, 80K devices
    const core::AnalyticReliabilityModel model;
    std::vector<double> temps;
    for (std::size_t j = 0; j < design.blocks.size(); ++j)
      temps.push_back(60.0 + 4.0 * static_cast<double>(j));
    return core::ReliabilityProblem::build(design, var::VariationBudget{},
                                           model, temps, 1.2);
  }();
  return problem;
}

void BM_EigenSymmetric(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const var::VariationBudget budget;
  const var::GridModel grid(10.0, 10.0, n);
  const la::Matrix cov = var::build_covariance(grid, budget, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::eigen_symmetric(cov));
  }
  state.SetLabel(std::to_string(n * n) + "x" + std::to_string(n * n));
}
BENCHMARK(BM_EigenSymmetric)->Arg(10)->Arg(15)->Arg(20)->Arg(25)
    ->Unit(benchmark::kMillisecond);

void BM_GClosedForm(benchmark::State& state) {
  double t = 1e8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::g_closed_form(t, 1e17, 0.64, 2.2, 2.5e-4));
    t += 1.0;
  }
}
BENCHMARK(BM_GClosedForm);

void BM_NormalQuantile(benchmark::State& state) {
  double p = 0.0001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::normal_quantile(p));
    p += 1e-7;
    if (p >= 1.0) p = 0.0001;
  }
}
BENCHMARK(BM_NormalQuantile);

void BM_GammaP(benchmark::State& state) {
  double x = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::gamma_p(2.5, x));
    x += 0.001;
    if (x > 20.0) x = 0.01;
  }
}
BENCHMARK(BM_GammaP);

void BM_StFastQuery(benchmark::State& state) {
  const core::AnalyticAnalyzer fast(shared_problem());
  double t = 2e8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fast.failure_probability(t));
    t += 1.0;
  }
  state.SetLabel("per failure_probability() call");
}
BENCHMARK(BM_StFastQuery)->Unit(benchmark::kMicrosecond);

void BM_HybridQuery(benchmark::State& state) {
  const core::HybridEvaluator hybrid(shared_problem());
  double t = 2e8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hybrid.failure_probability(t));
    t += 1.0;
  }
  state.SetLabel("per failure_probability() call");
}
BENCHMARK(BM_HybridQuery)->Unit(benchmark::kMicrosecond);

void BM_StFastConstruction(benchmark::State& state) {
  for (auto _ : state) {
    const core::AnalyticAnalyzer fast(shared_problem());
    benchmark::DoNotOptimize(fast.failure_probability(2e8));
  }
  state.SetLabel("node build + one query");
}
BENCHMARK(BM_StFastConstruction)->Unit(benchmark::kMillisecond);

void BM_MonteCarloChipSampling(benchmark::State& state) {
  const auto chips = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const core::MonteCarloAnalyzer mc(shared_problem(),
                                      {.chip_samples = chips, .seed = 1});
    benchmark::DoNotOptimize(mc.failure_probability(2e8));
  }
  state.SetLabel(std::to_string(chips) + " chips x 80K devices");
}
BENCHMARK(BM_MonteCarloChipSampling)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

// Cost of a disarmed fault-injection check: the sites live on hot paths
// (SOR sweeps, quadrature, factorizations), so this must stay at a single
// relaxed atomic load — compare against BM_GClosedForm-scale kernels to
// confirm the <2% overhead budget.
void BM_FaultCheckDisarmed(benchmark::State& state) {
  fault::disarm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::should_fire(fault::site::kThermalSor));
  }
  state.SetLabel("disarmed should_fire()");
}
BENCHMARK(BM_FaultCheckDisarmed);

// The same kernel guarded by a disarmed check: the pair quantifies the
// injected overhead on a representative hot-path unit of work.
void BM_GClosedFormWithFaultCheck(benchmark::State& state) {
  fault::disarm();
  double t = 1e8;
  for (auto _ : state) {
    if (fault::should_fire(fault::site::kQuadrature)) state.SkipWithError(
        "disarmed site fired");
    benchmark::DoNotOptimize(
        core::g_closed_form(t, 1e17, 0.64, 2.2, 2.5e-4));
    t += 1.0;
  }
}
BENCHMARK(BM_GClosedFormWithFaultCheck);

// Durability-layer overhead: the DRM runtime pays one journal append per
// control step and one atomic snapshot per checkpoint_every steps. Both
// must stay far below a control interval (which is wall-clock *months*) —
// these pin the actual cost so regressions are visible.
const std::string& bench_dir() {
  static const std::string dir = [] {
    char tmpl[] = "/tmp/obdrel-bench-XXXXXX";
    const char* d = ::mkdtemp(tmpl);
    return std::string(d != nullptr ? d : "/tmp");
  }();
  return dir;
}

void BM_Crc32(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(ckpt::crc32(payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(256)->Arg(4096);

void BM_SnapshotWriteAtomic(benchmark::State& state) {
  // ~1 KB payload: the scale of a DrmRuntime snapshot (a few dozen
  // hexfloat doubles plus the header fields).
  const std::string payload(1024, 'd');
  const std::string path = bench_dir() + "/bench.snap";
  for (auto _ : state) {
    ckpt::write_snapshot_atomic(path, 1, payload);
  }
  state.SetLabel("1 KiB payload: temp + fsync + rename");
}
BENCHMARK(BM_SnapshotWriteAtomic)->Unit(benchmark::kMicrosecond);

void BM_JournalAppend(benchmark::State& state) {
  const bool sync = state.range(0) != 0;
  // ~200 B record: one DRM step (sample, decision, per-block damage).
  const std::string record(200, 'r');
  ckpt::JournalWriter writer(bench_dir() + "/bench.log",
                             /*truncate=*/true);
  for (auto _ : state) {
    writer.append(record);
    if (sync) writer.sync();
  }
  state.SetLabel(sync ? "append + fsync (durable step)"
                      : "append only (OS-buffered floor)");
}
BENCHMARK(BM_JournalAppend)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_CanonicalSampleAndGridEval(benchmark::State& state) {
  const auto& problem = shared_problem();
  stats::Rng rng(3);
  for (auto _ : state) {
    const la::Vector z = problem.canonical().sample_z(rng);
    benchmark::DoNotOptimize(
        problem.canonical().sensitivities().multiply(z));
  }
  state.SetLabel("one chip's correlated grid thicknesses");
}
BENCHMARK(BM_CanonicalSampleAndGridEval)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
