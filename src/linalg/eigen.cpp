#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "common/fault_injection.hpp"

namespace obd::la {
namespace {

// Householder reduction of a real symmetric matrix to tridiagonal form
// (EISPACK tred2). On return `a` holds the accumulated orthogonal transform
// Q, `d` the diagonal, and `e` the subdiagonal (e[0] unused).
void tridiagonalize(Matrix& a, Vector& d, Vector& e) {
  const std::size_t n = a.rows();
  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::fabs(a(i, k));
      if (scale == 0.0) {
        e[i] = a(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          a(j, i) = a(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          e[j] = g / h;
          f += e[j] * a(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = a(i, j);
          e[j] = g = e[j] - hh * f;
          for (std::size_t k = 0; k <= j; ++k)
            a(j, k) -= f * e[k] + g * a(i, k);
        }
      }
    } else {
      e[i] = a(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  // Accumulate transformation matrices.
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && d[i] != 0.0) {
      const std::size_t l = i - 1;
      for (std::size_t j = 0; j <= l; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k <= l; ++k) g += a(i, k) * a(k, j);
        for (std::size_t k = 0; k <= l; ++k) a(k, j) -= g * a(k, i);
      }
    }
    d[i] = a(i, i);
    a(i, i) = 1.0;
    if (i > 0) {
      for (std::size_t j = 0; j < i; ++j) {
        a(j, i) = 0.0;
        a(i, j) = 0.0;
      }
    }
  }
}

double hypot2(double a, double b) { return std::hypot(a, b); }

// Implicit-shift QL iteration on a symmetric tridiagonal matrix (EISPACK
// tql2). `d` holds the diagonal, `e` the subdiagonal; eigenvectors are
// accumulated into `z` (which should enter holding the tridiagonalizing Q).
void ql_implicit(Vector& d, Vector& e, Matrix& z) {
  const std::size_t n = d.size();
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (std::size_t l = 0; l < n; ++l) {
    int iterations = 0;
    std::size_t m = l;
    for (;;) {
      // Find a small subdiagonal element to split the problem.
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-300 ||
            std::fabs(e[m]) <= std::numeric_limits<double>::epsilon() * dd)
          break;
      }
      if (m == l) break;
      require(++iterations <= 50, ErrorCode::kNonconvergence,
              "eigen_symmetric: QL iteration failed to converge");

      double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
      double r = hypot2(g, 1.0);
      g = d[m] - d[l] + e[l] / (g + (g >= 0.0 ? std::fabs(r) : -std::fabs(r)));
      double s = 1.0;
      double c = 1.0;
      double p = 0.0;
      for (std::size_t i = m; i-- > l;) {
        double f = s * e[i];
        const double b = c * e[i];
        r = hypot2(f, g);
        e[i + 1] = r;
        if (r == 0.0) {
          d[i + 1] -= p;
          e[m] = 0.0;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[i + 1] - p;
        r = (d[i] - g) * s + 2.0 * c * b;
        p = s * r;
        d[i + 1] = g + p;
        g = c * r - b;
        for (std::size_t k = 0; k < n; ++k) {
          f = z(k, i + 1);
          z(k, i + 1) = s * z(k, i) + c * f;
          z(k, i) = c * z(k, i) - s * f;
        }
      }
      if (r == 0.0 && m > l + 1) continue;
      d[l] -= p;
      e[l] = g;
      e[m] = 0.0;
    }
  }
}

}  // namespace

EigenDecomposition eigen_symmetric(const Matrix& a) {
  require(a.rows() == a.cols(), "eigen_symmetric: matrix must be square");
  require(!a.empty(), "eigen_symmetric: matrix must be non-empty");
  if (fault::should_fire(fault::site::kEigen))
    throw Error("eigen_symmetric: injected QL nonconvergence fault",
                ErrorCode::kNonconvergence);
  // Allow tiny floating-point asymmetry from covariance construction.
  const double scale =
      std::max(1.0, std::sqrt(a.frobenius_squared() /
                              static_cast<double>(a.rows() * a.cols())));
  require(a.max_asymmetry() <= 1e-9 * scale,
          "eigen_symmetric: matrix is not symmetric");

  const std::size_t n = a.rows();
  Matrix z = a;
  // Symmetrize exactly so the reduction sees a clean input.
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r + 1; c < n; ++c) {
      const double v = 0.5 * (z(r, c) + z(c, r));
      z(r, c) = v;
      z(c, r) = v;
    }

  Vector d(n, 0.0);
  Vector e(n, 0.0);
  if (n == 1) {
    d[0] = z(0, 0);
    z(0, 0) = 1.0;
  } else {
    tridiagonalize(z, d, e);
    ql_implicit(d, e, z);
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return d[i] > d[j]; });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = d[order[k]];
    for (std::size_t r = 0; r < n; ++r) out.vectors(r, k) = z(r, order[k]);
  }
  return out;
}

std::size_t leading_component_count(const Vector& values_descending,
                                    double variance_share,
                                    double total_variance) {
  std::size_t keep = 0;
  double captured = 0.0;
  while (keep < values_descending.size() &&
         captured < variance_share * total_variance &&
         values_descending[keep] > 0.0) {
    captured += values_descending[keep];
    ++keep;
  }
  return keep;
}

std::size_t leading_component_count(const Vector& values_descending,
                                    double variance_share) {
  double total = 0.0;
  for (double v : values_descending) total += std::max(0.0, v);
  return leading_component_count(values_descending, variance_share, total);
}

Matrix principal_factor(const EigenDecomposition& eig, std::size_t keep) {
  require(keep <= eig.values.size() && keep <= eig.vectors.cols(),
          "principal_factor: keep exceeds available eigenpairs");
  const std::size_t n = eig.vectors.rows();
  Matrix factor(n, keep);
  for (std::size_t k = 0; k < keep; ++k) {
    const double s = std::sqrt(std::max(0.0, eig.values[k]));
    for (std::size_t i = 0; i < n; ++i) factor(i, k) = eig.vectors(i, k) * s;
  }
  return factor;
}

namespace {

// Deterministic local generator for subspace seeding (splitmix64). linalg
// must not depend on stats, and the iteration only needs directions that
// are generic w.r.t. the eigenbasis, not statistical quality.
std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double seed_coordinate(std::uint64_t& state) {
  return static_cast<double>(splitmix64_next(state) >> 11) * 0x1.0p-53 - 0.5;
}

// Modified Gram-Schmidt orthonormalization of the columns of x. Columns
// that collapse numerically (the seed happened to lie in the span of the
// previous ones) are re-seeded from the deterministic stream and retried.
void orthonormalize_columns(Matrix& x, std::uint64_t& state) {
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  for (std::size_t c = 0; c < p; ++c) {
    for (int attempt = 0;; ++attempt) {
      for (std::size_t prev = 0; prev < c; ++prev) {
        double proj = 0.0;
        for (std::size_t r = 0; r < n; ++r) proj += x(r, prev) * x(r, c);
        for (std::size_t r = 0; r < n; ++r) x(r, c) -= proj * x(r, prev);
      }
      double nrm = 0.0;
      for (std::size_t r = 0; r < n; ++r) nrm += x(r, c) * x(r, c);
      nrm = std::sqrt(nrm);
      if (nrm > 1e-12) {
        const double inv = 1.0 / nrm;
        for (std::size_t r = 0; r < n; ++r) x(r, c) *= inv;
        break;
      }
      require(attempt < 8, ErrorCode::kNonconvergence,
              "eigen_symmetric_truncated: cannot orthonormalize subspace");
      for (std::size_t r = 0; r < n; ++r) x(r, c) = seed_coordinate(state);
    }
  }
}

// Dense reference decomposition truncated by the shared capture rule.
EigenDecomposition dense_truncated(const Matrix& a, double variance_capture) {
  EigenDecomposition full = eigen_symmetric(a);
  const std::size_t keep = std::max<std::size_t>(
      1, leading_component_count(full.values, variance_capture));
  EigenDecomposition out;
  out.values.assign(full.values.begin(),
                    full.values.begin() + static_cast<std::ptrdiff_t>(keep));
  out.vectors = Matrix(full.vectors.rows(), keep);
  for (std::size_t k = 0; k < keep; ++k)
    for (std::size_t r = 0; r < full.vectors.rows(); ++r)
      out.vectors(r, k) = full.vectors(r, k);
  return out;
}

}  // namespace

EigenDecomposition eigen_symmetric_truncated(
    const Matrix& a, double variance_capture,
    const TruncatedEigenOptions& options) {
  require(a.rows() == a.cols(),
          "eigen_symmetric_truncated: matrix must be square");
  require(!a.empty(), "eigen_symmetric_truncated: matrix must be non-empty");
  require(variance_capture > 0.0 && variance_capture <= 1.0,
          "eigen_symmetric_truncated: variance_capture must be in (0, 1]");
  const std::size_t n = a.rows();

  // Total variance = trace(A) with negative diagonal clipped; for the PSD
  // covariance inputs this solver targets, the clipped trace equals the
  // clipped eigenvalue sum the dense path uses.
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += std::max(0.0, a(i, i));

  // Small problems: the dense path is already cheap and unconditionally
  // robust. Same for a requested capture so close to 1 that the subspace
  // would have to span most of the spectrum anyway.
  if (n <= 2 * std::max<std::size_t>(options.initial_block, 8))
    return dense_truncated(a, variance_capture);

  std::uint64_t state = 0x0bdc0ffee1234567ull ^ (0x9E3779B97F4A7C15ull * n);
  std::size_t p =
      std::clamp<std::size_t>(options.initial_block, options.guard + 2, n);

  Matrix x(n, p);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < p; ++c) x(r, c) = seed_coordinate(state);
  orthonormalize_columns(x, state);

  Vector prev_ritz;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Power step + Rayleigh-Ritz: Z = A X, H = X^T Z, rotate into the Ritz
    // basis, re-orthonormalize.
    const Matrix z = a.matmul(x);
    Matrix h(p, p);
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = i; j < p; ++j) {
        double s = 0.0;
        for (std::size_t r = 0; r < n; ++r) s += x(r, i) * z(r, j);
        h(i, j) = s;
        h(j, i) = s;
      }
    }
    EigenDecomposition ritz;
    try {
      ritz = eigen_symmetric(h);
    } catch (const Error& e) {
      if (e.code() != ErrorCode::kNonconvergence) throw;
      return dense_truncated(a, variance_capture);
    }
    x = z.matmul(ritz.vectors);
    orthonormalize_columns(x, state);

    const std::size_t keep =
        leading_component_count(ritz.values, variance_capture, total);

    // The subspace must cover the kept set plus a guard band of extra
    // columns (the trailing Ritz pairs are the least converged). Grow
    // geometrically; once the block approaches the full dimension the
    // dense path is cheaper and exact.
    if (keep == 0 || keep + options.guard > p) {
      const std::size_t want =
          std::max(keep + options.guard + 1, 2 * p);
      if (want >= n / 2 + 1) return dense_truncated(a, variance_capture);
      Matrix grown(n, want);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < p; ++c) grown(r, c) = x(r, c);
        for (std::size_t c = p; c < want; ++c)
          grown(r, c) = seed_coordinate(state);
      }
      x = std::move(grown);
      orthonormalize_columns(x, state);
      p = want;
      prev_ritz.clear();
      continue;
    }

    // Converged when the kept Ritz values have stabilized...
    const double scale = std::max(std::fabs(ritz.values[0]), 1e-300);
    bool stable = prev_ritz.size() >= keep;
    for (std::size_t k = 0; stable && k < keep; ++k)
      stable = std::fabs(ritz.values[k] - prev_ritz[k]) <=
               options.tolerance * scale;
    prev_ritz = ritz.values;
    if (!stable) continue;

    // ...and the residuals ||A v - lambda v|| confirm genuine eigenpairs
    // (stabilization alone can be fooled by slow geometric convergence).
    const Matrix ax = a.matmul(x);
    bool accurate = true;
    for (std::size_t k = 0; accurate && k < keep; ++k) {
      double r2 = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        const double res = ax(r, k) - ritz.values[k] * x(r, k);
        r2 += res * res;
      }
      accurate = std::sqrt(r2) <= options.residual_tolerance * scale;
    }
    if (!accurate) continue;

    EigenDecomposition out;
    out.values.assign(ritz.values.begin(),
                      ritz.values.begin() + static_cast<std::ptrdiff_t>(keep));
    out.vectors = Matrix(n, keep);
    for (std::size_t k = 0; k < keep; ++k)
      for (std::size_t r = 0; r < n; ++r) out.vectors(r, k) = x(r, k);
    return out;
  }
  // Ran out of sweeps (clustered spectrum): the dense path settles it.
  return dense_truncated(a, variance_capture);
}

}  // namespace obd::la
