#include "stats/special.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "simd/kernels.hpp"

namespace obd::stats {
namespace {

// Series expansion for P(a, x), effective for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-16)
      return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
  }
  throw Error("gamma_p: series failed to converge");
}

// Continued fraction for Q(a, x), effective for x >= a + 1 (modified
// Lentz's method).
double gamma_q_cf(double a, double x) {
  const double tiny = std::numeric_limits<double>::min() / 1e-30;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-16)
      return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
  }
  throw Error("gamma_q: continued fraction failed to converge");
}

}  // namespace

double gamma_p(double a, double x) {
  require(a > 0.0, "gamma_p: shape must be positive");
  require(x >= 0.0, "gamma_p: x must be non-negative");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  require(a > 0.0, "gamma_q: shape must be positive");
  require(x >= 0.0, "gamma_q: x must be non-negative");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double gamma_p_inverse(double a, double p) {
  require(a > 0.0, "gamma_p_inverse: shape must be positive");
  require(p >= 0.0 && p < 1.0, "gamma_p_inverse: p must be in [0, 1)");
  if (p == 0.0) return 0.0;

  // Wilson–Hilferty starting guess, then safeguarded Newton.
  const double g = std::lgamma(a);
  double x;
  if (a > 1.0) {
    const double z = normal_quantile(p);
    const double t = 1.0 - 1.0 / (9.0 * a) + z / (3.0 * std::sqrt(a));
    x = a * t * t * t;
    if (x <= 0.0) x = 1e-8;
  } else {
    const double t = 1.0 - a * (0.253 + a * 0.12);
    x = (p < t) ? std::pow(p / t, 1.0 / a)
                : 1.0 - std::log1p(-(p - t) / (1.0 - t));
  }

  double lo = 0.0;
  double hi = std::numeric_limits<double>::infinity();
  for (int it = 0; it < 100; ++it) {
    const double f = gamma_p(a, x) - p;
    if (f > 0.0)
      hi = x;
    else
      lo = x;
    const double logpdf = (a - 1.0) * std::log(x) - x - g;
    const double pdf = std::exp(logpdf);
    double step = (pdf > 0.0) ? f / pdf : 0.0;
    double next = x - step;
    if (!(next > lo && next < hi) || pdf == 0.0) {
      next = std::isinf(hi) ? x * 2.0 : 0.5 * (lo + hi);
    }
    if (std::fabs(next - x) <= 1e-14 * x + 1e-300) return next;
    x = next;
  }
  return x;
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

void normal_cdf_batch(const double* z, std::size_t n, double* out) {
  simd::kernels().normal_cdf_batch(z, n, out);
}

double normal_pdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI);
}

double normal_quantile(double p) {
  require(p > 0.0 && p < 1.0, "normal_quantile: p must be in (0, 1)");

  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step drives the error to machine precision.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

}  // namespace obd::stats
