// Variance-reduction sampling plans.
//
// The st_MC analyzer and the measurement simulators draw from standard
// normals; stratifying those draws (Latin hypercube) or pairing them
// antithetically cuts the variance of the resulting (u_j, v_j) clouds for
// the same sample budget. Exposed as reusable primitives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/rng.hpp"

namespace obd::stats {

/// Latin-hypercube sample of `count` points in `dimensions` dimensions,
/// mapped through the standard-normal quantile: each returned row is an
/// N(0, I) point, and each marginal is perfectly stratified into `count`
/// equiprobable bins. Rows are stored contiguously:
/// result[i * dimensions + k].
std::vector<double> latin_hypercube_normal(std::size_t count,
                                           std::size_t dimensions, Rng& rng);

/// Stratified 1-D standard-normal sample: one draw per equiprobable bin,
/// shuffled. Equivalent to latin_hypercube_normal with 1 dimension.
std::vector<double> stratified_normal(std::size_t count, Rng& rng);

/// Exact Binomial(n, p) variate in O(1) expected time regardless of n.
///
/// Small means (n * min(p, 1-p) < 10) use CDF inversion by summing the
/// recurrence; larger means use the BTRS transformed-rejection sampler of
/// Hormann (1993), whose acceptance rate stays above ~0.85 for all (n, p).
/// p > 0.5 is handled through the complement so both branches only ever see
/// p <= 0.5. The number of uniforms consumed is variate-dependent, so
/// callers needing stream stability must rely on the (seed, stream)
/// discipline, not on a fixed per-call draw count.
std::uint64_t binomial_sample(std::uint64_t n, double p, Rng& rng);

}  // namespace obd::stats
