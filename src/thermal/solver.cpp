#include "thermal/solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace obd::thermal {

double ThermalProfile::min_c() const {
  return *std::min_element(cell_temps_c.begin(), cell_temps_c.end());
}

double ThermalProfile::max_c() const {
  return *std::max_element(cell_temps_c.begin(), cell_temps_c.end());
}

double ThermalProfile::at(double x, double y) const {
  const double fx = std::clamp(x / die_width, 0.0, 1.0 - 1e-12);
  const double fy = std::clamp(y / die_height, 0.0, 1.0 - 1e-12);
  const auto col =
      static_cast<std::size_t>(fx * static_cast<double>(resolution));
  const auto row =
      static_cast<std::size_t>(fy * static_cast<double>(resolution));
  return cell_temps_c[row * resolution + col];
}

ThermalProfile solve_thermal(const chip::Design& design,
                             const power::PowerMap& power,
                             const ThermalParams& params) {
  design.validate();
  require(power.block_watts.size() == design.blocks.size(),
          "solve_thermal: power map size mismatch");
  require(params.resolution >= 2, "solve_thermal: resolution must be >= 2");
  require(params.sor_omega > 0.0 && params.sor_omega < 2.0,
          "solve_thermal: SOR omega must be in (0, 2)");
  require(params.package_resistance > 0.0,
          "solve_thermal: package resistance must be positive");

  const std::size_t n = params.resolution;
  const double cw = design.width / static_cast<double>(n);
  const double ch = design.height / static_cast<double>(n);

  // Per-cell power: block power density integrated over the overlap with
  // each cell.
  std::vector<double> cell_power(n * n, 0.0);
  for (std::size_t b = 0; b < design.blocks.size(); ++b) {
    const chip::Rect& rect = design.blocks[b].rect;
    const double density = power.block_watts[b] / rect.area();
    // Restrict the scan to cells the block can overlap.
    const auto c0 = static_cast<std::size_t>(
        std::clamp(rect.x / cw, 0.0, static_cast<double>(n - 1)));
    const auto c1 = static_cast<std::size_t>(std::clamp(
        (rect.x + rect.width) / cw, 0.0, static_cast<double>(n - 1)));
    const auto r0 = static_cast<std::size_t>(
        std::clamp(rect.y / ch, 0.0, static_cast<double>(n - 1)));
    const auto r1 = static_cast<std::size_t>(std::clamp(
        (rect.y + rect.height) / ch, 0.0, static_cast<double>(n - 1)));
    for (std::size_t r = r0; r <= r1; ++r) {
      for (std::size_t c = c0; c <= c1; ++c) {
        const chip::Rect cell{static_cast<double>(c) * cw,
                              static_cast<double>(r) * ch, cw, ch};
        cell_power[r * n + c] += density * rect.overlap(cell);
      }
    }
  }

  // Conductances. Lateral: k * t * (perpendicular length / pitch).
  const double g_lat_x = params.conductivity * params.die_thickness *
                         (ch / cw);  // between horizontal neighbors
  const double g_lat_y = params.conductivity * params.die_thickness *
                         (cw / ch);  // between vertical neighbors
  // Vertical: the total package conductance 1/R distributed by cell area.
  const double g_vert = (1.0 / params.package_resistance) /
                        static_cast<double>(n * n);

  // SOR on: sum_nb g*(T_nb - T_i) + g_vert*(T_amb - T_i) + P_i = 0.
  // Temperatures are stored as rise over ambient; ambient added at the end.
  std::vector<double> t(n * n, 0.0);
  double residual = 0.0;
  std::size_t iter = 0;
  for (; iter < params.max_iterations; ++iter) {
    residual = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        const std::size_t i = r * n + c;
        double g_sum = g_vert;
        double rhs = cell_power[i];
        if (c > 0) {
          g_sum += g_lat_x;
          rhs += g_lat_x * t[i - 1];
        }
        if (c + 1 < n) {
          g_sum += g_lat_x;
          rhs += g_lat_x * t[i + 1];
        }
        if (r > 0) {
          g_sum += g_lat_y;
          rhs += g_lat_y * t[i - n];
        }
        if (r + 1 < n) {
          g_sum += g_lat_y;
          rhs += g_lat_y * t[i + n];
        }
        const double updated = rhs / g_sum;
        const double next = t[i] + params.sor_omega * (updated - t[i]);
        residual = std::max(residual, std::fabs(next - t[i]));
        t[i] = next;
      }
    }
    if (residual < params.tolerance) break;
  }
  require(residual < params.tolerance,
          "solve_thermal: SOR failed to converge");

  ThermalProfile profile;
  profile.resolution = n;
  profile.die_width = design.width;
  profile.die_height = design.height;
  profile.cell_temps_c.resize(n * n);
  for (std::size_t i = 0; i < n * n; ++i)
    profile.cell_temps_c[i] = params.ambient_c + t[i];

  // Block aggregates: overlap-area-weighted average of cell temperatures.
  profile.block_temps_c.resize(design.blocks.size());
  for (std::size_t b = 0; b < design.blocks.size(); ++b) {
    const chip::Rect& rect = design.blocks[b].rect;
    double weighted = 0.0;
    double area = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        const chip::Rect cell{static_cast<double>(c) * cw,
                              static_cast<double>(r) * ch, cw, ch};
        const double ov = rect.overlap(cell);
        if (ov <= 0.0) continue;
        weighted += ov * profile.cell_temps_c[r * n + c];
        area += ov;
      }
    }
    require(area > 0.0, "solve_thermal: block overlaps no cells");
    profile.block_temps_c[b] = weighted / area;
  }
  return profile;
}

ThermalProfile power_thermal_fixed_point(const chip::Design& design,
                                         const power::PowerParams& pparams,
                                         const ThermalParams& tparams,
                                         std::size_t iterations) {
  require(iterations >= 1, "power_thermal_fixed_point: need >= 1 iteration");
  std::vector<double> temps;  // empty -> leakage at 25 C on the first pass
  ThermalProfile profile;
  for (std::size_t i = 0; i < iterations; ++i) {
    const power::PowerMap power = estimate_power(design, pparams, temps);
    profile = solve_thermal(design, power, tparams);
    temps = profile.block_temps_c;
  }
  return profile;
}

}  // namespace obd::thermal
