// Tests for the importance-sampled deep-quantile estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "chip/design.hpp"
#include "common/error.hpp"
#include "core/analytic.hpp"
#include "core/importance.hpp"
#include "core/lifetime.hpp"

namespace obd::core {
namespace {

class ImportanceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_synthetic_design(
        "I1", {.devices = 25000, .block_count = 5, .die_width = 5.0,
               .die_height = 5.0, .seed = 81}));
    model_ = new AnalyticReliabilityModel();
    ProblemOptions opts;
    opts.grid_cells_per_side = 10;
    problem_ = new ReliabilityProblem(ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_,
        {88.0, 64.0, 72.0, 95.0, 70.0}, 1.2, opts));
    fast_ = new AnalyticAnalyzer(*problem_);
  }
  static void TearDownTestSuite() {
    delete fast_;
    delete problem_;
    delete model_;
    delete design_;
    fast_ = nullptr;
    problem_ = nullptr;
    model_ = nullptr;
    design_ = nullptr;
  }
  static chip::Design* design_;
  static AnalyticReliabilityModel* model_;
  static ReliabilityProblem* problem_;
  static AnalyticAnalyzer* fast_;
};

chip::Design* ImportanceFixture::design_ = nullptr;
AnalyticReliabilityModel* ImportanceFixture::model_ = nullptr;
ReliabilityProblem* ImportanceFixture::problem_ = nullptr;
AnalyticAnalyzer* ImportanceFixture::fast_ = nullptr;

TEST_F(ImportanceFixture, AgreesWithAnalyticAtModerateQuantiles) {
  // At ~1e-4 both methods are solid; they must agree within the combined
  // approximation + sampling error.
  const double t = fast_->lifetime_at(1e-4);
  const auto est = importance_failure(*problem_, t, {.samples = 20000});
  EXPECT_NEAR(est.failure / 1e-4, 1.0, 0.15);
  EXPECT_LT(est.std_error, 0.1 * est.failure);
}

TEST_F(ImportanceFixture, ResolvesPartsPerBillionQuantiles) {
  // The conditional-averaging estimator sees 1e-9 directly; the tilt
  // removes the dominant-direction variance for tight error bars.
  const double t = fast_->lifetime_at(1e-9);
  const auto est = importance_failure(*problem_, t, {.samples = 20000});
  EXPECT_GT(est.tilt, 0.0);  // a genuine shift was applied
  EXPECT_NEAR(est.failure / 1e-9, 1.0, 0.25);
  EXPECT_LT(est.std_error, 0.05 * est.failure);
}

TEST_F(ImportanceFixture, TiltReducesVariance) {
  // Same budget with and without the tilt: the tilted estimator's error
  // bar must be materially tighter (the point of the method).
  const double t = fast_->lifetime_at(1e-7);
  const auto plain = importance_failure(
      *problem_, t, {.samples = 8000, .tilt_scale = 0.0});
  const auto tilted = importance_failure(
      *problem_, t, {.samples = 8000, .tilt_scale = 1.0});
  EXPECT_DOUBLE_EQ(plain.tilt, 0.0);
  EXPECT_LT(tilted.std_error, 0.5 * plain.std_error);
  // Both unbiased: they agree within joint error bars.
  EXPECT_NEAR(plain.failure, tilted.failure,
              5.0 * (plain.std_error + tilted.std_error));
}

TEST_F(ImportanceFixture, DeterministicForSeed) {
  const double t = fast_->lifetime_at(1e-7);
  const auto a = importance_failure(*problem_, t, {.samples = 2000, .seed = 5});
  const auto b = importance_failure(*problem_, t, {.samples = 2000, .seed = 5});
  EXPECT_DOUBLE_EQ(a.failure, b.failure);
  const auto c = importance_failure(*problem_, t, {.samples = 2000, .seed = 6});
  EXPECT_NE(a.failure, c.failure);
}

TEST_F(ImportanceFixture, EffectiveSampleSizeIsReported) {
  const double t = fast_->lifetime_at(1e-8);
  const auto est = importance_failure(*problem_, t, {.samples = 4000});
  EXPECT_GT(est.effective_samples, 10.0);
  EXPECT_LE(est.effective_samples, 4000.0 + 1.0);
}

TEST_F(ImportanceFixture, RejectsBadOptions) {
  EXPECT_THROW(importance_failure(*problem_, -1.0, {}), obd::Error);
  EXPECT_THROW(importance_failure(*problem_, 1e8, {.samples = 10}),
               obd::Error);
  ImportanceOptions bad;
  bad.tilt_scale = -1.0;
  EXPECT_THROW(importance_failure(*problem_, 1e8, bad), obd::Error);
}

}  // namespace
}  // namespace obd::core
