#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "numeric/quadrature.hpp"
#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"

namespace obd::stats {
namespace {

TEST(NormalDist, PdfIntegratesToCdf) {
  const Normal n(2.2, 0.03);
  // CDF difference vs numerical integral of the PDF.
  const double integral = num::simpson_1d(
      [&](double x) { return n.pdf(x); }, 2.15, 2.25, 400);
  EXPECT_NEAR(integral, n.cdf(2.25) - n.cdf(2.15), 1e-10);
}

TEST(NormalDist, QuantileRoundTrip) {
  const Normal n(-1.0, 2.5);
  for (double p : {0.001, 0.1, 0.5, 0.9, 0.999})
    EXPECT_NEAR(n.cdf(n.quantile(p)), p, 1e-12);
}

TEST(NormalDist, SampleMoments) {
  const Normal n(5.0, 0.7);
  Rng rng(1);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(n.sample(rng));
  EXPECT_NEAR(s.mean(), 5.0, 0.01);
  EXPECT_NEAR(s.stddev(), 0.7, 0.01);
}

TEST(NormalDist, RejectsBadSigma) {
  EXPECT_THROW(Normal(0.0, 0.0), obd::Error);
  EXPECT_THROW(Normal(0.0, -1.0), obd::Error);
}

TEST(GammaDist, MeanVarianceFormulas) {
  const Gamma g(3.5, 2.0);
  EXPECT_DOUBLE_EQ(g.mean(), 7.0);
  EXPECT_DOUBLE_EQ(g.variance(), 14.0);
}

TEST(GammaDist, PdfIntegratesToOne) {
  const Gamma g(2.5, 1.5);
  const double integral = num::simpson_1d(
      [&](double x) { return g.pdf(x); }, 1e-9, 60.0, 4000);
  EXPECT_NEAR(integral, 1.0, 1e-6);
}

TEST(GammaDist, CdfQuantileRoundTrip) {
  const Gamma g(0.7, 3.0);  // shape < 1 exercises the singular-density case
  for (double p : {0.01, 0.2, 0.5, 0.8, 0.99})
    EXPECT_NEAR(g.cdf(g.quantile(p)), p, 1e-9);
}

TEST(GammaDist, SampleMomentsAcrossShapes) {
  Rng rng(2);
  for (double shape : {0.5, 1.0, 2.0, 9.0}) {
    const Gamma g(shape, 1.3);
    RunningStats s;
    for (int i = 0; i < 200000; ++i) s.add(g.sample(rng));
    EXPECT_NEAR(s.mean(), g.mean(), 0.03 * g.mean()) << "shape " << shape;
    EXPECT_NEAR(s.variance(), g.variance(), 0.05 * g.variance())
        << "shape " << shape;
  }
}

TEST(GammaDist, SamplesAreNonNegative) {
  Rng rng(3);
  const Gamma g(0.4, 2.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(g.sample(rng), 0.0);
}

TEST(ChiSquareDist, MatchesGammaEquivalence) {
  const ChiSquare c(5.0);
  const Gamma g(2.5, 2.0);
  for (double x : {0.5, 2.0, 5.0, 12.0}) {
    EXPECT_NEAR(c.pdf(x), g.pdf(x), 1e-14);
    EXPECT_NEAR(c.cdf(x), g.cdf(x), 1e-14);
  }
  EXPECT_DOUBLE_EQ(c.mean(), 5.0);
  EXPECT_DOUBLE_EQ(c.variance(), 10.0);
}

TEST(ChiSquareDist, SupportsFractionalDof) {
  const ChiSquare c(1.7);  // Yuan-Bentler matches produce fractional dof
  EXPECT_NEAR(c.cdf(c.quantile(0.73)), 0.73, 1e-9);
}

TEST(WeibullDist, CdfMatchesPaperParameterization) {
  // eq. (4): F(t) = 1 - exp(-a (t/alpha)^beta).
  const double alpha = 1e9;
  const double beta = 1.4;
  const double area = 2.5;
  const Weibull w(alpha, beta, area);
  for (double t : {1e6, 1e8, 1e9, 5e9}) {
    const double expected = 1.0 - std::exp(-area * std::pow(t / alpha, beta));
    EXPECT_NEAR(w.cdf(t), expected, 1e-12);
    EXPECT_NEAR(w.reliability(t), 1.0 - expected, 1e-12);
  }
}

TEST(WeibullDist, CharacteristicLifeProperty) {
  // At t = alpha (unit area), F = 1 - 1/e = 63.2%.
  const Weibull w(100.0, 2.0);
  EXPECT_NEAR(w.cdf(100.0), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(WeibullDist, AreaScalingWeakestLink) {
  // A device of area a behaves as a series system of a unit devices:
  // R_a(t) = R_1(t)^a.
  const Weibull unit(1e5, 1.3, 1.0);
  const Weibull big(1e5, 1.3, 7.0);
  for (double t : {1e3, 1e4, 1e5})
    EXPECT_NEAR(big.reliability(t), std::pow(unit.reliability(t), 7.0), 1e-12);
}

TEST(WeibullDist, QuantileSampleConsistency) {
  const Weibull w(5e3, 1.4);
  for (double p : {0.01, 0.5, 0.95})
    EXPECT_NEAR(w.cdf(w.quantile(p)), p, 1e-12);
  Rng rng(4);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(w.sample(rng));
  // E[T] = alpha * Gamma(1 + 1/beta).
  const double expected_mean = 5e3 * std::exp(std::lgamma(1.0 + 1.0 / 1.4));
  EXPECT_NEAR(s.mean(), expected_mean, 0.02 * expected_mean);
}

TEST(WeibullDist, PdfIsDensityOfCdf) {
  const Weibull w(50.0, 2.2, 1.5);
  const double h = 1e-6;
  for (double t : {10.0, 40.0, 90.0}) {
    const double numeric = (w.cdf(t + h) - w.cdf(t - h)) / (2.0 * h);
    EXPECT_NEAR(w.pdf(t), numeric, 1e-6);
  }
}

TEST(WeibullDist, RejectsBadParameters) {
  EXPECT_THROW(Weibull(0.0, 1.0), obd::Error);
  EXPECT_THROW(Weibull(1.0, 0.0), obd::Error);
  EXPECT_THROW(Weibull(1.0, 1.0, 0.0), obd::Error);
}

}  // namespace
}  // namespace obd::stats
