// Crash-safe DRM runtime: durable checkpoint/restore around the
// ReliabilityManager control loop.
//
// The manager itself is library-only state: a process crash loses every
// block's accumulated OBD damage, and a restarted controller that believes
// the chip is fresh will overspend the end-of-life failure budget — for a
// lifetime-budget controller that is a safety failure, not an
// inconvenience. DrmRuntime wraps the manager with the durability layer a
// production monitor needs:
//
//   - every step's telemetry sample and outcome (including the post-step
//     per-block damage state) is appended to a CRC-framed journal,
//   - every `checkpoint_every` steps the full state is snapshotted
//     atomically into one of two alternating slot files, and the journal
//     is rotated so it only ever spans the last two checkpoint epochs,
//   - on startup with `resume`, the newest valid snapshot is loaded and
//     the journal tail deterministically replayed on top of it; corrupt
//     records trigger the recovery ladder (previous snapshot, then
//     journal-only replay from cold state, then guard-band cold start with
//     a kDegraded-eligible diagnostic) — durable state is never silently
//     reset to zero without a recorded warning.
//
// Persistence failures at run time (full disk, torn checkpoint write) are
// themselves degradations, not crashes: the control loop keeps running
// with a `drm.checkpoint` / `drm.journal` diagnostic, and strict mode
// escalates them like every other repair.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/checkpoint.hpp"
#include "drm/manager.hpp"

namespace obd::drm {

/// Durability configuration of the runtime.
struct RuntimeOptions {
  /// Directory holding the snapshot slots and journal. Empty disables
  /// durability (the runtime is then a thin pass-through). Created if
  /// missing.
  std::string checkpoint_dir;
  /// Steps between atomic snapshots; the journal bounds the loss window
  /// between them to (at most) the single step whose append was torn.
  std::size_t checkpoint_every = 16;
  /// fsync the journal after every append. Durable by default; benchmarks
  /// may disable it to measure the OS-buffered floor.
  bool sync_journal = true;
  /// Recover state from checkpoint_dir before the first step.
  bool resume = false;
};

/// How the runtime obtained its starting state.
struct RecoveryInfo {
  enum class Source {
    kFresh,       ///< no resume requested
    kCheckpoint,  ///< snapshot (+ journal tail) recovered cleanly
    kJournal,     ///< no usable snapshot; journal replayed from cold state
    kColdStart,   ///< nothing recoverable — guard-band cold start
  };
  Source source = Source::kFresh;
  std::size_t resumed_step = 0;      ///< steps already accounted for
  std::size_t replayed_records = 0;  ///< journal records applied on top
  /// True when recovery lost state it should have had (fell back past the
  /// newest snapshot, hit a journal gap, or found nothing at all). Always
  /// accompanied by a `drm.recover` diagnostic.
  bool degraded = false;
  std::string detail;  ///< human-readable account of the recovery path
};

/// Durable wrapper around ReliabilityManager. Construction performs
/// recovery (when requested); step() journals and periodically
/// checkpoints.
class DrmRuntime {
 public:
  DrmRuntime(const core::ReliabilityProblem& problem,
             const core::DeviceReliabilityModel& model,
             std::vector<OperatingPoint> ladder, const DrmOptions& options,
             RuntimeOptions runtime_options);

  /// One control step: delegates to the manager, journals the outcome,
  /// and snapshots every checkpoint_every steps. Persistence failures
  /// degrade (diagnostic) instead of propagating; the manager's own
  /// robustness contract is unchanged.
  DrmStep step(double workload_activity);

  /// Forces an atomic snapshot of the current state (and rotates the
  /// journal). Called automatically every checkpoint_every steps; callers
  /// use it for a final snapshot at orderly shutdown. Throws Error(kIo)
  /// only when durability is disabled-on-failure would lie — i.e. never:
  /// failures warn `drm.checkpoint` and return false.
  bool checkpoint_now();

  /// Steps taken across all process lifetimes (resumed + this one).
  [[nodiscard]] std::size_t step_count() const { return step_count_; }

  /// Publishes a `drm.step_ms` stat with the p50/p99 of this process's
  /// per-step control latencies — the observability counterpart of the
  /// `drm.deadline` watchdog warning, so deadlines can be tuned against
  /// measured behavior instead of the failure case only. No-op before the
  /// first step. Wall time feeds the stat line, never the control state.
  void publish_step_stats() const;

  [[nodiscard]] const RecoveryInfo& recovery() const { return recovery_; }
  [[nodiscard]] const ReliabilityManager& manager() const { return mgr_; }
  [[nodiscard]] bool durable() const { return !opts_.checkpoint_dir.empty(); }

  /// Fingerprint of the configuration this runtime persists state for
  /// (ladder, budget, interval, block count). Snapshots and journal
  /// records from a different configuration are rejected on recovery.
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  struct JournalRecord {
    std::uint64_t fingerprint = 0;
    std::size_t step = 0;
    DrmStep outcome;
    double activity = 0.0;
    double elapsed_s = 0.0;
    /// Full damage_state() vector (oxide per block, then mechanism-major
    /// aging damage); named for the oxide-only era whose byte layout it
    /// preserves.
    std::vector<double> block_damage;
  };

  [[nodiscard]] std::string slot_path(int slot) const;
  [[nodiscard]] std::string journal_path() const;
  [[nodiscard]] std::string journal_prev_path() const;

  [[nodiscard]] std::string encode_snapshot() const;
  [[nodiscard]] std::string encode_record(const JournalRecord& rec) const;
  [[nodiscard]] static bool decode_record(const std::string& payload,
                                          std::size_t n_state,
                                          JournalRecord* out);

  void recover();
  void open_journal(bool truncate);

  ReliabilityManager mgr_;
  RuntimeOptions opts_;
  std::uint64_t fingerprint_ = 0;
  std::size_t step_count_ = 0;
  int next_slot_ = 0;  ///< slot the next snapshot is written into
  RecoveryInfo recovery_;
  std::unique_ptr<ckpt::JournalWriter> journal_;
  std::vector<double> step_ms_;  ///< this process's per-step latencies
};

}  // namespace obd::drm
