// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cmath>
#include <cstdlib>
#include <string>

namespace obd::bench {

/// Reads a positive integer from the environment (workload scaling knobs
/// like OBDREL_MC_CHIPS), falling back to `fallback`.
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const long long v = std::atoll(raw);
  return (v > 0) ? static_cast<std::size_t>(v) : fallback;
}

/// Relative error in percent, |a - b| / b * 100.
inline double pct_error(double a, double b) {
  return 100.0 * std::abs(a - b) / b;
}

inline constexpr double kYear = 365.25 * 24.0 * 3600.0;

}  // namespace obd::bench
