// Oxide-thickness variation modeling (Section II of the paper).
//
// Thickness decomposes as x = u0 + z_g + z_corr + z_eps (eq. 1): a die-to-die
// global shift, a spatially correlated intra-die component on a grid, and a
// per-device independent residual. The correlated structure is captured by a
// grid covariance matrix and re-expressed in PCA canonical form (eq. 2):
//
//   x = lambda_{i,0} + sum_j lambda_{i,j} z_j + lambda_r * eps
//
// with z_j independent standard normals shared across the chip and eps a
// per-device standard normal.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "chip/design.hpp"
#include "linalg/matrix.hpp"
#include "stats/rng.hpp"

namespace obd::var {

/// Variance budget for oxide thickness (Table II of the paper):
/// 3*sigma_total / nominal = 4%, split 50% global / 25% spatially
/// correlated / 25% independent (variance shares).
struct VariationBudget {
  double nominal = 2.2;               ///< nominal thickness u0 [nm]
  double three_sigma_fraction = 0.04; ///< 3*sigma_tot / u0
  double global_share = 0.50;        ///< sigma_g^2 / sigma_tot^2
  double spatial_share = 0.25;       ///< sigma_sp^2 / sigma_tot^2
  double independent_share = 0.25;   ///< sigma_eps^2 / sigma_tot^2

  [[nodiscard]] double sigma_total() const {
    return nominal * three_sigma_fraction / 3.0;
  }
  [[nodiscard]] double sigma_global() const;
  [[nodiscard]] double sigma_spatial() const;
  [[nodiscard]] double sigma_independent() const;

  /// Throws obd::Error unless shares are non-negative and sum to 1.
  void validate() const;
};

/// Regular g x g spatial-correlation grid over the die (Fig. 2).
class GridModel {
 public:
  GridModel(double die_width, double die_height, std::size_t cells_per_side);

  [[nodiscard]] std::size_t cells_per_side() const { return side_; }
  [[nodiscard]] std::size_t cell_count() const { return side_ * side_; }
  [[nodiscard]] double die_width() const { return width_; }
  [[nodiscard]] double die_height() const { return height_; }

  /// Grid index of the cell containing die point (x, y) (clamped).
  [[nodiscard]] std::size_t index_at(double x, double y) const;

  /// Cell rectangle for cell i.
  [[nodiscard]] chip::Rect cell_rect(std::size_t i) const;

  /// Euclidean center-to-center distance between cells i and j [mm].
  [[nodiscard]] double distance(std::size_t i, std::size_t j) const;

 private:
  double width_;
  double height_;
  std::size_t side_;
};

/// Valid (positive-semidefinite) spatial correlation function families,
/// per the general framework the paper cites for correlation modeling
/// (ref [38], Liu DAC'07). All are parameterized by a correlation length L.
enum class CorrelationKernel {
  kExponential,  ///< exp(-d/L) — the paper's Section V choice
  kGaussian,     ///< exp(-(d/L)^2) — smooth (infinitely differentiable)
  kMatern32,     ///< (1 + sqrt(3) d/L) exp(-sqrt(3) d/L)
  kSpherical,    ///< 1 - 1.5 (d/L) + 0.5 (d/L)^3 for d < L, else 0
};

/// Evaluates the chosen correlation kernel at distance d with length L.
double kernel_correlation(CorrelationKernel kernel, double d, double length);

/// Builds the n x n grid covariance of total *correlated* thickness
/// variation: C[i][j] = sigma_g^2 + sigma_sp^2 * rho(d_ij), where the
/// correlation length L = rho_dist * max(die dimensions) (the paper
/// normalizes rho_dist w.r.t. the chip dimensions; Section V uses
/// rho_dist in {0.25, 0.5, 0.75} with the exponential kernel). The global
/// component is folded in as a rank-one constant term so one PCA handles
/// both (the compatibility noted at the end of Section II).
la::Matrix build_covariance(
    const GridModel& grid, const VariationBudget& budget, double rho_dist,
    CorrelationKernel kernel = CorrelationKernel::kExponential);

/// Optional wafer-level systematic pattern (Section II, refs [21][23]):
/// a quadratic bowl/tilt added to the per-grid nominal thickness,
/// nominal_i += a*xn^2 + b*yn^2 + c*xn + d*yn with (xn, yn) in [-1, 1]
/// die-normalized coordinates.
struct WaferPattern {
  double bow_x = 0.0;   ///< quadratic coefficient along x [nm]
  double bow_y = 0.0;   ///< quadratic coefficient along y [nm]
  double tilt_x = 0.0;  ///< linear coefficient along x [nm]
  double tilt_y = 0.0;  ///< linear coefficient along y [nm]

  [[nodiscard]] bool empty() const {
    return bow_x == 0.0 && bow_y == 0.0 && tilt_x == 0.0 && tilt_y == 0.0;
  }
  [[nodiscard]] double offset(double xn, double yn) const {
    return bow_x * xn * xn + bow_y * yn * yn + tilt_x * xn + tilt_y * yn;
  }
};

/// PCA canonical form of the thickness model (eq. 2).
class CanonicalForm {
 public:
  /// nominal[i] = lambda_{i,0}; sensitivity(i, k) = lambda_{i,k};
  /// residual_sigma = lambda_r.
  CanonicalForm(la::Vector nominal, la::Matrix sensitivity,
                double residual_sigma);

  [[nodiscard]] std::size_t grid_count() const { return nominal_.size(); }
  [[nodiscard]] std::size_t pc_count() const { return sensitivity_.cols(); }
  [[nodiscard]] double residual_sigma() const { return residual_sigma_; }
  [[nodiscard]] double nominal(std::size_t grid) const {
    return nominal_[grid];
  }
  [[nodiscard]] double sensitivity(std::size_t grid, std::size_t pc) const {
    return sensitivity_(grid, pc);
  }
  [[nodiscard]] const la::Matrix& sensitivities() const {
    return sensitivity_;
  }

  /// Correlated part of the thickness in `grid` for principal components z.
  [[nodiscard]] double correlated_thickness(std::size_t grid,
                                            const la::Vector& z) const;

  /// Full device thickness: correlated part + lambda_r * eps.
  [[nodiscard]] double thickness(std::size_t grid, const la::Vector& z,
                                 double eps) const;

  /// Marginal standard deviation of the correlated part in `grid`
  /// (sqrt of sum of squared sensitivities).
  [[nodiscard]] double correlated_sigma(std::size_t grid) const;

  /// Draws z ~ N(0, I_pc_count).
  [[nodiscard]] la::Vector sample_z(stats::Rng& rng) const;

 private:
  la::Vector nominal_;
  la::Matrix sensitivity_;
  double residual_sigma_;
};

/// Eigensolver backing the PCA step of make_canonical_form.
enum class EigenSolver {
  kDense,      ///< full Householder + QL decomposition (the reference)
  kTruncated,  ///< blocked subspace iteration converging only the kept PCs
};

/// Builds the canonical form for a die: covariance -> eigendecomposition ->
/// sensitivities lambda_{i,k} = V_{ik} sqrt(eig_k). Principal components
/// with cumulative variance beyond `variance_capture` (in (0, 1]) are
/// truncated — the paper notes "the number of principal components (usually
/// fewer than hundreds) is much smaller than the number of devices".
/// `solver` selects the dense reference decomposition (default) or the
/// truncated subspace-iteration path that converges only the kept leading
/// components (worthwhile for large grids with variance_capture < 1).
CanonicalForm make_canonical_form(
    const GridModel& grid, const VariationBudget& budget, double rho_dist,
    double variance_capture = 0.999, const WaferPattern& pattern = {},
    CorrelationKernel kernel = CorrelationKernel::kExponential,
    EigenSolver solver = EigenSolver::kDense);

/// Device placement summary: for each design block, the share of its
/// devices falling in each correlation grid cell (devices are assumed
/// uniformly spread over the block rectangle). Entries are
/// (grid index, weight) with weights summing to 1 per block.
///
/// This single structure feeds both the analytic BLOD characterization
/// (eq. 22/24) and the Monte Carlo per-device sampler, guaranteeing that
/// the compared methods see the same layout.
struct BlockGridLayout {
  std::vector<std::vector<std::pair<std::size_t, double>>> weights;
};

BlockGridLayout assign_devices(const chip::Design& design,
                               const GridModel& grid);

}  // namespace obd::var
