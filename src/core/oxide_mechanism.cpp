#include "core/oxide_mechanism.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "numeric/roots.hpp"

namespace obd::core {

OxideMechanism::OxideMechanism(const ReliabilityProblem& problem,
                               const AnalyticOptions& options,
                               const DeviceReliabilityModel* model)
    : problem_(&problem), model_(model), analyzer_(problem, options) {}

double OxideMechanism::block_cdf(std::size_t j, double t,
                                 const mech::OperatingConditions& c) const {
  require(j < problem_->blocks().size(), "OxideMechanism::block_cdf: index");
  if (model_ == nullptr) {
    // Baked-in operating point: exactly the analytic per-block kernel.
    return analyzer_.block_failure(j, t);
  }
  BlockParams block = problem_->blocks()[j];
  block.alpha = model_->alpha(c.temp_c, c.vdd);
  block.b = model_->b(c.temp_c, c.vdd);
  block.temp_c = c.temp_c;
  return block_failure_from_nodes(block, analyzer_.nodes()[j], t);
}

double OxideMechanism::block_time_at(std::size_t j, double f,
                                     const mech::OperatingConditions& c) const {
  require(j < problem_->blocks().size(),
          "OxideMechanism::block_time_at: index");
  if (!(f > 0.0)) return 0.0;
  const double target = std::min(f, 1.0 - 1e-12);
  // Invert the monotone per-block CDF in log time (the same bracket the
  // MC sampler uses for its per-chip root-find).
  const auto g = [&](double log_t) {
    return block_cdf(j, std::exp(log_t), c) - target;
  };
  const double log_t = num::brent_auto_bracket(
      g, std::log(1e6), std::log(1e12), 1e-12, 2.0, 60);
  return std::exp(log_t);
}

}  // namespace obd::core
