// Table-driven tests for the CLI's self-description contract: every
// subcommand answers `help`, `--help`, and `-h` with usage on stdout and
// exit 0; an unknown subcommand names itself and the valid list on stderr
// and exits with the config code (2); bare invocation and unknown flags do
// the same. Runs the real binary (path baked in as OBDREL_CLI_PATH).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

struct CmdResult {
  int status = -1;
  std::string out;
  std::string err;
};

CmdResult run_cli(const std::string& args, const std::string& err_file) {
  const std::string full =
      std::string(OBDREL_CLI_PATH) + " " + args + " 2>" + err_file;
  CmdResult r;
  FILE* p = ::popen(full.c_str(), "r");
  if (p == nullptr) return r;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, p)) > 0) r.out.append(buf, n);
  const int rc = ::pclose(p);
  if (WIFEXITED(rc)) r.status = WEXITSTATUS(rc);
  else if (WIFSIGNALED(rc)) r.status = 128 + WTERMSIG(rc);
  std::ifstream in(err_file);
  std::ostringstream os;
  os << in.rdbuf();
  r.err = os.str();
  return r;
}

constexpr const char* kSubcommands[] = {"analyze", "report", "thermal",
                                        "lut",     "drm",    "fleet",
                                        "serve"};

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fs::exists(OBDREL_CLI_PATH)) << OBDREL_CLI_PATH;
    err_file_ = ::testing::TempDir() + "obdrel-cli-" +
                ::testing::UnitTest::GetInstance()->current_test_info()
                    ->name() +
                ".err";
  }
  void TearDown() override { fs::remove(err_file_); }
  CmdResult run(const std::string& args) { return run_cli(args, err_file_); }
  std::string err_file_;
};

TEST_F(CliTest, EverySubcommandAnswersHelpOnStdoutWithExitZero) {
  for (const char* cmd : kSubcommands) {
    for (const char* form : {"help", "--help", "-h"}) {
      const CmdResult r = run(std::string(cmd) + " " + form);
      EXPECT_EQ(r.status, 0) << cmd << " " << form << "\n" << r.err;
      EXPECT_EQ(r.out.rfind("usage:", 0), 0u) << cmd << " " << form;
      EXPECT_TRUE(r.err.empty()) << cmd << " " << form << "\n" << r.err;
    }
  }
}

TEST_F(CliTest, BareHelpFormsGoToStdoutWithExitZero) {
  for (const char* form : {"help", "--help", "-h"}) {
    const CmdResult r = run(form);
    EXPECT_EQ(r.status, 0) << form << "\n" << r.err;
    EXPECT_EQ(r.out.rfind("usage:", 0), 0u) << form;
  }
}

TEST_F(CliTest, UsageAdvertisesEverySubcommand) {
  const CmdResult r = run("help");
  ASSERT_EQ(r.status, 0);
  for (const char* cmd : kSubcommands)
    EXPECT_NE(r.out.find(std::string(" ") + cmd + " "), std::string::npos)
        << cmd << " missing from usage:\n"
        << r.out;
}

TEST_F(CliTest, UnknownSubcommandNamesItselfAndTheValidList) {
  const CmdResult r = run("analzye some.cfg");
  EXPECT_EQ(r.status, 2);  // config error, not internal
  EXPECT_TRUE(r.out.empty()) << r.out;
  EXPECT_NE(r.err.find("unknown subcommand 'analzye'"), std::string::npos)
      << r.err;
  EXPECT_NE(
      r.err.find(
          "valid: analyze, report, thermal, lut, drm, fleet, serve, help"),
      std::string::npos)
      << r.err;
}

TEST_F(CliTest, BareInvocationPrintsUsageToStderrWithConfigExit) {
  const CmdResult r = run("");
  EXPECT_EQ(r.status, 2);
  EXPECT_TRUE(r.out.empty()) << r.out;
  EXPECT_NE(r.err.find("usage:"), std::string::npos) << r.err;
}

TEST_F(CliTest, UnknownFlagIsAConfigErrorNamingTheFlag) {
  const CmdResult r = run("--frobnicate");
  EXPECT_EQ(r.status, 2);
  EXPECT_NE(r.err.find("unknown flag '--frobnicate'"), std::string::npos)
      << r.err;
}

TEST_F(CliTest, MissingFlagValueIsAConfigError) {
  const CmdResult r = run("serve cfg --socket");
  EXPECT_EQ(r.status, 2);
  EXPECT_NE(r.err.find("--socket needs a value"), std::string::npos)
      << r.err;
}

}  // namespace
