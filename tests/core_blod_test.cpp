#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/blod.hpp"
#include "stats/descriptive.hpp"

namespace obd::core {
namespace {

struct Fixture {
  var::VariationBudget budget;
  var::GridModel grid{10.0, 10.0, 5};
  var::CanonicalForm canonical =
      var::make_canonical_form(grid, budget, 0.5, 1.0);
};

TEST(Blod, UMomentsMatchAnalyticOverPcSamples) {
  Fixture f;
  // Block spanning grids 0, 1, 5, 6 with equal device shares.
  BlodMoments blod(f.canonical,
                   {{0, 0.25}, {1, 0.25}, {5, 0.25}, {6, 0.25}}, 10000);
  stats::Rng rng(1);
  stats::RunningStats s;
  for (int i = 0; i < 100000; ++i)
    s.add(blod.u_value(f.canonical.sample_z(rng)));
  EXPECT_NEAR(s.mean(), blod.u_nominal(), 1e-3);
  // u_value excludes the tiny independent-residual term; compare against
  // the correlated part of u_sigma.
  const double resid = f.canonical.residual_sigma() / std::sqrt(10000.0);
  const double corr_sigma =
      std::sqrt(blod.u_sigma() * blod.u_sigma() - resid * resid);
  EXPECT_NEAR(s.stddev(), corr_sigma, 0.02 * corr_sigma);
}

TEST(Blod, UNominalIsWeightedGridNominal) {
  Fixture f;
  BlodMoments blod(f.canonical, {{0, 0.5}, {24, 0.5}}, 5000);
  EXPECT_NEAR(blod.u_nominal(),
              0.5 * (f.canonical.nominal(0) + f.canonical.nominal(24)),
              1e-12);
  EXPECT_NEAR(blod.u_marginal().mean(), blod.u_nominal(), 1e-15);
  EXPECT_NEAR(blod.u_marginal().stddev(), blod.u_sigma(), 1e-15);
}

TEST(Blod, VMomentsMatchSampledValues) {
  Fixture f;
  BlodMoments blod(f.canonical, {{0, 0.4}, {4, 0.3}, {20, 0.3}}, 20000);
  ASSERT_FALSE(blod.v_degenerate());
  stats::Rng rng(2);
  stats::RunningStats s;
  for (int i = 0; i < 200000; ++i)
    s.add(blod.v_value(f.canonical.sample_z(rng)));
  EXPECT_NEAR(s.mean(), blod.v_mean(), 0.01 * blod.v_mean());
  EXPECT_NEAR(s.variance(), blod.v_variance(), 0.05 * blod.v_variance());
}

TEST(Blod, SingleGridBlockIsDegenerate) {
  Fixture f;
  BlodMoments blod(f.canonical, {{7, 1.0}}, 5000);
  EXPECT_TRUE(blod.v_degenerate());
  // v collapses to the residual variance lambda_r^2.
  const double sr = f.canonical.residual_sigma();
  EXPECT_NEAR(blod.v_mean(), sr * sr, 1e-15);
  EXPECT_THROW(blod.v_marginal(), obd::Error);
  // And any realization agrees.
  stats::Rng rng(3);
  EXPECT_NEAR(blod.v_value(f.canonical.sample_z(rng)), sr * sr, 1e-12);
}

TEST(Blod, QuadraticFormAgreesWithFastPath) {
  Fixture f;
  BlodMoments blod(f.canonical, {{2, 0.5}, {3, 0.25}, {8, 0.25}}, 8000);
  const stats::QuadraticForm form = blod.v_quadratic_form(f.canonical);
  // Moments agree with the grid-pair computation.
  EXPECT_NEAR(form.mean(), blod.v_mean(), 1e-9 * blod.v_mean());
  // The explicit form has no residual-sampling-noise term, hence slightly
  // smaller variance; the difference is 2 sigma_r^4/(m-1).
  const double sr = f.canonical.residual_sigma();
  const double noise = 2.0 * sr * sr * sr * sr / (8000.0 - 1.0);
  EXPECT_NEAR(form.variance() + noise, blod.v_variance(),
              1e-9 * blod.v_variance());
  // Pointwise value agreement.
  stats::Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const la::Vector z = f.canonical.sample_z(rng);
    EXPECT_NEAR(form.value(z), blod.v_value(z),
                1e-9 * std::max(form.value(z), blod.v_value(z)));
  }
}

TEST(Blod, UAndVAreUncorrelatedLemma) {
  // The paper's Lemma: E[u v] = E[u] E[v] under the canonical model.
  Fixture f;
  BlodMoments blod(f.canonical, {{0, 0.3}, {12, 0.4}, {24, 0.3}}, 30000);
  stats::Rng rng(5);
  const int n = 400000;
  double sum_u = 0.0;
  double sum_v = 0.0;
  double sum_uv = 0.0;
  for (int i = 0; i < n; ++i) {
    const la::Vector z = f.canonical.sample_z(rng);
    const double u = blod.u_value(z);
    const double v = blod.v_value(z);
    sum_u += u;
    sum_v += v;
    sum_uv += u * v;
  }
  const double cov = sum_uv / n - (sum_u / n) * (sum_v / n);
  const double scale = blod.u_sigma() * std::sqrt(blod.v_variance());
  // Correlation coefficient statistically indistinguishable from 0.
  EXPECT_NEAR(cov / scale, 0.0, 0.01);
}

TEST(Blod, ChiSquareMarginalMatchesSampledQuantiles) {
  Fixture f;
  BlodMoments blod(f.canonical,
                   {{0, 0.2}, {6, 0.2}, {12, 0.2}, {18, 0.2}, {24, 0.2}},
                   50000);
  const stats::ShiftedChiSquare fv = blod.v_marginal();
  EXPECT_NEAR(fv.mean(), blod.v_mean(), 1e-12);
  EXPECT_NEAR(fv.variance(), blod.v_variance(), 1e-12);

  stats::Rng rng(6);
  std::vector<double> samples;
  samples.reserve(200000);
  for (int i = 0; i < 200000; ++i)
    samples.push_back(blod.v_value(f.canonical.sample_z(rng)));
  std::sort(samples.begin(), samples.end());
  // CDF agreement at a few quantiles (the Fig. 8 claim at BLOD scale).
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double x = fv.quantile(p);
    EXPECT_NEAR(stats::empirical_cdf(samples, x), p, 0.06) << "p=" << p;
  }
}

TEST(Blod, LargerBlockHasSmallerIndependentTerm) {
  Fixture f;
  BlodMoments small(f.canonical, {{0, 1.0}}, 100);
  BlodMoments large(f.canonical, {{0, 1.0}}, 100000);
  EXPECT_GT(small.u_sigma(), large.u_sigma());
}

TEST(Blod, RejectsBadConstruction) {
  Fixture f;
  EXPECT_THROW(BlodMoments(f.canonical, {}, 100), obd::Error);
  EXPECT_THROW(BlodMoments(f.canonical, {{0, 1.0}}, 1), obd::Error);
  EXPECT_THROW(BlodMoments(f.canonical, {{99, 1.0}}, 100), obd::Error);
  EXPECT_THROW(BlodMoments(f.canonical, {{0, 0.4}}, 100), obd::Error);
}

TEST(Blod, WaferPatternInducesLinearTermInV) {
  // With a systematic nominal gradient across the block, d_g != 0 and the
  // generalized eq. (24) gains constant and linear contributions.
  var::VariationBudget budget;
  var::GridModel grid(10.0, 10.0, 5);
  var::WaferPattern pattern;
  pattern.tilt_x = 0.05;
  const var::CanonicalForm canonical =
      var::make_canonical_form(grid, budget, 0.5, 1.0, pattern);
  BlodMoments blod(canonical, {{0, 0.5}, {4, 0.5}}, 10000);
  // Constant part now exceeds the bare residual variance.
  const double sr2 = std::pow(canonical.residual_sigma(), 2);
  EXPECT_GT(blod.v_constant(), sr2 * 1.5);
  // Sampled mean still matches the analytic mean.
  stats::Rng rng(7);
  stats::RunningStats s;
  for (int i = 0; i < 100000; ++i)
    s.add(blod.v_value(canonical.sample_z(rng)));
  EXPECT_NEAR(s.mean(), blod.v_mean(), 0.01 * blod.v_mean());
}

}  // namespace
}  // namespace obd::core
