// Robustness tests: malformed inputs must raise typed obd::Error (never
// crash or hang), and every registered fault-injection site must either
// recover gracefully (with a diagnostic) or fail with the documented
// error code.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <vector>

#include "chip/design.hpp"
#include "chip/floorplan_io.hpp"
#include "common/checkpoint.hpp"
#include "common/config.hpp"
#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "core/device_model.hpp"
#include "core/hybrid.hpp"
#include "core/problem.hpp"
#include "drm/manager.hpp"
#include "fleet/shard.hpp"
#include "fleet/supervisor.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eigen.hpp"
#include "numeric/quadrature.hpp"
#include "power/power.hpp"
#include "power/trace_io.hpp"
#include "serve/cache.hpp"
#include "serve/engine.hpp"
#include "serve/server.hpp"
#include "thermal/solver.hpp"
#include "variation/model.hpp"

namespace obd {
namespace {

// Every test starts and ends with a pristine fault/diagnostic state.
class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::disarm();
    diagnostics().clear();
    set_strict_mode(false);
  }
  void TearDown() override {
    fault::disarm();
    diagnostics().clear();
    set_strict_mode(false);
  }
};

template <typename Fn>
ErrorCode thrown_code(Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.code();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "expected obd::Error, got: " << e.what();
    return ErrorCode::kInternal;
  }
  ADD_FAILURE() << "expected obd::Error, nothing was thrown";
  return ErrorCode::kInternal;
}

chip::Design small_design() {
  return chip::make_synthetic_design(
      "robust", {.devices = 20000, .block_count = 4, .die_width = 4.0,
                 .die_height = 4.0, .seed = 5});
}

// ---------------------------------------------------------------------------
// Malformed config
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, ConfigRejectsGarbageLines) {
  std::istringstream in("grid 12\nthis-line-has-no-value\n");
  EXPECT_EQ(thrown_code([&] { Config::parse(in); }), ErrorCode::kConfig);
}

TEST_F(RobustnessTest, ConfigRejectsNonNumericValues) {
  std::istringstream in("t_seconds 12abc\n");
  Config cfg = Config::parse(in);
  EXPECT_EQ(thrown_code([&] { (void)cfg.get_double("t_seconds"); }),
            ErrorCode::kConfig);
}

TEST_F(RobustnessTest, ConfigMissingFileIsIoError) {
  EXPECT_EQ(
      thrown_code([&] { Config::parse_file("/nonexistent/obdrel.cfg"); }),
      ErrorCode::kIo);
}

TEST_F(RobustnessTest, ConfigCountsMustBePositive) {
  std::istringstream in("grid 0\nmc_chips -100\nok 7\n");
  Config cfg = Config::parse(in);
  EXPECT_EQ(thrown_code([&] { (void)cfg.get_count("grid", 20); }),
            ErrorCode::kInvalidInput);
  EXPECT_EQ(thrown_code([&] { (void)cfg.get_count("mc_chips", 20); }),
            ErrorCode::kInvalidInput);
  EXPECT_EQ(cfg.get_count("ok", 20), 7u);
  EXPECT_EQ(cfg.get_count("absent", 20), 20u);
}

// ---------------------------------------------------------------------------
// Malformed floorplan
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, FloorplanRejectsTruncatedLine) {
  std::istringstream in("alu 0.001 0.002\n");
  EXPECT_EQ(thrown_code([&] { chip::load_floorplan(in); }),
            ErrorCode::kInvalidInput);
}

TEST_F(RobustnessTest, FloorplanRejectsNonFiniteDimensions) {
  std::istringstream nan_in("alu nan 0.002 0.0 0.0\n");
  EXPECT_EQ(thrown_code([&] { chip::load_floorplan(nan_in); }),
            ErrorCode::kInvalidInput);
  std::istringstream inf_in("alu 0.001 inf 0.0 0.0\n");
  EXPECT_EQ(thrown_code([&] { chip::load_floorplan(inf_in); }),
            ErrorCode::kInvalidInput);
}

TEST_F(RobustnessTest, FloorplanRejectsNegativeDimensions) {
  std::istringstream in("alu -0.001 0.002 0.0 0.0\n");
  EXPECT_EQ(thrown_code([&] { chip::load_floorplan(in); }),
            ErrorCode::kInvalidInput);
}

TEST_F(RobustnessTest, FloorplanRejectsGarbageNumbers) {
  std::istringstream in("alu abc 0.002 0.0 0.0\n");
  EXPECT_EQ(thrown_code([&] { chip::load_floorplan(in); }),
            ErrorCode::kInvalidInput);
}

TEST_F(RobustnessTest, FloorplanRejectsEmptyStream) {
  std::istringstream in("# only comments\n\n");
  EXPECT_EQ(thrown_code([&] { chip::load_floorplan(in); }),
            ErrorCode::kInvalidInput);
}

TEST_F(RobustnessTest, FloorplanMissingFileIsIoError) {
  EXPECT_EQ(
      thrown_code([&] { chip::load_floorplan_file("/nonexistent/x.flp"); }),
      ErrorCode::kIo);
}

// ---------------------------------------------------------------------------
// Malformed power trace
// ---------------------------------------------------------------------------

class PtraceTest : public RobustnessTest {
 protected:
  PtraceTest() : design_(small_design()) {
    std::ostringstream h;
    for (std::size_t j = 0; j < design_.blocks.size(); ++j)
      h << design_.blocks[j].name
        << (j + 1 < design_.blocks.size() ? ' ' : '\n');
    header_ = h.str();
  }
  chip::Design design_;
  std::string header_;  // valid header naming every design block
};

TEST_F(PtraceTest, RejectsUnknownBlockHeader) {
  std::istringstream in("bogus_block_name\n1.0\n");
  EXPECT_EQ(thrown_code([&] { power::load_power_trace(in, design_); }),
            ErrorCode::kInvalidInput);
}

TEST_F(PtraceTest, RejectsShortSampleRow) {
  std::istringstream in(header_ + "1.0 2.0\n");
  EXPECT_EQ(thrown_code([&] { power::load_power_trace(in, design_); }),
            ErrorCode::kInvalidInput);
}

TEST_F(PtraceTest, RejectsNonFinitePower) {
  // Non-finite telemetry is corruption that would silently poison the
  // thermal solve: typed configuration error plus a trace.parse
  // diagnostic, distinct from structurally malformed input.
  std::istringstream in(header_ + "1.0 nan 1.0 1.0\n");
  EXPECT_EQ(thrown_code([&] { power::load_power_trace(in, design_); }),
            ErrorCode::kConfig);
  EXPECT_GE(diagnostics().count("trace.parse"), 1u);
}

TEST_F(PtraceTest, RejectsInfinitePower) {
  std::istringstream in(header_ + "1.0 inf 1.0 1.0\n");
  EXPECT_EQ(thrown_code([&] { power::load_power_trace(in, design_); }),
            ErrorCode::kConfig);
  EXPECT_GE(diagnostics().count("trace.parse"), 1u);
}

TEST_F(PtraceTest, RejectsOverflowingPower) {
  // 1e999 overflows double range: same corruption class as nan/inf.
  std::istringstream in(header_ + "1.0 1e999 1.0 1.0\n");
  EXPECT_EQ(thrown_code([&] { power::load_power_trace(in, design_); }),
            ErrorCode::kConfig);
  EXPECT_GE(diagnostics().count("trace.parse"), 1u);
}

TEST_F(PtraceTest, NonFiniteErrorNamesTheLine) {
  // Header is line 1; the corrupt sample sits on line 3.
  std::istringstream in(header_ + "1.0 1.0 1.0 1.0\n1.0 inf 1.0 1.0\n");
  try {
    (void)power::load_power_trace(in, design_);
    ADD_FAILURE() << "expected obd::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST_F(PtraceTest, RejectsNegativePower) {
  std::istringstream in(header_ + "1.0 -2.0 1.0 1.0\n");
  EXPECT_EQ(thrown_code([&] { power::load_power_trace(in, design_); }),
            ErrorCode::kInvalidInput);
}

TEST_F(PtraceTest, RejectsTraceWithoutSamples) {
  std::istringstream in(header_);
  EXPECT_EQ(thrown_code([&] { power::load_power_trace(in, design_); }),
            ErrorCode::kInvalidInput);
}

// ---------------------------------------------------------------------------
// Malformed hybrid LUT
// ---------------------------------------------------------------------------

// Shared small problem: building one is the expensive part of these tests.
class LutTest : public RobustnessTest {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(small_design());
    model_ = new core::AnalyticReliabilityModel();
    core::ProblemOptions opts;
    opts.grid_cells_per_side = 8;
    problem_ = new core::ReliabilityProblem(core::ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_,
        std::vector<double>(design_->blocks.size(), 80.0), 1.2, opts));
  }
  static void TearDownTestSuite() {
    delete problem_;
    delete model_;
    delete design_;
    problem_ = nullptr;
    model_ = nullptr;
    design_ = nullptr;
  }
  static chip::Design* design_;
  static core::AnalyticReliabilityModel* model_;
  static core::ReliabilityProblem* problem_;
};

chip::Design* LutTest::design_ = nullptr;
core::AnalyticReliabilityModel* LutTest::model_ = nullptr;
core::ReliabilityProblem* LutTest::problem_ = nullptr;

TEST_F(LutTest, RejectsGarbageHeader) {
  std::istringstream in("not-a-lut-file at all\n");
  EXPECT_EQ(
      thrown_code([&] { core::HybridEvaluator::load(in, *problem_); }),
      ErrorCode::kInvalidInput);
}

TEST_F(LutTest, RejectsTruncatedTable) {
  core::HybridOptions hopts;
  hopts.n_gamma = 8;
  hopts.n_b = 4;
  const core::HybridEvaluator ev(*problem_, hopts);
  std::ostringstream out;
  ev.save(out);
  const std::string full = out.str();
  std::istringstream in(full.substr(0, full.size() / 2));
  EXPECT_EQ(
      thrown_code([&] { core::HybridEvaluator::load(in, *problem_); }),
      ErrorCode::kInvalidInput);
}

TEST_F(LutTest, RejectsAbsurdTableDimensionsQuickly) {
  // A header advertising a gigantic table must be rejected before any
  // allocation is attempted (no OOM, no hang).
  core::HybridOptions hopts;
  hopts.n_gamma = 8;
  hopts.n_b = 4;
  const core::HybridEvaluator ev(*problem_, hopts);
  std::ostringstream out;
  ev.save(out);
  std::string text = out.str();
  const std::string from = " 8 4 ";
  const std::string to = " 999999999 999999999 ";
  const std::size_t at = text.find(from);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, from.size(), to);
  std::istringstream in(text);
  EXPECT_EQ(
      thrown_code([&] { core::HybridEvaluator::load(in, *problem_); }),
      ErrorCode::kInvalidInput);
}

TEST_F(LutTest, RoundTripStillWorks) {
  core::HybridOptions hopts;
  hopts.n_gamma = 8;
  hopts.n_b = 4;
  const core::HybridEvaluator ev(*problem_, hopts);
  std::ostringstream out;
  ev.save(out);
  std::istringstream in(out.str());
  const core::HybridEvaluator back =
      core::HybridEvaluator::load(in, *problem_);
  const double t = 3.0e8;
  EXPECT_NEAR(back.failure_probability(t), ev.failure_probability(t),
              1e-12);
}

// ---------------------------------------------------------------------------
// Fault-injection registry semantics
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, ArmRejectsUnknownSites) {
  EXPECT_EQ(thrown_code([&] { fault::arm("no.such.site"); }),
            ErrorCode::kConfig);
  EXPECT_EQ(thrown_code([&] { fault::arm("thermal.sor:bogus"); }),
            ErrorCode::kConfig);
}

TEST_F(RobustnessTest, FiringBudgetIsConsumed) {
  fault::arm("numeric.quadrature:2");
  EXPECT_TRUE(fault::should_fire(fault::site::kQuadrature));
  EXPECT_TRUE(fault::should_fire(fault::site::kQuadrature));
  EXPECT_FALSE(fault::should_fire(fault::site::kQuadrature));
  EXPECT_EQ(fault::fired(fault::site::kQuadrature), 2u);
}

TEST_F(RobustnessTest, DisarmedSitesNeverFire) {
  for (const auto& s : fault::known_sites())
    EXPECT_FALSE(fault::should_fire(s.c_str())) << s;
}

// ---------------------------------------------------------------------------
// Fault-injection coverage: arm each registered site and assert the
// documented outcome (typed failure for parsers, graceful recovery with a
// diagnostic for the numerical seams).
// ---------------------------------------------------------------------------

class FaultCoverageTest : public LutTest {};  // reuse the shared problem

TEST_F(FaultCoverageTest, EveryRegisteredSiteHasACoveredScenario) {
  std::size_t covered = 0;
  for (const std::string& name : fault::known_sites()) {
    SCOPED_TRACE("site: " + name);
    fault::disarm();
    diagnostics().clear();
    fault::arm(name);  // one shot

    if (name == fault::site::kConfigParse) {
      std::istringstream in("grid 12\n");
      EXPECT_EQ(thrown_code([&] { Config::parse(in); }),
                ErrorCode::kConfig);
    } else if (name == fault::site::kFloorplanParse) {
      std::istringstream in("alu 0.001 0.002 0.0 0.0\n");
      EXPECT_EQ(thrown_code([&] { chip::load_floorplan(in); }),
                ErrorCode::kInvalidInput);
    } else if (name == fault::site::kPtraceParse) {
      std::ostringstream h;
      for (std::size_t j = 0; j < design_->blocks.size(); ++j)
        h << design_->blocks[j].name
          << (j + 1 < design_->blocks.size() ? ' ' : '\n');
      std::istringstream in(h.str() + "1.0 1.0 1.0 1.0\n");
      EXPECT_EQ(
          thrown_code([&] { power::load_power_trace(in, *design_); }),
          ErrorCode::kInvalidInput);
    } else if (name == fault::site::kLutLoad) {
      core::HybridOptions hopts;
      hopts.n_gamma = 8;
      hopts.n_b = 4;
      const core::HybridEvaluator ev(*problem_, hopts);
      std::ostringstream out;
      ev.save(out);
      std::istringstream in(out.str());
      EXPECT_EQ(
          thrown_code([&] { core::HybridEvaluator::load(in, *problem_); }),
          ErrorCode::kIo);
    } else if (name == fault::site::kCholesky) {
      // The injected non-PD failure is absorbed by the ridge retry.
      la::Matrix a = la::Matrix::identity(4);
      const la::Matrix l = la::cholesky_lower_robust(a, "coverage");
      for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(l(i, i), 1.0, 1e-3);
      EXPECT_GE(diagnostics().count("linalg.cholesky"), 1u);
    } else if (name == fault::site::kEigen) {
      // Direct hit: the QL solver reports typed nonconvergence.
      la::Matrix a = la::Matrix::identity(3);
      EXPECT_EQ(thrown_code([&] { la::eigen_symmetric(a); }),
                ErrorCode::kNonconvergence);
      // The canonical-form builder retries with a ridge and recovers.
      fault::arm(name);
      diagnostics().clear();
      const var::GridModel grid(4.0, 4.0, 4);
      const var::CanonicalForm form =
          var::make_canonical_form(grid, var::VariationBudget{}, 0.5);
      EXPECT_GT(form.pc_count(), 0u);
      EXPECT_GE(diagnostics().count("linalg.eigen"), 1u);
    } else if (name == fault::site::kThermalSor) {
      // Direct solve: typed nonconvergence...
      power::PowerParams pp;
      const power::PowerMap map = power::estimate_power(*design_, pp);
      EXPECT_EQ(thrown_code([&] {
                  thermal::solve_thermal(*design_, map);
                }),
                ErrorCode::kNonconvergence);
      // ...while the fixed point retries with damping and converges.
      fault::arm(name);
      diagnostics().clear();
      const thermal::ThermalProfile tp =
          thermal::power_thermal_fixed_point(*design_, pp);
      EXPECT_TRUE(tp.converged);
      EXPECT_TRUE(std::isfinite(tp.max_c()));
      EXPECT_GE(diagnostics().count("thermal.fixed_point"), 1u);
    } else if (name == fault::site::kThermalFixedPoint) {
      // Injected NaN temperature: detected, retried, converged.
      power::PowerParams pp;
      const thermal::ThermalProfile tp =
          thermal::power_thermal_fixed_point(*design_, pp);
      EXPECT_TRUE(tp.converged);
      EXPECT_TRUE(std::isfinite(tp.max_c()));
      EXPECT_GE(diagnostics().count("thermal.fixed_point"), 1u);
    } else if (name == fault::site::kQuadrature) {
      EXPECT_EQ(thrown_code([&] {
                  num::adaptive_simpson([](double x) { return x; }, 0.0,
                                        1.0);
                }),
                ErrorCode::kNonconvergence);
    } else if (name == fault::site::kDrmThermal) {
      // One rung's thermal solve fails: the manager skips it and keeps
      // the control loop alive on a slower rung.
      std::vector<drm::OperatingPoint> ladder{{"eco", 1.0, 1.2e9},
                                              {"turbo", 1.25, 2.3e9}};
      drm::ReliabilityManager mgr(*problem_, *model_, ladder);
      const drm::DrmStep s = mgr.step(0.7);
      EXPECT_TRUE(s.degraded);
      EXPECT_TRUE(std::isfinite(s.damage));
      EXPECT_GE(diagnostics().count("drm.step"), 1u);
    } else if (name == fault::site::kCheckpointWrite) {
      // A torn snapshot write is a typed I/O failure, and the previously
      // published snapshot survives it untouched.
      const std::string path =
          ::testing::TempDir() + "obdrel-cov-ckpt.snap";
      fault::disarm();  // publish the survivor without the fault armed
      ckpt::write_snapshot_atomic(path, 1, "survivor");
      fault::arm(name);
      EXPECT_EQ(thrown_code([&] {
                  ckpt::write_snapshot_atomic(path, 1, "torn");
                }),
                ErrorCode::kIo);
      EXPECT_EQ(ckpt::read_snapshot(path).payload, "survivor");
      std::filesystem::remove(path);
    } else if (name == fault::site::kCheckpointCrc) {
      // A checksum mismatch on read is rejected as corrupt input, never
      // believed.
      const std::string path =
          ::testing::TempDir() + "obdrel-cov-crc.snap";
      ckpt::write_snapshot_atomic(path, 1, "payload");
      EXPECT_EQ(thrown_code([&] { (void)ckpt::read_snapshot(path); }),
                ErrorCode::kInvalidInput);
      std::filesystem::remove(path);
    } else if (name == fault::site::kJournalAppend) {
      const std::string path = ::testing::TempDir() + "obdrel-cov-j.log";
      ckpt::JournalWriter w(path, /*truncate=*/true);
      EXPECT_EQ(thrown_code([&] { w.append("doomed record"); }),
                ErrorCode::kIo);
      std::filesystem::remove(path);
    } else if (name == fault::site::kJournalReplay) {
      // A corrupt record during replay ends the usable prefix with a
      // reported tail error instead of throwing or looping.
      const std::string path = ::testing::TempDir() + "obdrel-cov-jr.log";
      {
        ckpt::JournalWriter w(path, /*truncate=*/true);
        w.append("first");
        w.append("second");
      }
      const ckpt::JournalReadResult r = ckpt::read_journal(path);
      EXPECT_LT(r.records.size(), 2u);
      EXPECT_FALSE(r.clean_tail);
      std::filesystem::remove(path);
    } else if (name == fault::site::kDrmDeadline) {
      // A watchdog overrun degrades to the cached rung decision at
      // guard-band conditions instead of stalling the control loop.
      std::vector<drm::OperatingPoint> ladder{{"eco", 1.0, 1.2e9},
                                              {"turbo", 1.25, 2.3e9}};
      drm::ReliabilityManager mgr(*problem_, *model_, ladder);
      const drm::DrmStep s = mgr.step(0.7);
      EXPECT_TRUE(s.degraded);
      EXPECT_EQ(s.op_index, 0u);  // no previous decision: slowest rung
      EXPECT_TRUE(std::isfinite(s.damage));
      EXPECT_GE(diagnostics().count("drm.deadline"), 1u);
    } else if (name == fault::site::kFleetHeartbeat) {
      // A failed heartbeat write is a skipped beat, never a crash: the
      // worker keeps computing (the journal carries durability) and the
      // supervisor's watchdog owns liveness.
      const std::string path = ::testing::TempDir() + "obdrel-cov-hb";
      EXPECT_FALSE(fleet::write_heartbeat(path, {17, 1, 0}));
      std::filesystem::remove(path);
    } else if (name == fault::site::kFleetSpawn) {
      // A fork/exec setup failure is a typed I/O error that the
      // supervisor's retry/backoff path absorbs.
      const std::string log =
          ::testing::TempDir() + "obdrel-cov-spawn.log";
      EXPECT_EQ(thrown_code([&] {
                  (void)fleet::spawn_worker({"/bin/true"}, log);
                }),
                ErrorCode::kIo);
      std::filesystem::remove(log);
    } else if (name == fault::site::kFleetShardCrc) {
      // A corrupt chunk record is rejected — treated as absent work to be
      // recomputed, never believed.
      fleet::FleetSpec spec;
      spec.chips = 256;
      spec.ts = {1.0e8, 2.0e8};
      const std::uint64_t fp = fleet::fleet_fingerprint(spec);
      fleet::ChunkResult r;
      r.chunk = 0;
      r.chips = 256;
      r.sum_f = {0.5, 0.25};
      r.sum_f2 = {0.5, 0.25};
      const std::string line = fleet::encode_chunk_record(fp, r);
      fleet::ChunkResult out;
      EXPECT_FALSE(fleet::decode_chunk_record(line, fp, 2, &out));
    } else if (name == fault::site::kServeAccept) {
      // A failed accept costs the client one retry, never the daemon: the
      // helper records a diagnostic and reports "no connection".
      EXPECT_EQ(serve::accept_client(/*listen_fd=*/-1), -1);
      EXPECT_GE(diagnostics().count("serve.accept"), 1u);
    } else if (name == fault::site::kServeCacheRead) {
      // Injected disk-tier corruption: the entry is quarantined with a
      // diagnostic and reported as a miss — recomputed, never believed.
      const std::string path =
          ::testing::TempDir() + "obdrel-cov-serve.lut";
      ckpt::write_snapshot_atomic(path, 1, "the-key\ntables");
      bool quarantined = false;
      EXPECT_FALSE(
          serve::read_cache_file(path, "the-key", &quarantined).has_value());
      EXPECT_TRUE(quarantined);
      EXPECT_FALSE(std::filesystem::exists(path));
      EXPECT_TRUE(std::filesystem::exists(path + ".quarantined"));
      EXPECT_GE(diagnostics().count("serve.cache_corrupt"), 1u);
      std::filesystem::remove(path + ".quarantined");
    } else if (name == fault::site::kServeCacheEvict) {
      // A failed write-back during eviction drops the (recomputable)
      // entry with a diagnostic instead of crashing the daemon.
      const std::string path =
          ::testing::TempDir() + "obdrel-cov-serve-wb.lut";
      EXPECT_FALSE(serve::write_cache_file(path, "the-key", "tables"));
      EXPECT_FALSE(std::filesystem::exists(path));
      EXPECT_GE(diagnostics().count("serve.cache_evict"), 1u);
    } else if (name == fault::site::kServeDeadline) {
      // An injected deadline expiry forces the degraded analytic path for
      // any armed deadline — and only for armed deadlines.
      EXPECT_TRUE(serve::deadline_expired(0.0, 50.0));
      EXPECT_GE(diagnostics().count("serve.deadline"), 1u);
      fault::arm(name);
      EXPECT_FALSE(serve::deadline_expired(1.0e9, 0.0))
          << "disabled deadlines must never expire";
    } else {
      ADD_FAILURE() << "registered site has no coverage scenario: " << name
                    << " (add one here and to docs/ROBUSTNESS.md)";
      continue;
    }

    EXPECT_GE(fault::fired(name), 1u) << "site never fired";
    ++covered;
  }
  // The acceptance bar: at least 8 sites demonstrably covered (the
  // catalogue currently holds 18).
  EXPECT_GE(covered, 8u);
  EXPECT_EQ(covered, fault::known_sites().size());
}

// ---------------------------------------------------------------------------
// Strict mode turns degradation into typed errors
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, StrictModeEscalatesRecoveries) {
  fault::arm("linalg.cholesky");
  set_strict_mode(true);
  la::Matrix a = la::Matrix::identity(3);
  EXPECT_EQ(thrown_code([&] { la::cholesky_lower_robust(a, "strict"); }),
            ErrorCode::kDegraded);
  // The event is still recorded even though it threw.
  EXPECT_GE(diagnostics().size(), 1u);
}

TEST_F(RobustnessTest, DiagnosticsRenderNamesTheSite) {
  diagnostics().warn("thermal.fixed_point", "test message");
  const std::string text = diagnostics().render();
  EXPECT_NE(text.find("warning [thermal.fixed_point]: test message"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Docs/code sync: the fault-site catalogue in docs/ROBUSTNESS.md must list
// exactly the registered sites — a new site without a documented row (or a
// stale row for a removed site) fails here.
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, FaultCatalogueInDocsMatchesTheRegistry) {
  const std::string path =
      std::string(OBDREL_SOURCE_DIR) + "/docs/ROBUSTNESS.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "cannot open " << path;

  // Collect the first backticked token of every table row inside the
  // "Fault injection" section.
  std::vector<std::string> documented;
  std::string line;
  bool in_section = false;
  while (std::getline(in, line)) {
    if (line.rfind("## ", 0) == 0) {
      in_section = line.find("Fault injection") != std::string::npos;
      continue;
    }
    if (!in_section || line.rfind("| `", 0) != 0) continue;
    const std::size_t open = 2;  // the backtick after "| "
    const std::size_t close = line.find('`', open + 1);
    ASSERT_NE(close, std::string::npos) << line;
    documented.push_back(line.substr(open + 1, close - open - 1));
  }
  std::sort(documented.begin(), documented.end());
  std::vector<std::string> registered = fault::known_sites();
  std::sort(registered.begin(), registered.end());

  EXPECT_EQ(documented, registered)
      << "docs/ROBUSTNESS.md section 3 and fault::known_sites() disagree";
}

}  // namespace
}  // namespace obd
