// Table V reproduction: st_fast lifetime error for design C2 across the
// spatial-correlation grid resolution (10x10, 20x20, 25x25), each compared
// against MC simulation with the reference 25x25 grid model.
//
// Scaling knob: OBDREL_MC_CHIPS (default 800).
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "chip/design.hpp"
#include "common/parallel.hpp"
#include "simd/dispatch.hpp"
#include "common/table.hpp"
#include "core/analytic.hpp"
#include "core/lifetime.hpp"
#include "core/montecarlo.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"

int main() {
  using namespace obd;
  const std::size_t mc_chips = bench::env_size("OBDREL_MC_CHIPS", 800);
  constexpr double kRho[] = {0.25, 0.5, 0.75};
  constexpr std::size_t kGrids[] = {10, 20, 25};

  std::printf(
      "Table V: st_fast lifetime error (%%) for design C2 vs grid size,\n"
      "compared to MC with the 25x25 reference grid (MC chips = %zu, pool "
      "threads = %zu, simd %s).\n\n",
      mc_chips, par::thread_count(),
      simd::to_string(simd::active_level()));

  const chip::Design design = chip::make_benchmark(2);
  const auto profile = thermal::power_thermal_fixed_point(
      design, power::PowerParams{}, {.resolution = 32}, 2);
  const core::AnalyticReliabilityModel model;

  TextTable t({"Grid", "r=0.25 1/m", "r=0.25 10/m", "r=0.5 1/m",
               "r=0.5 10/m", "r=0.75 1/m", "r=0.75 10/m"});

  // One MC reference (25x25 grid) per correlation distance.
  std::vector<double> mc_1(3);
  std::vector<double> mc_10(3);
  for (int r = 0; r < 3; ++r) {
    core::ProblemOptions opts;
    opts.rho_dist = kRho[r];
    opts.grid_cells_per_side = 25;
    const auto problem = core::ReliabilityProblem::build(
        design, var::VariationBudget{}, model, profile.block_temps_c, 1.2,
        opts);
    const core::MonteCarloAnalyzer mc(problem, {.chip_samples = mc_chips});
    mc_1[r] = mc.lifetime_at(core::kOneFaultPerMillion);
    mc_10[r] = mc.lifetime_at(core::kTenFaultsPerMillion);
  }

  for (std::size_t grid : kGrids) {
    std::vector<std::string> row{std::to_string(grid) + "x" +
                                 std::to_string(grid)};
    for (int r = 0; r < 3; ++r) {
      core::ProblemOptions opts;
      opts.rho_dist = kRho[r];
      opts.grid_cells_per_side = grid;
      const auto problem = core::ReliabilityProblem::build(
          design, var::VariationBudget{}, model, profile.block_temps_c, 1.2,
          opts);
      const core::AnalyticAnalyzer fast(problem);
      row.push_back(fmt(
          bench::pct_error(fast.lifetime_at(core::kOneFaultPerMillion),
                           mc_1[r]),
          2));
      row.push_back(fmt(
          bench::pct_error(fast.lifetime_at(core::kTenFaultsPerMillion),
                           mc_10[r]),
          2));
    }
    t.add_row(row);
  }
  t.print(std::cout);

  // Isolate pure discretization error from MC sampling noise: the
  // deterministic lifetime shift of each grid's st_fast vs a 40x40
  // analysis-grid reference.
  std::printf("\nDiscretization-only shift of t_10ppm vs a 40x40 grid "
              "(rho = 0.5):\n");
  core::ProblemOptions fine_opts;
  fine_opts.grid_cells_per_side = 40;
  const auto fine_problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, profile.block_temps_c, 1.2,
      fine_opts);
  const double t_fine = core::AnalyticAnalyzer(fine_problem)
                            .lifetime_at(core::kTenFaultsPerMillion);
  for (std::size_t grid : kGrids) {
    core::ProblemOptions opts;
    opts.grid_cells_per_side = grid;
    const auto problem = core::ReliabilityProblem::build(
        design, var::VariationBudget{}, model, profile.block_temps_c, 1.2,
        opts);
    const double t10 = core::AnalyticAnalyzer(problem).lifetime_at(
        core::kTenFaultsPerMillion);
    std::printf("  %2zux%-2zu  %.5f%%\n", grid, grid,
                bench::pct_error(t10, t_fine));
  }

  std::printf(
      "\nPaper reference: errors decrease as the grid refines toward the\n"
      "reference (3.2%% -> 1.3%% band). Measured here the MC-relative\n"
      "errors are flat across grid sizes: with block-level temperature\n"
      "granularity and the Table-II budget, the BLOD moments block-average\n"
      "the smooth exponential kernel, so discretization error (second\n"
      "table) sits orders of magnitude below MC sampling noise — the\n"
      "robustness-to-coarse-grids claim holds even more strongly than the\n"
      "paper reports.\n");
  return 0;
}
