// Numerical quadrature.
//
// The paper evaluates eq. (28) with an l0 x l0 subdomain midpoint rule
// (Fig. 9, step 2-8; l0 = 10 suffices because the integrand's PDF factor
// decays fast). We provide that rule plus Gauss–Legendre panels for
// higher-accuracy checks.
#pragma once

#include <cstddef>
#include <functional>

namespace obd::num {

using Fn1 = std::function<double(double)>;
using Fn2 = std::function<double(double, double)>;

/// Midpoint rule with `cells` equal subintervals on [a, b].
double midpoint_1d(const Fn1& f, double a, double b, std::size_t cells);

/// Midpoint rule on cells x cells subdomains of [ax, bx] x [ay, by] — the
/// paper's integration scheme for the double integral of eq. (28).
double midpoint_2d(const Fn2& f, double ax, double bx, double ay, double by,
                   std::size_t cells);

/// Composite Gauss–Legendre: `panels` panels of `points`-point rule
/// (points in {2..8}) on [a, b].
double gauss_legendre_1d(const Fn1& f, double a, double b, std::size_t points,
                         std::size_t panels = 1);

/// Tensor-product composite Gauss–Legendre on a rectangle.
double gauss_legendre_2d(const Fn2& f, double ax, double bx, double ay,
                         double by, std::size_t points,
                         std::size_t panels = 1);

/// Composite Simpson rule with `cells` (even count enforced) subintervals.
double simpson_1d(const Fn1& f, double a, double b, std::size_t cells);

/// Adaptive Simpson quadrature with Richardson-style error control: the
/// interval is bisected until the local error estimate falls below the
/// proportionally allocated tolerance (depth capped at 40).
double adaptive_simpson(const Fn1& f, double a, double b,
                        double tolerance = 1e-10);

}  // namespace obd::num
