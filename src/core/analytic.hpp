// st_fast: the paper's fast statistical method (Section IV-D).
//
// The ensemble failure probability is the sum over blocks of a double
// integral of the conditional block failure against the product of the
// analytic marginals f_u (normal, eq. 22) and f_v (scaled chi-square,
// eq. 29-30) — the independence approximation of Section IV-C. The
// integration domain is discretized once at construction into (u, v) nodes;
// each reliability query is then O(N * l0^2) closed-form evaluations,
// matching the paper's complexity analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "core/lifetime.hpp"
#include "core/problem.hpp"
#include "core/uv_nodes.hpp"

namespace obd::core {

/// Quadrature flavor for the marginal-product integral.
enum class Quadrature {
  /// The paper's scheme (Fig. 9): l0 x l0 equal-width subdomains of a
  /// truncated (u, v) rectangle, integrand sampled at subdomain centers and
  /// weighted by the PDF-product mass of the cell.
  kPaperMidpoint,
  /// Equal-probability-mass cells: nodes at marginal quantiles
  /// ((i + 0.5)/l0), each cell carrying exactly 1/l0^2 mass. Robust to the
  /// chi-square density singularity when the matched dof drops below 2.
  kEqualProbability,
};

struct AnalyticOptions {
  Quadrature quadrature = Quadrature::kEqualProbability;
  /// Use the skewness-matched (three-moment) chi-square for f_v instead of
  /// the paper's two-moment match (footnote 4's "more moments" refinement).
  bool v_three_moment = false;
  /// l0: subdomains (or quantile cells) per axis. The paper uses 10.
  std::size_t cells = 16;
  /// kPaperMidpoint u-domain half-width in sigmas of u_j.
  double u_domain_sigmas = 6.0;
  /// kPaperMidpoint v-domain upper edge quantile.
  double v_upper_quantile = 1.0 - 1.0e-9;
  /// kEqualProbability tail clipping: nodes span [eps, 1-eps] in
  /// probability.
  double tail_epsilon = 1.0e-9;
};

/// The fast analytic analyzer.
class AnalyticAnalyzer {
 public:
  explicit AnalyticAnalyzer(const ReliabilityProblem& problem,
                            const AnalyticOptions& options = {});

  /// Chip ensemble failure probability F(t) = 1 - R_c(t) (eq. 28).
  [[nodiscard]] double failure_probability(double t) const;

  /// R_c(t) (eq. 28).
  [[nodiscard]] double reliability(double t) const {
    return 1.0 - failure_probability(t);
  }

  /// t_req with F(t_req) = target (eq. 32).
  [[nodiscard]] double lifetime_at(double target) const;

  /// Failure contribution of block j at time t.
  [[nodiscard]] double block_failure(std::size_t j, double t) const;

  [[nodiscard]] const ReliabilityProblem& problem() const { return *problem_; }
  [[nodiscard]] const std::vector<std::vector<UvNode>>& nodes() const {
    return nodes_;
  }

 private:
  const ReliabilityProblem* problem_;  // non-owning; must outlive this
  std::vector<std::vector<UvNode>> nodes_;
};

/// st_MC: the statistical variant that constructs the joint PDF of
/// (u_j, v_j) numerically from Monte Carlo samples of the principal
/// components (Section V, method 2). More faithful to the joint dependence
/// than st_fast (no independence approximation) at a small construction
/// overhead.
struct StMcOptions {
  std::size_t samples = 10000;       ///< per-block Monte Carlo sample count
  std::size_t histogram_bins = 64;   ///< per-axis bins of the joint histogram
  /// Draw the block-local normal factors by Latin-hypercube stratification
  /// instead of plain iid sampling (lower variance at equal budget).
  bool latin_hypercube = false;
  /// When false, skip the histogram and average the conditional failure
  /// over raw samples directly (exact empirical joint distribution).
  bool use_histogram = true;
  std::uint64_t seed = 2024;
};

class StMcAnalyzer {
 public:
  explicit StMcAnalyzer(const ReliabilityProblem& problem,
                        const StMcOptions& options = {});

  [[nodiscard]] double failure_probability(double t) const;
  [[nodiscard]] double reliability(double t) const {
    return 1.0 - failure_probability(t);
  }
  [[nodiscard]] double lifetime_at(double target) const;

  [[nodiscard]] const ReliabilityProblem& problem() const { return *problem_; }
  [[nodiscard]] const std::vector<std::vector<UvNode>>& nodes() const {
    return nodes_;
  }

 private:
  const ReliabilityProblem* problem_;  // non-owning; must outlive this
  std::vector<std::vector<UvNode>> nodes_;
};

}  // namespace obd::core
