// Tests for the statistics extensions: goodness-of-fit (KS / AD),
// Lognormal, Latin-hypercube sampling, and the three-moment quadratic-form
// approximation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "stats/goodness.hpp"
#include "stats/quadform.hpp"
#include "stats/sampling.hpp"
#include "stats/special.hpp"

namespace obd::stats {
namespace {

la::Matrix diag(std::initializer_list<double> values) {
  la::Matrix m(values.size(), values.size(), 0.0);
  std::size_t i = 0;
  for (double v : values) m(i, i) = v, ++i;
  return m;
}

TEST(KsStatistic, SmallForMatchingDistribution) {
  Rng rng(1);
  const Normal n(0.0, 1.0);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(n.sample(rng));
  const double d = ks_statistic(xs, [&](double x) { return n.cdf(x); });
  // Expected D ~ 1/sqrt(n) ~ 0.014; the null should not be rejected.
  EXPECT_LT(d, 0.03);
  EXPECT_GT(ks_p_value(d, xs.size()), 0.01);
}

TEST(KsStatistic, LargeForWrongDistribution) {
  Rng rng(2);
  const Normal truth(0.0, 1.0);
  const Normal wrong(0.5, 1.0);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(truth.sample(rng));
  const double d = ks_statistic(xs, [&](double x) { return wrong.cdf(x); });
  EXPECT_GT(d, 0.15);
  EXPECT_LT(ks_p_value(d, xs.size()), 1e-6);
}

TEST(KsStatistic, ExactForDegenerateCases) {
  // One sample at the median: D = 0.5.
  const double d = ks_statistic({0.0}, [](double x) {
    return x < 0.0 ? 0.25 : 0.5;
  });
  EXPECT_DOUBLE_EQ(d, 0.5);
  EXPECT_THROW(ks_statistic({}, [](double) { return 0.5; }), obd::Error);
}

TEST(KsPValue, MonotoneInStatistic) {
  double prev = 1.1;
  for (double d = 0.01; d < 0.2; d += 0.01) {
    const double p = ks_p_value(d, 1000);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(AndersonDarling, DiscriminatesTails) {
  Rng rng(3);
  const Normal n(0.0, 1.0);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) xs.push_back(n.sample(rng));
  const double good =
      anderson_darling_statistic(xs, [&](double x) { return n.cdf(x); });
  // Critical value for 5% significance is ~2.5; matching data stays below.
  EXPECT_LT(good, 2.5);
  // A distribution wrong in the tails scores far higher.
  const Normal narrow(0.0, 0.8);
  const double bad = anderson_darling_statistic(
      xs, [&](double x) { return narrow.cdf(x); });
  EXPECT_GT(bad, 10.0);
}

TEST(LognormalDist, MomentsRoundTrip) {
  const Lognormal ln = Lognormal::from_moments(3.0, 0.5);
  EXPECT_NEAR(ln.mean(), 3.0, 1e-12);
  EXPECT_NEAR(ln.variance(), 0.5, 1e-12);
}

TEST(LognormalDist, CdfQuantilePdfConsistent) {
  const Lognormal ln(0.5, 0.3);
  for (double p : {0.01, 0.3, 0.5, 0.9, 0.999})
    EXPECT_NEAR(ln.cdf(ln.quantile(p)), p, 1e-12);
  // pdf = d cdf / dx.
  for (double x : {1.0, 1.6, 2.5}) {
    const double h = 1e-6;
    EXPECT_NEAR(ln.pdf(x), (ln.cdf(x + h) - ln.cdf(x - h)) / (2 * h), 1e-6);
  }
  EXPECT_DOUBLE_EQ(ln.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ln.pdf(-1.0), 0.0);
}

TEST(LognormalDist, SampleMoments) {
  Rng rng(4);
  const Lognormal ln(1.0, 0.25);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(ln.sample(rng));
  EXPECT_NEAR(s.mean(), ln.mean(), 0.01 * ln.mean());
  EXPECT_NEAR(s.variance(), ln.variance(), 0.05 * ln.variance());
}

TEST(LatinHypercube, MarginalsArePerfectlyStratified) {
  Rng rng(5);
  const std::size_t n = 1000;
  const std::size_t dims = 3;
  const auto xs = latin_hypercube_normal(n, dims, rng);
  // Each dimension: exactly one point per equiprobable stratum.
  for (std::size_t k = 0; k < dims; ++k) {
    std::vector<int> bin_count(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const double u = normal_cdf(xs[i * dims + k]);
      ++bin_count[std::min(n - 1, static_cast<std::size_t>(
                                      u * static_cast<double>(n)))];
    }
    for (std::size_t b = 0; b < n; ++b)
      EXPECT_EQ(bin_count[b], 1) << "dim " << k << " bin " << b;
  }
}

TEST(LatinHypercube, VarianceLowerThanIid) {
  // Estimating E[z^2] = 1: the stratified estimator has far lower variance.
  const int reps = 200;
  const std::size_t n = 64;
  RunningStats iid_est;
  RunningStats lhs_est;
  Rng rng(6);
  for (int r = 0; r < reps; ++r) {
    double iid = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double z = rng.normal();
      iid += z * z;
    }
    iid_est.add(iid / static_cast<double>(n));
    const auto xs = latin_hypercube_normal(n, 1, rng);
    double lhs = 0.0;
    for (double z : xs) lhs += z * z;
    lhs_est.add(lhs / static_cast<double>(n));
  }
  EXPECT_NEAR(lhs_est.mean(), 1.0, 0.02);
  EXPECT_LT(lhs_est.variance(), 0.2 * iid_est.variance());
}

TEST(ThreeMomentMatch, PreservesThreeMoments) {
  QuadraticForm f;
  f.constant = 0.3;
  f.quad = diag({2.0, 0.5, 0.25, 0.1});
  f.linear = {0.2, 0.0, 0.1, 0.0};
  const ShiftedChiSquare m = three_moment_match(f);
  EXPECT_NEAR(m.mean(), f.mean(), 1e-10);
  EXPECT_NEAR(m.variance(), f.variance(), 1e-10);
  // Third central moment of shift + a chi2(b) is 8 a^3 b.
  const double mu3 = 8.0 * std::pow(m.scale(), 3) * m.dof();
  EXPECT_NEAR(mu3, third_central_moment(f), 1e-9);
}

TEST(ThirdCentralMoment, MatchesSampling) {
  QuadraticForm f;
  f.quad = diag({1.0, 0.4});
  f.linear = {0.5, -0.2};
  Rng rng(7);
  const double mean = f.mean();
  double m3 = 0.0;
  const int n = 2000000;
  for (int i = 0; i < n; ++i) {
    const double d = f.sample(rng) - mean;
    m3 += d * d * d;
  }
  m3 /= n;
  EXPECT_NEAR(m3, third_central_moment(f), 0.05 * third_central_moment(f));
}

TEST(ThreeMomentMatch, BeatsTwoMomentInTheTailForSkewedSpectra) {
  // Single dominant eigenvalue: the exact distribution is nearly a scaled
  // chi2_1; the three-moment match recovers dof ~ 1 while the two-moment
  // match over-smooths.
  QuadraticForm f;
  f.quad = diag({1.0, 0.05, 0.05});
  const ShiftedChiSquare two = chi_square_match(f);
  const ShiftedChiSquare three = three_moment_match(f);
  EXPECT_NEAR(three.dof(), 1.0, 0.25);
  EXPECT_GT(two.dof(), three.dof());
  // Compare upper-tail quantiles against Imhof.
  for (double p : {0.95, 0.99}) {
    const double x3 = three.quantile(p);
    const double x2 = two.quantile(p);
    const double exact3 = imhof_cdf(f, x3);
    const double exact2 = imhof_cdf(f, x2);
    EXPECT_LT(std::fabs(exact3 - p), std::fabs(exact2 - p) + 1e-3)
        << "p=" << p;
  }
}

TEST(ThreeMomentMatch, RejectsDegenerate) {
  QuadraticForm empty;
  EXPECT_THROW(three_moment_match(empty), obd::Error);
  EXPECT_THROW(third_central_moment(empty), obd::Error);
}

}  // namespace
}  // namespace obd::stats
