// Tests for the shared deterministic pool (common/parallel.hpp) and the
// thread-count invariance of every analyzer that runs on it.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "chip/design.hpp"
#include "common/diagnostics.hpp"
#include "common/parallel.hpp"
#include "core/analytic.hpp"
#include "core/hybrid.hpp"
#include "core/montecarlo.hpp"
#include "stats/rng.hpp"

namespace obd {
namespace {

// Every test leaves the pool back at the automatic width so suites can run
// in any order.
struct PoolGuard {
  ~PoolGuard() { par::set_threads(0); }
};

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  PoolGuard guard;
  for (std::size_t width : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    par::set_threads(width);
    const std::size_t n = 1237;  // deliberately not a chunk multiple
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    par::parallel_for(0, n, 17, [&](std::size_t b, std::size_t e) {
      ASSERT_LT(b, e);
      ASSERT_LE(e, n);
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " width " << width;
  }
}

TEST(ParallelFor, HandlesEmptyAndDegenerateRanges) {
  PoolGuard guard;
  int calls = 0;
  par::parallel_for(5, 5, 4, [&](std::size_t, std::size_t) { ++calls; });
  par::parallel_for(7, 3, 4, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // chunk = 0 is treated as 1, not a division crash.
  par::parallel_for(0, 3, 0, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(e, b + 1);
    ++calls;
  });
  EXPECT_EQ(calls, 3);
}

TEST(ParallelFor, PropagatesBodyExceptions) {
  PoolGuard guard;
  par::set_threads(4);
  EXPECT_THROW(
      par::parallel_for(0, 100, 1,
                        [](std::size_t b, std::size_t) {
                          if (b == 37) throw std::runtime_error("chunk 37");
                        }),
      std::runtime_error);
  // The pool must remain usable after a throwing region.
  std::atomic<int> sum{0};
  par::parallel_for(0, 10, 1,
                    [&](std::size_t b, std::size_t) { sum.fetch_add(int(b)); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelFor, NestedRegionsRunInline) {
  PoolGuard guard;
  par::set_threads(4);
  std::atomic<int> total{0};
  par::parallel_for(0, 8, 1, [&](std::size_t, std::size_t) {
    // A worker thread re-entering the pool must not deadlock waiting for
    // itself; nested regions execute inline on the current thread.
    par::parallel_for(0, 4, 1,
                      [&](std::size_t, std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ParallelReduce, MatchesSerialSumBitExactly) {
  PoolGuard guard;
  const std::size_t n = 10007;
  auto map = [](std::size_t b, std::size_t e) {
    double s = 0.0;
    for (std::size_t i = b; i < e; ++i)
      s += 1.0 / static_cast<double>(i + 1);
    return s;
  };
  auto plus = [](double a, double b) { return a + b; };

  par::set_threads(1);
  const double serial = par::parallel_reduce(0, n, 64, 0.0, map, plus);
  for (std::size_t width : {std::size_t{2}, std::size_t{7}}) {
    par::set_threads(width);
    const double parallel = par::parallel_reduce(0, n, 64, 0.0, map, plus);
    // Bit-identical, not just close: fixed chunk boundaries + ordered fold.
    EXPECT_EQ(serial, parallel) << "width " << width;
  }
}

TEST(ParallelPool, SetThreadsShutdownAndReuse) {
  PoolGuard guard;
  // Repeated reconfiguration + shutdown must never wedge or drop work.
  for (int round = 0; round < 5; ++round) {
    for (std::size_t width : {std::size_t{1}, std::size_t{3}, std::size_t{2}}) {
      par::set_threads(width);
      EXPECT_EQ(par::thread_count(), width);
      std::atomic<std::uint64_t> sum{0};
      par::parallel_for(0, 100, 9, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) sum.fetch_add(i);
      });
      EXPECT_EQ(sum.load(), 4950u);
      par::shutdown();  // next region restarts the pool lazily
    }
  }
}

TEST(ParallelPool, StatsCountRegionsAndChunks) {
  PoolGuard guard;
  par::set_threads(2);
  par::reset_stats();
  par::parallel_for(0, 100, 10, [](std::size_t, std::size_t) {});
  par::parallel_for(0, 5, 10, [](std::size_t, std::size_t) {});  // inline
  const par::PoolStats s = par::stats();
  EXPECT_EQ(s.regions, 2u);
  EXPECT_EQ(s.inline_regions, 1u);
  EXPECT_EQ(s.chunks, 11u);

  diagnostics().clear();
  par::publish_stats();
  EXPECT_EQ(diagnostics().stats().size(), 1u);
  EXPECT_FALSE(diagnostics().degraded());  // stats never degrade
  diagnostics().clear();

  par::reset_stats();
  diagnostics().clear();
  par::publish_stats();  // nothing ran since reset: no entry
  EXPECT_TRUE(diagnostics().stats().empty());
}

// Thread-count invariance of the analyzers: the ISSUE's determinism
// contract, pinned bit-exactly. A small but non-degenerate problem keeps
// the suite fast.
class ParallelInvarianceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_synthetic_design(
        "PAR", {.devices = 12000, .block_count = 5, .die_width = 5.0,
                .die_height = 5.0, .seed = 31}));
    temps_ = new std::vector<double>{88.0, 66.0, 73.0, 59.0, 81.0};
    core::ProblemOptions opts;
    opts.grid_cells_per_side = 8;
    problem_ = new core::ReliabilityProblem(core::ReliabilityProblem::build(
        *design_, var::VariationBudget{}, core::AnalyticReliabilityModel{},
        *temps_, 1.2, opts));
  }
  static void TearDownTestSuite() {
    delete problem_;
    delete temps_;
    delete design_;
    problem_ = nullptr;
    temps_ = nullptr;
    design_ = nullptr;
    par::set_threads(0);
  }

  static std::vector<std::size_t> widths() {
    return {1, 2, 7, std::max<std::size_t>(
                         1, std::thread::hardware_concurrency())};
  }

  static chip::Design* design_;
  static std::vector<double>* temps_;
  static core::ReliabilityProblem* problem_;
};

chip::Design* ParallelInvarianceFixture::design_ = nullptr;
std::vector<double>* ParallelInvarianceFixture::temps_ = nullptr;
core::ReliabilityProblem* ParallelInvarianceFixture::problem_ = nullptr;

TEST_F(ParallelInvarianceFixture, MonteCarloResultsAreBitIdentical) {
  PoolGuard guard;
  std::vector<double> reference;
  for (const std::size_t width : widths()) {
    par::set_threads(width);
    core::MonteCarloOptions opts;
    opts.chip_samples = 60;
    const core::MonteCarloAnalyzer mc(*problem_, opts);
    std::vector<double> got;
    for (double t : {5e7, 2e8, 1e9}) {
      got.push_back(mc.failure_probability(t));
      got.push_back(mc.failure_std_error(t));
      got.push_back(mc.kth_failure_probability(t, 2));
    }
    stats::Rng rng(7);
    for (double t : mc.sample_failure_times(16, rng)) got.push_back(t);
    if (reference.empty()) {
      reference = got;
      for (double v : reference) EXPECT_TRUE(std::isfinite(v));
    } else {
      ASSERT_EQ(got.size(), reference.size());
      for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], reference[i])
            << "value " << i << " at width " << width;
    }
  }
}

TEST_F(ParallelInvarianceFixture, BatchedSweepsAreBitIdenticalAcrossWidths) {
  PoolGuard guard;
  std::vector<double> ts;
  for (double t = 4e7; t < 3e9; t *= 2.1) ts.push_back(t);
  std::vector<double> reference;
  for (const std::size_t width : widths()) {
    par::set_threads(width);
    core::MonteCarloOptions opts;
    opts.chip_samples = 60;
    const core::MonteCarloAnalyzer mc(*problem_, opts);
    std::vector<double> got;
    for (double v : mc.failure_probabilities(ts)) got.push_back(v);
    for (double v : mc.failure_std_errors(ts)) got.push_back(v);
    for (double v : mc.kth_failure_probabilities(ts, 2)) got.push_back(v);
    if (reference.empty()) {
      reference = got;
      for (double v : reference) EXPECT_TRUE(std::isfinite(v));
    } else {
      ASSERT_EQ(got.size(), reference.size());
      for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], reference[i])
            << "value " << i << " at width " << width;
    }
  }
}

TEST_F(ParallelInvarianceFixture, BinnedSamplerIsBitIdenticalAcrossWidths) {
  PoolGuard guard;
  std::vector<double> reference;
  for (const std::size_t width : widths()) {
    par::set_threads(width);
    core::MonteCarloOptions opts;
    opts.chip_samples = 40;
    opts.sampling = core::DeviceSampling::kBinned;
    const core::MonteCarloAnalyzer mc(*problem_, opts);
    std::vector<double> got;
    for (double t : {5e7, 2e8, 1e9}) {
      got.push_back(mc.failure_probability(t));
      got.push_back(mc.failure_std_error(t));
    }
    if (reference.empty()) {
      reference = got;
    } else {
      for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], reference[i])
            << "value " << i << " at width " << width;
    }
  }
}

TEST_F(ParallelInvarianceFixture, PerAnalyzerThreadCapIsInvariantToo) {
  PoolGuard guard;
  par::set_threads(4);
  std::vector<double> reference;
  // options.threads caps the pool per analyzer; every cap must reproduce
  // the same bits as the serial run.
  for (const std::size_t cap : {std::size_t{1}, std::size_t{3}, std::size_t{0}}) {
    core::MonteCarloOptions opts;
    opts.chip_samples = 40;
    opts.threads = cap;
    const core::MonteCarloAnalyzer mc(*problem_, opts);
    std::vector<double> got;
    for (double t : {1e8, 6e8}) {
      got.push_back(mc.failure_probability(t));
      got.push_back(mc.failure_std_error(t));
    }
    if (reference.empty()) {
      reference = got;
    } else {
      for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], reference[i]) << "value " << i << " cap " << cap;
    }
  }
}

TEST_F(ParallelInvarianceFixture, HybridTablesAreBitIdentical) {
  PoolGuard guard;
  std::vector<double> reference;
  for (const std::size_t width : widths()) {
    par::set_threads(width);
    const core::HybridEvaluator hybrid(*problem_);
    std::vector<double> got;
    for (double t : {5e7, 2e8, 1e9, 5e9})
      got.push_back(hybrid.failure_probability(t));
    if (reference.empty()) {
      reference = got;
    } else {
      for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], reference[i])
            << "value " << i << " at width " << width;
    }
  }
}

}  // namespace
}  // namespace obd
