#include "stats/sampling.hpp"

#include <numeric>

#include "common/error.hpp"
#include "stats/special.hpp"

namespace obd::stats {
namespace {

// Fisher-Yates shuffle of an index permutation.
void shuffle(std::vector<std::size_t>& perm, Rng& rng) {
  for (std::size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1], perm[rng.below(i)]);
}

}  // namespace

std::vector<double> latin_hypercube_normal(std::size_t count,
                                           std::size_t dimensions,
                                           Rng& rng) {
  require(count > 0, "latin_hypercube_normal: count must be positive");
  require(dimensions > 0,
          "latin_hypercube_normal: dimensions must be positive");
  std::vector<double> out(count * dimensions);
  std::vector<std::size_t> perm(count);
  for (std::size_t k = 0; k < dimensions; ++k) {
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    shuffle(perm, rng);
    for (std::size_t i = 0; i < count; ++i) {
      // Uniform jitter within the assigned stratum, then probit transform.
      const double u = (static_cast<double>(perm[i]) + rng.uniform()) /
                       static_cast<double>(count);
      const double clamped =
          std::min(std::max(u, 1e-15), 1.0 - 1e-15);
      out[i * dimensions + k] = normal_quantile(clamped);
    }
  }
  return out;
}

std::vector<double> stratified_normal(std::size_t count, Rng& rng) {
  return latin_hypercube_normal(count, 1, rng);
}

}  // namespace obd::stats
