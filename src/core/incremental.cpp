#include "core/incremental.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"

namespace obd::core {

IncrementalEvaluator::IncrementalEvaluator(const HybridEvaluator& hybrid)
    : hybrid_(&hybrid), stack_(&hybrid.problem().mechanisms()) {}

void IncrementalEvaluator::refresh_row(const ChipState& state, std::size_t j,
                                       double t) {
  const double alpha = state.alphas()[j];
  const double b = state.bs()[j];
  // ChipState setters enforce positivity; this catches states built before
  // the invariant existed (or memory corruption) at the refreshed rows.
  require(alpha > 0.0 && b > 0.0,
          "IncrementalEvaluator: alpha and b must be positive");
  const double fj =
      std::min(1.0, hybrid_->block_failure(j, std::log(t / alpha), b));
  // Same ops as the from-scratch paths: the trivial row matches the
  // failure_probability_with loop body; the non-trivial row matches what
  // compose_under computes per block for the state's conditions.
  rows_[j] = stack_->trivial()
                 ? std::log1p(-fj)
                 : stack_->block_log_survival(j, fj, t, state.conditions(j));
}

double IncrementalEvaluator::evaluate(ChipState& state, double t) {
  require(t > 0.0, "IncrementalEvaluator: t must be positive");
  require(&state.problem() == &hybrid_->problem(),
          "IncrementalEvaluator: state was built for a different problem");
  const std::size_t n = state.block_count();
  const std::uint64_t t_bits = std::bit_cast<std::uint64_t>(t);
  // Any doubt about the cache means a full rebuild: rows are only
  // reusable for the same state object, the same t bits, and a forward-
  // moving generation counter.
  const bool full = !valid_ || last_state_ != &state ||
                    t_bits != last_t_bits_ ||
                    state.generation() < last_generation_;
  ++stats_.evaluations;
  std::size_t refreshed = 0;
  if (full) {
    rows_.resize(n);
    for (std::size_t j = 0; j < n; ++j) refresh_row(state, j, t);
    refreshed = n;
    ++stats_.full_rebuilds;
  } else {
    state.for_each_dirty([&](std::size_t j) {
      refresh_row(state, j, t);
      ++refreshed;
    });
  }
  stats_.rows_refreshed += refreshed;
  stats_.last_dirty = refreshed;
  state.clear_dirty();
  last_state_ = &state;
  last_t_bits_ = t_bits;
  last_generation_ = state.generation();
  valid_ = true;

  // Full fixed-order reduction over all N rows — never over the dirty
  // subset — so the result cannot depend on the update history.
  if (!stack_->trivial()) return stack_->reduce_log_survival(rows_.data());
  double log_survival = 0.0;
  for (std::size_t j = 0; j < n; ++j) log_survival += rows_[j];
  return std::clamp(-std::expm1(log_survival), 0.0, 1.0);
}

}  // namespace obd::core
