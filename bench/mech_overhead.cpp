// Overhead gate for the competing-risks mechanism stack.
//
// The multi-mechanism framework promises that the seed configuration
// (`mechanisms oxide`, no redundancy) keeps the evaluator hot paths: the
// stack is `trivial()` and every evaluator runs its exact seed loop behind
// one predictable branch. This bench holds that promise to numbers:
//
//   1. Bit-identity: the wired analytic F(t) sweep must be bit-identical
//      to an inline replica of the seed composition (per-block failures
//      folded through the log1p survival product).
//   2. Overhead: the wired oxide-only sweep must cost no more than
//      OBDREL_MECH_MAX_OVERHEAD_PCT (default 3%) over the seed replica,
//      best-of-N to shed scheduler noise.
//
// The aging laps are informational: the same sweep with NBTI enabled and
// with all four mechanisms shows what the non-trivial fold costs, and a
// sanity gate checks that adding mechanisms never lowers F(t).
//
// Results go to BENCH_mech.json (in $OBDREL_CSV_DIR when set); the exit
// code reflects the gates. Knobs: OBDREL_MECH_POINTS (sweep points,
// default 64), OBDREL_MECH_SWEEP_REPS (sweeps per lap, default 50),
// OBDREL_MECH_LAPS (best-of laps, default 7).
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chip/design.hpp"
#include "common/csv.hpp"
#include "common/parallel.hpp"
#include "common/stopwatch.hpp"
#include "core/analytic.hpp"
#include "mech/spec.hpp"
#include "variation/model.hpp"

namespace {

// Order-sensitive checksum over the exact bit patterns of a double stream
// (same scheme as hot_path_scaling): equal checksums iff every value is
// bit-identical and in the same order.
struct BitChecksum {
  std::uint64_t value = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  void add(double d) {
    std::uint64_t bits = std::bit_cast<std::uint64_t>(d);
    for (int i = 0; i < 8; ++i) {
      value ^= (bits >> (8 * i)) & 0xffu;
      value *= 0x100000001b3ull;  // FNV-1a prime
    }
  }
};

}  // namespace

int main() {
  using namespace obd;
  const std::size_t points = bench::env_size("OBDREL_MECH_POINTS", 64);
  const std::size_t sweep_reps =
      bench::env_size("OBDREL_MECH_SWEEP_REPS", 50);
  const std::size_t laps = bench::env_size("OBDREL_MECH_LAPS", 7);
  const double max_overhead_pct = static_cast<double>(
      bench::env_size("OBDREL_MECH_MAX_OVERHEAD_PCT", 3));

  par::set_threads(1);  // algorithmic comparison: no threading in any lap

  const chip::Design design = chip::make_synthetic_design(
      "MECH", {.devices = 200000, .block_count = 8, .die_width = 6.0,
               .die_height = 6.0, .seed = 29});
  const std::vector<double> temps{95.0, 70.0, 58.0, 82.0, 64.0, 75.0,
                                  88.0, 61.0};
  const core::AnalyticReliabilityModel model;

  core::ProblemOptions oxide_opts;
  const auto oxide = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, temps, 1.2, oxide_opts);

  core::ProblemOptions nbti_opts;
  nbti_opts.mechanisms.nbti = true;
  const auto nbti = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, temps, 1.2, nbti_opts);

  core::ProblemOptions all_opts;
  all_opts.mechanisms.nbti = true;
  all_opts.mechanisms.em = true;
  all_opts.mechanisms.hci = true;
  const auto all = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, temps, 1.2, all_opts);

  // Log-spaced sweep from 1 to 40 years.
  std::vector<double> ts;
  ts.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double frac =
        static_cast<double>(i) / static_cast<double>(points - 1);
    ts.push_back(bench::kYear * std::exp(std::log(1.0) +
                                         frac * std::log(40.0)));
  }

  const core::AnalyticAnalyzer an_oxide(oxide);
  const core::AnalyticAnalyzer an_nbti(nbti);
  const core::AnalyticAnalyzer an_all(all);

  // Seed replica: the exact composition the pre-mech evaluator ran —
  // per-block failures folded through the log1p survival product.
  const auto seed_replica = [&](double t) {
    double log_survival = 0.0;
    for (std::size_t j = 0; j < oxide.blocks().size(); ++j) {
      const double fj =
          std::clamp(an_oxide.block_failure(j, t), 0.0, 1.0);
      log_survival += std::log1p(-fj);
    }
    return std::clamp(-std::expm1(log_survival), 0.0, 1.0);
  };

  // One lap = `sweep_reps` full sweeps; best lap survives. The checksum is
  // folded into every lap so the compiler cannot dead-code the sweep.
  const auto time_lap = [&](auto&& eval, BitChecksum* sum) {
    double best = 1e300;
    for (std::size_t lap = 0; lap < laps; ++lap) {
      Stopwatch watch;
      for (std::size_t rep = 0; rep < sweep_reps; ++rep) {
        for (const double t : ts) sum->add(eval(t));
      }
      best = std::min(best, watch.seconds());
    }
    return best;
  };

  BitChecksum sum_replica;
  const double t_replica = time_lap(seed_replica, &sum_replica);
  BitChecksum sum_wired;
  const double t_wired = time_lap(
      [&](double t) { return an_oxide.failure_probability(t); }, &sum_wired);
  BitChecksum sum_nbti;
  const double t_nbti = time_lap(
      [&](double t) { return an_nbti.failure_probability(t); }, &sum_nbti);
  BitChecksum sum_all;
  const double t_all = time_lap(
      [&](double t) { return an_all.failure_probability(t); }, &sum_all);

  const bool bitwise = sum_replica.value == sum_wired.value;
  const double overhead_pct = 100.0 * (t_wired - t_replica) / t_replica;
  const bool overhead_ok = overhead_pct <= max_overhead_pct;

  // Sanity: competing risks only raise F(t).
  bool monotone = true;
  for (const double t : ts) {
    const double f_ox = an_oxide.failure_probability(t);
    if (an_nbti.failure_probability(t) < f_ox ||
        an_all.failure_probability(t) < f_ox) {
      monotone = false;
      break;
    }
  }

  par::set_threads(0);  // restore automatic width

  std::printf("mech stack overhead, %zu points x %zu sweeps, best of %zu\n",
              points, sweep_reps, laps);
  std::printf("  seed replica      %.6f s\n", t_replica);
  std::printf("  oxide-only wired  %.6f s  (%+.2f%%, gate <= %.1f%%) %s\n",
              t_wired, overhead_pct, max_overhead_pct,
              bitwise ? "bit-identical" : "VALUES DIFFER");
  std::printf("  + nbti            %.6f s  (%.2fx)\n", t_nbti,
              t_nbti / t_replica);
  std::printf("  + nbti+em+hci     %.6f s  (%.2fx)\n", t_all,
              t_all / t_replica);
  const bool pass = bitwise && overhead_ok && monotone;
  std::printf("\nmech gates %s\n", pass ? "PASS" : "FAIL");

  const std::string dir = csv_output_dir();
  const std::string path =
      (dir.empty() ? std::string{} : dir + "/") + "BENCH_mech.json";
  std::ofstream out(path);
  out << "{\n"
      << "  \"points\": " << points << ",\n"
      << "  \"sweep_reps\": " << sweep_reps << ",\n"
      << "  \"laps\": " << laps << ",\n"
      << "  \"seconds_seed_replica\": " << t_replica << ",\n"
      << "  \"seconds_oxide_wired\": " << t_wired << ",\n"
      << "  \"seconds_nbti\": " << t_nbti << ",\n"
      << "  \"seconds_all_mechanisms\": " << t_all << ",\n"
      << "  \"oxide_overhead_pct\": " << overhead_pct << ",\n"
      << "  \"max_overhead_pct\": " << max_overhead_pct << ",\n"
      << "  \"bitwise_identical\": " << (bitwise ? "true" : "false") << ",\n"
      << "  \"mechanisms_monotone\": " << (monotone ? "true" : "false")
      << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << "\n"
      << "}\n";
  std::printf("wrote %s\n", path.c_str());
  return pass ? 0 : 1;
}
