#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/fault_injection.hpp"

namespace obd::la {
namespace {

// Householder reduction of a real symmetric matrix to tridiagonal form
// (EISPACK tred2). On return `a` holds the accumulated orthogonal transform
// Q, `d` the diagonal, and `e` the subdiagonal (e[0] unused).
void tridiagonalize(Matrix& a, Vector& d, Vector& e) {
  const std::size_t n = a.rows();
  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::fabs(a(i, k));
      if (scale == 0.0) {
        e[i] = a(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          a(j, i) = a(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          e[j] = g / h;
          f += e[j] * a(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = a(i, j);
          e[j] = g = e[j] - hh * f;
          for (std::size_t k = 0; k <= j; ++k)
            a(j, k) -= f * e[k] + g * a(i, k);
        }
      }
    } else {
      e[i] = a(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  // Accumulate transformation matrices.
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && d[i] != 0.0) {
      const std::size_t l = i - 1;
      for (std::size_t j = 0; j <= l; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k <= l; ++k) g += a(i, k) * a(k, j);
        for (std::size_t k = 0; k <= l; ++k) a(k, j) -= g * a(k, i);
      }
    }
    d[i] = a(i, i);
    a(i, i) = 1.0;
    if (i > 0) {
      for (std::size_t j = 0; j < i; ++j) {
        a(j, i) = 0.0;
        a(i, j) = 0.0;
      }
    }
  }
}

double hypot2(double a, double b) { return std::hypot(a, b); }

// Implicit-shift QL iteration on a symmetric tridiagonal matrix (EISPACK
// tql2). `d` holds the diagonal, `e` the subdiagonal; eigenvectors are
// accumulated into `z` (which should enter holding the tridiagonalizing Q).
void ql_implicit(Vector& d, Vector& e, Matrix& z) {
  const std::size_t n = d.size();
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (std::size_t l = 0; l < n; ++l) {
    int iterations = 0;
    std::size_t m = l;
    for (;;) {
      // Find a small subdiagonal element to split the problem.
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-300 ||
            std::fabs(e[m]) <= std::numeric_limits<double>::epsilon() * dd)
          break;
      }
      if (m == l) break;
      require(++iterations <= 50, ErrorCode::kNonconvergence,
              "eigen_symmetric: QL iteration failed to converge");

      double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
      double r = hypot2(g, 1.0);
      g = d[m] - d[l] + e[l] / (g + (g >= 0.0 ? std::fabs(r) : -std::fabs(r)));
      double s = 1.0;
      double c = 1.0;
      double p = 0.0;
      for (std::size_t i = m; i-- > l;) {
        double f = s * e[i];
        const double b = c * e[i];
        r = hypot2(f, g);
        e[i + 1] = r;
        if (r == 0.0) {
          d[i + 1] -= p;
          e[m] = 0.0;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[i + 1] - p;
        r = (d[i] - g) * s + 2.0 * c * b;
        p = s * r;
        d[i + 1] = g + p;
        g = c * r - b;
        for (std::size_t k = 0; k < n; ++k) {
          f = z(k, i + 1);
          z(k, i + 1) = s * z(k, i) + c * f;
          z(k, i) = c * z(k, i) - s * f;
        }
      }
      if (r == 0.0 && m > l + 1) continue;
      d[l] -= p;
      e[l] = g;
      e[m] = 0.0;
    }
  }
}

}  // namespace

EigenDecomposition eigen_symmetric(const Matrix& a) {
  require(a.rows() == a.cols(), "eigen_symmetric: matrix must be square");
  require(!a.empty(), "eigen_symmetric: matrix must be non-empty");
  if (fault::should_fire(fault::site::kEigen))
    throw Error("eigen_symmetric: injected QL nonconvergence fault",
                ErrorCode::kNonconvergence);
  // Allow tiny floating-point asymmetry from covariance construction.
  const double scale =
      std::max(1.0, std::sqrt(a.frobenius_squared() /
                              static_cast<double>(a.rows() * a.cols())));
  require(a.max_asymmetry() <= 1e-9 * scale,
          "eigen_symmetric: matrix is not symmetric");

  const std::size_t n = a.rows();
  Matrix z = a;
  // Symmetrize exactly so the reduction sees a clean input.
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r + 1; c < n; ++c) {
      const double v = 0.5 * (z(r, c) + z(c, r));
      z(r, c) = v;
      z(c, r) = v;
    }

  Vector d(n, 0.0);
  Vector e(n, 0.0);
  if (n == 1) {
    d[0] = z(0, 0);
    z(0, 0) = 1.0;
  } else {
    tridiagonalize(z, d, e);
    ql_implicit(d, e, z);
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return d[i] > d[j]; });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = d[order[k]];
    for (std::size_t r = 0; r < n; ++r) out.vectors(r, k) = z(r, order[k]);
  }
  return out;
}

}  // namespace obd::la
