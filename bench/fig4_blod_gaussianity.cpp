// Fig. 4 reproduction: the BLOD property. For one sample chip, the
// within-block oxide-thickness histogram of a block follows a Gaussian
// curve with very high goodness of fit (paper: R^2 = 99.8% for a 5K-device
// block, 99.5% for 20K).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/fit.hpp"
#include "stats/histogram.hpp"
#include "variation/model.hpp"

namespace {

using namespace obd;

void blod_histogram(std::size_t devices, const var::CanonicalForm& canonical,
                    stats::Rng& rng) {
  // One sample chip: fixed principal components; a block spanning 2x2 grid
  // cells of a 10x10 grid.
  const la::Vector z = canonical.sample_z(rng);
  const std::size_t grids[] = {44, 45, 54, 55};

  // Per-device thickness samples within the block.
  stats::RunningStats probe;
  std::vector<double> xs;
  xs.reserve(devices);
  for (std::size_t i = 0; i < devices; ++i) {
    const std::size_t g = grids[i % 4];
    const double x = canonical.thickness(g, z, rng.normal());
    xs.push_back(x);
    probe.add(x);
  }
  stats::Histogram1D h(probe.min() - 1e-4, probe.max() + 1e-4, 50);
  for (double x : xs) h.add(x);

  const stats::GaussianFit fit = stats::fit_gaussian(h);
  std::printf("Block with %zuK devices: mean %.4f nm, sigma %.4f nm, "
              "R-square %.2f%%\n",
              devices / 1000, fit.mean, fit.stddev, 100.0 * fit.r_square);

  // ASCII histogram.
  double peak = 0.0;
  for (std::size_t i = 0; i < h.bins(); ++i)
    peak = std::max(peak, h.count(i));
  for (std::size_t i = 0; i < h.bins(); i += 2) {
    const int bar = static_cast<int>(40.0 * h.count(i) / peak);
    std::printf("  %.4f |", h.bin_center(i));
    for (int k = 0; k < bar; ++k) std::printf("#");
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace obd;
  std::printf("Fig. 4 reproduction: BLOD Gaussianity for one sample chip.\n\n");

  const var::VariationBudget budget;  // Table II
  const var::GridModel grid(10.0, 10.0, 10);
  const var::CanonicalForm canonical =
      var::make_canonical_form(grid, budget, 0.5);
  stats::Rng rng(4);

  blod_histogram(5000, canonical, rng);
  blod_histogram(20000, canonical, rng);

  std::printf(
      "Paper reference: R-square 99.8%% (5K devices) and 99.5%% (20K).\n");
  return 0;
}
