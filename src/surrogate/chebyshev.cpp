#include "surrogate/chebyshev.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "simd/kernels.hpp"

namespace obd::surrogate {

double ChebAxis::node(std::size_t i) const {
  if (n <= 1) return 0.5 * (lo + hi);
  const double u =
      std::cos(std::numbers::pi * static_cast<double>(i) /
               static_cast<double>(n - 1));
  return lo + 0.5 * (u + 1.0) * (hi - lo);
}

double ChebAxis::to_unit(double x) const {
  return 2.0 * (x - lo) / (hi - lo) - 1.0;
}

double ChebAxis::midpoint(std::size_t i) const {
  if (n <= 1) return 0.5 * (lo + hi);
  const double u =
      std::cos(std::numbers::pi * (static_cast<double>(i) + 0.5) /
               static_cast<double>(n - 1));
  return lo + 0.5 * (u + 1.0) * (hi - lo);
}

ChebTensor::ChebTensor(std::vector<ChebAxis> axes, std::vector<double> coeffs)
    : axes_(std::move(axes)), coeffs_(std::move(coeffs)) {
  std::size_t total = 1;
  for (const ChebAxis& a : axes_) {
    require(a.n >= 1 && a.hi > a.lo, ErrorCode::kInvalidInput,
            "cheb: axis needs n >= 1 and hi > lo");
    total *= a.n;
  }
  require(coeffs_.size() == total, ErrorCode::kInvalidInput,
          "cheb: coefficient count does not match the axis grid");
}

ChebTensor ChebTensor::fit(std::vector<ChebAxis> axes,
                           const std::function<double(const double*)>& fn) {
  require(!axes.empty(), ErrorCode::kInvalidInput, "cheb: no axes");
  std::size_t total = 1;
  for (const ChebAxis& a : axes) {
    require(a.n >= 1 && a.hi > a.lo, ErrorCode::kInvalidInput,
            "cheb: axis needs n >= 1 and hi > lo");
    total *= a.n;
  }
  const std::size_t d = axes.size();

  // Sample the node tensor; linear index decomposes with axis 0 fastest,
  // so fn sees the axis-0 sweep innermost.
  std::vector<double> values(total);
  std::vector<double> x(d);
  for (std::size_t lin = 0; lin < total; ++lin) {
    std::size_t rem = lin;
    for (std::size_t a = 0; a < d; ++a) {
      x[a] = axes[a].node(rem % axes[a].n);
      rem /= axes[a].n;
    }
    values[lin] = fn(x.data());
  }

  // CGL cosine transform, one axis at a time, in place. For n nodes
  // (N = n-1): c_k = (2 / (N g_k)) sum_j f(u_j) cos(pi j k / N) / g_j
  // with g_0 = g_N = 2, else 1 — the coefficients of the interpolating
  // polynomial through the CGL samples. O(n^2) per pencil is fine at the
  // small per-axis degrees the surrogate uses.
  for (std::size_t a = 0, stride = 1; a < d; stride *= axes[a].n, ++a) {
    const std::size_t n = axes[a].n;
    if (n == 1) continue;  // constant axis: c_0 = f, identity transform
    const std::size_t nn = n - 1;
    std::vector<double> m(n * n);
    for (std::size_t k = 0; k < n; ++k) {
      const double gk = (k == 0 || k == nn) ? 2.0 : 1.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double gj = (j == 0 || j == nn) ? 2.0 : 1.0;
        m[k * n + j] = 2.0 / (static_cast<double>(nn) * gk * gj) *
                       std::cos(std::numbers::pi * static_cast<double>(j) *
                                static_cast<double>(k) /
                                static_cast<double>(nn));
      }
    }
    const std::size_t outer = total / (n * stride);
    std::vector<double> f(n);
    for (std::size_t o = 0; o < outer; ++o) {
      for (std::size_t i = 0; i < stride; ++i) {
        const std::size_t base = o * stride * n + i;
        for (std::size_t j = 0; j < n; ++j)
          f[j] = values[base + j * stride];
        for (std::size_t k = 0; k < n; ++k) {
          double c = 0.0;
          for (std::size_t j = 0; j < n; ++j) c += m[k * n + j] * f[j];
          values[base + k * stride] = c;
        }
      }
    }
  }
  return ChebTensor(std::move(axes), std::move(values));
}

double ChebTensor::eval(const double* x) const {
  const std::size_t d = axes_.size();
  std::vector<double> a;
  std::vector<double> b;
  const double* cur = coeffs_.data();
  std::size_t m = coeffs_.size();
  for (std::size_t axis = d; axis-- > 1;) {
    m /= axes_[axis].n;
    b.resize(m);
    simd::kernels().clenshaw_batch(cur, axes_[axis].n, m,
                                   axes_[axis].to_unit(x[axis]), b.data());
    std::swap(a, b);
    cur = a.data();
  }
  double out = 0.0;
  simd::kernels().clenshaw_batch(cur, axes_[0].n, 1, axes_[0].to_unit(x[0]),
                                 &out);
  return out;
}

std::vector<double> ChebTensor::contract_tail(const double* x_tail) const {
  const std::size_t d = axes_.size();
  std::vector<double> a;
  std::vector<double> b;
  const double* cur = coeffs_.data();
  std::size_t m = coeffs_.size();
  for (std::size_t axis = d; axis-- > 1;) {
    m /= axes_[axis].n;
    b.resize(m);
    simd::kernels().clenshaw_batch(cur, axes_[axis].n, m,
                                   axes_[axis].to_unit(x_tail[axis - 1]),
                                   b.data());
    std::swap(a, b);
    cur = a.data();
  }
  if (d == 1) return coeffs_;  // nothing to contract
  a.resize(axes_[0].n);
  return a;
}

double ChebTensor::eval_pencil(const std::vector<double>& pencil,
                               double x0) const {
  return eval_pencil_at(pencil.data(), pencil.size(), x0);
}

double ChebTensor::eval_pencil_at(const double* pencil, std::size_t n,
                                  double x0) const {
  double out = 0.0;
  simd::kernels().clenshaw_batch(pencil, n, 1, axes_[0].to_unit(x0), &out);
  return out;
}

}  // namespace obd::surrogate
