// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// invariants checked across grids of parameters rather than single points.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "chip/design.hpp"
#include "core/analytic.hpp"
#include "core/closed_form.hpp"
#include "core/guardband.hpp"
#include "core/lifetime.hpp"
#include "numeric/quadrature.hpp"
#include "stats/distributions.hpp"
#include "stats/quadform.hpp"
#include "stats/special.hpp"

namespace obd {
namespace {

// ---------------------------------------------------------------------------
// Property: every distribution's quantile inverts its CDF, and its PDF is
// the derivative of its CDF, across a parameter sweep.

using DistParams = std::tuple<double, double>;  // (shape-ish, scale-ish)

class GammaProperties : public ::testing::TestWithParam<DistParams> {};

TEST_P(GammaProperties, QuantileInvertsCdf) {
  const auto [shape, scale] = GetParam();
  const stats::Gamma g(shape, scale);
  for (double p : {1e-6, 1e-3, 0.05, 0.37, 0.5, 0.81, 0.99, 1.0 - 1e-6}) {
    const double x = g.quantile(p);
    EXPECT_NEAR(g.cdf(x), p, 1e-8) << "p=" << p;
  }
}

TEST_P(GammaProperties, PdfIsDerivativeOfCdf) {
  const auto [shape, scale] = GetParam();
  const stats::Gamma g(shape, scale);
  for (double q : {0.2, 0.5, 0.8}) {
    const double x = g.quantile(q);
    const double h = 1e-6 * std::max(1.0, x);
    const double numeric = (g.cdf(x + h) - g.cdf(x - h)) / (2.0 * h);
    EXPECT_NEAR(g.pdf(x), numeric, 1e-4 * std::max(1.0, g.pdf(x)));
  }
}

TEST_P(GammaProperties, MeanVarianceMatchMoments) {
  const auto [shape, scale] = GetParam();
  const stats::Gamma g(shape, scale);
  // E[X] by quadrature of x f(x) over a generous quantile range.
  const double hi = g.quantile(1.0 - 1e-12);
  const double mean = num::gauss_legendre_1d(
      [&](double x) { return x * g.pdf(x); }, 0.0, hi, 8, 200);
  // Endpoint-singular densities (shape < 1) limit quadrature accuracy.
  EXPECT_NEAR(mean, g.mean(), 1e-4 * g.mean());
}

INSTANTIATE_TEST_SUITE_P(
    ShapeScaleSweep, GammaProperties,
    ::testing::Values(DistParams{0.3, 0.5}, DistParams{0.7, 2.0},
                      DistParams{1.0, 1.0}, DistParams{1.7, 0.25},
                      DistParams{4.0, 3.0}, DistParams{12.0, 0.1},
                      DistParams{55.0, 2.0}));

// ---------------------------------------------------------------------------
// Property: the Weibull area-scaling (weakest-link) law holds for any
// (alpha, beta, area).

using WeibullParams = std::tuple<double, double, double>;

class WeibullProperties : public ::testing::TestWithParam<WeibullParams> {};

TEST_P(WeibullProperties, WeakestLinkAreaScaling) {
  const auto [alpha, beta, area] = GetParam();
  const stats::Weibull unit(alpha, beta, 1.0);
  const stats::Weibull scaled(alpha, beta, area);
  for (double q : {0.1, 0.5, 0.9}) {
    const double t = unit.quantile(q);
    EXPECT_NEAR(scaled.reliability(t),
                std::pow(unit.reliability(t), area), 1e-12);
  }
}

TEST_P(WeibullProperties, QuantileMonotoneInProbability) {
  const auto [alpha, beta, area] = GetParam();
  const stats::Weibull w(alpha, beta, area);
  double prev = 0.0;
  for (double p = 0.05; p < 1.0; p += 0.1) {
    const double t = w.quantile(p);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphaBetaAreaSweep, WeibullProperties,
    ::testing::Values(WeibullParams{1e3, 0.8, 2.0},
                      WeibullParams{1e6, 1.0, 1.0},
                      WeibullParams{1e9, 1.4, 10.0},
                      WeibullParams{1e12, 2.0, 0.5},
                      WeibullParams{1e15, 1.4, 1e5}));

// ---------------------------------------------------------------------------
// Property: g_closed_form equals the Gaussian expectation over a sweep of
// (gamma, b, v) regimes, and is convex-increasing in v (Jensen).

using GParams = std::tuple<double, double, double>;  // (t/alpha, b, v)

class GClosedFormProperties : public ::testing::TestWithParam<GParams> {};

TEST_P(GClosedFormProperties, MatchesQuadrature) {
  const auto [ratio, b, v] = GetParam();
  const double alpha = 1e15;
  const double t = ratio * alpha;
  const double u = 2.2;
  const double sd = std::sqrt(v);
  const double gamma = std::log(ratio);
  const double numeric = num::gauss_legendre_1d(
      [&](double x) {
        return stats::normal_pdf((x - u) / sd) / sd *
               std::exp(gamma * b * x);
      },
      u - 12.0 * sd, u + 12.0 * sd, 8, 128);
  EXPECT_NEAR(core::g_closed_form(t, alpha, b, u, v) / numeric, 1.0, 1e-8);
}

TEST_P(GClosedFormProperties, JensenTermIncreasesWithVariance) {
  const auto [ratio, b, v] = GetParam();
  const double alpha = 1e15;
  const double t = ratio * alpha;
  EXPECT_GE(core::g_closed_form(t, alpha, b, 2.2, v),
            core::g_closed_form(t, alpha, b, 2.2, 0.0));
  EXPECT_GT(core::g_closed_form(t, alpha, b, 2.2, 2.0 * v),
            core::g_closed_form(t, alpha, b, 2.2, v));
}

INSTANTIATE_TEST_SUITE_P(
    RegimeSweep, GClosedFormProperties,
    ::testing::Combine(::testing::Values(1e-12, 1e-8, 1e-4),
                       ::testing::Values(0.4, 0.64, 0.9),
                       ::testing::Values(1e-5, 2.5e-4, 1e-3)));

// ---------------------------------------------------------------------------
// Property: the chi-square match preserves the first two moments of any
// PSD quadratic form built from a random spectrum.

class ChiSquareMatchProperties : public ::testing::TestWithParam<int> {};

TEST_P(ChiSquareMatchProperties, MomentsPreservedForRandomSpectra) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3 + rng.below(12);
  stats::QuadraticForm f;
  f.constant = rng.uniform(0.0, 0.1);
  f.quad = la::Matrix(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    f.quad(i, i) = rng.uniform(0.01, 2.0);
  const stats::ShiftedChiSquare m = stats::chi_square_match(f);
  EXPECT_NEAR(m.mean(), f.mean(), 1e-10 * f.mean());
  EXPECT_NEAR(m.variance(), f.variance(), 1e-10 * f.variance());
  // The approximation's support starts at the shift.
  EXPECT_DOUBLE_EQ(m.cdf(f.constant), 0.0);
}

INSTANTIATE_TEST_SUITE_P(SeededSpectra, ChiSquareMatchProperties,
                         ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// Property: end-to-end analyzer invariants across design scale / grid /
// correlation sweeps — failure monotone in t, bounded, lifetime round-trip,
// guard band always pessimistic.

struct AnalyzerCase {
  std::size_t devices;
  std::size_t blocks;
  std::size_t grid;
  double rho;
};

class AnalyzerProperties : public ::testing::TestWithParam<AnalyzerCase> {};

TEST_P(AnalyzerProperties, CoreInvariantsHold) {
  const AnalyzerCase c = GetParam();
  const chip::Design design = chip::make_synthetic_design(
      "P", {.devices = c.devices, .block_count = c.blocks,
            .die_width = 6.0, .die_height = 6.0, .seed = 101});
  const core::AnalyticReliabilityModel model;
  std::vector<double> temps;
  for (std::size_t j = 0; j < c.blocks; ++j)
    temps.push_back(60.0 + 5.0 * static_cast<double>(j % 7));
  core::ProblemOptions opts;
  opts.grid_cells_per_side = c.grid;
  opts.rho_dist = c.rho;
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, temps, 1.2, opts);
  const core::AnalyticAnalyzer fast(problem);

  double prev = 0.0;
  for (double t = 1e6; t <= 1e11; t *= 10.0) {
    const double f = fast.failure_probability(t);
    EXPECT_GE(f, prev - 1e-15);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }

  const double t_req = fast.lifetime_at(core::kTenFaultsPerMillion);
  EXPECT_NEAR(fast.failure_probability(t_req) / core::kTenFaultsPerMillion,
              1.0, 1e-6);

  const core::GuardBandAnalyzer guard(problem);
  EXPECT_LT(guard.lifetime_at(core::kTenFaultsPerMillion), t_req);
}

INSTANTIATE_TEST_SUITE_P(
    DesignSweep, AnalyzerProperties,
    ::testing::Values(AnalyzerCase{10000, 4, 8, 0.25},
                      AnalyzerCase{20000, 6, 10, 0.5},
                      AnalyzerCase{20000, 6, 10, 0.75},
                      AnalyzerCase{40000, 9, 15, 0.5},
                      AnalyzerCase{15000, 3, 20, 0.35},
                      AnalyzerCase{30000, 12, 12, 0.6}));

// ---------------------------------------------------------------------------
// Property: gamma_p / gamma_q complement and monotonicity over a log sweep.

class IncompleteGammaProperties
    : public ::testing::TestWithParam<double> {};

TEST_P(IncompleteGammaProperties, ComplementAndMonotone) {
  const double a = GetParam();
  double prev = -1.0;
  for (double x = 1e-3; x < 100.0; x *= 2.3) {
    const double p = stats::gamma_p(a, x);
    EXPECT_NEAR(p + stats::gamma_q(a, x), 1.0, 1e-12);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(ShapeSweep, IncompleteGammaProperties,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 5.0, 10.0,
                                           30.0, 100.0));

}  // namespace
}  // namespace obd
