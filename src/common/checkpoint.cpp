#include "common/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"

namespace obd::ckpt {
namespace {

constexpr const char* kSnapshotMagic = "obdrel-ckpt";

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

std::string errno_message() {
  return std::string(std::strerror(errno));
}

// Writes all of `data` to `fd`, retrying short writes.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

// Best-effort fsync of the directory containing `path`, so the rename
// itself is durable. Failure is ignored: not every filesystem supports
// directory fsync, and the rename is still atomic without it.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = (slash == std::string::npos)
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const std::string& data) {
  return crc32(data.data(), data.size());
}

void write_snapshot_atomic(const std::string& path, std::uint32_t version,
                           const std::string& payload) {
  std::ostringstream header;
  header << kSnapshotMagic << ' ' << version << ' ' << payload.size() << ' '
         << std::hex << crc32(payload) << '\n';
  const std::string bytes = header.str() + payload;

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  require(fd >= 0, ErrorCode::kIo,
          "checkpoint: cannot create '" + tmp + "': " + errno_message());

  if (fault::should_fire(fault::site::kCheckpointWrite)) {
    // Simulated crash mid-write: half the bytes land in the temp file, the
    // rename never happens, and the previous snapshot at `path` survives —
    // exactly the torn state a kill -9 would leave.
    write_all(fd, bytes.data(), bytes.size() / 2);
    ::close(fd);
    throw Error("checkpoint: injected torn write to '" + tmp + "'",
                ErrorCode::kIo);
  }

  const bool ok = write_all(fd, bytes.data(), bytes.size()) &&
                  ::fsync(fd) == 0;
  const std::string io_error = ok ? "" : errno_message();
  ::close(fd);
  if (!ok) {
    ::unlink(tmp.c_str());
    throw Error("checkpoint: write to '" + tmp + "' failed: " + io_error,
                ErrorCode::kIo);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string rename_error = errno_message();
    ::unlink(tmp.c_str());
    throw Error("checkpoint: rename to '" + path + "' failed: " +
                    rename_error,
                ErrorCode::kIo);
  }
  sync_parent_dir(path);
}

Snapshot read_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), ErrorCode::kIo,
          "checkpoint: cannot open '" + path + "'");

  std::string header;
  require(static_cast<bool>(std::getline(in, header)),
          ErrorCode::kInvalidInput,
          "checkpoint: '" + path + "' is empty");
  std::istringstream hs(header);
  std::string magic;
  std::uint32_t version = 0;
  std::size_t size = 0;
  std::uint32_t crc = 0;
  hs >> magic >> version >> size >> std::hex >> crc;
  require(!hs.fail() && magic == kSnapshotMagic, ErrorCode::kInvalidInput,
          "checkpoint: '" + path + "' has a malformed header");
  // Bound the declared size before allocating: a corrupt header must not
  // turn into a multi-gigabyte allocation.
  require(size <= std::size_t{1} << 30, ErrorCode::kInvalidInput,
          "checkpoint: '" + path + "' declares an absurd payload size");

  Snapshot snap;
  snap.version = version;
  snap.payload.resize(size);
  in.read(snap.payload.data(), static_cast<std::streamsize>(size));
  require(static_cast<std::size_t>(in.gcount()) == size,
          ErrorCode::kInvalidInput,
          "checkpoint: '" + path + "' payload is truncated");
  const bool crc_ok = crc32(snap.payload) == crc &&
                      !fault::should_fire(fault::site::kCheckpointCrc);
  require(crc_ok, ErrorCode::kInvalidInput,
          "checkpoint: '" + path + "' payload fails its CRC check");
  return snap;
}

JournalWriter::JournalWriter(const std::string& path, bool truncate)
    : path_(path), file_(std::fopen(path.c_str(), truncate ? "wb" : "ab")) {
  require(file_ != nullptr, ErrorCode::kIo,
          "journal: cannot open '" + path + "': " + errno_message());
}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void JournalWriter::append(const std::string& payload) {
  if (fault::should_fire(fault::site::kJournalAppend))
    throw Error("journal: injected append failure on '" + path_ + "'",
                ErrorCode::kIo);
  std::ostringstream frame;
  frame << "rec " << payload.size() << ' ' << std::hex << crc32(payload)
        << '\n';
  const std::string head = frame.str();
  const bool ok =
      std::fwrite(head.data(), 1, head.size(), file_) == head.size() &&
      std::fwrite(payload.data(), 1, payload.size(), file_) ==
          payload.size() &&
      std::fputc('\n', file_) != EOF && std::fflush(file_) == 0;
  require(ok, ErrorCode::kIo,
          "journal: append to '" + path_ + "' failed: " + errno_message());
  ++records_;
}

void JournalWriter::sync() {
  require(file_ != nullptr && ::fsync(fileno(file_)) == 0, ErrorCode::kIo,
          "journal: fsync of '" + path_ + "' failed: " + errno_message());
}

JournalReadResult read_journal(const std::string& path) {
  JournalReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return result;  // missing journal == empty journal

  std::string header;
  while (std::getline(in, header)) {
    std::istringstream hs(header);
    std::string tag;
    std::size_t size = 0;
    std::uint32_t crc = 0;
    hs >> tag >> size >> std::hex >> crc;
    if (hs.fail() || tag != "rec" || size > (std::size_t{1} << 30)) {
      result.clean_tail = false;
      result.tail_error = "malformed record header after " +
                          std::to_string(result.records.size()) +
                          " record(s)";
      return result;
    }
    std::string payload(size, '\0');
    in.read(payload.data(), static_cast<std::streamsize>(size));
    const bool complete =
        static_cast<std::size_t>(in.gcount()) == size && in.get() == '\n';
    if (!complete) {
      result.clean_tail = false;
      result.tail_error = "truncated record after " +
                          std::to_string(result.records.size()) +
                          " record(s)";
      return result;
    }
    const bool crc_ok = crc32(payload) == crc &&
                        !fault::should_fire(fault::site::kJournalReplay);
    if (!crc_ok) {
      result.clean_tail = false;
      result.tail_error = "CRC mismatch after " +
                          std::to_string(result.records.size()) +
                          " record(s)";
      return result;
    }
    result.records.push_back(std::move(payload));
  }
  return result;
}

std::size_t sweep_stale_tmp(const std::string& dir, const std::string& prefix,
                            const std::string& site) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return 0;  // missing/unreadable directory: nothing to sweep
  std::size_t swept = 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < 4 || name.compare(name.size() - 4, 4, ".tmp") != 0)
      continue;
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    if (std::filesystem::remove(entry.path(), ec) && !ec) ++swept;
  }
  if (swept > 0)
    diagnostics().stat(site + ".stale_tmp",
                       "swept " + std::to_string(swept) +
                           " stale temp file(s) from '" + dir + "'");
  return swept;
}

}  // namespace obd::ckpt
