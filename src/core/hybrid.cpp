#include "core/hybrid.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/parallel.hpp"

namespace obd::core {
namespace {

// Floor for log-space storage; exp(kLogFloor) underflows to a clean zero.
constexpr double kLogFloor = -745.0;

// Table entries per pool task during construction. Each entry is an
// independent quadrature sum, so any chunking yields identical tables.
constexpr std::size_t kFillChunk = 256;

}  // namespace

HybridEvaluator::HybridEvaluator(const ReliabilityProblem& problem,
                                 const HybridOptions& options)
    : problem_(&problem), options_(options) {
  require(options.n_gamma >= 2 && options.n_b >= 2,
          "HybridEvaluator: table needs at least 2x2 indices");
  require(options.gamma_hi > options.gamma_lo,
          "HybridEvaluator: invalid gamma range");
  require(options.b_lo > 0.0 && options.b_hi > options.b_lo,
          "HybridEvaluator: invalid b range");

  // Reuse the st_fast (u, v) node machinery to fill the tables.
  const AnalyticAnalyzer integrator(problem, options.integration);
  const auto& blocks = problem.blocks();

  // Grid spacing must match LookupTable2D's own sampling (node ix maps to
  // xlo + ix * (xhi - xlo) / (nx - 1)).
  const double d_gamma = (options.gamma_hi - options.gamma_lo) /
                         static_cast<double>(options.n_gamma - 1);
  const double d_b =
      (options.b_hi - options.b_lo) / static_cast<double>(options.n_b - 1);

  tables_.reserve(blocks.size());
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    const auto& node_list = integrator.nodes()[j];
    const double area = blocks[j].area;
    auto entry = [&](double gamma, double b) -> double {
      double fail = 0.0;
      for (const auto& n : node_list) {
        const double g =
            std::exp(gamma * b * n.u + 0.5 * gamma * gamma * b * b * n.v);
        fail += n.weight * (-std::expm1(-area * g));
      }
      if (!options_.log_space) return fail;
      return (fail > 0.0) ? std::max(kLogFloor, std::log(fail)) : kLogFloor;
    };
    // Entries are independent, so the fill parallelizes over the flattened
    // (gamma, b) grid with bit-identical tables for any thread count.
    std::vector<double> values(options.n_gamma * options.n_b);
    par::parallel_for(
        0, values.size(), kFillChunk,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t idx = begin; idx < end; ++idx) {
            const std::size_t ig = idx / options_.n_b;
            const std::size_t ib = idx % options_.n_b;
            values[idx] =
                entry(options_.gamma_lo + static_cast<double>(ig) * d_gamma,
                      options_.b_lo + static_cast<double>(ib) * d_b);
          }
        });
    tables_.emplace_back(options.gamma_lo, options.gamma_hi, options.n_gamma,
                         options.b_lo, options.b_hi, options.n_b,
                         std::move(values));
  }
}

double HybridEvaluator::block_failure_lookup(std::size_t j, double gamma,
                                             double b) const {
  const double raw = tables_[j].at(gamma, b);
  return options_.log_space ? std::exp(raw) : std::max(0.0, raw);
}

double HybridEvaluator::failure_probability(double t) const {
  require(t > 0.0, "HybridEvaluator: t must be positive");
  // Weakest-link composition across blocks (eq. 7-8): the chip survives
  // only if every block does, so block failures combine through the
  // survival product, accumulated in log space for accuracy:
  // F = 1 - prod_j (1 - F_j) = -expm1(sum_j log1p(-F_j)). Summing the
  // F_j and clamping is only the first-order expansion and overestimates
  // F(t) at high failure levels.
  const auto& blocks = problem_->blocks();
  const mech::MechanismStack& stack = problem_->mechanisms();
  if (!stack.trivial()) {
    // Competing risks: hand the per-block oxide failures to the stack,
    // which folds in the aging mechanisms (at each block's default
    // operating point — the same point the tables were built for) and
    // any spare groups.
    thread_local std::vector<double> oxide_f;
    oxide_f.resize(blocks.size());
    for (std::size_t j = 0; j < blocks.size(); ++j) {
      oxide_f[j] = std::min(
          1.0,
          block_failure_lookup(j, std::log(t / blocks[j].alpha), blocks[j].b));
    }
    return stack.compose(oxide_f.data(), t);
  }
  double log_survival = 0.0;
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    const double fj = std::min(
        1.0,
        block_failure_lookup(j, std::log(t / blocks[j].alpha), blocks[j].b));
    log_survival += std::log1p(-fj);
  }
  return std::clamp(-std::expm1(log_survival), 0.0, 1.0);
}

std::vector<double> HybridEvaluator::failure_probabilities(
    std::span<const double> ts) const {
  std::vector<double> out;
  out.reserve(ts.size());
  // Points are independent lookups; reusing the single-point kernel keeps
  // the batch bit-identical to per-point calls for any sweep composition.
  for (const double t : ts) out.push_back(failure_probability(t));
  return out;
}

double HybridEvaluator::failure_probability_with(
    double t, const std::vector<double>& alphas,
    const std::vector<double>& bs) const {
  require(t > 0.0, "HybridEvaluator: t must be positive");
  const auto& blocks = problem_->blocks();
  require(alphas.size() == blocks.size() && bs.size() == blocks.size(),
          "HybridEvaluator: one (alpha, b) pair per block required");
  const mech::MechanismStack& stack = problem_->mechanisms();
  if (!stack.trivial()) {
    // Corner overrides replace the oxide (alpha, b) only; the aging
    // mechanisms keep their default per-block operating points (the DRM
    // rung path passes explicit conditions through compose_under itself).
    thread_local std::vector<double> oxide_f;
    oxide_f.resize(blocks.size());
    for (std::size_t j = 0; j < blocks.size(); ++j) {
      require(alphas[j] > 0.0 && bs[j] > 0.0,
              "HybridEvaluator: alpha and b must be positive");
      oxide_f[j] = std::min(
          1.0, block_failure_lookup(j, std::log(t / alphas[j]), bs[j]));
    }
    return stack.compose(oxide_f.data(), t);
  }
  double log_survival = 0.0;
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    require(alphas[j] > 0.0 && bs[j] > 0.0,
            "HybridEvaluator: alpha and b must be positive");
    const double fj = std::min(
        1.0, block_failure_lookup(j, std::log(t / alphas[j]), bs[j]));
    log_survival += std::log1p(-fj);
  }
  return std::clamp(-std::expm1(log_survival), 0.0, 1.0);
}

std::vector<double> HybridEvaluator::failure_probabilities_with(
    std::span<const double> ts, const std::vector<double>& alphas,
    const std::vector<double>& bs) const {
  std::vector<double> out;
  out.reserve(ts.size());
  for (const double t : ts)
    out.push_back(failure_probability_with(t, alphas, bs));
  return out;
}

double HybridEvaluator::lifetime_at(double target) const {
  return lifetime_at_failure(
      [this](double t) { return failure_probability(t); }, target);
}

HybridEvaluator::HybridEvaluator(const ReliabilityProblem& problem,
                                 HybridOptions options,
                                 std::vector<num::LookupTable2D> tables)
    : problem_(&problem),
      options_(std::move(options)),
      tables_(std::move(tables)) {}

void HybridEvaluator::save(std::ostream& out) const {
  out << "obdrel-hybrid-lut 1\n";
  out << tables_.size() << ' ' << options_.n_gamma << ' ' << options_.n_b
      << ' ' << (options_.log_space ? 1 : 0) << '\n';
  out.precision(17);
  out << options_.gamma_lo << ' ' << options_.gamma_hi << ' '
      << options_.b_lo << ' ' << options_.b_hi << '\n';
  for (std::size_t j = 0; j < tables_.size(); ++j) {
    out << problem_->blocks()[j].name << ' ' << problem_->blocks()[j].area
        << '\n';
    const auto& values = tables_[j].values();
    for (std::size_t i = 0; i < values.size(); ++i)
      out << values[i] << ((i + 1) % 8 == 0 ? '\n' : ' ');
    out << '\n';
  }
  require(out.good(), ErrorCode::kIo, "HybridEvaluator::save: write failed");
}

HybridEvaluator HybridEvaluator::load(std::istream& in,
                                      const ReliabilityProblem& problem) {
  if (fault::should_fire(fault::site::kLutLoad))
    throw Error("HybridEvaluator::load: injected LUT corruption fault",
                ErrorCode::kIo);
  std::string magic;
  int version = 0;
  in >> magic >> version;
  require(in.good() && magic == "obdrel-hybrid-lut" && version == 1,
          ErrorCode::kInvalidInput,
          "HybridEvaluator::load: not an obdrel hybrid LUT stream");

  std::size_t n_blocks = 0;
  HybridOptions options;
  int log_space = 0;
  in >> n_blocks >> options.n_gamma >> options.n_b >> log_space;
  in >> options.gamma_lo >> options.gamma_hi >> options.b_lo >>
      options.b_hi;
  require(in.good(), ErrorCode::kInvalidInput,
          "HybridEvaluator::load: malformed header");
  options.log_space = (log_space != 0);
  require(n_blocks == problem.blocks().size(),
          ErrorCode::kInvalidInput,
          "HybridEvaluator::load: block count does not match the problem");
  // Bound the table dimensions before allocating: a corrupted header must
  // produce a typed error, not a multi-gigabyte allocation or bad_alloc.
  constexpr std::size_t kMaxTableIndices = 1u << 24;
  require(options.n_gamma >= 2 && options.n_b >= 2 &&
              options.n_gamma <= kMaxTableIndices &&
              options.n_b <= kMaxTableIndices &&
              options.n_gamma * options.n_b <= kMaxTableIndices,
          ErrorCode::kInvalidInput,
          "HybridEvaluator::load: implausible table dimensions " +
              std::to_string(options.n_gamma) + "x" +
              std::to_string(options.n_b));
  require(std::isfinite(options.gamma_lo) &&
              std::isfinite(options.gamma_hi) &&
              options.gamma_hi > options.gamma_lo &&
              std::isfinite(options.b_lo) && std::isfinite(options.b_hi) &&
              options.b_lo > 0.0 && options.b_hi > options.b_lo,
          ErrorCode::kInvalidInput,
          "HybridEvaluator::load: implausible table ranges");

  std::vector<num::LookupTable2D> tables;
  tables.reserve(n_blocks);
  for (std::size_t j = 0; j < n_blocks; ++j) {
    std::string name;
    double area = 0.0;
    in >> name >> area;
    require(in.good(), ErrorCode::kInvalidInput,
            "HybridEvaluator::load: truncated block header");
    require(name == problem.blocks()[j].name, ErrorCode::kInvalidInput,
            "HybridEvaluator::load: block name mismatch at index " +
                std::to_string(j));
    require(std::fabs(area - problem.blocks()[j].area) <=
                1e-9 * std::max(1.0, area),
            ErrorCode::kInvalidInput,
            "HybridEvaluator::load: block area mismatch for '" + name + "'");
    std::vector<double> values(options.n_gamma * options.n_b);
    for (auto& v : values) in >> v;
    require(in.good(), ErrorCode::kInvalidInput,
            "HybridEvaluator::load: truncated table data");
    tables.emplace_back(options.gamma_lo, options.gamma_hi, options.n_gamma,
                        options.b_lo, options.b_hi, options.n_b,
                        std::move(values));
  }
  return HybridEvaluator(problem, options, std::move(tables));
}

}  // namespace obd::core
