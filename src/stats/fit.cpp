#include "stats/fit.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "numeric/roots.hpp"
#include "stats/special.hpp"

namespace obd::stats {

GaussianFit fit_gaussian(const Histogram1D& h) {
  require(h.total() > 0.0, "fit_gaussian: empty histogram");

  // Moments from binned data (midpoint assignment).
  double mean = 0.0;
  for (std::size_t i = 0; i < h.bins(); ++i)
    mean += h.probability(i) * h.bin_center(i);
  double var = 0.0;
  for (std::size_t i = 0; i < h.bins(); ++i) {
    const double d = h.bin_center(i) - mean;
    var += h.probability(i) * d * d;
  }
  require(var > 0.0, "fit_gaussian: degenerate (zero-variance) histogram");

  GaussianFit fit;
  fit.mean = mean;
  fit.stddev = std::sqrt(var);

  // R^2 between observed bin densities and the fitted normal density.
  double ss_res = 0.0;
  double ss_tot = 0.0;
  double density_mean = 0.0;
  for (std::size_t i = 0; i < h.bins(); ++i) density_mean += h.density(i);
  density_mean /= static_cast<double>(h.bins());
  for (std::size_t i = 0; i < h.bins(); ++i) {
    const double observed = h.density(i);
    const double predicted =
        normal_pdf((h.bin_center(i) - mean) / fit.stddev) / fit.stddev;
    ss_res += (observed - predicted) * (observed - predicted);
    ss_tot += (observed - density_mean) * (observed - density_mean);
  }
  fit.r_square = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 0.0;
  return fit;
}

WeibullFit fit_weibull(const std::vector<double>& failure_times) {
  require(failure_times.size() >= 3, "fit_weibull: need at least 3 samples");
  double mean_log = 0.0;
  for (double t : failure_times) {
    require(t > 0.0, "fit_weibull: failure times must be positive");
    mean_log += std::log(t);
  }
  mean_log /= static_cast<double>(failure_times.size());
  const auto [lo, hi] =
      std::minmax_element(failure_times.begin(), failure_times.end());
  require(*hi > *lo, "fit_weibull: degenerate (constant) samples");

  // Profile-likelihood shape equation; work with times scaled by the
  // geometric mean so t^beta stays in range for large beta.
  auto shape_eq = [&](double beta) {
    double s = 0.0;
    double s_log = 0.0;
    for (double t : failure_times) {
      const double w = std::exp(beta * (std::log(t) - mean_log));
      s += w;
      s_log += w * std::log(t);
    }
    return s_log / s - 1.0 / beta - mean_log;
  };
  const double beta = num::brent_auto_bracket(shape_eq, 0.05, 5.0, 1e-12);

  double s = 0.0;
  for (double t : failure_times)
    s += std::exp(beta * (std::log(t) - mean_log));
  const double alpha =
      std::exp(mean_log +
               std::log(s / static_cast<double>(failure_times.size())) /
                   beta);

  WeibullFit fit;
  fit.alpha = alpha;
  fit.beta = beta;
  for (double t : failure_times) {
    const double z = t / alpha;
    fit.log_likelihood += std::log(beta / alpha) +
                          (beta - 1.0) * std::log(z) - std::pow(z, beta);
  }
  return fit;
}

}  // namespace obd::stats
