#include "stats/quadform.hpp"

#include <cmath>
#include <functional>

#include "linalg/eigen.hpp"
#include "numeric/quadrature.hpp"

namespace obd::stats {

ShiftedChiSquare::ShiftedChiSquare(double shift, double scale, double dof)
    : shift_(shift), scale_(scale), chi_(dof) {
  require(scale > 0.0, "ShiftedChiSquare: scale must be positive");
}

double ShiftedChiSquare::pdf(double x) const {
  return chi_.pdf((x - shift_) / scale_) / scale_;
}

double ShiftedChiSquare::cdf(double x) const {
  if (x <= shift_) return 0.0;
  return chi_.cdf((x - shift_) / scale_);
}

double ShiftedChiSquare::quantile(double p) const {
  return shift_ + scale_ * chi_.quantile(p);
}

double ShiftedChiSquare::sample(Rng& rng) const {
  return shift_ + scale_ * chi_.sample(rng);
}

std::size_t QuadraticForm::dimension() const {
  if (!quad.empty()) {
    require(quad.rows() == quad.cols(),
            "QuadraticForm: quad matrix must be square");
    require(linear.empty() || linear.size() == quad.rows(),
            "QuadraticForm: linear/quad dimension mismatch");
    return quad.rows();
  }
  return linear.size();
}

double QuadraticForm::value(const la::Vector& z) const {
  require(z.size() == dimension(), "QuadraticForm::value: z dimension");
  double v = constant;
  if (!linear.empty()) v += la::dot(linear, z);
  if (!quad.empty()) {
    const auto qz = quad.multiply(z);
    v += la::dot(z, qz);
  }
  return v;
}

double QuadraticForm::mean() const {
  return constant + (quad.empty() ? 0.0 : quad.trace());
}

double QuadraticForm::variance() const {
  double var = 0.0;
  if (!quad.empty()) var += 2.0 * quad.frobenius_squared();
  if (!linear.empty()) var += la::dot(linear, linear);
  return var;
}

double QuadraticForm::sample(Rng& rng) const {
  la::Vector z(dimension());
  for (auto& zi : z) zi = rng.normal();
  return value(z);
}

ShiftedChiSquare chi_square_match(const QuadraticForm& form) {
  require(!form.quad.empty(), "chi_square_match: quadratic part required");
  const double tr = form.quad.trace();
  require(tr > 0.0, "chi_square_match: tr(Q) must be positive");
  const double var = form.variance();
  require(var > 0.0, "chi_square_match: variance must be positive");
  const double a_hat = var / (2.0 * tr);
  const double b_hat = 2.0 * tr * tr / var;
  return {form.constant, a_hat, b_hat};
}

double third_central_moment(const QuadraticForm& form) {
  require(!form.quad.empty(), "third_central_moment: quadratic part required");
  const la::Matrix q2 = form.quad.matmul(form.quad);
  const la::Matrix q3 = q2.matmul(form.quad);
  double mu3 = 8.0 * q3.trace();
  if (!form.linear.empty()) {
    const la::Vector ql = form.quad.multiply(form.linear);
    mu3 += 6.0 * la::dot(form.linear, ql);
  }
  return mu3;
}

ShiftedChiSquare three_moment_match(const QuadraticForm& form) {
  const double mean = form.mean();
  const double var = form.variance();
  require(var > 0.0, "three_moment_match: variance must be positive");
  const double mu3 = third_central_moment(form);
  require(mu3 > 0.0, "three_moment_match: skewness must be positive");
  // For shift + a * chi2(b): mu3 = 8 a^3 b, var = 2 a^2 b =>
  // a = mu3 / (4 var), b = 2 var / (4 a^2) = 8 var^3 / mu3^2.
  const double a_hat = mu3 / (4.0 * var);
  const double b_hat = 0.5 * var / (a_hat * a_hat);
  const double shift = mean - a_hat * b_hat;
  return {shift, a_hat, b_hat};
}

namespace {

// Terms of the diagonalized form: sum_r lambda_r * chi2_1(delta_r^2).
struct ImhofTerms {
  la::Vector lambda;  // nonzero eigenvalues
  la::Vector delta2;  // noncentralities (delta_r^2)
  double shift = 0.0; // total constant after completing the square
};

ImhofTerms diagonalize(const QuadraticForm& form) {
  require(!form.quad.empty(), "imhof_cdf: quadratic part required");
  const auto eig = la::eigen_symmetric(form.quad);
  const std::size_t n = eig.values.size();

  // Rotate the linear term into the eigenbasis: m = V^T l.
  la::Vector m(n, 0.0);
  if (!form.linear.empty()) {
    for (std::size_t k = 0; k < n; ++k) {
      double s = 0.0;
      for (std::size_t r = 0; r < n; ++r)
        s += eig.vectors(r, k) * form.linear[r];
      m[k] = s;
    }
  }

  double scale = 0.0;
  for (double v : eig.values) scale = std::max(scale, std::fabs(v));
  const double eps = 1e-12 * std::max(scale, 1.0);

  ImhofTerms terms;
  terms.shift = form.constant;
  for (std::size_t k = 0; k < n; ++k) {
    const double lam = eig.values[k];
    if (std::fabs(lam) <= eps) {
      require(std::fabs(m[k]) <= 1e-9 * std::max(1.0, la::norm(m)),
              "imhof_cdf: linear term in the null space of Q is unsupported");
      continue;
    }
    // lam*(w + m/(2 lam))^2 - m^2/(4 lam)
    const double delta = m[k] / (2.0 * lam);
    terms.lambda.push_back(lam);
    terms.delta2.push_back(delta * delta);
    terms.shift -= lam * delta * delta;
  }
  return terms;
}

// Imhof integrand components.
double theta(const ImhofTerms& t, double u, double x0) {
  double s = 0.0;
  for (std::size_t r = 0; r < t.lambda.size(); ++r) {
    const double lu = t.lambda[r] * u;
    s += std::atan(lu) + t.delta2[r] * lu / (1.0 + lu * lu);
  }
  return 0.5 * s - 0.5 * x0 * u;
}

double rho(const ImhofTerms& t, double u) {
  double logrho = 0.0;
  for (std::size_t r = 0; r < t.lambda.size(); ++r) {
    const double lu2 = t.lambda[r] * u * t.lambda[r] * u;
    logrho += 0.25 * std::log1p(lu2);
    logrho += 0.5 * t.delta2[r] * lu2 / (1.0 + lu2);
  }
  return std::exp(logrho);
}

}  // namespace

double imhof_cdf(const QuadraticForm& form, double x, double tolerance) {
  const ImhofTerms terms = diagonalize(form);
  require(!terms.lambda.empty(), "imhof_cdf: form has no quadratic content");
  const double x0 = x - terms.shift;

  auto integrand = [&](double u) -> double {
    if (u <= 0.0) {
      // Limit u -> 0: theta(u)/u -> theta'(0).
      double tp = 0.0;
      for (std::size_t r = 0; r < terms.lambda.size(); ++r)
        tp += terms.lambda[r] * (1.0 + terms.delta2[r]);
      return 0.5 * (tp - x0);
    }
    return std::sin(theta(terms, u, x0)) / (u * rho(terms, u));
  };

  // Truncation point: envelope 1/(u rho(u)) below tolerance.
  double upper = 1.0;
  for (int i = 0; i < 200; ++i) {
    if (1.0 / (upper * rho(terms, upper)) < 0.1 * tolerance) break;
    upper *= 1.5;
  }

  // Integrate in panels sized against both the envelope decay and the
  // oscillation wavelength |theta'| ~ x0/2 at large u.
  const double omega = std::max(1.0, std::fabs(x0));
  const double panel = std::min(upper, 2.0 * M_PI / omega);
  double integral = 0.0;
  double a = 0.0;
  while (a < upper) {
    const double b = std::min(a + panel, upper);
    integral +=
        num::adaptive_simpson(integrand, a, b, tolerance * panel / upper);
    a = b;
  }

  const double prob_exceeds = 0.5 + integral / M_PI;
  const double cdf = 1.0 - prob_exceeds;
  return std::min(1.0, std::max(0.0, cdf));
}

}  // namespace obd::stats
