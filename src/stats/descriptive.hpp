// Descriptive statistics: streaming moments (Welford) and batch helpers.
#pragma once

#include <cstddef>
#include <vector>

namespace obd::stats {

/// Numerically stable streaming accumulator for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample mean of `xs` (0 for empty input).
double mean(const std::vector<double>& xs);

/// Unbiased sample variance of `xs` (0 for fewer than 2 samples).
double variance(const std::vector<double>& xs);

/// p-quantile of `xs` by linear interpolation of order statistics.
/// Copies and sorts; p in [0, 1].
double quantile(std::vector<double> xs, double p);

/// Empirical CDF of `sorted_xs` (ascending) evaluated at x.
double empirical_cdf(const std::vector<double>& sorted_xs, double x);

}  // namespace obd::stats
