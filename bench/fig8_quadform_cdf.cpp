// Fig. 8 reproduction: CDF of the BLOD sample-variance quadratic form by
// Monte Carlo, against the computationally efficient chi-square
// approximation (eq. 29-30) — plus Imhof's exact inversion as a second
// reference this implementation adds.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/blod.hpp"
#include "stats/descriptive.hpp"
#include "stats/quadform.hpp"

int main() {
  using namespace obd;

  const var::VariationBudget budget;
  const var::GridModel grid(12.0, 12.0, 12);
  const var::CanonicalForm canonical =
      var::make_canonical_form(grid, budget, 0.5);

  // Block spanning a 3x3 patch of grid cells.
  std::vector<std::pair<std::size_t, double>> weights;
  for (std::size_t r = 4; r < 7; ++r)
    for (std::size_t c = 4; c < 7; ++c)
      weights.emplace_back(r * 12 + c, 1.0 / 9.0);
  const core::BlodMoments blod(canonical, weights, 40000);

  const stats::QuadraticForm form = blod.v_quadratic_form(canonical);
  const stats::ShiftedChiSquare approx = blod.v_marginal();
  const stats::ShiftedChiSquare approx3 = blod.v_marginal_three_moment();

  // Monte Carlo reference on the exact quadratic form.
  stats::Rng rng(8);
  std::vector<double> samples;
  const std::size_t n = 300000;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) samples.push_back(form.sample(rng));
  std::sort(samples.begin(), samples.end());

  std::printf("Fig. 8 reproduction: CDF of the quadratic form v_j\n\n");
  std::printf("  two-moment match (eq. 29-30): shift %.3e, scale %.3e, "
              "dof %.2f\n",
              approx.shift(), approx.scale(), approx.dof());
  std::printf("  three-moment match (fn. 4):   shift %.3e, scale %.3e, "
              "dof %.2f\n\n",
              approx3.shift(), approx3.scale(), approx3.dof());
  std::printf("  %-12s %10s %10s %10s %10s\n", "v [nm^2]", "MC", "chi2-2m",
              "chi2-3m", "Imhof");

  double max_gap_chi = 0.0;
  double max_gap_chi3 = 0.0;
  double max_gap_imhof = 0.0;
  for (int i = 1; i <= 19; ++i) {
    const double p = i / 20.0;
    const double x = samples[static_cast<std::size_t>(p * (n - 1))];
    const double c_mc = stats::empirical_cdf(samples, x);
    const double c_chi = approx.cdf(x);
    const double c_chi3 = approx3.cdf(x);
    const double c_imhof = stats::imhof_cdf(form, x);
    max_gap_chi = std::max(max_gap_chi, std::fabs(c_chi - c_mc));
    max_gap_chi3 = std::max(max_gap_chi3, std::fabs(c_chi3 - c_mc));
    max_gap_imhof = std::max(max_gap_imhof, std::fabs(c_imhof - c_mc));
    std::printf("  %-12.4e %10.4f %10.4f %10.4f %10.4f\n", x, c_mc, c_chi,
                c_chi3, c_imhof);
  }
  std::printf("\n  max |chi2 2-moment - MC| = %.4f\n", max_gap_chi);
  std::printf("  max |chi2 3-moment - MC| = %.4f\n", max_gap_chi3);
  std::printf("  max |Imhof - MC|         = %.4f\n", max_gap_imhof);
  std::printf(
      "\nPaper reference: 'the computationally efficient chi2\n"
      "representation is in good agreement with the MC simulation'.\n");
  return 0;
}
