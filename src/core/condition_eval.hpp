// Exact per-corner condition evaluation over a HybridEvaluator.
//
// A "corner" is an operating-condition delta applied on top of a built
// problem without re-running the thermal pipeline: a uniform (or
// per-block) temperature offset, a supply override, and an activity
// scale. The evaluator maps the corner through the device reliability
// model — alpha_j = alpha(T_j + dT, vdd), b_j = b(T_j + dT, vdd) — into a
// ChipState and answers F(t) through the IncrementalEvaluator, so the
// result is bit-identical to hybrid.failure_probability_with (trivial
// mechanism stacks) / stack.compose_under (non-trivial), and repeated
// corners on the same evaluator refresh only the rows that changed.
//
// Consumers: the serve daemon's per-session `cond.*` request path, the
// surrogate layer's fit/certification reference, and the surrogate bench
// comparator — one definition of "exact under a corner" for all three.
#pragma once

#include <cstddef>
#include <vector>

#include "core/chip_state.hpp"
#include "core/device_model.hpp"
#include "core/hybrid.hpp"
#include "core/incremental.hpp"

namespace obd::core {

class ConditionEvaluator {
 public:
  /// `hybrid` (and its problem) must outlive this evaluator. `model`
  /// supplies the (T, vdd) -> (alpha, b) mapping; the serve layer passes
  /// the same defaults its problem build used.
  explicit ConditionEvaluator(const HybridEvaluator& hybrid,
                              const AnalyticModelParams& model = {});

  /// Applies one corner to every block: T_j = base_T_j + dt,
  /// alpha/b re-derived from the model at (T_j, vdd), activity scaled by
  /// `act_scale` from each block's base activity. The setters are
  /// bit-comparing, so re-applying an unchanged corner dirties nothing.
  void set_corner(double dt, double vdd, double act_scale);

  /// Overrides the temperature offset of one block (applied on top of the
  /// current corner's vdd/activity). Call after set_corner.
  void set_block_dt(std::size_t j, double dt);

  /// F(t) at the current corner. Bit-identical to a from-scratch
  /// evaluation under the same parameters (see incremental.hpp).
  [[nodiscard]] double evaluate(double t) { return inc_.evaluate(state_, t); }

  /// Chip log-survival at the current corner: the pre-expm1 value, which
  /// keeps resolving after F rounds to 1.0 (F = -expm1 of it, equal to
  /// evaluate() up to op ordering). The surrogate layer fits against this
  /// so its fit target never saturates; refusal policy still certifies
  /// against evaluate(), the value the engine actually serves.
  [[nodiscard]] double evaluate_ls(double t);

  /// The oxide channel of evaluate_ls: sum over blocks of
  /// log1p(-F_oxide_j(t)). For redundancy-free stacks evaluate_ls is
  /// exactly this plus the mechanism channels below; the surrogate fits
  /// each channel separately because each is smooth in its own log space
  /// while the log of their sum has a kink wherever two channels cross.
  [[nodiscard]] double oxide_log_survival(double t);

  /// Aging channel m (an index into problem().mechanisms().extras()):
  /// sum over blocks of log1p(-F_m,j(t)) at the current per-block
  /// operating conditions.
  [[nodiscard]] double mechanism_log_survival(std::size_t m, double t);

  [[nodiscard]] const IncrementalStats& stats() const { return inc_.stats(); }
  [[nodiscard]] const ChipState& state() const { return state_; }
  [[nodiscard]] const AnalyticReliabilityModel& model() const {
    return model_;
  }

 private:
  void apply_block(std::size_t j, double dt, double vdd, double act_scale);

  AnalyticReliabilityModel model_;
  const HybridEvaluator* hybrid_;  // non-owning; must outlive this
  ChipState state_;
  IncrementalEvaluator inc_;
  std::vector<double> base_temps_c_;
  std::vector<double> base_activities_;
  std::vector<double> ls_scratch_;
  double cur_vdd_;
  double cur_act_ = 1.0;
};

}  // namespace obd::core
