// Minimal key/value configuration files for the command-line frontend.
//
// Format: one `key = value` per line (the '=' is optional), '#' starts a
// comment, later assignments override earlier ones. Values keep internal
// whitespace, so `design = ev6` and `targets = 1e-6 1e-5` both work.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace obd {

/// Parsed configuration with typed, defaulted getters.
class Config {
 public:
  /// Parses a stream. Throws obd::Error on malformed lines.
  static Config parse(std::istream& in);

  /// Parses a file by path.
  static Config parse_file(const std::string& path);

  /// In-memory construction (tests, programmatic use).
  void set(const std::string& key, const std::string& value);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Raw string (throws if missing and no fallback overload used).
  [[nodiscard]] std::string get_string(const std::string& key) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;

  /// Numeric getters; throw obd::Error when present but unparsable.
  [[nodiscard]] double get_double(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] long long get_int(const std::string& key) const;
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const;

  /// Strictly positive integer used as a size/count. Rejects zero and
  /// negative values with ErrorCode::kInvalidInput instead of letting them
  /// wrap through static_cast<std::size_t> into absurd allocations.
  [[nodiscard]] std::size_t get_count(const std::string& key,
                                      std::size_t fallback) const;

  /// Accepts true/false/1/0/yes/no/on/off (case-insensitive).
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Whitespace-separated list of doubles.
  [[nodiscard]] std::vector<double> get_doubles(
      const std::string& key, const std::vector<double>& fallback) const;

  /// All keys, sorted — used to report unknown keys in the CLI.
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace obd
