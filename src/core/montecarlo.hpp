// Full-chip Monte Carlo reference analysis.
//
// The validation baseline of Section V: per-device thickness sampling over
// sample chips, with the chip-conditional reliability evaluated exactly
// (eq. 11). For each sample chip we draw the principal components z, then
// every device's thickness lambda_{g,0} + lambda_g . z + lambda_r eps, and
// accumulate the per-block thickness population into a fine fixed-range
// histogram — a lossless-in-practice compression that lets R_c(t | x) be
// evaluated at any t without re-walking devices. The ensemble failure is
// the sample average of conditional failures. Complexity scales with the
// number of devices, which is precisely why Table III shows MC losing by
// orders of magnitude.
#pragma once

#include <cstdint>
#include <vector>

#include "core/problem.hpp"
#include "stats/rng.hpp"

namespace obd::core {

struct MonteCarloOptions {
  std::size_t chip_samples = 1000;    ///< sample chips (paper: 1000)
  std::size_t thickness_bins = 512;   ///< per-block histogram resolution
  double thickness_range_sigmas = 7.0;///< histogram half-width in sigma_tot
  std::uint64_t seed = 99;
  /// Worker threads for chip sampling. Each chip draws from its own
  /// seed-derived stream, so results are identical for any thread count.
  std::size_t threads = 1;
};

class MonteCarloAnalyzer {
 public:
  /// Samples all chips up front (the expensive part; timed separately from
  /// queries by the benchmark harness).
  MonteCarloAnalyzer(const ReliabilityProblem& problem,
                     const MonteCarloOptions& options = {});

  /// Ensemble failure probability: mean over sample chips of the exact
  /// conditional chip failure 1 - R_c(t | x).
  [[nodiscard]] double failure_probability(double t) const;

  /// Standard error of failure_probability(t): sample standard deviation
  /// of the conditional failures over sqrt(chips). Lets benchmark tables
  /// report MC error bars instead of bare point estimates.
  [[nodiscard]] double failure_std_error(double t) const;

  [[nodiscard]] double reliability(double t) const {
    return 1.0 - failure_probability(t);
  }

  [[nodiscard]] double lifetime_at(double target) const;

  /// Ensemble probability that at least k breakdowns have occurred
  /// anywhere on the chip by time t: mean over sample chips of
  /// P(k, H_chip(t | x)) — the successive-breakdown extension (refs
  /// [28][30]; see core/multi_breakdown.hpp). k = 1 is
  /// failure_probability().
  [[nodiscard]] double kth_failure_probability(double t, std::size_t k) const;

  /// Lifetime at the target quantile of the k-th breakdown: the earned
  /// margin of designs that tolerate k-1 breakdowns.
  [[nodiscard]] double kth_lifetime_at(double target, std::size_t k) const;

  /// Simulates the failure time of `count` fresh sample chips (the Fig. 10
  /// "chip lifetime distribution" curve): per chip, draw all device
  /// thicknesses, then invert the conditional survivor function at an
  /// Exp(1) variate. Returned times are unsorted.
  [[nodiscard]] std::vector<double> sample_failure_times(std::size_t count,
                                                         stats::Rng& rng) const;

  [[nodiscard]] std::size_t chip_samples() const { return options_.chip_samples; }
  [[nodiscard]] const ReliabilityProblem& problem() const { return *problem_; }

 private:
  /// Per-chip compressed thickness population: per block, bin counts over
  /// the common thickness axis.
  struct ChipSample {
    std::vector<std::vector<std::uint32_t>> block_bins;
  };

  [[nodiscard]] ChipSample sample_chip(stats::Rng& rng) const;

  /// Sum over blocks of A-weighted Weibull exponents for one chip:
  /// H(t) = sum_j a_j sum_bins count * exp(gamma_j b_j x_bin).
  [[nodiscard]] double chip_exponent(const ChipSample& chip, double t) const;

  const ReliabilityProblem* problem_;  // non-owning; must outlive this
  MonteCarloOptions options_;
  double x_lo_ = 0.0;   ///< histogram lower edge [nm]
  double x_step_ = 0.0; ///< bin width [nm]
  std::vector<ChipSample> chips_;
};

}  // namespace obd::core
