#include "common/fault_injection.hpp"

#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>

#include "common/error.hpp"

namespace obd::fault {
namespace {

struct SiteState {
  std::size_t remaining = 0;  // firings left; SIZE_MAX means unlimited
  std::size_t fired = 0;
};

std::mutex g_mutex;
std::map<std::string, SiteState>& registry() {
  static std::map<std::string, SiteState> sites;
  return sites;
}

constexpr std::size_t kUnlimited = std::numeric_limits<std::size_t>::max();

bool any_armed_locked() {
  for (const auto& [name, s] : registry())
    if (s.remaining > 0) return true;
  return false;
}

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

bool fire_slow(const char* site_name) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  auto it = registry().find(site_name);
  if (it == registry().end() || it->second.remaining == 0) return false;
  if (it->second.remaining != kUnlimited) {
    --it->second.remaining;
    if (it->second.remaining == 0 && !any_armed_locked())
      g_armed.store(false, std::memory_order_relaxed);
  }
  ++it->second.fired;
  return true;
}

}  // namespace detail

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> sites = {
      site::kConfigParse, site::kFloorplanParse,
      site::kPtraceParse, site::kLutLoad,
      site::kCholesky,    site::kEigen,
      site::kThermalSor,  site::kThermalFixedPoint,
      site::kQuadrature,  site::kDrmThermal,
      site::kCheckpointWrite, site::kCheckpointCrc,
      site::kJournalAppend,   site::kJournalReplay,
      site::kDrmDeadline,
      site::kFleetHeartbeat,  site::kFleetSpawn,
      site::kFleetShardCrc,
      site::kServeAccept,     site::kServeCacheRead,
      site::kServeCacheEvict, site::kServeDeadline,
  };
  return sites;
}

void arm(const std::string& spec) {
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    // Trim surrounding whitespace.
    const std::size_t first = entry.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const std::size_t last = entry.find_last_not_of(" \t");
    entry = entry.substr(first, last - first + 1);

    std::string name = entry;
    std::size_t count = 1;
    const std::size_t colon = entry.find(':');
    if (colon != std::string::npos) {
      name = entry.substr(0, colon);
      const std::string arg = entry.substr(colon + 1);
      if (arg == "*") {
        count = kUnlimited;
      } else {
        try {
          std::size_t pos = 0;
          const long long n = std::stoll(arg, &pos);
          require(pos == arg.size() && n > 0, ErrorCode::kConfig,
                  "fault::arm: bad count '" + arg + "' in '" + entry + "'");
          count = static_cast<std::size_t>(n);
        } catch (const Error&) {
          throw;
        } catch (const std::exception&) {
          throw Error("fault::arm: bad count '" + arg + "' in '" + entry +
                          "'",
                      ErrorCode::kConfig);
        }
      }
    }

    bool known = false;
    for (const auto& s : known_sites())
      if (s == name) known = true;
    if (!known) {
      std::string catalogue;
      for (const auto& s : known_sites())
        catalogue += (catalogue.empty() ? "" : ", ") + s;
      throw Error("fault::arm: unknown site '" + name + "' (known: " +
                      catalogue + ")",
                  ErrorCode::kConfig);
    }

    const std::lock_guard<std::mutex> lock(g_mutex);
    registry()[name] = SiteState{count, registry()[name].fired};
    detail::g_armed.store(true, std::memory_order_relaxed);
  }
}

void arm_from_env() {
  const char* env = std::getenv("OBDREL_FAULTS");
  if (env != nullptr && env[0] != '\0') arm(env);
}

void disarm() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  registry().clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

std::size_t fired(const std::string& site_name) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = registry().find(site_name);
  return (it == registry().end()) ? 0 : it->second.fired;
}

}  // namespace obd::fault
