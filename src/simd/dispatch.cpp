#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "simd/kernels.hpp"

namespace obd::simd {
namespace {

// -1 = not yet resolved; otherwise a Level value. Resolution is lazy so
// library users who never touch dispatch still get "auto".
std::atomic<int> g_level{-1};

Level resolve_auto() {
  if (can_use_avx512()) return Level::kAvx512;
  return can_use_avx2() ? Level::kAvx2 : Level::kScalar;
}

void store(Level level) {
  g_level.store(static_cast<int>(level), std::memory_order_release);
}

}  // namespace

const char* to_string(Level level) {
  switch (level) {
    case Level::kAvx512:
      return "avx512";
    case Level::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

bool can_use_avx2() {
#if defined(OBDREL_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool can_use_avx512() {
#if defined(OBDREL_HAVE_AVX512) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq");
#else
  return false;
#endif
}

Level active_level() {
  const int l = g_level.load(std::memory_order_acquire);
  if (l >= 0) return static_cast<Level>(l);
  init_from_env();
  return static_cast<Level>(g_level.load(std::memory_order_acquire));
}

void configure(const std::string& spec) {
  if (spec == "auto") {
    store(resolve_auto());
    return;
  }
  if (spec == "scalar") {
    store(Level::kScalar);
    return;
  }
  if (spec == "avx2") {
    if (!can_use_avx2())
      throw Error(
          "simd level 'avx2' requested but unavailable (CPU lacks AVX2/FMA "
          "or the build disabled OBDREL_ENABLE_AVX2); use 'auto' or "
          "'scalar'",
          ErrorCode::kConfig);
    store(Level::kAvx2);
    return;
  }
  if (spec == "avx512") {
    if (!can_use_avx512())
      throw Error(
          "simd level 'avx512' requested but unavailable (CPU lacks "
          "AVX-512F/DQ or the build disabled OBDREL_ENABLE_AVX512); use "
          "'auto', 'avx2' or 'scalar'",
          ErrorCode::kConfig);
    store(Level::kAvx512);
    return;
  }
  throw Error("simd must be 'auto', 'avx512', 'avx2' or 'scalar', got '" +
                  spec + "'",
              ErrorCode::kConfig);
}

void init_from_env() {
  const char* env = std::getenv("OBDREL_SIMD");
  if (env == nullptr || *env == '\0') {
    // Do not override an explicit configure()/set_level() choice.
    if (g_level.load(std::memory_order_acquire) < 0) store(resolve_auto());
    return;
  }
  try {
    configure(env);
  } catch (const Error& e) {
    throw Error(std::string("OBDREL_SIMD: ") + e.what(), ErrorCode::kConfig);
  }
}

void set_level(Level level) {
  if (level == Level::kAvx2 && !can_use_avx2())
    throw Error("simd: AVX2 kernels unavailable on this host/build",
                ErrorCode::kConfig);
  if (level == Level::kAvx512 && !can_use_avx512())
    throw Error("simd: AVX-512 kernels unavailable on this host/build",
                ErrorCode::kConfig);
  store(level);
}

void publish_level() {
  std::string caps = " (";
  caps += can_use_avx512() ? "avx512f+dq available" : "avx512f+dq unavailable";
  caps += can_use_avx2() ? ", avx2+fma available)" : ", avx2+fma unavailable)";
  diagnostics().stat(
      "simd.level",
      std::string("dispatch ") + to_string(active_level()) + caps);
}

const KernelTable& kernels() {
#if defined(OBDREL_HAVE_AVX512)
  if (active_level() == Level::kAvx512) return detail::kAvx512Kernels;
#endif
#if defined(OBDREL_HAVE_AVX2)
  if (active_level() == Level::kAvx2) return detail::kAvx2Kernels;
#endif
  return detail::kScalarKernels;
}

}  // namespace obd::simd
