// Tests for the core extensions: successive-breakdown statistics,
// duty-cycle-aware analysis, and the transient thermal simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "chip/design.hpp"
#include "common/error.hpp"
#include "core/analytic.hpp"
#include "core/duty_cycle.hpp"
#include "core/lifetime.hpp"
#include "core/montecarlo.hpp"
#include "core/multi_breakdown.hpp"
#include "power/power.hpp"
#include "stats/special.hpp"
#include "thermal/transient.hpp"

namespace obd::core {
namespace {

TEST(MultiBreakdown, FirstBreakdownIsWeibull) {
  const double alpha = 1e10;
  const double b = 0.64;
  const double x = 2.2;
  for (double t : {1e7, 1e8, 1e9}) {
    const double weibull =
        1.0 - std::exp(-2.0 * std::pow(t / alpha, b * x));
    EXPECT_NEAR(kth_breakdown_cdf(t, alpha, b, x, 2.0, 1), weibull, 1e-12);
  }
}

TEST(MultiBreakdown, KthCdfOrdering) {
  // More breakdowns take longer: F_k(t) decreases in k at fixed t.
  const double t = 3e9;
  double prev = 1.0;
  for (std::size_t k = 1; k <= 5; ++k) {
    const double f = kth_breakdown_cdf(t, 1e10, 0.64, 2.2, 5.0, k);
    EXPECT_LT(f, prev) << "k=" << k;
    EXPECT_GE(f, 0.0);
    prev = f;
  }
}

TEST(MultiBreakdown, QuantileRoundTrip) {
  for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (double p : {1e-6, 1e-3, 0.5}) {
      const double t = kth_breakdown_quantile(p, 1e10, 0.64, 2.2, 3.0, k);
      EXPECT_NEAR(kth_breakdown_cdf(t, 1e10, 0.64, 2.2, 3.0, k) / p, 1.0,
                  1e-8)
          << "k=" << k << " p=" << p;
    }
  }
}

TEST(MultiBreakdown, ToleranceExtendsLifetime) {
  // A design tolerating k-1 breakdowns lives longer at the same quantile,
  // with diminishing returns in k.
  const double p = 1e-6;
  double prev = 0.0;
  double prev_gain = 1e9;
  for (std::size_t k = 1; k <= 4; ++k) {
    const double t = kth_breakdown_quantile(p, 1e10, 0.64, 2.2, 1e5, k);
    EXPECT_GT(t, prev);
    if (k >= 2) {
      const double gain = t / prev;
      EXPECT_GT(gain, 1.0);
      EXPECT_LT(gain, prev_gain);
      prev_gain = gain;
    }
    prev = t;
  }
}

TEST(MultiBreakdown, PoissonMatchesMonteCarlo) {
  // P(N >= k) from the gamma form vs direct Poisson sampling at the
  // conditional intensity.
  const double h = 1.7;
  stats::Rng rng(3);
  const int n = 200000;
  int ge2 = 0;
  int ge3 = 0;
  for (int i = 0; i < n; ++i) {
    // Sample Poisson(h) by exponential inter-arrivals.
    int count = 0;
    double acc = rng.exponential();
    while (acc < h) {
      ++count;
      acc += rng.exponential();
    }
    if (count >= 2) ++ge2;
    if (count >= 3) ++ge3;
  }
  EXPECT_NEAR(static_cast<double>(ge2) / n, stats::gamma_p(2.0, h), 0.005);
  EXPECT_NEAR(static_cast<double>(ge3) / n, stats::gamma_p(3.0, h), 0.005);
}

TEST(MultiBreakdown, RejectsBadArguments) {
  EXPECT_THROW(kth_breakdown_cdf(1.0, 1.0, 1.0, 1.0, 1.0, 0), obd::Error);
  EXPECT_THROW(kth_breakdown_quantile(0.0, 1.0, 1.0, 1.0, 1.0, 1),
               obd::Error);
  EXPECT_THROW(breakdown_intensity(1.0, -1.0, 1.0, 1.0), obd::Error);
}

class ExtFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_synthetic_design(
        "E1", {.devices = 25000, .block_count = 5, .die_width = 5.0,
               .die_height = 5.0, .seed = 31}));
    model_ = new AnalyticReliabilityModel();
    temps_ = new std::vector<double>{92.0, 66.0, 75.0, 58.0, 84.0};
    ProblemOptions opts;
    opts.grid_cells_per_side = 10;
    problem_ = new ReliabilityProblem(ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_, *temps_, 1.2, opts));
  }
  static void TearDownTestSuite() {
    delete problem_;
    delete temps_;
    delete model_;
    delete design_;
    problem_ = nullptr;
    temps_ = nullptr;
    model_ = nullptr;
    design_ = nullptr;
  }
  static chip::Design* design_;
  static AnalyticReliabilityModel* model_;
  static std::vector<double>* temps_;
  static ReliabilityProblem* problem_;
};

chip::Design* ExtFixture::design_ = nullptr;
AnalyticReliabilityModel* ExtFixture::model_ = nullptr;
std::vector<double>* ExtFixture::temps_ = nullptr;
ReliabilityProblem* ExtFixture::problem_ = nullptr;

TEST_F(ExtFixture, ChipLevelKthBreakdownOrdering) {
  const MonteCarloAnalyzer mc(*problem_, {.chip_samples = 150});
  const double t1 = mc.kth_lifetime_at(0.01, 1);
  const double t2 = mc.kth_lifetime_at(0.01, 2);
  const double t3 = mc.kth_lifetime_at(0.01, 3);
  EXPECT_GT(t2, t1);
  EXPECT_GT(t3, t2);
  // k = 1 path identical to plain failure probability.
  EXPECT_NEAR(mc.kth_failure_probability(t1, 1), 0.01, 1e-6);
}

TEST_F(ExtFixture, DutyCycleDegenerateSingleWorstPhaseMatchesStFast) {
  // One phase at the problem's own parameters with fraction 1 must agree
  // with the plain analyzer.
  WorkloadPhase phase;
  phase.name = "all";
  phase.fraction = 1.0;
  for (const auto& b : problem_->blocks()) {
    phase.alphas.push_back(b.alpha);
    phase.bs.push_back(b.b);
  }
  const DutyCycleAnalyzer duty(*problem_, {phase});
  const AnalyticAnalyzer fast(*problem_);
  for (double t : {1e8, 1e9}) {
    EXPECT_NEAR(duty.failure_probability(t) / fast.failure_probability(t),
                1.0, 1e-9)
        << "t=" << t;
  }
}

TEST_F(ExtFixture, DutyCycleInterpolatesBetweenPhases) {
  // 50% hot / 50% cool lies strictly between all-hot and all-cool.
  std::vector<double> hot(temps_->size());
  std::vector<double> cool(temps_->size());
  for (std::size_t j = 0; j < temps_->size(); ++j) {
    hot[j] = (*temps_)[j] + 15.0;
    cool[j] = (*temps_)[j] - 15.0;
  }
  const auto hot_phase = make_phase("hot", 1.0, *model_, hot, 1.2);
  const auto cool_phase = make_phase("cool", 1.0, *model_, cool, 1.2);
  auto half_hot = hot_phase;
  half_hot.fraction = 0.5;
  auto half_cool = cool_phase;
  half_cool.fraction = 0.5;

  const DutyCycleAnalyzer all_hot(*problem_, {hot_phase});
  const DutyCycleAnalyzer all_cool(*problem_, {cool_phase});
  const DutyCycleAnalyzer mixed(*problem_, {half_hot, half_cool});

  const double t_hot = all_hot.lifetime_at(kTenFaultsPerMillion);
  const double t_cool = all_cool.lifetime_at(kTenFaultsPerMillion);
  const double t_mix = mixed.lifetime_at(kTenFaultsPerMillion);
  EXPECT_GT(t_mix, t_hot);
  EXPECT_LT(t_mix, t_cool);
  // And the worst-phase assumption (all hot) is pessimistic vs the mix —
  // the margin this extension recovers.
  EXPECT_GT(t_mix / t_hot, 1.2);
}

TEST_F(ExtFixture, DutyCycleValidation) {
  auto phase = make_phase("p", 0.7, *model_, *temps_, 1.2);
  EXPECT_THROW(DutyCycleAnalyzer(*problem_, {phase}), obd::Error);  // != 1
  EXPECT_THROW(DutyCycleAnalyzer(*problem_, {}), obd::Error);
  auto bad = phase;
  bad.fraction = 1.0;
  bad.alphas.pop_back();
  EXPECT_THROW(DutyCycleAnalyzer(*problem_, {bad}), obd::Error);
}

TEST(Transient, ConvergesToSteadyState) {
  chip::Design d;
  d.name = "t";
  d.width = 6.0;
  d.height = 6.0;
  d.blocks.push_back(
      {"hot", {0, 0, 3, 6}, 100, 1.0, chip::UnitKind::kLogic, 0.8});
  d.blocks.push_back(
      {"cool", {3, 0, 3, 6}, 100, 1.0, chip::UnitKind::kCache, 0.1});
  const auto power = power::estimate_power(d, {});

  thermal::TransientParams params;
  params.thermal.resolution = 16;
  thermal::TransientSimulator sim(d, params);
  sim.reset(params.thermal.ambient_c);
  // Settle times follow the slow (die/package) mode, not the cell mode.
  sim.advance(power, 15.0 * sim.die_time_constant());

  const auto steady = thermal::solve_thermal(d, power, params.thermal);
  const auto transient = sim.profile();
  for (std::size_t j = 0; j < d.blocks.size(); ++j)
    EXPECT_NEAR(transient.block_temps_c[j], steady.block_temps_c[j], 0.5)
        << "block " << j;
}

TEST(Transient, HeatingIsMonotoneFromAmbient) {
  chip::Design d;
  d.name = "t";
  d.width = 4.0;
  d.height = 4.0;
  d.blocks.push_back(
      {"b", {0, 0, 4, 4}, 100, 1.0, chip::UnitKind::kLogic, 0.9});
  const auto power = power::estimate_power(d, {});
  thermal::TransientParams params;
  params.thermal.resolution = 8;
  thermal::TransientSimulator sim(d, params);
  sim.reset(params.thermal.ambient_c);
  double prev = params.thermal.ambient_c;
  for (int i = 0; i < 6; ++i) {
    sim.advance(power, 0.5 * sim.die_time_constant());
    const double now = sim.profile().block_temps_c[0];
    EXPECT_GT(now, prev);
    prev = now;
  }
  EXPECT_NEAR(sim.time_s(), 3.0 * sim.die_time_constant(), 1e-9);
}

TEST(Transient, CoolsBackWhenPowerRemoved) {
  chip::Design d;
  d.name = "t";
  d.width = 4.0;
  d.height = 4.0;
  d.blocks.push_back(
      {"b", {0, 0, 4, 4}, 100, 1.0, chip::UnitKind::kLogic, 0.9});
  thermal::TransientParams params;
  params.thermal.resolution = 8;
  thermal::TransientSimulator sim(d, params);
  sim.reset(120.0);
  power::PowerMap off;
  off.block_watts = {0.0};
  sim.advance(off, 15.0 * sim.die_time_constant());
  EXPECT_NEAR(sim.profile().block_temps_c[0], params.thermal.ambient_c, 0.5);
}

TEST(Transient, RejectsBadArguments) {
  chip::Design d;
  d.name = "t";
  d.width = 4.0;
  d.height = 4.0;
  d.blocks.push_back(
      {"b", {0, 0, 4, 4}, 100, 1.0, chip::UnitKind::kLogic, 0.9});
  thermal::TransientParams bad;
  bad.heat_capacity = -1.0;
  EXPECT_THROW(thermal::TransientSimulator(d, bad), obd::Error);

  thermal::TransientSimulator sim(d, {});
  power::PowerMap wrong;
  wrong.block_watts = {1.0, 2.0};
  EXPECT_THROW(sim.advance(wrong, 1.0), obd::Error);
  power::PowerMap ok;
  ok.block_watts = {1.0};
  EXPECT_THROW(sim.advance(ok, -1.0), obd::Error);
}

}  // namespace
}  // namespace obd::core
