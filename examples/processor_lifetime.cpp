// Processor reliability sign-off: the paper's design C6 (EV6-like Alpha
// processor, 15 functional modules, 0.84M devices).
//
// Runs the full pipeline — power, thermal, per-block device parameters,
// BLOD characterization — and compares every analysis method on the same
// problem: st_fast, st_MC, hybrid LUT, guard band, and a (reduced-sample)
// Monte Carlo reference. Prints a per-block breakdown showing which modules
// dominate the chip failure probability.
#include <cstdio>

#include "chip/design.hpp"
#include "common/stopwatch.hpp"
#include "core/analytic.hpp"
#include "core/guardband.hpp"
#include "core/hybrid.hpp"
#include "core/lifetime.hpp"
#include "core/montecarlo.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"

int main() {
  using namespace obd;
  const double year = 365.25 * 24 * 3600;

  const chip::Design design = chip::make_ev6_design();
  const power::PowerParams pparams;
  const thermal::ThermalProfile profile =
      thermal::power_thermal_fixed_point(design, pparams, {.resolution = 64});

  std::printf("== %s: %zu devices, %zu functional modules ==\n",
              design.name.c_str(), design.total_devices(),
              design.blocks.size());
  const power::PowerMap power =
      power::estimate_power(design, pparams, profile.block_temps_c);
  std::printf("Total power %.1f W; temperature %.1f .. %.1f C\n\n",
              power.total(), profile.min_c(), profile.max_c());

  const core::AnalyticReliabilityModel model;
  Stopwatch sw;
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, profile.block_temps_c, 1.2);
  std::printf("Problem assembly (incl. PCA of 25x25 grid): %.2f s\n\n",
              sw.seconds());

  // Per-block table: temperature, area, and failure share at 10 years.
  const core::AnalyticAnalyzer fast(problem);
  const double t10y = 10.0 * year;
  const double chip_fail = fast.failure_probability(t10y);
  std::printf("%-8s %8s %10s %12s %s\n", "module", "T [C]", "devices",
              "F(10y)", "share");
  for (std::size_t j = 0; j < problem.blocks().size(); ++j) {
    const auto& b = problem.blocks()[j];
    const double f = fast.block_failure(j, t10y);
    std::printf("%-8s %8.1f %10zu %12.3e %5.1f%%\n", b.name.c_str(),
                b.temp_c, design.blocks[j].device_count, f,
                100.0 * f / chip_fail);
  }
  std::printf("chip F(10y) = %.3e\n\n", chip_fail);

  // Method comparison at the two ppm criteria.
  const core::StMcAnalyzer st_mc(problem, {.samples = 10000});
  const core::HybridEvaluator hybrid(problem);
  const core::GuardBandAnalyzer guard(problem);
  // Reduced-sample MC so the example stays interactive; the bench harness
  // runs the full comparison.
  const core::MonteCarloAnalyzer mc(problem, {.chip_samples = 200});

  std::printf("%-22s %14s %14s\n", "method", "1/million [y]",
              "10/million [y]");
  auto row = [&](const char* name, double t1, double t10) {
    std::printf("%-22s %14.2f %14.2f\n", name, t1 / year, t10 / year);
  };
  row("st_fast", fast.lifetime_at(1e-6), fast.lifetime_at(1e-5));
  row("st_MC", st_mc.lifetime_at(1e-6), st_mc.lifetime_at(1e-5));
  row("hybrid LUT", hybrid.lifetime_at(1e-6), hybrid.lifetime_at(1e-5));
  row("guard-band", guard.lifetime_at(1e-6), guard.lifetime_at(1e-5));
  row("Monte Carlo (200)", mc.lifetime_at(1e-6), mc.lifetime_at(1e-5));
  return 0;
}
