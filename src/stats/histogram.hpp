// Fixed-bin 1-D and 2-D histograms.
//
// Used for: BLOD frequency-distribution construction (Fig. 4), the st_MC
// numerical joint PDF of (u_j, v_j) (Section V), mutual-information
// estimation (Fig. 6), and the binned per-chip thickness populations inside
// the full Monte Carlo reference flow.
#pragma once

#include <cstddef>
#include <vector>

namespace obd::stats {

/// 1-D histogram over [lo, hi) with `bins` equal-width bins.
/// Samples outside the range are clamped into the edge bins so that total
/// mass is conserved (required when the histogram stands in for a PDF).
class Histogram1D {
 public:
  Histogram1D(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double bin_width() const { return width_; }
  [[nodiscard]] double bin_center(std::size_t i) const {
    return lo_ + (static_cast<double>(i) + 0.5) * width_;
  }
  [[nodiscard]] double count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double total() const { return total_; }

  /// Probability mass of bin i (count / total).
  [[nodiscard]] double probability(std::size_t i) const;

  /// Density estimate at bin i (probability / bin width).
  [[nodiscard]] double density(std::size_t i) const;

  [[nodiscard]] const std::vector<double>& counts() const { return counts_; }

 private:
  double lo_;
  double hi_;
  double width_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

/// 2-D histogram over [xlo, xhi) x [ylo, yhi).
class Histogram2D {
 public:
  Histogram2D(double xlo, double xhi, std::size_t xbins, double ylo,
              double yhi, std::size_t ybins);

  void add(double x, double y, double weight = 1.0);

  [[nodiscard]] std::size_t xbins() const { return xbins_; }
  [[nodiscard]] std::size_t ybins() const { return ybins_; }
  [[nodiscard]] double x_center(std::size_t i) const {
    return xlo_ + (static_cast<double>(i) + 0.5) * xwidth_;
  }
  [[nodiscard]] double y_center(std::size_t j) const {
    return ylo_ + (static_cast<double>(j) + 0.5) * ywidth_;
  }
  [[nodiscard]] double count(std::size_t i, std::size_t j) const {
    return counts_[i * ybins_ + j];
  }
  [[nodiscard]] double total() const { return total_; }
  [[nodiscard]] double probability(std::size_t i, std::size_t j) const;
  /// Joint density estimate at cell (i, j).
  [[nodiscard]] double density(std::size_t i, std::size_t j) const;
  /// Marginal probability of x-bin i (sum over y).
  [[nodiscard]] double marginal_x(std::size_t i) const;
  /// Marginal probability of y-bin j (sum over x).
  [[nodiscard]] double marginal_y(std::size_t j) const;

 private:
  double xlo_, xhi_, xwidth_;
  double ylo_, yhi_, ywidth_;
  std::size_t xbins_, ybins_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

/// Estimates mutual information I(X; Y) in nats from a 2-D histogram
/// (plug-in estimator). The paper reports ~0.003 for (u_j, v_j) in Fig. 6.
double mutual_information(const Histogram2D& h);

}  // namespace obd::stats
