#include "stats/goodness.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace obd::stats {

double ks_statistic(std::vector<double> samples,
                    const std::function<double(double)>& cdf) {
  require(!samples.empty(), "ks_statistic: empty sample set");
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    require(f >= -1e-12 && f <= 1.0 + 1e-12,
            "ks_statistic: reference CDF out of [0, 1]");
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::fabs(f - lo), std::fabs(hi - f)));
  }
  return d;
}

double ks_p_value(double d, std::size_t n) {
  require(d >= 0.0, "ks_p_value: statistic must be non-negative");
  require(n > 0, "ks_p_value: sample size must be positive");
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  // Effective statistic with the Stephens small-sample correction.
  const double t = d * (sqrt_n + 0.12 + 0.11 / sqrt_n);
  if (t < 1e-3) return 1.0;
  // Q_KS(t) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 t^2).
  double p = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * t * t);
    p += ((k % 2 == 1) ? 2.0 : -2.0) * term;
    if (term < 1e-16) break;
  }
  return std::min(1.0, std::max(0.0, p));
}

double anderson_darling_statistic(
    std::vector<double> samples,
    const std::function<double(double)>& cdf) {
  require(samples.size() >= 2, "anderson_darling: need >= 2 samples");
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  const double dn = static_cast<double>(n);
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double f_lo = cdf(samples[i]);
    double f_hi = cdf(samples[n - 1 - i]);
    // Clamp away from {0, 1} so the logs stay finite.
    f_lo = std::min(std::max(f_lo, 1e-300), 1.0 - 1e-16);
    f_hi = std::min(std::max(f_hi, 1e-300), 1.0 - 1e-16);
    s += (2.0 * static_cast<double>(i) + 1.0) *
         (std::log(f_lo) + std::log1p(-f_hi));
  }
  return -dn - s / dn;
}

}  // namespace obd::stats
