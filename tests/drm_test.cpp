// Tests for the dynamic reliability manager.
#include <gtest/gtest.h>

#include <cmath>

#include "chip/design.hpp"
#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "core/duty_cycle.hpp"
#include "drm/manager.hpp"

namespace obd::drm {
namespace {

class DrmFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_synthetic_design(
        "D1", {.devices = 20000, .block_count = 5, .die_width = 5.0,
               .die_height = 5.0, .seed = 71}));
    model_ = new core::AnalyticReliabilityModel();
    // The problem's temperatures are placeholders; the manager recomputes
    // thermals per operating point.
    core::ProblemOptions opts;
    opts.grid_cells_per_side = 10;
    problem_ = new core::ReliabilityProblem(core::ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_,
        std::vector<double>(5, 80.0), 1.2, opts));
    ladder_ = new std::vector<OperatingPoint>{
        {"eco", 1.00, 1.2e9}, {"mid", 1.10, 1.7e9}, {"turbo", 1.25, 2.3e9}};
  }
  static void TearDownTestSuite() {
    delete ladder_;
    delete problem_;
    delete model_;
    delete design_;
    ladder_ = nullptr;
    problem_ = nullptr;
    model_ = nullptr;
    design_ = nullptr;
  }
  static chip::Design* design_;
  static core::AnalyticReliabilityModel* model_;
  static core::ReliabilityProblem* problem_;
  static std::vector<OperatingPoint>* ladder_;
};

chip::Design* DrmFixture::design_ = nullptr;
core::AnalyticReliabilityModel* DrmFixture::model_ = nullptr;
core::ReliabilityProblem* DrmFixture::problem_ = nullptr;
std::vector<OperatingPoint>* DrmFixture::ladder_ = nullptr;

TEST_F(DrmFixture, DamageIsMonotoneAndStartsAtZero) {
  ReliabilityManager mgr(*problem_, *model_, *ladder_);
  EXPECT_DOUBLE_EQ(mgr.damage(), 0.0);
  double prev = 0.0;
  for (int i = 0; i < 6; ++i) {
    const DrmStep s = mgr.step_fixed(1, 0.7);
    EXPECT_GE(s.damage, prev);
    prev = s.damage;
  }
  EXPECT_GT(prev, 0.0);
  EXPECT_NEAR(mgr.elapsed_s(), 6.0 * 30.0 * 86400.0, 1.0);
}

TEST_F(DrmFixture, EffectiveAgeRecursionMatchesDirectEvaluation) {
  // Constant conditions: stepping n intervals must equal one evaluation at
  // the total elapsed time (the recursion is exact for constant stress).
  DrmOptions opts;
  opts.control_interval_s = 60.0 * 86400.0;
  ReliabilityManager stepped(*problem_, *model_, *ladder_, opts);
  for (int i = 0; i < 10; ++i) stepped.step_fixed(2, 0.8);

  DrmOptions big;
  big.control_interval_s = 600.0 * 86400.0;
  ReliabilityManager direct(*problem_, *model_, *ladder_, big);
  direct.step_fixed(2, 0.8);

  EXPECT_NEAR(stepped.damage() / direct.damage(), 1.0, 1e-3);
}

TEST_F(DrmFixture, FasterRungsAgeFaster) {
  ReliabilityManager eco(*problem_, *model_, *ladder_);
  ReliabilityManager turbo(*problem_, *model_, *ladder_);
  for (int i = 0; i < 4; ++i) {
    eco.step_fixed(0, 0.8);
    turbo.step_fixed(2, 0.8);
  }
  EXPECT_GT(turbo.damage(), 3.0 * eco.damage());
}

TEST_F(DrmFixture, ControllerRespectsBudgetTrajectory) {
  DrmOptions opts;
  opts.lifetime_target_s = 5.0 * 365.25 * 86400.0;
  opts.failure_budget = 1e-5;
  opts.control_interval_s = opts.lifetime_target_s / 60.0;
  ReliabilityManager mgr(*problem_, *model_, *ladder_, opts);
  for (int i = 0; i < 60; ++i) {
    const DrmStep s = mgr.step(0.9);
    EXPECT_LE(s.damage, s.budget_line * 1.02) << "step " << i;
  }
  // The full lifetime is managed to (at most) the budget.
  EXPECT_LE(mgr.damage(), opts.failure_budget * 1.02);
}

// A failure budget between eco-always and turbo-always damage, so the
// trajectory constraint actually binds and the rung choice matters.
double binding_budget(const core::ReliabilityProblem& problem,
                      const core::DeviceReliabilityModel& model,
                      const std::vector<OperatingPoint>& ladder,
                      DrmOptions opts, int steps, double workload) {
  ReliabilityManager eco(problem, model, ladder, opts);
  ReliabilityManager turbo(problem, model, ladder, opts);
  for (int i = 0; i < steps; ++i) {
    eco.step_fixed(0, workload);
    turbo.step_fixed(ladder.size() - 1, workload);
  }
  return std::sqrt(eco.damage() * turbo.damage());
}

TEST_F(DrmFixture, LightWorkloadEarnsFasterRungs) {
  DrmOptions opts;
  opts.lifetime_target_s = 5.0 * 365.25 * 86400.0;
  opts.control_interval_s = opts.lifetime_target_s / 40.0;
  opts.failure_budget =
      binding_budget(*problem_, *model_, *ladder_, opts, 40, 0.8);
  ReliabilityManager light(*problem_, *model_, *ladder_, opts);
  ReliabilityManager heavy(*problem_, *model_, *ladder_, opts);
  double light_rungs = 0.0;
  double heavy_rungs = 0.0;
  for (int i = 0; i < 40; ++i) {
    light_rungs += static_cast<double>(light.step(0.25).op_index);
    heavy_rungs += static_cast<double>(heavy.step(1.0).op_index);
  }
  // Cool workloads leave headroom the controller converts into speed.
  EXPECT_GT(light_rungs, heavy_rungs);
}

TEST_F(DrmFixture, BudgetPolicyOutperformsStaticWorstCase) {
  // Static worst-case policy: the fastest rung that survives the full
  // lifetime under *continuous worst-case* workload. The adaptive policy
  // on a mixed workload must beat its average performance at equal (or
  // lower) damage.
  DrmOptions opts;
  opts.lifetime_target_s = 5.0 * 365.25 * 86400.0;
  opts.control_interval_s = opts.lifetime_target_s / 50.0;
  opts.failure_budget =
      binding_budget(*problem_, *model_, *ladder_, opts, 50, 1.0);

  // Find the static rung: highest rung whose all-worst-case damage fits.
  std::size_t static_rung = 0;
  for (std::size_t r = ladder_->size(); r-- > 0;) {
    ReliabilityManager probe(*problem_, *model_, *ladder_, opts);
    for (int i = 0; i < 50; ++i) probe.step_fixed(r, 1.0);
    if (probe.damage() <= opts.failure_budget) {
      static_rung = r;
      break;
    }
  }

  // Mixed workload: 70% light phases, 30% heavy.
  auto workload = [](int i) { return (i % 10 < 7) ? 0.3 : 1.0; };

  ReliabilityManager adaptive(*problem_, *model_, *ladder_, opts);
  ReliabilityManager fixed(*problem_, *model_, *ladder_, opts);
  double perf_adaptive = 0.0;
  double perf_fixed = 0.0;
  for (int i = 0; i < 50; ++i) {
    perf_adaptive += adaptive.step(workload(i)).performance;
    perf_fixed += fixed.step_fixed(static_rung, workload(i)).performance;
  }
  EXPECT_GT(perf_adaptive, perf_fixed);
  EXPECT_LE(adaptive.damage(), opts.failure_budget * 1.02);
}

TEST_F(DrmFixture, RejectsBadConfiguration) {
  EXPECT_THROW(ReliabilityManager(*problem_, *model_, {}), obd::Error);
  std::vector<OperatingPoint> unsorted{{"fast", 1.2, 2e9},
                                       {"slow", 1.0, 1e9}};
  EXPECT_THROW(ReliabilityManager(*problem_, *model_, unsorted), obd::Error);
  ReliabilityManager mgr(*problem_, *model_, *ladder_);
  EXPECT_THROW(mgr.step_fixed(99, 0.5), obd::Error);
  // Bad workload samples degrade (clamp + diagnostic) instead of killing
  // the control loop; strict mode escalates them back into typed errors.
  diagnostics().clear();
  const DrmStep degraded = mgr.step(-0.5);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_GE(diagnostics().count("drm.step"), 1u);
  set_strict_mode(true);
  try {
    mgr.step(-0.5);
    ADD_FAILURE() << "strict mode should escalate the clamped sample";
  } catch (const obd::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDegraded);
  }
  set_strict_mode(false);
  diagnostics().clear();
}

}  // namespace
}  // namespace obd::drm
