// Before/after timings and exactness gates for the three dominant kernels:
//
//   1. Device sampling: per-device normal draws vs the binned
//      conditional-binomial sampler (DeviceSampling::kBinned) on a chip
//      with >= 10^6 devices. Gates: the two samplers place exactly the
//      same number of devices per block, and their ensemble failure
//      estimates agree within 6 combined standard errors.
//   2. F(t) sweep: the pre-fast-path per-point evaluation
//      (failure_probability_reference) vs one batched
//      failure_probabilities() call over 64 points. Gate: the batched
//      sweep is bit-identical to the new per-point scalar path.
//   3. Covariance + PCA: per-pair kernel evaluation vs the
//      displacement-table build_covariance (gate: bit-identical), and the
//      full QL eigendecomposition vs the truncated subspace-iteration
//      solver (gate: kept eigenvalues match to 1e-8 and the truncated
//      eigenvectors satisfy ||A v - lambda v|| <= 1e-8 * lambda_max).
//
// All sections run serially (par pool forced to one thread) so the
// reported speedups are algorithmic, not threading. Results are written to
// BENCH_hotpath.json (in $OBDREL_CSV_DIR when set); the exit code reflects
// the exactness gates only — speedups are reported for the acceptance
// tables but depend on the host.
//
// Scaling knobs: OBDREL_HOTPATH_DEVICES (default 8000000),
// OBDREL_HOTPATH_CHIPS (default 10), OBDREL_HOTPATH_SWEEP_CHIPS
// (default 1500), OBDREL_HOTPATH_GRID (default 40 cells per side).
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chip/design.hpp"
#include "common/csv.hpp"
#include "common/parallel.hpp"
#include "common/stopwatch.hpp"
#include "core/montecarlo.hpp"
#include "linalg/eigen.hpp"
#include "variation/model.hpp"

namespace {

// Order-sensitive checksum over the exact bit patterns of a double stream
// (same scheme as parallel_scaling): equal checksums iff every value is
// bit-identical and in the same order.
struct BitChecksum {
  std::uint64_t value = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  void add(double d) {
    std::uint64_t bits = std::bit_cast<std::uint64_t>(d);
    for (int i = 0; i < 8; ++i) {
      value ^= (bits >> (8 * i)) & 0xffu;
      value *= 0x100000001b3ull;  // FNV-1a prime
    }
  }
};

}  // namespace

int main() {
  using namespace obd;
  const std::size_t devices =
      bench::env_size("OBDREL_HOTPATH_DEVICES", 8000000);
  const std::size_t chips = bench::env_size("OBDREL_HOTPATH_CHIPS", 10);
  const std::size_t sweep_chips =
      bench::env_size("OBDREL_HOTPATH_SWEEP_CHIPS", 1500);
  const std::size_t grid_side = bench::env_size("OBDREL_HOTPATH_GRID", 40);

  par::set_threads(1);  // algorithmic comparison: no threading in any lap

  // ---------------------------------------------------------------- 1 ----
  const chip::Design design = chip::make_synthetic_design(
      "HOTPATH", {.devices = devices, .block_count = 10, .die_width = 8.0,
                  .die_height = 8.0, .seed = 13});
  const std::vector<double> temps(design.blocks.size(), 80.0);
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, core::AnalyticReliabilityModel{},
      temps, 1.2);

  std::printf("Hot-path kernels, %zu devices/chip, %zu sample chips.\n\n",
              devices, chips);

  Stopwatch sw;
  const core::MonteCarloAnalyzer mc_per_device(
      problem, {.chip_samples = chips,
                .sampling = core::DeviceSampling::kPerDevice});
  const double t_per_device = sw.seconds();
  sw.reset();
  const core::MonteCarloAnalyzer mc_binned(
      problem,
      {.chip_samples = chips, .sampling = core::DeviceSampling::kBinned});
  const double t_binned = sw.seconds();
  const double sampling_speedup = t_per_device / t_binned;

  // Exactness: both samplers apportion the same number of devices to every
  // block of every chip (the binned sampler distributes exact counts).
  bool counts_conserved = true;
  for (std::size_t j = 0; j < design.blocks.size(); ++j) {
    const auto ref = mc_per_device.pooled_thickness_histogram(j);
    const auto bin = mc_binned.pooled_thickness_histogram(j);
    std::uint64_t total_ref = ref.underflow + ref.overflow;
    std::uint64_t total_bin = bin.underflow + bin.overflow;
    for (std::uint64_t c : ref.counts) total_ref += c;
    for (std::uint64_t c : bin.counts) total_bin += c;
    if (total_ref != total_bin) counts_conserved = false;
  }

  // Statistical equivalence of the ensemble estimate at a mid-curve point.
  const double t_star = mc_per_device.lifetime_at(0.01);
  const double f_ref = mc_per_device.failure_probability(t_star);
  const double f_bin = mc_binned.failure_probability(t_star);
  const double se = std::hypot(mc_per_device.failure_std_error(t_star),
                               mc_binned.failure_std_error(t_star));
  const double f_delta_sigmas =
      (se > 0.0) ? std::abs(f_bin - f_ref) / se : 0.0;
  const bool sampling_equivalent =
      counts_conserved && (f_delta_sigmas <= 6.0);

  std::printf("[1] binned sampling: per-device %.3f s, binned %.3f s "
              "(%.1fx); counts %s, F delta %.2f sigma\n",
              t_per_device, t_binned, sampling_speedup,
              counts_conserved ? "conserved" : "NOT CONSERVED",
              f_delta_sigmas);

  // ---------------------------------------------------------------- 2 ----
  const chip::Design c3 = chip::make_benchmark(3);
  const std::vector<double> temps3(c3.blocks.size(), 80.0);
  const auto problem3 = core::ReliabilityProblem::build(
      c3, var::VariationBudget{}, core::AnalyticReliabilityModel{}, temps3,
      1.2);
  const core::MonteCarloAnalyzer mc_sweep(
      problem3, {.chip_samples = sweep_chips,
                 .sampling = core::DeviceSampling::kBinned});

  std::vector<double> ts;
  for (std::size_t i = 0; i < 64; ++i)
    ts.push_back(1e8 * std::pow(10.0, static_cast<double>(i) / 63.0));

  sw.reset();
  std::vector<double> f_before;
  for (double t : ts)
    f_before.push_back(mc_sweep.failure_probability_reference(t));
  const double t_sweep_before = sw.seconds();

  sw.reset();
  const std::vector<double> f_batched = mc_sweep.failure_probabilities(ts);
  const double t_sweep_after = sw.seconds();
  const double sweep_speedup = t_sweep_before / t_sweep_after;

  // Exactness: batched sweep vs the per-point scalar path, bit for bit.
  sw.reset();
  BitChecksum scalar_sum;
  for (double t : ts) scalar_sum.add(mc_sweep.failure_probability(t));
  const double t_sweep_scalar = sw.seconds();
  BitChecksum batched_sum;
  for (double f : f_batched) batched_sum.add(f);
  const bool sweep_bitwise = batched_sum.value == scalar_sum.value;

  // Informational: drift of the re-anchored kernel vs the legacy
  // incremental recurrence (expected ~ulp-level, not zero).
  double sweep_ref_delta = 0.0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const double scale = std::max(std::abs(f_before[i]), 1e-300);
    sweep_ref_delta =
        std::max(sweep_ref_delta, std::abs(f_batched[i] - f_before[i]) / scale);
  }

  std::printf("[2] 64-point F(t) sweep over %zu chips: reference %.3f s, "
              "batched %.3f s (%.1fx), scalar-new %.3f s; batched vs "
              "scalar %s, max rel delta vs legacy %.2e\n",
              sweep_chips, t_sweep_before, t_sweep_after, sweep_speedup,
              t_sweep_scalar,
              sweep_bitwise ? "IDENTICAL" : "DIFFER", sweep_ref_delta);

  // ---------------------------------------------------------------- 3 ----
  const var::GridModel grid(8.0, 8.0, grid_side);
  const var::VariationBudget budget;
  const double rho_dist = 0.5;
  const double length = rho_dist * 8.0;
  const std::size_t n = grid.cell_count();

  sw.reset();
  la::Matrix cov_pairwise(n, n);
  {
    const double vg = budget.sigma_global() * budget.sigma_global();
    const double vs = budget.sigma_spatial() * budget.sigma_spatial();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        const double c =
            vg + vs * var::kernel_correlation(
                          var::CorrelationKernel::kExponential,
                          grid.distance(i, j), length);
        cov_pairwise(i, j) = c;
        cov_pairwise(j, i) = c;
      }
    }
  }
  const double t_cov_pairwise = sw.seconds();

  sw.reset();
  const la::Matrix cov_table = var::build_covariance(grid, budget, rho_dist);
  const double t_cov_table = sw.seconds();
  const double cov_speedup = t_cov_pairwise / t_cov_table;

  BitChecksum pairwise_sum;
  BitChecksum table_sum;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      pairwise_sum.add(cov_pairwise(i, j));
      table_sum.add(cov_table(i, j));
    }
  }
  const bool cov_bitwise = pairwise_sum.value == table_sum.value;

  // Eigensolver comparison on the Matern-3/2 covariance: its spectrum
  // decays fast, so 0.999 capture keeps few components — the regime the
  // truncated solver is built for. (The exponential kernel's slowly
  // decaying spectrum keeps most components at 0.999, where the solver
  // falls back to the dense path by design.)
  const la::Matrix cov_smooth = var::build_covariance(
      grid, budget, rho_dist, var::CorrelationKernel::kMatern32);
  sw.reset();
  const auto full = la::eigen_symmetric(cov_smooth);
  const double t_eigen_full = sw.seconds();
  sw.reset();
  const auto trunc = la::eigen_symmetric_truncated(cov_smooth, 0.999);
  const double t_eigen_trunc = sw.seconds();
  const double eigen_speedup = t_eigen_full / t_eigen_trunc;

  const std::size_t kept = trunc.values.size();
  const double lambda_max = std::max(std::abs(full.values.front()), 1e-300);
  double max_value_delta = 0.0;
  double max_residual = 0.0;
  for (std::size_t k = 0; k < kept; ++k) {
    max_value_delta =
        std::max(max_value_delta, std::abs(trunc.values[k] - full.values[k]));
    // ||A v - lambda v||_2 for the truncated eigenvector.
    double res2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double av = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        av += cov_smooth(i, j) * trunc.vectors(j, k);
      const double r = av - trunc.values[k] * trunc.vectors(i, k);
      res2 += r * r;
    }
    max_residual = std::max(max_residual, std::sqrt(res2));
  }
  const bool eigen_matches = kept >= 1 &&
                             max_value_delta <= 1e-8 * lambda_max &&
                             max_residual <= 1e-8 * lambda_max;

  std::printf("[3] covariance %zux%zu: pairwise %.3f s, table %.3f s "
              "(%.1fx), %s; eigen: full %.3f s, truncated %.3f s (%.1fx), "
              "%zu kept, value delta %.2e, residual %.2e (%s)\n",
              n, n, t_cov_pairwise, t_cov_table, cov_speedup,
              cov_bitwise ? "IDENTICAL" : "DIFFER", t_eigen_full,
              t_eigen_trunc, eigen_speedup, kept, max_value_delta,
              max_residual, eigen_matches ? "ok" : "MISMATCH");

  par::set_threads(0);  // restore automatic width

  const bool pass =
      sampling_equivalent && sweep_bitwise && cov_bitwise && eigen_matches;
  std::printf("\nexactness gates %s\n", pass ? "PASS" : "FAIL");

  std::string dir = csv_output_dir();
  const std::string path =
      (dir.empty() ? std::string{} : dir + "/") + "BENCH_hotpath.json";
  std::ofstream out(path);
  out << "{\n"
      << "  \"binned_sampling\": {\n"
      << "    \"devices_per_chip\": " << devices << ",\n"
      << "    \"chips\": " << chips << ",\n"
      << "    \"seconds_per_device\": " << t_per_device << ",\n"
      << "    \"seconds_binned\": " << t_binned << ",\n"
      << "    \"speedup\": " << sampling_speedup << ",\n"
      << "    \"counts_conserved\": " << (counts_conserved ? "true" : "false")
      << ",\n"
      << "    \"f_delta_sigmas\": " << f_delta_sigmas << ",\n"
      << "    \"pass\": " << (sampling_equivalent ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"batched_sweep\": {\n"
      << "    \"chips\": " << sweep_chips << ",\n"
      << "    \"points\": " << ts.size() << ",\n"
      << "    \"seconds_reference\": " << t_sweep_before << ",\n"
      << "    \"seconds_batched\": " << t_sweep_after << ",\n"
      << "    \"seconds_scalar_new\": " << t_sweep_scalar << ",\n"
      << "    \"speedup\": " << sweep_speedup << ",\n"
      << "    \"bitwise_identical_scalar_vs_batched\": "
      << (sweep_bitwise ? "true" : "false") << ",\n"
      << "    \"max_rel_delta_vs_reference\": " << sweep_ref_delta << ",\n"
      << "    \"pass\": " << (sweep_bitwise ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"covariance_pca\": {\n"
      << "    \"grid_side\": " << grid_side << ",\n"
      << "    \"n\": " << n << ",\n"
      << "    \"seconds_pairwise\": " << t_cov_pairwise << ",\n"
      << "    \"seconds_table\": " << t_cov_table << ",\n"
      << "    \"covariance_speedup\": " << cov_speedup << ",\n"
      << "    \"covariance_bitwise_identical\": "
      << (cov_bitwise ? "true" : "false") << ",\n"
      << "    \"seconds_eigen_full\": " << t_eigen_full << ",\n"
      << "    \"seconds_eigen_truncated\": " << t_eigen_trunc << ",\n"
      << "    \"eigen_speedup\": " << eigen_speedup << ",\n"
      << "    \"kept_components\": " << kept << ",\n"
      << "    \"max_eigenvalue_delta\": " << max_value_delta << ",\n"
      << "    \"max_residual\": " << max_residual << ",\n"
      << "    \"pass\": " << ((cov_bitwise && eigen_matches) ? "true"
                                                             : "false")
      << "\n  },\n"
      << "  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  std::printf("(wrote %s)\n", path.c_str());
  return pass ? 0 : 1;
}
