// Ablation: PCA truncation (variance_capture) vs accuracy and runtime.
//
// The paper notes "the number of principal components (usually fewer than
// hundreds) is much smaller than the number of devices" (Section V). The
// exponential correlation kernel is non-smooth at zero lag, so its spectrum
// decays slowly — but the rank-one global component plus strong local
// correlation still let aggressive truncation keep the lifetime accurate.
// This bench sweeps variance_capture and reports PC count, problem build
// time, st_MC construction time, and the lifetime shift vs the untruncated
// model.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "chip/design.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "core/analytic.hpp"
#include "core/lifetime.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"

int main() {
  using namespace obd;

  const chip::Design design = chip::make_benchmark(2);
  const auto profile = thermal::power_thermal_fixed_point(
      design, power::PowerParams{}, {.resolution = 32}, 2);
  const core::AnalyticReliabilityModel model;

  // Untruncated reference.
  core::ProblemOptions full_opts;
  full_opts.variance_capture = 1.0;
  const auto full_problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, profile.block_temps_c, 1.2,
      full_opts);
  const core::AnalyticAnalyzer full_fast(full_problem);
  const double t_full = full_fast.lifetime_at(core::kTenFaultsPerMillion);

  std::printf("PC-truncation ablation on %s (25x25 grid, %zu PCs at full "
              "rank)\n\n",
              design.name.c_str(), full_problem.canonical().pc_count());

  TextTable t({"capture", "PCs", "build [s]", "st_MC build [s]",
               "t_10ppm shift (%)"});
  for (double capture : {0.80, 0.90, 0.95, 0.99, 0.999, 1.0}) {
    core::ProblemOptions opts;
    opts.variance_capture = capture;
    Stopwatch sw;
    const auto problem = core::ReliabilityProblem::build(
        design, var::VariationBudget{}, model, profile.block_temps_c, 1.2,
        opts);
    const double build_s = sw.seconds();

    sw.reset();
    const core::StMcAnalyzer st_mc(problem, {.samples = 4000});
    const double stmc_s = sw.seconds();
    (void)st_mc;

    const core::AnalyticAnalyzer fast(problem);
    const double shift = bench::pct_error(
        fast.lifetime_at(core::kTenFaultsPerMillion), t_full);
    t.add_row({fmt(capture, 3),
               std::to_string(problem.canonical().pc_count()),
               fmt(build_s, 2), fmt(stmc_s, 2), fmt(shift, 3)});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: even 90%% capture shifts the ppm lifetime by well\n"
      "under 1%% — the failure integral is dominated by the global + local\n"
      "components the leading PCs carry.\n");
  return 0;
}
