// Full-chip Monte Carlo reference analysis.
//
// The validation baseline of Section V: per-device thickness sampling over
// sample chips, with the chip-conditional reliability evaluated exactly
// (eq. 11). For each sample chip we draw the principal components z, then
// every device's thickness lambda_{g,0} + lambda_g . z + lambda_r eps, and
// accumulate the per-block thickness population into a fine fixed-range
// histogram — a lossless-in-practice compression that lets R_c(t | x) be
// evaluated at any t without re-walking devices. The ensemble failure is
// the sample average of conditional failures. Complexity scales with the
// number of devices, which is precisely why Table III shows MC losing by
// orders of magnitude.
//
// All population-sized loops (chip sampling at construction, the F(t) /
// std-error / k-th breakdown evaluation sweeps, failure-time simulation)
// run on the shared deterministic pool (common/parallel.hpp): fixed chunk
// boundaries and ordered reduction make every result bit-identical for any
// thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/problem.hpp"
#include "stats/rng.hpp"

namespace obd::core {

struct MonteCarloOptions {
  std::size_t chip_samples = 1000;    ///< sample chips (paper: 1000)
  std::size_t thickness_bins = 512;   ///< per-block histogram resolution
  double thickness_range_sigmas = 7.0;///< histogram half-width in sigma_tot
  std::uint64_t seed = 99;
  /// Worker-thread cap for this analyzer's loops: 0 (default) uses the
  /// shared pool at its configured width (--threads / OBDREL_THREADS /
  /// hardware_concurrency), 1 forces serial inline execution, N caps the
  /// pool at N threads for this analyzer. Each chip draws from its own
  /// seed-derived stream and reductions run over fixed chunk boundaries,
  /// so results are bit-identical for every setting.
  std::size_t threads = 0;
};

class MonteCarloAnalyzer {
 public:
  /// Samples all chips up front (the expensive part; timed separately from
  /// queries by the benchmark harness).
  MonteCarloAnalyzer(const ReliabilityProblem& problem,
                     const MonteCarloOptions& options = {});

  /// Ensemble failure probability: mean over sample chips of the exact
  /// conditional chip failure 1 - R_c(t | x).
  [[nodiscard]] double failure_probability(double t) const;

  /// Standard error of failure_probability(t): sample standard deviation
  /// of the conditional failures over sqrt(chips). Lets benchmark tables
  /// report MC error bars instead of bare point estimates.
  [[nodiscard]] double failure_std_error(double t) const;

  [[nodiscard]] double reliability(double t) const {
    return 1.0 - failure_probability(t);
  }

  [[nodiscard]] double lifetime_at(double target) const;

  /// Ensemble probability that at least k breakdowns have occurred
  /// anywhere on the chip by time t: mean over sample chips of
  /// P(k, H_chip(t | x)) — the successive-breakdown extension (refs
  /// [28][30]; see core/multi_breakdown.hpp). k = 1 is
  /// failure_probability().
  [[nodiscard]] double kth_failure_probability(double t, std::size_t k) const;

  /// Lifetime at the target quantile of the k-th breakdown: the earned
  /// margin of designs that tolerate k-1 breakdowns.
  [[nodiscard]] double kth_lifetime_at(double target, std::size_t k) const;

  /// Simulates the failure time of `count` fresh sample chips (the Fig. 10
  /// "chip lifetime distribution" curve): per chip, draw all device
  /// thicknesses, then invert the conditional survivor function at an
  /// Exp(1) variate. Returned times are unsorted. The passed generator is
  /// advanced by one draw to derive the per-chip streams, so results are
  /// reproducible and independent of the thread count.
  [[nodiscard]] std::vector<double> sample_failure_times(std::size_t count,
                                                         stats::Rng& rng) const;

  [[nodiscard]] std::size_t chip_samples() const { return options_.chip_samples; }
  [[nodiscard]] const ReliabilityProblem& problem() const { return *problem_; }

  /// Fraction of drawn device thicknesses that fell outside the histogram
  /// range and were accounted at the range boundary instead of inside a
  /// bin. Construction emits an "mc.binning" diagnostic when this exceeds
  /// 1e-6 (widen thickness_range_sigmas if so).
  [[nodiscard]] double out_of_range_fraction() const {
    return out_of_range_fraction_;
  }

 private:
  /// Per-chip compressed thickness population: per block, bin counts over
  /// the common thickness axis plus explicit under/overflow counts for
  /// samples beyond the axis, evaluated at the true range boundary rather
  /// than folded into the edge bins (which would bias the edge-bin mass
  /// toward the bin center).
  struct ChipSample {
    std::vector<std::vector<std::uint32_t>> block_bins;
    std::vector<std::uint32_t> underflow;  ///< per block, x < x_lo
    std::vector<std::uint32_t> overflow;   ///< per block, x >= x_hi
  };

  [[nodiscard]] ChipSample sample_chip(stats::Rng& rng) const;

  /// Sum over blocks of A-weighted Weibull exponents for one chip:
  /// H(t) = sum_j a_j sum_bins count * exp(gamma_j b_j x_bin), with the
  /// under/overflow populations contributing at the axis boundaries.
  [[nodiscard]] double chip_exponent(const ChipSample& chip, double t) const;

  const ReliabilityProblem* problem_;  // non-owning; must outlive this
  MonteCarloOptions options_;
  double x_lo_ = 0.0;   ///< histogram lower edge [nm]
  double x_step_ = 0.0; ///< bin width [nm]
  double x_hi_ = 0.0;   ///< histogram upper edge [nm]
  double out_of_range_fraction_ = 0.0;
  std::vector<ChipSample> chips_;
};

}  // namespace obd::core
