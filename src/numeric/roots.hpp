// Scalar root finding: Brent's method plus a geometric bracket expander.
//
// The lifetime solver inverts the monotone ensemble reliability R_c(t) to
// find t_req with R_c(t_req) = R_req (the n-fault-per-million criterion of
// Section V); this is done in log-time with Brent's method.
#pragma once

#include <functional>

namespace obd::num {

/// Finds a root of f in [a, b] with f(a), f(b) of opposite sign.
/// Brent's method: bisection safety with inverse-quadratic acceleration.
/// Throws obd::Error if the bracket is invalid or convergence fails.
double brent(const std::function<double(double)>& f, double a, double b,
             double tolerance = 1e-12, int max_iterations = 200);

/// Expands [a, b] geometrically (factor `growth`) around the seed interval
/// until f changes sign, then runs brent(). `a` must be < `b`. Throws if no
/// sign change is found within `max_expansions`.
double brent_auto_bracket(const std::function<double(double)>& f, double a,
                          double b, double tolerance = 1e-12,
                          double growth = 2.0, int max_expansions = 200);

}  // namespace obd::num
