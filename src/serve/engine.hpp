// Query engine of the reliability daemon: request grammar, fingerprinting,
// and the coalescing evaluator over the durable table cache.
//
// A request is one newline-framed line of space-separated key=value
// fields:
//
//   id=<token> t=<seconds> [set.<key>=<value> ...] [deadline_ms=<ms>]
//   op=health [id=<token>]
//
// `set.<key>` overrides a whitelisted problem-shaping config key (design,
// vdd, ambient_c, ...) on top of the daemon's base config — that tuple of
// (thermal profile, process corner, config) is canonicalized into a key
// string and fingerprinted; all queries sharing a fingerprint share one
// cached evaluation context and are answered as a single batched
// table-lookup sweep.
//
// Replies are one line per request, same grammar:
//
//   id=<token> ok=1 t=<t> f=<F(t)> degraded=<0|1>
//   id=<token> error=<code> msg=<text>
//   id=<token> overloaded=1          (emitted by the server when shedding)
//
// A reply never reveals which cache tier answered it: a memory hit, a disk
// reload, and a cold compute are byte-identical by construction (the LUT
// serialization round-trips doubles exactly), which is what makes the
// crash-restart tests meaningful.
//
// Deadlines degrade instead of failing: a query whose deadline has already
// expired when its cold table build would start is answered from the
// analytic closed form (paper Section IV-C) with degraded=1 — an
// approximation delivered on time instead of an exact answer too late.
// Memory-tier hits always serve the exact table answer; they are cheaper
// than the analytic path. The `serve.deadline` fault site forces expiry
// deterministically.
#pragma once

#include <chrono>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "serve/cache.hpp"

namespace obd::serve {

/// One parsed request line.
struct Request {
  enum class Op { kQuery, kHealth };
  Op op = Op::kQuery;
  std::string id;      ///< echoed verbatim in the reply
  double t = 0.0;      ///< query time [s] (op == kQuery)
  double deadline_ms = -1.0;  ///< per-request deadline; < 0 = server default
  std::map<std::string, std::string> overrides;  ///< whitelisted set.* keys
};

/// Parses one request line. Throws Error(kInvalidInput) on malformed
/// fields, a non-positive t, or a non-whitelisted set.* key; the server
/// turns the throw into an error reply for that line only.
[[nodiscard]] Request parse_request(const std::string& line);

/// Canonical identity of everything that shapes the evaluation context:
/// the problem-shaping config keys (with request overrides applied) plus
/// the serve-table dimensions. Equal strings <=> interchangeable cached
/// tables.
[[nodiscard]] std::string problem_key(const Config& cfg);

/// Same, with the canonical mechanism rendering supplied by the caller
/// (the engine memoizes it per raw spec instead of re-parsing the
/// mechanism/redundancy grammar on every request).
[[nodiscard]] std::string problem_key(const Config& cfg,
                                      const std::string& mechanisms);

/// True when a request that waited `elapsed_ms` against `deadline_ms` must
/// degrade (deadline_ms <= 0 disables deadlines). Injectable via the
/// `serve.deadline` site, which expires any armed deadline irrespective of
/// the clock.
[[nodiscard]] bool deadline_expired(double elapsed_ms, double deadline_ms);

/// A request plus its arrival time (the deadline anchor).
struct PendingQuery {
  Request request;
  std::chrono::steady_clock::time_point arrival;
};

struct EngineOptions {
  CacheOptions cache;
  std::size_t n_gamma = 100;   ///< serve-table indices along ln(t/alpha)
  std::size_t n_b = 100;       ///< serve-table indices along b
  double deadline_ms = 0.0;    ///< default per-request deadline; 0 = off
};

struct EngineStats {
  std::uint64_t answered = 0;  ///< ok replies (exact or degraded)
  std::uint64_t degraded = 0;  ///< deadline-degraded analytic answers
  std::uint64_t errors = 0;    ///< per-request error replies
};

/// Evaluates batches of queries against the table cache. Owns the base
/// config and the cache; single-threaded (the server's event loop is the
/// only caller).
class QueryEngine {
 public:
  QueryEngine(Config base, EngineOptions options);

  /// Answers every query of `batch` (one reply line per query, aligned by
  /// index, no trailing newline). Queries are grouped by fingerprint and
  /// each group is served as one batched sweep; a per-request failure
  /// becomes that request's error reply, never an exception.
  [[nodiscard]] std::vector<std::string> evaluate(
      const std::vector<PendingQuery>& batch);

  [[nodiscard]] TableCache& cache() { return cache_; }
  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  [[nodiscard]] const EngineOptions& options() const { return options_; }

 private:
  /// Canonical mechanism rendering for `cfg`, memoized on the raw
  /// ("mechanisms", "redundancy") strings. Exact within one engine: the
  /// base config is fixed and request overrides touch whitelisted keys
  /// only, so that pair identifies the parse completely.
  [[nodiscard]] std::string canonical_mechanisms(const Config& cfg);

  Config base_;
  EngineOptions options_;
  TableCache cache_;
  EngineStats stats_;
  std::map<std::pair<std::string, std::string>, std::string> mech_memo_;
};

}  // namespace obd::serve
