// Voltage guard-band exploration: the paper's motivating use case.
//
// "Since oxide reliability is one of the key factors that sets constraints
// on the operating supply voltage ... any pessimism in oxide reliability
// analysis limits the maximum operating voltage and thus the maximum
// achievable chip-performance" (Section I).
//
// This example sweeps Vdd and finds, for each analysis method, the maximum
// supply that still meets a 10-year / 10-per-million lifetime target. The
// statistical method recovers supply headroom (performance) that the
// guard-band analysis leaves on the table.
#include <cstdio>

#include "chip/design.hpp"
#include "core/analytic.hpp"
#include "core/guardband.hpp"
#include "core/lifetime.hpp"
#include "numeric/roots.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"

namespace {

using namespace obd;

constexpr double kYear = 365.25 * 24 * 3600;
constexpr double kTargetLifetime = 10.0 * kYear;
constexpr double kTargetFailure = core::kTenFaultsPerMillion;

// Lifetime at the target quantile for a given Vdd. Power (and hence the
// thermal profile) also shifts with Vdd — the sweep re-runs the whole
// pipeline, which is what a real sign-off flow does.
double lifetime_for_vdd(const chip::Design& design,
                        const core::DeviceReliabilityModel& model,
                        double vdd, bool statistical) {
  power::PowerParams pp;
  pp.vdd = vdd;
  const auto profile =
      thermal::power_thermal_fixed_point(design, pp, {.resolution = 32}, 2);
  core::ProblemOptions opts;
  opts.grid_cells_per_side = 15;  // moderate grid: this sweep rebuilds PCA
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, profile.block_temps_c, vdd,
      opts);
  if (statistical)
    return core::AnalyticAnalyzer(problem).lifetime_at(kTargetFailure);
  return core::GuardBandAnalyzer(problem).lifetime_at(kTargetFailure);
}

double max_vdd(const chip::Design& design,
               const core::DeviceReliabilityModel& model, bool statistical) {
  // lifetime(vdd) is monotone decreasing; find the crossing with the
  // target.
  return num::brent_auto_bracket(
      [&](double vdd) {
        return lifetime_for_vdd(design, model, vdd, statistical) -
               kTargetLifetime;
      },
      1.05, 1.35, 1e-4);
}

}  // namespace

int main() {
  const chip::Design design = chip::make_benchmark(3);  // C3, 0.1M devices
  const core::AnalyticReliabilityModel model;

  std::printf("Design %s: lifetime target %.0f years at %g failures/chip\n\n",
              design.name.c_str(), kTargetLifetime / kYear, kTargetFailure);

  std::printf("%-6s %20s %20s\n", "Vdd", "st_fast life [y]",
              "guard-band life [y]");
  for (double vdd = 1.10; vdd <= 1.351; vdd += 0.05) {
    const double t_stat = lifetime_for_vdd(design, model, vdd, true);
    const double t_guard = lifetime_for_vdd(design, model, vdd, false);
    std::printf("%-6.2f %20.2f %20.2f\n", vdd, t_stat / kYear,
                t_guard / kYear);
  }

  const double v_stat = max_vdd(design, model, true);
  const double v_guard = max_vdd(design, model, false);
  std::printf("\nMax Vdd meeting the target:\n");
  std::printf("  statistical analysis : %.3f V\n", v_stat);
  std::printf("  guard-band analysis  : %.3f V\n", v_guard);
  std::printf("  recovered headroom   : %.0f mV\n",
              1000.0 * (v_stat - v_guard));
  return 0;
}
