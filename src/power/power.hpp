// Architectural power estimation (Wattch-like substrate).
//
// The paper obtains per-functional-block power with Wattch [35] and feeds it
// to HotSpot for the temperature profile. We reproduce the same pipeline
// with an activity/capacitance power model: dynamic power per block is
// activity * C_eff(kind) * area * Vdd^2 * f, plus a temperature-dependent
// leakage term, optionally iterated to a fixed point with the thermal
// solver.
#pragma once

#include <vector>

#include "chip/design.hpp"

namespace obd::power {

/// Electrical operating point and leakage model parameters.
struct PowerParams {
  double vdd = 1.2;            ///< supply voltage [V] (Table II nominal)
  double frequency = 2.0e9;    ///< clock frequency [Hz]
  /// Leakage power density at 25 C [W/mm^2].
  double leakage_density_25c = 0.02;
  /// Exponential leakage temperature coefficient [1/K]:
  /// P_leak(T) = P_leak(25C) * exp(coeff * (T - 25)).
  double leakage_temp_coeff = 0.012;
};

/// Effective switched capacitance density for a unit kind [F/mm^2].
/// Calibrated so an EV6-class die at 1.2 V / 2 GHz dissipates ~60-80 W with
/// the integer execution cluster as the dominant hot spot (Fig. 1a).
double capacitance_density(chip::UnitKind kind);

/// Per-block power assignment [W], aligned with Design::blocks.
struct PowerMap {
  std::vector<double> block_watts;

  [[nodiscard]] double total() const;
};

/// Computes per-block power. If `block_temps_c` is non-empty it must have
/// one entry per block and is used for the leakage term; otherwise leakage
/// is evaluated at 25 C.
PowerMap estimate_power(const chip::Design& design, const PowerParams& params,
                        const std::vector<double>& block_temps_c = {});

}  // namespace obd::power
