#include "core/importance.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/closed_form.hpp"
#include "numeric/roots.hpp"
#include "stats/rng.hpp"

namespace obd::core {
namespace {

// Conditional chip failure for a concrete principal-component vector.
double conditional_failure(const ReliabilityProblem& problem, double t,
                           const la::Vector& z) {
  double exponent = 0.0;
  for (const auto& b : problem.blocks()) {
    exponent += b.area * g_closed_form(t, b.alpha, b.b, b.blod.u_value(z),
                                       b.blod.v_value(z));
  }
  return -std::expm1(-exponent);
}

// Failure-gradient tilt direction: thinner oxide in proportion to each
// block's log-domain failure weight. Computed at the nominal chip.
la::Vector tilt_direction(const ReliabilityProblem& problem, double t) {
  const auto& blocks = problem.blocks();
  // Log-scale block weights ln(A_j g_j) to dodge underflow at deep tails.
  std::vector<double> logw(blocks.size());
  double logw_max = -1e300;
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    const auto& b = blocks[j];
    const double gamma = std::log(t / b.alpha);
    logw[j] = std::log(b.area) + gamma * b.b * b.blod.u_nominal() +
              0.5 * gamma * gamma * b.b * b.b * b.blod.v_mean();
    logw_max = std::max(logw_max, logw[j]);
  }
  const std::size_t pc = blocks.front().blod.u_sensitivities().size();
  la::Vector d(pc, 0.0);
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    const double w = std::exp(logw[j] - logw_max);
    const auto& sens = blocks[j].blod.u_sensitivities();
    // Negative: failure grows as u shrinks (gamma < 0 in the life range).
    for (std::size_t k = 0; k < pc; ++k) d[k] -= w * sens[k];
  }
  const double norm = la::norm(d);
  require(norm > 0.0, "importance_failure: degenerate tilt direction");
  for (auto& x : d) x /= norm;
  return d;
}

}  // namespace

ImportanceEstimate importance_failure(const ReliabilityProblem& problem,
                                      double t,
                                      const ImportanceOptions& options) {
  require(t > 0.0, "importance_failure: t must be positive");
  require(options.samples >= 100, "importance_failure: need >= 100 samples");
  require(options.tilt_scale >= 0.0,
          "importance_failure: tilt scale must be non-negative");

  const la::Vector d = tilt_direction(problem, t);
  const std::size_t pc = d.size();

  // Optimal tilt steepness: s = d ln F / d(d.z) at the nominal chip,
  // the failure-weighted sum of gamma_j b_j (u_sens_j . d). Both gamma_j
  // and (u_sens_j . d) are negative in the life range, so s > 0.
  const auto& blocks = problem.blocks();
  std::vector<double> logw(blocks.size());
  double logw_max = -1e300;
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    const auto& b = blocks[j];
    const double gamma = std::log(t / b.alpha);
    logw[j] = std::log(b.area) + gamma * b.b * b.blod.u_nominal() +
              0.5 * gamma * gamma * b.b * b.b * b.blod.v_mean();
    logw_max = std::max(logw_max, logw[j]);
  }
  double s = 0.0;
  double wsum = 0.0;
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    const auto& b = blocks[j];
    const double w = std::exp(logw[j] - logw_max);
    const double gamma = std::log(t / b.alpha);
    s += w * gamma * b.b * la::dot(b.blod.u_sensitivities(), d);
    wsum += w;
  }
  s = std::max(0.0, s / wsum);
  const double mu = options.tilt_scale * s;

  stats::Rng rng(options.seed);
  la::Vector z(pc);
  double sum = 0.0;
  double sum_sq = 0.0;
  double sum_w = 0.0;
  double sum_w2 = 0.0;
  for (std::size_t s = 0; s < options.samples; ++s) {
    double dz = 0.0;
    for (std::size_t k = 0; k < pc; ++k) {
      z[k] = rng.normal();
      dz += d[k] * z[k];
    }
    // z ~ N(mu d, I): add the shift; likelihood ratio in terms of the
    // *shifted* point is exp(-mu d.z_shifted + mu^2/2).
    for (std::size_t k = 0; k < pc; ++k) z[k] += mu * d[k];
    dz += mu;
    const double w = std::exp(-mu * dz + 0.5 * mu * mu);
    const double f = conditional_failure(problem, t, z);
    const double wf = w * f;
    sum += wf;
    sum_sq += wf * wf;
    sum_w += w;
    sum_w2 += w * w;
  }
  const double n = static_cast<double>(options.samples);

  ImportanceEstimate out;
  out.tilt = mu;
  out.failure = sum / n;
  const double var = std::max(0.0, (sum_sq - sum * sum / n) / (n - 1.0));
  out.std_error = std::sqrt(var / n);
  out.effective_samples = (sum_w2 > 0.0) ? sum_w * sum_w / sum_w2 : 0.0;
  return out;
}

}  // namespace obd::core
