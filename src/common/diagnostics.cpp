#include "common/diagnostics.hpp"

#include <atomic>
#include <sstream>

#include "common/error.hpp"

namespace obd {
namespace {

std::atomic<bool> g_strict{false};

}  // namespace

void Diagnostics::warn(const std::string& site, const std::string& message) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back({site, message});
  }
  if (g_strict.load(std::memory_order_relaxed))
    throw Error(site + ": " + message + " (strict mode)",
                ErrorCode::kDegraded);
}

void Diagnostics::stat(const std::string& site, const std::string& message) {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_.push_back({site, message});
}

std::vector<Diagnostic> Diagnostics::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

std::vector<Diagnostic> Diagnostics::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool Diagnostics::degraded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return !entries_.empty();
}

std::size_t Diagnostics::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t Diagnostics::count(const std::string& site) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& e : entries_)
    if (e.site == site) ++n;
  return n;
}

void Diagnostics::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  stats_.clear();
}

std::string Diagnostics::render() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& e : entries_)
    out << "warning [" << e.site << "]: " << e.message << '\n';
  return out.str();
}

std::string Diagnostics::render_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& e : stats_)
    out << "stat [" << e.site << "]: " << e.message << '\n';
  return out.str();
}

Diagnostics& diagnostics() {
  static Diagnostics instance;
  return instance;
}

void set_strict_mode(bool strict) {
  g_strict.store(strict, std::memory_order_relaxed);
}

bool strict_mode() { return g_strict.load(std::memory_order_relaxed); }

}  // namespace obd
