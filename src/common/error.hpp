// Error handling primitives shared by all obdrel modules.
//
// The library reports contract violations and unrecoverable numerical
// conditions by throwing obd::Error (derived from std::runtime_error), so
// callers can distinguish library failures from standard-library ones.
#pragma once

#include <stdexcept>
#include <string>

namespace obd {

/// Exception type thrown by all obdrel components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws obd::Error with `message` when `condition` is false.
///
/// Used to validate public-API preconditions (sizes, ranges, positivity).
/// Unlike assert(), this is active in all build types: reliability analyses
/// run long, and silently corrupt inputs are far costlier than the check.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

}  // namespace obd
