#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"
#include "stats/quadform.hpp"

namespace obd::stats {
namespace {

la::Matrix diag(std::initializer_list<double> values) {
  la::Matrix m(values.size(), values.size(), 0.0);
  std::size_t i = 0;
  for (double v : values) {
    m(i, i) = v;
    ++i;
  }
  return m;
}

TEST(ShiftedChiSquare, MomentsAndQuantiles) {
  const ShiftedChiSquare s(1.5, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1.5 + 2.0 * 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0 * 6.0);
  for (double p : {0.05, 0.5, 0.95})
    EXPECT_NEAR(s.cdf(s.quantile(p)), p, 1e-9);
  EXPECT_DOUBLE_EQ(s.cdf(1.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf(0.0), 0.0);
}

TEST(QuadraticForm, ValueAndMoments) {
  QuadraticForm f;
  f.constant = 1.0;
  f.linear = {1.0, -2.0};
  f.quad = diag({2.0, 3.0});
  EXPECT_DOUBLE_EQ(f.value({1.0, 1.0}), 1.0 + (1.0 - 2.0) + (2.0 + 3.0));
  EXPECT_DOUBLE_EQ(f.mean(), 1.0 + 5.0);
  // Var = 2 (4 + 9) + (1 + 4) = 31.
  EXPECT_DOUBLE_EQ(f.variance(), 31.0);
  EXPECT_EQ(f.dimension(), 2u);
}

TEST(QuadraticForm, SampleMomentsMatchAnalytic) {
  QuadraticForm f;
  f.constant = 0.5;
  f.linear = {0.3, 0.0, -0.7};
  f.quad = la::Matrix(3, 3, 0.0);
  f.quad(0, 0) = 1.0;
  f.quad(1, 1) = 0.5;
  f.quad(2, 2) = 2.0;
  f.quad(0, 1) = f.quad(1, 0) = 0.25;
  Rng rng(20);
  RunningStats s;
  for (int i = 0; i < 300000; ++i) s.add(f.sample(rng));
  EXPECT_NEAR(s.mean(), f.mean(), 0.02);
  EXPECT_NEAR(s.variance(), f.variance(), 0.25);
}

TEST(ChiSquareMatch, ExactForScaledChiSquare) {
  // If Q = c * I_n, the form is exactly c * chi2_n: the match must recover
  // scale c and dof n.
  QuadraticForm f;
  f.constant = 0.1;
  f.quad = diag({0.5, 0.5, 0.5, 0.5});
  const ShiftedChiSquare m = chi_square_match(f);
  EXPECT_NEAR(m.scale(), 0.5, 1e-12);
  EXPECT_NEAR(m.dof(), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.shift(), 0.1);
}

TEST(ChiSquareMatch, PreservesMeanAndVariance) {
  QuadraticForm f;
  f.quad = diag({1.0, 0.2, 0.05});
  f.linear = {0.1, 0.1, 0.1};
  const ShiftedChiSquare m = chi_square_match(f);
  EXPECT_NEAR(m.mean(), f.mean(), 1e-12);
  EXPECT_NEAR(m.variance(), f.variance(), 1e-12);
}

TEST(ChiSquareMatch, PaperFormulaEquivalenceWithoutLinearTerm) {
  // eq. (30): a_hat = tr(Q^2)/tr(Q), b_hat = tr(Q)^2/tr(Q^2).
  QuadraticForm f;
  f.quad = diag({2.0, 1.0, 0.5});
  const double tr = 3.5;
  const double tr2 = 4.0 + 1.0 + 0.25;
  const ShiftedChiSquare m = chi_square_match(f);
  EXPECT_NEAR(m.scale(), tr2 / tr, 1e-12);
  EXPECT_NEAR(m.dof(), tr * tr / tr2, 1e-12);
}

TEST(ChiSquareMatch, RejectsDegenerate) {
  QuadraticForm f;
  f.quad = diag({0.0, 0.0});
  EXPECT_THROW(chi_square_match(f), obd::Error);
  QuadraticForm empty;
  EXPECT_THROW(chi_square_match(empty), obd::Error);
}

TEST(ImhofCdf, ExactForSingleChiSquare) {
  // Q = I_1: the form is chi2_1; Imhof must match the exact CDF.
  QuadraticForm f;
  f.quad = diag({1.0});
  const ChiSquare chi(1.0);
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0})
    EXPECT_NEAR(imhof_cdf(f, x), chi.cdf(x), 1e-6) << "x=" << x;
}

TEST(ImhofCdf, ExactForEqualWeights) {
  // Q = 0.5 * I_4: form = 0.5 chi2_4.
  QuadraticForm f;
  f.quad = diag({0.5, 0.5, 0.5, 0.5});
  const ChiSquare chi(4.0);
  for (double x : {0.5, 1.0, 2.0, 4.0, 8.0})
    EXPECT_NEAR(imhof_cdf(f, x), chi.cdf(2.0 * x), 1e-6) << "x=" << x;
}

TEST(ImhofCdf, MatchesMonteCarloForMixedWeights) {
  QuadraticForm f;
  f.constant = 0.2;
  f.quad = diag({1.5, 0.7, 0.3, 0.1});
  Rng rng(30);
  std::vector<double> samples;
  samples.reserve(200000);
  for (int i = 0; i < 200000; ++i) samples.push_back(f.sample(rng));
  std::sort(samples.begin(), samples.end());
  for (double x : {1.0, 2.0, 3.5, 6.0}) {
    EXPECT_NEAR(imhof_cdf(f, x), empirical_cdf(samples, x), 0.005)
        << "x=" << x;
  }
}

TEST(ImhofCdf, HandlesLinearTermViaNoncentrality) {
  // v = z^2 + z = (z + 0.5)^2 - 0.25: noncentral chi-square.
  QuadraticForm f;
  f.quad = diag({1.0});
  f.linear = {1.0};
  Rng rng(31);
  std::vector<double> samples;
  for (int i = 0; i < 200000; ++i) samples.push_back(f.sample(rng));
  std::sort(samples.begin(), samples.end());
  for (double x : {0.0, 0.5, 1.0, 3.0})
    EXPECT_NEAR(imhof_cdf(f, x), empirical_cdf(samples, x), 0.005);
}

TEST(ImhofCdf, MonotoneAndBounded) {
  QuadraticForm f;
  f.quad = diag({1.0, 0.25});
  double prev = 0.0;
  for (double x = 0.05; x < 12.0; x += 0.5) {
    const double c = imhof_cdf(f, x);
    EXPECT_GE(c, prev - 1e-9);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST(ImhofCdf, ChiSquareApproxCloseToImhof) {
  // The paper's Fig. 8 claim: the chi-square approximation tracks the exact
  // quadratic-form CDF closely for BLOD-like spectra (many comparable
  // eigenvalues).
  QuadraticForm f;
  f.quad = diag({1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3});
  const ShiftedChiSquare approx = chi_square_match(f);
  for (double x : {2.0, 4.0, 5.2, 7.0, 10.0}) {
    EXPECT_NEAR(approx.cdf(x), imhof_cdf(f, x), 0.02) << "x=" << x;
  }
}

}  // namespace
}  // namespace obd::stats
