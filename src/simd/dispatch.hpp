// Runtime ISA dispatch for the SIMD kernel layer.
//
// The dispatch level is a single process-wide decision, resolved in
// priority order from: configure() (the `simd` config key), the
// OBDREL_SIMD environment variable, and CPU auto-detection. "auto" picks
// the widest tier that is both compiled in and reported by the CPU:
// AVX-512F/DQ first (OBDREL_ENABLE_AVX512, default on), then AVX2+FMA
// (OBDREL_ENABLE_AVX2, default on); anything else falls back to the
// scalar reference kernels, which are bit-identical to the loops they
// replaced.
//
// Under "auto" the *table* composition is per kernel, not per level: a
// kernel whose widest variant measures slower than a narrower one (see
// kAutoCap in dispatch.cpp — today dot_counts, whose AVX-512 fold is
// load-bound and loses to AVX2) is capped at the faster tier, while every
// other kernel still gets the widest variant. active_level() continues to
// report the widest resolved tier (that is what "auto" selected);
// kernel_level() reports the tier actually serving one kernel. An
// explicit level — configure("avx512"), OBDREL_SIMD=<level>, or
// set_level() — is forced: the whole uncomposed table of that level is
// used, caps ignored, so forced runs exercise exactly one tier.
//
// Requesting "avx512" or "avx2" explicitly on a host (or build) that
// cannot run it is a configuration error (ErrorCode::kConfig), mirroring
// how the CLI rejects bad `device_sampling` values; "scalar" always
// works.
#pragma once

#include <string>

namespace obd::simd {

enum class Level {
  kScalar,  ///< portable reference kernels, baseline ISA
  kAvx2,    ///< AVX2 + FMA kernels (per-file -mavx2 -mfma)
  kAvx512,  ///< AVX-512F/DQ kernels (per-file -mavx512f -mavx512dq)
};

/// Kernel identities, in KernelTable member order. Used by kernel_level()
/// and the bench gates that pin the per-kernel auto selection.
enum class KernelId {
  kFillBinFactors,
  kDotCounts,
  kNormalCdfBatch,
  kMatmul,
  kMatvec,
  kGramAat,
  kClenshawBatch,
};

/// "scalar", "avx2" or "avx512".
const char* to_string(Level level);

/// True when the AVX2 kernels are compiled in AND the CPU supports
/// AVX2 + FMA. False on non-x86 builds or with OBDREL_ENABLE_AVX2=OFF.
bool can_use_avx2();

/// True when the AVX-512 kernels are compiled in AND the CPU supports
/// AVX-512F + AVX-512DQ. False on non-x86 builds or with
/// OBDREL_ENABLE_AVX512=OFF.
bool can_use_avx512();

/// The active dispatch level. Lazily initialized from OBDREL_SIMD
/// ("auto" when unset) on first use; a bad OBDREL_SIMD value throws
/// Error(kConfig) from whichever call initializes first — call
/// init_from_env() early to surface that at startup.
Level active_level();

/// Parses and applies a level spec: "auto" | "avx512" | "avx2" |
/// "scalar". Throws Error(kConfig) for unknown specs and for explicit
/// vector levels the host/build cannot run.
void configure(const std::string& spec);

/// Applies $OBDREL_SIMD (no-op when unset/empty). Same validation as
/// configure(). The CLI calls this before dispatching any command so a
/// bad value fails with the config exit code everywhere.
void init_from_env();

/// Forces a level directly (tests). Throws Error(kConfig) for vector
/// levels the host/build cannot run.
void set_level(Level level);

/// The tier whose implementation kernels() currently returns for `id`:
/// the forced level when one is in effect, otherwise
/// min(active_level(), per-kernel auto cap).
[[nodiscard]] Level kernel_level(KernelId id);

/// Records the active level as a non-degrading "simd.level" stat in
/// obd::diagnostics(), next to the parallel.pool entry.
void publish_level();

}  // namespace obd::simd
