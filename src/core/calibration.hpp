// Device-model calibration: fitting the closed-form alpha(T)/b(T) model to
// characterization data.
//
// In the paper's flow, "such a model can also be characterized from real
// OBD distributions measured from test capacitors or discrete devices"
// (Section V). This module closes that loop: given per-temperature
// (alpha, b) rows — as produced by stress-test extraction or a
// TabulatedReliabilityModel — it least-squares fits the non-Arrhenius
// closed form of AnalyticReliabilityModel:
//
//   ln alpha(T) = ln alpha_ref + c1 (1/T - 1/Tref) + c2 (1/T^2 - 1/Tref^2)
//   b(T)        = b_ref - b_temp_slope (T - Tref)
#pragma once

#include <vector>

#include "core/device_model.hpp"

namespace obd::core {

/// Fit result: the calibrated parameters plus residual diagnostics.
struct CalibrationResult {
  AnalyticModelParams params;
  /// RMS residual of ln(alpha) across the rows [nats].
  double log_alpha_rmse = 0.0;
  /// RMS residual of b across the rows [1/nm].
  double b_rmse = 0.0;
};

/// Fits the closed-form model to `rows` (>= 3 rows at distinct
/// temperatures required). `temp_ref_c` anchors the reference point;
/// voltage-related parameters are copied from `base` (the fit is
/// temperature-only, as in the paper's refs [7]-[9]).
CalibrationResult fit_analytic_model(
    const std::vector<ReliabilityTableRow>& rows, double temp_ref_c = 100.0,
    const AnalyticModelParams& base = {});

}  // namespace obd::core
