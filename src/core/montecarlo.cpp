#include "core/montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/error.hpp"
#include "core/lifetime.hpp"
#include "numeric/roots.hpp"
#include "stats/special.hpp"

namespace obd::core {

MonteCarloAnalyzer::MonteCarloAnalyzer(const ReliabilityProblem& problem,
                                       const MonteCarloOptions& options)
    : problem_(&problem), options_(options) {
  require(options.chip_samples >= 10,
          "MonteCarloAnalyzer: need at least 10 sample chips");
  require(options.thickness_bins >= 16,
          "MonteCarloAnalyzer: need at least 16 thickness bins");

  // Common thickness axis covering nominal spread plus range_sigmas of
  // total variation (wafer patterns can shift the per-grid nominal).
  const var::CanonicalForm& canonical = problem.canonical();
  double nom_lo = canonical.nominal(0);
  double nom_hi = canonical.nominal(0);
  for (std::size_t g = 1; g < canonical.grid_count(); ++g) {
    nom_lo = std::min(nom_lo, canonical.nominal(g));
    nom_hi = std::max(nom_hi, canonical.nominal(g));
  }
  const double half =
      options.thickness_range_sigmas * problem.budget().sigma_total();
  x_lo_ = nom_lo - half;
  x_step_ = (nom_hi + half - x_lo_) / static_cast<double>(options.thickness_bins);

  // One independent stream per chip (seed xor chip index through the
  // splitmix-based Rng constructor): results are reproducible and
  // independent of the thread count.
  chips_.resize(options.chip_samples);
  auto sample_range = [this](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      stats::Rng rng(options_.seed + 0x9E3779B97F4A7C15ull * (s + 1));
      chips_[s] = sample_chip(rng);
    }
  };
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(options.threads, options.chip_samples));
  if (workers == 1) {
    sample_range(0, options.chip_samples);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    const std::size_t stride =
        (options.chip_samples + workers - 1) / workers;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t begin = w * stride;
      const std::size_t end =
          std::min(options.chip_samples, begin + stride);
      if (begin >= end) break;
      pool.emplace_back(sample_range, begin, end);
    }
    for (auto& t : pool) t.join();
  }
}

MonteCarloAnalyzer::ChipSample MonteCarloAnalyzer::sample_chip(
    stats::Rng& rng) const {
  const var::CanonicalForm& canonical = problem_->canonical();
  const auto& blocks = problem_->blocks();
  const auto& layout = problem_->layout();

  const la::Vector z = canonical.sample_z(rng);
  la::Vector t_grid = canonical.sensitivities().multiply(z);
  for (std::size_t g = 0; g < t_grid.size(); ++g)
    t_grid[g] += canonical.nominal(g);

  const double sr = canonical.residual_sigma();
  const std::size_t bins = options_.thickness_bins;
  const double inv_step = 1.0 / x_step_;

  ChipSample chip;
  chip.block_bins.resize(blocks.size());
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    auto& counts = chip.block_bins[j];
    counts.assign(bins, 0);
    const std::size_t m = problem_->design().blocks[j].device_count;
    const auto& weights = layout.weights[j];

    // Apportion the block's devices to its grid cells; the rounding
    // remainder lands on the final cell so totals are exact.
    std::size_t placed = 0;
    for (std::size_t e = 0; e < weights.size(); ++e) {
      const auto& [g, w] = weights[e];
      std::size_t count;
      if (e + 1 == weights.size()) {
        count = m - placed;
      } else {
        count = static_cast<std::size_t>(
            std::llround(w * static_cast<double>(m)));
        count = std::min(count, m - placed);
      }
      placed += count;
      const double mu = t_grid[g];
      for (std::size_t i = 0; i < count; ++i) {
        const double x = mu + sr * rng.normal();
        double f = (x - x_lo_) * inv_step;
        f = std::clamp(f, 0.0, static_cast<double>(bins) - 1.0);
        ++counts[static_cast<std::size_t>(f)];
      }
    }
  }
  return chip;
}

double MonteCarloAnalyzer::chip_exponent(const ChipSample& chip,
                                         double t) const {
  const auto& blocks = problem_->blocks();
  double h = 0.0;
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    const double gamma = std::log(t / blocks[j].alpha);
    // sum_bins count * exp(gamma b x_bin) evaluated incrementally:
    // p_{k+1} = p_k * exp(gamma b dx) — one exp per block, not per bin.
    const double base =
        std::exp(gamma * blocks[j].b * (x_lo_ + 0.5 * x_step_));
    const double ratio = std::exp(gamma * blocks[j].b * x_step_);
    double p = base;
    double s = 0.0;
    for (const std::uint32_t c : chip.block_bins[j]) {
      if (c != 0) s += static_cast<double>(c) * p;
      p *= ratio;
    }
    const double per_device_area =
        blocks[j].area /
        static_cast<double>(problem_->design().blocks[j].device_count);
    h += per_device_area * s;
  }
  return h;
}

double MonteCarloAnalyzer::failure_probability(double t) const {
  require(t > 0.0, "MonteCarloAnalyzer: t must be positive");
  double sum = 0.0;
  for (const auto& chip : chips_) sum += -std::expm1(-chip_exponent(chip, t));
  return sum / static_cast<double>(chips_.size());
}

double MonteCarloAnalyzer::failure_std_error(double t) const {
  require(t > 0.0, "MonteCarloAnalyzer: t must be positive");
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const auto& chip : chips_) {
    const double f = -std::expm1(-chip_exponent(chip, t));
    sum += f;
    sum_sq += f * f;
  }
  const double n = static_cast<double>(chips_.size());
  const double var = std::max(0.0, (sum_sq - sum * sum / n) / (n - 1.0));
  return std::sqrt(var / n);
}

double MonteCarloAnalyzer::lifetime_at(double target) const {
  return lifetime_at_failure(
      [this](double t) { return failure_probability(t); }, target);
}

double MonteCarloAnalyzer::kth_failure_probability(double t,
                                                   std::size_t k) const {
  require(t > 0.0, "MonteCarloAnalyzer: t must be positive");
  require(k >= 1, "MonteCarloAnalyzer: k must be >= 1");
  if (k == 1) return failure_probability(t);
  double sum = 0.0;
  for (const auto& chip : chips_) {
    const double h = chip_exponent(chip, t);
    // Conditional on the thicknesses, breakdowns are a Poisson process
    // with mean h; P(N >= k) = P(k, h).
    sum += (h > 0.0) ? stats::gamma_p(static_cast<double>(k), h) : 0.0;
  }
  return sum / static_cast<double>(chips_.size());
}

double MonteCarloAnalyzer::kth_lifetime_at(double target,
                                           std::size_t k) const {
  return lifetime_at_failure(
      [this, k](double t) { return kth_failure_probability(t, k); }, target);
}

std::vector<double> MonteCarloAnalyzer::sample_failure_times(
    std::size_t count, stats::Rng& rng) const {
  std::vector<double> times;
  times.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const ChipSample chip = sample_chip(rng);
    const double e = rng.exponential();
    // Failure time: H(t) = e, inverted in log-time. H is monotone
    // increasing in t, spanning many decades — Brent with automatic
    // bracket expansion from a broad seed interval.
    const double s = num::brent_auto_bracket(
        [&](double log_t) { return chip_exponent(chip, std::exp(log_t)) - e; },
        std::log(1e6), std::log(1e12), 1e-9);
    times.push_back(std::exp(s));
  }
  return times;
}

}  // namespace obd::core
