// Gaussianity checks for empirical distributions.
//
// The paper validates the BLOD property ("the block-level thickness
// histogram follows a Gaussian curve") by fitting a normal PDF to the
// histogram and reporting the R-square goodness of fit (Fig. 4: 99.8% for a
// 5K-device block, 99.5% for 20K devices). This header provides that fit.
#pragma once

#include "stats/histogram.hpp"

namespace obd::stats {

/// Result of fitting a normal density to a histogram.
struct GaussianFit {
  double mean = 0.0;
  double stddev = 0.0;
  /// Coefficient of determination between the histogram's bin densities and
  /// the fitted normal density evaluated at the bin centers. 1 = perfect.
  double r_square = 0.0;
};

/// Moment-fits a Gaussian to the histogram contents and scores it with
/// R-square. Throws obd::Error for an empty or degenerate histogram.
GaussianFit fit_gaussian(const Histogram1D& h);

/// Result of a two-parameter Weibull maximum-likelihood fit.
struct WeibullFit {
  double alpha = 0.0;  ///< characteristic life
  double beta = 0.0;   ///< shape
  double log_likelihood = 0.0;
};

/// Maximum-likelihood Weibull fit to (complete) failure-time samples: the
/// shape solves sum(t^b ln t)/sum(t^b) - 1/b = mean(ln t), the scale
/// follows in closed form. Used to characterize sampled chip-lifetime
/// distributions (the Fig. 10 curve) and stress-test data. Requires at
/// least 3 positive samples with spread.
WeibullFit fit_weibull(const std::vector<double>& failure_times);

}  // namespace obd::stats
