// Tests for the multi-mechanism competing-risks framework: spec parsing,
// the lognormal aging mechanisms, the oxide adapter, stack composition,
// unit-level redundancy, and the evaluator/DRM wiring. The key invariants:
//
//   1. The default spec (oxide only, no redundancy) is bit-identical to
//      the seed composition on every evaluator path.
//   2. An N-mechanism result equals the hand-computed survival product.
//   3. Adding mechanisms strictly shortens lifetime; adding spares
//      monotonically extends it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "chip/design.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "core/analytic.hpp"
#include "core/hybrid.hpp"
#include "core/lifetime.hpp"
#include "core/montecarlo.hpp"
#include "core/oxide_mechanism.hpp"
#include "core/report.hpp"
#include "drm/manager.hpp"
#include "mech/mechanism.hpp"
#include "mech/spec.hpp"
#include "mech/stack.hpp"
#include "stats/rng.hpp"
#include "stats/special.hpp"

namespace obd {
namespace {

using core::AnalyticAnalyzer;
using core::ReliabilityProblem;

constexpr double kYear = 365.25 * 24.0 * 3600.0;

mech::MechanismSpec all_mechanisms_spec() {
  mech::MechanismSpec spec;
  spec.nbti = true;
  spec.em = true;
  spec.hci = true;
  return spec;
}

/// Shared fixture: one synthetic design with an EV6-like temperature
/// spread, built twice — once with the seed default spec and once with
/// all four mechanisms enabled.
class MechFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_synthetic_design(
        "M1", {.devices = 30000, .block_count = 6, .die_width = 6.0,
               .die_height = 6.0, .seed = 77}));
    model_ = new core::AnalyticReliabilityModel();
    temps_ = new std::vector<double>{95.0, 70.0, 58.0, 82.0, 64.0, 75.0};
    core::ProblemOptions oxide_opts;
    oxide_opts.grid_cells_per_side = 10;
    oxide_ = new ReliabilityProblem(ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_, *temps_, 1.2, oxide_opts));
    core::ProblemOptions all_opts = oxide_opts;
    all_opts.mechanisms = all_mechanisms_spec();
    all_ = new ReliabilityProblem(ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_, *temps_, 1.2, all_opts));
  }
  static void TearDownTestSuite() {
    delete all_;
    delete oxide_;
    delete temps_;
    delete model_;
    delete design_;
    all_ = nullptr;
    oxide_ = nullptr;
    temps_ = nullptr;
    model_ = nullptr;
    design_ = nullptr;
  }

  static chip::Design* design_;
  static core::AnalyticReliabilityModel* model_;
  static std::vector<double>* temps_;
  static ReliabilityProblem* oxide_;  ///< seed default spec
  static ReliabilityProblem* all_;    ///< oxide + nbti + em + hci
};

chip::Design* MechFixture::design_ = nullptr;
core::AnalyticReliabilityModel* MechFixture::model_ = nullptr;
std::vector<double>* MechFixture::temps_ = nullptr;
ReliabilityProblem* MechFixture::oxide_ = nullptr;
ReliabilityProblem* MechFixture::all_ = nullptr;

// ---------------------------------------------------------------------------
// Spec parsing and canonical rendering.

TEST(MechSpec, DefaultIsSeedEquivalent) {
  const mech::MechanismSpec spec;
  EXPECT_TRUE(spec.seed_equivalent());
  EXPECT_EQ(spec.extra_count(), 0u);
  EXPECT_EQ(spec.canonical(), "oxide");
  // An empty config parses to the seed spec.
  Config cfg;
  EXPECT_TRUE(mech::parse_spec(cfg).seed_equivalent());
}

TEST(MechSpec, ParsesMechanismListAndParams) {
  Config cfg;
  cfg.set("mechanisms", "oxide,nbti,em");
  cfg.set("nbti_t50_years", "20");
  cfg.set("nbti_sigma", "0.3");
  cfg.set("mech_tref_c", "85");
  const mech::MechanismSpec spec = mech::parse_spec(cfg);
  EXPECT_TRUE(spec.oxide);
  EXPECT_TRUE(spec.nbti);
  EXPECT_TRUE(spec.em);
  EXPECT_FALSE(spec.hci);
  EXPECT_FALSE(spec.seed_equivalent());
  EXPECT_EQ(spec.extra_count(), 2u);
  EXPECT_DOUBLE_EQ(spec.nbti_params.t50_years, 20.0);
  EXPECT_DOUBLE_EQ(spec.nbti_params.sigma, 0.3);
  EXPECT_DOUBLE_EQ(spec.tref_c, 85.0);
  // Canonical string is deterministic and distinguishes parameters.
  const std::string c = spec.canonical();
  EXPECT_NE(c, "oxide");
  EXPECT_NE(c.find("nbti"), std::string::npos);
  Config cfg2 = cfg;
  cfg2.set("nbti_t50_years", "21");
  EXPECT_NE(mech::parse_spec(cfg2).canonical(), c);
}

TEST(MechSpec, ParsesRedundancyGrammar) {
  Config cfg;
  cfg.set("redundancy", "cores:blk0+blk1+blk2:1, cache:blk3+blk4:0");
  const mech::MechanismSpec spec = mech::parse_spec(cfg);
  ASSERT_EQ(spec.redundancy.size(), 2u);
  EXPECT_EQ(spec.redundancy[0].name, "cores");
  EXPECT_EQ(spec.redundancy[0].members.size(), 3u);
  EXPECT_EQ(spec.redundancy[0].spares, 1u);
  EXPECT_EQ(spec.redundancy[1].spares, 0u);
  EXPECT_FALSE(spec.seed_equivalent());
}

TEST(MechSpec, RejectsBadConfigs) {
  const auto expect_config_error = [](const Config& cfg) {
    try {
      (void)mech::parse_spec(cfg);
      FAIL() << "expected kConfig";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kConfig);
    }
  };
  {
    Config cfg;
    cfg.set("mechanisms", "oxide,tddb");  // unknown mechanism
    expect_config_error(cfg);
  }
  {
    Config cfg;
    cfg.set("mechanisms", "nbti");  // oxide base model missing
    expect_config_error(cfg);
  }
  {
    Config cfg;
    cfg.set("mechanisms", "oxide,nbti");
    cfg.set("nbti_sigma", "-0.1");  // non-positive shape
    expect_config_error(cfg);
  }
  {
    Config cfg;
    cfg.set("redundancy", "cores:blk0+blk1");  // missing spare count
    expect_config_error(cfg);
  }
  {
    Config cfg;
    cfg.set("redundancy", "cores:blk0+blk1:two");  // non-numeric spares
    expect_config_error(cfg);
  }
}

TEST(MechSpec, StackRejectsInvalidRedundancyAgainstDesign) {
  const std::vector<std::string> names{"blk0", "blk1", "blk2"};
  std::vector<mech::OperatingConditions> conds(3);
  const auto build = [&](const mech::MechanismSpec& spec) {
    return mech::MechanismStack(spec, names, conds);
  };
  mech::MechanismSpec unknown;
  unknown.redundancy.push_back({"g", {"blk0", "nosuch"}, 0});
  EXPECT_THROW((void)build(unknown), Error);
  mech::MechanismSpec dup;
  dup.redundancy.push_back({"g1", {"blk0", "blk1"}, 0});
  dup.redundancy.push_back({"g2", {"blk1", "blk2"}, 0});
  EXPECT_THROW((void)build(dup), Error);
  mech::MechanismSpec too_many;
  too_many.redundancy.push_back({"g", {"blk0", "blk1"}, 2});
  EXPECT_THROW((void)build(too_many), Error);
}

// ---------------------------------------------------------------------------
// The lognormal aging law.

TEST(LognormalMechanism, MedianAndAccelerationDirections) {
  mech::MechanismParams p;
  p.t50_years = 30.0;
  p.sigma = 0.4;
  p.ea_ev = 0.5;
  p.gamma_v = 8.0;
  p.activity_exp = 1.0;
  const mech::LognormalMechanism m("nbti", p, 100.0, 1.2);
  const mech::OperatingConditions ref{100.0, 1.2, 1.0};
  // At reference conditions the median is t50_years.
  EXPECT_NEAR(m.t50(ref) / (30.0 * kYear), 1.0, 1e-12);
  EXPECT_NEAR(m.block_cdf(0, 30.0 * kYear, ref), 0.5, 1e-12);
  // Hotter, higher voltage, and busier all shorten the median (Ea > 0).
  EXPECT_LT(m.t50({120.0, 1.2, 1.0}), m.t50(ref));
  EXPECT_LT(m.t50({100.0, 1.3, 1.0}), m.t50(ref));
  EXPECT_LT(m.t50(ref), m.t50({100.0, 1.2, 0.25}));
  // Arrhenius factor hand-check: 20 C hotter at Ea = 0.5 eV.
  const double af = std::exp((0.5 / mech::kBoltzmannEv) *
                             (1.0 / 393.15 - 1.0 / 373.15));
  EXPECT_NEAR(m.t50({120.0, 1.2, 1.0}) / m.t50(ref), af, 1e-9 * af);
  // A negative Ea (HCI-style cold carrier damage) inverts the direction.
  mech::MechanismParams hci = p;
  hci.ea_ev = -0.05;
  const mech::LognormalMechanism h("hci", hci, 100.0, 1.2);
  EXPECT_GT(h.t50({120.0, 1.2, 1.0}), h.t50(ref));
}

TEST(LognormalMechanism, QuantileInvertsCdfAndHazardIsPositive) {
  mech::MechanismParams p;
  const mech::LognormalMechanism m("em", p, 100.0, 1.2);
  const mech::OperatingConditions c{80.0, 1.25, 0.4};
  for (double f : {1e-6, 1e-3, 0.1, 0.5, 0.9}) {
    const double t = m.block_time_at(0, f, c);
    ASSERT_GT(t, 0.0);
    EXPECT_NEAR(m.block_cdf(0, t, c), f, 1e-9) << "f=" << f;
  }
  EXPECT_DOUBLE_EQ(m.block_time_at(0, 0.0, c), 0.0);
  EXPECT_DOUBLE_EQ(m.block_cdf(0, 0.0, c), 0.0);
  // Closed-form hazard agrees with the base-class finite difference.
  const double t = m.block_time_at(0, 0.2, c);
  const double closed = m.block_hazard(0, t, c);
  const double fd = m.FailureMechanism::block_hazard(0, t, c);
  EXPECT_GT(closed, 0.0);
  EXPECT_NEAR(closed / fd, 1.0, 1e-4);
}

TEST(LognormalMechanism, RejectsBadParameters) {
  mech::MechanismParams p;
  p.sigma = 0.0;
  EXPECT_THROW(mech::LognormalMechanism("x", p, 100.0, 1.2), Error);
  mech::MechanismParams q;
  q.t50_years = -1.0;
  EXPECT_THROW(mech::LognormalMechanism("x", q, 100.0, 1.2), Error);
}

// ---------------------------------------------------------------------------
// The oxide adapter and stack composition.

TEST_F(MechFixture, OxideMechanismMatchesAnalyticBitForBit) {
  const AnalyticAnalyzer analytic(*oxide_);
  const core::OxideMechanism wrapped(*oxide_);
  const mech::OperatingConditions ignored{};
  for (double t : {0.5 * kYear, 3.0 * kYear, 12.0 * kYear, 40.0 * kYear}) {
    for (std::size_t j = 0; j < oxide_->blocks().size(); ++j) {
      // Same node list through the same kernel: exactly equal, not near.
      EXPECT_EQ(wrapped.block_cdf(j, t, ignored),
                analytic.block_failure(j, t))
          << "j=" << j << " t=" << t;
    }
  }
  // The inverse lands back on the CDF.
  const double t_inv = wrapped.block_time_at(0, 1e-4, ignored);
  EXPECT_NEAR(wrapped.block_cdf(0, t_inv, ignored), 1e-4, 1e-10);
}

TEST_F(MechFixture, TrivialStackReproducesSeedComposition) {
  ASSERT_TRUE(oxide_->mechanisms().trivial());
  const AnalyticAnalyzer analytic(*oxide_);
  for (double t : {2.0 * kYear, 8.0 * kYear, 25.0 * kYear}) {
    double log_survival = 0.0;
    std::vector<double> oxide_f;
    for (std::size_t j = 0; j < oxide_->blocks().size(); ++j) {
      const double fj =
          std::clamp(analytic.block_failure(j, t), 0.0, 1.0);
      oxide_f.push_back(fj);
      log_survival += std::log1p(-fj);
    }
    const double seed = std::clamp(-std::expm1(log_survival), 0.0, 1.0);
    EXPECT_EQ(oxide_->mechanisms().compose(oxide_f.data(), t), seed);
    EXPECT_EQ(analytic.failure_probability(t), seed);
  }
}

TEST_F(MechFixture, CompetingRisksEqualsHandComputedSurvivalProduct) {
  ASSERT_FALSE(all_->mechanisms().trivial());
  ASSERT_EQ(all_->mechanisms().extra_count(), 3u);
  const AnalyticAnalyzer analytic(*all_);
  const AnalyticAnalyzer base(*oxide_);
  const mech::MechanismSpec spec = all_mechanisms_spec();
  // Independent reconstruction of the three aging laws.
  std::vector<mech::LognormalMechanism> laws;
  laws.emplace_back("nbti", spec.nbti_params, spec.tref_c, spec.vref);
  laws.emplace_back("em", spec.em_params, spec.tref_c, spec.vref);
  laws.emplace_back("hci", spec.hci_params, spec.tref_c, spec.vref);
  for (double t : {2.0 * kYear, 8.0 * kYear, 25.0 * kYear}) {
    double log_survival = 0.0;
    for (std::size_t j = 0; j < all_->blocks().size(); ++j) {
      log_survival +=
          std::log1p(-std::clamp(base.block_failure(j, t), 0.0, 1.0));
      const mech::OperatingConditions c{(*temps_)[j], 1.2,
                                        design_->blocks[j].activity};
      for (const auto& law : laws) {
        log_survival += std::log1p(-std::clamp(law.block_cdf(j, t, c),
                                               0.0, 1.0));
      }
    }
    const double expected =
        std::clamp(-std::expm1(log_survival), 0.0, 1.0);
    EXPECT_NEAR(analytic.failure_probability(t), expected,
                1e-13 + 1e-12 * expected)
        << "t/year=" << t / kYear;
  }
}

TEST_F(MechFixture, AllMechanismsStrictlyShortenLifetime) {
  const AnalyticAnalyzer base(*oxide_);
  const AnalyticAnalyzer aged(*all_);
  for (double target : {1e-6, 1e-5, 1e-3}) {
    const double t_base = base.lifetime_at(target);
    const double t_aged = aged.lifetime_at(target);
    EXPECT_LT(t_aged, t_base) << "target " << target;
  }
  // Pointwise: more competing risks can only raise F(t).
  for (double t : {1.0 * kYear, 10.0 * kYear}) {
    EXPECT_GE(aged.failure_probability(t), base.failure_probability(t));
  }
}

TEST_F(MechFixture, HybridFoldMatchesSeparableTransform) {
  // Absent redundancy the aging term separates from the oxide term:
  // F_all = 1 - (1 - F_ox) * S_extra. The hybrid path must agree with its
  // own oxide-only twin through that exact fold.
  const core::HybridEvaluator hybrid_ox(*oxide_);
  const core::HybridEvaluator hybrid_all(*all_);
  const auto& stack = all_->mechanisms();
  for (double t : {2.0 * kYear, 8.0 * kYear, 25.0 * kYear}) {
    const double f_ox = hybrid_ox.failure_probability(t);
    const double folded = 1.0 - (1.0 - f_ox) * stack.extra_survival(t);
    EXPECT_NEAR(hybrid_all.failure_probability(t), folded, 1e-12);
  }
}

TEST(MechEv6, AllMechanismsShortenEv6Lifetime) {
  // The paper's EV6 floorplan with a Fig. 1-style hot/cold spread. At ppm
  // targets the oxide weakest link over ~10^6 devices fails first (the
  // aging CDFs underflow), so the acceptance is pinned where aging is
  // representable: mid-range failure levels.
  const chip::Design ev6 = chip::make_ev6_design();
  std::vector<double> temps;
  for (std::size_t j = 0; j < ev6.blocks.size(); ++j) {
    temps.push_back(75.0 + 30.0 * static_cast<double>(j) /
                               static_cast<double>(ev6.blocks.size() - 1));
  }
  const core::AnalyticReliabilityModel model;
  core::ProblemOptions base_opts;
  base_opts.grid_cells_per_side = 10;
  const ReliabilityProblem base_problem(ReliabilityProblem::build(
      ev6, var::VariationBudget{}, model, temps, 1.2, base_opts));
  core::ProblemOptions aged_opts = base_opts;
  aged_opts.mechanisms = all_mechanisms_spec();
  const ReliabilityProblem aged_problem(ReliabilityProblem::build(
      ev6, var::VariationBudget{}, model, temps, 1.2, aged_opts));
  const AnalyticAnalyzer base(base_problem);
  const AnalyticAnalyzer aged(aged_problem);
  for (double target : {0.1, 0.5, 0.9}) {
    EXPECT_LT(aged.lifetime_at(target), base.lifetime_at(target))
        << "target " << target;
  }
  // Below the underflow threshold the two can only tie, never invert.
  EXPECT_LE(aged.lifetime_at(1e-5), base.lifetime_at(1e-5));
}

// ---------------------------------------------------------------------------
// Monte Carlo wiring.

TEST_F(MechFixture, MonteCarloAppliesDeterministicAgingTransform) {
  core::MonteCarloOptions mco;
  mco.chip_samples = 200;
  const core::MonteCarloAnalyzer mc_ox(*oxide_, mco);
  const core::MonteCarloAnalyzer mc_all(*all_, mco);
  const auto& stack = all_->mechanisms();
  const std::vector<double> ts{2.0 * kYear, 8.0 * kYear, 25.0 * kYear};
  const auto f_ox = mc_ox.failure_probabilities(ts);
  const auto f_all = mc_all.failure_probabilities(ts);
  const auto se_ox = mc_ox.failure_std_errors(ts);
  const auto se_all = mc_all.failure_std_errors(ts);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const double s = stack.extra_survival(ts[i]);
    EXPECT_NEAR(f_all[i], 1.0 - (1.0 - f_ox[i]) * s, 1e-12) << i;
    // The deterministic factor scales the sampling noise by S as well.
    EXPECT_NEAR(se_all[i], se_ox[i] * s, 1e-12) << i;
  }
}

TEST_F(MechFixture, MonteCarloSampledLifetimesNeverLengthen) {
  // sample_failure_times draws the oxide TTF from the same per-chip
  // streams for both problems (extras draw after all oxide use), so the
  // aged chip lifetime is the min over mechanisms: element-wise <=.
  core::MonteCarloOptions mco;
  mco.chip_samples = 50;
  const core::MonteCarloAnalyzer mc_ox(*oxide_, mco);
  const core::MonteCarloAnalyzer mc_all(*all_, mco);
  stats::Rng rng_a(1234);
  stats::Rng rng_b(1234);
  const auto base = mc_ox.sample_failure_times(64, rng_a);
  const auto aged = mc_all.sample_failure_times(64, rng_b);
  ASSERT_EQ(base.size(), aged.size());
  std::size_t strictly_less = 0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_LE(aged[i], base[i]) << i;
    if (aged[i] < base[i]) ++strictly_less;
  }
  // With three extra mechanisms some chips must die of aging first.
  EXPECT_GT(strictly_less, 0u);
}

TEST_F(MechFixture, MonteCarloRejectsUnsupportedCompositions) {
  // Redundancy breaks the separability the MC transform rests on.
  core::ProblemOptions opts;
  opts.grid_cells_per_side = 10;
  opts.mechanisms.redundancy.push_back({"pair", {"blk0", "blk1"}, 1});
  const ReliabilityProblem redundant(ReliabilityProblem::build(
      *design_, var::VariationBudget{}, *model_, *temps_, 1.2, opts));
  try {
    const core::MonteCarloAnalyzer mc(redundant, {});
    FAIL() << "expected kInvalidInput";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  }
  // kth-failure semantics are oxide-only; k = 1 stays available.
  core::MonteCarloOptions mco;
  mco.chip_samples = 50;
  const core::MonteCarloAnalyzer mc_all(*all_, mco);
  EXPECT_GT(mc_all.kth_failure_probability(8.0 * kYear, 1), 0.0);
  EXPECT_THROW((void)mc_all.kth_failure_probability(8.0 * kYear, 2), Error);
}

// ---------------------------------------------------------------------------
// Redundancy composition.

TEST_F(MechFixture, SpareGroupsExtendLifetimeMonotonically) {
  // One group over three hot blocks; more spares => lower F at every t.
  std::vector<ReliabilityProblem> storage;
  storage.reserve(3);
  for (std::size_t spares = 0; spares <= 2; ++spares) {
    core::ProblemOptions opts;
    opts.grid_cells_per_side = 10;
    opts.mechanisms.redundancy.push_back(
        {"cores", {"blk0", "blk3", "blk5"}, spares});
    storage.push_back(ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_, *temps_, 1.2, opts));
  }
  const AnalyticAnalyzer base(*oxide_);
  const AnalyticAnalyzer s0(storage[0]);
  const AnalyticAnalyzer s1(storage[1]);
  const AnalyticAnalyzer s2(storage[2]);
  for (double t : {2.0 * kYear, 8.0 * kYear, 25.0 * kYear}) {
    const double f_base = base.failure_probability(t);
    const double f0 = s0.failure_probability(t);
    const double f1 = s1.failure_probability(t);
    const double f2 = s2.failure_probability(t);
    // Zero spares degenerates to the series chip (within composition fp).
    EXPECT_NEAR(f0, f_base, 1e-12 + 1e-9 * f_base);
    EXPECT_LT(f1, f0) << "t/year=" << t / kYear;
    EXPECT_LT(f2, f1) << "t/year=" << t / kYear;
  }
  // Lifetime at a ppm target is extended, not shortened.
  EXPECT_GT(s1.lifetime_at(1e-5), base.lifetime_at(1e-5));
}

TEST_F(MechFixture, SpareGroupMatchesHandComputedPoissonBinomial) {
  // Group = {blk1, blk4}, one spare: the group fails only when both
  // members fail, so chip F folds p1 * p4 into the ungrouped survival.
  core::ProblemOptions opts;
  opts.grid_cells_per_side = 10;
  opts.mechanisms.redundancy.push_back({"pair", {"blk1", "blk4"}, 1});
  const ReliabilityProblem redundant(ReliabilityProblem::build(
      *design_, var::VariationBudget{}, *model_, *temps_, 1.2, opts));
  const AnalyticAnalyzer red(redundant);
  const AnalyticAnalyzer base(*oxide_);
  for (double t : {2.0 * kYear, 8.0 * kYear, 25.0 * kYear}) {
    double log_survival = 0.0;
    double p1 = 0.0;
    double p4 = 0.0;
    for (std::size_t j = 0; j < oxide_->blocks().size(); ++j) {
      const double fj = std::clamp(base.block_failure(j, t), 0.0, 1.0);
      if (j == 1) {
        p1 = fj;
      } else if (j == 4) {
        p4 = fj;
      } else {
        log_survival += std::log1p(-fj);
      }
    }
    log_survival += std::log1p(-p1 * p4);
    const double expected =
        std::clamp(-std::expm1(log_survival), 0.0, 1.0);
    EXPECT_NEAR(red.failure_probability(t), expected,
                1e-13 + 1e-11 * expected);
  }
}

// ---------------------------------------------------------------------------
// DRM damage accounting.

TEST_F(MechFixture, DrmTracksPerMechanismDamage) {
  const std::vector<drm::OperatingPoint> ladder{
      {"eco", 1.0, 1.2e9}, {"turbo", 1.25, 2.3e9}};
  drm::DrmOptions opts;
  opts.control_interval_s = 90.0 * 86400.0;
  drm::ReliabilityManager mgr(*all_, *model_, ladder, opts);
  const std::size_t n = all_->blocks().size();
  ASSERT_EQ(mgr.extra_damage().size(), 3 * n);
  ASSERT_EQ(mgr.state_size(), 4 * n);
  for (int i = 0; i < 4; ++i) (void)mgr.step(0.6);
  // Every mechanism accumulated monotone damage on at least one block.
  const auto& extra = mgr.extra_damage();
  for (std::size_t m = 0; m < 3; ++m) {
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_GE(extra[m * n + j], 0.0);
      total += extra[m * n + j];
    }
    EXPECT_GT(total, 0.0) << "mechanism " << m;
  }
  const double damage_before = mgr.damage();
  EXPECT_GT(damage_before, 0.0);
  // Round-trip through the checkpoint vector.
  const std::vector<double> state = mgr.damage_state();
  ASSERT_EQ(state.size(), mgr.state_size());
  drm::ReliabilityManager fresh(*all_, *model_, ladder, opts);
  fresh.restore_state(state, 4.0 * opts.control_interval_s,
                      mgr.last_op_index());
  EXPECT_DOUBLE_EQ(fresh.damage(), damage_before);
  EXPECT_EQ(fresh.extra_damage(), extra);
  // Damage keeps growing after the restore.
  (void)fresh.step(0.6);
  EXPECT_GT(fresh.damage(), damage_before);
}

TEST_F(MechFixture, DrmOxideOnlyStateIsSeedShaped) {
  const std::vector<drm::OperatingPoint> ladder{{"eco", 1.0, 1.2e9}};
  drm::ReliabilityManager mgr(*oxide_, *model_, ladder, {});
  EXPECT_TRUE(mgr.extra_damage().empty());
  EXPECT_EQ(mgr.state_size(), oxide_->blocks().size());
  (void)mgr.step(0.5);
  EXPECT_EQ(mgr.damage_state(), mgr.block_damage());
}

// ---------------------------------------------------------------------------
// Report surface.

TEST_F(MechFixture, ReportNamesMechanismsOnlyWhenNonDefault) {
  const auto base = core::make_signoff_report(*oxide_, *model_);
  EXPECT_EQ(base.mechanisms, "oxide");
  EXPECT_EQ(base.redundancy_groups, 0u);
  EXPECT_EQ(base.render().find("Mechanisms:"), std::string::npos);
  const auto aged = core::make_signoff_report(*all_, *model_);
  EXPECT_NE(aged.mechanisms, "oxide");
  EXPECT_NE(aged.render().find("Mechanisms:"), std::string::npos);
}

}  // namespace
}  // namespace obd
