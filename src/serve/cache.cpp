#include "serve/cache.hpp"

#include <filesystem>
#include <sstream>
#include <utility>

#include "common/checkpoint.hpp"
#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"

namespace obd::serve {
namespace {

namespace fs = std::filesystem;

/// Disk-tier snapshot schema version (payload = key line + LUT text).
constexpr std::uint32_t kCacheVersion = 1;

/// Fixed per-entry overhead charged on top of the table bytes: the
/// problem's canonical form, layout, and node lists are small next to the
/// tables but not free.
constexpr std::size_t kEntryOverhead = std::size_t{64} << 10;

/// Moves a bad cache file aside so it is kept for post-mortem but never
/// re-read; a failed rename falls back to removal (the file must not be
/// picked up again either way).
void quarantine(const std::string& path) {
  std::error_code ec;
  fs::rename(path, path + ".quarantined", ec);
  if (ec) fs::remove(path, ec);
}

}  // namespace

std::uint64_t fingerprint(const std::string& key) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (const unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::string cache_file_path(const std::string& dir, std::uint64_t fp) {
  std::ostringstream name;
  name << std::hex << fp;
  return dir + "/" + name.str() + ".lut";
}

std::string surrogate_file_path(const std::string& dir, std::uint64_t fp) {
  std::ostringstream name;
  name << std::hex << fp;
  return dir + "/" + name.str() + ".cheb";
}

bool write_cache_file(const std::string& path, const std::string& key,
                      const std::string& table_text) {
  try {
    if (fault::should_fire(fault::site::kServeCacheEvict))
      throw Error("serve: injected cache write-back failure on '" + path +
                      "'",
                  ErrorCode::kIo);
    ckpt::write_snapshot_atomic(path, kCacheVersion, key + "\n" + table_text);
    return true;
  } catch (const Error& e) {
    // Table loss is recomputable; a crashed daemon is not. Record the
    // degradation and keep serving.
    diagnostics().warn("serve.cache_evict",
                       "disk cache write-back failed, entry dropped: " +
                           std::string(e.what()));
    return false;
  }
}

std::optional<std::string> read_cache_file(const std::string& path,
                                           const std::string& expected_key,
                                           bool* quarantined) {
  if (quarantined != nullptr) *quarantined = false;
  std::error_code ec;
  if (!fs::exists(path, ec)) return std::nullopt;  // plain miss

  std::string reason;
  std::string payload;
  try {
    if (fault::should_fire(fault::site::kServeCacheRead))
      throw Error("injected disk-cache corruption", ErrorCode::kInvalidInput);
    payload = ckpt::read_snapshot(path).payload;
  } catch (const Error& e) {
    reason = e.what();
  }
  if (reason.empty()) {
    const std::size_t eol = payload.find('\n');
    const std::string key =
        (eol == std::string::npos) ? payload : payload.substr(0, eol);
    if (eol == std::string::npos) {
      reason = "payload has no key line";
    } else if (key != expected_key) {
      // Foreign state: a file from another config/corner landed under our
      // fingerprint (collision or operator error). Never trust it.
      reason = "embedded key '" + key + "' does not match this query";
    } else {
      return payload.substr(eol + 1);
    }
  }
  quarantine(path);
  if (quarantined != nullptr) *quarantined = true;
  diagnostics().warn("serve.cache_corrupt",
                     "quarantined disk cache entry '" + path +
                         "', recomputing: " + reason);
  return std::nullopt;
}

std::size_t entry_bytes(std::size_t blocks, std::size_t n_gamma,
                        std::size_t n_b) {
  return blocks * n_gamma * n_b * sizeof(double) + kEntryOverhead;
}

TableCache::TableCache(CacheOptions options) : options_(std::move(options)) {
  if (!options_.dir.empty()) {
    std::error_code ec;
    fs::create_directories(options_.dir, ec);
    // A SIGKILL mid-write-back leaves `<fp>.lut.tmp` behind; readers never
    // open temp files, so sweeping at startup is safe and keeps the tier
    // from leaking one orphan per crash.
    ckpt::sweep_stale_tmp(options_.dir, "", "serve");
  }
}

CacheEntry* TableCache::find(std::uint64_t fp) {
  const auto it = index_.find(fp);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return &*it->second;
}

std::optional<core::HybridEvaluator> TableCache::load_disk(
    std::uint64_t fp, const std::string& key,
    const core::ReliabilityProblem& problem) {
  if (options_.dir.empty()) return std::nullopt;
  const std::string path = cache_file_path(options_.dir, fp);
  bool quarantined = false;
  const auto text = read_cache_file(path, key, &quarantined);
  if (quarantined) ++stats_.corrupt;
  if (!text) return std::nullopt;
  try {
    std::istringstream in(*text);
    auto hybrid = core::HybridEvaluator::load(in, problem);
    ++stats_.disk_hits;
    return hybrid;
  } catch (const Error& e) {
    // The frame's CRC was fine but the tables do not decode against this
    // problem — same treatment as corruption: quarantine and recompute.
    ++stats_.corrupt;
    quarantine(path);
    diagnostics().warn("serve.cache_corrupt",
                       "quarantined undecodable disk cache entry '" + path +
                           "', recomputing: " + std::string(e.what()));
    return std::nullopt;
  }
}

CacheEntry* TableCache::insert(CacheEntry entry) {
  const auto it = index_.find(entry.fp);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  bytes_ += entry.bytes;
  lru_.push_front(std::move(entry));
  index_[lru_.front().fp] = lru_.begin();
  evict_to_budget();
  return &lru_.front();
}

bool TableCache::flush() {
  bool ok = true;
  for (auto& entry : lru_) ok = demote(entry) && ok;
  return ok;
}

std::string TableCache::serialize(const core::HybridEvaluator& hybrid) {
  std::ostringstream out;
  hybrid.save(out);
  return out.str();
}

void TableCache::evict_to_budget() {
  // The most-recently-used entry always stays resident even when it alone
  // exceeds the budget — evicting the entry being served would thrash.
  while (bytes_ > options_.byte_budget && lru_.size() > 1) {
    CacheEntry& victim = lru_.back();
    demote(victim);  // failure already recorded; drop the entry regardless
    bytes_ -= victim.bytes;
    index_.erase(victim.fp);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

bool TableCache::demote(CacheEntry& entry) {
  if (entry.on_disk || options_.dir.empty()) return true;
  const std::string path = cache_file_path(options_.dir, entry.fp);
  if (!write_cache_file(path, entry.key, serialize(*entry.hybrid))) {
    ++stats_.write_failures;
    return false;
  }
  entry.on_disk = true;
  return true;
}

}  // namespace obd::serve
