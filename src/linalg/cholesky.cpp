#include "linalg/cholesky.hpp"

#include <cmath>

namespace obd::la {

Matrix cholesky_lower(const Matrix& a, double jitter) {
  require(a.rows() == a.cols(), "cholesky_lower: matrix must be square");
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + jitter;
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    require(diag > 0.0, "cholesky_lower: matrix is not positive definite");
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

Vector cholesky_solve(const Matrix& lower, const Vector& b) {
  const std::size_t n = lower.rows();
  require(lower.cols() == n && b.size() == n,
          "cholesky_solve: dimension mismatch");
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= lower(i, k) * y[k];
    y[i] = s / lower(i, i);
  }
  Vector x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= lower(k, i) * x[k];
    x[i] = s / lower(i, i);
  }
  return x;
}

}  // namespace obd::la
