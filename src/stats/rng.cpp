#include "stats/rng.hpp"

#include <cmath>

namespace obd::stats {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_positive() { return 1.0 - uniform(); }

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller: two uniforms -> two independent standard normals.
  const double u1 = uniform_positive();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential() { return -std::log(uniform_positive()); }

std::uint64_t Rng::below(std::uint64_t n) {
  // Lemire's nearly-divisionless bounded generation; bias is negligible for
  // the bounds used here (n << 2^64) but we keep the rejection loop anyway.
  if (n == 0) return 0;
  const std::uint64_t threshold = (~n + 1) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

Rng Rng::split() {
  std::uint64_t mix = (*this)();
  return Rng(splitmix64(mix));
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream) {
  // Whiten the base seed once, fold the stream index in, and mix again.
  // splitmix64 is a bijection of its (incremented) state, so distinct
  // stream indices always produce distinct derived seeds.
  std::uint64_t state = seed;
  const std::uint64_t whitened = splitmix64(state);
  std::uint64_t derived = whitened ^ (stream + 0x9E3779B97F4A7C15ull);
  return Rng(splitmix64(derived));
}

}  // namespace obd::stats
