#include "variation/quadtree.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace obd::var {
namespace {

// Normalized level-variance weights for levels 1..L.
std::vector<double> resolve_weights(const QuadTreeOptions& options) {
  require(options.levels >= 1, "QuadTreeOptions: need at least one level");
  std::vector<double> w = options.level_weights;
  if (w.empty()) {
    w.resize(options.levels);
    for (std::size_t l = 0; l < options.levels; ++l)
      w[l] = std::pow(0.5, static_cast<double>(l));
  }
  require(w.size() == options.levels,
          "QuadTreeOptions: level_weights size must equal levels");
  double sum = 0.0;
  for (double x : w) {
    require(x >= 0.0, "QuadTreeOptions: negative level weight");
    sum += x;
  }
  require(sum > 0.0, "QuadTreeOptions: all level weights are zero");
  for (double& x : w) x /= sum;
  return w;
}

}  // namespace

std::size_t quadtree_regions_at(std::size_t level) {
  std::size_t n = 1;
  for (std::size_t l = 0; l < level; ++l) n *= 4;
  return n;
}

std::size_t quadtree_region_index(double x, double y, double die_width,
                                  double die_height, std::size_t level) {
  require(die_width > 0.0 && die_height > 0.0,
          "quadtree_region_index: die size");
  const auto side = static_cast<double>(std::size_t{1} << level);
  const double fx = std::clamp(x / die_width, 0.0, 1.0 - 1e-12);
  const double fy = std::clamp(y / die_height, 0.0, 1.0 - 1e-12);
  const auto cx = static_cast<std::size_t>(fx * side);
  const auto cy = static_cast<std::size_t>(fy * side);
  return cy * (std::size_t{1} << level) + cx;
}

CanonicalForm make_quadtree_canonical(const GridModel& grid,
                                      const VariationBudget& budget,
                                      const QuadTreeOptions& options,
                                      const WaferPattern& pattern) {
  budget.validate();
  const std::vector<double> weights = resolve_weights(options);

  // Component layout: [level 0: 1 global] [level 1: 4] [level 2: 16] ...
  std::size_t total_components = 1;
  std::vector<std::size_t> level_offset(options.levels + 1);
  level_offset[0] = 0;
  for (std::size_t l = 1; l <= options.levels; ++l) {
    level_offset[l] = total_components;
    total_components += quadtree_regions_at(l);
  }

  const double vs = budget.sigma_spatial() * budget.sigma_spatial();
  const std::size_t n = grid.cell_count();
  la::Matrix sens(n, total_components, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const chip::Rect cell = grid.cell_rect(i);
    const double cx = cell.center_x();
    const double cy = cell.center_y();
    // Level 0: the global (die-to-die) component, shared by every cell.
    sens(i, 0) = budget.sigma_global();
    for (std::size_t l = 1; l <= options.levels; ++l) {
      const double sigma_l = std::sqrt(vs * weights[l - 1]);
      const std::size_t r = quadtree_region_index(
          cx, cy, grid.die_width(), grid.die_height(), l);
      sens(i, level_offset[l] + r) = sigma_l;
    }
  }

  la::Vector nominal(n, budget.nominal);
  if (!pattern.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      const chip::Rect r = grid.cell_rect(i);
      const double xn = 2.0 * r.center_x() / grid.die_width() - 1.0;
      const double yn = 2.0 * r.center_y() / grid.die_height() - 1.0;
      nominal[i] += pattern.offset(xn, yn);
    }
  }

  return CanonicalForm(std::move(nominal), std::move(sens),
                       budget.sigma_independent());
}

double quadtree_correlation(double x1, double y1, double x2, double y2,
                            double die_width, double die_height,
                            const VariationBudget& budget,
                            const QuadTreeOptions& options) {
  budget.validate();
  const std::vector<double> weights = resolve_weights(options);
  const double vg = budget.sigma_global() * budget.sigma_global();
  const double vs = budget.sigma_spatial() * budget.sigma_spatial();

  double shared = vg;  // level 0 is always shared
  for (std::size_t l = 1; l <= options.levels; ++l) {
    if (quadtree_region_index(x1, y1, die_width, die_height, l) ==
        quadtree_region_index(x2, y2, die_width, die_height, l))
      shared += vs * weights[l - 1];
    else
      break;  // regions nest: once separated, all finer levels differ
  }
  return shared / (vg + vs);
}

}  // namespace obd::var
