#include <gtest/gtest.h>

#include "chip/design.hpp"
#include "common/error.hpp"

namespace obd::chip {
namespace {

TEST(Rect, AreaCentersContains) {
  const Rect r{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_DOUBLE_EQ(r.center_x(), 2.5);
  EXPECT_DOUBLE_EQ(r.center_y(), 4.0);
  EXPECT_TRUE(r.contains(1.0, 2.0));
  EXPECT_TRUE(r.contains(3.9, 5.9));
  EXPECT_FALSE(r.contains(4.0, 2.0));  // half-open
  EXPECT_FALSE(r.contains(0.0, 0.0));
}

TEST(Rect, OverlapCases) {
  const Rect a{0.0, 0.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(a.overlap({1.0, 1.0, 2.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(a.overlap({5.0, 5.0, 1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(a.overlap({0.0, 0.0, 2.0, 2.0}), 4.0);     // identical
  EXPECT_DOUBLE_EQ(a.overlap({-1.0, -1.0, 10.0, 10.0}), 4.0); // contained
  EXPECT_DOUBLE_EQ(a.overlap({2.0, 0.0, 2.0, 2.0}), 0.0);     // touching edge
}

TEST(Block, ObdAreaIsCountTimesAvgArea) {
  Block b;
  b.device_count = 1000;
  b.avg_device_area = 1.5;
  EXPECT_DOUBLE_EQ(b.obd_area(), 1500.0);
}

TEST(Design, TotalsAndValidation) {
  Design d;
  d.name = "t";
  d.width = 10.0;
  d.height = 10.0;
  d.blocks.push_back({"a", {0, 0, 5, 10}, 100, 1.0, UnitKind::kLogic, 0.5});
  d.blocks.push_back({"b", {5, 0, 5, 10}, 200, 2.0, UnitKind::kCache, 0.1});
  EXPECT_NO_THROW(d.validate());
  EXPECT_EQ(d.total_devices(), 300u);
  EXPECT_DOUBLE_EQ(d.total_obd_area(), 100.0 + 400.0);
  EXPECT_DOUBLE_EQ(d.die_area(), 100.0);
}

TEST(Design, ValidationCatchesBadBlocks) {
  Design d;
  d.name = "bad";
  d.width = 10.0;
  d.height = 10.0;
  d.blocks.push_back({"out", {8, 8, 5, 5}, 10, 1.0, UnitKind::kLogic, 0.5});
  EXPECT_THROW(d.validate(), obd::Error);

  d.blocks[0] = {"zero", {0, 0, 5, 5}, 0, 1.0, UnitKind::kLogic, 0.5};
  EXPECT_THROW(d.validate(), obd::Error);

  d.blocks[0] = {"act", {0, 0, 5, 5}, 10, 1.0, UnitKind::kLogic, 1.5};
  EXPECT_THROW(d.validate(), obd::Error);

  Design empty;
  empty.width = 1.0;
  empty.height = 1.0;
  EXPECT_THROW(empty.validate(), obd::Error);
}

TEST(SyntheticDesign, HonorsDeviceAndBlockBudget) {
  const Design d = make_synthetic_design(
      "syn", {.devices = 12345, .block_count = 7, .die_width = 5.0,
              .die_height = 4.0, .seed = 3});
  EXPECT_EQ(d.blocks.size(), 7u);
  EXPECT_EQ(d.total_devices(), 12345u);
  EXPECT_NO_THROW(d.validate());
  // Blocks tile the die: areas sum to die area.
  double area = 0.0;
  for (const auto& b : d.blocks) area += b.rect.area();
  EXPECT_NEAR(area, 20.0, 1e-9);
}

TEST(SyntheticDesign, DeterministicForSeed) {
  const SyntheticOptions opt{.devices = 5000, .block_count = 5,
                             .die_width = 3.0, .die_height = 3.0, .seed = 9};
  const Design a = make_synthetic_design("a", opt);
  const Design b = make_synthetic_design("b", opt);
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    EXPECT_EQ(a.blocks[i].device_count, b.blocks[i].device_count);
    EXPECT_DOUBLE_EQ(a.blocks[i].rect.x, b.blocks[i].rect.x);
  }
}

TEST(SyntheticDesign, RejectsImpossibleBudget) {
  EXPECT_THROW(
      make_synthetic_design("x", {.devices = 3, .block_count = 10}),
      obd::Error);
}

TEST(Benchmarks, MatchPaperDeviceCounts) {
  // Section V: C1-C6 range from 50K to 0.84M devices.
  const std::size_t expected[] = {50000, 80000, 100000, 200000, 500000,
                                  840000};
  for (int i = 1; i <= 6; ++i) {
    const Design d = make_benchmark(i);
    EXPECT_EQ(d.total_devices(), expected[i - 1]) << "C" << i;
    EXPECT_NO_THROW(d.validate());
  }
  EXPECT_THROW(make_benchmark(0), obd::Error);
  EXPECT_THROW(make_benchmark(7), obd::Error);
}

TEST(Ev6Design, FifteenModulesLikeThePaper) {
  const Design d = make_ev6_design();
  EXPECT_EQ(d.blocks.size(), 15u);       // "15 functional modules"
  EXPECT_EQ(d.total_devices(), 840000u); // "approximately 0.84M transistors"
  EXPECT_NO_THROW(d.validate());
  // The integer execution unit must be the activity hot spot.
  double int_exec_activity = 0.0;
  double l2_activity = 1.0;
  for (const auto& b : d.blocks) {
    if (b.name == "IntExec") int_exec_activity = b.activity;
    if (b.name == "L2") l2_activity = b.activity;
  }
  EXPECT_GT(int_exec_activity, 0.8);
  EXPECT_LT(l2_activity, 0.2);
}

TEST(ManycoreDesign, TilesPlusRing) {
  const Design d = make_manycore_design(4, 0.25, 7);
  EXPECT_EQ(d.blocks.size(), 16u + 4u);
  EXPECT_NO_THROW(d.validate());
  // Roughly a quarter of the cores are active (hot).
  std::size_t hot = 0;
  for (const auto& b : d.blocks)
    if (b.kind == UnitKind::kCore && b.activity > 0.5) ++hot;
  EXPECT_EQ(hot, 4u);
}

TEST(ManycoreDesign, RejectsBadArguments) {
  EXPECT_THROW(make_manycore_design(1), obd::Error);
  EXPECT_THROW(make_manycore_design(4, 1.5), obd::Error);
}

}  // namespace
}  // namespace obd::chip
