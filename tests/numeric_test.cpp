#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "numeric/interp.hpp"
#include "numeric/quadrature.hpp"
#include "numeric/roots.hpp"

namespace obd::num {
namespace {

TEST(Midpoint1D, ExactForLinear) {
  // Midpoint rule integrates linear functions exactly.
  const double v = midpoint_1d([](double x) { return 3.0 * x + 1.0; }, 0.0,
                               2.0, 7);
  EXPECT_NEAR(v, 8.0, 1e-12);
}

TEST(Midpoint1D, ConvergesForSmooth) {
  const double exact = 1.0 - std::cos(1.0);
  const double coarse = midpoint_1d([](double x) { return std::sin(x); },
                                    0.0, 1.0, 10);
  const double fine = midpoint_1d([](double x) { return std::sin(x); }, 0.0,
                                  1.0, 1000);
  EXPECT_NEAR(fine, exact, 1e-7);
  EXPECT_LT(std::fabs(fine - exact), std::fabs(coarse - exact));
}

TEST(Midpoint2D, SeparableProduct) {
  // Int of x*y over [0,1]^2 = 1/4.
  const double v = midpoint_2d([](double x, double y) { return x * y; }, 0.0,
                               1.0, 0.0, 1.0, 50);
  EXPECT_NEAR(v, 0.25, 1e-6);
}

TEST(Midpoint2D, PaperL0TenIsAccurateForGaussianProduct) {
  // The paper's claim: l0 = 10 suffices for a product of decaying PDFs.
  auto f = [](double x, double y) {
    return std::exp(-0.5 * (x * x + y * y)) / (2.0 * M_PI);
  };
  const double v = midpoint_2d(f, -5.0, 5.0, -5.0, 5.0, 10);
  EXPECT_NEAR(v, 1.0, 0.01);
}

TEST(GaussLegendre, ExactForPolynomials) {
  // n-point GL is exact for degree 2n-1.
  const double v4 = gauss_legendre_1d(
      [](double x) { return x * x * x * x * x * x * x; }, 0.0, 1.0, 4);
  EXPECT_NEAR(v4, 1.0 / 8.0, 1e-14);
  const double v2 = gauss_legendre_1d([](double x) { return x * x * x; },
                                      -1.0, 2.0, 2);
  EXPECT_NEAR(v2, (16.0 - 1.0) / 4.0, 1e-13);
}

TEST(GaussLegendre, PanelsImproveAccuracy) {
  auto f = [](double x) { return std::exp(-x) * std::sin(5.0 * x); };
  const double exact = 5.0 / 26.0 *
                       (1.0 - std::exp(-2.0) * (std::cos(10.0) +
                                                 0.2 * std::sin(10.0)));
  const double panels = gauss_legendre_1d(f, 0.0, 2.0, 6, 8);
  EXPECT_NEAR(panels, exact, 1e-10);
}

TEST(GaussLegendre, Tensor2D) {
  const double v = gauss_legendre_2d(
      [](double x, double y) { return x * x + y; }, 0.0, 1.0, 0.0, 2.0, 4);
  EXPECT_NEAR(v, 2.0 / 3.0 + 2.0, 1e-12);
}

TEST(GaussLegendre, RejectsUnsupportedPointCount) {
  EXPECT_THROW(
      gauss_legendre_1d([](double) { return 1.0; }, 0.0, 1.0, 20),
      obd::Error);
}

TEST(Simpson, ExactForCubics) {
  const double v =
      simpson_1d([](double x) { return x * x * x; }, 0.0, 2.0, 4);
  EXPECT_NEAR(v, 4.0, 1e-12);
}

TEST(Brent, FindsSimpleRoot) {
  const double r = brent([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-10);
}

TEST(Brent, FindsRootAtBracketEdge) {
  EXPECT_DOUBLE_EQ(brent([](double x) { return x; }, 0.0, 1.0), 0.0);
}

TEST(Brent, RejectsBadBracket) {
  EXPECT_THROW(brent([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               obd::Error);
  EXPECT_THROW(brent([](double x) { return x; }, 2.0, 1.0), obd::Error);
}

TEST(BrentAutoBracket, ExpandsToFindRoot) {
  // Root at 100, far outside the seed interval [0, 1].
  const double r = brent_auto_bracket(
      [](double x) { return x - 100.0; }, 0.0, 1.0);
  EXPECT_NEAR(r, 100.0, 1e-8);
}

TEST(BrentAutoBracket, WorksInLogDomainLikeLifetimeSolver) {
  // F(t) = 1 - exp(-(t/1e9)^1.4) = 1e-6, solved in s = ln t.
  auto f = [](double s) {
    const double t = std::exp(s);
    return -std::expm1(-std::pow(t / 1e9, 1.4)) - 1e-6;
  };
  const double s = brent_auto_bracket(f, std::log(1e6), std::log(1e8));
  const double expected = 1e9 * std::pow(1e-6, 1.0 / 1.4);
  EXPECT_NEAR(std::exp(s) / expected, 1.0, 1e-6);
}

TEST(Lerp1D, InterpolatesAndExtrapolates) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{0.0, 10.0, 40.0};
  EXPECT_DOUBLE_EQ(lerp_1d(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(lerp_1d(xs, ys, 1.5), 25.0);
  EXPECT_DOUBLE_EQ(lerp_1d(xs, ys, -1.0), -10.0);  // edge extrapolation
  EXPECT_DOUBLE_EQ(lerp_1d(xs, ys, 3.0), 70.0);
}

TEST(LookupTable2D, ExactForBilinearFunctions) {
  // Bilinear interpolation reproduces bilinear functions exactly.
  auto f = [](double x, double y) { return 2.0 * x + 3.0 * y + x * y; };
  const LookupTable2D lut(0.0, 4.0, 5, 0.0, 2.0, 3, f);
  for (double x : {0.3, 1.7, 3.9})
    for (double y : {0.1, 0.9, 1.95})
      EXPECT_NEAR(lut.at(x, y), f(x, y), 1e-12);
}

TEST(LookupTable2D, ClampsOutOfRangeQueries) {
  const LookupTable2D lut(0.0, 1.0, 2, 0.0, 1.0, 2,
                          [](double x, double y) { return x + y; });
  EXPECT_DOUBLE_EQ(lut.at(-5.0, -5.0), 0.0);
  EXPECT_DOUBLE_EQ(lut.at(9.0, 9.0), 2.0);
}

TEST(LookupTable2D, ApproximatesSmoothFunctions) {
  auto f = [](double x, double y) { return std::exp(-x) * std::cos(y); };
  const LookupTable2D lut(0.0, 3.0, 100, 0.0, 3.0, 100, f);
  double worst = 0.0;
  for (double x = 0.05; x < 3.0; x += 0.17)
    for (double y = 0.05; y < 3.0; y += 0.17)
      worst = std::max(worst, std::fabs(lut.at(x, y) - f(x, y)));
  EXPECT_LT(worst, 5e-4);
}

TEST(LookupTable2D, RejectsDegenerateGrids) {
  auto f = [](double, double) { return 0.0; };
  EXPECT_THROW(LookupTable2D(0.0, 1.0, 1, 0.0, 1.0, 2, f), obd::Error);
  EXPECT_THROW(LookupTable2D(1.0, 0.0, 2, 0.0, 1.0, 2, f), obd::Error);
}

}  // namespace
}  // namespace obd::num
