#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "simd/kernels.hpp"

namespace obd::simd {
namespace {

// -1 = not yet resolved; otherwise a Level value. Resolution is lazy so
// library users who never touch dispatch still get "auto".
std::atomic<int> g_level{-1};

// True when the level was requested explicitly (configure("avx512"),
// OBDREL_SIMD=<level>, set_level) rather than resolved by "auto". A
// forced level selects its whole uncomposed kernel table; only "auto"
// applies the per-kernel caps below.
std::atomic<bool> g_forced{false};

Level resolve_auto() {
  if (can_use_avx512()) return Level::kAvx512;
  return can_use_avx2() ? Level::kAvx2 : Level::kScalar;
}

void store(Level level, bool forced) {
  g_forced.store(forced, std::memory_order_relaxed);
  g_level.store(static_cast<int>(level), std::memory_order_release);
}

// Per-kernel ceiling applied under "auto", indexed by KernelId. Wider is
// not always faster: BENCH_simd.json measures the dot_counts AVX-512
// variant *slower* than AVX2 (0.068s vs 0.043s on the bench workload) —
// the kernel is load-bound and the fold of each 512-bit product back into
// the four 256-bit accumulator lanes costs two extracts plus two adds per
// eight elements, which AVX2 simply doesn't pay. Every other kernel wins
// at the widest tier. bench/simd_kernels.cpp gates that the tier `auto`
// picks per kernel stays within tolerance of the fastest measured tier,
// so a regression here (or a ratio flip on new hardware) fails the bench.
constexpr Level kAutoCap[] = {
    Level::kAvx512,  // fill_bin_factors
    Level::kAvx2,    // dot_counts (see above)
    Level::kAvx512,  // normal_cdf_batch
    Level::kAvx512,  // matmul
    Level::kAvx512,  // matvec
    Level::kAvx512,  // gram_aat
    Level::kAvx512,  // clenshaw_batch
};

// Whole-level table, guarded by what is compiled in (the alias tables are
// scalar copies on non-ISA builds, but going through the macros keeps the
// dead references out entirely).
const KernelTable& level_table(Level level) {
#if defined(OBDREL_HAVE_AVX512)
  if (level == Level::kAvx512) return detail::kAvx512Kernels;
#endif
#if defined(OBDREL_HAVE_AVX2)
  if (level == Level::kAvx2) return detail::kAvx2Kernels;
#endif
  (void)level;
  return detail::kScalarKernels;
}

Level capped(Level widest, KernelId id) {
  const Level cap = kAutoCap[static_cast<int>(id)];
  return static_cast<int>(cap) < static_cast<int>(widest) ? cap : widest;
}

KernelTable compose_auto(Level widest) {
  KernelTable t;
  t.fill_bin_factors =
      level_table(capped(widest, KernelId::kFillBinFactors)).fill_bin_factors;
  t.dot_counts = level_table(capped(widest, KernelId::kDotCounts)).dot_counts;
  t.normal_cdf_batch =
      level_table(capped(widest, KernelId::kNormalCdfBatch)).normal_cdf_batch;
  t.matmul = level_table(capped(widest, KernelId::kMatmul)).matmul;
  t.matvec = level_table(capped(widest, KernelId::kMatvec)).matvec;
  t.gram_aat = level_table(capped(widest, KernelId::kGramAat)).gram_aat;
  t.clenshaw_batch =
      level_table(capped(widest, KernelId::kClenshawBatch)).clenshaw_batch;
  return t;
}

// Composed per-kernel tables for "auto", one per resolved widest level.
// Function-local statics: initialized on first kernels() call, long after
// every table TU's static initialization, so the composition never copies
// a not-yet-initialized alias table.
const KernelTable& auto_table(Level widest) {
  static const KernelTable tables[3] = {compose_auto(Level::kScalar),
                                        compose_auto(Level::kAvx2),
                                        compose_auto(Level::kAvx512)};
  return tables[static_cast<int>(widest)];
}

}  // namespace

const char* to_string(Level level) {
  switch (level) {
    case Level::kAvx512:
      return "avx512";
    case Level::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

bool can_use_avx2() {
#if defined(OBDREL_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool can_use_avx512() {
#if defined(OBDREL_HAVE_AVX512) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq");
#else
  return false;
#endif
}

Level active_level() {
  const int l = g_level.load(std::memory_order_acquire);
  if (l >= 0) return static_cast<Level>(l);
  init_from_env();
  return static_cast<Level>(g_level.load(std::memory_order_acquire));
}

void configure(const std::string& spec) {
  if (spec == "auto") {
    store(resolve_auto(), /*forced=*/false);
    return;
  }
  if (spec == "scalar") {
    store(Level::kScalar, /*forced=*/true);
    return;
  }
  if (spec == "avx2") {
    if (!can_use_avx2())
      throw Error(
          "simd level 'avx2' requested but unavailable (CPU lacks AVX2/FMA "
          "or the build disabled OBDREL_ENABLE_AVX2); use 'auto' or "
          "'scalar'",
          ErrorCode::kConfig);
    store(Level::kAvx2, /*forced=*/true);
    return;
  }
  if (spec == "avx512") {
    if (!can_use_avx512())
      throw Error(
          "simd level 'avx512' requested but unavailable (CPU lacks "
          "AVX-512F/DQ or the build disabled OBDREL_ENABLE_AVX512); use "
          "'auto', 'avx2' or 'scalar'",
          ErrorCode::kConfig);
    store(Level::kAvx512, /*forced=*/true);
    return;
  }
  throw Error("simd must be 'auto', 'avx512', 'avx2' or 'scalar', got '" +
                  spec + "'",
              ErrorCode::kConfig);
}

void init_from_env() {
  const char* env = std::getenv("OBDREL_SIMD");
  if (env == nullptr || *env == '\0') {
    // Do not override an explicit configure()/set_level() choice.
    if (g_level.load(std::memory_order_acquire) < 0)
      store(resolve_auto(), /*forced=*/false);
    return;
  }
  try {
    configure(env);
  } catch (const Error& e) {
    throw Error(std::string("OBDREL_SIMD: ") + e.what(), ErrorCode::kConfig);
  }
}

void set_level(Level level) {
  if (level == Level::kAvx2 && !can_use_avx2())
    throw Error("simd: AVX2 kernels unavailable on this host/build",
                ErrorCode::kConfig);
  if (level == Level::kAvx512 && !can_use_avx512())
    throw Error("simd: AVX-512 kernels unavailable on this host/build",
                ErrorCode::kConfig);
  store(level, /*forced=*/true);
}

Level kernel_level(KernelId id) {
  const Level widest = active_level();
  if (g_forced.load(std::memory_order_relaxed)) return widest;
  return capped(widest, id);
}

void publish_level() {
  const Level level = active_level();
  std::string line = std::string("dispatch ") + to_string(level);
  if (!g_forced.load(std::memory_order_relaxed)) {
    // Name the kernels "auto" pulled below the widest tier, so the stat
    // line shows the effective per-kernel selection, not just the level.
    if (kernel_level(KernelId::kDotCounts) != level)
      line += std::string(", dot_counts=") +
              to_string(kernel_level(KernelId::kDotCounts));
  }
  std::string caps = " (";
  caps += can_use_avx512() ? "avx512f+dq available" : "avx512f+dq unavailable";
  caps += can_use_avx2() ? ", avx2+fma available)" : ", avx2+fma unavailable)";
  diagnostics().stat("simd.level", line + caps);
}

const KernelTable& kernels() {
  const Level level = active_level();
  if (g_forced.load(std::memory_order_relaxed)) return level_table(level);
  return auto_table(level);
}

}  // namespace obd::simd
