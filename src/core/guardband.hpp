// Traditional guard-band baseline (eq. 33-34; refs [4][14][28]).
//
// The conventional approach assumes every device on every chip has the
// worst-case minimum oxide thickness (nominal - 3 sigma_total) and operates
// at the worst-case (hottest) temperature. The chip reliability is then the
// deterministic Weibull
//     R(t) = exp(-A (t/alpha_worst)^(b_worst * x_min))
// and the lifetime at a reliability requirement has the closed form of
// eq. (34). The paper shows this is ~50% pessimistic (Table III).
#pragma once

#include "core/problem.hpp"

namespace obd::core {

class GuardBandAnalyzer {
 public:
  explicit GuardBandAnalyzer(const ReliabilityProblem& problem);

  /// Constructs directly from the corner parameters (A = total normalized
  /// OBD area of the chip).
  GuardBandAnalyzer(double total_area, double alpha_worst, double b_worst,
                    double min_thickness);

  [[nodiscard]] double failure_probability(double t) const;
  [[nodiscard]] double reliability(double t) const;

  /// Closed-form eq. (34): t_req = alpha * (-ln(R_req)/A)^(1/(b x_min)).
  [[nodiscard]] double lifetime_at(double target_failure) const;

  [[nodiscard]] double alpha_worst() const { return alpha_; }
  [[nodiscard]] double b_worst() const { return b_; }
  [[nodiscard]] double min_thickness() const { return x_min_; }
  [[nodiscard]] double total_area() const { return area_; }

 private:
  double area_;
  double alpha_;
  double b_;
  double x_min_;
};

}  // namespace obd::core
