#include "numeric/interp.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace obd::num {

double lerp_1d(const std::vector<double>& xs, const std::vector<double>& ys,
               double x) {
  require(xs.size() == ys.size(), "lerp_1d: size mismatch");
  require(xs.size() >= 2, "lerp_1d: need at least two points");
  auto it = std::upper_bound(xs.begin(), xs.end(), x);
  std::size_t hi;
  if (it == xs.begin())
    hi = 1;
  else if (it == xs.end())
    hi = xs.size() - 1;
  else
    hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

LookupTable2D::LookupTable2D(double xlo, double xhi, std::size_t nx,
                             double ylo, double yhi, std::size_t ny,
                             const std::function<double(double, double)>& f)
    : xlo_(xlo),
      xhi_(xhi),
      ylo_(ylo),
      yhi_(yhi),
      nx_(nx),
      ny_(ny),
      dx_((xhi - xlo) / static_cast<double>(nx - 1)),
      dy_((yhi - ylo) / static_cast<double>(ny - 1)),
      values_(nx * ny) {
  require(nx >= 2 && ny >= 2, "LookupTable2D: need at least a 2x2 grid");
  require(xhi > xlo && yhi > ylo, "LookupTable2D: invalid range");
  for (std::size_t ix = 0; ix < nx_; ++ix) {
    const double x = xlo_ + static_cast<double>(ix) * dx_;
    for (std::size_t iy = 0; iy < ny_; ++iy) {
      const double y = ylo_ + static_cast<double>(iy) * dy_;
      values_[ix * ny_ + iy] = f(x, y);
    }
  }
}

LookupTable2D::LookupTable2D(double xlo, double xhi, std::size_t nx,
                             double ylo, double yhi, std::size_t ny,
                             std::vector<double> values)
    : xlo_(xlo),
      xhi_(xhi),
      ylo_(ylo),
      yhi_(yhi),
      nx_(nx),
      ny_(ny),
      dx_((xhi - xlo) / static_cast<double>(nx - 1)),
      dy_((yhi - ylo) / static_cast<double>(ny - 1)),
      values_(std::move(values)) {
  require(nx >= 2 && ny >= 2, "LookupTable2D: need at least a 2x2 grid");
  require(xhi > xlo && yhi > ylo, "LookupTable2D: invalid range");
  require(values_.size() == nx * ny,
          "LookupTable2D: value count does not match grid size");
}

double LookupTable2D::at(double x, double y) const {
  const double cx = std::clamp(x, xlo_, xhi_);
  const double cy = std::clamp(y, ylo_, yhi_);
  double fx = (cx - xlo_) / dx_;
  double fy = (cy - ylo_) / dy_;
  auto ix = static_cast<std::size_t>(fx);
  auto iy = static_cast<std::size_t>(fy);
  ix = std::min(ix, nx_ - 2);
  iy = std::min(iy, ny_ - 2);
  const double tx = fx - static_cast<double>(ix);
  const double ty = fy - static_cast<double>(iy);
  const double v00 = values_[ix * ny_ + iy];
  const double v01 = values_[ix * ny_ + iy + 1];
  const double v10 = values_[(ix + 1) * ny_ + iy];
  const double v11 = values_[(ix + 1) * ny_ + iy + 1];
  return v00 * (1 - tx) * (1 - ty) + v10 * tx * (1 - ty) +
         v01 * (1 - tx) * ty + v11 * tx * ty;
}

}  // namespace obd::num
