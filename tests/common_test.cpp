#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"

namespace obd {
namespace {

TEST(Require, PassesOnTrue) { EXPECT_NO_THROW(require(true, "ok")); }

TEST(Require, ThrowsObdErrorWithMessage) {
  try {
    require(false, "boom");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(Require, ErrorIsRuntimeError) {
  EXPECT_THROW(require(false, "x"), std::runtime_error);
}

TEST(Stopwatch, MeasuresNonNegativeMonotoneTime) {
  Stopwatch sw;
  const double t1 = sw.seconds();
  const double t2 = sw.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  EXPECT_NEAR(sw.milliseconds(), sw.seconds() * 1e3, 1.0);
}

TEST(Stopwatch, ResetRestartsClock) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  sw.reset();
  EXPECT_LT(sw.seconds(), 0.5);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), Error);
}

TEST(TextTable, RejectsRowWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(TextTable, PrintsAlignedColumns) {
  TextTable t({"ckt.", "#Device"});
  t.add_row({"C1", "50K"});
  t.add_row({"C6", "0.84M"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("ckt."), std::string::npos);
  EXPECT_NE(s.find("0.84M"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Fmt, FormatsWithRequestedDigits) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.23456, 0), "1");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(FmtCount, MatchesPaperStyle) {
  EXPECT_EQ(fmt_count(50000), "50K");
  EXPECT_EQ(fmt_count(840000), "0.84M");
  EXPECT_EQ(fmt_count(100000), "0.1M");
  EXPECT_EQ(fmt_count(999), "999");
}

}  // namespace
}  // namespace obd
