// obdrel command-line frontend.
//
// Usage:
//   obdrel analyze <config>     full statistical reliability analysis
//   obdrel report  <config>     complete sign-off report (ranking, leakage)
//   obdrel thermal <config>     power + thermal profile only
//   obdrel lut build <config> <out-file>    precompute hybrid LUTs
//   obdrel lut query <config> <lut-file> <t_seconds>
//   obdrel drm run <config> <telemetry.csv|->  crash-safe DRM service loop
//   obdrel fleet <config> --chips N --shards K  crash-tolerant sharded
//                                               fleet F(t) sweep
//   obdrel serve <config> [--socket <path> | --stdin]  overload-safe
//                                               reliability query daemon
//   obdrel help | --help | -h   print usage to stdout, exit 0
//   obdrel <cmd> help           same, for every subcommand
//
// Global flags:
//   --strict      escalate degraded results to errors (exit code 6)
//   --threads <n> worker threads for the shared analysis pool
//                 (0 = auto-detect; overrides OBDREL_THREADS and the
//                 `threads` config key)
//   --checkpoint-dir <dir>   durable DRM state directory (drm run)
//   --resume                 recover DRM state from the checkpoint dir
//   --checkpoint-every <n>   steps between snapshots (default 16)
//
// Fault injection (testing): set OBDREL_FAULTS or the `faults` config key
// to a spec like "thermal.sor,drm.thermal:3" (see docs/ROBUSTNESS.md).
//
// Exit codes follow the obd::ErrorCode taxonomy:
//   0 success   1 internal   2 config/usage   3 io   4 invalid input
//   5 numerical nonconvergence   6 degraded under --strict
//
// Config keys (key = value, '#' comments):
//   design        c1..c6 | ev6 | manycore | path to a HotSpot .flp
//   device_density  devices per mm^2 for .flp designs   (default 3000)
//   vdd           supply voltage [V]                    (default 1.2)
//   rho_dist      normalized correlation distance        (default 0.5)
//   grid          correlation grid cells per side        (default 25)
//   ambient_c     ambient temperature [C]                (default 45)
//   variance_capture  PCA truncation share in (0, 1]     (default 0.999)
//   eigen_solver  dense | truncated (PCA eigensolver)    (default dense)
//   methods       any of: st_fast st_mc hybrid guard mc  (default all)
//   mc_chips      Monte Carlo sample chips               (default 500)
//   device_sampling   per_device | binned (MC sampler)   (default per_device)
//   targets       failure-quantile list                  (default 1e-6 1e-5)
//   strict        bool: same as --strict                 (default false)
//   threads       shared-pool worker threads             (default auto)
//   simd          auto | avx2 | scalar SIMD dispatch     (default auto)
//                 (overrides the OBDREL_SIMD environment variable)
//   thermal_sweep lexicographic | redblack SOR order     (default lexicographic)
//   faults        fault-injection spec (testing only)
//   mechanisms    comma list: oxide[,nbti][,em][,hci]    (default oxide)
//                 competing-risks failure mechanisms; oxide is the paper's
//                 base model and must always be listed
//   redundancy    spare groups "grp:blk1+blk2:spares,..." (default none)
//   mech_tref_c / mech_vref    aging reference conditions (default 100 / 1.2)
//   {nbti,em,hci}_t50_years    median TTF at reference    (default 28/45/55)
//   {nbti,em,hci}_sigma        lognormal shape            (default .35/.45/.4)
//   {nbti,em,hci}_ea_ev        Arrhenius activation [eV]  (default .18/.9/-.05)
//   {nbti,em,hci}_gamma_v      voltage acceleration [1/V] (default 10/2/15)
//   {nbti,em,hci}_activity_exp activity power-law exponent (default .5/2/1)
//
// Fleet config keys (obdrel fleet):
//   seed              per-chip RNG stream base seed      (default 99)
//   mc_bins           thickness histogram bins           (default 512)
//   device_sampling   per_device | binned                (default binned)
//   fleet_points      sweep points, log-spaced           (default 8)
//   fleet_t_min_years sweep start [years]                (default 1)
//   fleet_t_max_years sweep end [years]                  (default 20)
//   fleet_times_years explicit sweep times [years] (overrides the above)
//   fleet_corners     "dt:vdd:act,..." operating corners appended to the
//                     report as an F(t) sweep; `surrogate on` answers them
//                     through the certified Chebyshev fast path
//
// Fleet flags: --chips N (required), --shards K (default 4),
//   --fleet-dir <dir> (default fleet.state), --max-restarts <n>,
//   --backoff-ms / --backoff-cap-ms, --stale-ms, --heartbeat-ms,
//   --poll-ms, --fleet-parallel <n>, and the chaos-harness knobs
//   --chaos-kill/--chaos-stop <rate>, --chaos-stop-ms, --chaos-seed.
//   --worker <k> is the hidden worker-mode entry the supervisor uses.
//   Workers never receive --strict: strictness is supervisor policy
//   (degraded exit after the report), not a reason to kill workers.
//
// Serve config keys (obdrel serve; flags of the same name win):
//   serve_socket      unix socket path                   (default obdrel.sock)
//   serve_stdin       bool: serve stdin -> stdout        (default false)
//   serve_cache_dir   durable table-cache directory      (default off)
//   serve_cache_mb    memory-tier cache budget [MiB]     (default 256)
//   serve_queue       admission queue bound              (default 1024)
//   serve_batch       queries coalesced per batch        (default 64)
//   serve_deadline_ms default per-request deadline, 0=off (default 0)
//   serve_n_gamma / serve_n_b   served-table dimensions  (default 100)
//
// Surrogate fast path (obdrel serve and the fleet corner sweep):
//   surrogate         bool: certified Chebyshev F(t) tier (default off)
//   surrogate_tol     certified max-relative-error bound  (default 1e-4)
//   surrogate_dt_c / surrogate_dvdd   domain half-widths  (12 C / 0.08 V)
//   surrogate_act_lo / surrogate_act_hi  activity box     (0.5 / 1.5)
//   surrogate_t_min_years / surrogate_t_max_years  t box  (0.5 / 40)
//   surrogate_n_t / surrogate_n_t_aging / surrogate_n_dt /
//     surrogate_n_vdd / surrogate_n_act   CGL node counts (15/25/13/11/9)
//   surrogate_fit_n_gamma / surrogate_fit_n_b  fit-reference table
//                                               resolution (256 / 128)
//   surrogate_probes  low-discrepancy certification probes (default 512)
//
// DRM-run config keys (obdrel drm run):
//   ladder        DVFS rungs `name:vdd:freq,...` slow->fast
//                 (default eco:1.0:1.2e9,mid:1.1:1.7e9,turbo:1.25:2.3e9)
//   lifetime_years      end-of-life target [years]       (default 10)
//   failure_budget      end-of-life failure budget       (default 1e-5)
//   control_interval_s  wall-clock per step [s]          (default 30 days)
//   max_activity        telemetry plausibility clamp     (default 2)
//   step_deadline_ms    watchdog deadline per step, 0=off (default 0)
//   checkpoint_every    steps between snapshots          (default 16)
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "chip/design.hpp"
#include "chip/floorplan_io.hpp"
#include "common/arena.hpp"
#include "common/config.hpp"
#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/parallel.hpp"
#include "common/stopwatch.hpp"
#include "core/analytic.hpp"
#include "core/guardband.hpp"
#include "core/hybrid.hpp"
#include "core/lifetime.hpp"
#include "core/montecarlo.hpp"
#include "core/report.hpp"
#include "drm/manager.hpp"
#include "drm/runtime.hpp"
#include "fleet/shard.hpp"
#include "fleet/supervisor.hpp"
#include "core/condition_eval.hpp"
#include "mech/spec.hpp"
#include "power/power.hpp"
#include "serve/engine.hpp"
#include "serve/server.hpp"
#include "surrogate/surrogate.hpp"
#include "simd/dispatch.hpp"
#include "thermal/solver.hpp"

namespace {

using namespace obd;

constexpr double kYear = 365.25 * 24.0 * 3600.0;

// Graceful-shutdown flag: SIGINT/SIGTERM request an orderly stop — the DRM
// loop flushes a final snapshot and the fleet supervisor kills its workers
// and merges whatever is durable. Either way the state directory resumes.
volatile std::sig_atomic_t g_signal = 0;

extern "C" void on_shutdown_signal(int) { g_signal = 1; }

void install_shutdown_handlers() {
  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);
}

// Validating replacement for the old bare std::stod(t_arg): a non-numeric
// or non-positive <t_seconds> names the offending argument instead of
// surfacing as "error: stod".
double parse_time_seconds(const std::string& arg) {
  double t = 0.0;
  try {
    std::size_t pos = 0;
    t = std::stod(arg, &pos);
    require(pos == arg.size(), ErrorCode::kConfig,
            "lut query: trailing characters in <t_seconds> argument '" +
                arg + "'");
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("lut query: <t_seconds> argument '" + arg +
                    "' is not a number",
                ErrorCode::kConfig);
  }
  require(std::isfinite(t) && t > 0.0, ErrorCode::kConfig,
          "lut query: <t_seconds> must be a positive finite time, got '" +
              arg + "'");
  return t;
}

chip::Design load_design(const Config& cfg) {
  const std::string design = cfg.get_string("design", "c1");
  if (design == "ev6" || design == "c6") return chip::make_ev6_design();
  if (design == "manycore") return chip::make_manycore_design();
  if (design.size() == 2 && design[0] == 'c' && design[1] >= '1' &&
      design[1] <= '6')
    return chip::make_benchmark(design[1] - '0');
  chip::FloorplanLoadOptions opts;
  opts.device_density = cfg.get_double("device_density", 3000.0);
  opts.name = design;
  return chip::load_floorplan_file(design, opts);
}

thermal::SweepOrder parse_thermal_sweep(const Config& cfg) {
  const std::string v = cfg.get_string("thermal_sweep", "lexicographic");
  if (v == "lexicographic") return thermal::SweepOrder::kLexicographic;
  if (v == "redblack") return thermal::SweepOrder::kRedBlack;
  throw Error(
      "thermal_sweep must be 'lexicographic' or 'redblack', got '" + v + "'",
      ErrorCode::kConfig);
}

struct Pipeline {
  chip::Design design;
  thermal::ThermalProfile profile;
  core::AnalyticReliabilityModel model;
  double vdd;
};

Pipeline run_pipeline(const Config& cfg) {
  Pipeline p{load_design(cfg), {}, core::AnalyticReliabilityModel{},
             cfg.get_double("vdd", 1.2)};
  power::PowerParams pp;
  pp.vdd = p.vdd;
  thermal::ThermalParams tp;
  tp.ambient_c = cfg.get_double("ambient_c", 45.0);
  tp.resolution = 48;
  tp.sweep = parse_thermal_sweep(cfg);
  p.profile = thermal::power_thermal_fixed_point(p.design, pp, tp, 2);
  return p;
}

var::EigenSolver parse_eigen_solver(const Config& cfg) {
  const std::string v = cfg.get_string("eigen_solver", "dense");
  if (v == "dense") return var::EigenSolver::kDense;
  if (v == "truncated") return var::EigenSolver::kTruncated;
  throw Error("eigen_solver must be 'dense' or 'truncated', got '" + v + "'",
              ErrorCode::kConfig);
}

core::DeviceSampling parse_device_sampling(const Config& cfg) {
  const std::string v = cfg.get_string("device_sampling", "per_device");
  if (v == "per_device") return core::DeviceSampling::kPerDevice;
  if (v == "binned") return core::DeviceSampling::kBinned;
  throw Error(
      "device_sampling must be 'per_device' or 'binned', got '" + v + "'",
      ErrorCode::kConfig);
}

core::ReliabilityProblem build_problem(const Config& cfg,
                                       const Pipeline& p) {
  core::ProblemOptions opts;
  opts.rho_dist = cfg.get_double("rho_dist", 0.5);
  // get_count rejects zero/negative values instead of letting them wrap
  // through size_t into absurd grid sizes.
  opts.grid_cells_per_side = cfg.get_count("grid", 25);
  opts.variance_capture = cfg.get_double("variance_capture", 0.999);
  require(opts.variance_capture > 0.0 && opts.variance_capture <= 1.0,
          ErrorCode::kConfig, "variance_capture must be in (0, 1]");
  opts.eigen_solver = parse_eigen_solver(cfg);
  opts.mechanisms = mech::parse_spec(cfg);
  // Validate device_sampling here too so a bad value fails with the config
  // exit code in every command, not only the ones that build an MC
  // analyzer (which re-read it at the use site).
  (void)parse_device_sampling(cfg);
  return core::ReliabilityProblem::build(p.design, var::VariationBudget{},
                                         p.model, p.profile.block_temps_c,
                                         p.vdd, opts);
}

// Surrogate fast-path configuration (shared by `serve` and the fleet
// corner sweep): every key defaults to the library's SurrogateOptions
// default, so `surrogate on` alone gives the certified 1e-4 setup.
surrogate::SurrogateOptions surrogate_options_from(const Config& cfg) {
  surrogate::SurrogateOptions so;
  so.tol = cfg.get_double("surrogate_tol", so.tol);
  so.dt_c = cfg.get_double("surrogate_dt_c", so.dt_c);
  so.dvdd = cfg.get_double("surrogate_dvdd", so.dvdd);
  so.act_lo = cfg.get_double("surrogate_act_lo", so.act_lo);
  so.act_hi = cfg.get_double("surrogate_act_hi", so.act_hi);
  so.t_lo_years = cfg.get_double("surrogate_t_min_years", so.t_lo_years);
  so.t_hi_years = cfg.get_double("surrogate_t_max_years", so.t_hi_years);
  so.n_t = cfg.get_count("surrogate_n_t", so.n_t);
  so.n_t_aging = cfg.get_count("surrogate_n_t_aging", so.n_t_aging);
  so.n_dt = cfg.get_count("surrogate_n_dt", so.n_dt);
  so.n_vdd = cfg.get_count("surrogate_n_vdd", so.n_vdd);
  so.n_act = cfg.get_count("surrogate_n_act", so.n_act);
  so.fit_n_gamma = cfg.get_count("surrogate_fit_n_gamma", so.fit_n_gamma);
  so.fit_n_b = cfg.get_count("surrogate_fit_n_b", so.fit_n_b);
  so.probe_points = cfg.get_count("surrogate_probes", so.probe_points);
  return so;
}

int cmd_thermal(const Config& cfg) {
  const Pipeline p = run_pipeline(cfg);
  const auto power = power::estimate_power(p.design, {.vdd = p.vdd},
                                           p.profile.block_temps_c);
  std::printf("design %s: %zu blocks, %zu devices, %.1f W\n",
              p.design.name.c_str(), p.design.blocks.size(),
              p.design.total_devices(), power.total());
  std::printf("%-12s %8s %8s\n", "block", "T [C]", "P [W]");
  for (std::size_t j = 0; j < p.design.blocks.size(); ++j)
    std::printf("%-12s %8.1f %8.2f\n", p.design.blocks[j].name.c_str(),
                p.profile.block_temps_c[j], power.block_watts[j]);
  std::printf("field: %.1f .. %.1f C\n", p.profile.min_c(),
              p.profile.max_c());
  return 0;
}

int cmd_analyze(const Config& cfg) {
  const Pipeline p = run_pipeline(cfg);
  const auto problem = build_problem(cfg, p);
  std::set<std::string> methods;
  {
    std::istringstream is(
        cfg.get_string("methods", "st_fast st_mc hybrid guard mc"));
    std::string tok;
    while (is >> tok) methods.insert(tok);
  }
  const auto targets = cfg.get_doubles("targets", {1e-6, 1e-5});
  const std::size_t mc_chips = cfg.get_count("mc_chips", 500);

  std::printf("design %s: %zu devices, %zu blocks, Vdd %.2f V, "
              "T %.1f..%.1f C\n\n",
              p.design.name.c_str(), p.design.total_devices(),
              p.design.blocks.size(), p.vdd, p.profile.min_c(),
              p.profile.max_c());
  std::printf("%-10s %14s %16s %12s\n", "method", "target", "lifetime [y]",
              "runtime [s]");

  auto report = [&](const char* name, auto&& lifetime_fn, double seconds) {
    for (double target : targets) {
      std::printf("%-10s %14g %16.3f %12.3f\n", name, target,
                  lifetime_fn(target) / kYear, seconds);
    }
  };

  if (methods.count("st_fast") != 0) {
    Stopwatch sw;
    const core::AnalyticAnalyzer a(problem);
    report("st_fast", [&](double t) { return a.lifetime_at(t); },
           sw.seconds());
  }
  if (methods.count("st_mc") != 0) {
    Stopwatch sw;
    const core::StMcAnalyzer a(problem, {});
    report("st_MC", [&](double t) { return a.lifetime_at(t); },
           sw.seconds());
  }
  if (methods.count("hybrid") != 0) {
    Stopwatch sw;
    const core::HybridEvaluator a(problem);
    report("hybrid", [&](double t) { return a.lifetime_at(t); },
           sw.seconds());
  }
  if (methods.count("guard") != 0) {
    Stopwatch sw;
    const core::GuardBandAnalyzer a(problem);
    report("guard", [&](double t) { return a.lifetime_at(t); },
           sw.seconds());
  }
  if (methods.count("mc") != 0) {
    Stopwatch sw;
    const core::MonteCarloAnalyzer a(
        problem,
        {.chip_samples = mc_chips, .sampling = parse_device_sampling(cfg)});
    report("MC", [&](double t) { return a.lifetime_at(t); }, sw.seconds());
  }
  return 0;
}

int cmd_report(const Config& cfg) {
  const Pipeline p = run_pipeline(cfg);
  const auto problem = build_problem(cfg, p);
  const auto report = core::make_signoff_report(
      problem, p.model, cfg.get_doubles("targets", {1e-6, 1e-5}));
  std::fputs(report.render().c_str(), stdout);
  return 0;
}

int cmd_lut(const Config& cfg, const std::string& action,
            const std::string& lut_path, const char* t_arg) {
  const Pipeline p = run_pipeline(cfg);
  const auto problem = build_problem(cfg, p);
  if (action == "build") {
    const core::HybridEvaluator hybrid(problem);
    std::ofstream out(lut_path);
    require(out.good(), ErrorCode::kIo,
            "lut build: cannot open '" + lut_path + "'");
    hybrid.save(out);
    std::printf("wrote %zu block tables to %s\n", problem.blocks().size(),
                lut_path.c_str());
    return 0;
  }
  if (action == "query") {
    require(t_arg != nullptr, ErrorCode::kConfig,
            "lut query: missing <t_seconds>");
    std::ifstream in(lut_path);
    require(in.good(), ErrorCode::kIo,
            "lut query: cannot open '" + lut_path + "'");
    const auto hybrid = core::HybridEvaluator::load(in, problem);
    const double t = parse_time_seconds(t_arg);
    std::printf("F(%.4g s) = %.6e   (R = %.9f)\n", t,
                hybrid.failure_probability(t), hybrid.reliability(t));
    return 0;
  }
  throw Error("lut: unknown action '" + action + "' (build|query)",
              ErrorCode::kConfig);
}

// DVFS ladder from the `ladder` config key: `name:vdd:freq,...`, sorted
// slow -> fast (validated by the manager).
std::vector<drm::OperatingPoint> parse_ladder(const Config& cfg) {
  const std::string spec = cfg.get_string(
      "ladder", "eco:1.0:1.2e9,mid:1.1:1.7e9,turbo:1.25:2.3e9");
  std::vector<drm::OperatingPoint> ladder;
  std::istringstream is(spec);
  std::string entry;
  while (std::getline(is, entry, ',')) {
    if (entry.empty()) continue;
    const std::size_t c1 = entry.find(':');
    const std::size_t c2 =
        c1 == std::string::npos ? std::string::npos : entry.find(':', c1 + 1);
    require(c2 != std::string::npos, ErrorCode::kConfig,
            "ladder: entry '" + entry + "' is not name:vdd:freq");
    drm::OperatingPoint op;
    op.name = entry.substr(0, c1);
    try {
      op.vdd = std::stod(entry.substr(c1 + 1, c2 - c1 - 1));
      op.frequency = std::stod(entry.substr(c2 + 1));
    } catch (const std::exception&) {
      throw Error("ladder: entry '" + entry + "' has non-numeric vdd/freq",
                  ErrorCode::kConfig);
    }
    require(op.name.size() > 0 && std::isfinite(op.vdd) &&
                std::isfinite(op.frequency),
            ErrorCode::kConfig, "ladder: entry '" + entry + "' is invalid");
    ladder.push_back(std::move(op));
  }
  require(!ladder.empty(), ErrorCode::kConfig, "ladder: no rungs given");
  return ladder;
}

// One activity sample per line (first comma/whitespace-separated field);
// blank lines and '#' comments are skipped. An unreadable sample becomes
// NaN with a diagnostic — the control loop must keep running on corrupt
// telemetry, and the manager reads NaN as the guard-band-safe full load.
std::vector<double> read_telemetry(std::istream& in) {
  std::vector<double> samples;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::string token =
        line.substr(first, line.find_first_of(", \t\r", first) - first);
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size()) {
      std::ostringstream msg;
      msg << "telemetry line " << lineno << ": unreadable sample '" << token
          << "'; treated as NaN (guard-band)";
      diagnostics().warn("drm.telemetry", msg.str());
      v = std::numeric_limits<double>::quiet_NaN();
    }
    samples.push_back(v);
  }
  return samples;
}

int cmd_drm_run(const Config& cfg, const std::string& telemetry_path,
                drm::RuntimeOptions ropts) {
  const Pipeline p = run_pipeline(cfg);
  const auto problem = build_problem(cfg, p);

  drm::DrmOptions dopts;
  dopts.lifetime_target_s = cfg.get_double("lifetime_years", 10.0) * kYear;
  dopts.failure_budget = cfg.get_double("failure_budget", 1e-5);
  dopts.control_interval_s =
      cfg.get_double("control_interval_s", 30.0 * 86400.0);
  dopts.max_activity = cfg.get_double("max_activity", 2.0);
  dopts.fallback_temp_c = cfg.get_double("fallback_temp_c", 110.0);
  dopts.step_deadline_ms = cfg.get_double("step_deadline_ms", 0.0);
  if (ropts.checkpoint_every == 0)
    ropts.checkpoint_every = cfg.get_count("checkpoint_every", 16);

  drm::DrmRuntime runtime(problem, p.model, parse_ladder(cfg), dopts,
                          ropts);
  if (runtime.recovery().source != drm::RecoveryInfo::Source::kFresh)
    std::fprintf(stderr, "resume: %s\n",
                 runtime.recovery().detail.c_str());

  std::vector<double> samples;
  if (telemetry_path == "-") {
    samples = read_telemetry(std::cin);
  } else {
    std::ifstream in(telemetry_path);
    require(in.good(), ErrorCode::kIo,
            "drm run: cannot open telemetry file '" + telemetry_path + "'");
    samples = read_telemetry(in);
  }
  require(!samples.empty(), ErrorCode::kInvalidInput,
          "drm run: telemetry '" + telemetry_path + "' has no samples");

  // A resumed run has already accounted for the first step_count() samples
  // of the trace; only the remainder is (re)executed, so the emitted rows
  // are exactly the rows an uninterrupted run would have produced for the
  // same steps.
  const std::size_t start = runtime.step_count();
  if (start > samples.size())
    std::fprintf(stderr,
                 "note: resumed state is %zu step(s) ahead of the "
                 "telemetry trace\n",
                 start - samples.size());
  std::printf(
      "step,activity,op_index,op_name,performance_hz,damage,budget_line,"
      "max_temp_c,degraded\n");
  // SIGINT/SIGTERM stop the loop at a step boundary — never mid
  // journal-append — and still reach the final checkpoint below, so Ctrl-C
  // is resumable exactly like a crash, minus the replay.
  install_shutdown_handlers();
  for (std::size_t i = start; i < samples.size() && g_signal == 0; ++i) {
    const drm::DrmStep s = runtime.step(samples[i]);
    std::printf("%zu,%.17g,%zu,%s,%.17g,%.17g,%.17g,%.17g,%d\n",
                runtime.step_count(), samples[i], s.op_index,
                runtime.manager().ladder()[s.op_index].name.c_str(),
                s.performance, s.damage, s.budget_line, s.max_temp_c,
                s.degraded ? 1 : 0);
  }
  // Final anchor: an orderly exit leaves a snapshot at the last step, so a
  // later resume replays nothing.
  runtime.checkpoint_now();
  runtime.publish_step_stats();
  if (g_signal != 0)
    std::fprintf(stderr,
                 "signal: stopped after %zu step(s); final snapshot "
                 "flushed — rerun with --resume to continue\n",
                 runtime.step_count());
  return 0;
}

// ---------------------------------------------------------------------------
// obdrel fleet: crash-tolerant sharded fleet sweeps (src/fleet)
// ---------------------------------------------------------------------------

struct FleetFlags {
  std::uint64_t chips = 0;       ///< required
  std::uint64_t shards = 4;
  long long worker = -1;         ///< >= 0: hidden worker mode for shard k
  std::string dir = "fleet.state";
  std::uint64_t max_restarts = 5;
  std::uint64_t backoff_ms = 200;
  std::uint64_t backoff_cap_ms = 5000;
  std::uint64_t stale_ms = 5000;
  std::uint64_t heartbeat_ms = 100;
  std::uint64_t poll_ms = 25;
  std::uint64_t max_parallel = 0;
  double chaos_kill = 0.0;
  double chaos_stop = 0.0;
  std::uint64_t chaos_stop_ms = 300;
  std::uint64_t chaos_seed = 1;
};

core::DeviceSampling parse_fleet_sampling(const Config& cfg) {
  // Fleet sweeps default to the binned sampler: the per-device reference
  // is impractical at million-chip populations (still selectable).
  const std::string v = cfg.get_string("device_sampling", "binned");
  if (v == "per_device") return core::DeviceSampling::kPerDevice;
  if (v == "binned") return core::DeviceSampling::kBinned;
  throw Error(
      "device_sampling must be 'per_device' or 'binned', got '" + v + "'",
      ErrorCode::kConfig);
}

// Canonical identity of everything in the config that shapes the problem
// build or the sampler — folded into the fleet fingerprint so durable
// state from a different model configuration is rejected, not merged.
std::string fleet_problem_key(const Config& cfg) {
  const auto d = [](double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return std::string(buf);
  };
  std::ostringstream os;
  os << "design=" << cfg.get_string("design", "c1")
     << ";device_density=" << d(cfg.get_double("device_density", 3000.0))
     << ";vdd=" << d(cfg.get_double("vdd", 1.2))
     << ";rho_dist=" << d(cfg.get_double("rho_dist", 0.5))
     << ";grid=" << cfg.get_count("grid", 25)
     << ";ambient_c=" << d(cfg.get_double("ambient_c", 45.0))
     << ";variance_capture=" << d(cfg.get_double("variance_capture", 0.999))
     << ";eigen_solver=" << cfg.get_string("eigen_solver", "dense")
     << ";thermal_sweep=" << cfg.get_string("thermal_sweep", "lexicographic")
     << ";device_sampling=" << cfg.get_string("device_sampling", "binned");
  // Appended only for non-default specs so existing fleet state
  // directories keep matching their problem keys byte for byte.
  const std::string mechanisms = mech::parse_spec(cfg).canonical();
  if (mechanisms != "oxide") os << ";mechanisms=" << mechanisms;
  return os.str();
}

fleet::FleetSpec make_fleet_spec(const Config& cfg, std::uint64_t chips) {
  fleet::FleetSpec spec;
  spec.chips = chips;
  spec.seed = static_cast<std::uint64_t>(cfg.get_count("seed", 99));
  spec.thickness_bins = cfg.get_count("mc_bins", 512);
  spec.sampling = parse_fleet_sampling(cfg);
  spec.problem_key = fleet_problem_key(cfg);
  if (cfg.has("fleet_times_years")) {
    for (const double y : cfg.get_doubles("fleet_times_years", {})) {
      require(y > 0.0, ErrorCode::kConfig,
              "fleet_times_years must be positive");
      spec.ts.push_back(y * kYear);
    }
  } else {
    const std::size_t np = cfg.get_count("fleet_points", 8);
    const double t0 = cfg.get_double("fleet_t_min_years", 1.0) * kYear;
    const double t1 = cfg.get_double("fleet_t_max_years", 20.0) * kYear;
    require(t0 > 0.0 && t1 >= t0, ErrorCode::kConfig,
            "fleet sweep needs 0 < fleet_t_min_years <= fleet_t_max_years");
    for (std::size_t i = 0; i < np; ++i) {
      const double u =
          (np == 1) ? 0.0
                    : static_cast<double>(i) / static_cast<double>(np - 1);
      spec.ts.push_back(t0 * std::pow(t1 / t0, u));
    }
  }
  require(!spec.ts.empty(), ErrorCode::kConfig, "fleet: empty sweep");
  return spec;
}

std::string self_exe_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

// Opt-in fleet corner sweep: F(t) at each operating corner of the
// `fleet_corners` list ("dt:vdd:act,..."), over the fleet sweep times.
// With `surrogate on` a certified Chebyshev model answers each corner
// through the plan_corner/evaluate_at fast path; corners (or times) the
// certificate does not cover fall through to the exact incremental
// evaluator, flagged surrogate=0 line by line.
void run_fleet_corner_sweep(const Config& cfg,
                            const core::ReliabilityProblem& problem,
                            const std::vector<double>& ts) {
  struct Corner {
    double dt, vdd, act;
  };
  std::vector<Corner> corners;
  {
    std::istringstream list(cfg.get_string("fleet_corners", ""));
    std::string item;
    while (std::getline(list, item, ',')) {
      if (item.empty()) continue;
      Corner c{};
      char sep1 = 0;
      char sep2 = 0;
      std::istringstream fields(item);
      require(static_cast<bool>(fields >> c.dt >> sep1 >> c.vdd >> sep2 >>
                                c.act) &&
                  sep1 == ':' && sep2 == ':' && c.vdd > 0.0 && c.act > 0.0,
              ErrorCode::kConfig,
              "fleet_corners: corner '" + item +
                  "' is not dt:vdd:act with positive vdd and act");
      corners.push_back(c);
    }
  }
  if (corners.empty()) return;

  const bool use_surrogate = cfg.get_bool("surrogate", false);
  std::optional<surrogate::SurrogateModel> model;
  if (use_surrogate) {
    Stopwatch sw;
    model = surrogate::SurrogateModel::fit(problem,
                                           surrogate_options_from(cfg));
    const auto& cert = model->certificate();
    std::printf(
        "surrogate: certified=%d max_rel_error=%.3g tol=%.3g probes=%zu "
        "fit=%.2fs\n",
        cert.certified ? 1 : 0, cert.max_rel_error, cert.tol, cert.probes,
        sw.seconds());
  }

  const core::HybridEvaluator hybrid(problem, {});
  core::ConditionEvaluator exact(hybrid);
  std::printf("corner sweep: %zu corner(s) x %zu time(s), surrogate %s\n",
              corners.size(), ts.size(), use_surrogate ? "on" : "off");
  for (const Corner& c : corners) {
    // Corner-axis domain check (the per-time check below handles t): plan
    // once per corner only when the corner itself is certified coverage.
    const bool planned = [&] {
      if (!model.has_value() || !model->certificate().certified)
        return false;
      const surrogate::SurrogateDomain& d = model->domain();
      return model->in_domain(c.dt, c.vdd, c.act,
                              std::clamp(ts.front(), d.t_lo, d.t_hi));
    }();
    std::vector<double> plan;
    if (planned) plan = model->plan_corner(c.dt, c.vdd, c.act);
    bool exact_corner_set = false;
    for (const double t : ts) {
      const bool fast = planned && model->in_domain(c.dt, c.vdd, c.act, t);
      double f = 0.0;
      if (fast) {
        f = model->evaluate_at(plan, t);
      } else {
        if (!exact_corner_set) {
          exact.set_corner(c.dt, c.vdd, c.act);
          exact_corner_set = true;
        }
        f = exact.evaluate(t);
      }
      std::printf("corner dt=%g vdd=%g act=%g t_years=%.6g f=%.17g "
                  "surrogate=%d\n",
                  c.dt, c.vdd, c.act, t / kYear, f, fast ? 1 : 0);
    }
  }
}

int cmd_fleet(const Config& cfg, const std::string& cfg_path,
              const FleetFlags& ff, long long threads_flag,
              const char* argv0) {
  require(ff.chips > 0, ErrorCode::kConfig,
          "fleet: --chips must be a positive chip count");
  require(ff.shards >= 1, ErrorCode::kConfig,
          "fleet: --shards must be at least 1");
  const Pipeline p = run_pipeline(cfg);
  const auto problem = build_problem(cfg, p);
  const fleet::FleetSpec spec = make_fleet_spec(cfg, ff.chips);

  if (ff.worker >= 0) {
    require(static_cast<std::uint64_t>(ff.worker) < ff.shards,
            ErrorCode::kConfig, "fleet: --worker index out of range");
    fleet::WorkerOptions w;
    w.dir = ff.dir;
    w.shard = static_cast<std::uint64_t>(ff.worker);
    w.shards = ff.shards;
    w.heartbeat_ms = ff.heartbeat_ms;
    fleet::run_worker(problem, spec, w);
    return 0;
  }

  if (::mkdir(ff.dir.c_str(), 0755) != 0 && errno != EEXIST)
    throw Error("fleet: cannot create state directory '" + ff.dir + "'",
                ErrorCode::kIo);

  fleet::SupervisorOptions so;
  so.dir = ff.dir;
  so.shards = ff.shards;
  so.max_parallel = ff.max_parallel;
  so.max_restarts = ff.max_restarts;
  so.backoff_base_ms = ff.backoff_ms;
  so.backoff_cap_ms = ff.backoff_cap_ms;
  so.heartbeat_stale_ms = ff.stale_ms;
  so.poll_ms = ff.poll_ms;
  so.chaos.kill_rate = ff.chaos_kill;
  so.chaos.stop_rate = ff.chaos_stop;
  so.chaos.stop_ms = ff.chaos_stop_ms;
  so.chaos.seed = ff.chaos_seed;
  so.stop_flag = &g_signal;
  // Workers re-invoke this binary in --worker mode with the spec-shaping
  // flags only: no --strict (supervisor policy), no chaos knobs.
  so.worker_argv = {self_exe_path(argv0), "fleet", cfg_path,
                    "--chips", std::to_string(ff.chips),
                    "--shards", std::to_string(ff.shards),
                    "--fleet-dir", ff.dir,
                    "--heartbeat-ms", std::to_string(ff.heartbeat_ms)};
  if (threads_flag >= 0) {
    so.worker_argv.push_back("--threads");
    so.worker_argv.push_back(std::to_string(threads_flag));
  }

  install_shutdown_handlers();
  fleet::Supervisor supervisor(spec, so);
  const fleet::FleetOutcome outcome = supervisor.run();

  // Report first, diagnostics second: strict-mode escalation must never
  // outrun the (partial) results the user paid for.
  std::fputs(fleet::render_report(outcome.report).c_str(), stdout);
  if (cfg.has("fleet_corners"))
    run_fleet_corner_sweep(cfg, problem, spec.ts);
  std::fflush(stdout);
  if (outcome.interrupted)
    std::fprintf(stderr,
                 "signal: fleet stopped; durable shard state kept in '%s' "
                 "— rerun the same command to continue\n",
                 ff.dir.c_str());
  fleet::publish_diagnostics(outcome);
  return 0;
}

// ---------------------------------------------------------------------------
// obdrel serve: overload-safe reliability query daemon (src/serve)
// ---------------------------------------------------------------------------

struct ServeFlags {
  std::string socket;     ///< empty: take the serve_socket config key
  bool use_stdin = false;
  std::string cache_dir;  ///< empty: take the serve_cache_dir config key
  long long cache_mb = -1;     ///< -1: take the config key
  long long queue = -1;        ///< -1: take the config key
  long long batch = -1;        ///< -1: take the config key
  long long deadline_ms = -1;  ///< -1: take the config key
};

int cmd_serve(const Config& cfg, const ServeFlags& sf) {
  serve::EngineOptions eo;
  eo.cache.dir = !sf.cache_dir.empty()
                     ? sf.cache_dir
                     : cfg.get_string("serve_cache_dir", "");
  const long long mb = sf.cache_mb >= 0
                           ? sf.cache_mb
                           : static_cast<long long>(
                                 cfg.get_count("serve_cache_mb", 256));
  require(mb > 0, ErrorCode::kConfig,
          "serve: cache budget must be a positive MiB count");
  eo.cache.byte_budget = static_cast<std::size_t>(mb) << 20;
  eo.n_gamma = cfg.get_count("serve_n_gamma", 100);
  eo.n_b = cfg.get_count("serve_n_b", 100);
  eo.deadline_ms = sf.deadline_ms >= 0
                       ? static_cast<double>(sf.deadline_ms)
                       : cfg.get_double("serve_deadline_ms", 0.0);
  require(eo.deadline_ms >= 0.0, ErrorCode::kConfig,
          "serve: serve_deadline_ms must be non-negative (0 disables)");
  eo.surrogate = cfg.get_bool("surrogate", false);
  if (eo.surrogate) eo.surrogate_opts = surrogate_options_from(cfg);

  serve::ServerOptions so;
  so.use_stdin = sf.use_stdin || cfg.get_bool("serve_stdin", false);
  so.socket_path =
      !sf.socket.empty() ? sf.socket : cfg.get_string("serve_socket",
                                                      "obdrel.sock");
  so.queue_limit =
      sf.queue >= 0 ? static_cast<std::size_t>(sf.queue)
                    : cfg.get_count("serve_queue", 1024);
  require(so.queue_limit >= 1, ErrorCode::kConfig,
          "serve: admission queue bound must be at least 1");
  so.batch_max = sf.batch >= 1 ? static_cast<std::size_t>(sf.batch)
                               : cfg.get_count("serve_batch", 64);
  so.stop_flag = &g_signal;

  serve::QueryEngine engine(cfg, eo);
  install_shutdown_handlers();
  serve::Server server(engine, so);
  return server.run();
}

int usage(std::FILE* out, int rc) {
  std::fprintf(out,
               "usage: obdrel [--strict] analyze <config>\n"
               "       obdrel [--strict] report <config>\n"
               "       obdrel [--strict] thermal <config>\n"
               "       obdrel [--strict] lut build <config> <out-file>\n"
               "       obdrel [--strict] lut query <config> <lut-file> "
               "<t_seconds>\n"
               "       obdrel [--strict] drm run <config> "
               "<telemetry.csv|->\n"
               "           [--checkpoint-dir <dir>] [--resume] "
               "[--checkpoint-every <n>]\n"
               "       obdrel [--strict] fleet <config> --chips <N> "
               "[--shards <K>]\n"
               "           [--fleet-dir <dir>] [--max-restarts <n>] "
               "[--backoff-ms <ms>]\n"
               "           [--backoff-cap-ms <ms>] [--stale-ms <ms>] "
               "[--heartbeat-ms <ms>]\n"
               "           [--fleet-parallel <n>] [--chaos-kill <rate>] "
               "[--chaos-stop <rate>]\n"
               "       obdrel [--strict] serve <config> "
               "[--socket <path> | --stdin]\n"
               "           [--cache-dir <dir>] [--cache-mb <n>] "
               "[--queue <n>] [--batch <n>]\n"
               "           [--deadline-ms <ms>]\n"
               "       obdrel help | --help | -h   (or: obdrel <cmd> help)\n"
               "\n"
               "--strict escalates degraded results to errors.\n"
               "--threads <n> sizes the shared analysis pool (0 = auto);\n"
               "it overrides OBDREL_THREADS and the `threads` config key.\n"
               "The `simd` config key (auto|avx2|scalar, default auto)\n"
               "selects the SIMD kernel dispatch level; it overrides the\n"
               "OBDREL_SIMD environment variable. The `thermal_sweep` key\n"
               "(lexicographic|redblack) picks the SOR cell-visit order.\n"
               "drm run drives the crash-safe DRM service loop from a\n"
               "telemetry trace ('-' reads stdin); --checkpoint-dir makes\n"
               "its state durable and --resume recovers it after a crash.\n"
               "fleet partitions an N-chip F(t) sweep over K supervised\n"
               "worker processes with per-shard checkpoints: any crash\n"
               "schedule (and any K / thread count) yields a byte-identical\n"
               "report, and rerunning the command resumes durable state.\n"
               "serve runs a long-lived F(t) query daemon over a unix\n"
               "socket (or stdin with --stdin): newline-framed key=value\n"
               "requests, an LRU table cache with an optional durable disk\n"
               "tier (--cache-dir), bounded-queue load shedding, deadline\n"
               "degradation, and SIGTERM/SIGINT graceful drain.\n"
               "exit codes: 0 ok, 1 internal, 2 config/usage, 3 io,\n"
               "            4 invalid input, 5 nonconvergence, 6 degraded "
               "(strict)\n");
  return rc;
}

int usage() { return usage(stderr, 2); }

// Applies the robustness knobs shared by every command, after the config
// parses but before any numerics run. The --threads flag (threads_flag
// >= 0) wins over the `threads` config key, which wins over the
// OBDREL_THREADS environment variable.
void apply_runtime_options(const Config& cfg, bool strict_flag,
                           long long threads_flag) {
  set_strict_mode(strict_flag || cfg.get_bool("strict", false));
  if (cfg.has("faults")) fault::arm(cfg.get_string("faults"));
  if (cfg.has("simd")) simd::configure(cfg.get_string("simd"));
  // Validate thermal_sweep here so a bad value fails with the config exit
  // code in every command, not only the ones that run the thermal solve.
  (void)parse_thermal_sweep(cfg);
  if (threads_flag >= 0) {
    par::set_threads(static_cast<std::size_t>(threads_flag));
  } else if (cfg.has("threads")) {
    par::set_threads(cfg.get_count("threads", 1));
  }
}

// Reports collected degradation warnings; returns the adjusted exit code.
int finish(int rc) {
  par::publish_stats();
  publish_arena_stats();
  simd::publish_level();
  const std::string stats = diagnostics().render_stats();
  if (!stats.empty()) std::fputs(stats.c_str(), stderr);
  if (diagnostics().degraded()) {
    std::fputs(diagnostics().render().c_str(), stderr);
    std::fprintf(stderr,
                 "note: result is degraded (%zu warning%s); rerun with "
                 "--strict to escalate\n",
                 diagnostics().size(),
                 diagnostics().size() == 1 ? "" : "s");
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  bool strict_flag = false;
  long long threads_flag = -1;  // -1 = not given on the command line
  drm::RuntimeOptions ropts;
  ropts.checkpoint_every = 0;  // 0 = take the config key / default
  FleetFlags ff;
  ServeFlags sf;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--strict") {
      strict_flag = true;
      continue;
    }
    if (a == "--help" || a == "-h") return usage(stdout, 0);
    if (a == "--resume") {
      ropts.resume = true;
      continue;
    }
    if (a == "--stdin") {
      sf.use_stdin = true;
      continue;
    }
    if (a == "--checkpoint-dir" || a == "--checkpoint-every" ||
        a == "--threads" || a == "--chips" || a == "--shards" ||
        a == "--worker" || a == "--fleet-dir" || a == "--max-restarts" ||
        a == "--backoff-ms" || a == "--backoff-cap-ms" ||
        a == "--stale-ms" || a == "--heartbeat-ms" || a == "--poll-ms" ||
        a == "--fleet-parallel" || a == "--chaos-kill" ||
        a == "--chaos-stop" || a == "--chaos-stop-ms" ||
        a == "--chaos-seed" || a == "--socket" || a == "--cache-dir" ||
        a == "--cache-mb" || a == "--queue" || a == "--batch" ||
        a == "--deadline-ms") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error [config]: %s needs a value\n",
                     a.c_str());
        return usage();
      }
      const std::string value = argv[++i];
      if (a == "--checkpoint-dir") {
        ropts.checkpoint_dir = value;
        continue;
      }
      if (a == "--fleet-dir") {
        ff.dir = value;
        continue;
      }
      if (a == "--socket") {
        sf.socket = value;
        continue;
      }
      if (a == "--cache-dir") {
        sf.cache_dir = value;
        continue;
      }
      if (a == "--chaos-kill" || a == "--chaos-stop") {
        char* end = nullptr;
        const double r = std::strtod(value.c_str(), &end);
        if (end != value.c_str() + value.size() || !(r >= 0.0) || r > 1.0) {
          std::fprintf(stderr,
                       "error [config]: %s needs a rate in [0, 1], got "
                       "'%s'\n",
                       a.c_str(), value.c_str());
          return usage();
        }
        (a == "--chaos-kill" ? ff.chaos_kill : ff.chaos_stop) = r;
        continue;
      }
      char* end = nullptr;
      const long long n = std::strtoll(value.c_str(), &end, 10);
      const bool integer_ok = end == value.c_str() + value.size();
      if (a == "--threads") {
        if (!integer_ok || n < 0) {
          std::fprintf(stderr,
                       "error [config]: --threads needs a non-negative "
                       "integer (0 = auto), got '%s'\n",
                       value.c_str());
          return usage();
        }
        threads_flag = n;
      } else if (a == "--checkpoint-every") {
        if (!integer_ok || n <= 0) {
          std::fprintf(stderr,
                       "error [config]: --checkpoint-every needs a "
                       "positive integer, got '%s'\n",
                       value.c_str());
          return usage();
        }
        ropts.checkpoint_every = static_cast<std::size_t>(n);
      } else {
        if (!integer_ok || n < 0) {
          std::fprintf(stderr,
                       "error [config]: %s needs a non-negative integer, "
                       "got '%s'\n",
                       a.c_str(), value.c_str());
          return usage();
        }
        const std::uint64_t u = static_cast<std::uint64_t>(n);
        if (a == "--chips") ff.chips = u;
        else if (a == "--shards") ff.shards = u;
        else if (a == "--worker") ff.worker = n;
        else if (a == "--max-restarts") ff.max_restarts = u;
        else if (a == "--backoff-ms") ff.backoff_ms = u;
        else if (a == "--backoff-cap-ms") ff.backoff_cap_ms = u;
        else if (a == "--stale-ms") ff.stale_ms = u;
        else if (a == "--heartbeat-ms") ff.heartbeat_ms = u;
        else if (a == "--poll-ms") ff.poll_ms = u;
        else if (a == "--fleet-parallel") ff.max_parallel = u;
        else if (a == "--chaos-stop-ms") ff.chaos_stop_ms = u;
        else if (a == "--chaos-seed") ff.chaos_seed = u;
        else if (a == "--cache-mb") sf.cache_mb = n;
        else if (a == "--queue") sf.queue = n;
        else if (a == "--batch") sf.batch = n;
        else if (a == "--deadline-ms") sf.deadline_ms = n;
      }
      continue;
    }
    if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error [config]: unknown flag '%s'\n",
                   a.c_str());
      return usage();
    }
    args.push_back(a);
  }
  try {
    fault::arm_from_env();
    simd::init_from_env();
    if (args.empty()) return usage();
    const std::string& cmd = args[0];
    if (cmd == "help") return usage(stdout, 0);
    // Reject unknown subcommands by name before any argument-count check:
    // `obdrel analzye cfg` must say what is wrong, not print bare usage.
    static const char* kCommands[] = {"analyze", "report", "thermal",
                                      "lut",     "drm",    "fleet",
                                      "serve"};
    bool known = false;
    for (const char* c : kCommands) known = known || cmd == c;
    if (!known) {
      std::fprintf(stderr,
                   "error [config]: unknown subcommand '%s' (valid: "
                   "analyze, report, thermal, lut, drm, fleet, serve, "
                   "help)\n",
                   cmd.c_str());
      return usage();
    }
    // `obdrel <cmd> help` mirrors `obdrel help`: usage to stdout, exit 0.
    if (args.size() >= 2 && args[1] == "help") return usage(stdout, 0);
    if (args.size() < 2) return usage();
    if (cmd == "analyze" || cmd == "report" || cmd == "thermal") {
      const Config cfg = Config::parse_file(args[1]);
      apply_runtime_options(cfg, strict_flag, threads_flag);
      if (cmd == "analyze") return finish(cmd_analyze(cfg));
      if (cmd == "report") return finish(cmd_report(cfg));
      return finish(cmd_thermal(cfg));
    }
    if (cmd == "lut") {
      if (args.size() < 4) return usage();
      const Config cfg = Config::parse_file(args[2]);
      apply_runtime_options(cfg, strict_flag, threads_flag);
      return finish(cmd_lut(cfg, args[1], args[3],
                            args.size() > 4 ? args[4].c_str() : nullptr));
    }
    if (cmd == "drm") {
      if (args.size() < 4 || args[1] != "run") return usage();
      const Config cfg = Config::parse_file(args[2]);
      apply_runtime_options(cfg, strict_flag, threads_flag);
      return finish(cmd_drm_run(cfg, args[3], ropts));
    }
    if (cmd == "fleet") {
      const Config cfg = Config::parse_file(args[1]);
      apply_runtime_options(cfg, strict_flag, threads_flag);
      return finish(cmd_fleet(cfg, args[1], ff, threads_flag, argv[0]));
    }
    if (cmd == "serve") {
      const Config cfg = Config::parse_file(args[1]);
      apply_runtime_options(cfg, strict_flag, threads_flag);
      return finish(cmd_serve(cfg, sf));
    }
    return usage();
  } catch (const Error& e) {
    std::fputs(diagnostics().render().c_str(), stderr);
    std::fprintf(stderr, "error [%s]: %s\n", to_string(e.code()), e.what());
    return static_cast<int>(e.code());
  } catch (const std::exception& e) {
    std::fputs(diagnostics().render().c_str(), stderr);
    std::fprintf(stderr, "error [internal]: %s\n", e.what());
    return static_cast<int>(ErrorCode::kInternal);
  }
}
