// Thermal-map image export (binary PGM / PPM, no dependencies).
//
// Writes a ThermalProfile's cell field as a grayscale PGM or a
// blue-to-red false-color PPM, so the Fig. 1 reproductions can be viewed
// with any image tool.
#pragma once

#include <iosfwd>
#include <string>

#include "thermal/solver.hpp"

namespace obd::thermal {

/// Writes the field as binary PGM (P5), hottest = white. `upscale`
/// replicates each cell into an upscale x upscale pixel block.
void write_pgm(std::ostream& out, const ThermalProfile& profile,
               std::size_t upscale = 8);

/// Writes the field as binary PPM (P6) with a blue->cyan->yellow->red ramp.
void write_ppm(std::ostream& out, const ThermalProfile& profile,
               std::size_t upscale = 8);

/// Convenience file writers (throw obd::Error on I/O failure).
void write_pgm_file(const std::string& path, const ThermalProfile& profile,
                    std::size_t upscale = 8);
void write_ppm_file(const std::string& path, const ThermalProfile& profile,
                    std::size_t upscale = 8);

}  // namespace obd::thermal
