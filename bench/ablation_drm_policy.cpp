// Ablation: reliability-management policy — static worst-case rung vs the
// budget-trajectory DRM controller, across workload mixes. Both policies
// manage the same (automatically chosen, binding) end-of-life failure
// budget; the payoff metric is average delivered performance.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "chip/design.hpp"
#include "common/table.hpp"
#include "core/problem.hpp"
#include "drm/manager.hpp"
#include "drm/workload.hpp"

int main() {
  using namespace obd;

  const chip::Design design = chip::make_benchmark(3);
  const core::AnalyticReliabilityModel model;
  core::ProblemOptions popts;
  popts.grid_cells_per_side = 15;
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model,
      std::vector<double>(design.blocks.size(), 80.0), 1.2, popts);

  const std::vector<drm::OperatingPoint> ladder{
      {"eco", 1.00, 1.2e9},
      {"base", 1.10, 1.7e9},
      {"boost", 1.20, 2.1e9},
      {"turbo", 1.28, 2.5e9},
  };
  drm::DrmOptions opts;
  opts.lifetime_target_s = 10.0 * bench::kYear;
  opts.control_interval_s = opts.lifetime_target_s / 120.0;

  // A binding budget: geometric mean of the eco-always and turbo-always
  // worst-case damage, so the rung choice actually matters (a budget no
  // rung can violate reduces every policy to max-perf).
  {
    drm::ReliabilityManager eco(problem, model, ladder, opts);
    drm::ReliabilityManager turbo(problem, model, ladder, opts);
    for (int i = 0; i < 120; ++i) {
      eco.step_fixed(0, 1.0);
      turbo.step_fixed(ladder.size() - 1, 1.0);
    }
    opts.failure_budget = std::sqrt(eco.damage() * turbo.damage());
  }

  // Static sign-off rung: fastest that survives continuous worst case.
  std::size_t static_rung = 0;
  for (std::size_t r = ladder.size(); r-- > 0;) {
    drm::ReliabilityManager probe(problem, model, ladder, opts);
    for (int i = 0; i < 120; ++i) probe.step_fixed(r, 1.0);
    if (probe.damage() <= opts.failure_budget) {
      static_rung = r;
      break;
    }
  }

  std::printf("DRM policy ablation on %s: 10-year horizon, binding budget "
              "%.2e,\nstatic sign-off rung = %s.\n\n",
              design.name.c_str(), opts.failure_budget,
              ladder[static_rung].name.c_str());

  struct Mix {
    const char* name;
    drm::WorkloadOptions options;
  };
  const Mix mixes[] = {
      {"light (base 0.3)", {.base = 0.3, .burst_probability = 0.05}},
      {"mixed (base 0.5)", {}},
      {"heavy (base 0.8)", {.base = 0.8, .idle_probability = 0.05}},
      {"bursty (30% bursts)", {.base = 0.4, .burst_probability = 0.3}},
  };

  TextTable t({"workload", "DRM perf [GHz]", "static perf [GHz]", "gain",
               "DRM damage/budget"});
  for (const auto& mix : mixes) {
    stats::Rng rng(2024);
    const auto workload = drm::synthetic_workload(120, mix.options, rng);
    drm::ReliabilityManager adaptive(problem, model, ladder, opts);
    drm::ReliabilityManager fixed(problem, model, ladder, opts);
    double perf_a = 0.0;
    double perf_f = 0.0;
    for (double w : workload) {
      perf_a += adaptive.step(w).performance;
      perf_f += fixed.step_fixed(static_rung, w).performance;
    }
    perf_a /= 120.0;
    perf_f /= 120.0;
    t.add_row({mix.name, fmt(perf_a / 1e9, 3), fmt(perf_f / 1e9, 3),
               fmt(100.0 * (perf_a / perf_f - 1.0), 1) + "%",
               fmt(adaptive.damage() / opts.failure_budget, 2)});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: the budget-based controller never exceeds the\n"
      "budget (last column <= 1) and converts cool-workload headroom into\n"
      "performance; the gain shrinks as the workload approaches the\n"
      "worst-case the static rung was signed off for.\n");
  return 0;
}
