#include "power/trace_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"

namespace obd::power {
namespace {

// Strips comments and returns whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& line) {
  const std::size_t hash = line.find('#');
  std::istringstream is(hash == std::string::npos ? line
                                                  : line.substr(0, hash));
  std::vector<std::string> tokens;
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

double parse_double(const std::string& s, const std::string& context) {
  double v = 0.0;
  bool parsed = false;
  bool overflow = false;
  try {
    std::size_t pos = 0;
    v = std::stod(s, &pos);
    parsed = (pos == s.size());
  } catch (const std::out_of_range&) {
    overflow = true;  // magnitude exceeds double range
  } catch (const std::exception&) {
    parsed = false;
  }
  // NaN/Inf/overflowing fields are telemetry corruption that would
  // propagate silently through the thermal solve; they get a trace.parse
  // diagnostic plus a typed configuration error naming the line, distinct
  // from structurally malformed input (kInvalidInput below).
  if (overflow || (parsed && !std::isfinite(v))) {
    const std::string what =
        context + ": non-finite or overflowing numeric field '" + s +
        "' cannot enter the thermal solve";
    diagnostics().warn("trace.parse", what);
    throw Error(what, ErrorCode::kConfig);
  }
  require(parsed, ErrorCode::kInvalidInput,
          context + ": cannot parse number '" + s + "'");
  return v;
}

}  // namespace

std::vector<PowerMap> load_power_trace(std::istream& in,
                                              const chip::Design& design) {
  design.validate();
  if (fault::should_fire(fault::site::kPtraceParse))
    throw Error("load_power_trace: injected parse fault",
                ErrorCode::kInvalidInput);
  std::string line;
  std::vector<std::string> header;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    header = tokenize(line);
    if (!header.empty()) break;
  }
  require(!header.empty(), ErrorCode::kInvalidInput,
          "load_power_trace: missing header line");
  require(header.size() == design.blocks.size(), ErrorCode::kInvalidInput,
          "load_power_trace: header has " + std::to_string(header.size()) +
              " names, design has " +
              std::to_string(design.blocks.size()) + " blocks");

  // Map trace columns to design block indices.
  std::vector<std::size_t> order(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) {
    bool found = false;
    for (std::size_t j = 0; j < design.blocks.size(); ++j) {
      if (design.blocks[j].name == header[c]) {
        order[c] = j;
        found = true;
        break;
      }
    }
    require(found, ErrorCode::kInvalidInput,
            "load_power_trace: unknown block '" + header[c] + "'");
  }

  std::vector<PowerMap> maps;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    require(tokens.size() == header.size(), ErrorCode::kInvalidInput,
            "load_power_trace: line " + std::to_string(line_no) +
                ": expected " + std::to_string(header.size()) + " values");
    PowerMap map;
    map.block_watts.assign(design.blocks.size(), 0.0);
    for (std::size_t c = 0; c < tokens.size(); ++c) {
      const double w = parse_double(
          tokens[c], "load_power_trace: line " + std::to_string(line_no));
      require(w >= 0.0, ErrorCode::kInvalidInput,
              "load_power_trace: negative power at line " +
                  std::to_string(line_no));
      map.block_watts[order[c]] = w;
    }
    maps.push_back(std::move(map));
  }
  require(!maps.empty(), ErrorCode::kInvalidInput,
          "load_power_trace: no samples found");
  return maps;
}

std::vector<PowerMap> load_power_trace_file(const std::string& path,
                                                   const chip::Design& design) {
  std::ifstream in(path);
  require(in.good(), ErrorCode::kIo,
          "load_power_trace_file: cannot open '" + path + "'");
  return load_power_trace(in, design);
}


void save_power_trace(std::ostream& out, const chip::Design& design,
                      const std::vector<PowerMap>& maps) {
  design.validate();
  for (std::size_t j = 0; j < design.blocks.size(); ++j)
    out << design.blocks[j].name << (j + 1 < design.blocks.size() ? ' ' : '\n');
  for (const auto& map : maps) {
    require(map.block_watts.size() == design.blocks.size(),
            "save_power_trace: power map size mismatch");
    for (std::size_t j = 0; j < map.block_watts.size(); ++j)
      out << map.block_watts[j]
          << (j + 1 < map.block_watts.size() ? ' ' : '\n');
  }
}

}  // namespace obd::power
