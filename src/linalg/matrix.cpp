#include "linalg/matrix.hpp"

#include <cmath>

#include "simd/kernels.hpp"

namespace obd::la {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::multiply(const Vector& x) const {
  require(x.size() == cols_, "Matrix::multiply: size mismatch");
  Vector y(rows_, 0.0);
  if (!empty()) simd::kernels().matvec(row(0), x.data(), y.data(), rows_, cols_);
  return y;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::matmul(const Matrix& other) const {
  require(cols_ == other.rows(), "Matrix::matmul: dimension mismatch");
  Matrix out(rows_, other.cols(), 0.0);
  // k-tiled kernel (cache-friendly on the grid-covariance path); per
  // output element it performs the identical ascending-k round-then-add
  // sequence as the historical naive ikj loop, so results are
  // bit-identical to it at every dispatch level (regression-pinned in
  // tests/simd_test.cpp).
  if (!empty() && !other.empty())
    simd::kernels().matmul(row(0), other.row(0), out.row(0), rows_, cols_,
                           other.cols());
  return out;
}

double Matrix::trace() const {
  require(rows_ == cols_, "Matrix::trace: matrix must be square");
  double t = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

double Matrix::frobenius_squared() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

double Matrix::max_asymmetry() const {
  require(rows_ == cols_, "Matrix::max_asymmetry: matrix must be square");
  double worst = 0.0;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      worst = std::max(worst, std::fabs((*this)(r, c) - (*this)(c, r)));
  return worst;
}

Matrix gram_aat(const Matrix& a) {
  require(!a.empty(), "gram_aat: matrix must be non-empty");
  const std::size_t n = a.rows();
  Matrix g(n, n);
  simd::kernels().gram_aat(a.row(0), g.row(0), n, a.cols());
  return g;
}

double dot(const Vector& a, const Vector& b) {
  require(a.size() == b.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const Vector& a) { return std::sqrt(dot(a, a)); }

}  // namespace obd::la
