// Fig. 10 reproduction, design C3: failure-rate curves and 10-per-million
// errors of four analyses —
//   (1) MC simulation (reference; plus a sampled chip-lifetime
//       distribution like the paper's 10000-chip curve),
//   (2) the proposed temperature-aware statistical approach,
//   (3) a temperature-unaware statistical approach (worst-case temperature
//       for every block),
//   (4) the conventional guard band (minimum thickness + worst temp).
//
// Paper reference errors at 10/million: temp-aware 1.8%, temp-unaware
// 25.1%, guard band 54.3%.
//
// Scaling knobs: OBDREL_MC_CHIPS (default 1000),
// OBDREL_LIFETIME_SAMPLES (default 10000).
#include <algorithm>
#include <cstdio>

#include <fstream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "stats/fit.hpp"
#include "chip/design.hpp"
#include "core/analytic.hpp"
#include "core/guardband.hpp"
#include "core/lifetime.hpp"
#include "core/montecarlo.hpp"
#include "power/power.hpp"
#include "stats/descriptive.hpp"
#include "thermal/solver.hpp"

int main() {
  using namespace obd;
  const std::size_t mc_chips = bench::env_size("OBDREL_MC_CHIPS", 1000);
  const std::size_t life_samples =
      bench::env_size("OBDREL_LIFETIME_SAMPLES", 10000);

  const chip::Design design = chip::make_benchmark(3);  // C3
  const auto profile = thermal::power_thermal_fixed_point(
      design, power::PowerParams{}, {.resolution = 32}, 2);
  const core::AnalyticReliabilityModel model;

  const auto aware_problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, profile.block_temps_c, 1.2);
  const double worst =
      *std::max_element(profile.block_temps_c.begin(),
                        profile.block_temps_c.end());
  const auto unaware_problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model,
      std::vector<double>(design.blocks.size(), worst), 1.2);

  const core::MonteCarloAnalyzer mc(aware_problem,
                                    {.chip_samples = mc_chips});
  const core::AnalyticAnalyzer aware(aware_problem);
  const core::AnalyticAnalyzer unaware(unaware_problem);
  const core::GuardBandAnalyzer guard(aware_problem);

  // Chip lifetime distribution (the paper's blue curve): failure times of
  // `life_samples` simulated chips.
  stats::Rng rng(10);
  std::vector<double> lifetimes = mc.sample_failure_times(life_samples, rng);
  std::sort(lifetimes.begin(), lifetimes.end());

  std::printf("Fig. 10 reproduction, design C3 (%zu devices).\n",
              design.total_devices());
  std::printf("MC: %zu chips (ppm region), %zu sampled chip lifetimes "
              "(distribution).\n\n",
              mc_chips, life_samples);

  // Failure curves over the ppm decade (the region the criteria live in;
  // a finite sampled-lifetime set cannot resolve 1e-5 and is compared in
  // the bulk region below instead). The MC column uses the batched sweep:
  // one pass over the sample chips for the whole grid of times.
  const double t_mc = mc.lifetime_at(core::kTenFaultsPerMillion);
  std::vector<double> curve_ts;
  for (double t = t_mc / 8.0; t <= t_mc * 8.0; t *= 1.6)
    curve_ts.push_back(t);
  const std::vector<double> curve_f_mc = mc.failure_probabilities(curve_ts);
  std::printf("%-12s %12s %12s %12s %12s\n", "t [s]", "MC", "temp-aware",
              "temp-unaw.", "guard");
  for (std::size_t i = 0; i < curve_ts.size(); ++i) {
    const double t = curve_ts[i];
    std::printf("%-12.3e %12.3e %12.3e %12.3e %12.3e\n", t, curve_f_mc[i],
                aware.failure_probability(t),
                unaware.failure_probability(t),
                guard.failure_probability(t));
  }

  // Bulk of the chip-lifetime distribution: the sampled failure times must
  // agree with the conditional-average MC curve.
  std::printf("\nChip lifetime distribution (bulk): sampled vs MC curve\n");
  std::printf("%-10s %14s %14s\n", "quantile", "t_sampled [s]", "F_MC(t)");
  const std::vector<double> quantiles = {0.10, 0.25, 0.50, 0.75, 0.90};
  std::vector<double> quantile_ts;
  for (double q : quantiles)
    quantile_ts.push_back(
        lifetimes[static_cast<std::size_t>(q * (lifetimes.size() - 1))]);
  const std::vector<double> quantile_f = mc.failure_probabilities(quantile_ts);
  for (std::size_t i = 0; i < quantiles.size(); ++i)
    std::printf("%-10.2f %14.4e %14.4f\n", quantiles[i], quantile_ts[i],
                quantile_f[i]);

  // The chip-level lifetime distribution is itself near-Weibull (a minimum
  // over a huge weakest-link population): report the MLE fit.
  const stats::WeibullFit wfit = stats::fit_weibull(lifetimes);
  std::printf("\nWeibull MLE of the sampled chip lifetimes: alpha = %.3e s, "
              "beta = %.2f\n",
              wfit.alpha, wfit.beta);

  // Failure rate (the quantity Fig. 10's axis is labeled with): hazard of
  // the temperature-aware statistical model across the ppm decade —
  // monotonically increasing, i.e. pure wear-out.
  std::printf("\nHazard (failure rate) of the temp-aware model:\n");
  std::printf("%-12s %14s\n", "t [s]", "lambda [1/s]");
  const auto hz = core::hazard_curve(
      [&](double t) { return aware.failure_probability(t); }, t_mc / 8.0,
      t_mc * 8.0, 7);
  for (const auto& p : hz)
    std::printf("%-12.3e %14.4e\n", p.time_s, p.hazard_per_s);

  // Optional machine-readable dump (OBDREL_CSV_DIR).
  if (const std::string dir = csv_output_dir(); !dir.empty()) {
    std::ofstream out(dir + "/fig10_curves.csv");
    CsvWriter csv(out);
    csv.header({"t_s", "F_mc", "F_temp_aware", "F_temp_unaware", "F_guard"});
    for (std::size_t i = 0; i < curve_ts.size(); ++i)
      csv.numeric_row({curve_ts[i], curve_f_mc[i],
                       aware.failure_probability(curve_ts[i]),
                       unaware.failure_probability(curve_ts[i]),
                       guard.failure_probability(curve_ts[i])});
    std::printf("\n(wrote %s/fig10_curves.csv)\n", dir.c_str());
  }

  // Headline numbers: 10/million lifetime errors vs MC.
  const double t_aware = aware.lifetime_at(core::kTenFaultsPerMillion);
  const double t_unaware = unaware.lifetime_at(core::kTenFaultsPerMillion);
  const double t_guard = guard.lifetime_at(core::kTenFaultsPerMillion);

  std::printf("\n10-per-million lifetimes and error w.r.t. MC:\n");
  std::printf("  %-28s %12.4e s   (reference)\n", "MC simulation", t_mc);
  std::printf("  %-28s %12.4e s   %6.1f%%  (paper: 1.8%%)\n",
              "temp-aware statistical", t_aware,
              bench::pct_error(t_aware, t_mc));
  std::printf("  %-28s %12.4e s   %6.1f%%  (paper: 25.1%%)\n",
              "temp-unaware statistical", t_unaware,
              bench::pct_error(t_unaware, t_mc));
  std::printf("  %-28s %12.4e s   %6.1f%%  (paper: 54.3%%)\n",
              "guard-band", t_guard, bench::pct_error(t_guard, t_mc));
  return 0;
}
