#include <gtest/gtest.h>

#include <cmath>

#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "core/device_model.hpp"

namespace obd::core {
namespace {

TEST(AnalyticModel, ReferencePointReproduced) {
  const AnalyticReliabilityModel m;
  const auto& p = m.params();
  EXPECT_NEAR(m.alpha(p.temp_ref_c, p.vdd_ref), p.alpha_ref,
              1e-6 * p.alpha_ref);
  EXPECT_NEAR(m.b(p.temp_ref_c, p.vdd_ref), p.b_ref, 1e-12);
}

TEST(AnalyticModel, HotterMeansShorterLife) {
  const AnalyticReliabilityModel m;
  double prev = m.alpha(25.0, 1.2);
  for (double t : {45.0, 65.0, 85.0, 105.0, 125.0}) {
    const double a = m.alpha(t, 1.2);
    EXPECT_LT(a, prev) << "T=" << t;
    prev = a;
  }
}

TEST(AnalyticModel, TemperatureAccelerationOrderOfMagnitude) {
  // Section I: a ~30 C on-chip temperature difference can change device
  // reliability by about an order of magnitude.
  const AnalyticReliabilityModel m;
  const double ratio = m.alpha(70.0, 1.2) / m.alpha(100.0, 1.2);
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 100.0);
}

TEST(AnalyticModel, VoltageAcceleration) {
  const AnalyticReliabilityModel m;
  // Higher Vdd -> shorter life, exponentially.
  const double a12 = m.alpha(100.0, 1.2);
  const double a13 = m.alpha(100.0, 1.3);
  EXPECT_NEAR(a13 / a12, std::exp(-12.0 * 0.1), 1e-9);
}

TEST(AnalyticModel, WeibullSlopeInPhysicalRange) {
  // For x0 = 2.2 nm the chip-level Weibull slope beta = b * x0 should sit
  // in the ~1-2 range reported for ultra-thin oxides.
  const AnalyticReliabilityModel m;
  for (double t : {45.0, 65.0, 85.0, 105.0}) {
    const double beta = m.b(t, 1.2) * 2.2;
    EXPECT_GT(beta, 1.0) << "T=" << t;
    EXPECT_LT(beta, 2.2) << "T=" << t;
  }
}

TEST(AnalyticModel, BSlopeDecreasesWithTemperatureAndClamps) {
  const AnalyticReliabilityModel m;
  EXPECT_GT(m.b(45.0, 1.2), m.b(100.0, 1.2));
  // Far beyond any physical temperature the floor engages.
  EXPECT_DOUBLE_EQ(m.b(1e4, 1.2), m.params().b_floor);
}

TEST(AnalyticModel, RejectsNonPhysicalInput) {
  const AnalyticReliabilityModel m;
  EXPECT_THROW(m.alpha(-300.0, 1.2), obd::Error);
  AnalyticModelParams bad;
  bad.alpha_ref = -1.0;
  EXPECT_THROW(AnalyticReliabilityModel{bad}, obd::Error);
}

TEST(TabulatedModel, InterpolatesBetweenRows) {
  const TabulatedReliabilityModel m(
      {{25.0, 1e18, 0.70}, {75.0, 1e17, 0.66}, {125.0, 1e16, 0.62}});
  // At a row: exact.
  EXPECT_NEAR(m.alpha(75.0, 1.2), 1e17, 1e3);
  EXPECT_NEAR(m.b(75.0, 1.2), 0.66, 1e-12);
  // Halfway (log-space for alpha, linear for b).
  EXPECT_NEAR(m.alpha(50.0, 1.2), std::sqrt(1e18 * 1e17), 1e12);
  EXPECT_NEAR(m.b(100.0, 1.2), 0.64, 1e-12);
  // Clamped beyond the table.
  EXPECT_NEAR(m.alpha(0.0, 1.2) / 1e18, 1.0, 1e-12);
  EXPECT_NEAR(m.b(200.0, 1.2), 0.62, 1e-12);
}

TEST(TabulatedModel, FromModelTracksAnalyticWithinInterpolationError) {
  const AnalyticReliabilityModel analytic;
  std::vector<double> temps;
  for (double t = 25.0; t <= 125.0; t += 5.0) temps.push_back(t);
  const auto table = TabulatedReliabilityModel::from_model(analytic, temps);
  for (double t = 27.5; t < 120.0; t += 10.0) {
    EXPECT_NEAR(table.alpha(t, 1.2) / analytic.alpha(t, 1.2), 1.0, 0.01)
        << "T=" << t;
    EXPECT_NEAR(table.b(t, 1.2), analytic.b(t, 1.2), 1e-3);
  }
  // Voltage acceleration carried over.
  EXPECT_NEAR(table.alpha(60.0, 1.3) / table.alpha(60.0, 1.2),
              std::exp(-1.2), 1e-9);
}

TEST(TabulatedModel, WarnsOnceWhenClampingBeyondTheTable) {
  // Out-of-range lookups clamp silently per call (alpha/b are hot-path),
  // but the first one records a device.table_extrapolate diagnostic naming
  // the offending temperature and the table range — once per model, not
  // once per call (a 10^6-chip sweep must not emit 10^6 warnings).
  auto& diag = obd::diagnostics();
  const std::size_t before = diag.count("device.table_extrapolate");
  const TabulatedReliabilityModel m(
      {{25.0, 1e18, 0.70}, {75.0, 1e17, 0.66}, {125.0, 1e16, 0.62}});
  // In-range calls never warn.
  (void)m.alpha(50.0, 1.2);
  (void)m.b(100.0, 1.2);
  EXPECT_EQ(diag.count("device.table_extrapolate"), before);
  // First clamp warns; repeats (either accessor, either side) stay silent.
  (void)m.alpha(180.0, 1.2);
  EXPECT_EQ(diag.count("device.table_extrapolate"), before + 1);
  (void)m.alpha(180.0, 1.2);
  (void)m.b(5.0, 1.2);
  (void)m.b(300.0, 1.2);
  EXPECT_EQ(diag.count("device.table_extrapolate"), before + 1);
  // Copies share the one-shot flag (from_model returns by value), so a
  // copied model does not re-arm the warning.
  const TabulatedReliabilityModel copy = m;
  (void)copy.alpha(500.0, 1.2);
  EXPECT_EQ(diag.count("device.table_extrapolate"), before + 1);
  // A fresh model is a fresh diagnostic.
  const TabulatedReliabilityModel other(
      {{25.0, 1e18, 0.70}, {75.0, 1e17, 0.66}});
  (void)other.alpha(90.0, 1.2);
  EXPECT_EQ(diag.count("device.table_extrapolate"), before + 2);
}

TEST(TabulatedModel, RejectsMalformedTables) {
  EXPECT_THROW(TabulatedReliabilityModel({{25.0, 1e18, 0.7}}), obd::Error);
  EXPECT_THROW(TabulatedReliabilityModel(
                   {{25.0, 1e18, 0.7}, {20.0, 1e17, 0.66}}),
               obd::Error);
  EXPECT_THROW(TabulatedReliabilityModel(
                   {{25.0, -1e18, 0.7}, {75.0, 1e17, 0.66}}),
               obd::Error);
}

}  // namespace
}  // namespace obd::core
