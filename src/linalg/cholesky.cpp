#include "linalg/cholesky.hpp"

#include <cmath>
#include <sstream>

#include "common/diagnostics.hpp"
#include "common/fault_injection.hpp"
#include "linalg/eigen.hpp"

namespace obd::la {

Matrix cholesky_lower(const Matrix& a, double jitter) {
  require(a.rows() == a.cols(), "cholesky_lower: matrix must be square");
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + jitter;
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    require(diag > 0.0 && std::isfinite(diag), ErrorCode::kNonconvergence,
            "cholesky_lower: matrix is not positive definite");
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

Vector cholesky_solve(const Matrix& lower, const Vector& b) {
  const std::size_t n = lower.rows();
  require(lower.cols() == n && b.size() == n,
          "cholesky_solve: dimension mismatch");
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= lower(i, k) * y[k];
    y[i] = s / lower(i, i);
  }
  Vector x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= lower(k, i) * x[k];
    x[i] = s / lower(i, i);
  }
  return x;
}

Matrix cholesky_lower_robust(const Matrix& a, const std::string& context,
                             double jitter) {
  require(a.rows() == a.cols(),
          "cholesky_lower_robust: matrix must be square");
  const std::size_t n = a.rows();
  const bool injected = fault::should_fire(fault::site::kCholesky);
  if (!injected) {
    try {
      return cholesky_lower(a, jitter);
    } catch (const Error& e) {
      if (e.code() != ErrorCode::kNonconvergence) throw;
    }
  }

  // Ridge scale anchored to the mean diagonal magnitude so the retry is
  // meaningful regardless of the matrix's units.
  double base = 0.0;
  for (std::size_t i = 0; i < n; ++i) base += std::fabs(a(i, i));
  base = (n > 0) ? base / static_cast<double>(n) : 1.0;
  if (base <= 0.0 || !std::isfinite(base)) base = 1.0;

  for (const double scale : {1e-10, 1e-7, 1e-4, 1e-1}) {
    const double ridge = base * scale;
    try {
      Matrix l = cholesky_lower(a, jitter + ridge);
      std::ostringstream msg;
      msg << context << ": matrix is numerically non-positive-definite; "
          << "recovered with diagonal ridge " << ridge;
      diagnostics().warn(fault::site::kCholesky, msg.str());
      return l;
    } catch (const Error& e) {
      if (e.code() != ErrorCode::kNonconvergence) throw;
    }
  }

  // Last resort: clamp negative eigenvalues to zero and refactor the
  // reconstructed (now PSD) matrix with a tiny stabilizing ridge.
  try {
    const EigenDecomposition eig = eigen_symmetric(a);
    Matrix psd(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        double s = 0.0;
        for (std::size_t k = 0; k < n; ++k)
          s += eig.vectors(i, k) * std::max(0.0, eig.values[k]) *
               eig.vectors(j, k);
        psd(i, j) = s;
        psd(j, i) = s;
      }
    }
    Matrix l = cholesky_lower(psd, base * 1e-9);
    diagnostics().warn(fault::site::kCholesky,
                       context +
                           ": ridge retries failed; fell back to the "
                           "eigenvalue-clamped factorization");
    return l;
  } catch (const Error& e) {
    if (e.code() == ErrorCode::kDegraded) throw;
    throw Error(context +
                    ": SPD factorization failed after ridge retries and "
                    "eigen fallback: " +
                    e.what(),
                ErrorCode::kNonconvergence);
  }
}

}  // namespace obd::la
