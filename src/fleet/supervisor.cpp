#include "fleet/supervisor.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <sstream>
#include <thread>

#include "common/checkpoint.hpp"
#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "stats/rng.hpp"

namespace obd::fleet {

std::uint64_t SteadyClock::now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SteadyClock::sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::uint64_t BackoffPolicy::next_delay_ms() {
  ++attempts_;
  std::uint64_t d = base_ms_;
  for (std::size_t i = 1; i < attempts_; ++i) {
    if (d >= cap_ms_ || d > cap_ms_ / 2 + 1) {
      d = cap_ms_;
      break;
    }
    d *= 2;
  }
  return std::min(d, cap_ms_);
}

void BackoffPolicy::on_success() { attempts_ = 0; }

pid_t spawn_worker(const std::vector<std::string>& argv,
                   const std::string& log_file) {
  require(!argv.empty(), ErrorCode::kInvalidInput,
          "spawn_worker: empty argv");
  if (fault::should_fire(fault::site::kFleetSpawn))
    throw Error("spawn_worker: injected spawn failure (fleet.spawn)",
                ErrorCode::kIo);
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  require(pid >= 0, ErrorCode::kIo, "spawn_worker: fork failed");
  if (pid == 0) {
    const int fd =
        ::open(log_file.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      if (fd > STDERR_FILENO) ::close(fd);
    }
    ::execv(cargv[0], cargv.data());
    _exit(127);  // exec failure surfaces through the reaping path
  }
  return pid;
}

namespace {

// Per-shard supervision state. Scheduling state only — all numerical
// state lives in the shard's durable files.
struct ShardState {
  enum class St { kPending, kRunning, kDone, kFailed, kStopped };
  St st = St::kPending;
  ChunkRange range;
  pid_t pid = -1;
  BackoffPolicy policy{0, 0, 0};
  std::uint64_t eligible_ms = 0;    ///< earliest next spawn (backoff)
  std::uint64_t last_beat_ms = 0;   ///< last observed heartbeat change
  std::uint64_t last_counter = ~0ull;
  std::uint64_t best_chunks_done = 0;
  std::uint64_t sigcont_due_ms = 0;  ///< pending chaos SIGCONT, 0 = none
  ShardOutcome out;
};

}  // namespace

Supervisor::Supervisor(FleetSpec spec, SupervisorOptions opts)
    : spec_(std::move(spec)), opts_(std::move(opts)) {
  require(opts_.shards >= 1, ErrorCode::kInvalidInput,
          "Supervisor: need at least one shard");
  require(!opts_.worker_argv.empty(), ErrorCode::kInvalidInput,
          "Supervisor: empty worker argv");
  require(!spec_.ts.empty(), ErrorCode::kInvalidInput,
          "Supervisor: empty sweep");
}

FleetOutcome Supervisor::run() {
  // Killed workers leave torn heartbeat temp files behind; sweep them all
  // before any worker of this run is spawned (workers own their prefix
  // from then on).
  ckpt::sweep_stale_tmp(opts_.dir, "shard-", "fleet");
  SteadyClock steady;
  Clock& clock = (opts_.clock != nullptr) ? *opts_.clock : steady;
  const std::uint64_t total_chunks = chunk_count(spec_);
  const std::vector<ChunkRange> ranges =
      partition_chunks(total_chunks, opts_.shards);

  FleetOutcome outcome;
  std::vector<ShardState> sh(opts_.shards);

  // True when every chunk of the shard's range is durably recorded.
  const auto shard_complete = [&](std::uint64_t k) {
    if (sh[k].range.empty()) return true;
    const auto chunks = load_shard_chunks(opts_.dir, k, spec_);
    for (std::uint64_t c = sh[k].range.begin; c < sh[k].range.end; ++c)
      if (chunks.find(c) == chunks.end()) return false;
    return true;
  };

  const std::uint64_t start_ms = clock.now_ms();
  for (std::uint64_t k = 0; k < opts_.shards; ++k) {
    sh[k].range = ranges[k];
    sh[k].policy = BackoffPolicy(opts_.backoff_base_ms, opts_.backoff_cap_ms,
                                 opts_.max_restarts);
    sh[k].last_beat_ms = start_ms;
    // Shards already satisfied by durable state (a supervisor rerun over
    // the same directory, or an empty range at K > chunk count) never
    // spawn a worker.
    if (shard_complete(k)) {
      sh[k].st = ShardState::St::kDone;
      sh[k].out.resumed = !sh[k].range.empty();
    }
  }

  stats::Rng chaos_rng(opts_.chaos.seed);
  const bool chaos_on =
      opts_.chaos.kill_rate > 0.0 || opts_.chaos.stop_rate > 0.0;

  const auto handle_failure = [&](ShardState& s, std::uint64_t now) {
    if (s.policy.exhausted()) {
      s.st = ShardState::St::kFailed;
      return;
    }
    const std::uint64_t delay = s.policy.next_delay_ms();
    s.out.restart_delays_ms.push_back(delay);
    ++s.out.restarts;
    s.eligible_ms = now + delay;
    s.st = ShardState::St::kPending;
  };

  const auto kill_and_reap = [](ShardState& s) {
    if (s.pid <= 0) return;
    ::kill(s.pid, SIGKILL);
    ::kill(s.pid, SIGCONT);  // a stopped process must resume to die
    ::waitpid(s.pid, nullptr, 0);
    s.pid = -1;
  };

  bool interrupted = false;
  while (true) {
    if (opts_.stop_flag != nullptr && *opts_.stop_flag != 0) {
      interrupted = true;
      break;
    }
    const std::uint64_t now = clock.now_ms();

    // Reap exited workers. Exit 0 only counts as success when the shard's
    // durable state is actually complete — a worker that "succeeds"
    // without publishing results is a failure with extra steps.
    for (std::uint64_t k = 0; k < opts_.shards; ++k) {
      ShardState& s = sh[k];
      if (s.st != ShardState::St::kRunning) continue;
      int status = 0;
      const pid_t r = ::waitpid(s.pid, &status, WNOHANG);
      if (r != s.pid) continue;
      s.pid = -1;
      s.sigcont_due_ms = 0;
      const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
      if (clean && shard_complete(k)) {
        s.st = ShardState::St::kDone;
        s.policy.on_success();
      } else {
        handle_failure(s, now);
      }
    }

    // Liveness watchdog: a worker whose heartbeat has not advanced within
    // the staleness window is wedged (or SIGSTOPped past its welcome) —
    // kill it and let the normal restart path take over. Real progress
    // (chunks done advancing) resets the backoff budget.
    for (std::uint64_t k = 0; k < opts_.shards; ++k) {
      ShardState& s = sh[k];
      if (s.st != ShardState::St::kRunning) continue;
      if (const auto hb = read_heartbeat(heartbeat_path(opts_.dir, k))) {
        if (hb->counter != s.last_counter) {
          s.last_counter = hb->counter;
          s.last_beat_ms = now;
        }
        if (hb->chunks_done > s.best_chunks_done) {
          s.best_chunks_done = hb->chunks_done;
          s.policy.on_success();
        }
      }
      if (s.sigcont_due_ms != 0 && now >= s.sigcont_due_ms) {
        ::kill(s.pid, SIGCONT);
        s.sigcont_due_ms = 0;
      }
      if (now - s.last_beat_ms > opts_.heartbeat_stale_ms) {
        kill_and_reap(s);
        ++s.out.heartbeat_timeouts;
        handle_failure(s, now);
      }
    }

    // Chaos harness: deterministic-seeded mayhem against random live
    // workers. Runs inside the poll loop so every recovery path above is
    // reachable from here.
    if (chaos_on) {
      std::vector<std::uint64_t> live;
      for (std::uint64_t k = 0; k < opts_.shards; ++k)
        if (sh[k].st == ShardState::St::kRunning && sh[k].pid > 0)
          live.push_back(k);
      if (!live.empty() && opts_.chaos.kill_rate > 0.0 &&
          chaos_rng.uniform() < opts_.chaos.kill_rate) {
        const std::uint64_t k = live[chaos_rng.below(live.size())];
        ::kill(sh[k].pid, SIGKILL);  // reaped by the next poll tick
      }
      if (!live.empty() && opts_.chaos.stop_rate > 0.0 &&
          chaos_rng.uniform() < opts_.chaos.stop_rate) {
        const std::uint64_t k = live[chaos_rng.below(live.size())];
        if (sh[k].st == ShardState::St::kRunning && sh[k].pid > 0 &&
            sh[k].sigcont_due_ms == 0) {
          ::kill(sh[k].pid, SIGSTOP);
          sh[k].sigcont_due_ms = now + opts_.chaos.stop_ms;
        }
      }
    }

    // Spawn eligible shards up to the parallelism cap.
    std::uint64_t running = 0;
    for (const ShardState& s : sh)
      if (s.st == ShardState::St::kRunning) ++running;
    const std::uint64_t cap =
        (opts_.max_parallel != 0) ? opts_.max_parallel : opts_.shards;
    for (std::uint64_t k = 0; k < opts_.shards && running < cap; ++k) {
      ShardState& s = sh[k];
      if (s.st != ShardState::St::kPending || now < s.eligible_ms) continue;
      std::vector<std::string> argv = opts_.worker_argv;
      argv.push_back("--worker");
      argv.push_back(std::to_string(k));
      try {
        s.pid = spawn_worker(argv, log_path(opts_.dir, k));
        s.st = ShardState::St::kRunning;
        s.last_beat_ms = now;
        s.last_counter = ~0ull;
        ++running;
      } catch (const Error&) {
        ++outcome.spawn_failures;
        handle_failure(s, now);
      }
    }

    bool active = false;
    for (const ShardState& s : sh)
      active = active || s.st == ShardState::St::kPending ||
               s.st == ShardState::St::kRunning;
    if (!active) break;
    clock.sleep_ms(opts_.poll_ms);
  }

  if (interrupted) {
    for (ShardState& s : sh) {
      if (s.st == ShardState::St::kRunning) kill_and_reap(s);
      if (s.st == ShardState::St::kRunning ||
          s.st == ShardState::St::kPending)
        s.st = ShardState::St::kStopped;
    }
  }

  // Merge every durable chunk — completed shards via their done snapshot,
  // failed or stopped ones via whatever their journal holds. Ascending
  // chunk order inside merge_chunks makes the fold K-independent.
  std::map<std::uint64_t, ChunkResult> all;
  for (std::uint64_t k = 0; k < opts_.shards; ++k) {
    auto chunks = load_shard_chunks(opts_.dir, k, spec_);
    for (auto& [c, r] : chunks) all.emplace(c, std::move(r));
  }
  outcome.report = merge_chunks(spec_, all);
  outcome.interrupted = interrupted;
  outcome.shards.reserve(sh.size());
  for (ShardState& s : sh) {
    switch (s.st) {
      case ShardState::St::kDone:
        s.out.state = ShardOutcome::State::kDone;
        break;
      case ShardState::St::kFailed:
        s.out.state = ShardOutcome::State::kFailed;
        ++outcome.failed_shards;
        break;
      default:
        s.out.state = ShardOutcome::State::kStopped;
        break;
    }
    outcome.total_restarts += s.out.restarts;
    outcome.heartbeat_timeouts += s.out.heartbeat_timeouts;
    outcome.shards.push_back(std::move(s.out));
  }
  return outcome;
}

void publish_diagnostics(const FleetOutcome& outcome) {
  std::size_t resumed = 0;
  for (const ShardOutcome& s : outcome.shards)
    if (s.resumed) ++resumed;
  {
    std::ostringstream os;
    os << outcome.shards.size() << " shard(s), " << outcome.failed_shards
       << " failed, " << resumed << " resumed from durable state; "
       << outcome.report.covered_chips << "/" << outcome.report.total_chips
       << " chips covered";
    if (outcome.interrupted) os << " (interrupted)";
    diagnostics().stat("fleet.shards", os.str());
  }
  {
    std::ostringstream os;
    os << outcome.total_restarts << " worker restart(s) ("
       << outcome.spawn_failures << " spawn failure(s), "
       << outcome.heartbeat_timeouts << " heartbeat timeout(s))";
    diagnostics().stat("fleet.restarts", os.str());
  }
  for (std::size_t k = 0; k < outcome.shards.size(); ++k) {
    const ShardOutcome& s = outcome.shards[k];
    if (s.state != ShardOutcome::State::kFailed) continue;
    diagnostics().warn(
        "fleet.shard_failed",
        "shard " + std::to_string(k) + " exhausted its restart budget after " +
            std::to_string(s.restarts) +
            " restart(s); the report covers only the chunks it journaled");
  }
}

}  // namespace obd::fleet
