// Symmetric eigendecomposition.
//
// Principal component analysis of the grid covariance matrix (Section II,
// eq. 2 of the paper) reduces to an eigendecomposition of a real symmetric
// matrix. We implement the classic dense path: Householder reduction to
// tridiagonal form followed by the implicit-shift QL iteration. O(n^3),
// robust, and fast enough for the paper's grids (up to 25 x 25 = 625).
#pragma once

#include "linalg/matrix.hpp"

namespace obd::la {

/// Result of a symmetric eigendecomposition A = V diag(values) V^T.
struct EigenDecomposition {
  /// Eigenvalues sorted in descending order.
  Vector values;
  /// Column k of `vectors` is the unit eigenvector for values[k].
  Matrix vectors;
};

/// Computes the full eigendecomposition of a symmetric matrix.
///
/// Throws obd::Error if `a` is not square, is materially asymmetric, or if
/// the QL iteration fails to converge (pathological input).
EigenDecomposition eigen_symmetric(const Matrix& a);

}  // namespace obd::la
