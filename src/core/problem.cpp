#include "core/problem.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace obd::core {
namespace {

// FNV-1a 64-bit, matching the serve-cache fingerprint idiom (core cannot
// depend on serve, so the 8-line hash lives here too).
std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ReliabilityProblem ReliabilityProblem::build(
    const chip::Design& design, const var::VariationBudget& budget,
    const DeviceReliabilityModel& model,
    const std::vector<double>& block_temps_c, double vdd,
    const ProblemOptions& options) {
  design.validate();
  budget.validate();
  require(block_temps_c.size() == design.blocks.size(),
          "ReliabilityProblem: one temperature per block required");
  require(vdd > 0.0, "ReliabilityProblem: vdd must be positive");
  require(options.grid_cells_per_side > 0,
          "ReliabilityProblem: grid resolution must be positive");

  ReliabilityProblem p;
  p.design_ = design;
  p.budget_ = budget;
  p.options_ = options;
  p.vdd_ = vdd;
  p.grid_ = std::make_shared<const var::GridModel>(
      design.width, design.height, options.grid_cells_per_side);
  switch (options.structure) {
    case CorrelationStructure::kGridExponential:
      p.canonical_ = std::make_shared<const var::CanonicalForm>(
          var::make_canonical_form(*p.grid_, budget, options.rho_dist,
                                   options.variance_capture, options.pattern,
                                   options.kernel, options.eigen_solver));
      break;
    case CorrelationStructure::kQuadTree:
      p.canonical_ = std::make_shared<const var::CanonicalForm>(
          var::make_quadtree_canonical(*p.grid_, budget, options.quadtree,
                                       options.pattern));
      break;
  }
  p.layout_ = var::assign_devices(design, *p.grid_);

  p.blocks_.reserve(design.blocks.size());
  for (std::size_t j = 0; j < design.blocks.size(); ++j) {
    const auto& blk = design.blocks[j];
    BlockParams bp{blk.name,
                   blk.obd_area(),
                   model.alpha(block_temps_c[j], vdd),
                   model.b(block_temps_c[j], vdd),
                   block_temps_c[j],
                   BlodMoments(*p.canonical_, p.layout_.weights[j],
                               blk.device_count)};
    require(bp.alpha > 0.0 && bp.b > 0.0,
            "ReliabilityProblem: invalid device model output");
    p.blocks_.push_back(std::move(bp));
  }

  // Resolve the mechanism/redundancy spec once against this design: per
  // block, aging mechanisms see the block temperature, the chip supply,
  // and the design's mean switching activity as default conditions.
  std::vector<std::string> names;
  std::vector<mech::OperatingConditions> conditions;
  names.reserve(design.blocks.size());
  conditions.reserve(design.blocks.size());
  for (std::size_t j = 0; j < design.blocks.size(); ++j) {
    names.push_back(design.blocks[j].name);
    conditions.push_back(
        {block_temps_c[j], vdd, design.blocks[j].activity});
  }
  p.mech_ = std::make_shared<const mech::MechanismStack>(
      options.mechanisms, names, std::move(conditions));

  // Problem identity, rendered exactly once: serve-style consumers used
  // to re-derive an equivalent key per request/checkpoint frame.
  std::ostringstream fp;
  fp.precision(17);
  fp << "design=" << design.name << ";blocks=" << design.blocks.size()
     << ";vdd=" << vdd << ";grid=" << options.grid_cells_per_side
     << ";rho_dist=" << options.rho_dist
     << ";variance_capture=" << options.variance_capture
     << ";structure=" << static_cast<int>(options.structure)
     << ";kernel=" << static_cast<int>(options.kernel)
     << ";eigen_solver=" << static_cast<int>(options.eigen_solver)
     << ";nominal=" << budget.nominal
     << ";mechanisms=" << p.mech_->canonical_spec();
  for (const BlockParams& bp : p.blocks_)
    fp << ";" << bp.name << "=" << bp.area << ":" << bp.alpha << ":" << bp.b
       << ":" << bp.temp_c;
  p.fingerprint_text_ = fp.str();
  p.fingerprint_ = fnv1a64(p.fingerprint_text_);
  return p;
}

double ReliabilityProblem::worst_temp_c() const {
  double worst = blocks_.front().temp_c;
  for (const auto& b : blocks_) worst = std::max(worst, b.temp_c);
  return worst;
}

double ReliabilityProblem::min_thickness() const {
  return budget_.nominal - 3.0 * budget_.sigma_total();
}

}  // namespace obd::core
