// MechanismStack: the per-problem composition engine for competing risks
// and unit-level redundancy.
//
// Built once by core::ReliabilityProblem::build from a MechanismSpec and
// the design's block list, it owns the enabled aging mechanisms, each
// block's default operating conditions (block temperature, chip supply,
// design switching activity), and the resolved spare groups. Evaluators
// hand it the per-block oxide failure probabilities at time t and get the
// chip-level failure probability back:
//
//   per block:  ls_j = log1p(-F_oxide,j) + sum_m log1p(-F_m,j(t))
//   series:     chip ls = sum over ungrouped blocks of ls_j
//   spare grp:  chip ls += log P(at most `spares` members failed)
//               (Poisson-binomial over member failure probs p_j = -expm1(ls_j))
//   chip F:     clamp(-expm1(chip ls), 0, 1)
//
// With the seed-equivalent spec (`trivial()` true) the compose calls
// reproduce the seed survival-product loop exactly — same operations in
// the same order — so default results stay bit-identical.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "mech/mechanism.hpp"
#include "mech/spec.hpp"

namespace obd::mech {

class MechanismStack {
 public:
  /// Trivial stack: oxide only, no redundancy (seed behavior).
  MechanismStack() = default;

  /// Resolves `spec` against the design's block names and per-block
  /// default conditions. Throws kConfig when a redundancy group names an
  /// unknown/duplicate block or has spares >= members.
  MechanismStack(const MechanismSpec& spec,
                 const std::vector<std::string>& block_names,
                 std::vector<OperatingConditions> default_conditions);

  /// Seed-equivalent: no aging mechanisms and no redundancy. Evaluator
  /// hot paths branch on this once and keep their exact seed loops.
  [[nodiscard]] bool trivial() const { return trivial_; }

  [[nodiscard]] bool has_redundancy() const { return !groups_.empty(); }
  [[nodiscard]] std::size_t extra_count() const { return extras_.size(); }
  [[nodiscard]] std::size_t block_count() const { return defaults_.size(); }
  [[nodiscard]] const MechanismSpec& spec() const { return spec_; }

  /// spec().canonical(), rendered once at construction. The canonical
  /// string keys serve-daemon problem grouping and DRM checkpoint
  /// framing; both used to re-render it per request/frame.
  [[nodiscard]] const std::string& canonical_spec() const {
    return canonical_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<FailureMechanism>>&
  extras() const {
    return extras_;
  }
  [[nodiscard]] const OperatingConditions& default_conditions(
      std::size_t j) const {
    return defaults_[j];
  }

  /// Chip failure probability from per-block oxide failure probabilities
  /// at time `t`, with aging mechanisms evaluated at each block's default
  /// operating conditions. `oxide_f` must have block_count() entries
  /// already clamped to [0, 1] by the caller (evaluators always do).
  [[nodiscard]] double compose(const double* oxide_f, double t) const;

  /// Same, with explicit per-block operating conditions (DRM rungs).
  [[nodiscard]] double compose_under(
      const double* oxide_f, double t,
      const std::vector<OperatingConditions>& conditions) const;

  /// Sum over aging mechanisms of log1p(-F_m,j(t)) for one block.
  [[nodiscard]] double extra_log_survival(std::size_t j, double t,
                                          const OperatingConditions& c) const;

  /// Chip-level aging survival product at default conditions:
  /// exp(sum_j extra_log_survival(j, t, default_j)). Used by the Monte
  /// Carlo paths, where (absent redundancy) the deterministic aging term
  /// separates from the sampled oxide term.
  [[nodiscard]] double extra_survival(double t) const;

  /// One block's log-survival term: log1p(-oxide_f_j) +
  /// extra_log_survival(j, t, c). Non-trivial stacks only — the trivial
  /// path keeps its exact seed loop inside compose(). The incremental
  /// evaluator caches these per block and re-derives only dirty rows.
  [[nodiscard]] double block_log_survival(std::size_t j, double oxide_f_j,
                                          double t,
                                          const OperatingConditions& c) const;

  /// Folds block_count() per-block log-survival terms into the chip
  /// failure probability: series sum over ungrouped blocks plus the
  /// Poisson-binomial spare-group terms, in the same fixed order as
  /// compose() regardless of which inputs changed — the bit-identity
  /// anchor of the incremental path. Non-trivial stacks only.
  [[nodiscard]] double reduce_log_survival(const double* block_ls) const;

  /// The same reduction stopped before the -expm1 conversion: the chip
  /// log-survival itself (-inf when a spare group is certainly dead).
  /// Unlike the probability, this does not saturate when F rounds to 1,
  /// which is what the surrogate layer fits against.
  [[nodiscard]] double chip_log_survival(const double* block_ls) const;

 private:
  struct Group {
    std::string name;
    std::vector<std::size_t> members;
    std::size_t spares = 0;
  };

  [[nodiscard]] double compose_impl(
      const double* oxide_f, double t,
      const std::vector<OperatingConditions>* conditions) const;

  MechanismSpec spec_{};
  // Depends on spec_ being initialized first (declaration order above).
  std::string canonical_ = spec_.canonical();
  bool trivial_ = true;
  std::vector<OperatingConditions> defaults_;
  std::vector<std::unique_ptr<FailureMechanism>> extras_;
  std::vector<Group> groups_;
  std::vector<int> group_of_;  ///< block -> group index, -1 if ungrouped
};

}  // namespace obd::mech
