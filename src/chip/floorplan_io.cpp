#include "chip/floorplan_io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/fault_injection.hpp"

namespace obd::chip {
namespace {

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

// Strips comments and returns whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& line) {
  const std::size_t hash = line.find('#');
  std::istringstream is(hash == std::string::npos ? line
                                                  : line.substr(0, hash));
  std::vector<std::string> tokens;
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

double parse_double(const std::string& s, const std::string& context) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    require(pos == s.size(), ErrorCode::kInvalidInput,
            context + ": trailing characters in '" + s + "'");
    require(std::isfinite(v), ErrorCode::kInvalidInput,
            context + ": non-finite number '" + s + "'");
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error(context + ": cannot parse number '" + s + "'",
                ErrorCode::kInvalidInput);
  }
}

// Conventional activity level per unit kind, for designs loaded from bare
// geometry files.
double default_activity(UnitKind kind) {
  switch (kind) {
    case UnitKind::kCache:         return 0.2;
    case UnitKind::kLogic:         return 0.7;
    case UnitKind::kRegisterFile:  return 0.6;
    case UnitKind::kQueue:         return 0.5;
    case UnitKind::kPredictor:     return 0.4;
    case UnitKind::kTlb:           return 0.35;
    case UnitKind::kFloatingPoint: return 0.4;
    case UnitKind::kCore:          return 0.5;
    case UnitKind::kInterconnect:  return 0.2;
  }
  return 0.5;
}

}  // namespace

UnitKind kind_from_name(const std::string& name) {
  const std::string n = lowercase(name);
  if (contains(n, "l2") || contains(n, "l3") || contains(n, "cache") ||
      contains(n, "sram"))
    return UnitKind::kCache;
  if (contains(n, "reg")) return UnitKind::kRegisterFile;
  if (contains(n, "fp") || contains(n, "fpu") || contains(n, "float"))
    return UnitKind::kFloatingPoint;
  if (contains(n, "q") && (contains(n, "int") || contains(n, "ldst") ||
                           contains(n, "ld_st") || contains(n, "issue")))
    return UnitKind::kQueue;
  if (contains(n, "bpred") || contains(n, "branch"))
    return UnitKind::kPredictor;
  if (contains(n, "tb") || contains(n, "tlb")) return UnitKind::kTlb;
  if (contains(n, "core") || contains(n, "tile")) return UnitKind::kCore;
  if (contains(n, "ring") || contains(n, "noc") || contains(n, "router"))
    return UnitKind::kInterconnect;
  return UnitKind::kLogic;
}

Design load_floorplan(std::istream& in, const FloorplanLoadOptions& options) {
  require(options.device_density > 0.0,
          "load_floorplan: device density must be positive");
  if (fault::should_fire(fault::site::kFloorplanParse))
    throw Error("load_floorplan: injected parse fault",
                ErrorCode::kInvalidInput);
  Design d;
  d.name = options.name;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    require(tokens.size() == 5, ErrorCode::kInvalidInput,
            "load_floorplan: line " + std::to_string(line_no) +
                ": expected '<name> <w> <h> <left> <bottom>'");
    const std::string ctx = "load_floorplan: line " + std::to_string(line_no);
    Block b;
    b.name = tokens[0];
    // HotSpot .flp uses meters; the library uses millimeters.
    const double w = parse_double(tokens[1], ctx) * 1000.0;
    const double h = parse_double(tokens[2], ctx) * 1000.0;
    const double left = parse_double(tokens[3], ctx) * 1000.0;
    const double bottom = parse_double(tokens[4], ctx) * 1000.0;
    require(w > 0.0 && h > 0.0, ErrorCode::kInvalidInput,
            ctx + ": block dimensions must be positive");
    require(left >= 0.0 && bottom >= 0.0, ErrorCode::kInvalidInput,
            ctx + ": block origin must be non-negative");
    b.rect = {left, bottom, w, h};
    b.kind = kind_from_name(b.name);
    b.activity = default_activity(b.kind);
    b.device_count = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::llround(b.rect.area() *
                                                 options.device_density)));
    d.blocks.push_back(std::move(b));
  }
  require(!d.blocks.empty(), ErrorCode::kInvalidInput,
          "load_floorplan: no blocks found");
  // Die extent = bounding box of the blocks.
  double wmax = 0.0;
  double hmax = 0.0;
  for (const auto& b : d.blocks) {
    wmax = std::max(wmax, b.rect.x + b.rect.width);
    hmax = std::max(hmax, b.rect.y + b.rect.height);
  }
  d.width = wmax;
  d.height = hmax;
  d.validate();
  return d;
}

Design load_floorplan_file(const std::string& path,
                           const FloorplanLoadOptions& options) {
  std::ifstream in(path);
  require(in.good(), ErrorCode::kIo,
          "load_floorplan_file: cannot open '" + path + "'");
  return load_floorplan(in, options);
}

void save_floorplan(std::ostream& out, const Design& design) {
  design.validate();
  out << "# obdrel floorplan: " << design.name << " ("
      << design.width << " x " << design.height << " mm)\n";
  out << "# <name> <width_m> <height_m> <left_m> <bottom_m>\n";
  for (const auto& b : design.blocks) {
    out << b.name << '\t' << b.rect.width / 1000.0 << '\t'
        << b.rect.height / 1000.0 << '\t' << b.rect.x / 1000.0 << '\t'
        << b.rect.y / 1000.0 << '\n';
  }
}

}  // namespace obd::chip
