#include "core/blod.hpp"

#include <cmath>

#include "common/error.hpp"

namespace obd::core {

BlodMoments::BlodMoments(
    const var::CanonicalForm& canonical,
    std::vector<std::pair<std::size_t, double>> grid_weights,
    std::size_t device_count)
    : grid_weights_(std::move(grid_weights)),
      device_count_(device_count),
      canonical_(&canonical) {
  require(device_count_ >= 2, "BlodMoments: need at least two devices");
  require(!grid_weights_.empty(), "BlodMoments: empty grid weight list");
  double wsum = 0.0;
  for (const auto& [g, w] : grid_weights_) {
    require(g < canonical.grid_count(), "BlodMoments: grid index range");
    require(w >= 0.0, "BlodMoments: negative weight");
    wsum += w;
  }
  require(std::fabs(wsum - 1.0) < 1e-6, "BlodMoments: weights must sum to 1");

  const std::size_t pc = canonical.pc_count();
  const double m = static_cast<double>(device_count_);
  const double fm = m / (m - 1.0);  // sample-variance correction m/(m-1)

  // u_{j,k} = sum_g w_g lambda_{g,k}; u_{j,0} = sum_g w_g lambda_{g,0}.
  u_sens_.assign(pc, 0.0);
  u_nominal_ = 0.0;
  for (const auto& [g, w] : grid_weights_) {
    u_nominal_ += w * canonical.nominal(g);
    for (std::size_t k = 0; k < pc; ++k)
      u_sens_[k] += w * canonical.sensitivity(g, k);
  }
  u_indep_sens_ = canonical.residual_sigma() / std::sqrt(m);
  double uvar = u_indep_sens_ * u_indep_sens_;
  for (double s : u_sens_) uvar += s * s;
  u_sigma_ = std::sqrt(uvar);

  // Centered per-grid coefficients: c_{g,k} = lambda_{g,k} - u_{j,k} and
  // d_g = lambda_{g,0} - u_{j,0}. Then (eq. 24, generalised)
  //   Q = fm * sum_g w_g c_g c_g^T,   l = 2 fm sum_g w_g d_g c_g,
  //   q0 = fm * sum_g w_g d_g^2.
  // We avoid materializing Q: the chi-square match needs only tr(Q) and
  // tr(Q^2), both computable from grid-pair dot products.
  const std::size_t gcount = grid_weights_.size();
  std::vector<double> d(gcount);
  std::vector<la::Vector> c(gcount, la::Vector(pc));
  for (std::size_t a = 0; a < gcount; ++a) {
    const auto& [g, w] = grid_weights_[a];
    (void)w;
    d[a] = canonical.nominal(g) - u_nominal_;
    for (std::size_t k = 0; k < pc; ++k)
      c[a][k] = canonical.sensitivity(g, k) - u_sens_[k];
  }

  // Pairwise dot products D(a, b) = c_a . c_b let every Q-trace be computed
  // without materializing the pc x pc matrix:
  //   tr(Q)   = fm   sum_a w_a D_aa
  //   tr(Q^2) = fm^2 sum_ab w_a w_b D_ab^2
  //   tr(Q^3) = fm^3 sum_abc w_a w_b w_c D_ab D_bc D_ca
  //   (l . c_b) = 2 fm sum_a w_a d_a D_ab
  std::vector<double> dots(gcount * gcount);
  for (std::size_t a = 0; a < gcount; ++a)
    for (std::size_t bgrid = a; bgrid < gcount; ++bgrid) {
      const double cc = la::dot(c[a], c[bgrid]);
      dots[a * gcount + bgrid] = cc;
      dots[bgrid * gcount + a] = cc;
    }

  double q0 = 0.0;
  double tr_q = 0.0;
  double tr_q2 = 0.0;
  double l_sq = 0.0;
  for (std::size_t a = 0; a < gcount; ++a) {
    const double wa = grid_weights_[a].second;
    q0 += wa * d[a] * d[a];
    tr_q += wa * dots[a * gcount + a];
    for (std::size_t bgrid = 0; bgrid < gcount; ++bgrid) {
      const double wb = grid_weights_[bgrid].second;
      const double cc = dots[a * gcount + bgrid];
      tr_q2 += wa * wb * cc * cc;
      l_sq += 4.0 * wa * wb * d[a] * d[bgrid] * cc;
    }
  }
  double tr_q3 = 0.0;
  for (std::size_t a = 0; a < gcount; ++a) {
    const double wa = grid_weights_[a].second;
    for (std::size_t bgrid = 0; bgrid < gcount; ++bgrid) {
      const double wab = wa * grid_weights_[bgrid].second *
                         dots[a * gcount + bgrid];
      if (wab == 0.0) continue;
      const double* row_b = dots.data() + bgrid * gcount;
      const double* row_a = dots.data() + a * gcount;
      double inner = 0.0;
      for (std::size_t cg = 0; cg < gcount; ++cg)
        inner += grid_weights_[cg].second * row_b[cg] * row_a[cg];
      tr_q3 += wab * inner;
    }
  }
  // l^T Q l = fm sum_b w_b (l . c_b)^2.
  double lql = 0.0;
  for (std::size_t bgrid = 0; bgrid < gcount; ++bgrid) {
    double lcb = 0.0;
    for (std::size_t a = 0; a < gcount; ++a)
      lcb += grid_weights_[a].second * d[a] * dots[a * gcount + bgrid];
    lcb *= 2.0 * fm;
    lql += grid_weights_[bgrid].second * lcb * lcb;
  }
  lql *= fm;
  q0 *= fm;
  tr_q *= fm;
  tr_q2 *= fm * fm;
  tr_q3 *= fm * fm * fm;
  l_sq *= fm * fm;
  v_mu3_ = 8.0 * tr_q3 + 6.0 * lql;

  const double sr2 =
      canonical.residual_sigma() * canonical.residual_sigma();
  v_constant_ = sr2 + q0;
  v_trace_ = tr_q;
  // Residual-sampling noise of the sample variance, 2 sigma_r^4/(m-1), is
  // negligible for chip-scale m but included for correctness.
  v_variance_ = 2.0 * tr_q2 + l_sq + 2.0 * sr2 * sr2 / (m - 1.0);
}

stats::Normal BlodMoments::u_marginal() const {
  return {u_nominal_, u_sigma_};
}

double BlodMoments::u_value(const la::Vector& z) const {
  require(z.size() == u_sens_.size(), "BlodMoments::u_value: z dimension");
  double u = u_nominal_;
  for (std::size_t k = 0; k < z.size(); ++k) u += u_sens_[k] * z[k];
  return u;
}

bool BlodMoments::v_degenerate() const {
  return v_trace_ <= 1e-9 * v_constant_;
}

stats::ShiftedChiSquare BlodMoments::v_marginal_three_moment() const {
  require(!v_degenerate(),
          "BlodMoments::v_marginal_three_moment: v is deterministic for "
          "this block");
  require(v_mu3_ > 0.0,
          "BlodMoments::v_marginal_three_moment: non-positive skewness");
  // shift + a * chi2(b) with mu3 = 8 a^3 b, var = 2 a^2 b.
  const double a_hat = v_mu3_ / (4.0 * v_variance_);
  const double b_hat = 0.5 * v_variance_ / (a_hat * a_hat);
  const double shift = v_mean() - a_hat * b_hat;
  return {shift, a_hat, b_hat};
}

stats::ShiftedChiSquare BlodMoments::v_marginal() const {
  require(!v_degenerate(),
          "BlodMoments::v_marginal: v is deterministic for this block "
          "(single-grid block); use v_mean() directly");
  // Two-moment (Yuan-Bentler) match, eq. (29-30):
  // v ~ v_constant + a_hat * chi2(b_hat).
  const double a_hat = v_variance_ / (2.0 * v_trace_);
  const double b_hat = 2.0 * v_trace_ * v_trace_ / v_variance_;
  return {v_constant_, a_hat, b_hat};
}

double BlodMoments::v_value(const la::Vector& z) const {
  const double m = static_cast<double>(device_count_);
  const double fm = m / (m - 1.0);
  const double u = u_value(z);
  double spread = 0.0;
  for (const auto& [g, w] : grid_weights_) {
    const double t = canonical_->correlated_thickness(g, z);
    spread += w * (t - u) * (t - u);
  }
  const double sr = canonical_->residual_sigma();
  return sr * sr + fm * spread;
}

stats::QuadraticForm BlodMoments::v_quadratic_form(
    const var::CanonicalForm& canonical) const {
  const std::size_t pc = canonical.pc_count();
  const double m = static_cast<double>(device_count_);
  const double fm = m / (m - 1.0);

  stats::QuadraticForm form;
  const double sr = canonical.residual_sigma();
  form.quad = la::Matrix(pc, pc, 0.0);
  form.linear.assign(pc, 0.0);
  double q0 = 0.0;
  la::Vector c(pc);
  for (const auto& [g, w] : grid_weights_) {
    const double dg = canonical.nominal(g) - u_nominal_;
    for (std::size_t k = 0; k < pc; ++k)
      c[k] = canonical.sensitivity(g, k) - u_sens_[k];
    q0 += fm * w * dg * dg;
    for (std::size_t k = 0; k < pc; ++k) {
      form.linear[k] += 2.0 * fm * w * dg * c[k];
      const double fwck = fm * w * c[k];
      for (std::size_t k2 = 0; k2 < pc; ++k2)
        form.quad(k, k2) += fwck * c[k2];
    }
  }
  form.constant = sr * sr + q0;
  return form;
}

}  // namespace obd::core
