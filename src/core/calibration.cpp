#include "core/calibration.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "linalg/cholesky.hpp"

namespace obd::core {
namespace {

constexpr double kKelvinOffset = 273.15;

}  // namespace

CalibrationResult fit_analytic_model(
    const std::vector<ReliabilityTableRow>& rows, double temp_ref_c,
    const AnalyticModelParams& base) {
  require(rows.size() >= 3,
          "fit_analytic_model: need at least 3 calibration rows");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    require(rows[i].alpha > 0.0 && rows[i].b > 0.0,
            "fit_analytic_model: alpha and b must be positive");
    for (std::size_t j = i + 1; j < rows.size(); ++j)
      require(std::fabs(rows[i].temp_c - rows[j].temp_c) > 1e-9,
              "fit_analytic_model: duplicate temperature rows");
  }
  const double tref = temp_ref_c + kKelvinOffset;

  // ln alpha: linear least squares on basis {1, x1, x2}. The raw columns
  // differ by ~6 orders of magnitude (x2 ~ 1e-6), so each column is
  // normalized to unit norm before forming the (jittered) normal
  // equations, and the solution is rescaled afterwards.
  std::vector<std::array<double, 3>> basis;
  basis.reserve(rows.size());
  double scale[3] = {0.0, 0.0, 0.0};
  for (const auto& row : rows) {
    const double t = row.temp_c + kKelvinOffset;
    basis.push_back({1.0, 1.0 / t - 1.0 / tref,
                     1.0 / (t * t) - 1.0 / (tref * tref)});
    for (int i = 0; i < 3; ++i) scale[i] += basis.back()[i] * basis.back()[i];
  }
  for (double& s : scale) {
    s = std::sqrt(s);
    require(s > 0.0, "fit_analytic_model: degenerate alpha basis");
  }

  la::Matrix ata(3, 3, 0.0);
  la::Vector aty(3, 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const double y = std::log(rows[r].alpha);
    for (int i = 0; i < 3; ++i) {
      const double pi = basis[r][i] / scale[i];
      aty[static_cast<std::size_t>(i)] += pi * y;
      for (int j = 0; j < 3; ++j)
        ata(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) +=
            pi * basis[r][j] / scale[j];
    }
  }
  const la::Matrix l = la::cholesky_lower_robust(
      ata, "fit_analytic_model", 1e-10 * ata.trace());
  la::Vector coef = la::cholesky_solve(l, aty);
  for (int i = 0; i < 3; ++i)
    coef[static_cast<std::size_t>(i)] /= scale[i];

  // b: ordinary least squares on {1, -(T - Tref)}.
  double s11 = 0.0, s1x = 0.0, sxx = 0.0, s1y = 0.0, sxy = 0.0;
  for (const auto& row : rows) {
    const double x = -(row.temp_c - temp_ref_c);
    s11 += 1.0;
    s1x += x;
    sxx += x * x;
    s1y += row.b;
    sxy += x * row.b;
  }
  const double det = s11 * sxx - s1x * s1x;
  require(std::fabs(det) > 1e-12, "fit_analytic_model: degenerate b fit");
  const double b_ref = (sxx * s1y - s1x * sxy) / det;
  const double b_slope = (s11 * sxy - s1x * s1y) / det;

  CalibrationResult result;
  result.params = base;
  result.params.temp_ref_c = temp_ref_c;
  result.params.alpha_ref = std::exp(coef[0]);
  result.params.c1 = coef[1];
  result.params.c2 = coef[2];
  result.params.b_ref = b_ref;
  result.params.b_temp_slope = b_slope;
  require(result.params.alpha_ref > 0.0 && result.params.b_ref > 0.0,
          "fit_analytic_model: fit produced non-physical parameters");

  // Residual diagnostics.
  const AnalyticReliabilityModel fitted(result.params);
  double sa = 0.0;
  double sb = 0.0;
  for (const auto& row : rows) {
    const double da = std::log(fitted.alpha(row.temp_c, base.vdd_ref)) -
                      std::log(row.alpha);
    const double db = fitted.b(row.temp_c, base.vdd_ref) - row.b;
    sa += da * da;
    sb += db * db;
  }
  result.log_alpha_rmse = std::sqrt(sa / static_cast<double>(rows.size()));
  result.b_rmse = std::sqrt(sb / static_cast<double>(rows.size()));
  return result;
}

}  // namespace obd::core
