// Lifetime-at-quantile solving and failure-curve generation.
//
// The paper reports lifetimes at the n-fault-per-million criterion
// (Section V): t_req with F_chip(t_req) = n * 1e-6. Every analysis method
// exposes a failure_probability(t); this header inverts it.
#pragma once

#include <functional>
#include <vector>

namespace obd::core {

/// F(t) targets for the paper's two reporting criteria.
inline constexpr double kOneFaultPerMillion = 1.0e-6;
inline constexpr double kTenFaultsPerMillion = 1.0e-5;

/// Solves F(t_req) = target for a monotone-increasing failure probability
/// F. Root finding runs in log-time (Brent with automatic bracket
/// expansion) starting from the seed decade [seed_lo, seed_hi] seconds.
double lifetime_at_failure(const std::function<double(double)>& failure,
                           double target, double seed_lo = 1.0e7,
                           double seed_hi = 1.0e9);

/// One point of a failure curve.
struct CurvePoint {
  double time_s = 0.0;
  double failure = 0.0;
};

/// Samples F on a log-spaced time grid [t_lo, t_hi] (Fig. 10 style).
std::vector<CurvePoint> failure_curve(
    const std::function<double(double)>& failure, double t_lo, double t_hi,
    std::size_t points);

/// One point of a hazard (instantaneous failure-rate) curve.
struct HazardPoint {
  double time_s = 0.0;
  double hazard_per_s = 0.0;  ///< lambda(t) = F'(t) / (1 - F(t))
};

/// Samples the hazard rate on a log-spaced grid by central differencing F
/// in log-time. OBD wear-out (beta > 1) shows as a monotonically
/// increasing hazard — the right-hand wall of the bathtub curve.
std::vector<HazardPoint> hazard_curve(
    const std::function<double(double)>& failure, double t_lo, double t_hi,
    std::size_t points, double log_step = 0.01);

}  // namespace obd::core
