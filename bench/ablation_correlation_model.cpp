// Ablation: spatial-correlation structure — exponential grid model
// (the paper's choice), quad-tree model (the cited alternative, ref [24]),
// and a model extracted from simulated wafer measurements (ref [20]).
//
// All three feed the identical downstream pipeline (BLOD -> st_fast), and
// each is scored against a Monte Carlo reference run *under its own model*,
// so the table isolates the analysis error from the model choice. The last
// column shows how much the predicted lifetime itself moves with the
// correlation structure.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "chip/design.hpp"
#include "common/table.hpp"
#include "core/analytic.hpp"
#include "core/lifetime.hpp"
#include "core/montecarlo.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"
#include "variation/extraction.hpp"
#include "variation/quadtree.hpp"

int main() {
  using namespace obd;
  const std::size_t mc_chips = bench::env_size("OBDREL_MC_CHIPS", 500);

  const chip::Design design = chip::make_benchmark(2);  // C2
  const auto profile = thermal::power_thermal_fixed_point(
      design, power::PowerParams{}, {.resolution = 32}, 2);
  const core::AnalyticReliabilityModel model;
  const var::VariationBudget budget;

  std::printf("Correlation-model ablation on %s (MC chips = %zu)\n\n",
              design.name.c_str(), mc_chips);

  // Extracted model: recover the budget and rho from synthetic wafer data
  // generated under the true grid model.
  const var::GridModel mgrid(design.width, design.height, 20);
  const var::CanonicalForm truth =
      var::make_canonical_form(mgrid, budget, 0.5, 1.0);
  stats::Rng rng(55);
  const auto data = var::simulate_measurements(truth, mgrid, 300, 60, rng);
  const auto fit = var::extract_correlation(data);
  std::printf("extracted model: rho_dist %.2f (true 0.50), variance split "
              "%.0f/%.0f/%.0f%% (true 50/25/25)\n\n",
              fit.rho_dist, 100.0 * fit.to_budget().global_share,
              100.0 * fit.to_budget().spatial_share,
              100.0 * fit.to_budget().independent_share);

  struct Case {
    const char* label;
    var::VariationBudget budget;
    core::ProblemOptions options;
  };
  core::ProblemOptions grid_opts;
  core::ProblemOptions qt_opts;
  qt_opts.structure = core::CorrelationStructure::kQuadTree;
  core::ProblemOptions fit_opts;
  fit_opts.rho_dist = fit.rho_dist;
  const Case cases[] = {
      {"grid/exponential (paper)", budget, grid_opts},
      {"quad-tree [24]", budget, qt_opts},
      {"extracted [20]", fit.to_budget(), fit_opts},
  };

  TextTable acc({"model", "st_fast vs own-MC 1/m (%)", "10/m (%)",
                 "t_10ppm [y]"});
  for (const Case& c : cases) {
    const auto problem = core::ReliabilityProblem::build(
        design, c.budget, model, profile.block_temps_c, 1.2, c.options);
    const core::AnalyticAnalyzer fast(problem);
    const core::MonteCarloAnalyzer mc(problem, {.chip_samples = mc_chips});
    const double t1 = fast.lifetime_at(core::kOneFaultPerMillion);
    const double t10 = fast.lifetime_at(core::kTenFaultsPerMillion);
    acc.add_row(
        {c.label,
         fmt(bench::pct_error(t1, mc.lifetime_at(core::kOneFaultPerMillion)),
             2),
         fmt(bench::pct_error(t10,
                              mc.lifetime_at(core::kTenFaultsPerMillion)),
             2),
         fmt(t10 / bench::kYear, 2)});
  }
  acc.print(std::cout);

  // Model-structure comparison: mid-die correlation under both families.
  const double d_mid = 0.5 * design.width;
  const double rho_qt = var::quadtree_correlation(
      0.25 * design.width, 0.25 * design.height,
      0.25 * design.width + d_mid, 0.25 * design.height, design.width,
      design.height, budget);
  const double rho_grid =
      (budget.global_share +
       budget.spatial_share * std::exp(-d_mid / (0.5 * design.width))) /
      (budget.global_share + budget.spatial_share);
  std::printf("\nmid-die correlation: grid/exponential %.3f, quad-tree %.3f\n",
              rho_grid, rho_qt);
  std::printf(
      "\nExpected shape: st_fast stays within a few %% of MC under every\n"
      "correlation structure (the paper's Table IV robustness claim,\n"
      "generalized across model families).\n");
  return 0;
}
