// Sign-off companion analyses on the same statistical substrate:
//   1. full-chip gate-leakage distribution across the manufactured
//      ensemble (mean, nominal-die, percentile chips), and
//   2. the reliability sensitivity ranking — which block's cooling buys
//      the most ppm lifetime, and what a 10 mV supply bump costs.
#include <algorithm>
#include <cstdio>

#include "chip/design.hpp"
#include "core/leakage.hpp"
#include "core/lifetime.hpp"
#include "core/sensitivity.hpp"
#include "power/power.hpp"
#include "stats/descriptive.hpp"
#include "thermal/solver.hpp"

int main() {
  using namespace obd;

  const chip::Design design = chip::make_ev6_design();
  const auto profile = thermal::power_thermal_fixed_point(
      design, power::PowerParams{}, {.resolution = 48}, 2);
  const core::AnalyticReliabilityModel model;
  const auto problem = core::ReliabilityProblem::build(
      design, var::VariationBudget{}, model, profile.block_temps_c, 1.2);

  // --- Leakage across the manufactured ensemble --------------------------
  const core::LeakageAnalyzer leak(problem);
  auto samples = leak.sample_chip_leakage(20000);
  std::sort(samples.begin(), samples.end());

  std::printf("Gate-leakage distribution, %s (%zu devices):\n",
              design.name.c_str(), design.total_devices());
  std::printf("  nominal die          : %8.3f mA\n",
              1e3 * leak.nominal_chip());
  std::printf("  ensemble mean        : %8.3f mA (Jensen margin %+.1f%%)\n",
              1e3 * leak.mean(),
              100.0 * (leak.mean() / leak.nominal_chip() - 1.0));
  for (double q : {0.05, 0.50, 0.95, 0.999}) {
    std::printf("  %5.1f%% chip          : %8.3f mA\n", 100.0 * q,
                1e3 * stats::quantile(samples, q));
  }

  std::printf("\n  leakiest blocks (ensemble mean):\n");
  std::vector<std::pair<double, std::string>> by_block;
  for (std::size_t j = 0; j < problem.blocks().size(); ++j)
    by_block.emplace_back(leak.block_mean(j), problem.blocks()[j].name);
  std::sort(by_block.rbegin(), by_block.rend());
  for (std::size_t j = 0; j < 5; ++j)
    std::printf("    %-8s %8.3f mA\n", by_block[j].second.c_str(),
                1e3 * by_block[j].first);

  // --- Reliability sensitivity ranking -----------------------------------
  std::printf("\nLifetime sensitivity at 10/million "
              "(fractional gain per degree of cooling):\n");
  auto sens = core::temperature_sensitivity(problem, model,
                                            core::kTenFaultsPerMillion);
  std::sort(sens.begin(), sens.end(),
            [](const auto& a, const auto& b) {
              return a.lifetime_per_degree > b.lifetime_per_degree;
            });
  std::printf("  %-8s %8s %14s %14s\n", "block", "T [C]", "dln(t)/dT",
              "failure share");
  for (const auto& s : sens)
    std::printf("  %-8s %8.1f %13.2f%% %13.1f%%\n", s.name.c_str(),
                s.temp_c, 100.0 * s.lifetime_per_degree,
                100.0 * s.failure_share);

  std::printf("\nSupply elasticity: %.1f%% lifetime per +10 mV Vdd\n",
              100.0 * core::vdd_sensitivity(problem, model,
                                            core::kTenFaultsPerMillion));
  return 0;
}
