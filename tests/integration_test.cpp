// End-to-end pipeline test: power model -> thermal solver -> reliability
// problem -> all analysis methods, on the paper's C1 benchmark. This is the
// full flow a user of the library runs, and it checks the paper's
// qualitative claims hold through the entire stack.
#include <gtest/gtest.h>

#include "chip/design.hpp"
#include "common/stopwatch.hpp"
#include "core/analytic.hpp"
#include "core/guardband.hpp"
#include "core/hybrid.hpp"
#include "core/lifetime.hpp"
#include "core/montecarlo.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"

namespace obd {
namespace {

class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_benchmark(1));  // C1: 50K devices
    profile_ = new thermal::ThermalProfile(thermal::power_thermal_fixed_point(
        *design_, power::PowerParams{}, {.resolution = 32}, 2));
    model_ = new core::AnalyticReliabilityModel();
    problem_ = new core::ReliabilityProblem(core::ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_, profile_->block_temps_c,
        1.2, core::ProblemOptions{}));
  }
  static void TearDownTestSuite() {
    delete problem_;
    delete model_;
    delete profile_;
    delete design_;
    problem_ = nullptr;
    model_ = nullptr;
    profile_ = nullptr;
    design_ = nullptr;
  }

  static chip::Design* design_;
  static thermal::ThermalProfile* profile_;
  static core::AnalyticReliabilityModel* model_;
  static core::ReliabilityProblem* problem_;
};

chip::Design* PipelineFixture::design_ = nullptr;
thermal::ThermalProfile* PipelineFixture::profile_ = nullptr;
core::AnalyticReliabilityModel* PipelineFixture::model_ = nullptr;
core::ReliabilityProblem* PipelineFixture::problem_ = nullptr;

TEST_F(PipelineFixture, ThermalProfileFeedsDistinctBlockParameters) {
  // The whole point of the paper: different blocks see different
  // temperatures and hence different (alpha, b).
  double alpha_min = 1e300;
  double alpha_max = 0.0;
  for (const auto& b : problem_->blocks()) {
    alpha_min = std::min(alpha_min, b.alpha);
    alpha_max = std::max(alpha_max, b.alpha);
  }
  EXPECT_GT(alpha_max / alpha_min, 1.5);
}

TEST_F(PipelineFixture, PpmLifetimesLandInPhysicalDecade) {
  // Calibration sanity: ppm lifetimes of a 50K-device chip at realistic
  // temperatures should land between months and decades.
  const core::AnalyticAnalyzer fast(*problem_);
  const double t_1ppm = fast.lifetime_at(core::kOneFaultPerMillion);
  EXPECT_GT(t_1ppm, 1e6);    // > ~12 days
  EXPECT_LT(t_1ppm, 1e11);   // < ~3000 years
}

TEST_F(PipelineFixture, AllMethodsOrderedAsInTableIII) {
  const core::AnalyticAnalyzer fast(*problem_);
  const core::StMcAnalyzer st_mc(*problem_, {.samples = 5000});
  const core::HybridEvaluator hybrid(*problem_);
  const core::GuardBandAnalyzer guard(*problem_);
  const core::MonteCarloAnalyzer mc(*problem_, {.chip_samples = 300});

  const double t_mc = mc.lifetime_at(core::kTenFaultsPerMillion);
  const double t_fast = fast.lifetime_at(core::kTenFaultsPerMillion);
  const double t_stmc = st_mc.lifetime_at(core::kTenFaultsPerMillion);
  const double t_hybrid = hybrid.lifetime_at(core::kTenFaultsPerMillion);
  const double t_guard = guard.lifetime_at(core::kTenFaultsPerMillion);

  // Proposed methods all near MC (Table III: ~1-2%; we allow sampling
  // noise of the small MC here).
  EXPECT_NEAR(t_fast / t_mc, 1.0, 0.10);
  EXPECT_NEAR(t_stmc / t_mc, 1.0, 0.10);
  EXPECT_NEAR(t_hybrid / t_mc, 1.0, 0.10);
  // Guard band far below (pessimistic).
  EXPECT_LT(t_guard, 0.75 * t_mc);
}

TEST_F(PipelineFixture, QueriesAreOrdersOfMagnitudeFasterThanMc) {
  // Shape of the runtime column: per-query cost of the statistical methods
  // must beat the Monte Carlo evaluation dramatically. (Construction/PCA is
  // shared preprocessing, as in the paper's complexity discussion.)
  // The margin here is deliberately loose: the hoisted factor-table MC
  // evaluation kernel plus the nonzero-bin-range trim cut per-query MC
  // cost by several times, and this fixture's device count is far below
  // Table I scale, where the gap is orders of magnitude. The MC side uses
  // the paper's 1000 sample chips so the per-query cost being compared is
  // the representative one.
  const core::AnalyticAnalyzer fast(*problem_);
  const core::MonteCarloAnalyzer mc(*problem_, {.chip_samples = 1000});

  Stopwatch sw;
  double sink = 0.0;
  const int reps = 50;
  for (int i = 0; i < reps; ++i)
    sink += fast.failure_probability(2e8 + i);
  const double t_fast = sw.seconds();

  sw.reset();
  for (int i = 0; i < reps; ++i)
    sink += mc.failure_probability(2e8 + i);
  const double t_mc = sw.seconds();

  EXPECT_GT(sink, 0.0);
  EXPECT_GT(t_mc / t_fast, 3.0);
}

TEST_F(PipelineFixture, VddKnobShiftsLifetime) {
  // Voltage acceleration end-to-end: raising Vdd shortens the ppm lifetime.
  const auto lo = core::ReliabilityProblem::build(
      *design_, var::VariationBudget{}, *model_, profile_->block_temps_c,
      1.1, core::ProblemOptions{});
  const auto hi = core::ReliabilityProblem::build(
      *design_, var::VariationBudget{}, *model_, profile_->block_temps_c,
      1.3, core::ProblemOptions{});
  const core::AnalyticAnalyzer a_lo(lo);
  const core::AnalyticAnalyzer a_hi(hi);
  EXPECT_GT(a_lo.lifetime_at(1e-6), 2.0 * a_hi.lifetime_at(1e-6));
}

TEST_F(PipelineFixture, TabulatedModelReproducesAnalyticPipeline) {
  std::vector<double> temps;
  for (double t = 40.0; t <= 130.0; t += 2.5) temps.push_back(t);
  const auto table =
      core::TabulatedReliabilityModel::from_model(*model_, temps);
  const auto table_problem = core::ReliabilityProblem::build(
      *design_, var::VariationBudget{}, table, profile_->block_temps_c, 1.2,
      core::ProblemOptions{});
  const core::AnalyticAnalyzer a(*problem_);
  const core::AnalyticAnalyzer b(table_problem);
  EXPECT_NEAR(b.lifetime_at(1e-6) / a.lifetime_at(1e-6), 1.0, 0.02);
}

}  // namespace
}  // namespace obd
