// Pseudo-random number generation.
//
// All stochastic components of the library (Monte Carlo reference flows,
// thickness samplers, device failure-time sampling) draw from this RNG so
// experiments are reproducible from a single seed. The generator is
// xoshiro256++ (Blackman & Vigna): tiny state, excellent statistical quality,
// and much faster than std::mt19937_64 — the full-chip Monte Carlo reference
// draws close to a billion variates per run.
#pragma once

#include <cstdint>

namespace obd::stats {

/// xoshiro256++ uniform random bit generator with Gaussian helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator deterministically via splitmix64 over `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit value (satisfies UniformRandomBitGenerator).
  result_type operator()();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in (0, 1] — safe as an argument to log().
  double uniform_positive();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal variate (Box–Muller with caching; exact, branch-light).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Standard exponential variate (rate 1).
  double exponential();

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n);

  /// Returns an independent generator stream (jump via reseeding with the
  /// current state mixed through splitmix64). Useful for parallel fan-out.
  Rng split();

  /// Deterministic independent stream `stream` of a seed: both words are
  /// whitened through splitmix64 before combining, so nearby (seed, stream)
  /// pairs yield decorrelated generators. This is how per-chip Monte Carlo
  /// streams are derived — unlike seeding with `seed + c * stream`, whose
  /// affinely-related seeds make consecutive chips share three of their
  /// four xoshiro state words (the constructor fills state with
  /// splitmix64(seed + k * GOLDEN) for k = 1..4).
  static Rng stream(std::uint64_t seed, std::uint64_t stream);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace obd::stats
