// DRM stress test: a long control-loop run on hostile telemetry. The
// manager sees NaN activity spikes, implausible activity (> max_activity),
// negative samples, and periodically injected thermal-solve faults — and
// must never throw, never corrupt its damage accounting, and keep honoring
// the budget trajectory whenever it runs above the slowest rung.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "chip/design.hpp"
#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "core/device_model.hpp"
#include "core/problem.hpp"
#include "drm/manager.hpp"

namespace obd::drm {
namespace {

constexpr int kSteps = 400;

class DrmStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new chip::Design(chip::make_synthetic_design(
        "stress", {.devices = 20000, .block_count = 5, .die_width = 5.0,
                   .die_height = 5.0, .seed = 17}));
    model_ = new core::AnalyticReliabilityModel();
    core::ProblemOptions opts;
    opts.grid_cells_per_side = 10;
    problem_ = new core::ReliabilityProblem(core::ReliabilityProblem::build(
        *design_, var::VariationBudget{}, *model_,
        std::vector<double>(5, 80.0), 1.2, opts));
    ladder_ = new std::vector<OperatingPoint>{
        {"eco", 1.00, 1.2e9}, {"mid", 1.10, 1.7e9}, {"turbo", 1.25, 2.3e9}};
  }
  static void TearDownTestSuite() {
    delete ladder_;
    delete problem_;
    delete model_;
    delete design_;
    ladder_ = nullptr;
    problem_ = nullptr;
    model_ = nullptr;
    design_ = nullptr;
  }
  void SetUp() override {
    fault::disarm();
    diagnostics().clear();
    set_strict_mode(false);
  }
  void TearDown() override {
    fault::disarm();
    diagnostics().clear();
    set_strict_mode(false);
  }

  // Hostile workload schedule: mostly sane, with periodic NaN spikes,
  // implausible overshoots, and negative sensor glitches.
  static double workload(int i) {
    if (i % 13 == 5) return std::numeric_limits<double>::quiet_NaN();
    if (i % 7 == 3) return 2.7;  // beyond DrmOptions::max_activity
    if (i % 29 == 11) return -1.0;
    return (i % 10 < 7) ? 0.4 : 1.0;
  }

  static chip::Design* design_;
  static core::AnalyticReliabilityModel* model_;
  static core::ReliabilityProblem* problem_;
  static std::vector<OperatingPoint>* ladder_;
};

chip::Design* DrmStressTest::design_ = nullptr;
core::AnalyticReliabilityModel* DrmStressTest::model_ = nullptr;
core::ReliabilityProblem* DrmStressTest::problem_ = nullptr;
std::vector<OperatingPoint>* DrmStressTest::ladder_ = nullptr;

TEST_F(DrmStressTest, SurvivesHostileTelemetryAndInjectedFaults) {
  DrmOptions opts;
  opts.lifetime_target_s = 10.0 * 365.25 * 86400.0;
  // 400 weekly intervals ~ 7.7 years: most of the lifetime, still inside
  // the target so the budget line keeps a positive slope throughout.
  opts.control_interval_s = 7.0 * 86400.0;
  opts.failure_budget = 1e-5;
  ReliabilityManager mgr(*problem_, *model_, *ladder_, opts);

  double prev_damage = 0.0;
  int degraded_steps = 0;
  for (int i = 0; i < kSteps; ++i) {
    // Periodically knock out the thermal solve for the next few rung
    // evaluations: the manager must skip the failing rungs (down to
    // guard-band fallback) instead of propagating the error.
    if (i % 50 == 10) fault::arm("drm.thermal:3");

    DrmStep s;
    ASSERT_NO_THROW(s = mgr.step(workload(i))) << "step " << i;

    // Damage accounting stays sane under every repair path.
    ASSERT_TRUE(std::isfinite(s.damage)) << "step " << i;
    EXPECT_GE(s.damage, prev_damage) << "step " << i;
    prev_damage = s.damage;

    // Policy invariant: any rung above the slowest was chosen because its
    // projected damage fit the trajectory; committing it must keep the
    // manager on (or under) the budget line.
    if (s.op_index > 0) {
      EXPECT_LE(s.damage, s.budget_line * (1.0 + 1e-9)) << "step " << i;
    }

    EXPECT_LT(s.op_index, ladder_->size()) << "step " << i;
    EXPECT_TRUE(std::isfinite(s.max_temp_c)) << "step " << i;
    if (s.degraded) ++degraded_steps;
  }

  // The schedule contains ~30 NaN spikes, ~57 overshoots, ~13 negative
  // glitches and 8 injected fault bursts — a large share of steps must
  // have been flagged degraded, and every repair left a diagnostic.
  EXPECT_GT(degraded_steps, 80);
  EXPECT_LT(degraded_steps, kSteps);  // sane steps stay clean
  EXPECT_GE(diagnostics().count("drm.step"), static_cast<std::size_t>(80));

  // End-of-run: damage accrued but the chip is still within its budget
  // envelope scaled to the elapsed fraction of life (guard-band fallbacks
  // are pessimistic, so allow modest overshoot of the *line*, never of the
  // end-of-life budget).
  EXPECT_GT(mgr.damage(), 0.0);
  EXPECT_LE(mgr.damage(), opts.failure_budget);
  EXPECT_NEAR(mgr.elapsed_s(), kSteps * opts.control_interval_s, 1.0);
}

TEST_F(DrmStressTest, PermanentThermalFaultFallsBackToGuardBand) {
  DrmOptions opts;
  opts.control_interval_s = 7.0 * 86400.0;
  ReliabilityManager mgr(*problem_, *model_, *ladder_, opts);
  fault::arm("drm.thermal:*");  // every thermal evaluation fails
  double prev = 0.0;
  for (int i = 0; i < 10; ++i) {
    DrmStep s;
    ASSERT_NO_THROW(s = mgr.step(0.8)) << "step " << i;
    // No rung is evaluable: the manager must run the slowest rung at
    // guard-band hot-corner conditions and keep accruing damage.
    EXPECT_EQ(s.op_index, 0u);
    EXPECT_TRUE(s.degraded);
    EXPECT_GE(s.max_temp_c, opts.fallback_temp_c);
    EXPECT_TRUE(std::isfinite(s.damage));
    EXPECT_GT(s.damage, prev);
    prev = s.damage;
  }
  fault::disarm();
  // Fault cleared: the manager recovers real thermal evaluations.
  const DrmStep s = mgr.step(0.8);
  EXPECT_LT(s.max_temp_c, opts.fallback_temp_c);
}

// step_fixed() (static policies / baselines) honors the same robustness
// contract as step(): clamp hostile telemetry with a diagnostic, fall
// back to guard-band conditions on thermal failure, never throw in
// non-strict mode.
TEST_F(DrmStressTest, StepFixedSurvivesHostileTelemetryLikeStep) {
  DrmOptions opts;
  opts.control_interval_s = 7.0 * 86400.0;
  ReliabilityManager mgr(*problem_, *model_, *ladder_, opts);
  double prev = 0.0;
  int degraded_steps = 0;
  for (int i = 0; i < 60; ++i) {
    if (i % 20 == 10) fault::arm("drm.thermal:2");
    DrmStep s;
    ASSERT_NO_THROW(s = mgr.step_fixed(i % ladder_->size(), workload(i)))
        << "step " << i;
    ASSERT_TRUE(std::isfinite(s.damage)) << "step " << i;
    EXPECT_GE(s.damage, prev) << "step " << i;
    EXPECT_TRUE(std::isfinite(s.max_temp_c)) << "step " << i;
    prev = s.damage;
    if (s.degraded) ++degraded_steps;
  }
  // NaN spikes, overshoots, negative glitches, and injected thermal
  // faults all landed: a healthy share of steps must be flagged.
  EXPECT_GT(degraded_steps, 10);
  EXPECT_LT(degraded_steps, 60);
}

// Under a permanent thermal fault, step() collapses onto the slowest rung
// at guard-band conditions — which is exactly what step_fixed(0) computes.
// The two paths must agree bit for bit, or checkpoint replay and baseline
// comparisons silently diverge.
TEST_F(DrmStressTest, StepAndStepFixedAgreeOnTheGuardBandFallback) {
  DrmOptions opts;
  opts.control_interval_s = 7.0 * 86400.0;
  ReliabilityManager dynamic(*problem_, *model_, *ladder_, opts);
  ReliabilityManager fixed(*problem_, *model_, *ladder_, opts);
  fault::arm("drm.thermal:*");
  for (int i = 0; i < 8; ++i) {
    const DrmStep a = dynamic.step(workload(i));
    const DrmStep b = fixed.step_fixed(0, workload(i));
    ASSERT_EQ(a.op_index, 0u) << "step " << i;
    EXPECT_EQ(a.damage, b.damage) << "step " << i;
    EXPECT_EQ(a.max_temp_c, b.max_temp_c) << "step " << i;
    EXPECT_EQ(a.degraded, b.degraded) << "step " << i;
  }
  EXPECT_EQ(dynamic.block_damage(), fixed.block_damage());
}

TEST_F(DrmStressTest, StrictModeSurfacesTheFirstRepair) {
  ReliabilityManager mgr(*problem_, *model_, *ladder_);
  set_strict_mode(true);
  try {
    mgr.step(std::numeric_limits<double>::quiet_NaN());
    ADD_FAILURE() << "strict mode must escalate the NaN repair";
  } catch (const obd::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDegraded);
  }
  // step_fixed() escalates identically — parity with step().
  try {
    mgr.step_fixed(0, std::numeric_limits<double>::quiet_NaN());
    ADD_FAILURE() << "strict mode must escalate the NaN repair";
  } catch (const obd::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDegraded);
  }
  set_strict_mode(false);
}

}  // namespace
}  // namespace obd::drm
