#include "thermal/block_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/cholesky.hpp"

namespace obd::thermal {
namespace {

// Overlap length of two 1-D intervals.
double interval_overlap(double a0, double a1, double b0, double b1) {
  return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}

}  // namespace

double shared_edge_length(const chip::Rect& a, const chip::Rect& b) {
  constexpr double kAbut = 1e-9;
  // Vertical shared edge: a's right against b's left (or vice versa).
  if (std::fabs((a.x + a.width) - b.x) < kAbut ||
      std::fabs((b.x + b.width) - a.x) < kAbut)
    return interval_overlap(a.y, a.y + a.height, b.y, b.y + b.height);
  // Horizontal shared edge.
  if (std::fabs((a.y + a.height) - b.y) < kAbut ||
      std::fabs((b.y + b.height) - a.y) < kAbut)
    return interval_overlap(a.x, a.x + a.width, b.x, b.x + b.width);
  return 0.0;
}

ThermalProfile solve_thermal_blocks(const chip::Design& design,
                                    const power::PowerMap& power,
                                    const ThermalParams& params) {
  design.validate();
  require(power.block_watts.size() == design.blocks.size(),
          "solve_thermal_blocks: power map size mismatch");
  require(params.package_resistance > 0.0,
          "solve_thermal_blocks: package resistance must be positive");

  const std::size_t n = design.blocks.size();
  const double die_area = design.die_area();

  // Conductance matrix: lateral between abutting blocks, vertical to
  // ambient by area share.
  la::Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const chip::Rect& ri = design.blocks[i].rect;
    for (std::size_t j = i + 1; j < n; ++j) {
      const chip::Rect& rj = design.blocks[j].rect;
      const double edge = shared_edge_length(ri, rj);
      if (edge <= 0.0) continue;
      const double dist = std::hypot(ri.center_x() - rj.center_x(),
                                     ri.center_y() - rj.center_y());
      const double g =
          params.conductivity * params.die_thickness * edge / dist;
      a(i, j) -= g;
      a(j, i) -= g;
      a(i, i) += g;
      a(j, j) += g;
    }
    a(i, i) += (1.0 / params.package_resistance) * ri.area() / die_area;
  }

  const la::Matrix l =
      cholesky_lower_robust(a, "solve_thermal_blocks", 1e-12);
  const la::Vector rise = cholesky_solve(l, power.block_watts);

  ThermalProfile profile;
  profile.resolution = params.resolution;
  profile.die_width = design.width;
  profile.die_height = design.height;
  profile.block_temps_c.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    profile.block_temps_c[i] = params.ambient_c + rise[i];

  // Render a cell field from block temperatures (dominant-overlap block).
  const std::size_t res = params.resolution;
  profile.cell_temps_c.assign(res * res, params.ambient_c);
  const double cw = design.width / static_cast<double>(res);
  const double ch = design.height / static_cast<double>(res);
  for (std::size_t r = 0; r < res; ++r) {
    for (std::size_t c = 0; c < res; ++c) {
      const chip::Rect cell{static_cast<double>(c) * cw,
                            static_cast<double>(r) * ch, cw, ch};
      double best_overlap = 0.0;
      double temp = params.ambient_c;
      for (std::size_t i = 0; i < n; ++i) {
        const double ov = design.blocks[i].rect.overlap(cell);
        if (ov > best_overlap) {
          best_overlap = ov;
          temp = profile.block_temps_c[i];
        }
      }
      profile.cell_temps_c[r * res + c] = temp;
    }
  }
  return profile;
}

}  // namespace obd::thermal
