#include "thermal/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/parallel.hpp"

namespace obd::thermal {
namespace {

bool all_finite(const std::vector<double>& v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

// One SOR cell relaxation; returns the absolute update. Shared by both
// sweep orders so their per-cell arithmetic is identical (and identical to
// the historical inline loop body).
inline double update_cell(std::vector<double>& t,
                          const std::vector<double>& cell_power,
                          std::size_t n, std::size_t r, std::size_t c,
                          double g_lat_x, double g_lat_y, double g_vert,
                          double omega) {
  const std::size_t i = r * n + c;
  double g_sum = g_vert;
  double rhs = cell_power[i];
  if (c > 0) {
    g_sum += g_lat_x;
    rhs += g_lat_x * t[i - 1];
  }
  if (c + 1 < n) {
    g_sum += g_lat_x;
    rhs += g_lat_x * t[i + 1];
  }
  if (r > 0) {
    g_sum += g_lat_y;
    rhs += g_lat_y * t[i - n];
  }
  if (r + 1 < n) {
    g_sum += g_lat_y;
    rhs += g_lat_y * t[i + n];
  }
  const double updated = rhs / g_sum;
  const double next = t[i] + omega * (updated - t[i]);
  const double change = std::fabs(next - t[i]);
  t[i] = next;
  return change;
}

// Historical row-major sweep: visits cells in lexicographic order on the
// calling thread. Bit-identical to the pre-refactor inline loop.
double sweep_lex(std::vector<double>& t, const std::vector<double>& cell_power,
                 std::size_t n, double g_lat_x, double g_lat_y, double g_vert,
                 double omega) {
  double residual = 0.0;
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      residual = std::max(residual, update_cell(t, cell_power, n, r, c,
                                                g_lat_x, g_lat_y, g_vert,
                                                omega));
  return residual;
}

// Red-black sweep: updates one checkerboard color at a time. Cells of one
// color only read neighbors of the other color, so the row stripes of each
// half-sweep are data-independent and run on the shared pool. The residual
// is a max reduction, which is order-invariant, so the result is
// bit-identical for any thread count (see parallel.hpp's determinism
// contract).
double sweep_redblack(std::vector<double>& t,
                      const std::vector<double>& cell_power, std::size_t n,
                      double g_lat_x, double g_lat_y, double g_vert,
                      double omega) {
  double residual = 0.0;
  for (std::size_t color = 0; color < 2; ++color) {
    const double worst = par::parallel_reduce(
        std::size_t{0}, n, std::size_t{8}, 0.0,
        [&](std::size_t rb, std::size_t re) {
          double local = 0.0;
          for (std::size_t r = rb; r < re; ++r)
            for (std::size_t c = (r + color) & 1; c < n; c += 2)
              local = std::max(local, update_cell(t, cell_power, n, r, c,
                                                  g_lat_x, g_lat_y, g_vert,
                                                  omega));
          return local;
        },
        [](double a, double b) { return std::max(a, b); });
    residual = std::max(residual, worst);
  }
  return residual;
}

}  // namespace

double ThermalProfile::min_c() const {
  return *std::min_element(cell_temps_c.begin(), cell_temps_c.end());
}

double ThermalProfile::max_c() const {
  return *std::max_element(cell_temps_c.begin(), cell_temps_c.end());
}

double ThermalProfile::at(double x, double y) const {
  const double fx = std::clamp(x / die_width, 0.0, 1.0 - 1e-12);
  const double fy = std::clamp(y / die_height, 0.0, 1.0 - 1e-12);
  const auto col =
      static_cast<std::size_t>(fx * static_cast<double>(resolution));
  const auto row =
      static_cast<std::size_t>(fy * static_cast<double>(resolution));
  return cell_temps_c[row * resolution + col];
}

ThermalProfile solve_thermal(const chip::Design& design,
                             const power::PowerMap& power,
                             const ThermalParams& params, SorState* state) {
  design.validate();
  require(power.block_watts.size() == design.blocks.size(),
          "solve_thermal: power map size mismatch");
  require(params.resolution >= 2, "solve_thermal: resolution must be >= 2");
  require(params.sor_omega > 0.0 && params.sor_omega < 2.0,
          "solve_thermal: SOR omega must be in (0, 2)");
  require(params.package_resistance > 0.0,
          "solve_thermal: package resistance must be positive");
  require(all_finite(power.block_watts),
          "solve_thermal: power map contains non-finite values");

  const std::size_t n = params.resolution;
  const double cw = design.width / static_cast<double>(n);
  const double ch = design.height / static_cast<double>(n);

  // Per-cell power: block power density integrated over the overlap with
  // each cell.
  std::vector<double> cell_power(n * n, 0.0);
  for (std::size_t b = 0; b < design.blocks.size(); ++b) {
    const chip::Rect& rect = design.blocks[b].rect;
    const double density = power.block_watts[b] / rect.area();
    // Restrict the scan to cells the block can overlap.
    const auto c0 = static_cast<std::size_t>(
        std::clamp(rect.x / cw, 0.0, static_cast<double>(n - 1)));
    const auto c1 = static_cast<std::size_t>(std::clamp(
        (rect.x + rect.width) / cw, 0.0, static_cast<double>(n - 1)));
    const auto r0 = static_cast<std::size_t>(
        std::clamp(rect.y / ch, 0.0, static_cast<double>(n - 1)));
    const auto r1 = static_cast<std::size_t>(std::clamp(
        (rect.y + rect.height) / ch, 0.0, static_cast<double>(n - 1)));
    for (std::size_t r = r0; r <= r1; ++r) {
      for (std::size_t c = c0; c <= c1; ++c) {
        const chip::Rect cell{static_cast<double>(c) * cw,
                              static_cast<double>(r) * ch, cw, ch};
        cell_power[r * n + c] += density * rect.overlap(cell);
      }
    }
  }

  // Conductances. Lateral: k * t * (perpendicular length / pitch).
  const double g_lat_x = params.conductivity * params.die_thickness *
                         (ch / cw);  // between horizontal neighbors
  const double g_lat_y = params.conductivity * params.die_thickness *
                         (cw / ch);  // between vertical neighbors
  // Vertical: the total package conductance 1/R distributed by cell area.
  const double g_vert = (1.0 / params.package_resistance) /
                        static_cast<double>(n * n);

  // SOR on: sum_nb g*(T_nb - T_i) + g_vert*(T_amb - T_i) + P_i = 0.
  // Temperatures are stored as rise over ambient; ambient added at the end.
  std::vector<double> t(n * n, 0.0);
  if (state && state->rise.size() == n * n && all_finite(state->rise))
    t = state->rise;  // warm start from a previous (partial) solve
  double residual = 0.0;
  std::size_t iter = 0;
  for (; iter < params.max_iterations; ++iter) {
    residual = (params.sweep == SweepOrder::kRedBlack)
                   ? sweep_redblack(t, cell_power, n, g_lat_x, g_lat_y,
                                    g_vert, params.sor_omega)
                   : sweep_lex(t, cell_power, n, g_lat_x, g_lat_y, g_vert,
                               params.sor_omega);
    if (residual < params.tolerance) break;
  }
  // Hand the iterate back before the convergence check so a failed solve
  // still gives the caller its partial progress for a warm-started retry.
  if (state) {
    state->rise = t;
    state->iterations = std::min(iter + 1, params.max_iterations);
  }
  if (fault::should_fire(fault::site::kThermalSor))
    residual = std::numeric_limits<double>::infinity();
  require(std::isfinite(residual) && residual < params.tolerance,
          ErrorCode::kNonconvergence,
          "solve_thermal: SOR failed to converge");

  ThermalProfile profile;
  profile.resolution = n;
  profile.die_width = design.width;
  profile.die_height = design.height;
  profile.cell_temps_c.resize(n * n);
  for (std::size_t i = 0; i < n * n; ++i)
    profile.cell_temps_c[i] = params.ambient_c + t[i];

  // Block aggregates: overlap-area-weighted average of cell temperatures.
  profile.block_temps_c.resize(design.blocks.size());
  for (std::size_t b = 0; b < design.blocks.size(); ++b) {
    const chip::Rect& rect = design.blocks[b].rect;
    double weighted = 0.0;
    double area = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        const chip::Rect cell{static_cast<double>(c) * cw,
                              static_cast<double>(r) * ch, cw, ch};
        const double ov = rect.overlap(cell);
        if (ov <= 0.0) continue;
        weighted += ov * profile.cell_temps_c[r * n + c];
        area += ov;
      }
    }
    require(area > 0.0, "solve_thermal: block overlaps no cells");
    profile.block_temps_c[b] = weighted / area;
  }
  return profile;
}

ThermalProfile power_thermal_fixed_point(const chip::Design& design,
                                         const power::PowerParams& pparams,
                                         const ThermalParams& tparams,
                                         std::size_t iterations) {
  require(iterations >= 1, "power_thermal_fixed_point: need >= 1 iteration");
  constexpr int kMaxRetries = 3;
  std::vector<double> temps;  // empty -> leakage at 25 C on the first pass
  ThermalProfile profile;
  bool have_profile = false;
  double prev_delta = std::numeric_limits<double>::infinity();
  ThermalParams tp = tparams;
  SorState sor_state;
  std::size_t warm_starts = 0;
  std::size_t retained_sweeps = 0;
  const auto publish_warm_starts = [&] {
    if (warm_starts == 0) return;
    std::ostringstream msg;
    msg << warm_starts << " damped " << (warm_starts == 1 ? "retry" : "retries")
        << " resumed from partial SOR iterates (" << retained_sweeps
        << " sweeps retained)";
    diagnostics().stat("thermal.warm_start", msg.str());
  };
  for (std::size_t i = 0; i < iterations; ++i) {
    const power::PowerMap power = estimate_power(design, pparams, temps);
    // Each outer iteration solves for a new power map, so retries within
    // it may resume from the failed attempt's iterate, but a fresh
    // iteration always starts cold (keeps the no-fault path identical to
    // the stateless solver).
    sor_state.rise.clear();
    sor_state.iterations = 0;
    bool solved = false;
    for (int attempt = 0; attempt <= kMaxRetries && !solved; ++attempt) {
      try {
        if (attempt > 0 && !sor_state.rise.empty()) {
          ++warm_starts;
          retained_sweeps += sor_state.iterations;
        }
        ThermalProfile next = solve_thermal(design, power, tp, &sor_state);
        if (fault::should_fire(fault::site::kThermalFixedPoint))
          next.block_temps_c.front() =
              std::numeric_limits<double>::quiet_NaN();
        require(all_finite(next.block_temps_c) &&
                    all_finite(next.cell_temps_c),
                ErrorCode::kNonconvergence,
                "power_thermal_fixed_point: non-finite temperature");
        profile = std::move(next);
        solved = true;
      } catch (const Error& e) {
        if (e.code() != ErrorCode::kNonconvergence) throw;
        if (attempt == kMaxRetries) break;
        // Damp the iteration: pull omega toward plain Gauss-Seidel (always
        // convergent for this SPD system) and give it more budget.
        tp.sor_omega = 1.0 + 0.5 * (tp.sor_omega - 1.0);
        tp.max_iterations *= 2;
        std::ostringstream msg;
        msg << "iteration " << i << " failed (" << e.what()
            << "); retrying with SOR omega " << tp.sor_omega;
        diagnostics().warn(fault::site::kThermalFixedPoint, msg.str());
      }
    }
    if (!solved) {
      if (!have_profile)
        throw Error(
            "power_thermal_fixed_point: thermal solve failed on the first "
            "iteration and damped retries did not recover",
            ErrorCode::kNonconvergence);
      diagnostics().warn(fault::site::kThermalFixedPoint,
                         "thermal solve failed after damped retries; "
                         "returning the last converged profile");
      profile.converged = false;
      publish_warm_starts();
      return profile;
    }
    have_profile = true;
    // Detect a diverging power<->thermal loop (leakage runaway): if the
    // fixed-point residual grows, damp the temperature feedback by
    // averaging with the previous iterate.
    if (!temps.empty()) {
      double delta = 0.0;
      for (std::size_t j = 0; j < temps.size(); ++j)
        delta = std::max(delta,
                         std::fabs(profile.block_temps_c[j] - temps[j]));
      if (delta > prev_delta) {
        for (std::size_t j = 0; j < temps.size(); ++j)
          profile.block_temps_c[j] =
              0.5 * (profile.block_temps_c[j] + temps[j]);
        std::ostringstream msg;
        msg << "fixed-point residual grew to " << delta
            << " K; damping the temperature feedback";
        diagnostics().warn(fault::site::kThermalFixedPoint, msg.str());
        delta = prev_delta;  // damped iterate is no worse than before
      }
      prev_delta = delta;
    }
    temps = profile.block_temps_c;
  }
  publish_warm_starts();
  return profile;
}

}  // namespace obd::thermal
