// Table IV reproduction: st_fast lifetime error vs MC across correlation
// distances rho_dist in {0.25, 0.5, 0.75} for C1-C6.
//
// Scaling knob: OBDREL_MC_CHIPS (default 500; 18 MC runs make this the
// costliest table).
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "chip/design.hpp"
#include "common/parallel.hpp"
#include "simd/dispatch.hpp"
#include "common/table.hpp"
#include "core/analytic.hpp"
#include "core/lifetime.hpp"
#include "core/montecarlo.hpp"
#include "power/power.hpp"
#include "thermal/solver.hpp"

int main() {
  using namespace obd;
  const std::size_t mc_chips = bench::env_size("OBDREL_MC_CHIPS", 500);
  constexpr double kRho[] = {0.25, 0.5, 0.75};

  std::printf(
      "Table IV: st_fast lifetime error (%%) w.r.t. MC for different\n"
      "correlation distances (25x25 grid, MC chips = %zu, pool threads = "
      "%zu, simd %s).\n\n",
      mc_chips, par::thread_count(),
      simd::to_string(simd::active_level()));

  TextTable t({"ckt.", "r=0.25 1/m", "r=0.25 10/m", "r=0.5 1/m",
               "r=0.5 10/m", "r=0.75 1/m", "r=0.75 10/m"});

  const core::AnalyticReliabilityModel model;
  for (int ci = 1; ci <= 6; ++ci) {
    const chip::Design design = chip::make_benchmark(ci);
    const auto profile = thermal::power_thermal_fixed_point(
        design, power::PowerParams{}, {.resolution = 32}, 2);

    std::vector<std::string> row{design.name};
    for (double rho : kRho) {
      core::ProblemOptions opts;
      opts.rho_dist = rho;
      const auto problem = core::ReliabilityProblem::build(
          design, var::VariationBudget{}, model, profile.block_temps_c, 1.2,
          opts);
      const core::AnalyticAnalyzer fast(problem);
      const core::MonteCarloAnalyzer mc(problem, {.chip_samples = mc_chips});
      const double e1 = bench::pct_error(
          fast.lifetime_at(core::kOneFaultPerMillion),
          mc.lifetime_at(core::kOneFaultPerMillion));
      const double e10 = bench::pct_error(
          fast.lifetime_at(core::kTenFaultsPerMillion),
          mc.lifetime_at(core::kTenFaultsPerMillion));
      row.push_back(fmt(e1, 2));
      row.push_back(fmt(e10, 2));
    }
    t.add_row(row);
  }
  t.print(std::cout);
  std::printf(
      "\nPaper reference: errors of ~0.1-4%% across all correlation\n"
      "distances — the method is robust w.r.t. the spatial model.\n");
  return 0;
}
