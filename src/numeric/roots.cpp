#include "numeric/roots.hpp"

#include <cmath>

#include "common/error.hpp"

namespace obd::num {

double brent(const std::function<double(double)>& f, double a, double b,
             double tolerance, int max_iterations) {
  require(a < b, "brent: invalid interval");
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  require(fa * fb < 0.0, "brent: f(a) and f(b) must have opposite signs");

  double c = a;
  double fc = fa;
  double d = b - a;
  double e = d;

  for (int iter = 0; iter < max_iterations; ++iter) {
    if (std::fabs(fc) < std::fabs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol1 =
        2.0 * std::numeric_limits<double>::epsilon() * std::fabs(b) +
        0.5 * tolerance;
    const double xm = 0.5 * (c - b);
    if (std::fabs(xm) <= tol1 || fb == 0.0) return b;

    if (std::fabs(e) >= tol1 && std::fabs(fa) > std::fabs(fb)) {
      const double s = fb / fa;
      double p;
      double q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::fabs(p);
      const double min1 = 3.0 * xm * q - std::fabs(tol1 * q);
      const double min2 = std::fabs(e * q);
      if (2.0 * p < std::min(min1, min2)) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    b += (std::fabs(d) > tol1) ? d : (xm > 0.0 ? tol1 : -tol1);
    fb = f(b);
    if (fb * fc > 0.0) {
      c = a;
      fc = fa;
      e = d = b - a;
    }
  }
  throw Error("brent: failed to converge");
}

double brent_auto_bracket(const std::function<double(double)>& f, double a,
                          double b, double tolerance, double growth,
                          int max_expansions) {
  require(a < b, "brent_auto_bracket: invalid seed interval");
  require(growth > 1.0, "brent_auto_bracket: growth must exceed 1");
  double fa = f(a);
  double fb = f(b);
  for (int i = 0; i < max_expansions && fa * fb > 0.0; ++i) {
    const double span = b - a;
    if (std::fabs(fa) < std::fabs(fb)) {
      a -= (growth - 1.0) * span;
      fa = f(a);
    } else {
      b += (growth - 1.0) * span;
      fb = f(b);
    }
  }
  require(fa * fb <= 0.0, "brent_auto_bracket: no sign change found");
  return brent(f, a, b, tolerance);
}

}  // namespace obd::num
