// Symmetric eigendecomposition.
//
// Principal component analysis of the grid covariance matrix (Section II,
// eq. 2 of the paper) reduces to an eigendecomposition of a real symmetric
// matrix. We implement the classic dense path: Householder reduction to
// tridiagonal form followed by the implicit-shift QL iteration. O(n^3),
// robust, and fast enough for the paper's grids (up to 25 x 25 = 625).
//
// When `variance_capture < 1` only the leading principal components are
// consumed, so eigen_symmetric_truncated offers a blocked subspace-iteration
// path that converges just those components in O(n^2 p) per sweep — the
// dense decomposition remains the reference (and the fallback whenever the
// iteration struggles).
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace obd::la {

/// Result of a symmetric eigendecomposition A = V diag(values) V^T.
struct EigenDecomposition {
  /// Eigenvalues sorted in descending order.
  Vector values;
  /// Column k of `vectors` is the unit eigenvector for values[k].
  Matrix vectors;
};

/// Computes the full eigendecomposition of a symmetric matrix.
///
/// Throws obd::Error if `a` is not square, is materially asymmetric, or if
/// the QL iteration fails to converge (pathological input).
EigenDecomposition eigen_symmetric(const Matrix& a);

/// Number of leading components whose (roundoff-clipped) eigenvalues reach
/// `variance_share` of `total_variance`: counts while the running sum is
/// below the target and the next eigenvalue is positive. This is the single
/// truncation rule shared by the PCA canonical form, the st_MC block-local
/// factorizations, and the truncated eigensolver. May return 0 (for a
/// spectrum with no positive mass) — callers decide whether that is an
/// error or clamps to 1.
std::size_t leading_component_count(const Vector& values_descending,
                                    double variance_share,
                                    double total_variance);

/// Overload computing the total as the clipped sum of `values_descending`
/// itself (correct when the vector holds the full spectrum).
std::size_t leading_component_count(const Vector& values_descending,
                                    double variance_share);

/// Principal factor of the leading `keep` eigenpairs: column k is
/// vectors(:, k) * sqrt(max(0, values[k])), so factor * factor^T
/// reconstructs the rank-`keep` approximation of the decomposed matrix.
Matrix principal_factor(const EigenDecomposition& eig, std::size_t keep);

/// Knobs of the truncated eigensolver. Defaults suit covariance matrices
/// with decaying spectra (the only intended input class).
struct TruncatedEigenOptions {
  std::size_t initial_block = 16;    ///< starting subspace width
  std::size_t guard = 4;             ///< oversampling columns beyond the kept set
  std::size_t max_iterations = 500;  ///< sweeps before falling back to dense
  double tolerance = 1e-12;          ///< relative Ritz-value stabilization
  double residual_tolerance = 1e-9;  ///< relative ||A v - lambda v|| acceptance
};

/// Leading principal components of a symmetric positive-semidefinite
/// matrix: returns exactly the eigenpairs that capture `variance_capture`
/// of trace(A) (per leading_component_count), converged by blocked subspace
/// iteration with Rayleigh-Ritz extraction. The subspace grows
/// geometrically until it covers the requested capture plus a guard band;
/// small problems, near-full captures, and non-converging iterations fall
/// back to the dense QL path (truncated to the same rule), so the result is
/// always usable. Eigenvector signs are arbitrary, as with any
/// eigendecomposition.
EigenDecomposition eigen_symmetric_truncated(
    const Matrix& a, double variance_capture,
    const TruncatedEigenOptions& options = {});

}  // namespace obd::la
