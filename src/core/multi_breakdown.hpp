// Successive-breakdown statistics (Section III's pointer to refs [28][30]:
// "circuit may even survive to function after several HBDs").
//
// Given the oxide thicknesses, device breakdowns across an area form a
// Poisson process whose cumulative intensity is the Weibull exponent
// H(t) = a (t/alpha)^(b x) (the first event reproduces eq. 4). The time to
// the k-th breakdown is then gamma-distributed in H:
//
//     P(N(t) >= k) = P(k, H(t))     (regularized lower incomplete gamma)
//
// which is the Sune-Wu successive-breakdown law [28]. This module provides
// the device/area-level closed forms; the chip-level ensemble version
// (random thickness) lives on MonteCarloAnalyzer::kth_failure_probability,
// which evaluates P(k, H_chip(t | x)) exactly per sample chip.
//
// Use case: designs that tolerate k-1 breakdowns (redundant cache lines,
// non-critical gates) earn a quantifiable lifetime extension; see the
// breakdown-tolerance ablation bench.
#pragma once

#include <cstddef>

namespace obd::core {

/// Cumulative breakdown intensity of an area `a` of devices with common
/// thickness x: H(t) = a (t/alpha)^(b x).
double breakdown_intensity(double t, double alpha, double b, double thickness,
                           double area = 1.0);

/// CDF of the k-th breakdown time for the area: P(N(t) >= k).
/// k = 1 reduces exactly to the Weibull CDF of eq. (4).
double kth_breakdown_cdf(double t, double alpha, double b, double thickness,
                         double area, std::size_t k);

/// Quantile of the k-th breakdown time: the t with kth_breakdown_cdf = p.
/// Closed form via the inverse incomplete gamma (no root finding):
/// H_req = P^{-1}(k, p), t = alpha (H_req/a)^(1/(b x)).
double kth_breakdown_quantile(double p, double alpha, double b,
                              double thickness, double area, std::size_t k);

/// Expected number of breakdowns by time t (equals the intensity H).
double expected_breakdowns(double t, double alpha, double b, double thickness,
                           double area = 1.0);

}  // namespace obd::core
